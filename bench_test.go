// Package repro_test hosts the benchmark harness: one testing.B benchmark
// per experiment table/figure (see DESIGN.md's experiment index). Each
// benchmark regenerates its table from scratch; reported metrics include
// the headline quantity of the experiment so `go test -bench=. -benchmem`
// doubles as the reproduction run.
package repro_test

import (
	"io"
	"strconv"
	"testing"

	"repro/internal/experiments"
)

// benchExperiment runs the experiment once per iteration and reports a
// headline metric extracted from the result table.
func benchExperiment(b *testing.B, id string, metric func(*experiments.Table) (string, float64)) {
	b.Helper()
	var tbl *experiments.Table
	var err error
	for i := 0; i < b.N; i++ {
		tbl, err = experiments.Run(id, 42, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
	}
	if metric != nil && tbl != nil {
		name, v := metric(tbl)
		b.ReportMetric(v, name)
	}
}

// cellFloat pulls a numeric cell, tolerating missing values as 0.
func cellFloat(tbl *experiments.Table, row int, header string) float64 {
	v, err := strconv.ParseFloat(tbl.Cell(row, header), 64)
	if err != nil {
		return 0
	}
	return v
}

func BenchmarkT1Systems(b *testing.B) {
	benchExperiment(b, "T1", func(t *experiments.Table) (string, float64) {
		return "capabilities", float64(len(t.Rows))
	})
}

func BenchmarkT2TruthInference(b *testing.B) {
	benchExperiment(b, "T2", func(t *experiments.Table) (string, float64) {
		// Headline: spammy-regime DS accuracy (last regime block, DS row).
		for i := range t.Rows {
			if t.Cell(i, "regime") == "spammy" && t.Cell(i, "method") == "DS" {
				return "spammy-DS-acc", cellFloat(t, i, "accuracy")
			}
		}
		return "spammy-DS-acc", 0
	})
}

func BenchmarkF1Redundancy(b *testing.B) {
	benchExperiment(b, "F1", func(t *experiments.Table) (string, float64) {
		return "k9-DS-acc", cellFloat(t, len(t.Rows)-1, "DS")
	})
}

func BenchmarkF2Assignment(b *testing.B) {
	benchExperiment(b, "F2", func(t *experiments.Table) (string, float64) {
		return "qasca-3x-acc", cellFloat(t, 2, "qasca")
	})
}

func BenchmarkT3Elimination(b *testing.B) {
	benchExperiment(b, "T3", func(t *experiments.Table) (string, float64) {
		return "acc-20pct-golden", cellFloat(t, len(t.Rows)-1, "accuracy")
	})
}

func BenchmarkT4Join(b *testing.B) {
	benchExperiment(b, "T4", func(t *experiments.Table) (string, float64) {
		// Headline: asked-pair saving of the full pipeline vs all-pairs.
		all := cellFloat(t, 0, "pairs-asked")
		full := cellFloat(t, 2, "pairs-asked")
		if all == 0 {
			return "ask-saving", 0
		}
		return "ask-saving", 1 - full/all
	})
}

func BenchmarkF3JoinThreshold(b *testing.B) {
	benchExperiment(b, "F3", func(t *experiments.Table) (string, float64) {
		return "F1-at-0.3", cellFloat(t, 2, "F1")
	})
}

func BenchmarkF4Transitivity(b *testing.B) {
	benchExperiment(b, "F4", func(t *experiments.Table) (string, float64) {
		return "deduced-frac-size8", cellFloat(t, len(t.Rows)-1, "deduced-frac")
	})
}

func BenchmarkF5TopK(b *testing.B) {
	benchExperiment(b, "F5", func(t *experiments.Table) (string, float64) {
		for i := range t.Rows {
			if t.Cell(i, "strategy") == "all-pairs" {
				return "allpairs-tau", cellFloat(t, i, "tau")
			}
		}
		return "allpairs-tau", 0
	})
}

func BenchmarkF6Count(b *testing.B) {
	benchExperiment(b, "F6", func(t *experiments.Table) (string, float64) {
		return "err-800samples-sel0.3", cellFloat(t, len(t.Rows)-1, "sel=0.3")
	})
}

func BenchmarkF7Collect(b *testing.B) {
	benchExperiment(b, "F7", func(t *experiments.Table) (string, float64) {
		return "distinct-1600", cellFloat(t, len(t.Rows)-1, "distinct")
	})
}

func BenchmarkF8Filter(b *testing.B) {
	benchExperiment(b, "F8", func(t *experiments.Table) (string, float64) {
		for i := range t.Rows {
			if t.Cell(i, "strategy") == "early-m2-max7" {
				return "early-votes-per-item", cellFloat(t, i, "votes/item")
			}
		}
		return "early-votes-per-item", 0
	})
}

func BenchmarkF9Latency(b *testing.B) {
	benchExperiment(b, "F9", func(t *experiments.Table) (string, float64) {
		return "k3-mitigated-makespan", cellFloat(t, 3, "makespan(s)")
	})
}

func BenchmarkT5Optimizer(b *testing.B) {
	benchExperiment(b, "T5", func(t *experiments.Table) (string, float64) {
		return "q1-saving", cellFloat(t, 0, "saving")
	})
}

func BenchmarkF10Categorize(b *testing.B) {
	benchExperiment(b, "F10", func(t *experiments.Table) (string, float64) {
		for i := range t.Rows {
			if t.Cell(i, "strategy") == "hierarchical" &&
				len(t.Cell(i, "taxonomy")) > 4 && t.Cell(i, "taxonomy")[:4] == "wide" {
				return "wide-hier-acc", cellFloat(t, i, "accuracy")
			}
		}
		return "wide-hier-acc", 0
	})
}

func BenchmarkA1MaxRedundancy(b *testing.B) {
	benchExperiment(b, "A1", func(t *experiments.Table) (string, float64) {
		return "k7-winner-rank", cellFloat(t, len(t.Rows)-1, "winner-rank")
	})
}

func BenchmarkA2JoinBatching(b *testing.B) {
	benchExperiment(b, "A2", func(t *experiments.Table) (string, float64) {
		return "batch50-tasks", cellFloat(t, len(t.Rows)-1, "tasks")
	})
}

func BenchmarkA3Pricing(b *testing.B) {
	benchExperiment(b, "A3", func(t *experiments.Table) (string, float64) {
		return "makespan-at-4x-price", cellFloat(t, len(t.Rows)-2, "makespan(s)")
	})
}
