package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/assign"
	"repro/internal/benchdata"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/truth"
)

// The -benchjson mode times the headline kernels on the exact workloads
// the `go test -bench` suite uses (internal/benchdata) and writes a
// machine-readable report, so the perf trajectory is diffable across PRs
// (BENCH_pr2.json, BENCH_pr3.json, ...).
//
// Since crowdkit-bench/v2, the report also embeds an obs.Registry
// snapshot taken after the timed runs: EM iteration counts, convergence
// flags, and wall-time quantiles per method, so a perf diff distinguishes
// "the kernel got slower" from "the workload now takes more iterations".

type benchResult struct {
	NsPerOp   float64 `json:"ns_per_op"`
	OpsPerSec float64 `json:"ops_per_sec"`
	Metric    string  `json:"metric"`
}

type benchReport struct {
	Schema     string                 `json:"schema"`
	GoMaxProcs int                    `json:"gomaxprocs"`
	Benchmarks map[string]benchResult `json:"benchmarks"`
	// Metrics is the registry snapshot: flat series-name -> value, e.g.
	// crowdkit_em_last_iterations{method="DS"} or
	// crowdkit_em_run_seconds_p95{method="GLAD"}.
	Metrics map[string]float64 `json:"metrics"`
}

func runBenchJSON(path string) error {
	_, ds := benchdata.ChoiceWorkload(4242, 2000, 50, 5, 0.3)
	recs := benchdata.Records(7, 1500)
	reg := obs.NewRegistry()
	em := obs.NewEMMetrics(reg)
	report := benchReport{
		Schema:     "crowdkit-bench/v2",
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Benchmarks: map[string]benchResult{},
	}
	add := func(name, metric string, fn func(b *testing.B)) {
		r := testing.Benchmark(fn)
		ns := float64(r.T.Nanoseconds()) / float64(r.N)
		report.Benchmarks[name] = benchResult{
			NsPerOp:   ns,
			OpsPerSec: 1e9 / ns,
			Metric:    metric,
		}
		fmt.Fprintf(os.Stderr, "%-16s %14.0f ns/op\t(%s)\n", name, ns, metric)
	}
	// The EM observer rides inside the timed loop; its cost is one
	// callback per EM iteration (tens per run against millisecond-scale
	// iterations), far below run-to-run noise.
	add("DSLarge", "tasks=2000 workers=50 k=5", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := (truth.DawidSkene{Obs: em}).Infer(ds); err != nil {
				b.Fatal(err)
			}
		}
	})
	add("GLADLarge", "tasks=2000 workers=50 k=5", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := (truth.GLAD{Obs: em}).Infer(ds); err != nil {
				b.Fatal(err)
			}
		}
	})
	add("OneCoinEMLarge", "tasks=2000 workers=50 k=5", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := (truth.OneCoinEM{Obs: em}).Infer(ds); err != nil {
				b.Fatal(err)
			}
		}
	})
	add("PruneAllPairs", "records=1500 pairs=1124250", func(b *testing.B) {
		p := &cost.Pruner{Low: 0.3, High: 0.9}
		for i := 0; i < b.N; i++ {
			if _, err := p.SelfPairs(recs); err != nil {
				b.Fatal(err)
			}
		}
	})
	// Serving-core throughput, sharded vs unsharded: the in-process
	// equivalent of BenchmarkServerConcurrent (fetch + answer from fresh
	// workers, a stats poll every 16th interaction) driven from 32
	// goroutines. The sharded run partitions the pool into one task-hash
	// shard per core; the unsharded run is the single-RWMutex server.
	nshards := runtime.GOMAXPROCS(0)
	add("ServerConcurrentUnsharded",
		"tasks=256 goroutines=32 shards=1", serveBench(1, 32))
	add(fmt.Sprintf("ServerConcurrentSharded%d", nshards),
		fmt.Sprintf("tasks=256 goroutines=32 shards=%d", nshards), serveBench(nshards, 32))
	report.Metrics = reg.Snapshot()
	if err := resultsContinuousBench(nshards, &report); err != nil {
		return err
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// resultsContinuousBench measures steady-state /api/results latency under
// continuous ingest. The corpus spans six option-count groups (200 tasks
// each at k=2..7, all pre-answered by a few seed workers); the live
// traffic then lands on one hot group, the shape the incremental serving
// path is built for: 60 rounds of one /api/answers batch (a fresh worker
// answering every hot task) followed by one timed
// /api/results?method=onecoin poll. Two configurations run the same
// script: the incremental server (warm-start + delta maintenance, the
// default) and the full-recompute baseline (-results-warm=off and the
// delta log disabled — the previous release's serving path, which
// re-extracts and re-infers all six groups on every version bump). A
// fixed script is timed by hand instead of testing.Benchmark because the
// state grows every round: ns/op under b.N would depend on how many
// rounds the framework chose to run.
//
// The report gains two pseudo-benchmarks (NsPerOp = p50 poll latency) and
// per-config p50/p95 latency plus EM run/iteration and build counters in
// Metrics, so a perf diff sees both the latency gap and why (groups
// skipped, delta vs full rebuilds, iterations saved by warm start).
func resultsContinuousBench(nshards int, report *benchReport) error {
	const (
		groups    = 6   // option counts k=2..7
		groupSize = 200 // tasks per group
		seedCrowd = 24  // workers pre-answering the whole corpus
		rounds    = 60
		nTasks    = groups * groupSize
	)
	// Deterministic ~20% noise on top of mostly-correct answers: a
	// consistent majority signal, so EM converges to a stable fixed point
	// instead of oscillating on balanced votes.
	answerFor := func(salt, i, k int) int {
		opt := i % k
		h := uint32(salt*2654435761) ^ uint32(i*2246822519)
		h ^= h >> 13
		h *= 2654435761
		h ^= h >> 16
		if h%5 == 0 {
			opt = (opt + 1 + int(h>>16)%(k-1)) % k
		}
		return opt
	}
	ingest := func(srv *server.Server, batch []server.AnswerDTO) error {
		body, err := json.Marshal(batch)
		if err != nil {
			return err
		}
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, httptest.NewRequest("POST", "/api/answers", bytes.NewReader(body)))
		if rec.Code != http.StatusOK {
			return fmt.Errorf("ingest failed: %d %s", rec.Code, rec.Body.String())
		}
		return nil
	}
	kOf := func(i int) int { return 2 + (i-1)/groupSize } // task IDs 1..nTasks

	configs := []struct {
		name  string
		label string
		opts  []server.Option
	}{
		{"ResultsContinuousIncremental", "incremental", nil},
		{"ResultsContinuousBaseline", "baseline", []server.Option{
			server.WithResultsWarm(false), server.WithResultsDelta(false),
		}},
	}
	for _, cfg := range configs {
		reg := obs.NewRegistry()
		pool := core.NewPool()
		for i := 1; i <= nTasks; i++ {
			k := kOf(i)
			options := make([]string, k)
			for c := range options {
				options[c] = fmt.Sprintf("option-%d", c)
			}
			pool.MustAdd(&core.Task{
				ID: core.TaskID(i), Kind: core.SingleChoice,
				Question:    fmt.Sprintf("bench question %d", i),
				Options:     options,
				GroundTruth: i % k,
			})
		}
		opts := append([]server.Option{
			server.WithShards(nshards), server.WithMetrics(reg),
		}, cfg.opts...)
		srv, err := server.New(pool, assign.FewestAnswers{}, nil, nil, opts...)
		if err != nil {
			return err
		}
		// Seed the archive: every group has answers before the clock starts.
		for w := 0; w < seedCrowd; w++ {
			batch := make([]server.AnswerDTO, 0, nTasks)
			for i := 1; i <= nTasks; i++ {
				batch = append(batch, server.AnswerDTO{
					Task:   core.TaskID(i),
					Worker: fmt.Sprintf("seed-%d", w),
					Option: answerFor(w, i, kOf(i)),
				})
			}
			if err := ingest(srv, batch); err != nil {
				return fmt.Errorf("results bench %s seeding: %w", cfg.label, err)
			}
		}
		// Priming poll (untimed): populates the result cache for all groups.
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, httptest.NewRequest("GET", "/api/results?method=onecoin", nil))
		if rec.Code != http.StatusOK {
			return fmt.Errorf("results bench %s priming poll: %d", cfg.label, rec.Code)
		}

		durs := make([]float64, 0, rounds)
		for r := 0; r < rounds; r++ {
			// Live traffic concentrates on the hot k=2 group.
			batch := make([]server.AnswerDTO, 0, groupSize)
			w := fmt.Sprintf("cw-%d", r)
			for i := 1; i <= groupSize; i++ {
				batch = append(batch, server.AnswerDTO{
					Task: core.TaskID(i), Worker: w,
					Option: answerFor(seedCrowd+r, i, 2),
				})
			}
			if err := ingest(srv, batch); err != nil {
				return fmt.Errorf("results bench %s round %d: %w", cfg.label, r, err)
			}
			t0 := time.Now()
			rec := httptest.NewRecorder()
			srv.ServeHTTP(rec, httptest.NewRequest("GET", "/api/results?method=onecoin", nil))
			if rec.Code != http.StatusOK {
				return fmt.Errorf("results bench %s round %d: poll failed: %d %s",
					cfg.label, r, rec.Code, rec.Body.String())
			}
			durs = append(durs, float64(time.Since(t0).Nanoseconds()))
		}
		sort.Float64s(durs)
		p50 := durs[len(durs)/2]
		p95 := durs[len(durs)*95/100]
		report.Benchmarks[cfg.name] = benchResult{
			NsPerOp:   p50,
			OpsPerSec: 1e9 / p50,
			Metric: fmt.Sprintf("tasks=%d groups=%d hot=%d rounds=%d shards=%d poll=onecoin p50",
				nTasks, groups, groupSize, rounds, nshards),
		}
		snap := reg.Snapshot()
		report.Metrics[fmt.Sprintf("results_poll_p50_ns{config=%q}", cfg.label)] = p50
		report.Metrics[fmt.Sprintf("results_poll_p95_ns{config=%q}", cfg.label)] = p95
		for _, m := range []string{
			`crowdkit_em_runs_total{method="OneCoinEM"}`,
			`crowdkit_em_iterations_total{method="OneCoinEM"}`,
			"crowdkit_results_delta_builds_total",
			"crowdkit_results_full_builds_total",
			"crowdkit_results_warm_hits_total",
		} {
			if v, ok := snap[m]; ok {
				report.Metrics[fmt.Sprintf("%s{config=%q}", strings.SplitN(m, "{", 2)[0], cfg.label)] = v
			}
		}
		fmt.Fprintf(os.Stderr, "%-28s %14.0f ns/op\t(p95 %.0f, em iters %.0f)\n",
			cfg.name, p50, p95,
			snap[`crowdkit_em_iterations_total{method="OneCoinEM"}`])
	}
	return nil
}

// serveBench drives the serving core through its HTTP handlers from 32
// goroutines without a network in the way: each interaction is a fresh
// worker fetching its assignment and submitting an answer, with a stats
// poll every 16th. With shards=1 the server is byte-for-byte the
// unsharded one; with shards=N the answer path fans out across N locks
// and the assignment path scans the worker's home shard first.
func serveBench(shards, goroutines int) func(b *testing.B) {
	return func(b *testing.B) {
		pool := core.NewPool()
		for i := 0; i < 256; i++ {
			pool.MustAdd(&core.Task{
				ID: core.TaskID(i + 1), Kind: core.SingleChoice,
				Question:    fmt.Sprintf("bench question %d", i+1),
				Options:     []string{"no", "yes"},
				GroundTruth: i % 2,
			})
		}
		srv, err := server.New(pool, assign.FewestAnswers{}, nil, nil, server.WithShards(shards))
		if err != nil {
			b.Fatal(err)
		}
		var seq atomic.Int64
		var firstErr atomic.Value
		per := b.N/goroutines + 1
		b.ResetTimer()
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < per; i++ {
					if err := serveIteration(srv, seq.Add(1)); err != nil {
						firstErr.CompareAndSwap(nil, err)
						return
					}
				}
			}()
		}
		wg.Wait()
		if err, _ := firstErr.Load().(error); err != nil {
			b.Fatal(err)
		}
	}
}

func serveIteration(h http.Handler, seq int64) error {
	worker := fmt.Sprintf("bw-%d", seq)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/api/task?worker="+worker, nil))
	if rec.Code == http.StatusOK {
		var dto server.TaskDTO
		if err := json.NewDecoder(rec.Body).Decode(&dto); err != nil {
			return err
		}
		body, _ := json.Marshal(server.AnswerDTO{Task: dto.ID, Worker: worker, Option: int(seq % 2)})
		rec = httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("POST", "/api/answer", bytes.NewReader(body)))
		if rec.Code != http.StatusOK {
			return fmt.Errorf("answer rejected: %d %s", rec.Code, rec.Body.String())
		}
	}
	if seq%16 == 0 {
		rec = httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/api/stats", nil))
		if rec.Code != http.StatusOK {
			return fmt.Errorf("stats failed: %d", rec.Code)
		}
	}
	return nil
}
