package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"repro/internal/benchdata"
	"repro/internal/cost"
	"repro/internal/obs"
	"repro/internal/truth"
)

// The -benchjson mode times the headline kernels on the exact workloads
// the `go test -bench` suite uses (internal/benchdata) and writes a
// machine-readable report, so the perf trajectory is diffable across PRs
// (BENCH_pr2.json, BENCH_pr3.json, ...).
//
// Since crowdkit-bench/v2, the report also embeds an obs.Registry
// snapshot taken after the timed runs: EM iteration counts, convergence
// flags, and wall-time quantiles per method, so a perf diff distinguishes
// "the kernel got slower" from "the workload now takes more iterations".

type benchResult struct {
	NsPerOp   float64 `json:"ns_per_op"`
	OpsPerSec float64 `json:"ops_per_sec"`
	Metric    string  `json:"metric"`
}

type benchReport struct {
	Schema     string                 `json:"schema"`
	GoMaxProcs int                    `json:"gomaxprocs"`
	Benchmarks map[string]benchResult `json:"benchmarks"`
	// Metrics is the registry snapshot: flat series-name -> value, e.g.
	// crowdkit_em_last_iterations{method="DS"} or
	// crowdkit_em_run_seconds_p95{method="GLAD"}.
	Metrics map[string]float64 `json:"metrics"`
}

func runBenchJSON(path string) error {
	_, ds := benchdata.ChoiceWorkload(4242, 2000, 50, 5, 0.3)
	recs := benchdata.Records(7, 1500)
	reg := obs.NewRegistry()
	em := obs.NewEMMetrics(reg)
	report := benchReport{
		Schema:     "crowdkit-bench/v2",
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Benchmarks: map[string]benchResult{},
	}
	add := func(name, metric string, fn func(b *testing.B)) {
		r := testing.Benchmark(fn)
		ns := float64(r.T.Nanoseconds()) / float64(r.N)
		report.Benchmarks[name] = benchResult{
			NsPerOp:   ns,
			OpsPerSec: 1e9 / ns,
			Metric:    metric,
		}
		fmt.Fprintf(os.Stderr, "%-16s %14.0f ns/op\t(%s)\n", name, ns, metric)
	}
	// The EM observer rides inside the timed loop; its cost is one
	// callback per EM iteration (tens per run against millisecond-scale
	// iterations), far below run-to-run noise.
	add("DSLarge", "tasks=2000 workers=50 k=5", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := (truth.DawidSkene{Obs: em}).Infer(ds); err != nil {
				b.Fatal(err)
			}
		}
	})
	add("GLADLarge", "tasks=2000 workers=50 k=5", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := (truth.GLAD{Obs: em}).Infer(ds); err != nil {
				b.Fatal(err)
			}
		}
	})
	add("OneCoinEMLarge", "tasks=2000 workers=50 k=5", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := (truth.OneCoinEM{Obs: em}).Infer(ds); err != nil {
				b.Fatal(err)
			}
		}
	})
	add("PruneAllPairs", "records=1500 pairs=1124250", func(b *testing.B) {
		p := &cost.Pruner{Low: 0.3, High: 0.9}
		for i := 0; i < b.N; i++ {
			if _, err := p.SelfPairs(recs); err != nil {
				b.Fatal(err)
			}
		}
	})
	report.Metrics = reg.Snapshot()
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
