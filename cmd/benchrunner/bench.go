package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/assign"
	"repro/internal/benchdata"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/truth"
)

// The -benchjson mode times the headline kernels on the exact workloads
// the `go test -bench` suite uses (internal/benchdata) and writes a
// machine-readable report, so the perf trajectory is diffable across PRs
// (BENCH_pr2.json, BENCH_pr3.json, ...).
//
// Since crowdkit-bench/v2, the report also embeds an obs.Registry
// snapshot taken after the timed runs: EM iteration counts, convergence
// flags, and wall-time quantiles per method, so a perf diff distinguishes
// "the kernel got slower" from "the workload now takes more iterations".

type benchResult struct {
	NsPerOp   float64 `json:"ns_per_op"`
	OpsPerSec float64 `json:"ops_per_sec"`
	Metric    string  `json:"metric"`
}

type benchReport struct {
	Schema     string                 `json:"schema"`
	GoMaxProcs int                    `json:"gomaxprocs"`
	Benchmarks map[string]benchResult `json:"benchmarks"`
	// Metrics is the registry snapshot: flat series-name -> value, e.g.
	// crowdkit_em_last_iterations{method="DS"} or
	// crowdkit_em_run_seconds_p95{method="GLAD"}.
	Metrics map[string]float64 `json:"metrics"`
}

func runBenchJSON(path string) error {
	_, ds := benchdata.ChoiceWorkload(4242, 2000, 50, 5, 0.3)
	recs := benchdata.Records(7, 1500)
	reg := obs.NewRegistry()
	em := obs.NewEMMetrics(reg)
	report := benchReport{
		Schema:     "crowdkit-bench/v2",
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Benchmarks: map[string]benchResult{},
	}
	add := func(name, metric string, fn func(b *testing.B)) {
		r := testing.Benchmark(fn)
		ns := float64(r.T.Nanoseconds()) / float64(r.N)
		report.Benchmarks[name] = benchResult{
			NsPerOp:   ns,
			OpsPerSec: 1e9 / ns,
			Metric:    metric,
		}
		fmt.Fprintf(os.Stderr, "%-16s %14.0f ns/op\t(%s)\n", name, ns, metric)
	}
	// The EM observer rides inside the timed loop; its cost is one
	// callback per EM iteration (tens per run against millisecond-scale
	// iterations), far below run-to-run noise.
	add("DSLarge", "tasks=2000 workers=50 k=5", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := (truth.DawidSkene{Obs: em}).Infer(ds); err != nil {
				b.Fatal(err)
			}
		}
	})
	add("GLADLarge", "tasks=2000 workers=50 k=5", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := (truth.GLAD{Obs: em}).Infer(ds); err != nil {
				b.Fatal(err)
			}
		}
	})
	add("OneCoinEMLarge", "tasks=2000 workers=50 k=5", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := (truth.OneCoinEM{Obs: em}).Infer(ds); err != nil {
				b.Fatal(err)
			}
		}
	})
	add("PruneAllPairs", "records=1500 pairs=1124250", func(b *testing.B) {
		p := &cost.Pruner{Low: 0.3, High: 0.9}
		for i := 0; i < b.N; i++ {
			if _, err := p.SelfPairs(recs); err != nil {
				b.Fatal(err)
			}
		}
	})
	// Serving-core throughput, sharded vs unsharded: the in-process
	// equivalent of BenchmarkServerConcurrent (fetch + answer from fresh
	// workers, a stats poll every 16th interaction) driven from 32
	// goroutines. The sharded run partitions the pool into one task-hash
	// shard per core; the unsharded run is the single-RWMutex server.
	nshards := runtime.GOMAXPROCS(0)
	add("ServerConcurrentUnsharded",
		"tasks=256 goroutines=32 shards=1", serveBench(1, 32))
	add(fmt.Sprintf("ServerConcurrentSharded%d", nshards),
		fmt.Sprintf("tasks=256 goroutines=32 shards=%d", nshards), serveBench(nshards, 32))
	report.Metrics = reg.Snapshot()
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// serveBench drives the serving core through its HTTP handlers from 32
// goroutines without a network in the way: each interaction is a fresh
// worker fetching its assignment and submitting an answer, with a stats
// poll every 16th. With shards=1 the server is byte-for-byte the
// unsharded one; with shards=N the answer path fans out across N locks
// and the assignment path scans the worker's home shard first.
func serveBench(shards, goroutines int) func(b *testing.B) {
	return func(b *testing.B) {
		pool := core.NewPool()
		for i := 0; i < 256; i++ {
			pool.MustAdd(&core.Task{
				ID: core.TaskID(i + 1), Kind: core.SingleChoice,
				Question:    fmt.Sprintf("bench question %d", i+1),
				Options:     []string{"no", "yes"},
				GroundTruth: i % 2,
			})
		}
		srv, err := server.New(pool, assign.FewestAnswers{}, nil, nil, server.WithShards(shards))
		if err != nil {
			b.Fatal(err)
		}
		var seq atomic.Int64
		var firstErr atomic.Value
		per := b.N/goroutines + 1
		b.ResetTimer()
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < per; i++ {
					if err := serveIteration(srv, seq.Add(1)); err != nil {
						firstErr.CompareAndSwap(nil, err)
						return
					}
				}
			}()
		}
		wg.Wait()
		if err, _ := firstErr.Load().(error); err != nil {
			b.Fatal(err)
		}
	}
}

func serveIteration(h http.Handler, seq int64) error {
	worker := fmt.Sprintf("bw-%d", seq)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/api/task?worker="+worker, nil))
	if rec.Code == http.StatusOK {
		var dto server.TaskDTO
		if err := json.NewDecoder(rec.Body).Decode(&dto); err != nil {
			return err
		}
		body, _ := json.Marshal(server.AnswerDTO{Task: dto.ID, Worker: worker, Option: int(seq % 2)})
		rec = httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("POST", "/api/answer", bytes.NewReader(body)))
		if rec.Code != http.StatusOK {
			return fmt.Errorf("answer rejected: %d %s", rec.Code, rec.Body.String())
		}
	}
	if seq%16 == 0 {
		rec = httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/api/stats", nil))
		if rec.Code != http.StatusOK {
			return fmt.Errorf("stats failed: %d", rec.Code)
		}
	}
	return nil
}
