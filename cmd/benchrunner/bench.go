package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"repro/internal/benchdata"
	"repro/internal/cost"
	"repro/internal/truth"
)

// The -benchjson mode times the headline kernels on the exact workloads
// the `go test -bench` suite uses (internal/benchdata) and writes a
// machine-readable report, so the perf trajectory is diffable across PRs
// (BENCH_pr2.json, BENCH_pr3.json, ...).

type benchResult struct {
	NsPerOp   float64 `json:"ns_per_op"`
	OpsPerSec float64 `json:"ops_per_sec"`
	Metric    string  `json:"metric"`
}

type benchReport struct {
	Schema     string                 `json:"schema"`
	GoMaxProcs int                    `json:"gomaxprocs"`
	Benchmarks map[string]benchResult `json:"benchmarks"`
}

func runBenchJSON(path string) error {
	_, ds := benchdata.ChoiceWorkload(4242, 2000, 50, 5, 0.3)
	recs := benchdata.Records(7, 1500)
	report := benchReport{
		Schema:     "crowdkit-bench/v1",
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Benchmarks: map[string]benchResult{},
	}
	add := func(name, metric string, fn func(b *testing.B)) {
		r := testing.Benchmark(fn)
		ns := float64(r.T.Nanoseconds()) / float64(r.N)
		report.Benchmarks[name] = benchResult{
			NsPerOp:   ns,
			OpsPerSec: 1e9 / ns,
			Metric:    metric,
		}
		fmt.Fprintf(os.Stderr, "%-16s %14.0f ns/op\t(%s)\n", name, ns, metric)
	}
	add("DSLarge", "tasks=2000 workers=50 k=5", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := (truth.DawidSkene{}).Infer(ds); err != nil {
				b.Fatal(err)
			}
		}
	})
	add("GLADLarge", "tasks=2000 workers=50 k=5", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := (truth.GLAD{}).Infer(ds); err != nil {
				b.Fatal(err)
			}
		}
	})
	add("OneCoinEMLarge", "tasks=2000 workers=50 k=5", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := (truth.OneCoinEM{}).Infer(ds); err != nil {
				b.Fatal(err)
			}
		}
	})
	add("PruneAllPairs", "records=1500 pairs=1124250", func(b *testing.B) {
		p := &cost.Pruner{Low: 0.3, High: 0.9}
		for i := 0; i < b.N; i++ {
			if _, err := p.SelfPairs(recs); err != nil {
				b.Fatal(err)
			}
		}
	})
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
