// Command benchrunner regenerates the experiment tables and figure series
// of the reproduction (see DESIGN.md for the per-experiment index).
//
// Usage:
//
//	benchrunner -list
//	benchrunner -exp T2 [-seed 42]
//	benchrunner -all [-seed 42]
//	benchrunner -benchjson BENCH_pr2.json
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	var (
		exp       = flag.String("exp", "", "experiment id to run (e.g. T2, F5)")
		all       = flag.Bool("all", false, "run every experiment")
		list      = flag.Bool("list", false, "list experiment ids")
		seed      = flag.Uint64("seed", 42, "random seed")
		benchjson = flag.String("benchjson", "", "time the kernel benchmarks and write a JSON report to this file (e.g. BENCH_pr2.json)")
	)
	flag.Parse()

	switch {
	case *benchjson != "":
		if err := runBenchJSON(*benchjson); err != nil {
			fatal(err)
		}
	case *list:
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
	case *all:
		if err := experiments.RunAll(*seed, os.Stdout); err != nil {
			fatal(err)
		}
	case *exp != "":
		if _, err := experiments.Run(*exp, *seed, os.Stdout); err != nil {
			fatal(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchrunner:", err)
	os.Exit(1)
}
