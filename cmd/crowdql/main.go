// Command crowdql is an interactive shell (and script runner) for the CQL
// dialect, backed by a simulated crowd.
//
// Usage:
//
//	crowdql                      # interactive REPL
//	crowdql -f script.cql        # run a script
//	crowdql -workers 50 -regime mixed -redundancy 5 -seed 7
//
// The simulated crowd answers crowd predicates with the session's default
// oracles: CROWDEQUAL follows string similarity, CROWDORDER follows the
// natural ordering of values. For planted ground truth, drive the session
// from Go (see examples/).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/cql"
	"repro/internal/crowd"
	"repro/internal/operators"
	"repro/internal/stats"
)

func main() {
	var (
		file       = flag.String("f", "", "CQL script to execute (default: REPL on stdin)")
		workers    = flag.Int("workers", 40, "simulated crowd size")
		regime     = flag.String("regime", "reliable", "crowd regime: reliable|mixed|spammy")
		redundancy = flag.Int("redundancy", 3, "votes per crowd question")
		seed       = flag.Uint64("seed", 42, "random seed")
		optimize   = flag.Bool("optimize", true, "enable the crowd-aware optimizer")
	)
	flag.Parse()

	mix, err := crowd.RegimeByName(*regime)
	if err != nil {
		fatal(err)
	}
	rng := stats.NewRNG(*seed)
	ws := crowd.NewPopulation(rng, *workers, mix)
	runner := operators.NewRunner(crowd.AsCoreWorkers(ws), nil, rng)
	session := cql.NewSession(cql.NewCatalog(), runner, rng.Split())
	session.Redundancy = *redundancy
	session.Optimize = *optimize

	if *file != "" {
		data, err := os.ReadFile(*file)
		if err != nil {
			fatal(err)
		}
		stmts, err := cql.ParseAll(string(data))
		if err != nil {
			fatal(err)
		}
		for _, st := range stmts {
			rel, err := session.ExecuteStmt(st)
			if err != nil {
				fatal(err)
			}
			fmt.Print(rel.FormatTable())
		}
		printStats(session)
		return
	}

	fmt.Printf("crowdql — %d %s workers, redundancy %d. End statements with ';'.\n", *workers, *regime, *redundancy)
	fmt.Println(`commands: \q quit · \stats crowd usage · \save <dir> · \load <dir>`)
	repl(session)
}

func repl(session *cql.Session) {
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var buf strings.Builder
	prompt := "cql> "
	for {
		fmt.Print(prompt)
		if !scanner.Scan() {
			fmt.Println()
			return
		}
		line := scanner.Text()
		trimmed := strings.TrimSpace(line)
		if trimmed == "\\q" || trimmed == "exit" || trimmed == "quit" {
			return
		}
		if trimmed == "\\stats" {
			printStats(session)
			continue
		}
		if dir, ok := strings.CutPrefix(trimmed, "\\save "); ok {
			if err := cql.SaveCatalog(session.Catalog, strings.TrimSpace(dir)); err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
			} else {
				fmt.Println("catalog saved")
			}
			continue
		}
		if dir, ok := strings.CutPrefix(trimmed, "\\load "); ok {
			cat, err := cql.LoadCatalog(strings.TrimSpace(dir))
			if err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				continue
			}
			session.Catalog = cat
			fmt.Printf("catalog loaded: %v\n", cat.Names())
			continue
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if !strings.Contains(line, ";") {
			prompt = "...> "
			continue
		}
		src := buf.String()
		buf.Reset()
		prompt = "cql> "
		rel, err := session.ExecuteScript(src)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			continue
		}
		if rel != nil {
			fmt.Print(rel.FormatTable())
		}
	}
}

func printStats(s *cql.Session) {
	fmt.Printf("crowd: %d tasks, %d answers (%d fills, %d filter rows, %d join pairs, %d compares, %d count samples)\n",
		s.Stats.CrowdTasks, s.Stats.CrowdAnswers, s.Stats.Fills,
		s.Stats.CrowdFilterRows, s.Stats.CrowdJoinPairs,
		s.Stats.CrowdCompares, s.Stats.CrowdCountSamples)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "crowdql:", err)
	os.Exit(1)
}
