// Command crowdserve runs the HTTP microtask platform with a demo
// labeling workload, optionally driving it with a simulated crowd.
//
// Usage:
//
//	crowdserve -addr :8080 -tasks 100            # serve; workers poll /api/task
//	crowdserve -drive -workers 20 -regime mixed  # also simulate the crowd, then print results
//	crowdserve -budget 300                       # cap accepted answers at 300 units
//	crowdserve -lease 2m                         # reclaim assignments abandoned for 2m
//	crowdserve -drive -dropout 0.3 -lease 200ms  # 30% of workers vanish mid-task
//	crowdserve -timeout 10s                      # server read/write + client deadlines
//	crowdserve -metrics                          # Prometheus exposition on /metrics + request logs
//	crowdserve -metrics -pprof                   # also mount /debug/pprof for profiling
//	crowdserve -trace                            # span flight recorder + /api/trace endpoints
//	crowdserve -trace -trace-sample 0.1          # keep errors/slow always, 10% of the rest
//	crowdserve -shards 8                         # partition the pool into 8 task-hash shards
//	crowdserve -results-warm=false               # cold-start EM on every /api/results recompute
//	crowdserve -results-refresh 500ms            # refresh results in the background; polls never wait
//	crowdserve -cql-dir ./cql                    # CrowdQL sessions on /api/cql, catalogs persisted in ./cql
//
// With -cql-dir, /api/cql exposes the CrowdQL query service: named
// sessions execute SQL/CQL whose crowd questions (CROWDFILTER, ~=,
// crowd-column fills, ...) are published as tasks in this server's pool
// and answered by its workers through /api/task + /api/answer. Query
// handles stream partial rows while answers arrive, page with cursor
// tokens, and can be canceled (releasing the question's leases and
// refunding its reserved budget). Session catalogs are saved to the
// directory when a session closes — including graceful shutdown — and
// reload when a session of the same name is created again. With -data-dir
// as well, session lifecycle is journaled through the WAL: a kill -9
// recovers open sessions with their catalogs and prepared statements,
// resurfaces mid-flight query handles with status "recovered", closes
// orphaned crowd questions, and refunds their unconsumed budget
// reservations so the recovered spend equals acked answers exactly.
//
// The server handles concurrent workers without a global lock; see the
// server package docs for the concurrency model. With -lease set, every
// assignment carries a lease: a worker that claims a task and vanishes
// forfeits it after the TTL and the slot is re-issued, so the run still
// reaches its redundancy target under worker churn. /healthz serves a
// liveness probe.
//
// With -metrics, the server exposes per-endpoint latency histograms,
// budget/pool/lease gauges, assignment-policy counters, and EM
// convergence telemetry on /metrics, and logs one structured line per
// request (trace ID, method, path, status, duration) to stderr.
//
// With -trace, every request is traced through the serving stack — HTTP
// root span, assignment/record spans in the pool shards, WAL append and
// fsync spans, EM-run spans with per-iteration convergence events, and
// CrowdQL statement/stage/question spans — into a bounded in-memory
// flight recorder. Completed traces are read back by the ID echoed in
// every X-Trace-Id response header via GET /api/trace/{id}, browsed via
// GET /api/traces?endpoint=&min_ms=, and a crowd query's trace is
// resolved via its handle. Error and slow traces are always kept;
// -trace-sample tail-samples the rest, and -trace-buffer bounds memory.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net"
	"os"
	"os/signal"
	"runtime"
	"sync"
	"syscall"
	"time"

	"repro/internal/assign"
	"repro/internal/core"
	"repro/internal/crowd"
	"repro/internal/durable"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/stats"
)

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:8080", "listen address")
		nTasks  = flag.Int("tasks", 100, "number of demo labeling tasks")
		drive   = flag.Bool("drive", false, "drive the platform with simulated workers and exit")
		workers = flag.Int("workers", 20, "simulated workers (with -drive)")
		regime  = flag.String("regime", "mixed", "crowd regime (with -drive)")
		budgetF = flag.Float64("budget", 0, "answer budget in units (0 = unlimited)")
		lease   = flag.Duration("lease", 0, "assignment lease TTL; abandoned tasks are re-issued after this (0 = leases off)")
		timeout = flag.Duration("timeout", 30*time.Second, "HTTP server read/write deadline and client per-attempt timeout")
		dropout = flag.Float64("dropout", 0, "fraction of simulated workers that claim a task and vanish (with -drive)")
		seed    = flag.Uint64("seed", 42, "random seed")
		metrics = flag.Bool("metrics", false, "expose Prometheus metrics on /metrics and log requests")
		pprofOn = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof (requires explicit opt-in)")
		shards  = flag.Int("shards", runtime.GOMAXPROCS(0), "task-hash shards for the serving pool (and WAL segments with -data-dir); 1 = the unsharded server")
		warm    = flag.Bool("results-warm", true, "seed /api/results EM from the previous converged state (false = cold start per recompute)")
		refresh = flag.Duration("results-refresh", 0, "background results refresh interval; polls serve the last complete result immediately (0 = compute inline)")
		dataDir = flag.String("data-dir", "", "directory for the write-ahead log and snapshots; answers survive a crash or restart (empty = in-memory only)")
		cqlDir  = flag.String("cql-dir", "", "mount the CrowdQL query service under /api/cql, persisting session catalogs here (\"mem\" = mount without persistence)")
		cqlTTL  = flag.Duration("cql-idle", 0, "close CrowdQL sessions idle for this long (with -cql-dir; 0 = only explicit close)")
		fsyncF  = flag.String("fsync", "always", `WAL fsync policy: "always" (ack = on disk), a duration like "100ms" (batched flushes), or "off"`)
		snapEv  = flag.Duration("snapshot-every", 30*time.Second, "how often to compact the WAL into a snapshot (with -data-dir; 0 = only on shutdown)")
		traceOn = flag.Bool("trace", false, "record request traces and mount /api/trace endpoints")
		traceSm = flag.Float64("trace-sample", 1.0, "fraction of non-error, non-slow traces to keep (with -trace; errors and slow requests are always kept)")
		traceBf = flag.Int("trace-buffer", 1024, "kept-trace ring capacity (with -trace)")
	)
	flag.Parse()

	rng := stats.NewRNG(*seed)
	var budget *core.Budget
	if *budgetF > 0 {
		budget = core.NewBudget(*budgetF)
	} else if *dataDir != "" {
		// Durable deployments track spend even without a cap, so the
		// recovered budget_spent matches the recovered answer count.
		budget = core.Unlimited()
	}

	var store *durable.Store
	pool := core.NewPool()
	seedDemo := true
	if *dataDir != "" {
		policy, every, err := durable.ParseFsync(*fsyncF)
		if err != nil {
			fatal(err)
		}
		var info *durable.RecoveryInfo
		// One WAL segment per pool shard: a shard's group commit then never
		// contends with another shard's appends.
		store, info, err = durable.Open(*dataDir, durable.Options{
			Fsync: policy, FsyncEvery: every, SnapshotEvery: *snapEv,
			Segments: *shards,
		})
		if err != nil {
			fatal(err)
		}
		if !info.Empty() {
			// Adopt the recovered state instead of reseeding: the demo
			// workload continues where the previous process stopped.
			pool = server.AdoptRecovered(store, budget, nil)
			seedDemo = false
			log.Printf("crowdserve: recovered %d tasks, %d answers (spent %v) from %s: snapshot=%v replayed=%d skipped=%d torn=%dB in %v",
				info.Tasks, info.Answers, info.BudgetSpent, *dataDir,
				info.SnapshotLoaded, info.Replayed, info.Skipped, info.TornBytes,
				info.ReplayDuration.Round(time.Microsecond))
			if info.CQLSessions > 0 || info.CQLOpenQuestions > 0 {
				// server.New finishes the CQL recovery: sessions reopen with
				// their catalogs, mid-flight queries come back as "recovered"
				// handles, and each orphaned question's task is closed with
				// its unconsumed reservation refunded.
				log.Printf("crowdserve: recovering CrowdQL state: %d open sessions, %d mid-flight queries, %d orphaned crowd questions to reconcile",
					info.CQLSessions, info.CQLRunningQueries, info.CQLOpenQuestions)
			}
		}
	}
	if seedDemo {
		for i := 0; i < *nTasks; i++ {
			pool.MustAdd(&core.Task{
				ID: core.TaskID(i + 1), Kind: core.SingleChoice,
				Question:    fmt.Sprintf("Demo question %d: yes or no?", i+1),
				Options:     []string{"no", "yes"},
				GroundTruth: rng.Intn(2), Difficulty: rng.Beta(2, 5),
			})
		}
		if store != nil {
			if err := server.SeedJournal(store, pool); err != nil {
				fatal(err)
			}
		}
	}
	opts := []server.Option{
		server.WithShards(*shards),
		server.WithResultsWarm(*warm),
		server.WithResultsRefresh(*refresh),
	}
	if store != nil {
		opts = append(opts, server.WithDurability(store))
	}
	if *lease > 0 {
		opts = append(opts, server.WithLeaseTTL(*lease))
	}
	var assigner core.Assigner = assign.FewestAnswers{}
	var reg *obs.Registry
	if *metrics {
		reg = obs.NewRegistry()
		assigner = assign.Instrument(assigner, reg, "fewest-answers")
		logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
		opts = append(opts, server.WithMetrics(reg), server.WithRequestLog(logger))
	}
	if *pprofOn {
		opts = append(opts, server.WithPprof())
	}
	if *traceOn {
		col := obs.NewCollector(obs.CollectorOptions{
			Capacity:   *traceBf,
			SampleRate: *traceSm,
		})
		opts = append(opts, server.WithTracing(col))
	}
	if *cqlDir != "" {
		dir := *cqlDir
		if dir == "mem" {
			dir = ""
		}
		opts = append(opts, server.WithCQL(server.CQLConfig{
			Dir: dir, IdleTTL: *cqlTTL, Seed: *seed,
		}))
	}
	srv, err := server.New(pool, assigner, budget, nil, opts...)
	if err != nil {
		fatal(err)
	}
	defer srv.Close()

	if !*drive {
		log.Printf("crowdserve: %d tasks on http://%s (GET /api/task?worker=you, shards=%d, lease=%v, metrics=%v, pprof=%v, data-dir=%q)",
			pool.Len(), *addr, srv.Shards(), *lease, *metrics, *pprofOn, *dataDir)
		hs := server.HTTPServer(*addr, srv, *timeout)
		errCh := make(chan error, 1)
		go func() { errCh <- hs.ListenAndServe() }()
		sigCh := make(chan os.Signal, 1)
		signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
		select {
		case err := <-errCh:
			fatal(err)
		case sig := <-sigCh:
			// Graceful shutdown: drain in-flight requests, then flush and
			// snapshot the durable store via srv.Close so the next boot
			// recovers from the snapshot alone.
			log.Printf("crowdserve: %v: shutting down", sig)
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			_ = hs.Shutdown(ctx)
			cancel()
			srv.Close()
		}
		return
	}

	// Self-driving demo: serve on a local listener with handler deadlines,
	// drive workers, print results.
	ln := mustListen(*addr)
	hs := server.HTTPServer(*addr, srv, *timeout)
	go func() { fatal(hs.Serve(ln)) }()
	base := "http://" + ln.Addr().String()
	log.Printf("crowdserve: serving %d tasks on %s, driving %d %s workers (dropout %.0f%%, lease %v)",
		*nTasks, base, *workers, *regime, 100**dropout, *lease)

	mix, err := crowd.RegimeByName(*regime)
	if err != nil {
		fatal(err)
	}
	ws := crowd.WithDropout(rng, crowd.NewPopulation(rng, *workers, mix), *dropout, 1)
	client := server.NewClient(base, server.WithTimeout(*timeout))
	if reg != nil {
		client.RegisterMetrics(reg)
	}
	var wg sync.WaitGroup
	for _, w := range ws {
		wg.Add(1)
		go func(w core.Worker) {
			defer wg.Done()
			if _, err := client.DriveWorker(w, pool.Task, 0); err != nil {
				log.Printf("worker %s: %v", w.ID(), err)
			}
		}(w)
	}
	wg.Wait()

	st, err := client.Stats()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("collected %d answers from %d workers (budget spent: %v, active leases: %d, reclaimed: %d)\n",
		st.TotalAnswers, st.Workers, st.BudgetSpent, st.ActiveLeases, st.ExpiredLeases)
	results, err := client.Results("onecoin")
	if err != nil {
		fatal(err)
	}
	correct := 0
	for _, r := range results {
		if r.Label == pool.Task(r.Task).GroundTruth {
			correct++
		}
	}
	fmt.Printf("OneCoinEM over HTTP: %d/%d correct (%.1f%%)\n",
		correct, len(results), 100*float64(correct)/float64(len(results)))
}

func mustListen(addr string) net.Listener {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fatal(err)
	}
	return ln
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "crowdserve:", err)
	os.Exit(1)
}
