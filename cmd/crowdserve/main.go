// Command crowdserve runs the HTTP microtask platform with a demo
// labeling workload, optionally driving it with a simulated crowd.
//
// Usage:
//
//	crowdserve -addr :8080 -tasks 100            # serve; workers poll /api/task
//	crowdserve -drive -workers 20 -regime mixed  # also simulate the crowd, then print results
//	crowdserve -budget 300                       # cap accepted answers at 300 units
//
// The server handles concurrent workers without a global lock; see the
// server package docs for the concurrency model.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"sync"

	"repro/internal/assign"
	"repro/internal/core"
	"repro/internal/crowd"
	"repro/internal/server"
	"repro/internal/stats"
)

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:8080", "listen address")
		nTasks  = flag.Int("tasks", 100, "number of demo labeling tasks")
		drive   = flag.Bool("drive", false, "drive the platform with simulated workers and exit")
		workers = flag.Int("workers", 20, "simulated workers (with -drive)")
		regime  = flag.String("regime", "mixed", "crowd regime (with -drive)")
		budgetF = flag.Float64("budget", 0, "answer budget in units (0 = unlimited)")
		seed    = flag.Uint64("seed", 42, "random seed")
	)
	flag.Parse()

	rng := stats.NewRNG(*seed)
	pool := core.NewPool()
	for i := 0; i < *nTasks; i++ {
		pool.MustAdd(&core.Task{
			ID: core.TaskID(i + 1), Kind: core.SingleChoice,
			Question:    fmt.Sprintf("Demo question %d: yes or no?", i+1),
			Options:     []string{"no", "yes"},
			GroundTruth: rng.Intn(2), Difficulty: rng.Beta(2, 5),
		})
	}
	var budget *core.Budget
	if *budgetF > 0 {
		budget = core.NewBudget(*budgetF)
	}
	srv, err := server.New(pool, assign.FewestAnswers{}, budget, nil)
	if err != nil {
		fatal(err)
	}

	if !*drive {
		log.Printf("crowdserve: %d tasks on http://%s (GET /api/task?worker=you)", *nTasks, *addr)
		fatal(http.ListenAndServe(*addr, srv))
	}

	// Self-driving demo: serve on an ephemeral goroutine-local listener
	// via httptest-like pattern, drive workers, print results.
	ln := mustListen(*addr)
	go func() { fatal(http.Serve(ln, srv)) }()
	base := "http://" + ln.Addr().String()
	log.Printf("crowdserve: serving %d tasks on %s, driving %d %s workers",
		*nTasks, base, *workers, *regime)

	mix, err := crowd.RegimeByName(*regime)
	if err != nil {
		fatal(err)
	}
	ws := crowd.NewPopulation(rng, *workers, mix)
	client := server.NewClient(base)
	var wg sync.WaitGroup
	for _, w := range ws {
		wg.Add(1)
		go func(w core.Worker) {
			defer wg.Done()
			if _, err := client.DriveWorker(w, pool.Task, 0); err != nil {
				log.Printf("worker %s: %v", w.ID(), err)
			}
		}(w)
	}
	wg.Wait()

	st, err := client.Stats()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("collected %d answers from %d workers (budget spent: %v)\n",
		st.TotalAnswers, st.Workers, st.BudgetSpent)
	results, err := client.Results("onecoin")
	if err != nil {
		fatal(err)
	}
	correct := 0
	for _, r := range results {
		if r.Label == pool.Task(r.Task).GroundTruth {
			correct++
		}
	}
	fmt.Printf("OneCoinEM over HTTP: %d/%d correct (%.1f%%)\n",
		correct, len(results), 100*float64(correct)/float64(len(results)))
}

func mustListen(addr string) net.Listener {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fatal(err)
	}
	return ln
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "crowdserve:", err)
	os.Exit(1)
}
