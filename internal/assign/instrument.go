package assign

import (
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// Instrument wraps an assignment policy with observability: every Assign
// call is counted and timed, and calls that find no eligible task are
// counted separately as misses. Series carry a policy label, so two
// instrumented policies (say FewestAnswers serving and Uncertainty in a
// shadow experiment) stay distinguishable:
//
//	crowdkit_assign_requests_total{policy="..."}  Assign calls
//	crowdkit_assign_misses_total{policy="..."}    calls returning ok=false
//	crowdkit_assign_seconds{policy="..."}         per-call latency histogram
//
// With a nil registry the wrapper still works and costs only the nil-metric
// checks; pass the policy through unwrapped when even that matters.
func Instrument(policy core.Assigner, reg *obs.Registry, name string) core.Assigner {
	pl := obs.L("policy", name)
	return &instrumented{
		inner:    policy,
		requests: reg.Counter("crowdkit_assign_requests_total", pl),
		misses:   reg.Counter("crowdkit_assign_misses_total", pl),
		latency:  reg.Histogram("crowdkit_assign_seconds", obs.DefLatencyBuckets, pl),
	}
}

type instrumented struct {
	inner    core.Assigner
	requests *obs.Counter
	misses   *obs.Counter
	latency  *obs.Histogram
}

// Assign implements core.Assigner. The policy runs under the pool lock,
// so the recorded latency is pure policy cost (eligibility scan + scoring),
// not lock wait.
func (a *instrumented) Assign(p *core.Pool, worker string) (core.TaskID, bool) {
	var start time.Time
	if a.latency != nil {
		start = time.Now()
	}
	id, ok := a.inner.Assign(p, worker)
	if a.latency != nil {
		a.latency.ObserveDuration(time.Since(start))
	}
	a.requests.Inc()
	if !ok {
		a.misses.Inc()
	}
	return id, ok
}
