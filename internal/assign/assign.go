// Package assign implements task assignment policies — the "which task
// should this worker do next" half of quality control.
//
// The survey distinguishes offline redundancy (give every task k answers)
// from online, quality-aware assignment that spends marginal answers where
// they help most. This package provides both ends of that spectrum:
//
//   - Random — uniform over eligible tasks (the open-platform default).
//   - FewestAnswers — balance redundancy across tasks.
//   - Uncertainty — maximize posterior entropy of the chosen task.
//   - QASCA — expected-accuracy-gain assignment in the style of QASCA:
//     choose the task whose expected posterior confidence improves most if
//     this worker (with their estimated quality) answers it.
//
// All policies implement core.Assigner and draw tie-breaking randomness
// from an explicit seeded RNG for reproducibility.
package assign

import (
	"math"

	"repro/internal/core"
	"repro/internal/stats"
)

// QualitySource estimates a worker's accuracy in [0,1]; used by
// quality-aware policies. Implementations typically wrap golden-task
// screens or a periodically refreshed truth-inference result.
type QualitySource func(worker string) float64

// ConstantQuality returns a QualitySource that reports q for everyone.
func ConstantQuality(q float64) QualitySource {
	return func(string) float64 { return q }
}

// Random assigns a uniformly random eligible task.
type Random struct {
	RNG *stats.RNG
}

// Assign implements core.Assigner.
func (r *Random) Assign(p *core.Pool, worker string) (core.TaskID, bool) {
	el := p.EligibleFor(worker)
	if len(el) == 0 {
		return 0, false
	}
	return el[r.RNG.Intn(len(el))], true
}

// FewestAnswers assigns the eligible task with the fewest in-flight
// answers (committed answers plus outstanding leases), breaking ties by
// insertion order. This realizes classic redundancy-k collection with
// balanced progress. Counting leases steers assignments away from tasks
// already handed to another worker, and an expired lease drops the task
// back to the front of the queue, so reclaimed work is re-issued first.
// On a pool without leases InFlight equals AnswerCount, so behavior is
// identical to the pre-lease policy.
type FewestAnswers struct{}

// Assign implements core.Assigner.
func (FewestAnswers) Assign(p *core.Pool, worker string) (core.TaskID, bool) {
	el := p.EligibleFor(worker)
	if len(el) == 0 {
		return 0, false
	}
	best := el[0]
	bestN := p.InFlight(best)
	for _, id := range el[1:] {
		if n := p.InFlight(id); n < bestN {
			best, bestN = id, n
		}
	}
	return best, true
}

// Uncertainty assigns the eligible task whose current vote distribution
// has the highest Shannon entropy (with Laplace smoothing), i.e. the task
// the crowd is most confused about. Ties break by fewest answers, then
// insertion order.
type Uncertainty struct{}

// Assign implements core.Assigner.
func (Uncertainty) Assign(p *core.Pool, worker string) (core.TaskID, bool) {
	el := p.EligibleFor(worker)
	if len(el) == 0 {
		return 0, false
	}
	best := el[0]
	bestH := smoothedEntropy(p, best)
	for _, id := range el[1:] {
		h := smoothedEntropy(p, id)
		if h > bestH+1e-12 ||
			(math.Abs(h-bestH) <= 1e-12 && p.AnswerCount(id) < p.AnswerCount(best)) {
			best, bestH = id, h
		}
	}
	return best, true
}

func smoothedEntropy(p *core.Pool, id core.TaskID) float64 {
	votes := p.OptionVotes(id)
	if votes == nil {
		return 0
	}
	ps := make([]float64, len(votes))
	for i, v := range votes {
		ps[i] = float64(v) + 1 // Laplace
	}
	return stats.Entropy(ps)
}

// QASCA is a quality-aware online assigner in the spirit of QASCA
// (Zheng et al.): it maintains a one-coin posterior per task from the
// answers seen so far and the workers' estimated qualities, and assigns
// the arriving worker the task with the largest expected gain in posterior
// confidence if that worker answers.
type QASCA struct {
	// Quality estimates worker accuracy; defaults to 0.7 for everyone.
	Quality QualitySource
	// Candidates caps how many eligible tasks are scored per assignment
	// (the lowest-confidence ones are scored); <= 0 means score all.
	// QASCA's published system uses a similar pruning to stay online.
	Candidates int
}

// qascaScratch holds the per-Assign-call buffers the scoring loops
// reuse, so scoring E eligible tasks costs O(1) allocations instead of
// O(E·K). It lives on the caller's stack frame rather than on QASCA
// itself because one QASCA is shared by concurrent server requests.
type qascaScratch struct {
	post, np []float64
}

func (s *qascaScratch) sized(buf *[]float64, k int) []float64 {
	if cap(*buf) < k {
		*buf = make([]float64, k)
	}
	*buf = (*buf)[:k]
	return *buf
}

// Assign implements core.Assigner.
func (q *QASCA) Assign(p *core.Pool, worker string) (core.TaskID, bool) {
	el := p.EligibleFor(worker)
	if len(el) == 0 {
		return 0, false
	}
	quality := q.Quality
	if quality == nil {
		quality = ConstantQuality(0.7)
	}
	wq := clamp01(quality(worker))
	var sc qascaScratch

	cand := el
	if q.Candidates > 0 && len(el) > q.Candidates {
		// Score only the least-confident candidates.
		type scored struct {
			id   core.TaskID
			conf float64
		}
		ss := make([]scored, len(el))
		for i, id := range el {
			post := q.posterior(p, id, quality, &sc)
			ss[i] = scored{id, maxOf(post)}
		}
		// Partial selection of the lowest-confidence Candidates tasks.
		for i := 0; i < q.Candidates; i++ {
			min := i
			for j := i + 1; j < len(ss); j++ {
				if ss[j].conf < ss[min].conf {
					min = j
				}
			}
			ss[i], ss[min] = ss[min], ss[i]
		}
		cand = make([]core.TaskID, q.Candidates)
		for i := 0; i < q.Candidates; i++ {
			cand[i] = ss[i].id
		}
	}

	best := cand[0]
	bestGain := math.Inf(-1)
	for _, id := range cand {
		gain := q.expectedGain(p, id, wq, quality, &sc)
		if gain > bestGain {
			best, bestGain = id, gain
		}
	}
	return best, true
}

// posterior computes the one-coin posterior over options for a task given
// the answers so far and the quality source, into sc's reused buffer. The
// returned slice is valid until the next posterior call on sc.
func (q *QASCA) posterior(p *core.Pool, id core.TaskID, quality QualitySource, sc *qascaScratch) []float64 {
	t := p.Task(id)
	k := len(t.Options)
	if k == 0 {
		return nil
	}
	logp := sc.sized(&sc.post, k)
	for c := range logp {
		logp[c] = 0
	}
	for _, a := range p.Answers(id) {
		if a.Option < 0 || a.Option >= k {
			continue
		}
		wq := clamp01(quality(a.Worker))
		lRight := math.Log(wq + 1e-9)
		lWrong := math.Log((1-wq)/float64(k-1) + 1e-9)
		for c := 0; c < k; c++ {
			if c == a.Option {
				logp[c] += lRight
			} else {
				logp[c] += lWrong
			}
		}
	}
	softmaxInPlace(logp)
	return logp
}

// expectedGain returns the expected increase in the task's posterior max
// (confidence) if the worker with quality wq answers it. The expectation
// is over the worker's answer under the current posterior.
func (q *QASCA) expectedGain(p *core.Pool, id core.TaskID, wq float64, quality QualitySource, sc *qascaScratch) float64 {
	t := p.Task(id)
	k := len(t.Options)
	if k < 2 {
		return 0
	}
	post := q.posterior(p, id, quality, sc)
	before := maxOf(post)
	wrong := (1 - wq) / float64(k-1)

	// P(worker answers l) = sum_c post[c] * P(answer=l | truth=c).
	expected := 0.0
	np := sc.sized(&sc.np, k)
	for l := 0; l < k; l++ {
		pl := 0.0
		for c := 0; c < k; c++ {
			if c == l {
				pl += post[c] * wq
			} else {
				pl += post[c] * wrong
			}
		}
		if pl == 0 {
			continue
		}
		// Posterior after observing answer l.
		for c := 0; c < k; c++ {
			if c == l {
				np[c] = post[c] * wq
			} else {
				np[c] = post[c] * wrong
			}
		}
		stats.Normalize(np)
		expected += pl * maxOf(np)
	}
	return expected - before
}

func maxOf(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

func clamp01(v float64) float64 {
	// Keep strictly inside (1/k, 1) territory handled by callers; here we
	// just bound away from the degenerate endpoints.
	if v < 0.01 {
		return 0.01
	}
	if v > 0.99 {
		return 0.99
	}
	return v
}

// softmaxInPlace exponentiates and normalizes log-probabilities stably,
// overwriting the input.
func softmaxInPlace(logp []float64) {
	if len(logp) == 0 {
		return
	}
	max := logp[0]
	for _, v := range logp[1:] {
		if v > max {
			max = v
		}
	}
	sum := 0.0
	for i, v := range logp {
		logp[i] = math.Exp(v - max)
		sum += logp[i]
	}
	for i := range logp {
		logp[i] /= sum
	}
}

// ConfidenceStopper closes tasks whose one-coin posterior confidence
// reaches Threshold, while enforcing MinAnswers. Call Sweep between
// platform rounds; it returns how many tasks it closed.
type ConfidenceStopper struct {
	Threshold  float64
	MinAnswers int
	Quality    QualitySource
}

// Sweep closes all open tasks that meet the stopping condition.
func (s *ConfidenceStopper) Sweep(p *core.Pool) int {
	quality := s.Quality
	if quality == nil {
		quality = ConstantQuality(0.7)
	}
	q := &QASCA{Quality: quality}
	var sc qascaScratch
	closed := 0
	for _, id := range p.OpenTasks() {
		if p.AnswerCount(id) < s.MinAnswers {
			continue
		}
		post := q.posterior(p, id, quality, &sc)
		if len(post) == 0 {
			continue
		}
		if maxOf(post) >= s.Threshold {
			p.Close(id)
			closed++
		}
	}
	return closed
}
