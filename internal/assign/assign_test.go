package assign

import (
	"errors"
	"math"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/crowd"
	"repro/internal/stats"
	"repro/internal/truth"
)

func binaryPool(n int, rng *stats.RNG, difficulty float64) *core.Pool {
	p := core.NewPool()
	for i := 0; i < n; i++ {
		p.MustAdd(&core.Task{
			ID: core.TaskID(i + 1), Kind: core.SingleChoice,
			Options: []string{"no", "yes"}, GroundTruth: rng.Intn(2),
			Difficulty: difficulty,
		})
	}
	return p
}

func TestRandomAssignsEligible(t *testing.T) {
	rng := stats.NewRNG(1)
	p := binaryPool(10, rng, 0.2)
	r := &Random{RNG: rng}
	seen := map[core.TaskID]bool{}
	for i := 0; i < 200; i++ {
		id, ok := r.Assign(p, "w1")
		if !ok {
			t.Fatal("no assignment from fresh pool")
		}
		seen[id] = true
	}
	if len(seen) < 8 {
		t.Fatalf("random assigner visited only %d/10 tasks", len(seen))
	}
	// After w1 answers everything, nothing is eligible.
	for _, id := range p.TaskIDs() {
		p.Record(core.Answer{Task: id, Worker: "w1", Option: 0})
	}
	if _, ok := r.Assign(p, "w1"); ok {
		t.Fatal("assigned a task the worker already answered")
	}
	if _, ok := r.Assign(p, "w2"); !ok {
		t.Fatal("other workers should still be assignable")
	}
}

func TestFewestAnswersBalances(t *testing.T) {
	rng := stats.NewRNG(2)
	p := binaryPool(5, rng, 0.2)
	// Give task 1 three answers.
	for _, w := range []string{"a", "b", "c"} {
		p.Record(core.Answer{Task: 1, Worker: w, Option: 0})
	}
	id, ok := FewestAnswers{}.Assign(p, "fresh")
	if !ok || id == 1 {
		t.Fatalf("FewestAnswers picked %d, should avoid loaded task 1", id)
	}
	// Ties break by insertion order.
	id, _ = FewestAnswers{}.Assign(p, "fresh2")
	if id != 2 {
		t.Fatalf("tie-break should give task 2, got %d", id)
	}
}

func TestUncertaintyPrefersSplitVotes(t *testing.T) {
	rng := stats.NewRNG(3)
	p := binaryPool(3, rng, 0.2)
	// Task 1: unanimous 3-0. Task 2: split 2-2 (max entropy). Task 3: two
	// agreeing answers (lower entropy than the split).
	for _, w := range []string{"a", "b", "c"} {
		p.Record(core.Answer{Task: 1, Worker: w, Option: 0})
	}
	p.Record(core.Answer{Task: 2, Worker: "a", Option: 0})
	p.Record(core.Answer{Task: 2, Worker: "b", Option: 0})
	p.Record(core.Answer{Task: 2, Worker: "c", Option: 1})
	p.Record(core.Answer{Task: 2, Worker: "d", Option: 1})
	p.Record(core.Answer{Task: 3, Worker: "a", Option: 1})
	p.Record(core.Answer{Task: 3, Worker: "b", Option: 1})
	id, ok := Uncertainty{}.Assign(p, "fresh")
	if !ok || id != 2 {
		t.Fatalf("Uncertainty picked %d, want the split task 2", id)
	}
}

func TestQASCAPrefersUncertainTask(t *testing.T) {
	rng := stats.NewRNG(4)
	p := binaryPool(2, rng, 0.2)
	// Task 1 is already confident (4-0); task 2 is split (2-2).
	for _, w := range []string{"a", "b", "c", "d"} {
		p.Record(core.Answer{Task: 1, Worker: w, Option: 0})
	}
	p.Record(core.Answer{Task: 2, Worker: "a", Option: 0})
	p.Record(core.Answer{Task: 2, Worker: "b", Option: 0})
	p.Record(core.Answer{Task: 2, Worker: "c", Option: 1})
	p.Record(core.Answer{Task: 2, Worker: "d", Option: 1})
	q := &QASCA{Quality: ConstantQuality(0.8)}
	id, ok := q.Assign(p, "fresh")
	if !ok || id != 2 {
		t.Fatalf("QASCA picked %d, want split task 2", id)
	}
}

func TestQASCACandidatePruning(t *testing.T) {
	rng := stats.NewRNG(5)
	p := binaryPool(50, rng, 0.2)
	q := &QASCA{Quality: ConstantQuality(0.8), Candidates: 5}
	if _, ok := q.Assign(p, "w"); !ok {
		t.Fatal("pruned QASCA failed to assign")
	}
}

func TestQASCAPosteriorConsistency(t *testing.T) {
	rng := stats.NewRNG(6)
	p := binaryPool(1, rng, 0.2)
	q := &QASCA{}
	var sc qascaScratch
	post := q.posterior(p, 1, ConstantQuality(0.8), &sc)
	if math.Abs(post[0]-0.5) > 1e-9 {
		t.Fatalf("empty posterior %v, want uniform", post)
	}
	p.Record(core.Answer{Task: 1, Worker: "a", Option: 1})
	post = q.posterior(p, 1, ConstantQuality(0.8), &sc)
	if post[1] < 0.75 || post[1] > 0.85 {
		t.Fatalf("one 0.8-quality answer should give ~0.8 posterior, got %v", post)
	}
}

func TestExpectedGainPositiveForUncertain(t *testing.T) {
	rng := stats.NewRNG(7)
	p := binaryPool(1, rng, 0.2)
	q := &QASCA{}
	var sc qascaScratch
	gain := q.expectedGain(p, 1, 0.9, ConstantQuality(0.9), &sc)
	if gain <= 0 {
		t.Fatalf("gain on fresh task = %v, want > 0", gain)
	}
	// A very confident task should gain little.
	for _, w := range []string{"a", "b", "c", "d", "e", "f"} {
		p.Record(core.Answer{Task: 1, Worker: w, Option: 0})
	}
	gain2 := q.expectedGain(p, 1, 0.9, ConstantQuality(0.9), &sc)
	if gain2 >= gain {
		t.Fatalf("confident-task gain %v should be below fresh-task gain %v", gain2, gain)
	}
}

func TestConfidenceStopper(t *testing.T) {
	rng := stats.NewRNG(8)
	p := binaryPool(2, rng, 0.2)
	// Task 1: 3 agreeing answers => confident. Task 2: none.
	for _, w := range []string{"a", "b", "c"} {
		p.Record(core.Answer{Task: 1, Worker: w, Option: 0})
	}
	s := &ConfidenceStopper{Threshold: 0.9, MinAnswers: 2, Quality: ConstantQuality(0.8)}
	closed := s.Sweep(p)
	if closed != 1 || !p.Closed(1) || p.Closed(2) {
		t.Fatalf("stopper closed %d; task1 closed=%v task2 closed=%v",
			closed, p.Closed(1), p.Closed(2))
	}
	// MinAnswers guards against closing fresh tasks even at high prior.
	s2 := &ConfidenceStopper{Threshold: 0.4, MinAnswers: 1}
	if n := s2.Sweep(p); n != 0 {
		t.Fatalf("stopper closed %d unanswered tasks", n)
	}
}

// runBudget runs a budget-limited collection with the given assigner and
// returns inferred accuracy under OneCoinEM.
func runBudget(t *testing.T, seed uint64, assigner core.Assigner, budget float64) float64 {
	t.Helper()
	rng := stats.NewRNG(seed)
	pool := core.NewPool()
	for i := 0; i < 150; i++ {
		// Half the tasks are hard: uncertainty-aware policies should
		// funnel extra answers to them.
		d := 0.1
		if i%2 == 0 {
			d = 0.8
		}
		pool.MustAdd(&core.Task{
			ID: core.TaskID(i + 1), Kind: core.SingleChoice,
			Options: []string{"no", "yes"}, GroundTruth: rng.Intn(2),
			Difficulty: d,
		})
	}
	ws := crowd.NewPopulation(rng, 30, crowd.RegimeMixed)
	pl := core.NewPlatform(pool, crowd.AsCoreWorkers(ws), core.NewBudget(budget))
	if _, err := pl.CollectBudget(assigner); err != nil && !errors.Is(err, core.ErrBudgetExhausted) {
		t.Fatal(err)
	}
	ds, err := truth.FromPool(pool, pool.TaskIDs())
	if err != nil {
		t.Fatal(err)
	}
	res, err := truth.OneCoinEM{}.Infer(ds)
	if err != nil {
		t.Fatal(err)
	}
	return truth.Accuracy(res, pool, ds)
}

func TestQualityAwareAssignmentBeatsRandomUnderBudget(t *testing.T) {
	// With a budget of ~3 answers/task, smart assignment should not lose
	// to random assignment. Average over seeds to damp variance.
	seeds := []uint64{11, 12, 13, 14, 15}
	var randAcc, qascaAcc float64
	for _, s := range seeds {
		randAcc += runBudget(t, s, &Random{RNG: stats.NewRNG(s * 7)}, 450)
		qascaAcc += runBudget(t, s, &QASCA{Quality: ConstantQuality(0.75)}, 450)
	}
	randAcc /= float64(len(seeds))
	qascaAcc /= float64(len(seeds))
	if qascaAcc < randAcc-0.02 {
		t.Fatalf("QASCA %.3f clearly worse than random %.3f", qascaAcc, randAcc)
	}
	if randAcc < 0.6 || qascaAcc < 0.6 {
		t.Fatalf("implausibly low accuracies: random %.3f qasca %.3f", randAcc, qascaAcc)
	}
}

func TestAssignersRespectEligibility(t *testing.T) {
	rng := stats.NewRNG(16)
	p := binaryPool(3, rng, 0.2)
	p.Close(1)
	p.Record(core.Answer{Task: 2, Worker: "w", Option: 0})
	assigners := []core.Assigner{
		&Random{RNG: rng},
		FewestAnswers{},
		Uncertainty{},
		&QASCA{},
	}
	for _, a := range assigners {
		id, ok := a.Assign(p, "w")
		if !ok {
			t.Fatal("assigner found nothing with one eligible task")
		}
		if id != 3 {
			t.Fatalf("%T assigned %d; only task 3 is eligible for w", a, id)
		}
	}
}

func TestConstantQuality(t *testing.T) {
	q := ConstantQuality(0.66)
	if q("anyone") != 0.66 {
		t.Fatal("ConstantQuality broken")
	}
}

// TestFewestAnswersLeaseAware: outstanding leases count as in-flight, so
// a leased task is not handed out again while unleased tasks need
// answers, and an expired lease drops the task back to the front.
func TestFewestAnswersLeaseAware(t *testing.T) {
	rng := stats.NewRNG(21)
	p := binaryPool(3, rng, 0.2)
	deadline := time.Unix(1000, 0)

	// Lease task 1 and task 2; the only un-covered task is 3.
	if err := p.Lease(1, "gone1", deadline); err != nil {
		t.Fatal(err)
	}
	if err := p.Lease(2, "gone2", deadline); err != nil {
		t.Fatal(err)
	}
	id, ok := FewestAnswers{}.Assign(p, "fresh")
	if !ok || id != 3 {
		t.Fatalf("assigned %d, want the unleased task 3", id)
	}

	// After the sweep reclaims both leases, insertion order wins again.
	if exp := p.ExpireLeases(deadline.Add(time.Second)); len(exp) != 2 {
		t.Fatalf("expired %d leases, want 2", len(exp))
	}
	id, ok = FewestAnswers{}.Assign(p, "fresh")
	if !ok || id != 1 {
		t.Fatalf("assigned %d after reclamation, want 1", id)
	}
}

// TestFewestAnswersUnchangedWithoutLeases is the determinism guard for
// the lease-aware rewrite: on a pool that never leases, InFlight equals
// AnswerCount, so assignments (and therefore CollectRedundant cost and
// makespan) are identical to the pre-lease policy.
func TestFewestAnswersUnchangedWithoutLeases(t *testing.T) {
	// Reference implementation: the pre-lease AnswerCount-balanced policy.
	legacy := core.AssignerFunc(func(p *core.Pool, worker string) (core.TaskID, bool) {
		el := p.EligibleFor(worker)
		if len(el) == 0 {
			return 0, false
		}
		best := el[0]
		bestN := p.AnswerCount(best)
		for _, id := range el[1:] {
			if n := p.AnswerCount(id); n < bestN {
				best, bestN = id, n
			}
		}
		return best, true
	})

	run := func(assigner core.Assigner) (core.RunResult, []int) {
		rng := stats.NewRNG(77)
		p := binaryPool(30, rng, 0.3)
		ws := crowd.AsCoreWorkers(crowd.NewPopulation(rng, 9, crowd.RegimeMixed))
		pl := core.NewPlatform(p, ws, core.NewBudget(30*5+50))
		res, err := pl.CollectRedundant(assigner, 5)
		if err != nil && !errors.Is(err, core.ErrBudgetExhausted) {
			t.Fatal(err)
		}
		counts := make([]int, 0, 30)
		for _, id := range p.TaskIDs() {
			counts = append(counts, p.AnswerCount(id))
		}
		return res, counts
	}

	gotRes, gotCounts := run(FewestAnswers{})
	wantRes, wantCounts := run(legacy)
	if gotRes != wantRes {
		t.Fatalf("lease-aware run diverged without leases:\n got %+v\nwant %+v", gotRes, wantRes)
	}
	for i := range gotCounts {
		if gotCounts[i] != wantCounts[i] {
			t.Fatalf("task %d answer count %d != legacy %d", i+1, gotCounts[i], wantCounts[i])
		}
	}
}
