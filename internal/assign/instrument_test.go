package assign

import (
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/stats"
)

// TestInstrumentCountsRequestsAndMisses wraps FewestAnswers, drains a
// small pool, and checks the labeled counters: every Assign call is
// counted, misses only when the pool has nothing eligible, and the
// latency histogram saw every call.
func TestInstrumentCountsRequestsAndMisses(t *testing.T) {
	rng := stats.NewRNG(5)
	p := binaryPool(3, rng, 0.2)
	reg := obs.NewRegistry()
	a := Instrument(FewestAnswers{}, reg, "fewest-answers")

	hits, misses := 0, 0
	for i := 0; i < 5; i++ {
		id, ok := a.Assign(p, "solo")
		if !ok {
			misses++
			continue
		}
		hits++
		if err := p.Record(core.Answer{Task: id, Worker: "solo", Option: 0}); err != nil {
			t.Fatal(err)
		}
	}
	if hits != 3 || misses != 2 {
		t.Fatalf("hits=%d misses=%d, want 3 and 2", hits, misses)
	}

	snap := reg.Snapshot()
	pl := `{policy="fewest-answers"}`
	if got := snap["crowdkit_assign_requests_total"+pl]; got != 5 {
		t.Fatalf("requests = %v, want 5", got)
	}
	if got := snap["crowdkit_assign_misses_total"+pl]; got != 2 {
		t.Fatalf("misses = %v, want 2", got)
	}
	if got := snap["crowdkit_assign_seconds_count"+pl]; got != 5 {
		t.Fatalf("latency observations = %v, want 5", got)
	}
}

// TestInstrumentNilRegistry: the wrapper must pass assignments through
// unchanged with no registry at all.
func TestInstrumentNilRegistry(t *testing.T) {
	rng := stats.NewRNG(6)
	p := binaryPool(4, rng, 0.2)
	a := Instrument(FewestAnswers{}, nil, "bare")
	seen := map[core.TaskID]bool{}
	for i := 0; i < 4; i++ {
		id, ok := a.Assign(p, "solo")
		if !ok {
			t.Fatalf("assign %d: no task from fresh pool", i)
		}
		seen[id] = true
		if err := p.Record(core.Answer{Task: id, Worker: "solo", Option: 0}); err != nil {
			t.Fatal(err)
		}
	}
	if len(seen) != 4 {
		t.Fatalf("instrumented-nil assigner reached %d/4 tasks", len(seen))
	}
	if _, ok := a.Assign(p, "solo"); ok {
		t.Fatal("drained pool still assigned a task")
	}
}
