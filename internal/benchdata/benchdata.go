// Package benchdata builds the seeded synthetic workloads shared by the
// kernel benchmarks (internal/truth, internal/cost) and the benchrunner's
// machine-readable benchmark mode. Keeping the generators in one place
// guarantees that `go test -bench` and `benchrunner -benchjson` time the
// same inputs, so numbers are comparable across PRs.
package benchdata

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/crowd"
	"repro/internal/stats"
	"repro/internal/truth"
)

// ChoiceWorkload plants nTasks binary choice tasks with the given
// difficulty, collects redundancy-k answers from a mixed-regime crowd of
// nWorkers, and returns the pool plus its inference Dataset.
func ChoiceWorkload(seed uint64, nTasks, nWorkers, k int, difficulty float64) (*core.Pool, *truth.Dataset) {
	rng := stats.NewRNG(seed)
	pool := core.NewPool()
	for i := 0; i < nTasks; i++ {
		pool.MustAdd(&core.Task{
			ID: core.TaskID(i + 1), Kind: core.SingleChoice,
			Options:     []string{"no", "yes"},
			GroundTruth: rng.Intn(2),
			Difficulty:  difficulty,
		})
	}
	ws := crowd.NewPopulation(rng, nWorkers, crowd.RegimeMixed)
	pl := core.NewPlatform(pool, crowd.AsCoreWorkers(ws), core.Unlimited())
	assigner := core.AssignerFunc(func(p *core.Pool, worker string) (core.TaskID, bool) {
		el := p.EligibleFor(worker)
		if len(el) == 0 {
			return 0, false
		}
		best := el[0]
		for _, id := range el[1:] {
			if p.AnswerCount(id) < p.AnswerCount(best) {
				best = id
			}
		}
		return best, true
	})
	if _, err := pl.CollectRedundant(assigner, k); err != nil {
		panic(err)
	}
	ds, err := truth.FromPool(pool, pool.TaskIDs())
	if err != nil {
		panic(err)
	}
	return pool, ds
}

// Records generates n product-style record strings with overlapping token
// vocabulary, the input shape of the similarity-join benchmarks.
func Records(seed uint64, n int) []string {
	rng := stats.NewRNG(seed)
	brands := []string{"acme", "globex", "initech", "umbrella", "soylent", "hooli"}
	kinds := []string{"phone", "tablet", "laptop", "camera", "router", "monitor"}
	colors := []string{"silver", "black", "white", "blue", "red"}
	recs := make([]string, n)
	for i := range recs {
		recs[i] = fmt.Sprintf("%s %s %s %d gen%d sku%d",
			brands[rng.Intn(len(brands))], kinds[rng.Intn(len(kinds))],
			colors[rng.Intn(len(colors))], 100+rng.Intn(900),
			1+rng.Intn(4), rng.Intn(n))
	}
	return recs
}
