package latency

import (
	"container/heap"
	"fmt"

	"repro/internal/stats"
)

// AsyncConfig parameterizes the asynchronous completion model: workers
// arrive as a Poisson process, repeatedly claim the task with the fewest
// answers, work for a drawn latency, and stay for a limited session.
type AsyncConfig struct {
	Tasks      int
	Redundancy int
	// ArrivalRate is the Poisson rate of worker arrivals (workers/second).
	ArrivalRate float64
	// SessionTasks is how many tasks each arriving worker performs before
	// leaving (the empirical "session length" of microtask workers).
	SessionTasks int
	// Latency is the per-answer latency distribution.
	Latency LatencyModel
	// MaxSimTime bounds the simulation (seconds); 0 means 30 days.
	MaxSimTime float64
	// DropoutProb is the probability that a claimed task is abandoned:
	// the worker walks away mid-task and their session ends (crowd
	// churn). The reserved slot is released at the moment the answer
	// would have arrived, so the task is claimable again — without the
	// release, every abandoned claim would permanently block a slot and
	// the run could never complete.
	DropoutProb float64
}

// AsyncResult reports the asynchronous schedule.
type AsyncResult struct {
	// Makespan is the simulated time at which every task reached the
	// redundancy target (or MaxSimTime if it never did).
	Makespan float64
	// Completed reports whether all tasks finished within MaxSimTime.
	Completed bool
	// WorkersArrived counts arrivals during the run.
	WorkersArrived int
	// AnswersCollected counts answers submitted.
	AnswersCollected int
	// CompletionTimes holds, for each milestone decile (10%, 20%, ... of
	// total needed answers), the simulated time it was reached.
	CompletionTimes []float64
	// Abandoned counts claims that were dropped without an answer.
	Abandoned int
}

// event kinds in the simulation queue.
const (
	evArrival  = iota // a new worker arrives
	evComplete        // a claimed answer is submitted
	evAbandon         // a claimed answer is dropped; the slot is released
)

// event is an entry in the simulation's time-ordered queue.
type event struct {
	at   float64
	kind int
	// task is the claimed task index for completion/abandon events.
	task int
	// worker session state for completions:
	remaining int
}

type eventHeap []event

func (h eventHeap) Len() int           { return len(h) }
func (h eventHeap) Less(i, j int) bool { return h[i].at < h[j].at }
func (h eventHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)        { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any          { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h *eventHeap) push(e event)      { heap.Push(h, e) }
func (h *eventHeap) pop() (event, bool) {
	if h.Len() == 0 {
		return event{}, false
	}
	return heap.Pop(h).(event), true
}

// SimulateAsync runs the event-driven completion model.
func SimulateAsync(rng *stats.RNG, cfg AsyncConfig) (*AsyncResult, error) {
	if cfg.Tasks <= 0 || cfg.Redundancy <= 0 {
		return nil, fmt.Errorf("latency: tasks and redundancy must be positive (got %d, %d)",
			cfg.Tasks, cfg.Redundancy)
	}
	if cfg.ArrivalRate <= 0 {
		return nil, fmt.Errorf("latency: arrival rate must be positive (got %v)", cfg.ArrivalRate)
	}
	if cfg.SessionTasks <= 0 {
		cfg.SessionTasks = 20
	}
	if cfg.Latency == nil {
		cfg.Latency = LogNormalLatency(10, 1)
	}
	maxT := cfg.MaxSimTime
	if maxT <= 0 {
		maxT = 30 * 24 * 3600
	}

	needTotal := cfg.Tasks * cfg.Redundancy
	// answers[i] counts committed answers for task i; pending[i] counts
	// in-flight claims. Claims reserve a pending slot so two workers do
	// not pile onto the same slot; the reservation is released either by
	// the completion (pending -> answers) or by an abandon event (crowd
	// dropout). Only committed answers satisfy the redundancy target.
	answers := make([]int, cfg.Tasks)
	pending := make([]int, cfg.Tasks)
	collected := 0
	res := &AsyncResult{}
	deciles := make([]float64, 0, 10)
	nextMilestone := needTotal / 10
	if nextMilestone == 0 {
		nextMilestone = 1
	}
	milestone := nextMilestone

	var q eventHeap
	q.push(event{at: rng.Exp(cfg.ArrivalRate), kind: evArrival})

	claim := func() (int, bool) {
		best, bestN := -1, 1<<31-1
		for i := range answers {
			if n := answers[i] + pending[i]; n < cfg.Redundancy && n < bestN {
				best, bestN = i, n
			}
		}
		if best < 0 {
			return 0, false
		}
		return best, true
	}

	// claimNext reserves the neediest slot for a worker at time now with
	// `remaining` further session tasks after this one, and schedules the
	// completion — or, under dropout, the abandonment — of the claim. The
	// dropout draw is guarded so zero-dropout runs consume the identical
	// random stream as the pre-dropout model (determinism guard).
	claimNext := func(now float64, remaining int) {
		ti, ok := claim()
		if !ok {
			return
		}
		pending[ti]++
		at := now + cfg.Latency(rng)
		if cfg.DropoutProb > 0 && rng.Bool(cfg.DropoutProb) {
			q.push(event{at: at, kind: evAbandon, task: ti})
			return
		}
		q.push(event{at: at, kind: evComplete, task: ti, remaining: remaining})
	}

	for {
		e, ok := q.pop()
		if !ok || e.at > maxT {
			res.Makespan = maxT
			res.Completed = false
			// Report the decile milestones reached before the cutoff, so a
			// timed-out run still shows its partial progress curve.
			res.CompletionTimes = deciles
			return res, nil
		}
		switch e.kind {
		case evArrival:
			res.WorkersArrived++
			// Schedule the next arrival.
			q.push(event{at: e.at + rng.Exp(cfg.ArrivalRate), kind: evArrival})
			// The new worker claims a task if any remain.
			claimNext(e.at, cfg.SessionTasks-1)
		case evComplete:
			pending[e.task]--
			answers[e.task]++
			collected++
			res.AnswersCollected++
			if collected >= milestone && len(deciles) < 10 {
				deciles = append(deciles, e.at)
				milestone += nextMilestone
			}
			if collected >= needTotal {
				res.Makespan = e.at
				res.Completed = true
				res.CompletionTimes = deciles
				return res, nil
			}
			if e.remaining > 0 {
				claimNext(e.at, e.remaining-1)
			}
		case evAbandon:
			// The worker walked away mid-task: release the reserved slot so
			// the task is claimable again, and end their session (a dropped
			// worker does not come back).
			pending[e.task]--
			res.Abandoned++
		}
	}
}
