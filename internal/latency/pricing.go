package latency

import (
	"fmt"
	"math"

	"repro/internal/stats"
)

// PricingModel maps a per-task reward to a worker arrival rate — the
// "pay more, wait less" lever of latency control. Empirical platform
// studies find a superlinear supply response around the going rate, which
// the power-law form captures:
//
//	rate(price) = BaseRate · (price / ReferencePrice)^Elasticity
type PricingModel struct {
	// BaseRate is the arrival rate (workers/second) at the reference
	// price.
	BaseRate float64
	// ReferencePrice is the market-rate reward per task.
	ReferencePrice float64
	// Elasticity is the supply elasticity (> 0; typical fits 1–2).
	Elasticity float64
}

// Validate checks the model parameters.
func (m PricingModel) Validate() error {
	if m.BaseRate <= 0 || m.ReferencePrice <= 0 || m.Elasticity <= 0 {
		return fmt.Errorf("latency: pricing model parameters must be positive (%+v)", m)
	}
	return nil
}

// ArrivalRate returns the modeled arrival rate at the given price.
func (m PricingModel) ArrivalRate(price float64) float64 {
	if price <= 0 {
		return 0
	}
	return m.BaseRate * math.Pow(price/m.ReferencePrice, m.Elasticity)
}

// PriceLatencyPoint is one evaluated point of the price sweep.
type PriceLatencyPoint struct {
	Price       float64
	ArrivalRate float64
	Makespan    float64
	// TotalCost is price × answers collected.
	TotalCost float64
	Completed bool
}

// PriceSweep simulates the same workload at several price points and
// reports the latency/cost frontier.
func PriceSweep(rng *stats.RNG, model PricingModel, cfg AsyncConfig, prices []float64) ([]PriceLatencyPoint, error) {
	if err := model.Validate(); err != nil {
		return nil, err
	}
	if len(prices) == 0 {
		return nil, fmt.Errorf("latency: empty price list")
	}
	out := make([]PriceLatencyPoint, 0, len(prices))
	for _, price := range prices {
		rate := model.ArrivalRate(price)
		if rate <= 0 {
			return nil, fmt.Errorf("latency: price %v yields no arrivals", price)
		}
		c := cfg
		c.ArrivalRate = rate
		res, err := SimulateAsync(rng.Split(), c)
		if err != nil {
			return nil, err
		}
		out = append(out, PriceLatencyPoint{
			Price:       price,
			ArrivalRate: rate,
			Makespan:    res.Makespan,
			TotalCost:   price * float64(res.AnswersCollected),
			Completed:   res.Completed,
		})
	}
	return out, nil
}
