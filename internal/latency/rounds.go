// Package latency implements the latency-control models of crowdsourced
// data management: the synchronous round model (a query proceeds in
// rounds; each round lasts as long as its slowest answer), straggler
// mitigation by task re-issue, and an asynchronous event-driven completion
// model with Poisson worker arrivals.
//
// The survey's observation is that crowd latency is dominated by the long
// tail of slow workers ("stragglers") and by how many rounds a plan
// needs; both are modeled here on a simulated clock, seeded and
// deterministic.
package latency

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/stats"
)

// LatencyModel draws one answer latency (seconds) for a worker.
type LatencyModel func(rng *stats.RNG) float64

// LogNormalLatency returns the standard microtask latency model: a
// log-normal with the given median (seconds) and sigma. Typical platform
// fits use medians of 10-60s with sigma 0.5-1.5.
func LogNormalLatency(median, sigma float64) LatencyModel {
	if median <= 0 {
		median = 10
	}
	mu := math.Log(median)
	return func(rng *stats.RNG) float64 {
		return rng.LogNormal(mu, sigma)
	}
}

// RoundConfig parameterizes a synchronous round-model simulation.
type RoundConfig struct {
	Tasks      int          // number of distinct tasks
	Workers    int          // workers available per round
	Redundancy int          // answers needed per task
	Latency    LatencyModel // per-answer latency distribution
	// MitigateAfter, when in (0,1), enables straggler mitigation: once
	// this fraction of a round's assignments has completed, unfinished
	// assignments are re-issued to already-finished workers and the round
	// takes the earlier of the two completions per assignment.
	MitigateAfter float64
}

// RoundResult reports the simulated schedule.
type RoundResult struct {
	Rounds     int
	Makespan   float64
	RoundTimes []float64
	// Reissued counts assignments duplicated by straggler mitigation.
	Reissued int
	// TotalAnswers includes mitigation duplicates (the cost of latency).
	TotalAnswers int
}

// SimulateRounds runs the synchronous round model: every round assigns
// min(Workers, remaining-need) tasks, one per worker; a round ends when
// its slowest assignment finishes. Redundancy-k means each task must be
// answered k times (by distinct assignments).
func SimulateRounds(rng *stats.RNG, cfg RoundConfig) (*RoundResult, error) {
	if cfg.Tasks <= 0 || cfg.Workers <= 0 || cfg.Redundancy <= 0 {
		return nil, fmt.Errorf("latency: tasks, workers, redundancy must be positive (got %d, %d, %d)",
			cfg.Tasks, cfg.Workers, cfg.Redundancy)
	}
	if cfg.Latency == nil {
		cfg.Latency = LogNormalLatency(10, 1)
	}
	if cfg.MitigateAfter < 0 || cfg.MitigateAfter >= 1 {
		cfg.MitigateAfter = 0
	}
	need := cfg.Tasks * cfg.Redundancy
	res := &RoundResult{}
	for need > 0 {
		n := cfg.Workers
		if n > need {
			n = need
		}
		lats := make([]float64, n)
		for i := range lats {
			lats[i] = cfg.Latency(rng)
		}
		res.TotalAnswers += n
		roundTime := 0.0
		if cfg.MitigateAfter > 0 && n > 1 {
			roundTime = mitigateRound(rng, cfg, lats, res)
		} else {
			for _, l := range lats {
				if l > roundTime {
					roundTime = l
				}
			}
		}
		res.RoundTimes = append(res.RoundTimes, roundTime)
		res.Makespan += roundTime
		res.Rounds++
		need -= n
	}
	return res, nil
}

// mitigateRound applies re-issue mitigation to one round's latencies and
// returns the mitigated round time.
func mitigateRound(rng *stats.RNG, cfg RoundConfig, lats []float64, res *RoundResult) float64 {
	sorted := append([]float64(nil), lats...)
	sort.Float64s(sorted)
	cut := int(cfg.MitigateAfter * float64(len(sorted)))
	if cut >= len(sorted) {
		cut = len(sorted) - 1
	}
	if cut < 1 {
		cut = 1
	}
	trigger := sorted[cut-1] // time the mitigation threshold is reached
	roundTime := 0.0
	for _, l := range lats {
		finish := l
		if l > trigger {
			// Re-issue to a finished (fast) worker at the trigger time.
			re := trigger + cfg.Latency(rng)
			res.Reissued++
			res.TotalAnswers++
			if re < finish {
				finish = re
			}
		}
		if finish > roundTime {
			roundTime = finish
		}
	}
	return roundTime
}
