package latency

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/stats"
)

func TestLogNormalLatencyMedian(t *testing.T) {
	rng := stats.NewRNG(1)
	m := LogNormalLatency(20, 0.8)
	xs := make([]float64, 20000)
	for i := range xs {
		xs[i] = m(rng)
		if xs[i] <= 0 {
			t.Fatalf("non-positive latency %v", xs[i])
		}
	}
	med := stats.Median(xs)
	if math.Abs(med-20) > 1.0 {
		t.Fatalf("median latency %v, want ~20", med)
	}
}

func TestSimulateRoundsBasic(t *testing.T) {
	rng := stats.NewRNG(2)
	res, err := SimulateRounds(rng, RoundConfig{
		Tasks: 100, Workers: 50, Redundancy: 3,
		Latency: LogNormalLatency(10, 0.8),
	})
	if err != nil {
		t.Fatal(err)
	}
	// 300 assignments at 50/round = 6 rounds.
	if res.Rounds != 6 {
		t.Fatalf("rounds = %d, want 6", res.Rounds)
	}
	if res.TotalAnswers != 300 {
		t.Fatalf("answers = %d", res.TotalAnswers)
	}
	if len(res.RoundTimes) != 6 {
		t.Fatalf("round times = %v", res.RoundTimes)
	}
	sum := 0.0
	for _, rt := range res.RoundTimes {
		if rt <= 0 {
			t.Fatalf("round time %v", rt)
		}
		sum += rt
	}
	if math.Abs(sum-res.Makespan) > 1e-9 {
		t.Fatalf("makespan %v != sum of rounds %v", res.Makespan, sum)
	}
}

func TestSimulateRoundsValidation(t *testing.T) {
	rng := stats.NewRNG(3)
	if _, err := SimulateRounds(rng, RoundConfig{Tasks: 0, Workers: 1, Redundancy: 1}); err == nil {
		t.Fatal("zero tasks should fail")
	}
	if _, err := SimulateRounds(rng, RoundConfig{Tasks: 1, Workers: 0, Redundancy: 1}); err == nil {
		t.Fatal("zero workers should fail")
	}
	if _, err := SimulateRounds(rng, RoundConfig{Tasks: 1, Workers: 1, Redundancy: 0}); err == nil {
		t.Fatal("zero redundancy should fail")
	}
}

func TestMoreWorkersFewerRounds(t *testing.T) {
	base := RoundConfig{Tasks: 200, Redundancy: 3, Latency: LogNormalLatency(10, 1)}
	small := base
	small.Workers = 20
	big := base
	big.Workers = 200
	rs, err := SimulateRounds(stats.NewRNG(4), small)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := SimulateRounds(stats.NewRNG(4), big)
	if err != nil {
		t.Fatal(err)
	}
	if rb.Rounds >= rs.Rounds {
		t.Fatalf("more workers should mean fewer rounds: %d vs %d", rb.Rounds, rs.Rounds)
	}
	if rb.Makespan >= rs.Makespan {
		t.Fatalf("more workers should cut makespan: %v vs %v", rb.Makespan, rs.Makespan)
	}
}

func TestStragglerMitigationCutsMakespan(t *testing.T) {
	// A heavy-tailed latency distribution is where mitigation pays.
	heavyTail := LogNormalLatency(10, 1.8)
	noMit := RoundConfig{Tasks: 100, Workers: 100, Redundancy: 2, Latency: heavyTail}
	mit := noMit
	mit.MitigateAfter = 0.8

	// Average over several seeds to damp variance.
	var mk0, mk1 float64
	for seed := uint64(10); seed < 20; seed++ {
		r0, err := SimulateRounds(stats.NewRNG(seed), noMit)
		if err != nil {
			t.Fatal(err)
		}
		r1, err := SimulateRounds(stats.NewRNG(seed), mit)
		if err != nil {
			t.Fatal(err)
		}
		mk0 += r0.Makespan
		mk1 += r1.Makespan
		if r1.Reissued == 0 {
			t.Fatal("mitigation never re-issued anything")
		}
		if r1.TotalAnswers <= r0.TotalAnswers {
			t.Fatal("mitigation should cost extra answers")
		}
	}
	if mk1 >= mk0 {
		t.Fatalf("mitigated makespan %v >= unmitigated %v", mk1/10, mk0/10)
	}
}

func TestSimulateAsyncCompletes(t *testing.T) {
	rng := stats.NewRNG(5)
	res, err := SimulateAsync(rng, AsyncConfig{
		Tasks: 100, Redundancy: 3,
		ArrivalRate:  0.5, // a worker every 2s on average
		SessionTasks: 10,
		Latency:      LogNormalLatency(10, 0.8),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("simulation did not complete")
	}
	if res.AnswersCollected != 300 {
		t.Fatalf("answers = %d", res.AnswersCollected)
	}
	if res.Makespan <= 0 {
		t.Fatalf("makespan = %v", res.Makespan)
	}
	if len(res.CompletionTimes) == 0 {
		t.Fatal("no decile milestones recorded")
	}
	for i := 1; i < len(res.CompletionTimes); i++ {
		if res.CompletionTimes[i] < res.CompletionTimes[i-1] {
			t.Fatal("milestones not monotone")
		}
	}
}

func TestSimulateAsyncValidation(t *testing.T) {
	rng := stats.NewRNG(6)
	if _, err := SimulateAsync(rng, AsyncConfig{Tasks: 0, Redundancy: 1, ArrivalRate: 1}); err == nil {
		t.Fatal("zero tasks should fail")
	}
	if _, err := SimulateAsync(rng, AsyncConfig{Tasks: 1, Redundancy: 1, ArrivalRate: 0}); err == nil {
		t.Fatal("zero arrival rate should fail")
	}
}

func TestSimulateAsyncTimeBound(t *testing.T) {
	rng := stats.NewRNG(7)
	// Arrival rate so low the workload cannot finish in the time bound.
	res, err := SimulateAsync(rng, AsyncConfig{
		Tasks: 1000, Redundancy: 5,
		ArrivalRate: 0.0001, SessionTasks: 1,
		Latency:    LogNormalLatency(10, 0.5),
		MaxSimTime: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed {
		t.Fatal("implausible completion under starved arrivals")
	}
	if res.Makespan != 1000 {
		t.Fatalf("makespan should be the bound: %v", res.Makespan)
	}
}

func TestSimulateAsyncTimeoutKeepsPartialDeciles(t *testing.T) {
	rng := stats.NewRNG(13)
	// Enough arrivals to pass several decile milestones, but a session
	// limit and time bound that make the full workload impossible: the
	// run must time out while still reporting the deciles it reached.
	res, err := SimulateAsync(rng, AsyncConfig{
		Tasks: 50, Redundancy: 4,
		ArrivalRate: 2, SessionTasks: 1,
		Latency:    LogNormalLatency(5, 0.5),
		MaxSimTime: 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed {
		t.Fatal("workload should not complete within the time bound")
	}
	if res.AnswersCollected == 0 {
		t.Fatal("no answers collected before the cutoff")
	}
	if len(res.CompletionTimes) == 0 {
		t.Fatalf("timed-out run dropped its partial deciles (%d answers collected)",
			res.AnswersCollected)
	}
	if len(res.CompletionTimes) >= 10 {
		t.Fatalf("partial run reports %d deciles", len(res.CompletionTimes))
	}
	for i, at := range res.CompletionTimes {
		if at > res.Makespan {
			t.Fatalf("decile %d at %v exceeds makespan %v", i, at, res.Makespan)
		}
		if i > 0 && at < res.CompletionTimes[i-1] {
			t.Fatal("partial milestones not monotone")
		}
	}
}

func TestAsyncHigherArrivalRateFaster(t *testing.T) {
	run := func(rate float64) float64 {
		res, err := SimulateAsync(stats.NewRNG(8), AsyncConfig{
			Tasks: 200, Redundancy: 3, ArrivalRate: rate,
			SessionTasks: 10, Latency: LogNormalLatency(10, 0.8),
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Makespan
	}
	slow := run(0.05)
	fast := run(1.0)
	if fast >= slow {
		t.Fatalf("20x arrival rate should cut makespan: %v vs %v", fast, slow)
	}
}

func TestAsyncRedundancyScalesAnswers(t *testing.T) {
	for _, k := range []int{1, 3, 5} {
		res, err := SimulateAsync(stats.NewRNG(9), AsyncConfig{
			Tasks: 50, Redundancy: k, ArrivalRate: 0.5,
			SessionTasks: 20, Latency: LogNormalLatency(5, 0.5),
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.AnswersCollected != 50*k {
			t.Fatalf("k=%d: answers = %d", k, res.AnswersCollected)
		}
	}
}

func TestPricingModelArrivalRate(t *testing.T) {
	m := PricingModel{BaseRate: 0.2, ReferencePrice: 0.05, Elasticity: 1.5}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// At the reference price, the base rate.
	if r := m.ArrivalRate(0.05); math.Abs(r-0.2) > 1e-12 {
		t.Fatalf("rate at reference = %v", r)
	}
	// Double price: 2^1.5 ≈ 2.83x arrivals.
	if r := m.ArrivalRate(0.10); math.Abs(r-0.2*math.Pow(2, 1.5)) > 1e-9 {
		t.Fatalf("rate at 2x = %v", r)
	}
	if m.ArrivalRate(0) != 0 {
		t.Fatal("zero price should yield zero arrivals")
	}
	bad := PricingModel{BaseRate: 0, ReferencePrice: 1, Elasticity: 1}
	if err := bad.Validate(); err == nil {
		t.Fatal("zero base rate should fail validation")
	}
}

func TestPriceSweepFrontier(t *testing.T) {
	rng := stats.NewRNG(50)
	model := PricingModel{BaseRate: 0.1, ReferencePrice: 0.05, Elasticity: 1.5}
	cfg := AsyncConfig{
		Tasks: 200, Redundancy: 3, SessionTasks: 15,
		Latency: LogNormalLatency(10, 0.8),
	}
	prices := []float64{0.02, 0.05, 0.10, 0.20}
	points, err := PriceSweep(rng, model, cfg, prices)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("points = %d", len(points))
	}
	// Makespan falls with price; total cost rises with price.
	for i := 1; i < len(points); i++ {
		if points[i].Makespan >= points[i-1].Makespan {
			t.Fatalf("makespan did not fall with price: %+v", points)
		}
		if points[i].TotalCost <= points[i-1].TotalCost {
			t.Fatalf("total cost did not rise with price: %+v", points)
		}
	}
	for _, p := range points {
		if !p.Completed {
			t.Fatalf("workload incomplete at price %v", p.Price)
		}
	}
}

func TestPriceSweepValidation(t *testing.T) {
	rng := stats.NewRNG(51)
	model := PricingModel{BaseRate: 0.1, ReferencePrice: 0.05, Elasticity: 1.5}
	cfg := AsyncConfig{Tasks: 10, Redundancy: 1, Latency: LogNormalLatency(5, 0.5)}
	if _, err := PriceSweep(rng, model, cfg, nil); err == nil {
		t.Fatal("empty price list should fail")
	}
	if _, err := PriceSweep(rng, PricingModel{}, cfg, []float64{0.05}); err == nil {
		t.Fatal("invalid model should fail")
	}
}

// TestSimulateAsyncZeroDropoutGolden is the determinism guard for the
// pending-reservation rework: with DropoutProb 0, the simulation must
// consume the identical random stream and produce bit-identical results
// to the pre-dropout model (values pinned from the original code).
func TestSimulateAsyncZeroDropoutGolden(t *testing.T) {
	res, err := SimulateAsync(stats.NewRNG(424242), AsyncConfig{
		Tasks: 40, Redundancy: 3, ArrivalRate: 0.5, SessionTasks: 6,
		Latency: LogNormalLatency(8, 0.6),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || res.AnswersCollected != 120 || res.WorkersArrived != 33 {
		t.Fatalf("run shape changed: %+v", res)
	}
	if got := fmt.Sprintf("%.10f", res.Makespan); got != "86.7513348007" {
		t.Fatalf("makespan = %s, want 86.7513348007 (zero-dropout stream diverged)", got)
	}
	if got := fmt.Sprintf("%.10f", res.CompletionTimes[0]); got != "26.0752549370" {
		t.Fatalf("first decile = %s, want 26.0752549370", got)
	}
	if res.Abandoned != 0 {
		t.Fatalf("zero-dropout run abandoned %d claims", res.Abandoned)
	}
}

// TestSimulateAsyncDropoutReleasesSlots: abandoned claims must release
// their reserved slots, so the run still completes — just later and with
// more worker arrivals than a churn-free crowd.
func TestSimulateAsyncDropoutReleasesSlots(t *testing.T) {
	cfg := AsyncConfig{
		Tasks: 30, Redundancy: 3, ArrivalRate: 1, SessionTasks: 8,
		Latency: LogNormalLatency(5, 0.5),
	}
	base, err := SimulateAsync(stats.NewRNG(31), cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.DropoutProb = 0.3
	churn, err := SimulateAsync(stats.NewRNG(31), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !churn.Completed {
		t.Fatalf("dropout run never completed: stranded reservations block claims (%+v)", churn)
	}
	if churn.Abandoned == 0 {
		t.Fatal("30% dropout produced zero abandoned claims")
	}
	// Every task still got its k committed answers.
	if churn.AnswersCollected != cfg.Tasks*cfg.Redundancy {
		t.Fatalf("answers = %d, want %d", churn.AnswersCollected, cfg.Tasks*cfg.Redundancy)
	}
	if churn.Makespan < base.Makespan {
		t.Fatalf("churn makespan %v faster than churn-free %v", churn.Makespan, base.Makespan)
	}
}

// TestSimulateAsyncFullDropoutTimesOut: if every claim is abandoned, no
// answer ever lands; the run must hit MaxSimTime with zero collected
// answers instead of hanging or miscounting reservations as progress.
func TestSimulateAsyncFullDropoutTimesOut(t *testing.T) {
	res, err := SimulateAsync(stats.NewRNG(32), AsyncConfig{
		Tasks: 5, Redundancy: 2, ArrivalRate: 2, SessionTasks: 4,
		Latency: LogNormalLatency(1, 0.3), MaxSimTime: 50, DropoutProb: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed || res.AnswersCollected != 0 {
		t.Fatalf("full-dropout run claims progress: %+v", res)
	}
	if res.Abandoned == 0 {
		t.Fatal("no abandonments counted")
	}
	if res.Makespan != 50 {
		t.Fatalf("makespan = %v, want the 50s cutoff", res.Makespan)
	}
}
