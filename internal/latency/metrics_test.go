package latency

import (
	"testing"

	"repro/internal/obs"
	"repro/internal/stats"
)

// TestRecordAsync publishes a simulation result and checks the snapshot:
// counters match the result's accounting, the makespan gauge holds the
// last run, and the milestone histogram saw one observation per decile.
func TestRecordAsync(t *testing.T) {
	res, err := SimulateAsync(stats.NewRNG(31), AsyncConfig{
		Tasks: 50, Redundancy: 3, ArrivalRate: 0.5,
		SessionTasks: 20, Latency: LogNormalLatency(5, 0.5),
	})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	RecordAsync(reg, res)

	snap := reg.Snapshot()
	if got := snap["crowdkit_sim_runs_total"]; got != 1 {
		t.Fatalf("runs = %v, want 1", got)
	}
	if got := snap["crowdkit_sim_answers_total"]; got != float64(res.AnswersCollected) {
		t.Fatalf("answers = %v, want %d", got, res.AnswersCollected)
	}
	if got := snap["crowdkit_sim_abandons_total"]; got != float64(res.Abandoned) {
		t.Fatalf("abandons = %v, want %d", got, res.Abandoned)
	}
	if got := snap["crowdkit_sim_makespan_sim_seconds"]; got != res.Makespan {
		t.Fatalf("makespan gauge = %v, want %v", got, res.Makespan)
	}
	if got := snap["crowdkit_sim_milestone_sim_seconds_count"]; got != float64(len(res.CompletionTimes)) {
		t.Fatalf("milestone observations = %v, want %d", got, len(res.CompletionTimes))
	}
	if res.Completed {
		if got := snap["crowdkit_sim_completed_total"]; got != 1 {
			t.Fatalf("completed = %v, want 1", got)
		}
	}

	// Nil registry and nil result are both no-ops, not panics.
	RecordAsync(nil, res)
	RecordAsync(reg, nil)
	if got := reg.Snapshot()["crowdkit_sim_runs_total"]; got != 1 {
		t.Fatalf("nil-result record mutated the registry: runs = %v", got)
	}
}
