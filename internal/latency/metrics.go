package latency

import "repro/internal/obs"

// RecordAsync publishes one asynchronous-crowd simulation outcome to reg:
//
//	crowdkit_sim_runs_total                   simulations recorded
//	crowdkit_sim_completed_total              runs that met the redundancy target in time
//	crowdkit_sim_answers_total                answers collected across runs
//	crowdkit_sim_abandons_total               claims dropped without an answer
//	crowdkit_sim_workers_arrived_total        worker arrivals across runs
//	crowdkit_sim_makespan_sim_seconds         gauge: last run's makespan (simulated clock)
//	crowdkit_sim_milestone_sim_seconds        histogram over decile completion times
//
// Times are simulated-clock seconds, so the histogram uses the sim-time
// bucket ladder, not the request-latency one. No-op on a nil registry or
// nil result.
func RecordAsync(reg *obs.Registry, res *AsyncResult) {
	if reg == nil || res == nil {
		return
	}
	reg.Counter("crowdkit_sim_runs_total").Inc()
	if res.Completed {
		reg.Counter("crowdkit_sim_completed_total").Inc()
	}
	reg.Counter("crowdkit_sim_answers_total").Add(int64(res.AnswersCollected))
	reg.Counter("crowdkit_sim_abandons_total").Add(int64(res.Abandoned))
	reg.Counter("crowdkit_sim_workers_arrived_total").Add(int64(res.WorkersArrived))
	reg.Gauge("crowdkit_sim_makespan_sim_seconds").Set(res.Makespan)
	h := reg.Histogram("crowdkit_sim_milestone_sim_seconds", obs.DefSimTimeBuckets)
	for _, t := range res.CompletionTimes {
		h.Observe(t)
	}
}
