package obs

import (
	"bufio"
	"fmt"
	"strconv"
	"strings"
	"testing"
)

// Conformance tests for the Prometheus text exposition (format 0.0.4):
// the invariants a real Prometheus scraper depends on — cumulative
// histogram buckets ending in an le="+Inf" bucket that equals _count,
// sorted and escaped label rendering, stable family ordering — checked
// against WritePrometheus output rather than any single golden string.

// exposition renders reg and returns the non-comment sample lines plus
// the full text for error messages.
func exposition(t *testing.T, reg *Registry) ([]string, string) {
	t.Helper()
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	var samples []string
	sc := bufio.NewScanner(strings.NewReader(b.String()))
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		samples = append(samples, line)
	}
	return samples, b.String()
}

// sampleValue parses "name{labels} value" and returns the value.
func sampleValue(t *testing.T, line string) float64 {
	t.Helper()
	i := strings.LastIndexByte(line, ' ')
	if i < 0 {
		t.Fatalf("malformed sample line %q", line)
	}
	v, err := strconv.ParseFloat(line[i+1:], 64)
	if err != nil {
		t.Fatalf("bad value in %q: %v", line, err)
	}
	return v
}

func TestExpositionHistogramBucketsCumulative(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("demo_seconds", []float64{0.1, 0.5, 1})
	for _, v := range []float64{0.05, 0.05, 0.3, 0.7, 5, 10} {
		h.Observe(v)
	}
	samples, out := exposition(t, reg)

	var buckets []float64 // in output order
	var infBucket, count float64
	var sum float64
	sawInf := false
	for _, line := range samples {
		switch {
		case strings.HasPrefix(line, "demo_seconds_bucket"):
			v := sampleValue(t, line)
			if strings.Contains(line, `le="+Inf"`) {
				infBucket, sawInf = v, true
			} else {
				if sawInf {
					t.Fatalf("+Inf bucket is not last:\n%s", out)
				}
				buckets = append(buckets, v)
			}
		case strings.HasPrefix(line, "demo_seconds_sum"):
			sum = sampleValue(t, line)
		case strings.HasPrefix(line, "demo_seconds_count"):
			count = sampleValue(t, line)
		}
	}
	if len(buckets) != 3 || !sawInf {
		t.Fatalf("want 3 finite buckets + one +Inf, got %d (+Inf=%v):\n%s", len(buckets), sawInf, out)
	}
	// Buckets are cumulative and monotonically non-decreasing.
	want := []float64{2, 3, 4}
	for i, b := range buckets {
		if b != want[i] {
			t.Errorf("bucket %d = %v, want cumulative %v\n%s", i, b, want[i], out)
		}
		if i > 0 && b < buckets[i-1] {
			t.Errorf("bucket %d (%v) below bucket %d (%v): not cumulative", i, b, i-1, buckets[i-1])
		}
	}
	// The +Inf bucket equals _count: every observation, including those
	// past the last finite bound.
	if infBucket != 6 || count != 6 {
		t.Errorf("+Inf bucket = %v, _count = %v, want both 6:\n%s", infBucket, count, out)
	}
	if wantSum := 0.05 + 0.05 + 0.3 + 0.7 + 5 + 10; sum != wantSum {
		t.Errorf("_sum = %v, want %v", sum, wantSum)
	}
}

func TestExpositionHistogramCountSumAgreeUnderLabels(t *testing.T) {
	reg := NewRegistry()
	for _, ep := range []string{"/api/task", "/api/answer"} {
		h := reg.Histogram("lab_seconds", []float64{1}, L("endpoint", ep))
		h.Observe(0.5)
		h.Observe(2)
	}
	samples, out := exposition(t, reg)
	// Key series by their endpoint label alone: bucket lines carry an
	// extra le label that _count lines do not.
	endpointOf := func(line string) string {
		i := strings.Index(line, `endpoint="`)
		if i < 0 {
			t.Fatalf("no endpoint label in %q", line)
		}
		rest := line[i+len(`endpoint="`):]
		return rest[:strings.IndexByte(rest, '"')]
	}
	perLabels := map[string][2]float64{} // endpoint -> {+Inf bucket, count}
	for _, line := range samples {
		if strings.HasPrefix(line, "lab_seconds_bucket") && strings.Contains(line, `le="+Inf"`) {
			e := perLabels[endpointOf(line)]
			e[0] = sampleValue(t, line)
			perLabels[endpointOf(line)] = e
		}
		if strings.HasPrefix(line, "lab_seconds_count") {
			e := perLabels[endpointOf(line)]
			e[1] = sampleValue(t, line)
			perLabels[endpointOf(line)] = e
		}
	}
	if len(perLabels) != 2 {
		t.Fatalf("want 2 labeled series, got %d:\n%s", len(perLabels), out)
	}
	for key, e := range perLabels {
		if e[0] != e[1] || e[0] != 2 {
			t.Errorf("series %s: +Inf=%v count=%v, want both 2", key, e[0], e[1])
		}
	}
}

func TestExpositionLabelsSortedAndEscaped(t *testing.T) {
	reg := NewRegistry()
	// Deliberately unsorted keys and a value needing every escape.
	reg.Counter("esc_total", L("zeta", "z"), L("alpha", "a\\b\"c\nd")).Add(3)
	samples, out := exposition(t, reg)
	if len(samples) != 1 {
		t.Fatalf("want 1 sample, got %d:\n%s", len(samples), out)
	}
	want := `esc_total{alpha="a\\b\"c\nd",zeta="z"} 3`
	if samples[0] != want {
		t.Errorf("sample = %q\nwant     %q", samples[0], want)
	}
	// Same labels in any declaration order resolve to the same series.
	reg.Counter("esc_total", L("alpha", "a\\b\"c\nd"), L("zeta", "z")).Add(2)
	samples, _ = exposition(t, reg)
	if got := sampleValue(t, samples[0]); got != 5 {
		t.Errorf("reordered labels created a new series: value %v, want 5", got)
	}
}

func TestExpositionFamiliesSortedWithTypeHeaders(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("zz_total").Inc()
	reg.Gauge("aa_current").Set(1)
	reg.Histogram("mm_seconds", []float64{1}).Observe(0.5)
	_, out := exposition(t, reg)

	ia := strings.Index(out, "# TYPE aa_current gauge")
	im := strings.Index(out, "# TYPE mm_seconds histogram")
	iz := strings.Index(out, "# TYPE zz_total counter")
	if ia < 0 || im < 0 || iz < 0 {
		t.Fatalf("missing TYPE headers:\n%s", out)
	}
	if !(ia < im && im < iz) {
		t.Errorf("families not sorted by name: aa@%d mm@%d zz@%d\n%s", ia, im, iz, out)
	}
	// Every sample of a family follows its own TYPE header and precedes
	// the next one.
	if i := strings.Index(out, "mm_seconds_bucket"); i < im || i > iz {
		t.Errorf("histogram samples not grouped under their TYPE header:\n%s", out)
	}
}

func TestExpositionSeriesSortedWithinFamily(t *testing.T) {
	reg := NewRegistry()
	for _, ep := range []string{"zz", "aa", "mm"} {
		reg.Counter("multi_total", L("endpoint", ep)).Inc()
	}
	samples, out := exposition(t, reg)
	if len(samples) != 3 {
		t.Fatalf("want 3 series, got %d:\n%s", len(samples), out)
	}
	for i := 1; i < len(samples); i++ {
		if samples[i-1] > samples[i] {
			t.Errorf("series not sorted: %q before %q", samples[i-1], samples[i])
		}
	}
}

func TestExpositionParsesAsFloats(t *testing.T) {
	// Every rendered sample must end in a parseable float (the scraper's
	// minimum bar), including large counters and fractional gauges.
	reg := NewRegistry()
	reg.Counter("big_total").Add(1 << 40)
	reg.Gauge("frac").Set(0.125)
	reg.GaugeFunc("fn_gauge", func() float64 { return 42 })
	h := reg.Histogram("h_seconds", nil) // default buckets
	h.Observe(0.001)
	samples, _ := exposition(t, reg)
	if len(samples) == 0 {
		t.Fatal("no samples rendered")
	}
	for _, line := range samples {
		sampleValue(t, line) // fails the test on a malformed value
	}
	// Spot-check the function gauge made it through.
	found := false
	for _, line := range samples {
		if line == fmt.Sprintf("fn_gauge %g", 42.0) {
			found = true
		}
	}
	if !found {
		t.Errorf("fn_gauge sample missing from %v", samples)
	}
}
