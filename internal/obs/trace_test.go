package obs

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// record runs one trace through c: a root span named name with nChildren
// children, optionally failing the root, and returns the trace ID.
func record(c *Collector, name string, nChildren int, fail bool) string {
	ctx := WithCollector(context.Background(), c)
	ctx, root := StartSpan(ctx, name)
	for i := 0; i < nChildren; i++ {
		_, ch := ChildSpan(ctx, fmt.Sprintf("child-%d", i))
		ch.End()
	}
	if fail {
		root.SetError(errors.New("boom"))
	}
	root.End()
	return root.TraceID
}

func TestCollectorKeepsCompletedTrace(t *testing.T) {
	c := NewCollector(CollectorOptions{})
	ctx := WithCollector(context.Background(), c)
	ctx, root := StartSpan(ctx, "/api/answer")
	root.SetAttr(Str("method", "POST"))

	cctx, child := ChildSpan(ctx, "core.record")
	child.SetAttr(Int("task", 7))
	child.AddEvent("recorded", Int("n", 1))
	child.End()

	_, grand := ChildSpan(cctx, "wal.append")
	grand.End()

	root.End()

	td, ok := c.Trace(root.TraceID)
	if !ok {
		t.Fatalf("trace %s not retained", root.TraceID)
	}
	if !td.Complete {
		t.Fatal("trace should be complete after root End")
	}
	if len(td.Spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(td.Spans))
	}
	byName := map[string]SpanData{}
	for _, sd := range td.Spans {
		byName[sd.Name] = sd
		if sd.TraceID != root.TraceID {
			t.Errorf("span %s has trace %s, want %s", sd.Name, sd.TraceID, root.TraceID)
		}
	}
	rootSD, childSD, grandSD := byName["/api/answer"], byName["core.record"], byName["wal.append"]
	if rootSD.ParentID != 0 {
		t.Errorf("root parent = %d, want 0", rootSD.ParentID)
	}
	if childSD.ParentID != rootSD.SpanID {
		t.Errorf("child parent = %d, want root %d", childSD.ParentID, rootSD.SpanID)
	}
	if grandSD.ParentID != childSD.SpanID {
		t.Errorf("grandchild parent = %d, want child %d", grandSD.ParentID, childSD.SpanID)
	}
	if len(childSD.Events) != 1 || childSD.Events[0].Name != "recorded" {
		t.Errorf("child events = %+v, want one 'recorded'", childSD.Events)
	}
	if got := childSD.Attrs[0].Value(); got != int64(7) {
		t.Errorf("child attr = %v, want 7", got)
	}
}

func TestCollectorPendingTraceReadableBeforeRootEnds(t *testing.T) {
	c := NewCollector(CollectorOptions{})
	ctx := WithCollector(context.Background(), c)
	ctx, root := StartSpan(ctx, "cql.query")
	_, child := ChildSpan(ctx, "cql.question")
	child.End()

	td, ok := c.Trace(root.TraceID)
	if !ok {
		t.Fatal("pending trace should be readable by ID")
	}
	if td.Complete {
		t.Fatal("trace must not be complete before root End")
	}
	if len(td.Spans) != 1 || td.Spans[0].Name != "cql.question" {
		t.Fatalf("pending spans = %+v, want the one finished child", td.Spans)
	}
	root.End()
	if td, _ := c.Trace(root.TraceID); !td.Complete {
		t.Fatal("trace should complete once root ends")
	}
}

func TestCollectorTailKeepPolicy(t *testing.T) {
	// Rate 0 (explicit negative): only error and slow traces survive.
	c := NewCollector(CollectorOptions{SampleRate: -1, SlowThreshold: time.Hour})
	fastID := record(c, "/fast", 1, false)
	errID := record(c, "/err", 1, true)

	if _, ok := c.Trace(fastID); ok {
		t.Fatal("fast error-free trace should be sampled out at rate 0")
	}
	if _, ok := c.Trace(errID); !ok {
		t.Fatal("error trace must always be kept")
	}

	// A slow root is kept regardless of the sampler.
	slow := NewCollector(CollectorOptions{SampleRate: -1, SlowThreshold: time.Nanosecond})
	slowID := record(slow, "/slow", 0, false)
	if _, ok := slow.Trace(slowID); !ok {
		t.Fatal("slow trace must always be kept")
	}
}

func TestCollectorSamplingIsDeterministic(t *testing.T) {
	a := NewCollector(CollectorOptions{SampleRate: 0.5})
	b := NewCollector(CollectorOptions{SampleRate: 0.5})
	kept := 0
	for i := 0; i < 512; i++ {
		id := fmt.Sprintf("%016x", uint64(i)*0x9e3779b97f4a7c15+1)
		ka, kb := a.sampleKeep(id), b.sampleKeep(id)
		if ka != kb {
			t.Fatalf("sampling of %s differs across collectors", id)
		}
		if ka {
			kept++
		}
	}
	// The hash should land near the configured rate; wide tolerance, this
	// guards against a broken scale (always/never keep), not distribution
	// quality.
	if kept < 128 || kept > 384 {
		t.Fatalf("kept %d/512 at rate 0.5; hash scaling looks broken", kept)
	}
}

func TestCollectorBoundsKeptRing(t *testing.T) {
	// Capacity below the shard count clamps to one kept trace per shard.
	c := NewCollector(CollectorOptions{Capacity: traceShards})
	ids := make([]string, 0, 10*traceShards)
	for i := 0; i < 10*traceShards; i++ {
		ids = append(ids, record(c, "/load", 2, false))
	}
	if got := c.KeptCount(); got > traceShards {
		t.Fatalf("kept %d traces, ring bound is %d", got, traceShards)
	}
	if c.evicted.Value() == 0 {
		t.Fatal("evictions expected once the ring overflows")
	}
	// The newest trace on its shard must still be there.
	if _, ok := c.Trace(ids[len(ids)-1]); !ok {
		t.Fatal("most recent trace evicted before older ones")
	}
}

func TestCollectorBoundsSpansPerTrace(t *testing.T) {
	c := NewCollector(CollectorOptions{MaxSpans: 4})
	ctx := WithCollector(context.Background(), c)
	ctx, root := StartSpan(ctx, "/big")
	for i := 0; i < 10; i++ {
		_, ch := ChildSpan(ctx, "child")
		ch.End()
	}
	root.End()
	td, ok := c.Trace(root.TraceID)
	if !ok {
		t.Fatal("trace not kept")
	}
	if len(td.Spans) != 4 {
		t.Fatalf("got %d spans, cap is 4", len(td.Spans))
	}
	if c.spansDropped.Value() == 0 {
		t.Fatal("dropped spans must be counted")
	}
}

func TestCollectorBoundsPendingTraces(t *testing.T) {
	c := NewCollector(CollectorOptions{Capacity: traceShards})
	// Orphan spans whose roots never end must not leak: only children
	// finish, so every trace stays pending forever.
	for i := 0; i < 20*traceShards; i++ {
		ctx := WithCollector(context.Background(), c)
		ctx, _ = StartSpan(ctx, "/leak") // root never ends
		_, ch := ChildSpan(ctx, "child")
		ch.End()
	}
	total := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		total += len(sh.traces)
		sh.mu.Unlock()
	}
	if total > 2*traceShards {
		t.Fatalf("%d pending traces retained; bound is ~%d", total, traceShards)
	}
	if c.pendingDrop.Value() == 0 {
		t.Fatal("pending drops must be counted")
	}
}

func TestCollectorTracesIndex(t *testing.T) {
	c := NewCollector(CollectorOptions{})
	for i := 0; i < 3; i++ {
		record(c, "/api/task", 1, false)
	}
	errID := record(c, "/api/answer", 2, true)

	all := c.Traces(TraceFilter{})
	if len(all) != 4 {
		t.Fatalf("index lists %d traces, want 4", len(all))
	}
	// Newest root-end first.
	for i := 1; i < len(all); i++ {
		if all[i-1].Start.Add(all[i-1].Duration).Before(all[i].Start.Add(all[i].Duration)) {
			t.Fatal("index not sorted newest-first")
		}
	}
	byEndpoint := c.Traces(TraceFilter{Endpoint: "/api/answer"})
	if len(byEndpoint) != 1 || byEndpoint[0].TraceID != errID || !byEndpoint[0].Err {
		t.Fatalf("endpoint filter = %+v, want the one error trace", byEndpoint)
	}
	if got := c.Traces(TraceFilter{MinDuration: time.Hour}); len(got) != 0 {
		t.Fatalf("min-duration filter returned %d traces, want 0", len(got))
	}
	if got := c.Traces(TraceFilter{Limit: 2}); len(got) != 2 {
		t.Fatalf("limit 2 returned %d traces", len(got))
	}
}

func TestSpanDiscard(t *testing.T) {
	c := NewCollector(CollectorOptions{})
	ctx := WithCollector(context.Background(), c)
	_, sweep := StartSpan(ctx, "bg.lease-reaper")
	sweep.Discard()
	sweep.End()
	if _, ok := c.Trace(sweep.TraceID); ok {
		t.Fatal("discarded span must not reach the collector")
	}
	if got := c.KeptCount(); got != 0 {
		t.Fatalf("kept %d traces after discard, want 0", got)
	}
}

func TestFreeWhenOff(t *testing.T) {
	// No collector: ChildSpan must not allocate a span, and every nil-span
	// method must be a safe no-op.
	ctx := context.Background()
	ctx, sp := ChildSpan(ctx, "anything")
	if sp != nil {
		t.Fatal("ChildSpan without a collector must return a nil span")
	}
	sp.SetAttr(Str("k", "v"))
	sp.AddEvent("e")
	sp.SetError(errors.New("x"))
	sp.Discard()
	sp.End()
	if sp.Recording() {
		t.Fatal("nil span reports recording")
	}
	if CurrentSpan(ctx) != nil {
		t.Fatal("no current span expected without a collector")
	}
	// StartSpan still works standalone (trace-ID + timing only).
	_, root := StartSpan(ctx, "route")
	if root.TraceID == "" {
		t.Fatal("StartSpan must mint a trace ID")
	}
	if root.Recording() {
		t.Fatal("span without a collector must not record")
	}
	root.End()
}

func TestCollectorNilSafe(t *testing.T) {
	var c *Collector
	if _, ok := c.Trace("x"); ok {
		t.Fatal("nil collector returned a trace")
	}
	if got := c.Traces(TraceFilter{}); got != nil {
		t.Fatal("nil collector returned summaries")
	}
	if c.KeptCount() != 0 {
		t.Fatal("nil collector kept traces")
	}
	c.RegisterMetrics(NewRegistry())
	if ctx := WithCollector(context.Background(), nil); CollectorFrom(ctx) != nil {
		t.Fatal("WithCollector(nil) must not attach a collector")
	}
}

func TestCollectorMetrics(t *testing.T) {
	c := NewCollector(CollectorOptions{SampleRate: -1, SlowThreshold: time.Hour})
	reg := NewRegistry()
	c.RegisterMetrics(reg)
	record(c, "/sampled-out", 1, false)
	record(c, "/kept", 1, true)

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"crowdkit_trace_spans_recorded_total 4",
		"crowdkit_trace_kept_total 1",
		"crowdkit_trace_sampled_out_total 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestCollectorConcurrent(t *testing.T) {
	c := NewCollector(CollectorOptions{Capacity: 64})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				record(c, fmt.Sprintf("/g%d", g), 3, i%7 == 0)
				c.Traces(TraceFilter{Limit: 5})
				c.KeptCount()
			}
		}(g)
	}
	wg.Wait()
	if c.spansRecorded.Value() != 8*50*4 {
		t.Fatalf("recorded %d spans, want %d", c.spansRecorded.Value(), 8*50*4)
	}
}

func TestEMObserverWithSpan(t *testing.T) {
	c := NewCollector(CollectorOptions{})
	ctx := WithCollector(context.Background(), c)
	_, sp := StartSpan(ctx, "em.run")

	var iters, runs int
	inner := &funcEMObserver{
		iter: func(string, int, float64) { iters++ },
		run:  func(string, int, bool, time.Duration) { runs++ },
	}
	o := EMObserverWithSpan(inner, sp)
	o.ObserveEMIteration("onecoin", 1, 0.5)
	o.ObserveEMIteration("onecoin", 2, 0.01)
	o.ObserveEMRun("onecoin", 2, true, time.Millisecond)
	sp.End()

	if iters != 2 || runs != 1 {
		t.Fatalf("inner observer saw %d iters, %d runs; want 2, 1", iters, runs)
	}
	td, ok := c.Trace(sp.TraceID)
	if !ok || len(td.Spans) != 1 {
		t.Fatalf("em.run span not recorded: %+v", td)
	}
	sd := td.Spans[0]
	if len(sd.Events) != 2 || sd.Events[0].Name != "em.iteration" {
		t.Fatalf("events = %+v, want two em.iteration events", sd.Events)
	}
	var converged any
	for _, a := range sd.Attrs {
		if a.Key == "converged" {
			converged = a.Value()
		}
	}
	if converged != true {
		t.Fatalf("converged attr = %v, want true", converged)
	}

	// Not recording: the inner observer comes back untouched.
	if got := EMObserverWithSpan(inner, nil); got != EMObserver(inner) {
		t.Fatal("non-recording span must return inner unchanged")
	}
}

type funcEMObserver struct {
	iter func(string, int, float64)
	run  func(string, int, bool, time.Duration)
}

func (o *funcEMObserver) ObserveEMIteration(m string, i int, d float64) { o.iter(m, i, d) }
func (o *funcEMObserver) ObserveEMRun(m string, i int, c bool, w time.Duration) {
	o.run(m, i, c, w)
}
