package obs

import (
	"sync"
	"time"
)

// EMObserver receives convergence telemetry from the iterative
// truth-inference kernels (OneCoinEM, DawidSkene, GLAD, ...). The
// contract, which instrumented kernels must honor:
//
//   - A nil observer costs nothing: kernels guard every hook behind a
//     single nil check and take no timestamps when the observer is nil.
//   - ObserveEMIteration is called once per completed EM iteration, from
//     the kernel's main goroutine (never from inside a sharded sweep),
//     with the iteration's convergence statistic — the summed L1 change
//     of the posterior matrix, the quantity the stopping rule tests.
//   - ObserveEMRun is called exactly once per Infer, after the last
//     iteration, with the method name, total iterations, whether the
//     tolerance was reached (vs. hitting the iteration cap), and the
//     wall-clock time of the whole run.
//
// Implementations must be safe for concurrent use: one observer may be
// shared by every inference run a server performs.
type EMObserver interface {
	ObserveEMIteration(method string, iter int, delta float64)
	ObserveEMRun(method string, iterations int, converged bool, wall time.Duration)
}

// EMMetrics is the standard EMObserver: it folds convergence telemetry
// into registry series labeled by method —
//
//	crowdkit_em_runs_total{method}        runs started and finished
//	crowdkit_em_converged_total{method}   runs that met tolerance
//	crowdkit_em_iterations_total{method}  iterations across all runs
//	crowdkit_em_last_iterations{method}   iteration count of the last run
//	crowdkit_em_last_delta{method}        last convergence delta seen
//	crowdkit_em_run_seconds{method}       wall-time histogram per run
type EMMetrics struct {
	reg *Registry

	mu     sync.RWMutex
	series map[string]*emSeries
}

type emSeries struct {
	runs, converged, iterations *Counter
	lastIters, lastDelta        *Gauge
	wall                        *Histogram
}

// NewEMMetrics returns an EMMetrics writing into reg. A nil registry
// yields a valid observer whose recordings all no-op (nil metrics), so
// callers can wire it unconditionally.
func NewEMMetrics(reg *Registry) *EMMetrics {
	return &EMMetrics{reg: reg, series: make(map[string]*emSeries)}
}

func (m *EMMetrics) forMethod(method string) *emSeries {
	m.mu.RLock()
	s := m.series[method]
	m.mu.RUnlock()
	if s != nil {
		return s
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if s = m.series[method]; s != nil {
		return s
	}
	l := L("method", method)
	s = &emSeries{
		runs:       m.reg.Counter("crowdkit_em_runs_total", l),
		converged:  m.reg.Counter("crowdkit_em_converged_total", l),
		iterations: m.reg.Counter("crowdkit_em_iterations_total", l),
		lastIters:  m.reg.Gauge("crowdkit_em_last_iterations", l),
		lastDelta:  m.reg.Gauge("crowdkit_em_last_delta", l),
		wall:       m.reg.Histogram("crowdkit_em_run_seconds", DefLatencyBuckets, l),
	}
	m.series[method] = s
	return s
}

// EMObserverWithSpan tees convergence telemetry into sp as span events
// (one "em.iteration" event per iteration, run attributes at the end)
// while forwarding every hook to inner. When sp is not recording it
// returns inner unchanged — the kernel keeps its nil-check fast path and
// tracing-off costs nothing. The span must outlive the run; per the
// EMObserver contract the hooks arrive from the kernel's main goroutine,
// so no locking is needed.
func EMObserverWithSpan(inner EMObserver, sp *Span) EMObserver {
	if !sp.Recording() {
		return inner
	}
	return &emSpanObserver{inner: inner, sp: sp}
}

type emSpanObserver struct {
	inner EMObserver
	sp    *Span
}

func (o *emSpanObserver) ObserveEMIteration(method string, iter int, delta float64) {
	o.sp.AddEvent("em.iteration",
		Str("method", method), Int("iter", int64(iter)), Float("delta", delta))
	if o.inner != nil {
		o.inner.ObserveEMIteration(method, iter, delta)
	}
}

func (o *emSpanObserver) ObserveEMRun(method string, iterations int, converged bool, wall time.Duration) {
	o.sp.SetAttr(Str("method", method), Int("iterations", int64(iterations)), Bool("converged", converged))
	if o.inner != nil {
		o.inner.ObserveEMRun(method, iterations, converged, wall)
	}
}

// ObserveEMIteration implements EMObserver.
func (m *EMMetrics) ObserveEMIteration(method string, iter int, delta float64) {
	s := m.forMethod(method)
	s.iterations.Inc()
	s.lastDelta.Set(delta)
}

// ObserveEMRun implements EMObserver.
func (m *EMMetrics) ObserveEMRun(method string, iterations int, converged bool, wall time.Duration) {
	s := m.forMethod(method)
	s.runs.Inc()
	if converged {
		s.converged.Inc()
	}
	s.lastIters.Set(float64(iterations))
	s.wall.ObserveDuration(wall)
}
