package obs

import (
	"context"
	"regexp"
	"sync"
	"testing"
)

func TestTraceIDPropagation(t *testing.T) {
	ctx := context.Background()
	if TraceID(ctx) != "" {
		t.Fatal("fresh context should have no trace ID")
	}
	ctx, id := EnsureTraceID(ctx)
	if id == "" || TraceID(ctx) != id {
		t.Fatalf("EnsureTraceID: id=%q ctx=%q", id, TraceID(ctx))
	}
	// Idempotent: an existing ID is kept, not replaced.
	ctx2, id2 := EnsureTraceID(ctx)
	if id2 != id || TraceID(ctx2) != id {
		t.Fatalf("EnsureTraceID replaced existing id: %q -> %q", id, id2)
	}
	if !regexp.MustCompile(`^[0-9a-f]{16}$`).MatchString(id) {
		t.Fatalf("trace ID %q is not 16 hex chars", id)
	}
}

func TestTraceIDUniqueness(t *testing.T) {
	const n = 10000
	seen := make(map[string]bool, n)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]string, 0, n/8)
			for i := 0; i < n/8; i++ {
				local = append(local, NewTraceID())
			}
			mu.Lock()
			defer mu.Unlock()
			for _, id := range local {
				if seen[id] {
					t.Errorf("duplicate trace ID %s", id)
					return
				}
				seen[id] = true
			}
		}()
	}
	wg.Wait()
}

func TestSpanTiming(t *testing.T) {
	h := NewHistogram(0.001, 1, 10)
	ctx, sp := StartSpan(context.Background(), "work")
	if sp.TraceID == "" || sp.TraceID != TraceID(ctx) {
		t.Fatalf("span trace = %q, ctx trace = %q", sp.TraceID, TraceID(ctx))
	}
	// A child span started from the same context joins the same trace.
	_, child := StartSpan(ctx, "child")
	if child.TraceID != sp.TraceID {
		t.Fatalf("child trace %q != parent trace %q", child.TraceID, sp.TraceID)
	}
	d := sp.EndTo(h)
	if d < 0 {
		t.Fatalf("negative duration %v", d)
	}
	if h.Count() != 1 {
		t.Fatalf("histogram count = %d, want 1", h.Count())
	}
	// Nil span and nil histogram are safe.
	var nilSpan *Span
	if nilSpan.End() != 0 {
		t.Fatal("nil span must report zero duration")
	}
	sp2 := &Span{}
	sp2.EndTo(nil)
}
