package obs

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Label is one key="value" dimension of a metric series.
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Registry holds named metric series and renders them in the Prometheus
// text exposition format. Series are identified by (family name, sorted
// label set); the constructors are get-or-create, so two callers asking
// for the same series share one underlying metric.
//
// All constructors on a nil *Registry return nil metrics, which are valid
// no-op receivers — code instrumented against an optional registry needs
// no further guards.
//
// Registering the same family name under two different metric kinds is a
// programming error and panics (names are compile-time constants in this
// codebase, mirroring prometheus.MustRegister semantics).
type Registry struct {
	mu   sync.RWMutex
	fams map[string]*family
}

type family struct {
	kind   string // "counter" | "gauge" | "histogram"
	series map[string]*series
}

type series struct {
	labels  string // rendered `{k="v",...}` or ""
	counter *Counter
	gauge   *Gauge
	fn      func() float64
	hist    *Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// Counter returns the counter series for (name, labels), creating it on
// first use. Returns nil on a nil registry.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	s := r.getOrCreate(name, "counter", labels, func() *series {
		return &series{counter: NewCounter()}
	})
	return s.counter
}

// Gauge returns the gauge series for (name, labels), creating it on first
// use. Returns nil on a nil registry.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	s := r.getOrCreate(name, "gauge", labels, func() *series {
		return &series{gauge: NewGauge()}
	})
	return s.gauge
}

// GaugeFunc registers a callback gauge: fn is evaluated at exposition
// time, so pull-style state (pool sizes, budget remaining) costs nothing
// on the request path. Re-registering the same series replaces the
// callback. No-op on a nil registry.
func (r *Registry) GaugeFunc(name string, fn func() float64, labels ...Label) {
	if r == nil || fn == nil {
		return
	}
	s := r.getOrCreate(name, "gauge", labels, func() *series {
		return &series{}
	})
	r.mu.Lock()
	s.fn = fn
	r.mu.Unlock()
}

// Histogram returns the histogram series for (name, labels), creating it
// with the given bucket bounds on first use (nil bounds means
// DefLatencyBuckets; bounds are ignored for an existing series). Returns
// nil on a nil registry.
func (r *Registry) Histogram(name string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	s := r.getOrCreate(name, "histogram", labels, func() *series {
		return &series{hist: NewHistogram(bounds...)}
	})
	return s.hist
}

// RegisterCounter exposes an externally owned counter (for example a
// counter embedded in a struct that must also work with observability
// off). Replaces any existing series with the same identity. No-op on a
// nil registry or nil counter.
func (r *Registry) RegisterCounter(name string, c *Counter, labels ...Label) {
	if r == nil || c == nil {
		return
	}
	s := r.getOrCreate(name, "counter", labels, func() *series {
		return &series{}
	})
	r.mu.Lock()
	s.counter = c
	r.mu.Unlock()
}

// RegisterHistogram exposes an externally owned histogram (for example an
// always-on latency histogram embedded in a subsystem that must also work
// with observability off). Replaces any existing series with the same
// identity. No-op on a nil registry or nil histogram.
func (r *Registry) RegisterHistogram(name string, h *Histogram, labels ...Label) {
	if r == nil || h == nil {
		return
	}
	s := r.getOrCreate(name, "histogram", labels, func() *series {
		return &series{}
	})
	r.mu.Lock()
	s.hist = h
	r.mu.Unlock()
}

func (r *Registry) getOrCreate(name, kind string, labels []Label, mk func() *series) *series {
	ls := renderLabels(labels)
	// Fast path under the read lock: callers that look series up per
	// event (rather than holding the returned metric) must not serialize
	// against each other or against scrapes.
	r.mu.RLock()
	f := r.fams[name]
	if f != nil {
		if f.kind != kind {
			r.mu.RUnlock()
			panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, f.kind, kind))
		}
		if s, ok := f.series[ls]; ok {
			r.mu.RUnlock()
			return s
		}
	}
	r.mu.RUnlock()

	r.mu.Lock()
	defer r.mu.Unlock()
	f = r.fams[name] // re-check: another goroutine may have won the race
	if f == nil {
		f = &family{kind: kind, series: make(map[string]*series)}
		r.fams[name] = f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, f.kind, kind))
	}
	if s, ok := f.series[ls]; ok {
		return s
	}
	s := mk()
	s.labels = ls
	f.series[ls] = s
	return s
}

// renderLabels sorts labels by key and renders them as `{k="v",...}`
// (empty string for no labels), escaping backslash, quote, and newline in
// values per the exposition format.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := make([]Label, len(labels))
	copy(ls, labels)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, c := range v {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// withLabel merges one more label into an already-rendered label string
// (used for the histogram "le" label).
func withLabel(rendered, key, value string) string {
	extra := key + `="` + escapeLabelValue(value) + `"`
	if rendered == "" {
		return "{" + extra + "}"
	}
	return rendered[:len(rendered)-1] + "," + extra + "}"
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every registered series in the Prometheus text
// exposition format (version 0.0.4), families sorted by name and series
// sorted by label string for a stable, diffable output. Values read
// while writers are active form a per-series-atomic (not cross-series
// consistent) snapshot, which is what scrapes expect.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.fams))
	for name := range r.fams {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f := r.fams[name]
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, f.kind); err != nil {
			return err
		}
		keys := make([]string, 0, len(f.series))
		for ls := range f.series {
			keys = append(keys, ls)
		}
		sort.Strings(keys)
		for _, ls := range keys {
			s := f.series[ls]
			if err := writeSeries(w, name, s); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSeries(w io.Writer, name string, s *series) error {
	switch {
	case s.hist != nil:
		cum := int64(0)
		counts := s.hist.BucketCounts()
		bounds := s.hist.Bounds()
		for i, b := range bounds {
			cum += counts[i]
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
				name, withLabel(s.labels, "le", formatFloat(b)), cum); err != nil {
				return err
			}
		}
		cum += counts[len(bounds)]
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
			name, withLabel(s.labels, "le", "+Inf"), cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, s.labels, formatFloat(s.hist.Sum())); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, s.labels, s.hist.Count())
		return err
	case s.fn != nil:
		_, err := fmt.Fprintf(w, "%s%s %s\n", name, s.labels, formatFloat(s.fn()))
		return err
	case s.gauge != nil:
		_, err := fmt.Fprintf(w, "%s%s %s\n", name, s.labels, formatFloat(s.gauge.Value()))
		return err
	case s.counter != nil:
		_, err := fmt.Fprintf(w, "%s%s %d\n", name, s.labels, s.counter.Value())
		return err
	}
	// A placeholder series (RegisterCounter/GaugeFunc raced creation) with
	// nothing attached yet: skip.
	return nil
}

// Handler returns an http.Handler serving the exposition — mount it on
// /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// Snapshot returns every series as a flat name{labels} -> value map:
// counters and gauges map directly; each histogram contributes _count and
// _sum entries plus p50/p95/p99 quantile estimates as _p50/_p95/_p99.
// Benchmark tooling embeds this in its JSON reports.
func (r *Registry) Snapshot() map[string]float64 {
	if r == nil {
		return nil
	}
	out := make(map[string]float64)
	r.mu.RLock()
	defer r.mu.RUnlock()
	for name, f := range r.fams {
		for _, s := range f.series {
			switch {
			case s.hist != nil:
				out[name+"_count"+s.labels] = float64(s.hist.Count())
				out[name+"_sum"+s.labels] = s.hist.Sum()
				out[name+"_p50"+s.labels] = s.hist.Quantile(0.50)
				out[name+"_p95"+s.labels] = s.hist.Quantile(0.95)
				out[name+"_p99"+s.labels] = s.hist.Quantile(0.99)
			case s.fn != nil:
				out[name+s.labels] = s.fn()
			case s.gauge != nil:
				out[name+s.labels] = s.gauge.Value()
			case s.counter != nil:
				out[name+s.labels] = float64(s.counter.Value())
			}
		}
	}
	return out
}
