// Span flight recorder: an in-process, lock-sharded, bounded store of
// completed spans indexed by trace ID. PR 4 built trace-ID propagation
// and timed spans but discarded every span on End; the Collector here
// gives them somewhere to land, so a slow or failed request can be
// reconstructed after the fact — which layer (HTTP, pool shard, WAL,
// EM, CrowdQL) its time and budget went to — without an external
// tracing backend.
//
// Design constraints, in priority order:
//
//   - Free when off. A context without a collector records nothing:
//     ChildSpan returns a nil *Span (every method of which no-ops), and
//     StartSpan behaves exactly as before this file existed. The only
//     cost on an uninstrumented path is one context lookup.
//   - Bounded. Kept traces live in a ring of Capacity entries; each
//     trace holds at most MaxSpans spans and each span at most
//     maxSpanEvents events. Overflow is counted (dropped metrics), never
//     unbounded.
//   - Tail-based keep policy. Whether a trace is worth keeping is
//     decided when its root span ends, when the outcome is known: error
//     traces and slow traces are always kept, the rest are sampled
//     deterministically by trace-ID hash. In-flight traces are readable
//     by ID before the decision (a crowd query runs for minutes).
package obs

import (
	"hash/fnv"
	"sort"
	"sync"
	"time"
)

// attrKind discriminates the value stored in an Attr.
type attrKind uint8

const (
	attrString attrKind = iota
	attrInt
	attrFloat
	attrBool
)

// Attr is one typed key/value span attribute. Construct with Str, Int,
// Float, or Bool; read back with Value.
type Attr struct {
	Key  string
	kind attrKind
	str  string
	i    int64
	f    float64
}

// Str builds a string attribute.
func Str(key, v string) Attr { return Attr{Key: key, kind: attrString, str: v} }

// Int builds an integer attribute.
func Int(key string, v int64) Attr { return Attr{Key: key, kind: attrInt, i: v} }

// Float builds a float attribute.
func Float(key string, v float64) Attr { return Attr{Key: key, kind: attrFloat, f: v} }

// Bool builds a boolean attribute.
func Bool(key string, v bool) Attr {
	a := Attr{Key: key, kind: attrBool}
	if v {
		a.i = 1
	}
	return a
}

// Value returns the attribute's value with its original type (string,
// int64, float64, or bool).
func (a Attr) Value() any {
	switch a.kind {
	case attrInt:
		return a.i
	case attrFloat:
		return a.f
	case attrBool:
		return a.i == 1
	default:
		return a.str
	}
}

// SpanEvent is one timestamped point event inside a span (an answer
// arrival, an EM iteration, a lease change).
type SpanEvent struct {
	Name  string
	Time  time.Time
	Attrs []Attr
}

// SpanData is the immutable record of one completed span. ParentID 0
// marks a root span.
type SpanData struct {
	TraceID  string
	SpanID   uint64
	ParentID uint64
	Name     string
	Start    time.Time
	Duration time.Duration
	Err      string
	Attrs    []Attr
	Events   []SpanEvent
}

// TraceData is a snapshot of one trace: every span recorded so far, in
// completion order. Complete is true once the root span has ended (the
// keep decision has been made); before that the trace is still pending
// and Spans may grow.
type TraceData struct {
	TraceID  string
	Complete bool
	Err      bool
	Spans    []SpanData
}

// TraceSummary is one row of the recent-traces index.
type TraceSummary struct {
	TraceID  string
	Endpoint string // root span name
	Start    time.Time
	Duration time.Duration
	Spans    int
	Err      bool
}

// CollectorOptions bounds and tunes a Collector. The zero value gets
// sensible defaults.
type CollectorOptions struct {
	// Capacity is the total number of kept traces retained across the
	// ring (default 1024). Oldest kept traces are evicted beyond it.
	Capacity int
	// SampleRate is the fraction of fast, error-free traces kept at root
	// end, decided deterministically by trace-ID hash (default 1.0 —
	// keep everything the ring can hold; error and slow traces are
	// always kept regardless).
	SampleRate float64
	// SlowThreshold is the root duration at or above which a trace is
	// always kept (default 250ms).
	SlowThreshold time.Duration
	// MaxSpans caps the spans recorded per trace (default 512); spans
	// beyond it are counted as dropped.
	MaxSpans int
}

// maxSpanEvents caps the events one span will hold (EM runs can iterate
// hundreds of times); overflow is counted on the span's finish record.
const maxSpanEvents = 256

// traceShards is the fixed lock-shard fan-out of a Collector. Spans of
// one trace always land on one shard (hash of the trace ID), so a
// trace's spans never need cross-shard coordination.
const traceShards = 16

// traceEntry is one trace accumulating spans inside a shard. All fields
// are guarded by the owning shard's mutex.
type traceEntry struct {
	id    string
	spans []SpanData
	root  *SpanData // set once the root span ended
	err   bool      // any span finished with an error

	dropped int  // spans discarded by the MaxSpans cap
	kept    bool // survived the tail keep decision
	gone    bool // discarded (sampled out) or evicted; tombstone for FIFO lists
}

type traceShard struct {
	mu      sync.Mutex
	traces  map[string]*traceEntry
	pending []*traceEntry // FIFO of root-not-ended traces, for bounding leaks
	kept    []*traceEntry // FIFO ring of kept traces
}

// Collector is the span flight recorder. Safe for concurrent use; one
// collector serves a whole server.
type Collector struct {
	opts     CollectorOptions
	perShard int // kept-ring capacity per shard

	shards [traceShards]traceShard

	// Buffer-pressure metrics, registered as crowdkit_trace_* so the
	// recorder's own behavior (what it kept, sampled out, dropped) is
	// observable. Always-on atomic counters; registry optional.
	spansRecorded Counter // spans delivered to the collector
	keptTotal     Counter // traces kept by the tail policy
	sampledOut    Counter // traces discarded at root end by the sampler
	spansDropped  Counter // spans discarded by the per-trace cap
	evicted       Counter // kept traces evicted by the ring bound
	pendingDrop   Counter // pending traces evicted before their root ended
}

// NewCollector builds a collector with the given bounds (see
// CollectorOptions for defaults).
func NewCollector(opts CollectorOptions) *Collector {
	if opts.Capacity <= 0 {
		opts.Capacity = 1024
	}
	if opts.SampleRate <= 0 {
		if opts.SampleRate < 0 {
			opts.SampleRate = 0 // explicit "errors and slow only"
		} else {
			opts.SampleRate = 1.0
		}
	}
	if opts.SampleRate > 1 {
		opts.SampleRate = 1
	}
	if opts.SlowThreshold <= 0 {
		opts.SlowThreshold = 250 * time.Millisecond
	}
	if opts.MaxSpans <= 0 {
		opts.MaxSpans = 512
	}
	c := &Collector{opts: opts}
	c.perShard = opts.Capacity / traceShards
	if c.perShard < 1 {
		c.perShard = 1
	}
	for i := range c.shards {
		c.shards[i].traces = make(map[string]*traceEntry)
	}
	return c
}

// RegisterMetrics exposes the collector's pressure counters on reg as
// crowdkit_trace_*. No-op on a nil registry.
func (c *Collector) RegisterMetrics(reg *Registry) {
	if c == nil {
		return
	}
	reg.RegisterCounter("crowdkit_trace_spans_recorded_total", &c.spansRecorded)
	reg.RegisterCounter("crowdkit_trace_kept_total", &c.keptTotal)
	reg.RegisterCounter("crowdkit_trace_sampled_out_total", &c.sampledOut)
	reg.RegisterCounter("crowdkit_trace_spans_dropped_total", &c.spansDropped)
	reg.RegisterCounter("crowdkit_trace_evicted_total", &c.evicted)
	reg.RegisterCounter("crowdkit_trace_pending_dropped_total", &c.pendingDrop)
}

func (c *Collector) shardFor(traceID string) *traceShard {
	h := fnv.New32a()
	h.Write([]byte(traceID))
	return &c.shards[h.Sum32()%traceShards]
}

// sampleKeep decides deterministically (by trace-ID hash, independent of
// the span-ID stream) whether a fast, error-free trace is kept.
func (c *Collector) sampleKeep(traceID string) bool {
	if c.opts.SampleRate >= 1 {
		return true
	}
	if c.opts.SampleRate <= 0 {
		return false
	}
	h := fnv.New64a()
	h.Write([]byte(traceID))
	// Scale the hash to [0,1); a different salt than the shard hash so
	// sampling does not correlate with shard placement.
	return float64(h.Sum64()>>11)/float64(1<<53) < c.opts.SampleRate
}

// finishSpan receives one completed span. Called from Span.End via the
// recording state; never on the uninstrumented path.
func (c *Collector) finishSpan(sd SpanData) {
	c.spansRecorded.Inc()
	sh := c.shardFor(sd.TraceID)
	sh.mu.Lock()
	e := sh.traces[sd.TraceID]
	if e == nil {
		e = &traceEntry{id: sd.TraceID}
		sh.traces[sd.TraceID] = e
		sh.pending = append(sh.pending, e)
		c.boundPendingLocked(sh)
	}
	if len(e.spans) >= c.opts.MaxSpans {
		e.dropped++
		c.spansDropped.Inc()
	} else {
		e.spans = append(e.spans, sd)
	}
	if sd.Err != "" {
		e.err = true
	}
	if sd.ParentID == 0 && e.root == nil {
		// Root ended: the tail keep decision. The SpanData slot inside
		// e.spans may have been dropped by the cap; the decision still
		// applies.
		e.root = &sd
		keep := e.err || sd.Duration >= c.opts.SlowThreshold || c.sampleKeep(sd.TraceID)
		if keep {
			e.kept = true
			sh.kept = append(sh.kept, e)
			c.keptTotal.Inc()
			c.boundKeptLocked(sh)
		} else {
			e.gone = true
			delete(sh.traces, sd.TraceID)
			c.sampledOut.Inc()
		}
	}
	sh.mu.Unlock()
}

// boundPendingLocked drops the oldest still-pending traces beyond the
// shard bound — a leak guard for spans whose root never ends. Callers
// hold sh.mu.
func (c *Collector) boundPendingLocked(sh *traceShard) {
	live := 0
	for _, e := range sh.pending {
		if !e.gone && !e.kept && e.root == nil {
			live++
		}
	}
	for live > c.perShard && len(sh.pending) > 0 {
		e := sh.pending[0]
		sh.pending = sh.pending[1:]
		if e.gone || e.kept || e.root != nil {
			continue // tombstone or already decided; just compact
		}
		e.gone = true
		delete(sh.traces, e.id)
		c.pendingDrop.Inc()
		live--
	}
	// Compact decided entries off the front so the list stays short.
	for len(sh.pending) > 0 && (sh.pending[0].gone || sh.pending[0].kept || sh.pending[0].root != nil) {
		sh.pending = sh.pending[1:]
	}
}

// boundKeptLocked evicts the oldest kept traces beyond the ring bound.
// Callers hold sh.mu.
func (c *Collector) boundKeptLocked(sh *traceShard) {
	for len(sh.kept) > c.perShard {
		e := sh.kept[0]
		sh.kept = sh.kept[1:]
		e.gone = true
		delete(sh.traces, e.id)
		c.evicted.Inc()
	}
}

// Trace returns a snapshot of one trace by ID: kept traces, and pending
// (root not yet ended) traces — so a running crowd query's trace is
// readable mid-flight. ok is false for unknown, sampled-out, or evicted
// IDs.
func (c *Collector) Trace(id string) (TraceData, bool) {
	if c == nil {
		return TraceData{}, false
	}
	sh := c.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e := sh.traces[id]
	if e == nil {
		return TraceData{}, false
	}
	td := TraceData{
		TraceID:  e.id,
		Complete: e.root != nil,
		Err:      e.err,
		Spans:    append([]SpanData(nil), e.spans...),
	}
	return td, true
}

// TraceFilter narrows a Traces listing.
type TraceFilter struct {
	// Endpoint, when non-empty, matches the root span's name exactly.
	Endpoint string
	// MinDuration keeps only traces whose root lasted at least this long.
	MinDuration time.Duration
	// Limit caps the rows returned (default 50, max 500).
	Limit int
}

// Traces lists kept traces, newest root-end first, filtered.
func (c *Collector) Traces(f TraceFilter) []TraceSummary {
	if c == nil {
		return nil
	}
	limit := f.Limit
	if limit <= 0 {
		limit = 50
	}
	if limit > 500 {
		limit = 500
	}
	var out []TraceSummary
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		for _, e := range sh.kept {
			if e.gone || e.root == nil {
				continue
			}
			if f.Endpoint != "" && e.root.Name != f.Endpoint {
				continue
			}
			if e.root.Duration < f.MinDuration {
				continue
			}
			out = append(out, TraceSummary{
				TraceID:  e.id,
				Endpoint: e.root.Name,
				Start:    e.root.Start,
				Duration: e.root.Duration,
				Spans:    len(e.spans),
				Err:      e.err,
			})
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool {
		ei := out[i].Start.Add(out[i].Duration)
		ej := out[j].Start.Add(out[j].Duration)
		if !ei.Equal(ej) {
			return ei.After(ej)
		}
		return out[i].TraceID < out[j].TraceID
	})
	if len(out) > limit {
		out = out[:limit]
	}
	return out
}

// KeptCount reports how many traces the collector currently retains
// (kept ring occupancy; a gauge for tests and debugging).
func (c *Collector) KeptCount() int {
	if c == nil {
		return 0
	}
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		for _, e := range sh.kept {
			if !e.gone {
				n++
			}
		}
		sh.mu.Unlock()
	}
	return n
}
