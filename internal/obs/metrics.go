// Package obs is the observability substrate of crowdkit: an
// allocation-conscious metrics core (atomic counters, gauges, fixed-bucket
// histograms) behind a Registry with Prometheus text exposition, a
// lightweight span/trace facility with context-propagated request IDs, and
// the EMObserver hook the truth-inference kernels report convergence
// through.
//
// Design constraints, in order:
//
//   - Free when off. Every metric type is safe to use through a nil
//     pointer (all operations become no-ops), and a nil *Registry returns
//     nil metrics from its constructors. Instrumented code therefore needs
//     no "is observability on?" branches of its own: it records into
//     whatever handles it was built with, and the nil receiver check is
//     the entire disabled-path cost.
//   - Hot-path writes are lock-free. Counter and Gauge are single atomics;
//     Histogram.Observe is one bucket increment plus two atomic adds. The
//     registry mutex is touched only at construction and exposition time.
//   - Stdlib only, matching the repository conventions.
//
// Metric naming follows the Prometheus convention
// crowdkit_<subsystem>_<name>[_<unit>][_total] — see DESIGN.md
// § Observability for the scheme and the full metric inventory.
package obs

import (
	"math"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter. The zero value is
// ready to use; all methods are no-ops on a nil receiver, so optional
// instrumentation can hold nil Counters instead of branching.
type Counter struct {
	v atomic.Int64
}

// NewCounter returns a standalone counter (not registered anywhere).
func NewCounter() *Counter { return &Counter{} }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (negative n is ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic float64 that can go up and down.
// The zero value is ready to use; methods are no-ops on a nil receiver.
type Gauge struct {
	bits atomic.Uint64
}

// NewGauge returns a standalone gauge.
func NewGauge() *Gauge { return &Gauge{} }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds delta with a CAS loop.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		v := math.Float64frombits(old) + delta
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current value (0 for a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket histogram with atomic bucket counters, built
// for latency distributions: Observe is lock-free and allocation-free, and
// Quantile estimates p50/p95/p99 by linear interpolation inside the
// containing bucket. Bucket upper bounds are inclusive (v <= bound), with
// an implicit +Inf overflow bucket, matching Prometheus "le" semantics.
//
// The zero value is NOT usable (it has no buckets); construct with
// NewHistogram or Registry.Histogram. Methods are no-ops on nil.
type Histogram struct {
	bounds  []float64 // sorted ascending upper bounds
	buckets []atomic.Int64
	count   atomic.Int64
	sum     atomic.Uint64 // float64 bits
}

// DefLatencyBuckets covers request/kernel latencies from 100µs to 10s.
var DefLatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// DefSimTimeBuckets covers simulated-clock spans (seconds of simulated
// time, e.g. async completion makespans) from 1s to a week.
var DefSimTimeBuckets = []float64{
	1, 10, 60, 300, 900, 3600, 4 * 3600, 24 * 3600, 7 * 24 * 3600,
}

// DefIOBuckets covers storage-path latencies (WAL appends, fsyncs) from
// 1µs — a buffered write into the page cache — up to 1s for a stalled
// disk. DefLatencyBuckets starts at 100µs and would fold every append
// into its first bucket.
var DefIOBuckets = []float64{
	0.000001, 0.0000025, 0.000005, 0.00001, 0.000025, 0.00005,
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
	0.05, 0.1, 0.25, 0.5, 1,
}

// NewHistogram returns a standalone histogram over the given ascending
// upper bounds. With no bounds, DefLatencyBuckets is used.
func NewHistogram(bounds ...float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefLatencyBuckets
	}
	cp := make([]float64, len(bounds))
	copy(cp, bounds)
	return &Histogram{
		bounds:  cp,
		buckets: make([]atomic.Int64, len(cp)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Linear scan: bucket counts are small (≤ ~20) and the branch
	// predictor wins over binary search at this size.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		s := math.Float64frombits(old) + v
		if h.sum.CompareAndSwap(old, math.Float64bits(s)) {
			break
		}
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Quantile estimates the q-quantile (q in [0,1]) by locating the bucket
// containing the rank and interpolating linearly inside it (the first
// bucket interpolates from 0; ranks in the +Inf overflow bucket report
// the last finite bound). Under concurrent writes the snapshot is
// approximate, like any scraped histogram.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	if rank < 1 {
		rank = 1
	}
	cum := int64(0)
	for i := range h.buckets {
		c := h.buckets[i].Load()
		if c == 0 {
			continue
		}
		if float64(cum+c) >= rank {
			if i >= len(h.bounds) {
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			frac := (rank - float64(cum)) / float64(c)
			return lo + frac*(h.bounds[i]-lo)
		}
		cum += c
	}
	return h.bounds[len(h.bounds)-1]
}

// Bounds returns the bucket upper bounds (shared slice; do not mutate).
func (h *Histogram) Bounds() []float64 {
	if h == nil {
		return nil
	}
	return h.bounds
}

// BucketCounts returns a snapshot of the per-bucket (non-cumulative)
// counts, including the +Inf overflow bucket as the last element.
func (h *Histogram) BucketCounts() []int64 {
	if h == nil {
		return nil
	}
	out := make([]int64, len(h.buckets))
	for i := range h.buckets {
		out[i] = h.buckets[i].Load()
	}
	return out
}
