package obs

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"
)

// Trace IDs identify one request end to end: the serving middleware mints
// (or adopts, via the X-Trace-Id header) an ID per request, stores it in
// the context, echoes it in the response, and stamps it on every request
// log line — so a worker-reported failure can be joined against server
// logs with one grep.

type ctxKey int

const (
	traceIDKey ctxKey = iota
	collectorKey
	currentSpanKey
)

// traceState seeds the lock-free trace-ID generator. IDs need to be
// unique and well-mixed, not cryptographic: a splitmix64 stream over an
// atomic counter gives both without locks. The process start time
// decorrelates IDs across restarts.
var traceState atomic.Uint64

func init() {
	traceState.Store(uint64(time.Now().UnixNano()))
}

func nextRand() uint64 {
	x := traceState.Add(0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// NewTraceID returns a fresh 16-hex-character trace ID.
func NewTraceID() string {
	return fmt.Sprintf("%016x", nextRand())
}

// newSpanID returns a fresh nonzero span ID (0 is reserved to mean "no
// parent"). Span IDs draw from the same splitmix64 stream as trace IDs.
func newSpanID() uint64 {
	for {
		if x := nextRand(); x != 0 {
			return x
		}
	}
}

// WithTraceID returns a context carrying the given trace ID.
func WithTraceID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, traceIDKey, id)
}

// TraceID returns the context's trace ID, or "" if none is set.
func TraceID(ctx context.Context) string {
	id, _ := ctx.Value(traceIDKey).(string)
	return id
}

// EnsureTraceID returns a context that carries a trace ID, minting one if
// the context has none, plus the ID itself.
func EnsureTraceID(ctx context.Context) (context.Context, string) {
	if id := TraceID(ctx); id != "" {
		return ctx, id
	}
	id := NewTraceID()
	return WithTraceID(ctx, id), id
}

// WithCollector returns a context whose spans record into c. A nil
// collector returns ctx unchanged, keeping downstream paths on the
// free-when-off fast path.
func WithCollector(ctx context.Context, c *Collector) context.Context {
	if c == nil {
		return ctx
	}
	return context.WithValue(ctx, collectorKey, c)
}

// CollectorFrom returns the context's collector, or nil.
func CollectorFrom(ctx context.Context) *Collector {
	c, _ := ctx.Value(collectorKey).(*Collector)
	return c
}

// CurrentSpan returns the innermost recording span stored in ctx, or nil.
// A nil return is a valid receiver for every Span method.
func CurrentSpan(ctx context.Context) *Span {
	s, _ := ctx.Value(currentSpanKey).(*Span)
	return s
}

// Span is one timed operation within a trace. Timings use time.Now's
// monotonic clock reading, so wall-clock adjustments cannot produce
// negative or skewed durations. Spans are values handed to exactly one
// goroutine; they carry no locks. A nil *Span is valid: every method
// no-ops, so instrumentation sites need no guards.
type Span struct {
	// TraceID ties the span to its request.
	TraceID string
	// Name identifies the operation (endpoint route, kernel name, ...).
	Name  string
	start time.Time

	// rec holds the recording state when a collector is attached; nil on
	// the free-when-off path, where a Span is just a start time.
	rec *spanRec
}

// spanRec accumulates the recorded fields of a span destined for a
// Collector. Owned by the span's single goroutine until End hands the
// finished SpanData to the collector.
type spanRec struct {
	col       *Collector
	spanID    uint64
	parentID  uint64
	err       string
	attrs     []Attr
	events    []SpanEvent
	discarded bool
	done      bool
}

// StartSpan begins a span named name under the context's trace (minting a
// trace ID if the context has none) and returns the enriched context. If
// the context carries a collector (WithCollector), the span records into
// it on End and becomes the context's current span, so spans started
// further down nest under it.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	ctx, id := EnsureTraceID(ctx)
	sp := &Span{TraceID: id, Name: name, start: time.Now()}
	if col := CollectorFrom(ctx); col != nil {
		var parent uint64
		if p := CurrentSpan(ctx); p != nil && p.rec != nil {
			parent = p.rec.spanID
		}
		sp.rec = &spanRec{col: col, spanID: newSpanID(), parentID: parent}
		ctx = context.WithValue(ctx, currentSpanKey, sp)
	}
	return ctx, sp
}

// ChildSpan starts a child of the context's current span. Unlike
// StartSpan it never allocates on the free-when-off path: without a
// collector in ctx it returns (ctx, nil), and a nil span's methods all
// no-op.
func ChildSpan(ctx context.Context, name string) (context.Context, *Span) {
	if CollectorFrom(ctx) == nil {
		return ctx, nil
	}
	return StartSpan(ctx, name)
}

// Recording reports whether the span will deliver data to a collector.
// Callers use it to skip attribute computation that only matters when a
// trace is actually being recorded.
func (s *Span) Recording() bool {
	return s != nil && s.rec != nil && !s.rec.discarded
}

// SetAttr appends attributes to the span. No-op unless recording.
func (s *Span) SetAttr(attrs ...Attr) {
	if !s.Recording() {
		return
	}
	s.rec.attrs = append(s.rec.attrs, attrs...)
}

// AddEvent appends a timestamped point event to the span. No-op unless
// recording; events beyond maxSpanEvents are dropped (counted on the
// collector).
func (s *Span) AddEvent(name string, attrs ...Attr) {
	if !s.Recording() {
		return
	}
	if len(s.rec.events) >= maxSpanEvents {
		s.rec.col.spansDropped.Inc()
		return
	}
	s.rec.events = append(s.rec.events, SpanEvent{Name: name, Time: time.Now(), Attrs: attrs})
}

// SetError marks the span failed. An error span forces its whole trace
// through the tail keep policy. No-op unless recording or on a nil error.
func (s *Span) SetError(err error) {
	if err == nil || !s.Recording() {
		return
	}
	s.rec.err = err.Error()
}

// Discard drops the span (and, for a root span, its keep decision):
// nothing is delivered to the collector at End. Background sweeps that
// did no work call this so idle ticks don't flood the kept ring.
func (s *Span) Discard() {
	if s == nil || s.rec == nil {
		return
	}
	s.rec.discarded = true
}

// Duration returns the time elapsed since the span started.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	return time.Since(s.start)
}

// finish delivers the completed span to its collector, once.
func (s *Span) finish(d time.Duration) {
	if s == nil || s.rec == nil || s.rec.discarded || s.rec.done {
		return
	}
	s.rec.done = true
	s.rec.col.finishSpan(SpanData{
		TraceID:  s.TraceID,
		SpanID:   s.rec.spanID,
		ParentID: s.rec.parentID,
		Name:     s.Name,
		Start:    s.start,
		Duration: d,
		Err:      s.rec.err,
		Attrs:    s.rec.attrs,
		Events:   s.rec.events,
	})
}

// End finishes the span and returns its duration.
func (s *Span) End() time.Duration {
	d := s.Duration()
	s.finish(d)
	return d
}

// EndTo finishes the span, records its duration in seconds into h (a nil
// histogram ignores the observation), and returns the duration.
func (s *Span) EndTo(h *Histogram) time.Duration {
	d := s.Duration()
	h.ObserveDuration(d)
	s.finish(d)
	return d
}
