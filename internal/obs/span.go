package obs

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"
)

// Trace IDs identify one request end to end: the serving middleware mints
// (or adopts, via the X-Trace-Id header) an ID per request, stores it in
// the context, echoes it in the response, and stamps it on every request
// log line — so a worker-reported failure can be joined against server
// logs with one grep.

type ctxKey int

const traceIDKey ctxKey = iota

// traceState seeds the lock-free trace-ID generator. IDs need to be
// unique and well-mixed, not cryptographic: a splitmix64 stream over an
// atomic counter gives both without locks. The process start time
// decorrelates IDs across restarts.
var traceState atomic.Uint64

func init() {
	traceState.Store(uint64(time.Now().UnixNano()))
}

// NewTraceID returns a fresh 16-hex-character trace ID.
func NewTraceID() string {
	x := traceState.Add(0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return fmt.Sprintf("%016x", x)
}

// WithTraceID returns a context carrying the given trace ID.
func WithTraceID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, traceIDKey, id)
}

// TraceID returns the context's trace ID, or "" if none is set.
func TraceID(ctx context.Context) string {
	id, _ := ctx.Value(traceIDKey).(string)
	return id
}

// EnsureTraceID returns a context that carries a trace ID, minting one if
// the context has none, plus the ID itself.
func EnsureTraceID(ctx context.Context) (context.Context, string) {
	if id := TraceID(ctx); id != "" {
		return ctx, id
	}
	id := NewTraceID()
	return WithTraceID(ctx, id), id
}

// Span is one timed operation within a trace. Timings use time.Now's
// monotonic clock reading, so wall-clock adjustments cannot produce
// negative or skewed durations. Spans are values handed to exactly one
// goroutine; they carry no locks.
type Span struct {
	// TraceID ties the span to its request.
	TraceID string
	// Name identifies the operation (endpoint route, kernel name, ...).
	Name  string
	start time.Time
}

// StartSpan begins a span named name under the context's trace (minting a
// trace ID if the context has none) and returns the enriched context.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	ctx, id := EnsureTraceID(ctx)
	return ctx, &Span{TraceID: id, Name: name, start: time.Now()}
}

// Duration returns the time elapsed since the span started.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	return time.Since(s.start)
}

// End finishes the span and returns its duration.
func (s *Span) End() time.Duration { return s.Duration() }

// EndTo finishes the span, records its duration in seconds into h (a nil
// histogram ignores the observation), and returns the duration.
func (s *Span) EndTo(h *Histogram) time.Duration {
	d := s.Duration()
	h.ObserveDuration(d)
	return d
}
