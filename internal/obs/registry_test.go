package obs

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestPrometheusExpositionGolden pins the exact exposition output: family
// ordering, series ordering, label rendering, histogram bucket/sum/count
// lines. Scrapers and the CI smoke step depend on this shape.
func TestPrometheusExpositionGolden(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("crowdkit_http_requests_total", L("endpoint", "/api/task"), L("code", "2xx")).Add(3)
	reg.Counter("crowdkit_http_requests_total", L("endpoint", "/api/task"), L("code", "4xx")).Add(1)
	reg.Gauge("crowdkit_budget_remaining_units").Set(17.5)
	reg.GaugeFunc("crowdkit_pool_tasks", func() float64 { return 42 })
	h := reg.Histogram("crowdkit_request_seconds", []float64{0.01, 0.1, 1}, L("endpoint", "/api/task"))
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5) // overflow bucket

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE crowdkit_budget_remaining_units gauge
crowdkit_budget_remaining_units 17.5
# TYPE crowdkit_http_requests_total counter
crowdkit_http_requests_total{code="2xx",endpoint="/api/task"} 3
crowdkit_http_requests_total{code="4xx",endpoint="/api/task"} 1
# TYPE crowdkit_pool_tasks gauge
crowdkit_pool_tasks 42
# TYPE crowdkit_request_seconds histogram
crowdkit_request_seconds_bucket{endpoint="/api/task",le="0.01"} 1
crowdkit_request_seconds_bucket{endpoint="/api/task",le="0.1"} 2
crowdkit_request_seconds_bucket{endpoint="/api/task",le="1"} 3
crowdkit_request_seconds_bucket{endpoint="/api/task",le="+Inf"} 4
crowdkit_request_seconds_sum{endpoint="/api/task"} 5.555
crowdkit_request_seconds_count{endpoint="/api/task"} 4
`
	if got := b.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestHistogramBucketBoundaries asserts the "le" semantics: upper bounds
// are inclusive, values above the last bound land in +Inf.
func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewHistogram(1, 2, 4)
	for _, v := range []float64{0.5, 1, 1.0000001, 2, 3, 4, 4.5, 100} {
		h.Observe(v)
	}
	want := []int64{2, 2, 2, 2} // (≤1)=={0.5,1}, (≤2)=={1.0000001,2}, (≤4)=={3,4}, +Inf=={4.5,100}
	got := h.BucketCounts()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, got[i], want[i], got)
		}
	}
	if h.Count() != 8 {
		t.Fatalf("count = %d, want 8", h.Count())
	}
	if math.Abs(h.Sum()-116.0000001) > 1e-6 {
		t.Fatalf("sum = %v", h.Sum())
	}
}

// TestHistogramQuantiles checks the interpolated estimates against a
// known uniform fill: 100 observations spread evenly over (0, 10].
func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram(1, 2, 3, 4, 5, 6, 7, 8, 9, 10)
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) / 10) // 0.1 .. 10.0
	}
	for _, tc := range []struct{ q, want, tol float64 }{
		{0.50, 5.0, 0.11},
		{0.95, 9.5, 0.11},
		{0.99, 9.9, 0.11},
	} {
		if got := h.Quantile(tc.q); math.Abs(got-tc.want) > tc.tol {
			t.Fatalf("p%v = %v, want %v ± %v", tc.q*100, got, tc.want, tc.tol)
		}
	}
	// Empty histogram reports 0, not NaN.
	if got := NewHistogram(1).Quantile(0.5); got != 0 {
		t.Fatalf("empty quantile = %v", got)
	}
}

// TestNilMetricsAreFree locks in the "free when off" contract: every
// operation through nil receivers and a nil registry is a no-op, not a
// panic.
func TestNilMetricsAreFree(t *testing.T) {
	var reg *Registry
	c := reg.Counter("x")
	g := reg.Gauge("y")
	h := reg.Histogram("z", nil)
	reg.GaugeFunc("f", func() float64 { return 1 })
	reg.RegisterCounter("r", NewCounter())
	c.Inc()
	c.Add(5)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	h.ObserveDuration(time.Second)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil metrics must read as zero")
	}
	if err := reg.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	if reg.Snapshot() != nil {
		t.Fatal("nil registry snapshot should be nil")
	}
	em := NewEMMetrics(nil)
	em.ObserveEMIteration("DS", 1, 0.5)
	em.ObserveEMRun("DS", 1, true, time.Millisecond)
}

// TestRegistryGetOrCreate asserts series identity: same (name, labels) in
// any label order shares one metric; different labels are distinct.
func TestRegistryGetOrCreate(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("c", L("x", "1"), L("y", "2"))
	b := reg.Counter("c", L("y", "2"), L("x", "1"))
	if a != b {
		t.Fatal("label order must not change series identity")
	}
	if c := reg.Counter("c", L("x", "1")); c == a {
		t.Fatal("different label sets must be distinct series")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch must panic")
		}
	}()
	reg.Gauge("c")
}

// TestRegistryConcurrentAccess hammers get-or-create, recording, and
// scraping from many goroutines at once; run under -race it proves the
// registry's concurrency contract. Counts are asserted exactly.
func TestRegistryConcurrentAccess(t *testing.T) {
	reg := NewRegistry()
	const goroutines = 16
	const perG = 500
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Scrapers run concurrently with writers.
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					var b strings.Builder
					if err := reg.WritePrometheus(&b); err != nil {
						t.Error(err)
						return
					}
					_ = reg.Snapshot()
				}
			}
		}()
	}
	var writers sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		writers.Add(1)
		go func(g int) {
			defer writers.Done()
			for i := 0; i < perG; i++ {
				reg.Counter("cc_total", L("shard", fmt.Sprint(g%4))).Inc()
				reg.Gauge("gg").Set(float64(i))
				reg.Histogram("hh_seconds", nil).Observe(float64(i%10) / 1000)
			}
		}(g)
	}
	writers.Wait()
	close(stop)
	wg.Wait()

	total := int64(0)
	for s := 0; s < 4; s++ {
		total += reg.Counter("cc_total", L("shard", fmt.Sprint(s))).Value()
	}
	if want := int64(goroutines * perG); total != want {
		t.Fatalf("counter total = %d, want %d", total, want)
	}
	if n := reg.Histogram("hh_seconds", nil).Count(); n != goroutines*perG {
		t.Fatalf("histogram count = %d, want %d", n, goroutines*perG)
	}
}

// TestEMMetrics drives the standard observer and checks the series it
// produces.
func TestEMMetrics(t *testing.T) {
	reg := NewRegistry()
	em := NewEMMetrics(reg)
	for i := 1; i <= 3; i++ {
		em.ObserveEMIteration("DS", i, 1/float64(i))
	}
	em.ObserveEMRun("DS", 3, true, 2*time.Millisecond)
	em.ObserveEMRun("GLAD", 50, false, 10*time.Millisecond)

	snap := reg.Snapshot()
	for k, want := range map[string]float64{
		`crowdkit_em_runs_total{method="DS"}`:        1,
		`crowdkit_em_converged_total{method="DS"}`:   1,
		`crowdkit_em_iterations_total{method="DS"}`:  3,
		`crowdkit_em_last_iterations{method="DS"}`:   3,
		`crowdkit_em_runs_total{method="GLAD"}`:      1,
		`crowdkit_em_converged_total{method="GLAD"}`: 0,
		`crowdkit_em_run_seconds_count{method="DS"}`: 1,
	} {
		if got, ok := snap[k]; !ok || got != want {
			t.Fatalf("%s = %v (present=%v), want %v\nsnapshot: %v", k, got, ok, want, snap)
		}
	}
	if d := snap[`crowdkit_em_last_delta{method="DS"}`]; math.Abs(d-1.0/3) > 1e-12 {
		t.Fatalf("last delta = %v", d)
	}
}
