// Package datagen generates the synthetic workloads the experiment suite
// runs on: entity-resolution catalogs with planted duplicate clusters and
// typo noise, categorical labeling sets, latent-score item collections for
// ranking, and open domains for crowdsourced collection.
//
// Every generator takes an explicit seeded RNG and plants exact ground
// truth, so experiments can compute true accuracy/F1 — the substitution
// for the real-world datasets (product catalogs, image labels, tweets)
// used in the literature.
package datagen

import (
	"fmt"
	"strings"

	"repro/internal/stats"
)

// Vocabulary fragments for synthetic product-style records.
var (
	brands = []string{
		"acme", "globex", "initech", "umbrella", "stark", "wayne", "tyrell",
		"cyberdyne", "aperture", "hooli", "wonka", "oscorp",
	}
	products = []string{
		"phone", "laptop", "tablet", "camera", "monitor", "router",
		"keyboard", "speaker", "drone", "printer", "charger", "headset",
	}
	adjectives = []string{
		"pro", "max", "mini", "ultra", "lite", "plus", "air", "neo",
		"prime", "core",
	}
	colors = []string{"black", "white", "silver", "red", "blue", "gold"}
)

// ERDataset is an entity-resolution workload: records with a planted
// clustering into entities.
type ERDataset struct {
	// Records holds the textual descriptions.
	Records []string
	// Entity[i] is the entity id of record i.
	Entity []int
	// NumEntities is the number of distinct entities.
	NumEntities int
}

// TruePairs enumerates all matching record pairs (i < j).
func (d *ERDataset) TruePairs() []struct{ I, J int } {
	byEntity := make(map[int][]int)
	for i, e := range d.Entity {
		byEntity[e] = append(byEntity[e], i)
	}
	var out []struct{ I, J int }
	for e := 0; e < d.NumEntities; e++ {
		recs := byEntity[e]
		for a := 0; a < len(recs); a++ {
			for b := a + 1; b < len(recs); b++ {
				out = append(out, struct{ I, J int }{recs[a], recs[b]})
			}
		}
	}
	return out
}

// ERConfig parameterizes NewERDataset.
type ERConfig struct {
	// Entities is the number of distinct real-world entities.
	Entities int
	// DupMean is the mean number of records per entity (>= 1); record
	// counts are 1 + Poisson(DupMean-1).
	DupMean float64
	// Noise in [0,1] controls how aggressively duplicate records are
	// corrupted (token drops, typos, reorderings).
	Noise float64
}

// NewERDataset generates a catalog with planted duplicates.
func NewERDataset(rng *stats.RNG, cfg ERConfig) (*ERDataset, error) {
	if cfg.Entities <= 0 {
		return nil, fmt.Errorf("datagen: entities must be positive (got %d)", cfg.Entities)
	}
	if cfg.DupMean < 1 {
		cfg.DupMean = 1
	}
	if cfg.Noise < 0 || cfg.Noise > 1 {
		return nil, fmt.Errorf("datagen: noise %v outside [0,1]", cfg.Noise)
	}
	d := &ERDataset{NumEntities: cfg.Entities}
	for e := 0; e < cfg.Entities; e++ {
		base := canonicalRecord(rng, e)
		n := 1 + rng.Poisson(cfg.DupMean-1)
		for c := 0; c < n; c++ {
			rec := base
			if c > 0 {
				rec = corruptRecord(rng, base, cfg.Noise)
			}
			d.Records = append(d.Records, rec)
			d.Entity = append(d.Entity, e)
		}
	}
	// Shuffle records so entity clusters are not contiguous.
	rng.Shuffle(len(d.Records), func(i, j int) {
		d.Records[i], d.Records[j] = d.Records[j], d.Records[i]
		d.Entity[i], d.Entity[j] = d.Entity[j], d.Entity[i]
	})
	return d, nil
}

// canonicalRecord builds the canonical description of entity e.
func canonicalRecord(rng *stats.RNG, e int) string {
	parts := []string{
		brands[rng.Intn(len(brands))],
		products[rng.Intn(len(products))],
		adjectives[rng.Intn(len(adjectives))],
		fmt.Sprintf("%d", 100+rng.Intn(900)),
		colors[rng.Intn(len(colors))],
		fmt.Sprintf("e%d", e), // guarantees entities are distinguishable
	}
	return strings.Join(parts, " ")
}

// corruptRecord produces a noisy duplicate: token drops, typos, swaps and
// case changes, scaled by noise.
func corruptRecord(rng *stats.RNG, base string, noise float64) string {
	tokens := strings.Fields(base)
	out := make([]string, 0, len(tokens))
	for _, tok := range tokens {
		r := rng.Float64()
		switch {
		case r < 0.15*noise && len(out) > 0:
			// drop token (never drop everything)
			continue
		case r < 0.40*noise:
			out = append(out, typo(rng, tok))
		default:
			out = append(out, tok)
		}
	}
	if len(out) == 0 {
		out = tokens
	}
	// Occasionally swap two tokens.
	if rng.Bool(0.3*noise) && len(out) >= 2 {
		i := rng.Intn(len(out) - 1)
		out[i], out[i+1] = out[i+1], out[i]
	}
	return strings.Join(out, " ")
}

// typo applies a single character edit to a token.
func typo(rng *stats.RNG, tok string) string {
	r := []rune(tok)
	if len(r) < 2 {
		return tok + "x"
	}
	switch rng.Intn(3) {
	case 0: // swap
		i := rng.Intn(len(r) - 1)
		r[i], r[i+1] = r[i+1], r[i]
	case 1: // drop
		i := rng.Intn(len(r))
		r = append(r[:i], r[i+1:]...)
	default: // duplicate
		i := rng.Intn(len(r))
		r = append(r[:i+1], r[i:]...)
	}
	return string(r)
}

// RankingDataset is a set of items with latent quality scores; the true
// ranking is by descending score. Pairwise task difficulty derives from
// the score gap: close items are hard to compare.
type RankingDataset struct {
	Items  []string
	Scores []float64
}

// NewRankingDataset generates n items with latent scores drawn uniformly
// from [0, 10).
func NewRankingDataset(rng *stats.RNG, n int) (*RankingDataset, error) {
	if n <= 0 {
		return nil, fmt.Errorf("datagen: item count must be positive (got %d)", n)
	}
	d := &RankingDataset{
		Items:  make([]string, n),
		Scores: make([]float64, n),
	}
	for i := 0; i < n; i++ {
		d.Items[i] = fmt.Sprintf("item-%03d", i)
		d.Scores[i] = rng.Range(0, 10)
	}
	return d, nil
}

// Better reports whether item i truly outranks item j.
func (d *RankingDataset) Better(i, j int) bool { return d.Scores[i] > d.Scores[j] }

// PairDifficulty maps the score gap between items to a task difficulty in
// [0,1]: similar scores are hard (difficulty near 1), distant scores easy.
func (d *RankingDataset) PairDifficulty(i, j int) float64 {
	gap := d.Scores[i] - d.Scores[j]
	if gap < 0 {
		gap = -gap
	}
	// A gap of 5 (half the scale) or more is trivially easy.
	diff := 1 - gap/5
	if diff < 0 {
		diff = 0
	}
	return diff
}

// TrueRanking returns item indices sorted by descending score.
func (d *RankingDataset) TrueRanking() []int {
	idx := make([]int, len(d.Items))
	for i := range idx {
		idx[i] = i
	}
	// insertion sort by descending score (n is small in experiments)
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0 && d.Scores[idx[j]] > d.Scores[idx[j-1]]; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	return idx
}

// LabelingDataset is a categorical labeling workload (image-tagging
// style): n items, k classes, planted labels, per-item difficulty.
type LabelingDataset struct {
	Classes      []string
	Labels       []int
	Difficulties []float64
}

// NewLabelingDataset generates n items over k classes. Difficulty is
// Beta(2,5)-distributed (most items easy, a hard tail), matching the
// shape reported in empirical crowdsourcing studies.
func NewLabelingDataset(rng *stats.RNG, n, k int) (*LabelingDataset, error) {
	if n <= 0 || k < 2 {
		return nil, fmt.Errorf("datagen: need n > 0 and k >= 2 (got %d, %d)", n, k)
	}
	d := &LabelingDataset{
		Classes:      make([]string, k),
		Labels:       make([]int, n),
		Difficulties: make([]float64, n),
	}
	for c := 0; c < k; c++ {
		d.Classes[c] = fmt.Sprintf("class-%c", 'A'+c)
	}
	for i := 0; i < n; i++ {
		d.Labels[i] = rng.Intn(k)
		d.Difficulties[i] = rng.Beta(2, 5)
	}
	return d, nil
}

// CollectionDomain generates an open domain of m distinct items for
// crowdsourced enumeration experiments (e.g. "name a city").
func CollectionDomain(m int) []string {
	out := make([]string, m)
	for i := range out {
		out[i] = fmt.Sprintf("entry-%03d", i)
	}
	return out
}

// FilterDataset is a crowd-filtering workload: n items, each truly
// passing the predicate with the given selectivity; per-item difficulty
// Beta(2,5).
type FilterDataset struct {
	Pass         []bool
	Difficulties []float64
}

// NewFilterDataset generates the workload.
func NewFilterDataset(rng *stats.RNG, n int, selectivity float64) (*FilterDataset, error) {
	if n <= 0 {
		return nil, fmt.Errorf("datagen: item count must be positive (got %d)", n)
	}
	if selectivity < 0 || selectivity > 1 {
		return nil, fmt.Errorf("datagen: selectivity %v outside [0,1]", selectivity)
	}
	d := &FilterDataset{
		Pass:         make([]bool, n),
		Difficulties: make([]float64, n),
	}
	for i := 0; i < n; i++ {
		d.Pass[i] = rng.Bool(selectivity)
		d.Difficulties[i] = rng.Beta(2, 5)
	}
	return d, nil
}
