package datagen

import (
	"strings"
	"testing"

	"repro/internal/cost"
	"repro/internal/stats"
)

func TestNewERDatasetShape(t *testing.T) {
	rng := stats.NewRNG(1)
	d, err := NewERDataset(rng, ERConfig{Entities: 50, DupMean: 2, Noise: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if d.NumEntities != 50 {
		t.Fatalf("NumEntities = %d", d.NumEntities)
	}
	if len(d.Records) != len(d.Entity) {
		t.Fatal("records/entity length mismatch")
	}
	if len(d.Records) < 50 {
		t.Fatalf("only %d records for 50 entities", len(d.Records))
	}
	seen := make(map[int]bool)
	for _, e := range d.Entity {
		if e < 0 || e >= 50 {
			t.Fatalf("entity id %d out of range", e)
		}
		seen[e] = true
	}
	if len(seen) != 50 {
		t.Fatalf("only %d entities appear", len(seen))
	}
	for _, r := range d.Records {
		if strings.TrimSpace(r) == "" {
			t.Fatal("empty record generated")
		}
	}
}

func TestNewERDatasetValidation(t *testing.T) {
	rng := stats.NewRNG(2)
	if _, err := NewERDataset(rng, ERConfig{Entities: 0}); err == nil {
		t.Fatal("zero entities should fail")
	}
	if _, err := NewERDataset(rng, ERConfig{Entities: 5, Noise: 1.5}); err == nil {
		t.Fatal("noise > 1 should fail")
	}
}

func TestERDuplicatesAreSimilar(t *testing.T) {
	rng := stats.NewRNG(3)
	d, err := NewERDataset(rng, ERConfig{Entities: 40, DupMean: 2.5, Noise: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	// Average similarity within entities should far exceed cross-entity.
	var within, cross []float64
	for i := 0; i < len(d.Records); i++ {
		for j := i + 1; j < len(d.Records); j++ {
			s := cost.CombinedSimilarity(d.Records[i], d.Records[j])
			if d.Entity[i] == d.Entity[j] {
				within = append(within, s)
			} else if len(cross) < 2000 {
				cross = append(cross, s)
			}
		}
	}
	if len(within) == 0 {
		t.Fatal("no duplicate pairs generated")
	}
	if stats.Mean(within) < stats.Mean(cross)+0.3 {
		t.Fatalf("duplicates not separable: within %.3f vs cross %.3f",
			stats.Mean(within), stats.Mean(cross))
	}
}

func TestERTruePairsConsistent(t *testing.T) {
	rng := stats.NewRNG(4)
	d, _ := NewERDataset(rng, ERConfig{Entities: 20, DupMean: 2, Noise: 0.2})
	pairs := d.TruePairs()
	for _, p := range pairs {
		if d.Entity[p.I] != d.Entity[p.J] {
			t.Fatalf("TruePairs produced cross-entity pair %v", p)
		}
		if p.I >= p.J {
			t.Fatalf("pair not normalized: %v", p)
		}
	}
	// Count check: sum over clusters of C(n,2).
	sizes := make(map[int]int)
	for _, e := range d.Entity {
		sizes[e]++
	}
	want := 0
	for _, n := range sizes {
		want += n * (n - 1) / 2
	}
	if len(pairs) != want {
		t.Fatalf("TruePairs = %d, want %d", len(pairs), want)
	}
}

func TestERDeterminism(t *testing.T) {
	a, _ := NewERDataset(stats.NewRNG(5), ERConfig{Entities: 30, DupMean: 2, Noise: 0.4})
	b, _ := NewERDataset(stats.NewRNG(5), ERConfig{Entities: 30, DupMean: 2, Noise: 0.4})
	if len(a.Records) != len(b.Records) {
		t.Fatal("not deterministic in size")
	}
	for i := range a.Records {
		if a.Records[i] != b.Records[i] || a.Entity[i] != b.Entity[i] {
			t.Fatalf("not deterministic at %d", i)
		}
	}
}

func TestNewRankingDataset(t *testing.T) {
	rng := stats.NewRNG(6)
	d, err := NewRankingDataset(rng, 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Items) != 30 || len(d.Scores) != 30 {
		t.Fatal("shape wrong")
	}
	rank := d.TrueRanking()
	if len(rank) != 30 {
		t.Fatal("ranking length wrong")
	}
	for i := 1; i < len(rank); i++ {
		if d.Scores[rank[i]] > d.Scores[rank[i-1]] {
			t.Fatal("TrueRanking not descending")
		}
	}
	if _, err := NewRankingDataset(rng, 0); err == nil {
		t.Fatal("zero items should fail")
	}
}

func TestPairDifficulty(t *testing.T) {
	d := &RankingDataset{
		Items:  []string{"a", "b", "c"},
		Scores: []float64{9, 8.9, 1},
	}
	close := d.PairDifficulty(0, 1)
	far := d.PairDifficulty(0, 2)
	if close <= far {
		t.Fatalf("close pair difficulty %v should exceed far %v", close, far)
	}
	if far != 0 {
		t.Fatalf("gap > 5 should be difficulty 0, got %v", far)
	}
	if d.PairDifficulty(0, 1) != d.PairDifficulty(1, 0) {
		t.Fatal("difficulty not symmetric")
	}
	if !d.Better(0, 2) || d.Better(2, 0) {
		t.Fatal("Better broken")
	}
}

func TestNewLabelingDataset(t *testing.T) {
	rng := stats.NewRNG(7)
	d, err := NewLabelingDataset(rng, 500, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Classes) != 3 || len(d.Labels) != 500 || len(d.Difficulties) != 500 {
		t.Fatal("shape wrong")
	}
	counts := make([]int, 3)
	for i, l := range d.Labels {
		if l < 0 || l >= 3 {
			t.Fatalf("label %d out of range", l)
		}
		counts[l]++
		if d.Difficulties[i] < 0 || d.Difficulties[i] > 1 {
			t.Fatalf("difficulty %v out of range", d.Difficulties[i])
		}
	}
	for c, n := range counts {
		if n < 100 {
			t.Fatalf("class %d underrepresented: %d", c, n)
		}
	}
	// Beta(2,5) has mean 2/7: most items easy.
	if m := stats.Mean(d.Difficulties); m > 0.4 {
		t.Fatalf("mean difficulty %v, want ~0.29", m)
	}
	if _, err := NewLabelingDataset(rng, 10, 1); err == nil {
		t.Fatal("k=1 should fail")
	}
}

func TestCollectionDomain(t *testing.T) {
	dom := CollectionDomain(10)
	if len(dom) != 10 {
		t.Fatal("domain size wrong")
	}
	seen := map[string]bool{}
	for _, d := range dom {
		if seen[d] {
			t.Fatalf("duplicate domain item %s", d)
		}
		seen[d] = true
	}
}

func TestNewFilterDataset(t *testing.T) {
	rng := stats.NewRNG(8)
	d, err := NewFilterDataset(rng, 2000, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	pass := 0
	for _, p := range d.Pass {
		if p {
			pass++
		}
	}
	frac := float64(pass) / 2000
	if frac < 0.25 || frac > 0.35 {
		t.Fatalf("selectivity %v, want ~0.3", frac)
	}
	if _, err := NewFilterDataset(rng, 0, 0.5); err == nil {
		t.Fatal("zero items should fail")
	}
	if _, err := NewFilterDataset(rng, 10, 1.5); err == nil {
		t.Fatal("bad selectivity should fail")
	}
}
