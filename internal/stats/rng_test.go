package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams with different seeds matched %d/100 times", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := NewRNG(7)
	s := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		s += r.Float64()
	}
	mean := s / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(3)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d out of range", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("Intn(10) only produced %d distinct values", len(seen))
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(11)
	err := quick.Check(func(nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := r.Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestSampleDistinct(t *testing.T) {
	r := NewRNG(13)
	err := quick.Check(func(nRaw, kRaw uint8) bool {
		n := int(nRaw%50) + 1
		k := int(kRaw) % (n + 1)
		s := r.Sample(n, k)
		if len(s) != k {
			return false
		}
		seen := make(map[int]bool)
		for _, v := range s {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestChoiceRespectsWeights(t *testing.T) {
	r := NewRNG(17)
	counts := [3]int{}
	for i := 0; i < 30000; i++ {
		counts[r.Choice([]float64{1, 2, 7})]++
	}
	if !(counts[2] > counts[1] && counts[1] > counts[0]) {
		t.Fatalf("Choice counts not ordered by weight: %v", counts)
	}
	frac := float64(counts[2]) / 30000
	if math.Abs(frac-0.7) > 0.03 {
		t.Fatalf("weight-7 item frequency %v, want ~0.7", frac)
	}
}

func TestChoicePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Choice with zero-sum weights did not panic")
		}
	}()
	NewRNG(1).Choice([]float64{0, 0})
}

func TestNormMoments(t *testing.T) {
	r := NewRNG(19)
	const n = 100000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = r.Norm(3, 2)
	}
	if m := Mean(xs); math.Abs(m-3) > 0.05 {
		t.Fatalf("Norm mean %v, want ~3", m)
	}
	if sd := StdDev(xs); math.Abs(sd-2) > 0.05 {
		t.Fatalf("Norm stddev %v, want ~2", sd)
	}
}

func TestExpMean(t *testing.T) {
	r := NewRNG(23)
	const n = 100000
	s := 0.0
	for i := 0; i < n; i++ {
		v := r.Exp(2)
		if v < 0 {
			t.Fatalf("Exp produced negative %v", v)
		}
		s += v
	}
	if m := s / n; math.Abs(m-0.5) > 0.02 {
		t.Fatalf("Exp(2) mean %v, want ~0.5", m)
	}
}

func TestPoissonMean(t *testing.T) {
	r := NewRNG(29)
	for _, lambda := range []float64{0.5, 4, 50} {
		const n = 50000
		s := 0.0
		for i := 0; i < n; i++ {
			s += float64(r.Poisson(lambda))
		}
		m := s / n
		if math.Abs(m-lambda) > 0.05*lambda+0.05 {
			t.Fatalf("Poisson(%v) mean %v", lambda, m)
		}
	}
}

func TestBetaRangeAndMean(t *testing.T) {
	r := NewRNG(31)
	const n = 50000
	s := 0.0
	for i := 0; i < n; i++ {
		v := r.Beta(2, 5)
		if v < 0 || v > 1 {
			t.Fatalf("Beta out of [0,1]: %v", v)
		}
		s += v
	}
	want := 2.0 / 7.0
	if m := s / n; math.Abs(m-want) > 0.01 {
		t.Fatalf("Beta(2,5) mean %v, want ~%v", m, want)
	}
}

func TestGammaMean(t *testing.T) {
	r := NewRNG(37)
	for _, shape := range []float64{0.5, 1, 3.5} {
		const n = 50000
		s := 0.0
		for i := 0; i < n; i++ {
			s += r.Gamma(shape)
		}
		if m := s / n; math.Abs(m-shape) > 0.05*shape+0.05 {
			t.Fatalf("Gamma(%v) mean %v", shape, m)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	r := NewRNG(41)
	z := NewZipf(r, 100, 1.1)
	counts := make([]int, 100)
	for i := 0; i < 50000; i++ {
		counts[z.Next()]++
	}
	if !(counts[0] > counts[9] && counts[9] > counts[49]) {
		t.Fatalf("Zipf counts not skewed: first=%d tenth=%d fiftieth=%d",
			counts[0], counts[9], counts[49])
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := NewRNG(99)
	child := parent.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("Split stream matched parent %d/100 times", same)
	}
}

func TestLogNormalPositive(t *testing.T) {
	r := NewRNG(43)
	for i := 0; i < 1000; i++ {
		if v := r.LogNormal(0, 1); v <= 0 {
			t.Fatalf("LogNormal produced non-positive %v", v)
		}
	}
}
