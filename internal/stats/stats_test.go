package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanVarianceBasics(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); !approx(m, 5, 1e-12) {
		t.Fatalf("Mean = %v, want 5", m)
	}
	// Sample variance of this classic dataset is 32/7.
	if v := Variance(xs); !approx(v, 32.0/7.0, 1e-12) {
		t.Fatalf("Variance = %v, want %v", v, 32.0/7.0)
	}
}

func TestMeanEmpty(t *testing.T) {
	if Mean(nil) != 0 || Variance(nil) != 0 || Median(nil) != 0 {
		t.Fatal("empty-slice statistics should be 0")
	}
}

func TestMedianOddEven(t *testing.T) {
	if m := Median([]float64{3, 1, 2}); m != 2 {
		t.Fatalf("odd median = %v", m)
	}
	if m := Median([]float64{4, 1, 3, 2}); m != 2.5 {
		t.Fatalf("even median = %v", m)
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Median(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("Median mutated input: %v", xs)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !approx(got, c.want, 1e-12) {
			t.Fatalf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestEntropyUniformIsMax(t *testing.T) {
	hUniform := Entropy([]float64{0.25, 0.25, 0.25, 0.25})
	if !approx(hUniform, math.Log(4), 1e-12) {
		t.Fatalf("uniform entropy = %v, want ln 4", hUniform)
	}
	hSkew := Entropy([]float64{0.97, 0.01, 0.01, 0.01})
	if hSkew >= hUniform {
		t.Fatalf("skewed entropy %v >= uniform %v", hSkew, hUniform)
	}
	if h := Entropy([]float64{1, 0, 0}); !approx(h, 0, 1e-12) {
		t.Fatalf("point-mass entropy = %v, want 0", h)
	}
}

func TestEntropyUnnormalizedInput(t *testing.T) {
	a := Entropy([]float64{1, 1})
	b := Entropy([]float64{10, 10})
	if !approx(a, b, 1e-12) {
		t.Fatalf("entropy should be scale-invariant: %v vs %v", a, b)
	}
}

func TestNormalizeSumsToOne(t *testing.T) {
	err := quick.Check(func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		ps := make([]float64, len(raw))
		for i, v := range raw {
			ps[i] = float64(v)
		}
		Normalize(ps)
		s := 0.0
		for _, p := range ps {
			if p < 0 {
				return false
			}
			s += p
		}
		return approx(s, 1, 1e-9)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestNormalizeZeroSumGivesUniform(t *testing.T) {
	ps := []float64{0, 0, 0, 0}
	Normalize(ps)
	for _, p := range ps {
		if !approx(p, 0.25, 1e-12) {
			t.Fatalf("zero-sum normalize gave %v", ps)
		}
	}
}

func TestArgMax(t *testing.T) {
	if i := ArgMax([]float64{1, 5, 3}); i != 1 {
		t.Fatalf("ArgMax = %d, want 1", i)
	}
	if i := ArgMax(nil); i != -1 {
		t.Fatalf("ArgMax(nil) = %d, want -1", i)
	}
	// Ties resolve to first occurrence.
	if i := ArgMax([]float64{2, 2, 1}); i != 0 {
		t.Fatalf("ArgMax tie = %d, want 0", i)
	}
}

func TestWelchTSeparatedSamples(t *testing.T) {
	r := NewRNG(5)
	a := make([]float64, 50)
	b := make([]float64, 50)
	for i := range a {
		a[i] = r.Norm(0, 1)
		b[i] = r.Norm(3, 1)
	}
	_, p := WelchT(a, b)
	if p > 1e-6 {
		t.Fatalf("clearly separated samples: p = %v", p)
	}
}

func TestWelchTIdenticalDistributions(t *testing.T) {
	r := NewRNG(6)
	a := make([]float64, 200)
	b := make([]float64, 200)
	for i := range a {
		a[i] = r.Norm(0, 1)
		b[i] = r.Norm(0, 1)
	}
	_, p := WelchT(a, b)
	if p < 0.001 {
		t.Fatalf("same-distribution samples rejected: p = %v", p)
	}
}

func TestWelchTDegenerate(t *testing.T) {
	if _, p := WelchT([]float64{1}, []float64{2, 3}); p != 1 {
		t.Fatalf("tiny sample should give p=1, got %v", p)
	}
}

func TestRegIncBetaBounds(t *testing.T) {
	if v := regIncBeta(2, 3, 0); v != 0 {
		t.Fatalf("I_0 = %v", v)
	}
	if v := regIncBeta(2, 3, 1); v != 1 {
		t.Fatalf("I_1 = %v", v)
	}
	// I_x(1,1) = x (uniform CDF).
	for _, x := range []float64{0.1, 0.5, 0.9} {
		if v := regIncBeta(1, 1, x); !approx(v, x, 1e-9) {
			t.Fatalf("I_%v(1,1) = %v", x, v)
		}
	}
}

func TestBootstrapCIContainsMean(t *testing.T) {
	r := NewRNG(8)
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = r.Norm(10, 2)
	}
	lo, hi := BootstrapCI(r, xs, 500, 0.95)
	m := Mean(xs)
	if !(lo < m && m < hi) {
		t.Fatalf("CI [%v, %v] does not contain sample mean %v", lo, hi, m)
	}
	if hi-lo > 2 {
		t.Fatalf("CI implausibly wide: [%v, %v]", lo, hi)
	}
}

func TestConfusionRowNormalize(t *testing.T) {
	m := NewConfusion(2)
	m.Add(0, 0, 8)
	m.Add(0, 1, 2)
	m.Add(1, 1, 5)
	m.RowNormalize(0)
	if !approx(m[0][0], 0.8, 1e-12) || !approx(m[1][1], 1, 1e-12) {
		t.Fatalf("normalized matrix wrong: %v", m)
	}
	if !approx(m.Accuracy(), 0.9, 1e-12) {
		t.Fatalf("Accuracy = %v, want 0.9", m.Accuracy())
	}
}

func TestConfusionSmoothingUniformEmptyRow(t *testing.T) {
	m := NewConfusion(3)
	m.Add(0, 0, 1)
	m.RowNormalize(0)
	// Rows 1 and 2 had no observations: should be uniform.
	for i := 1; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if !approx(m[i][j], 1.0/3.0, 1e-12) {
				t.Fatalf("empty row %d not uniform: %v", i, m[i])
			}
		}
	}
}

func TestConfusionCloneIndependent(t *testing.T) {
	m := NewConfusion(2)
	m.Add(0, 0, 1)
	c := m.Clone()
	c.Add(0, 0, 5)
	if m[0][0] != 1 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestConfusionRowsSumToOneProperty(t *testing.T) {
	r := NewRNG(9)
	err := quick.Check(func(kRaw uint8) bool {
		k := int(kRaw%5) + 2
		m := NewConfusion(k)
		for n := 0; n < 30; n++ {
			m.Add(r.Intn(k), r.Intn(k), float64(r.Intn(5)))
		}
		m.RowNormalize(1)
		for i := range m {
			s := 0.0
			for j := range m[i] {
				s += m[i][j]
			}
			if !approx(s, 1, 1e-9) {
				return false
			}
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}
