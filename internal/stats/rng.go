// Package stats provides the deterministic random-number and statistics
// substrate used throughout crowdkit.
//
// Every stochastic component in the framework (simulated workers, data
// generators, sampling estimators, assignment tie-breaking) draws from an
// explicit *RNG so that experiments are reproducible from a single seed.
// The package also offers the small set of distributions and statistical
// tests the experiment harness needs: uniform, normal, lognormal,
// exponential, Poisson, Zipf, beta, plus entropy, bootstrap confidence
// intervals and Welch's t-test.
package stats

import (
	"fmt"
	"math"
)

// RNG is a deterministic pseudo-random number generator.
//
// It implements the xoshiro256** algorithm (public domain, Blackman &
// Vigna) directly so that streams are stable across Go releases — the
// sequences produced by math/rand are not guaranteed to stay identical
// between versions, and the experiment harness relies on bit-for-bit
// reproducibility of generated workloads.
//
// An RNG is not safe for concurrent use; give each goroutine its own
// stream via Split.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded from seed. Two generators created with
// the same seed produce identical streams.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	// SplitMix64 seeding, as recommended by the xoshiro authors: expands a
	// 64-bit seed into the 256-bit state, avoiding the all-zero state.
	x := seed
	for i := range r.s {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

// Split derives an independent generator from r's current state. The child
// stream is decorrelated from the parent by an extra scrambling pass, so
// parent and child can be used concurrently by different goroutines.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64() ^ 0xa5a5a5a5a5a5a5a5)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	// 53 high bits give a uniform dyadic rational in [0,1).
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0, mirroring
// math/rand.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic(fmt.Sprintf("stats: Intn called with non-positive n %d", n))
	}
	return int(r.Uint64() % uint64(n))
}

// Int63 returns a non-negative int64.
func (r *RNG) Int63() int64 { return int64(r.Uint64() >> 1) }

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.Float64() < p }

// Range returns a uniform float64 in [lo, hi).
func (r *RNG) Range(lo, hi float64) float64 { return lo + (hi-lo)*r.Float64() }

// Perm returns a random permutation of [0, n) (Fisher–Yates).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the first n elements using the provided swap function.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Choice returns a uniformly random index weighted by the non-negative
// weights slice. It panics if weights is empty or sums to zero.
func (r *RNG) Choice(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w < 0 {
			panic("stats: Choice called with negative weight")
		}
		total += w
	}
	if len(weights) == 0 || total == 0 {
		panic("stats: Choice called with empty or zero-sum weights")
	}
	u := r.Float64() * total
	acc := 0.0
	for i, w := range weights {
		acc += w
		if u < acc {
			return i
		}
	}
	return len(weights) - 1
}

// Sample returns k distinct indices drawn uniformly from [0, n) without
// replacement, in random order. It panics if k > n or k < 0.
func (r *RNG) Sample(n, k int) []int {
	if k < 0 || k > n {
		panic(fmt.Sprintf("stats: Sample k=%d out of range for n=%d", k, n))
	}
	// Partial Fisher–Yates: only the first k slots need to be finalized.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	for i := 0; i < k; i++ {
		j := i + r.Intn(n-i)
		idx[i], idx[j] = idx[j], idx[i]
	}
	return idx[:k]
}

// Norm returns a normally distributed float64 with the given mean and
// standard deviation (Marsaglia polar method).
func (r *RNG) Norm(mean, stddev float64) float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		return mean + stddev*u*math.Sqrt(-2*math.Log(s)/s)
	}
}

// LogNormal returns a log-normally distributed value where the underlying
// normal has parameters mu and sigma.
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.Norm(mu, sigma))
}

// Exp returns an exponentially distributed value with the given rate
// (mean 1/rate).
func (r *RNG) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("stats: Exp called with non-positive rate")
	}
	u := r.Float64()
	// Guard against log(0).
	for u == 0 {
		u = r.Float64()
	}
	return -math.Log(u) / rate
}

// Poisson returns a Poisson-distributed count with the given mean lambda.
// For small lambda it uses Knuth's product method; for large lambda a
// normal approximation keeps it O(1).
func (r *RNG) Poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 30 {
		n := int(math.Round(r.Norm(lambda, math.Sqrt(lambda))))
		if n < 0 {
			n = 0
		}
		return n
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Beta returns a Beta(a, b)-distributed value using Jöhnk's/gamma-ratio
// method via two gamma draws.
func (r *RNG) Beta(a, b float64) float64 {
	x := r.Gamma(a)
	y := r.Gamma(b)
	if x+y == 0 {
		return 0.5
	}
	return x / (x + y)
}

// Gamma returns a Gamma(shape, 1)-distributed value using the
// Marsaglia–Tsang method (with the boost for shape < 1).
func (r *RNG) Gamma(shape float64) float64 {
	if shape <= 0 {
		panic("stats: Gamma called with non-positive shape")
	}
	if shape < 1 {
		// Boost: Gamma(a) = Gamma(a+1) * U^(1/a).
		u := r.Float64()
		for u == 0 {
			u = r.Float64()
		}
		return r.Gamma(shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := r.Norm(0, 1)
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := r.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// Zipf draws integers in [0, n) with probability proportional to
// 1/(rank+1)^s. It precomputes the normalization once per generator.
type Zipf struct {
	rng *RNG
	cdf []float64
}

// NewZipf builds a Zipf sampler over n items with exponent s (> 0).
func NewZipf(rng *RNG, n int, s float64) *Zipf {
	if n <= 0 {
		panic("stats: NewZipf called with non-positive n")
	}
	cdf := make([]float64, n)
	acc := 0.0
	for i := 0; i < n; i++ {
		acc += 1 / math.Pow(float64(i+1), s)
		cdf[i] = acc
	}
	for i := range cdf {
		cdf[i] /= acc
	}
	return &Zipf{rng: rng, cdf: cdf}
}

// Next returns the next Zipf-distributed index in [0, n).
func (z *Zipf) Next() int {
	u := z.rng.Float64()
	// Binary search the CDF.
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
