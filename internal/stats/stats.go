package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs (0 when len < 2).
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(n-1)
}

// StdDev returns the unbiased sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Median returns the median of xs, or 0 for an empty slice. xs is not
// modified.
func Median(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	if n%2 == 1 {
		return cp[n/2]
	}
	return (cp[n/2-1] + cp[n/2]) / 2
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between closest ranks. xs is not modified.
func Quantile(xs []float64, q float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	if q <= 0 {
		q = 0
	}
	if q >= 1 {
		q = 1
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return cp[lo]
	}
	frac := pos - float64(lo)
	return cp[lo]*(1-frac) + cp[hi]*frac
}

// Entropy returns the Shannon entropy (nats) of a discrete distribution.
// Probabilities that are zero contribute nothing; the distribution need
// not be normalized (it is normalized internally).
func Entropy(ps []float64) float64 {
	total := 0.0
	for _, p := range ps {
		if p > 0 {
			total += p
		}
	}
	if total == 0 {
		return 0
	}
	h := 0.0
	for _, p := range ps {
		if p <= 0 {
			continue
		}
		q := p / total
		h -= q * math.Log(q)
	}
	return h
}

// Normalize scales the non-negative slice in place so it sums to 1. If the
// sum is zero it assigns the uniform distribution.
func Normalize(ps []float64) {
	total := 0.0
	for _, p := range ps {
		total += p
	}
	if total <= 0 {
		u := 1 / float64(len(ps))
		for i := range ps {
			ps[i] = u
		}
		return
	}
	for i := range ps {
		ps[i] /= total
	}
}

// ArgMax returns the index of the maximum value (first occurrence). It
// returns -1 for an empty slice.
func ArgMax(xs []float64) int {
	if len(xs) == 0 {
		return -1
	}
	best := 0
	for i, x := range xs {
		if x > xs[best] {
			best = i
		}
	}
	return best
}

// WelchT reports the t statistic and approximate two-sided p-value for
// Welch's unequal-variance t-test between samples a and b. It returns
// (0, 1) when either sample has fewer than 2 observations.
func WelchT(a, b []float64) (t, p float64) {
	na, nb := float64(len(a)), float64(len(b))
	if na < 2 || nb < 2 {
		return 0, 1
	}
	ma, mb := Mean(a), Mean(b)
	va, vb := Variance(a), Variance(b)
	se := math.Sqrt(va/na + vb/nb)
	if se == 0 {
		if ma == mb {
			return 0, 1
		}
		return math.Inf(1), 0
	}
	t = (ma - mb) / se
	// Welch–Satterthwaite degrees of freedom.
	num := (va/na + vb/nb) * (va/na + vb/nb)
	den := (va/na)*(va/na)/(na-1) + (vb/nb)*(vb/nb)/(nb-1)
	df := num / den
	p = 2 * studentTSF(math.Abs(t), df)
	return t, p
}

// studentTSF returns P(T > t) for Student's t with df degrees of freedom,
// via the regularized incomplete beta function.
func studentTSF(t, df float64) float64 {
	x := df / (df + t*t)
	return 0.5 * regIncBeta(df/2, 0.5, x)
}

// regIncBeta computes the regularized incomplete beta function I_x(a, b)
// using the continued-fraction expansion (Numerical Recipes style).
func regIncBeta(a, b, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	lbeta := lgamma(a+b) - lgamma(a) - lgamma(b) + a*math.Log(x) + b*math.Log(1-x)
	front := math.Exp(lbeta)
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x) / a
	}
	return 1 - front*betaCF(b, a, 1-x)/b
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

func betaCF(a, b, x float64) float64 {
	const maxIter = 200
	const eps = 3e-14
	const fpmin = 1e-300
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		m2 := float64(2 * m)
		aa := float64(m) * (b - float64(m)) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + float64(m)) * (qab + float64(m)) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

// BootstrapCI returns an approximate (lo, hi) confidence interval for the
// mean of xs at the given confidence level (e.g. 0.95), using resamples
// bootstrap replicates drawn from rng.
func BootstrapCI(rng *RNG, xs []float64, resamples int, level float64) (lo, hi float64) {
	n := len(xs)
	if n == 0 {
		return 0, 0
	}
	if resamples <= 0 {
		resamples = 1000
	}
	means := make([]float64, resamples)
	for i := 0; i < resamples; i++ {
		s := 0.0
		for j := 0; j < n; j++ {
			s += xs[rng.Intn(n)]
		}
		means[i] = s / float64(n)
	}
	alpha := (1 - level) / 2
	return Quantile(means, alpha), Quantile(means, 1-alpha)
}

// Confusion is a k×k confusion matrix over class indices; Confusion[i][j]
// is the count (or probability) of true class i being reported as class j.
type Confusion [][]float64

// NewConfusion returns a zeroed k×k confusion matrix.
func NewConfusion(k int) Confusion {
	m := make(Confusion, k)
	for i := range m {
		m[i] = make([]float64, k)
	}
	return m
}

// K returns the number of classes.
func (m Confusion) K() int { return len(m) }

// Add records one observation of true class i answered as class j with the
// given weight.
func (m Confusion) Add(i, j int, w float64) { m[i][j] += w }

// RowNormalize converts counts into per-true-class probabilities with
// Laplace smoothing alpha. A row whose total (including smoothing) is zero
// becomes uniform.
func (m Confusion) RowNormalize(alpha float64) {
	k := len(m)
	for i := range m {
		total := 0.0
		for j := range m[i] {
			m[i][j] += alpha
			total += m[i][j]
		}
		if total == 0 {
			for j := range m[i] {
				m[i][j] = 1 / float64(k)
			}
			continue
		}
		for j := range m[i] {
			m[i][j] /= total
		}
	}
}

// Accuracy returns the trace-weighted accuracy of a probability-form
// confusion matrix assuming uniform class priors.
func (m Confusion) Accuracy() float64 {
	if len(m) == 0 {
		return 0
	}
	s := 0.0
	for i := range m {
		s += m[i][i]
	}
	return s / float64(len(m))
}

// Clone returns a deep copy of the matrix.
func (m Confusion) Clone() Confusion {
	c := NewConfusion(len(m))
	for i := range m {
		copy(c[i], m[i])
	}
	return c
}
