package crowd

import (
	"math"
	"testing"

	"repro/internal/stats"
)

func TestDropoutWorkerAlwaysAbandons(t *testing.T) {
	rng := stats.NewRNG(7)
	w := NewDropoutWorker(NewWorker("w1", 3, Honest, rng), 1, rng)
	if w.ID() != "w1" {
		t.Fatalf("ID = %q, want delegation to the wrapped worker", w.ID())
	}
	task := binaryTask(1, 0.3)
	for i := 0; i < 50; i++ {
		resp := w.Work(task)
		if !resp.Abandon {
			t.Fatalf("P=1 dropout answered on attempt %d: %+v", i, resp)
		}
	}
}

func TestDropoutWorkerZeroProbNeverAbandons(t *testing.T) {
	rng := stats.NewRNG(8)
	w := NewDropoutWorker(NewWorker("w2", 3, Honest, rng), 0, rng)
	task := binaryTask(1, 0.3)
	for i := 0; i < 200; i++ {
		if w.Work(task).Abandon {
			t.Fatalf("P=0 dropout abandoned on attempt %d", i)
		}
	}
}

func TestDropoutWorkerRate(t *testing.T) {
	rng := stats.NewRNG(9)
	w := NewDropoutWorker(NewWorker("w3", 3, Honest, rng), 0.3, rng)
	task := binaryTask(1, 0.3)
	const n = 5000
	dropped := 0
	for i := 0; i < n; i++ {
		if w.Work(task).Abandon {
			dropped++
		}
	}
	rate := float64(dropped) / n
	if math.Abs(rate-0.3) > 0.03 {
		t.Fatalf("empirical dropout rate %.3f, want ~0.30", rate)
	}
}

func TestSlowWorkerAddsHeavyTailDelay(t *testing.T) {
	rng := stats.NewRNG(10)
	inner := NewWorker("w4", 3, Honest, rng)
	slow := NewSlowWorker(inner, 2, 1.5, rng)
	if slow.ID() != "w4" {
		t.Fatalf("ID = %q, want delegation", slow.ID())
	}
	task := binaryTask(1, 0.3)
	const n = 2000
	var exceed10 int
	for i := 0; i < n; i++ {
		resp := slow.Work(task)
		// Pareto delay is at least Scale, on top of the inner latency.
		if resp.Latency < 2 {
			t.Fatalf("latency %.3f below the Pareto scale floor", resp.Latency)
		}
		if resp.Latency > 50 {
			exceed10++
		}
	}
	// Heavy tail: Pareto(2, 1.5) has P(X > 50) ~ (2/50)^1.5 ~ 0.8%, and the
	// lognormal inner latency only raises that. A thin-tailed delay of the
	// same scale would essentially never get there.
	if exceed10 == 0 {
		t.Fatal("no stragglers past 50s in 2000 draws; tail looks thin")
	}
}

func TestSlowWorkerZeroScaleIsNoop(t *testing.T) {
	rng := stats.NewRNG(11)
	slow := NewSlowWorker(NewWorker("w5", 3, Honest, rng), 0, 1.5, rng)
	task := binaryTask(1, 0.3)
	for i := 0; i < 100; i++ {
		if l := slow.Work(task).Latency; l <= 0 || l > 1000 {
			t.Fatalf("zero-scale SlowWorker produced latency %.3f", l)
		}
	}
}

func TestWithDropoutWrapsFraction(t *testing.T) {
	rng := stats.NewRNG(12)
	ws := NewPopulation(rng, 10, RegimeMixed)
	out := WithDropout(rng, ws, 0.3, 1)
	if len(out) != 10 {
		t.Fatalf("population size changed: %d", len(out))
	}
	wrapped := 0
	for _, w := range out {
		if _, ok := w.(*DropoutWorker); ok {
			wrapped++
		}
	}
	if wrapped != 3 {
		t.Fatalf("wrapped %d workers, want ceil(0.3*10) = 3", wrapped)
	}
	// Fraction above 1 must clamp, not panic or over-index.
	all := WithDropout(rng, ws, 2, 1)
	for i, w := range all {
		if _, ok := w.(*DropoutWorker); !ok {
			t.Fatalf("worker %d not wrapped with frac > 1", i)
		}
	}
}
