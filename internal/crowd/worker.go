// Package crowd is the simulated-crowd substrate: generative worker models
// that stand in for the human workers of a commercial microtask platform.
//
// The survey's quality-control results all stem from one observation:
// workers are heterogeneous and noisy. This package models that
// heterogeneity explicitly — per-worker ability, GLAD-style sensitivity to
// task difficulty, systematic bias, adversarial behavior, free-text typo
// noise, partial domain knowledge for collection tasks, and log-normal
// answer latency — so that every downstream algorithm (truth inference,
// assignment, operators) is exercised by the same regimes the literature
// studies.
package crowd

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/core"
	"repro/internal/stats"
)

// Behavior selects the answering strategy of a simulated worker.
type Behavior int

const (
	// Honest workers try to answer correctly; their error rate follows
	// their ability and the task difficulty.
	Honest Behavior = iota
	// Spammer workers answer uniformly at random without reading the task.
	Spammer
	// Adversary workers answer incorrectly on purpose whenever they know
	// the right answer.
	Adversary
	// Biased workers behave honestly but, when unsure, always pick their
	// preferred option instead of guessing uniformly.
	Biased
)

// String returns the behavior name.
func (b Behavior) String() string {
	switch b {
	case Honest:
		return "honest"
	case Spammer:
		return "spammer"
	case Adversary:
		return "adversary"
	case Biased:
		return "biased"
	default:
		return fmt.Sprintf("Behavior(%d)", int(b))
	}
}

// Worker is a simulated crowd worker implementing core.Worker.
//
// The probability that an honest worker answers a choice task correctly is
// the GLAD generative model:
//
//	P(correct) = 1 / (1 + exp(-ability * easiness))
//
// where easiness is derived from the task's Difficulty. Ability 0 is a
// coin-flip regardless of difficulty; large positive ability approaches
// perfect accuracy on easy tasks.
type Worker struct {
	Name string
	// Ability is the GLAD alpha parameter. Typical honest crowds draw it
	// from roughly [0.5, 4].
	Ability float64
	// Behave selects the answering strategy.
	Behave Behavior
	// PreferredOption is the option a Biased worker falls back to.
	PreferredOption int
	// LatencyMu and LatencySigma parameterize the log-normal answer
	// latency (seconds).
	LatencyMu, LatencySigma float64
	// Knowledge, when non-nil, is the subset of a collection domain this
	// worker can contribute (indices into the domain).
	Knowledge []int
	// Dynamics, when non-nil, makes ability evolve with the number of
	// tasks performed (practice effects and fatigue).
	Dynamics *Dynamics

	tasksDone int
	rng       *stats.RNG
}

// Dynamics models how a worker's effective ability changes over a work
// session: a practice (learning) gain that saturates, and a fatigue decay
// that sets in after a while — both effects reported in empirical worker
// studies.
type Dynamics struct {
	// Learning is the ability gained per completed task.
	Learning float64
	// LearnCap bounds the total practice gain.
	LearnCap float64
	// FatigueAfter is the task count at which fatigue sets in.
	FatigueAfter int
	// Fatigue is the ability lost per task beyond FatigueAfter.
	Fatigue float64
}

// EffectiveAbility returns the worker's current ability given tasks done
// so far (equal to Ability when no dynamics are configured). Effective
// ability never drops below zero (a fully exhausted worker guesses, not
// sabotages).
func (w *Worker) EffectiveAbility() float64 {
	a := w.Ability
	if w.Dynamics != nil {
		gain := w.Dynamics.Learning * float64(w.tasksDone)
		if w.Dynamics.LearnCap > 0 && gain > w.Dynamics.LearnCap {
			gain = w.Dynamics.LearnCap
		}
		a += gain
		if over := w.tasksDone - w.Dynamics.FatigueAfter; over > 0 && w.Dynamics.Fatigue > 0 {
			a -= w.Dynamics.Fatigue * float64(over)
		}
		if a < 0 {
			a = 0
		}
	}
	return a
}

// TasksDone reports how many tasks the worker has performed.
func (w *Worker) TasksDone() int { return w.tasksDone }

// NewWorker builds a worker with its own decorrelated random stream.
func NewWorker(name string, ability float64, behave Behavior, rng *stats.RNG) *Worker {
	return &Worker{
		Name:         name,
		Ability:      ability,
		Behave:       behave,
		LatencyMu:    math.Log(8), // median ~8s per microtask
		LatencySigma: 0.5,
		rng:          rng.Split(),
	}
}

// ID implements core.Worker.
func (w *Worker) ID() string { return w.Name }

// CorrectProb returns this worker's probability of answering a task of the
// given difficulty correctly, under the GLAD model with the current
// effective ability. It applies to honest and biased workers; spammers
// and adversaries ignore it.
func (w *Worker) CorrectProb(difficulty float64) float64 {
	easiness := easinessOf(difficulty)
	return 1 / (1 + math.Exp(-w.EffectiveAbility()*easiness))
}

// easinessOf maps Difficulty in [0,1] to the GLAD easiness (1/beta) scale:
// trivial tasks have easiness 4, maximally hard tasks 0.25.
func easinessOf(difficulty float64) float64 {
	if difficulty < 0 {
		difficulty = 0
	}
	if difficulty > 1 {
		difficulty = 1
	}
	return 4 - 3.75*difficulty
}

// Work implements core.Worker, dispatching on the task kind.
func (w *Worker) Work(t *core.Task) core.Response {
	defer func() { w.tasksDone++ }()
	lat := w.rng.LogNormal(w.LatencyMu, w.LatencySigma)
	resp := core.Response{Option: -1, Latency: lat}
	switch t.Kind {
	case core.SingleChoice, core.MultiChoice, core.PairwiseComparison:
		resp.Option = w.answerChoice(t)
	case core.FillIn:
		resp.Text = w.answerFillIn(t)
	case core.Rating:
		resp.Score = w.answerRating(t)
	case core.Collection:
		resp.Text = w.answerCollection(t)
	}
	return resp
}

// answerChoice returns an option index for a choice-type task.
func (w *Worker) answerChoice(t *core.Task) int {
	k := len(t.Options)
	if k == 0 {
		return -1
	}
	switch w.Behave {
	case Spammer:
		return w.rng.Intn(k)
	case Adversary:
		if t.GroundTruth < 0 {
			return w.rng.Intn(k)
		}
		// Answer a wrong option whenever ability would have found the
		// right one.
		if w.rng.Bool(w.CorrectProb(t.Difficulty)) {
			return w.wrongOption(t.GroundTruth, k)
		}
		return w.rng.Intn(k)
	case Biased:
		if t.GroundTruth >= 0 && w.rng.Bool(w.CorrectProb(t.Difficulty)) {
			return t.GroundTruth
		}
		if w.PreferredOption >= 0 && w.PreferredOption < k {
			return w.PreferredOption
		}
		return w.rng.Intn(k)
	default: // Honest
		if t.GroundTruth < 0 {
			return w.rng.Intn(k)
		}
		if w.rng.Bool(w.CorrectProb(t.Difficulty)) {
			return t.GroundTruth
		}
		return w.wrongOption(t.GroundTruth, k)
	}
}

// wrongOption picks a uniformly random option other than truth.
func (w *Worker) wrongOption(truth, k int) int {
	if k <= 1 {
		return 0
	}
	o := w.rng.Intn(k - 1)
	if o >= truth {
		o++
	}
	return o
}

// answerFillIn produces free text: the planted truth when the worker gets
// it right, a typo-corrupted variant otherwise (spammers emit junk).
func (w *Worker) answerFillIn(t *core.Task) string {
	truth := t.GroundTruthText
	switch w.Behave {
	case Spammer:
		return fmt.Sprintf("junk-%d", w.rng.Intn(1000))
	case Adversary:
		return corruptText(truth, w.rng)
	default:
		if w.rng.Bool(w.CorrectProb(t.Difficulty)) {
			return truth
		}
		return corruptText(truth, w.rng)
	}
}

// answerRating returns the planted score plus ability-scaled noise.
func (w *Worker) answerRating(t *core.Task) float64 {
	switch w.Behave {
	case Spammer:
		return float64(w.rng.Intn(5)) + 1
	case Adversary:
		return 6 - t.GroundTruthScore // mirror the scale
	default:
		sigma := 1.5 / (0.5 + math.Max(w.Ability, 0.01))
		return t.GroundTruthScore + w.rng.Norm(0, sigma)
	}
}

// CollectionDomain is the payload convention for Collection tasks: the
// open domain of items workers may contribute.
type CollectionDomain struct {
	Items []string
}

// answerCollection contributes an item from the worker's knowledge subset
// of the task's domain. Workers without explicit knowledge draw uniformly.
func (w *Worker) answerCollection(t *core.Task) string {
	dom, ok := t.Payload.(*CollectionDomain)
	if !ok || len(dom.Items) == 0 {
		return ""
	}
	if w.Behave == Spammer {
		return fmt.Sprintf("junk-%d", w.rng.Intn(1000))
	}
	if len(w.Knowledge) > 0 {
		return dom.Items[w.Knowledge[w.rng.Intn(len(w.Knowledge))]]
	}
	return dom.Items[w.rng.Intn(len(dom.Items))]
}

// corruptText simulates a typo/mistake on a free-text answer: swap two
// characters, drop one, or append a stray suffix; empty truths get junk.
func corruptText(truth string, rng *stats.RNG) string {
	if truth == "" {
		return fmt.Sprintf("junk-%d", rng.Intn(1000))
	}
	r := []rune(truth)
	switch rng.Intn(3) {
	case 0: // swap adjacent
		if len(r) >= 2 {
			i := rng.Intn(len(r) - 1)
			r[i], r[i+1] = r[i+1], r[i]
			return string(r)
		}
	case 1: // drop one rune
		if len(r) >= 2 {
			i := rng.Intn(len(r))
			return string(r[:i]) + string(r[i+1:])
		}
	}
	return truth + strings.Repeat("x", 1+rng.Intn(2))
}
