package crowd

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/stats"
)

// Mix describes the composition of a worker population as fractions that
// should sum to (approximately) 1. Fractions are normalized internally.
type Mix struct {
	Expert    float64 // ability ~ [2.5, 4.0]
	Reliable  float64 // ability ~ [1.2, 2.5]
	Sloppy    float64 // ability ~ [0.3, 1.0]
	Spammer   float64 // uniform random answers
	Adversary float64 // systematically wrong
}

// Canonical quality regimes used across the experiment suite. They mirror
// the regimes the truth-inference literature evaluates: a reliable
// university-style crowd, a typical open-platform mixed crowd, and a
// spam-heavy crowd.
var (
	RegimeReliable = Mix{Expert: 0.35, Reliable: 0.55, Sloppy: 0.10}
	RegimeMixed    = Mix{Expert: 0.15, Reliable: 0.45, Sloppy: 0.25, Spammer: 0.15}
	RegimeSpammy   = Mix{Expert: 0.10, Reliable: 0.25, Sloppy: 0.20, Spammer: 0.35, Adversary: 0.10}
)

// RegimeByName resolves a regime label ("reliable", "mixed", "spammy").
func RegimeByName(name string) (Mix, error) {
	switch name {
	case "reliable":
		return RegimeReliable, nil
	case "mixed":
		return RegimeMixed, nil
	case "spammy":
		return RegimeSpammy, nil
	default:
		return Mix{}, fmt.Errorf("crowd: unknown regime %q", name)
	}
}

// NewPopulation generates n simulated workers with the given mix, drawing
// abilities from per-class ranges. Worker ids are "w000", "w001", ....
func NewPopulation(rng *stats.RNG, n int, mix Mix) []*Worker {
	weights := []float64{mix.Expert, mix.Reliable, mix.Sloppy, mix.Spammer, mix.Adversary}
	total := 0.0
	for _, w := range weights {
		total += w
	}
	if total <= 0 {
		weights = []float64{0, 1, 0, 0, 0} // default: all reliable
	}
	out := make([]*Worker, n)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("w%03d", i)
		var w *Worker
		switch rng.Choice(weights) {
		case 0: // expert
			w = NewWorker(name, rng.Range(2.5, 4.0), Honest, rng)
			w.LatencyMu += 0.3 // experts read carefully
		case 1: // reliable
			w = NewWorker(name, rng.Range(1.2, 2.5), Honest, rng)
		case 2: // sloppy
			w = NewWorker(name, rng.Range(0.3, 1.0), Honest, rng)
			w.LatencyMu -= 0.2
		case 3: // spammer
			w = NewWorker(name, 0, Spammer, rng)
			w.LatencyMu -= 0.9 // spammers click through fast
		default: // adversary
			w = NewWorker(name, rng.Range(1.5, 3.0), Adversary, rng)
		}
		out[i] = w
	}
	return out
}

// AsCoreWorkers converts the concrete slice to the kernel interface slice.
func AsCoreWorkers(ws []*Worker) []core.Worker {
	out := make([]core.Worker, len(ws))
	for i, w := range ws {
		out[i] = w
	}
	return out
}

// AssignKnowledge gives each worker a random knowledge subset of a
// collection domain of the given size. Coverage is Zipf-skewed: popular
// items are known by many workers, tail items by few — the regime in which
// species-estimation matters for crowdsourced enumeration.
func AssignKnowledge(rng *stats.RNG, ws []*Worker, domainSize int, perWorker int, zipfS float64) {
	if domainSize <= 0 || perWorker <= 0 {
		return
	}
	z := stats.NewZipf(rng, domainSize, zipfS)
	for _, w := range ws {
		seen := make(map[int]bool, perWorker)
		// Draw until we have perWorker distinct items (bounded attempts to
		// stay deterministic-time under extreme skew).
		for attempts := 0; len(seen) < perWorker && attempts < perWorker*50; attempts++ {
			seen[z.Next()] = true
		}
		w.Knowledge = w.Knowledge[:0]
		for item := range seen {
			w.Knowledge = append(w.Knowledge, item)
		}
		// Sort for determinism of downstream rng consumption.
		for i := 1; i < len(w.Knowledge); i++ {
			for j := i; j > 0 && w.Knowledge[j] < w.Knowledge[j-1]; j-- {
				w.Knowledge[j], w.Knowledge[j-1] = w.Knowledge[j-1], w.Knowledge[j]
			}
		}
	}
}

// TrueAccuracy returns the population's expected accuracy on a task of the
// given difficulty with k options — the oracle quantity experiments compare
// inferred worker quality against.
func TrueAccuracy(ws []*Worker, difficulty float64, k int) float64 {
	if len(ws) == 0 {
		return 0
	}
	s := 0.0
	for _, w := range ws {
		switch w.Behave {
		case Spammer:
			s += 1 / float64(k)
		case Adversary:
			// Adversaries are wrong when they know the answer, random
			// otherwise.
			p := w.CorrectProb(difficulty)
			s += (1 - p) / float64(k-1) * 0 // deliberately wrong: correct only by residual chance
			s += (1 - p) * (1 / float64(k))
		default:
			s += w.CorrectProb(difficulty)
		}
	}
	return s / float64(len(ws))
}
