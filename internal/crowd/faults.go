package crowd

import (
	"math"

	"repro/internal/core"
	"repro/internal/stats"
)

// This file holds fault-injection decorators: wrappers around any
// core.Worker that reproduce the failure modes of real crowd platforms —
// workers who claim a task and silently vanish, and stragglers with
// heavy-tailed completion times. They exist to exercise the lease /
// reclamation machinery of the serving path and the dropout model of the
// latency simulator under controlled, seeded churn.

// DropoutWorker wraps a worker and, with probability P per assignment,
// abandons the task instead of answering: Work returns a Response with
// Abandon set, which platforms must treat as "no answer, release the
// slot". With P = 1 the worker claims exactly one assignment and walks
// away — the worst case for a leaseless platform, where that assignment
// would be lost forever.
type DropoutWorker struct {
	Inner core.Worker
	// P is the per-assignment dropout probability in [0, 1].
	P   float64
	rng *stats.RNG
}

// NewDropoutWorker decorates inner with a dropout probability p, drawing
// from a decorrelated split of rng.
func NewDropoutWorker(inner core.Worker, p float64, rng *stats.RNG) *DropoutWorker {
	return &DropoutWorker{Inner: inner, P: p, rng: rng.Split()}
}

// ID implements core.Worker by delegating to the wrapped worker.
func (d *DropoutWorker) ID() string { return d.Inner.ID() }

// Work implements core.Worker: with probability P the assignment is
// abandoned, otherwise the wrapped worker answers normally.
func (d *DropoutWorker) Work(t *core.Task) core.Response {
	if d.P >= 1 || (d.P > 0 && d.rng.Bool(d.P)) {
		return core.Response{Option: -1, Abandon: true}
	}
	return d.Inner.Work(t)
}

// SlowWorker wraps a worker and inflates its simulated latency with a
// Pareto-distributed (heavy-tailed) straggler delay: most answers arrive
// roughly on time, but a small fraction take far longer — the empirical
// straggler regime that motivates lease timeouts and re-issue policies.
type SlowWorker struct {
	Inner core.Worker
	// Scale is the minimum extra delay in seconds (the Pareto x_m).
	Scale float64
	// Alpha is the Pareto tail index; smaller means heavier tails. Values
	// at or below 1 have infinite mean — 1.5 is a reasonable straggler
	// model. Non-positive Alpha defaults to 1.5.
	Alpha float64
	rng   *stats.RNG
}

// NewSlowWorker decorates inner with a Pareto(scale, alpha) straggler
// delay, drawing from a decorrelated split of rng.
func NewSlowWorker(inner core.Worker, scale, alpha float64, rng *stats.RNG) *SlowWorker {
	return &SlowWorker{Inner: inner, Scale: scale, Alpha: alpha, rng: rng.Split()}
}

// ID implements core.Worker by delegating to the wrapped worker.
func (s *SlowWorker) ID() string { return s.Inner.ID() }

// Work implements core.Worker: the wrapped worker's answer, delayed by a
// Pareto straggler draw.
func (s *SlowWorker) Work(t *core.Task) core.Response {
	resp := s.Inner.Work(t)
	resp.Latency += s.paretoDelay()
	return resp
}

// paretoDelay draws from Pareto(Scale, Alpha) via inverse transform:
// x = x_m * u^(-1/alpha) for u ~ U(0,1].
func (s *SlowWorker) paretoDelay() float64 {
	alpha := s.Alpha
	if alpha <= 0 {
		alpha = 1.5
	}
	scale := s.Scale
	if scale <= 0 {
		return 0
	}
	u := 1 - s.rng.Float64() // in (0, 1]
	return scale * math.Pow(u, -1/alpha)
}

// WithDropout wraps the first ceil(frac*len(ws)) workers of a population
// in DropoutWorkers with per-assignment dropout probability p, returning
// the decorated population as core.Workers. It is the standard way tests
// and demos build a churning crowd: e.g. WithDropout(rng, ws, 0.3, 1)
// makes 30% of the population claim one task each and vanish.
func WithDropout(rng *stats.RNG, ws []*Worker, frac, p float64) []core.Worker {
	out := AsCoreWorkers(ws)
	n := int(math.Ceil(frac * float64(len(ws))))
	if n > len(out) {
		n = len(out)
	}
	for i := 0; i < n; i++ {
		out[i] = NewDropoutWorker(out[i], p, rng)
	}
	return out
}
