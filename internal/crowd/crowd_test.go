package crowd

import (
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/stats"
)

func binaryTask(truth int, difficulty float64) *core.Task {
	return &core.Task{
		Kind: core.SingleChoice, Options: []string{"no", "yes"},
		GroundTruth: truth, Difficulty: difficulty,
	}
}

func empiricalAccuracy(w *Worker, t *core.Task, n int) float64 {
	correct := 0
	for i := 0; i < n; i++ {
		if w.Work(t).Option == t.GroundTruth {
			correct++
		}
	}
	return float64(correct) / float64(n)
}

func TestHonestWorkerMatchesGLADModel(t *testing.T) {
	rng := stats.NewRNG(1)
	w := NewWorker("w", 2.0, Honest, rng)
	for _, d := range []float64{0, 0.5, 1} {
		task := binaryTask(1, d)
		want := w.CorrectProb(d)
		got := empiricalAccuracy(w, task, 20000)
		if math.Abs(got-want) > 0.02 {
			t.Fatalf("difficulty %v: empirical %v vs model %v", d, got, want)
		}
	}
}

func TestDifficultyLowersAccuracy(t *testing.T) {
	rng := stats.NewRNG(2)
	w := NewWorker("w", 2.0, Honest, rng)
	easy := w.CorrectProb(0)
	hard := w.CorrectProb(1)
	if easy <= hard {
		t.Fatalf("easy %v should beat hard %v", easy, hard)
	}
	if easy < 0.95 {
		t.Fatalf("able worker on trivial task only %v accurate", easy)
	}
	if hard > 0.75 {
		t.Fatalf("hard task should be challenging: %v", hard)
	}
}

func TestZeroAbilityIsCoinFlip(t *testing.T) {
	rng := stats.NewRNG(3)
	w := NewWorker("w", 0, Honest, rng)
	for _, d := range []float64{0, 1} {
		if p := w.CorrectProb(d); math.Abs(p-0.5) > 1e-12 {
			t.Fatalf("ability-0 accuracy %v at difficulty %v", p, d)
		}
	}
}

func TestSpammerIsUniform(t *testing.T) {
	rng := stats.NewRNG(4)
	w := NewWorker("spam", 3, Spammer, rng)
	task := &core.Task{Kind: core.SingleChoice,
		Options: []string{"a", "b", "c", "d"}, GroundTruth: 2}
	counts := make([]int, 4)
	for i := 0; i < 20000; i++ {
		counts[w.Work(task).Option]++
	}
	for o, c := range counts {
		frac := float64(c) / 20000
		if math.Abs(frac-0.25) > 0.02 {
			t.Fatalf("spammer option %d frequency %v, want ~0.25", o, frac)
		}
	}
}

func TestAdversaryIsWorseThanChance(t *testing.T) {
	rng := stats.NewRNG(5)
	w := NewWorker("adv", 3, Adversary, rng)
	task := binaryTask(1, 0.1)
	acc := empiricalAccuracy(w, task, 10000)
	if acc > 0.3 {
		t.Fatalf("adversary accuracy %v, want well below 0.5", acc)
	}
}

func TestBiasedWorkerPrefersOption(t *testing.T) {
	rng := stats.NewRNG(6)
	w := NewWorker("bias", 0.2, Biased, rng) // low ability: mostly unsure
	w.PreferredOption = 0
	task := binaryTask(1, 0.9)
	zeros := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if w.Work(task).Option == 0 {
			zeros++
		}
	}
	if frac := float64(zeros) / n; frac < 0.35 {
		t.Fatalf("biased worker picked preferred option only %v of the time", frac)
	}
}

func TestFillInCorruption(t *testing.T) {
	rng := stats.NewRNG(7)
	good := NewWorker("good", 4, Honest, rng)
	task := &core.Task{Kind: core.FillIn, GroundTruthText: "london", Difficulty: 0}
	exact := 0
	for i := 0; i < 1000; i++ {
		if good.Work(task).Text == "london" {
			exact++
		}
	}
	if exact < 900 {
		t.Fatalf("expert fill-in exact rate %d/1000", exact)
	}
	spam := NewWorker("spam", 0, Spammer, rng)
	if txt := spam.Work(task).Text; !strings.HasPrefix(txt, "junk-") {
		t.Fatalf("spammer fill-in = %q", txt)
	}
	// Corrupted text differs from the truth.
	bad := NewWorker("bad", -3, Honest, rng) // negative ability: mostly wrong
	diff := 0
	for i := 0; i < 1000; i++ {
		if bad.Work(task).Text != "london" {
			diff++
		}
	}
	if diff < 900 {
		t.Fatalf("low-ability worker produced truth too often: %d/1000 corrupted", diff)
	}
}

func TestCorruptTextAlwaysDiffers(t *testing.T) {
	rng := stats.NewRNG(8)
	for i := 0; i < 2000; i++ {
		if corruptText("weather", rng) == "weather" {
			// Adjacent-swap of equal runes could no-op for strings with
			// repeats; "weather" has distinct adjacent runes except "ea".
			// A corruption returning the original is a bug for this input
			// when swap positions differ... verify explicitly:
			t.Fatal("corruptText returned the original")
		}
	}
	if corruptText("", rng) == "" {
		t.Fatal("corrupting empty text should produce junk")
	}
}

func TestRatingNoiseScalesWithAbility(t *testing.T) {
	rng := stats.NewRNG(9)
	task := &core.Task{Kind: core.Rating, GroundTruthScore: 3}
	expert := NewWorker("e", 4, Honest, rng)
	sloppy := NewWorker("s", 0.2, Honest, rng)
	devE, devS := 0.0, 0.0
	const n = 5000
	for i := 0; i < n; i++ {
		devE += math.Abs(expert.Work(task).Score - 3)
		devS += math.Abs(sloppy.Work(task).Score - 3)
	}
	if devE/n >= devS/n {
		t.Fatalf("expert rating deviation %v should beat sloppy %v", devE/n, devS/n)
	}
}

func TestCollectionDrawsFromKnowledge(t *testing.T) {
	rng := stats.NewRNG(10)
	w := NewWorker("w", 2, Honest, rng)
	w.Knowledge = []int{1, 3}
	dom := &CollectionDomain{Items: []string{"a", "b", "c", "d"}}
	task := &core.Task{Kind: core.Collection, Payload: dom}
	for i := 0; i < 200; i++ {
		got := w.Work(task).Text
		if got != "b" && got != "d" {
			t.Fatalf("worker contributed %q outside knowledge", got)
		}
	}
	// Without payload the worker contributes nothing.
	if txt := w.Work(&core.Task{Kind: core.Collection}).Text; txt != "" {
		t.Fatalf("no-domain collection answered %q", txt)
	}
}

func TestPairwiseAnswering(t *testing.T) {
	rng := stats.NewRNG(11)
	w := NewWorker("w", 3, Honest, rng)
	task := &core.Task{Kind: core.PairwiseComparison,
		Options: []string{"itemA", "itemB"}, GroundTruth: 0, Difficulty: 0.2}
	acc := empiricalAccuracy(w, task, 5000)
	if acc < 0.85 {
		t.Fatalf("able worker pairwise accuracy %v", acc)
	}
}

func TestLatencyPositiveAndLogNormal(t *testing.T) {
	rng := stats.NewRNG(12)
	w := NewWorker("w", 2, Honest, rng)
	task := binaryTask(1, 0)
	for i := 0; i < 100; i++ {
		if l := w.Work(task).Latency; l <= 0 {
			t.Fatalf("latency %v", l)
		}
	}
}

func TestNewPopulationMixAndDeterminism(t *testing.T) {
	ws := NewPopulation(stats.NewRNG(13), 200, RegimeMixed)
	if len(ws) != 200 {
		t.Fatalf("population size %d", len(ws))
	}
	counts := map[Behavior]int{}
	for _, w := range ws {
		counts[w.Behave]++
	}
	if counts[Spammer] == 0 {
		t.Fatal("mixed regime produced no spammers")
	}
	if counts[Honest] < 100 {
		t.Fatalf("mixed regime produced only %d honest workers", counts[Honest])
	}
	// Determinism: same seed, same abilities.
	ws2 := NewPopulation(stats.NewRNG(13), 200, RegimeMixed)
	for i := range ws {
		if ws[i].Ability != ws2[i].Ability || ws[i].Behave != ws2[i].Behave {
			t.Fatalf("population not deterministic at %d", i)
		}
	}
	// Unique ids.
	ids := map[string]bool{}
	for _, w := range ws {
		if ids[w.Name] {
			t.Fatalf("duplicate worker id %s", w.Name)
		}
		ids[w.Name] = true
	}
}

func TestRegimeByName(t *testing.T) {
	for _, name := range []string{"reliable", "mixed", "spammy"} {
		if _, err := RegimeByName(name); err != nil {
			t.Fatalf("RegimeByName(%s): %v", name, err)
		}
	}
	if _, err := RegimeByName("nope"); err == nil {
		t.Fatal("unknown regime should fail")
	}
}

func TestRegimeOrdering(t *testing.T) {
	// Average population accuracy should order reliable > mixed > spammy.
	accs := make(map[string]float64)
	for _, name := range []string{"reliable", "mixed", "spammy"} {
		mix, _ := RegimeByName(name)
		ws := NewPopulation(stats.NewRNG(14), 300, mix)
		accs[name] = TrueAccuracy(ws, 0.3, 2)
	}
	if !(accs["reliable"] > accs["mixed"] && accs["mixed"] > accs["spammy"]) {
		t.Fatalf("regime accuracy ordering violated: %v", accs)
	}
}

func TestAssignKnowledgeZipfSkew(t *testing.T) {
	rng := stats.NewRNG(15)
	ws := NewPopulation(rng, 100, RegimeReliable)
	AssignKnowledge(rng, ws, 50, 10, 1.2)
	counts := make([]int, 50)
	for _, w := range ws {
		if len(w.Knowledge) == 0 {
			t.Fatal("worker got no knowledge")
		}
		for _, item := range w.Knowledge {
			if item < 0 || item >= 50 {
				t.Fatalf("knowledge item %d out of domain", item)
			}
			counts[item]++
		}
	}
	if counts[0] <= counts[49] {
		t.Fatalf("knowledge not Zipf-skewed: head=%d tail=%d", counts[0], counts[49])
	}
}

func TestAsCoreWorkers(t *testing.T) {
	ws := NewPopulation(stats.NewRNG(16), 5, RegimeReliable)
	cw := AsCoreWorkers(ws)
	if len(cw) != 5 || cw[0].ID() != ws[0].Name {
		t.Fatal("AsCoreWorkers conversion broken")
	}
	var _ core.Worker = ws[0]
}

func TestBehaviorString(t *testing.T) {
	for _, b := range []Behavior{Honest, Spammer, Adversary, Biased} {
		if b.String() == "" {
			t.Fatalf("behavior %d has empty name", int(b))
		}
	}
}

func TestWorkerDynamicsLearningAndFatigue(t *testing.T) {
	rng := stats.NewRNG(60)
	w := NewWorker("dyn", 1.0, Honest, rng)
	w.Dynamics = &Dynamics{
		Learning: 0.05, LearnCap: 1.0,
		FatigueAfter: 40, Fatigue: 0.1,
	}
	task := binaryTask(1, 0.3)
	if w.EffectiveAbility() != 1.0 {
		t.Fatalf("fresh effective ability = %v", w.EffectiveAbility())
	}
	// Warm up 20 tasks: learning raises ability.
	for i := 0; i < 20; i++ {
		w.Work(task)
	}
	warm := w.EffectiveAbility()
	if warm <= 1.0 || warm > 2.0 {
		t.Fatalf("post-practice ability = %v", warm)
	}
	if w.TasksDone() != 20 {
		t.Fatalf("tasks done = %d", w.TasksDone())
	}
	// Run deep into fatigue: ability falls below the warm peak.
	for i := 0; i < 60; i++ {
		w.Work(task)
	}
	tired := w.EffectiveAbility()
	if tired >= warm {
		t.Fatalf("fatigue did not reduce ability: %v -> %v", warm, tired)
	}
	// Exhaustion floors at zero (coin flip), never negative.
	for i := 0; i < 500; i++ {
		w.Work(task)
	}
	if a := w.EffectiveAbility(); a != 0 {
		t.Fatalf("exhausted ability = %v, want 0", a)
	}
	if p := w.CorrectProb(0.3); math.Abs(p-0.5) > 1e-9 {
		t.Fatalf("exhausted accuracy = %v, want 0.5", p)
	}
}

func TestWorkerWithoutDynamicsIsStable(t *testing.T) {
	rng := stats.NewRNG(61)
	w := NewWorker("static", 2.0, Honest, rng)
	task := binaryTask(1, 0.2)
	before := w.CorrectProb(0.2)
	for i := 0; i < 200; i++ {
		w.Work(task)
	}
	if after := w.CorrectProb(0.2); after != before {
		t.Fatalf("static worker drifted: %v -> %v", before, after)
	}
}

func TestFatigueDegradesEmpiricalAccuracy(t *testing.T) {
	rng := stats.NewRNG(62)
	w := NewWorker("tired", 3.0, Honest, rng)
	w.Dynamics = &Dynamics{FatigueAfter: 100, Fatigue: 0.05}
	task := binaryTask(1, 0.2)
	correctEarly, correctLate := 0, 0
	for i := 0; i < 100; i++ {
		if w.Work(task).Option == 1 {
			correctEarly++
		}
	}
	// Push far into fatigue, then measure again.
	for i := 0; i < 200; i++ {
		w.Work(task)
	}
	for i := 0; i < 100; i++ {
		if w.Work(task).Option == 1 {
			correctLate++
		}
	}
	if correctLate >= correctEarly {
		t.Fatalf("fatigue did not show up empirically: early %d, late %d",
			correctEarly, correctLate)
	}
}
