package core

// Journal observes committed pool mutations so a durability layer can
// append them to a write-ahead log. ConcurrentPool invokes the hooks under
// its write lock, immediately after the mutation is applied and before the
// lock is released, so the journal sees mutations in exactly the order the
// pool applied them. Implementations must be fast — buffer and append
// only, never fsync — because they run inside the pool's critical section;
// the serving layer owns the durability (fsync) point.
//
// Answer recording is deliberately NOT part of this interface: an accepted
// answer's journal record carries serving-layer context the pool does not
// have (the unit cost that was charged, the golden-task outcome), and it
// must be made durable before the client is acked. The server therefore
// journals answers explicitly after ConcurrentPool.Record succeeds — see
// server.WithDurability.
type Journal interface {
	// TaskAdded is called after a task is registered. The task pointer is
	// shared with the pool; tasks are immutable once added.
	TaskAdded(t *Task)
	// TaskClosed is called after a task stops accepting answers.
	TaskClosed(id TaskID)
	// LeaseIssued is called after an assignment lease is recorded or
	// extended.
	LeaseIssued(l Lease)
	// LeasesExpired is called after a sweep reclaims one or more leases,
	// with the reclaimed set in deterministic (task, worker) order.
	LeasesExpired(ls []Lease)
}
