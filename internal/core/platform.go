package core

import (
	"errors"
	"fmt"
)

// Assigner chooses which open task an arriving worker should do next.
// Implementations live in the assign package; the kernel depends only on
// this interface.
type Assigner interface {
	// Assign returns the task to give the worker, or ok=false when no
	// eligible task remains for them.
	Assign(p *Pool, worker string) (TaskID, bool)
}

// AssignerFunc adapts a function to the Assigner interface.
type AssignerFunc func(p *Pool, worker string) (TaskID, bool)

// Assign calls f.
func (f AssignerFunc) Assign(p *Pool, worker string) (TaskID, bool) { return f(p, worker) }

// RunResult summarizes one platform run.
type RunResult struct {
	// Rounds is the number of synchronous rounds executed.
	Rounds int
	// AnswersCollected is the number of answers recorded during the run.
	AnswersCollected int
	// Cost is the budget spent during the run.
	Cost float64
	// Makespan is the simulated wall-clock duration: rounds are
	// synchronous, so each round lasts as long as its slowest answer.
	Makespan float64
}

// Platform pairs a worker population with a task pool under a budget. It
// models the synchronous round abstraction used throughout the latency
// control literature: in each round every available worker receives (at
// most) one task, works on it, and submits.
type Platform struct {
	Pool    *Pool
	Workers []Worker
	Budget  *Budget
	// CostPerAnswer is the budget charge per collected answer (default 1).
	CostPerAnswer float64
	// Screen, when non-nil, filters out workers that failed golden-task
	// screening: eliminated workers no longer receive assignments.
	Screen *WorkerScreen
	// Clock is the simulated time at the start of the next round.
	Clock float64
}

// NewPlatform wires a platform with unit answer cost.
func NewPlatform(pool *Pool, workers []Worker, budget *Budget) *Platform {
	if budget == nil {
		budget = Unlimited()
	}
	return &Platform{Pool: pool, Workers: workers, Budget: budget, CostPerAnswer: 1}
}

// Step runs one synchronous round: each non-eliminated worker receives at
// most one assignment from the assigner and submits an answer. It returns
// the number of answers collected this round. Budget exhaustion stops the
// round early and is reported via the error (errors.Is ErrBudgetExhausted).
//
// Budget accounting follows the TryCharge/Refund reservation protocol: a
// unit is reserved before the worker works, and refunded when the worker
// abandons the assignment or the pool rejects the answer — a failed record
// never burns budget.
func (pl *Platform) Step(assigner Assigner) (int, error) {
	collected := 0
	roundLatency := 0.0
	for _, w := range pl.Workers {
		if pl.Screen != nil && pl.Screen.Eliminated(w.ID()) {
			continue
		}
		id, ok := assigner.Assign(pl.Pool, w.ID())
		if !ok {
			continue
		}
		t := pl.Pool.Task(id)
		if t == nil {
			return collected, fmt.Errorf("core: assigner returned unknown task %d", id)
		}
		if err := pl.Budget.Charge(pl.CostPerAnswer); err != nil {
			pl.Clock += roundLatency
			return collected, err
		}
		resp := w.Work(t)
		if resp.Abandon {
			// The worker dropped out mid-task: nothing to record, and the
			// reserved unit goes back. The round does not wait for them.
			pl.Budget.Refund(pl.CostPerAnswer)
			continue
		}
		a := Answer{
			Task:      id,
			Worker:    w.ID(),
			Option:    resp.Option,
			Text:      resp.Text,
			Score:     resp.Score,
			Submitted: pl.Clock + resp.Latency,
			Latency:   resp.Latency,
		}
		if err := pl.Pool.Record(a); err != nil {
			pl.Budget.Refund(pl.CostPerAnswer)
			return collected, fmt.Errorf("core: recording answer: %w", err)
		}
		if resp.Latency > roundLatency {
			roundLatency = resp.Latency
		}
		collected++
		if pl.Screen != nil && t.Golden {
			pl.Screen.Observe(w.ID(), answerMatchesGolden(t, a))
		}
	}
	pl.Clock += roundLatency
	return collected, nil
}

// CollectRedundant runs rounds until every open task has at least k
// answers (then closes them), the budget is exhausted, or a round makes no
// progress. It is the standard "redundancy-k" collection scheme.
func (pl *Platform) CollectRedundant(assigner Assigner, k int) (RunResult, error) {
	var res RunResult
	for {
		// Close tasks that reached the redundancy target.
		done := true
		for _, id := range pl.Pool.OpenTasks() {
			if pl.Pool.AnswerCount(id) >= k {
				pl.Pool.Close(id)
				continue
			}
			done = false
		}
		if done {
			break
		}
		before := pl.Clock
		n, err := pl.Step(assigner)
		res.Rounds++
		res.AnswersCollected += n
		res.Makespan += pl.Clock - before
		if err != nil {
			if errors.Is(err, ErrBudgetExhausted) {
				res.Cost = pl.Budget.Spent()
				return res, err
			}
			return res, err
		}
		if n == 0 {
			// No worker could take any task: the remaining open tasks can
			// never reach k with this worker population.
			break
		}
	}
	res.Cost = pl.Budget.Spent()
	return res, nil
}

// CollectBudget runs rounds until the budget is exhausted or no assignment
// can be made. It is the regime used by budget-sweep experiments, where the
// assignment policy decides where marginal answers go.
func (pl *Platform) CollectBudget(assigner Assigner) (RunResult, error) {
	var res RunResult
	for {
		before := pl.Clock
		n, err := pl.Step(assigner)
		res.Rounds++
		res.AnswersCollected += n
		res.Makespan += pl.Clock - before
		if err != nil {
			res.Cost = pl.Budget.Spent()
			if errors.Is(err, ErrBudgetExhausted) {
				return res, nil // exhausting the budget is the normal exit
			}
			return res, err
		}
		if n == 0 {
			break
		}
	}
	res.Cost = pl.Budget.Spent()
	return res, nil
}

// answerMatchesGolden reports whether an answer agrees with a golden
// task's planted truth.
func answerMatchesGolden(t *Task, a Answer) bool {
	switch t.Kind {
	case SingleChoice, MultiChoice, PairwiseComparison:
		return a.Option == t.GroundTruth
	case FillIn:
		return a.Text == t.GroundTruthText
	case Rating:
		d := a.Score - t.GroundTruthScore
		return d >= -0.5 && d <= 0.5
	default:
		return false
	}
}
