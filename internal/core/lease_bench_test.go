package core

import (
	"fmt"
	"sort"
	"testing"
	"time"
)

// expireLeasesScan is the pre-heap implementation of ExpireLeases, kept as
// the benchmark baseline: walk every outstanding lease and collect the
// expired ones. Same semantics, O(all leases) per call.
func expireLeasesScan(p *Pool, now time.Time) []Lease {
	var out []Lease
	for id, m := range p.leases {
		for w, d := range m {
			if !d.After(now) {
				out = append(out, Lease{Task: id, Worker: w, Deadline: d})
			}
		}
	}
	for _, l := range out {
		p.releaseLease(l.Task, l.Worker)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Task != out[j].Task {
			return out[i].Task < out[j].Task
		}
		return out[i].Worker < out[j].Worker
	})
	return out
}

// leasedPool builds a pool with nTasks tasks and leasesPerTask leases per
// task, all expiring at or after base.Add(ttl).
func leasedPool(b *testing.B, nTasks, leasesPerTask int, base time.Time, ttl time.Duration) *Pool {
	b.Helper()
	p := NewPool()
	for i := 0; i < nTasks; i++ {
		p.MustAdd(&Task{
			ID: TaskID(i + 1), Kind: SingleChoice,
			Question: "q", Options: []string{"a", "b"},
		})
	}
	for i := 0; i < nTasks; i++ {
		for w := 0; w < leasesPerTask; w++ {
			// Spread deadlines so the heap is not degenerate.
			d := base.Add(ttl + time.Duration(i*leasesPerTask+w)*time.Millisecond)
			if err := p.Lease(TaskID(i+1), fmt.Sprintf("w%d", w), d); err != nil {
				b.Fatal(err)
			}
		}
	}
	return p
}

// The serving layer sweeps before every assignment, so the common case by
// far is a sweep that finds nothing to expire. The heap answers that with
// one deadline peek; the scan baseline walks every lease.
func BenchmarkExpireLeases(b *testing.B) {
	base := time.Unix(1_000_000, 0)
	for _, n := range []int{1_000, 10_000, 100_000} {
		p := leasedPool(b, n/10, 10, base, time.Hour)
		b.Run(fmt.Sprintf("heap/none-expired/leases=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if got := p.ExpireLeases(base); len(got) != 0 {
					b.Fatalf("expired %d leases, want 0", len(got))
				}
			}
		})
		b.Run(fmt.Sprintf("scan/none-expired/leases=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if got := expireLeasesScan(p, base); len(got) != 0 {
					b.Fatalf("expired %d leases, want 0", len(got))
				}
			}
		})
	}

	// Full sweeps: every lease expired. The pool must be rebuilt per
	// iteration (expiry consumes the leases), so the rebuild is excluded
	// via timer control.
	const n = 10_000
	b.Run(fmt.Sprintf("heap/all-expired/leases=%d", n), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			p := leasedPool(b, n/10, 10, base, time.Hour)
			b.StartTimer()
			if got := p.ExpireLeases(base.Add(24 * time.Hour)); len(got) != n {
				b.Fatalf("expired %d leases, want %d", len(got), n)
			}
		}
	})
	b.Run(fmt.Sprintf("scan/all-expired/leases=%d", n), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			p := leasedPool(b, n/10, 10, base, time.Hour)
			b.StartTimer()
			if got := expireLeasesScan(p, base.Add(24 * time.Hour)); len(got) != n {
				b.Fatalf("expired %d leases, want %d", len(got), n)
			}
		}
	})
}

// The two implementations must agree exactly — same expired set, same
// order — under partial expiry with re-leases and consumed leases mixed
// in. This is the safety net for the heap rewrite.
func TestExpireLeasesMatchesScanReference(t *testing.T) {
	base := time.Unix(5_000, 0)
	build := func() *Pool {
		p := NewPool()
		for i := 1; i <= 6; i++ {
			p.MustAdd(&Task{ID: TaskID(i), Kind: SingleChoice, Question: "q", Options: []string{"a", "b"}})
		}
		for i := 1; i <= 6; i++ {
			for w := 0; w < 4; w++ {
				d := base.Add(time.Duration((i*7+w*13)%20) * time.Second)
				if err := p.Lease(TaskID(i), fmt.Sprintf("w%d", w), d); err != nil {
					t.Fatal(err)
				}
			}
		}
		// Perturb: re-lease some (new deadline), consume others, close one.
		_ = p.Lease(2, "w1", base.Add(time.Hour))
		_ = p.Record(Answer{Task: 3, Worker: "w2", Option: 0})
		p.Close(5)
		return p
	}
	for _, cut := range []time.Duration{0, 5 * time.Second, 10 * time.Second, time.Hour} {
		heap := build().ExpireLeases(base.Add(cut))
		scan := expireLeasesScan(build(), base.Add(cut))
		if len(heap) != len(scan) {
			t.Fatalf("cut %v: heap expired %d, scan %d", cut, len(heap), len(scan))
		}
		for i := range scan {
			if heap[i].Task != scan[i].Task || heap[i].Worker != scan[i].Worker || !heap[i].Deadline.Equal(scan[i].Deadline) {
				t.Fatalf("cut %v entry %d: heap %+v, scan %+v", cut, i, heap[i], scan[i])
			}
		}
	}
}
