// Package core implements the crowdsourcing kernel shared by every layer
// of crowdkit: task and answer types, worker interfaces, budget accounting,
// the task pool, golden-task worker screening, and the platform
// orchestration loop that pairs workers with tasks.
//
// The design mirrors the microtask model of commercial platforms (Amazon
// Mechanical Turk and similar) as described in the crowdsourced data
// management literature: a requester publishes small tasks with a unit
// reward; workers arrive, receive assignments, and submit answers;
// redundancy plus truth inference turns noisy answers into results.
package core

import "fmt"

// TaskID identifies a task within one Pool.
type TaskID int

// TaskKind enumerates the microtask types supported by the framework,
// following the task taxonomy of the survey: single-choice, multi-choice,
// fill-in-the-blank, collection (open-ended enumeration), pairwise
// comparison, and rating.
type TaskKind int

const (
	// SingleChoice asks the worker to pick exactly one of Options.
	SingleChoice TaskKind = iota
	// MultiChoice asks the worker to pick any subset of Options (the
	// framework records one option per answer; a worker may submit several
	// answers for the same task).
	MultiChoice
	// FillIn asks the worker to type a free-text value.
	FillIn
	// Collection asks the worker to contribute any item from an open
	// domain (used by crowdsourced data collection / enumeration).
	Collection
	// PairwiseComparison asks which of two items is greater/better;
	// Options has exactly two entries.
	PairwiseComparison
	// Rating asks for a numeric score for an item.
	Rating
)

// String returns the human-readable kind name.
func (k TaskKind) String() string {
	switch k {
	case SingleChoice:
		return "single-choice"
	case MultiChoice:
		return "multi-choice"
	case FillIn:
		return "fill-in"
	case Collection:
		return "collection"
	case PairwiseComparison:
		return "pairwise"
	case Rating:
		return "rating"
	default:
		return fmt.Sprintf("TaskKind(%d)", int(k))
	}
}

// Task is one microtask published to the crowd.
//
// GroundTruth* fields carry the planted truth of the simulated workload;
// they are consulted only by the simulated-worker substrate and by
// experiment evaluation, never by inference or assignment algorithms
// (which see only answers).
type Task struct {
	ID       TaskID
	Kind     TaskKind
	Question string
	// Options lists the choices for choice-type and pairwise tasks.
	Options []string
	// Difficulty in [0,1] scales how often imperfect workers err on this
	// task (GLAD-style: 0 = trivial, 1 = maximally confusing).
	Difficulty float64
	// Golden marks a hidden-test task whose true answer is known to the
	// requester; used for worker quality screening, not for output.
	Golden bool

	// GroundTruth is the true option index for choice-type and pairwise
	// tasks; -1 when inapplicable.
	GroundTruth int
	// GroundTruthText is the true value for fill-in tasks.
	GroundTruthText string
	// GroundTruthScore is the true value for rating tasks.
	GroundTruthScore float64

	// Payload carries operator-specific context (e.g. the pair of record
	// ids behind an entity-resolution task). The kernel never inspects it.
	Payload any
}

// Validate checks structural invariants of the task definition.
func (t *Task) Validate() error {
	switch t.Kind {
	case SingleChoice, MultiChoice:
		if len(t.Options) < 2 {
			return fmt.Errorf("core: task %d: %v task needs >= 2 options, has %d",
				t.ID, t.Kind, len(t.Options))
		}
		if t.GroundTruth < -1 || t.GroundTruth >= len(t.Options) {
			return fmt.Errorf("core: task %d: ground truth %d out of range",
				t.ID, t.GroundTruth)
		}
	case PairwiseComparison:
		if len(t.Options) != 2 {
			return fmt.Errorf("core: task %d: pairwise task needs exactly 2 options, has %d",
				t.ID, len(t.Options))
		}
		if t.GroundTruth < -1 || t.GroundTruth > 1 {
			return fmt.Errorf("core: task %d: pairwise ground truth %d invalid",
				t.ID, t.GroundTruth)
		}
	case FillIn, Collection, Rating:
		// No option constraints.
	default:
		return fmt.Errorf("core: task %d: unknown kind %d", t.ID, int(t.Kind))
	}
	if t.Difficulty < 0 || t.Difficulty > 1 {
		return fmt.Errorf("core: task %d: difficulty %v outside [0,1]", t.ID, t.Difficulty)
	}
	return nil
}

// Answer is one worker response to one task.
type Answer struct {
	Task   TaskID
	Worker string
	// Option is the selected option index for choice-type and pairwise
	// tasks; -1 for free-text and rating answers.
	Option int
	// Text is the response for fill-in and collection tasks.
	Text string
	// Score is the response for rating tasks.
	Score float64
	// Submitted is the simulated timestamp (seconds) at which the answer
	// arrived; 0 when the caller does not simulate time.
	Submitted float64
	// Latency is the simulated time the worker spent on the task.
	Latency float64
}

// Response is what a worker produces for an assigned task, before the
// platform stamps identity and submission time onto it.
type Response struct {
	Option  int
	Text    string
	Score   float64
	Latency float64
	// Abandon reports that the worker walked away without producing an
	// answer (crowd dropout). The platform must not record anything or
	// charge budget for an abandoned assignment; drivers treat it as the
	// worker leaving the session.
	Abandon bool
}

// Worker is anything that can answer tasks. The crowd package provides
// simulated implementations; tests may provide scripted ones.
type Worker interface {
	// ID returns a stable unique identifier.
	ID() string
	// Work produces the worker's response to the task.
	Work(t *Task) Response
}
