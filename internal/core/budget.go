package core

import (
	"errors"
	"fmt"
	"math"
	"sync/atomic"
)

// ErrBudgetExhausted is returned by Budget.Charge when the remaining budget
// cannot cover a charge. Callers detect it with errors.Is.
var ErrBudgetExhausted = errors.New("core: budget exhausted")

// Budget tracks unit-cost spending for a crowdsourcing run.
//
// The survey literature reports cost control results in task counts, so a
// unit cost of 1 per answer preserves every ratio; a per-task price can be
// modeled by charging non-unit amounts.
//
// Budget is safe for concurrent use: the spent counter is an atomic
// float64 updated with compare-and-swap, so many serving goroutines can
// charge and refund without external locking. The total is fixed at
// construction. TryCharge/Refund form the reservation protocol for
// operations that may still fail after being paid for: reserve a unit up
// front, and give it back if the downstream step (e.g. Pool.Record)
// rejects the work — no unit is ever spent on a rejected answer.
type Budget struct {
	total float64
	spent atomic.Uint64 // float64 bits
}

// NewBudget returns a budget with the given total capacity. A non-positive
// total means unlimited.
func NewBudget(total float64) *Budget {
	return &Budget{total: total}
}

// Unlimited returns a budget that never exhausts.
func Unlimited() *Budget { return &Budget{total: 0} }

// TryCharge atomically records a spend of amount units if the remaining
// budget covers it, reporting whether the charge was applied. Negative
// amounts are never applied.
func (b *Budget) TryCharge(amount float64) bool {
	if amount < 0 {
		return false
	}
	for {
		old := b.spent.Load()
		spent := math.Float64frombits(old)
		if b.total > 0 && spent+amount > b.total {
			return false
		}
		if b.spent.CompareAndSwap(old, math.Float64bits(spent+amount)) {
			return true
		}
	}
}

// Charge records a spend of amount units. It returns ErrBudgetExhausted
// (wrapped with context) if the charge would exceed the total; the charge
// is not applied in that case.
func (b *Budget) Charge(amount float64) error {
	if amount < 0 {
		return fmt.Errorf("core: negative charge %v", amount)
	}
	if !b.TryCharge(amount) {
		return fmt.Errorf("charging %v with %v remaining: %w",
			amount, b.Remaining(), ErrBudgetExhausted)
	}
	return nil
}

// Refund atomically returns amount units to the budget, undoing an earlier
// charge whose work was rejected. The spent counter never goes below zero;
// non-positive amounts are ignored.
func (b *Budget) Refund(amount float64) {
	if amount <= 0 {
		return
	}
	for {
		old := b.spent.Load()
		spent := math.Float64frombits(old) - amount
		if spent < 0 {
			spent = 0
		}
		if b.spent.CompareAndSwap(old, math.Float64bits(spent)) {
			return
		}
	}
}

// Spent returns the units spent so far.
func (b *Budget) Spent() float64 { return math.Float64frombits(b.spent.Load()) }

// RestoreSpent overwrites the spent counter with a recovered value,
// clamped at zero. It exists for crash recovery only — a durability layer
// replays the journal, computes the durable spend, and seeds a fresh
// budget with it before the budget is shared between goroutines.
func (b *Budget) RestoreSpent(v float64) {
	if v < 0 {
		v = 0
	}
	b.spent.Store(math.Float64bits(v))
}

// Remaining returns the units left, or -1 when the budget is unlimited.
func (b *Budget) Remaining() float64 {
	if b.total <= 0 {
		return -1
	}
	return b.total - b.Spent()
}

// Limited reports whether the budget has a finite total.
func (b *Budget) Limited() bool { return b.total > 0 }

// CanAfford reports whether a charge of amount would succeed. Under
// concurrency it is only a hint — another goroutine may charge in between;
// use TryCharge for an atomic check-and-spend.
func (b *Budget) CanAfford(amount float64) bool {
	return b.total <= 0 || b.Spent()+amount <= b.total
}
