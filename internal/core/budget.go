package core

import (
	"errors"
	"fmt"
)

// ErrBudgetExhausted is returned by Budget.Charge when the remaining budget
// cannot cover a charge. Callers detect it with errors.Is.
var ErrBudgetExhausted = errors.New("core: budget exhausted")

// Budget tracks unit-cost spending for a crowdsourcing run.
//
// The survey literature reports cost control results in task counts, so a
// unit cost of 1 per answer preserves every ratio; a per-task price can be
// modeled by charging non-unit amounts. Budget is not safe for concurrent
// use; the platform serializes charges.
type Budget struct {
	total float64
	spent float64
}

// NewBudget returns a budget with the given total capacity. A non-positive
// total means unlimited.
func NewBudget(total float64) *Budget {
	return &Budget{total: total}
}

// Unlimited returns a budget that never exhausts.
func Unlimited() *Budget { return &Budget{total: 0} }

// Charge records a spend of amount units. It returns ErrBudgetExhausted
// (wrapped with context) if the charge would exceed the total; the charge
// is not applied in that case.
func (b *Budget) Charge(amount float64) error {
	if amount < 0 {
		return fmt.Errorf("core: negative charge %v", amount)
	}
	if b.total > 0 && b.spent+amount > b.total {
		return fmt.Errorf("charging %v with %v remaining: %w",
			amount, b.Remaining(), ErrBudgetExhausted)
	}
	b.spent += amount
	return nil
}

// Spent returns the units spent so far.
func (b *Budget) Spent() float64 { return b.spent }

// Remaining returns the units left, or +Inf-like large value semantics via
// ok=false when the budget is unlimited.
func (b *Budget) Remaining() float64 {
	if b.total <= 0 {
		return -1
	}
	return b.total - b.spent
}

// Limited reports whether the budget has a finite total.
func (b *Budget) Limited() bool { return b.total > 0 }

// CanAfford reports whether a charge of amount would succeed.
func (b *Budget) CanAfford(amount float64) bool {
	return b.total <= 0 || b.spent+amount <= b.total
}
