package core

import "fmt"

// Qualification is the entry-quiz arm of worker quality control: before a
// worker may join a job, they answer a fixed set of questions with known
// answers; only workers clearing the accuracy bar participate. Unlike the
// golden-task WorkerScreen (hidden tests mixed into real work), the quiz
// runs up front and costs its answers before any useful work happens —
// the classic qualification-test tradeoff.
//
// A Qualification value is read-only during Run, so distinct Run calls
// may proceed concurrently as long as they do not share Worker values
// (simulated workers typically share a *stats.RNG and are not safe to
// drive from multiple goroutines).
type Qualification struct {
	// Quiz is the question set; every task must have a planted truth.
	Quiz []*Task
	// MinAccuracy is the pass bar in [0,1].
	MinAccuracy float64
}

// QualificationResult reports one screening run.
type QualificationResult struct {
	// Passed holds the admitted workers, in input order.
	Passed []Worker
	// Failed holds the rejected workers, in input order.
	Failed []Worker
	// Scores maps worker id to quiz accuracy.
	Scores map[string]float64
	// AnswersUsed counts quiz answers consumed (cost of screening).
	AnswersUsed int
}

// Run administers the quiz to every worker and partitions them. The quiz
// answers are not recorded in any pool — qualification happens before the
// job starts.
func (q *Qualification) Run(workers []Worker) (*QualificationResult, error) {
	if len(q.Quiz) == 0 {
		return nil, fmt.Errorf("core: qualification quiz is empty")
	}
	for _, t := range q.Quiz {
		if err := t.Validate(); err != nil {
			return nil, fmt.Errorf("core: qualification quiz: %w", err)
		}
		switch t.Kind {
		case SingleChoice, MultiChoice, PairwiseComparison:
			if t.GroundTruth < 0 {
				return nil, fmt.Errorf("core: quiz task %d has no planted truth", t.ID)
			}
		case FillIn:
			if t.GroundTruthText == "" {
				return nil, fmt.Errorf("core: quiz task %d has no planted truth", t.ID)
			}
		default:
			return nil, fmt.Errorf("core: quiz task %d: %v tasks are not gradeable", t.ID, t.Kind)
		}
	}
	res := &QualificationResult{Scores: make(map[string]float64, len(workers))}
	for _, w := range workers {
		correct := 0
		for _, t := range q.Quiz {
			resp := w.Work(t)
			res.AnswersUsed++
			if answerMatchesGolden(t, Answer{
				Option: resp.Option, Text: resp.Text, Score: resp.Score,
			}) {
				correct++
			}
		}
		acc := float64(correct) / float64(len(q.Quiz))
		res.Scores[w.ID()] = acc
		if acc >= q.MinAccuracy {
			res.Passed = append(res.Passed, w)
		} else {
			res.Failed = append(res.Failed, w)
		}
	}
	return res, nil
}
