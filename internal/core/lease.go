package core

import (
	"fmt"
	"sort"
	"time"
)

// Lease records that a task has been handed to a worker who has not yet
// submitted an answer for it. Leases are the unit of fault tolerance on
// the serving path: an assignment without a lease is lost forever if the
// worker vanishes, while a leased assignment is reclaimed after Deadline
// and re-issued to somebody else.
//
// The lease state machine is:
//
//	issued ──(Record by the same worker)──▶ submitted (lease consumed)
//	issued ──(ExpireLeases past Deadline)─▶ expired   (slot re-issuable)
//
// A worker re-fetching a task it already holds simply extends the lease
// (same state, later deadline). Closing a task drops all of its leases.
type Lease struct {
	Task     TaskID
	Worker   string
	Deadline time.Time
}

// Lease records (or extends) a lease on the task for the worker until
// deadline. The task must exist and be open.
func (p *Pool) Lease(id TaskID, worker string, deadline time.Time) error {
	if worker == "" {
		return fmt.Errorf("core: lease needs a worker id")
	}
	if _, ok := p.tasks[id]; !ok {
		return fmt.Errorf("core: lease for unknown task %d", id)
	}
	if p.closed[id] {
		return fmt.Errorf("core: lease for closed task %d", id)
	}
	m := p.leases[id]
	if m == nil {
		m = make(map[string]time.Time)
		p.leases[id] = m
	}
	m[worker] = deadline
	// Mirror every (deadline, task, worker) into the expiry heap. Released
	// or re-leased entries go stale in the heap and are discarded lazily
	// when their deadline pops — see ExpireLeases.
	p.pushLeaseEntry(leaseEntry{deadline: deadline, task: id, worker: worker})
	return nil
}

// releaseLease drops the (task, worker) lease if one exists, reporting
// whether it did. Called when a submission consumes the lease, when a
// sweep expires it, and when the task closes.
func (p *Pool) releaseLease(id TaskID, worker string) bool {
	m := p.leases[id]
	if m == nil {
		return false
	}
	if _, ok := m[worker]; !ok {
		return false
	}
	delete(m, worker)
	if len(m) == 0 {
		delete(p.leases, id)
	}
	return true
}

// HasLease reports whether the worker currently holds a lease on the task
// (expired-but-not-yet-swept leases still count: only ExpireLeases
// transitions them out).
func (p *Pool) HasLease(worker string, id TaskID) bool {
	_, ok := p.leases[id][worker]
	return ok
}

// LeaseCount returns the number of outstanding leases on a task.
func (p *Pool) LeaseCount(id TaskID) int { return len(p.leases[id]) }

// ActiveLeases returns the total number of outstanding leases.
func (p *Pool) ActiveLeases() int {
	n := 0
	for _, m := range p.leases {
		n += len(m)
	}
	return n
}

// InFlight returns committed answers plus outstanding leases for a task —
// the count assigners balance on, so that a task already handed out is not
// handed out again while other tasks need answers. Redundancy targets must
// keep using AnswerCount: only committed answers satisfy them.
func (p *Pool) InFlight(id TaskID) int {
	return len(p.answers[id]) + len(p.leases[id])
}

// ExpireLeases removes every lease whose deadline is at or before now and
// returns them sorted by (task, worker) for deterministic processing. The
// freed slots immediately lower InFlight, so assigners re-issue the tasks.
//
// The sweep is driven by a deadline min-heap, so a call that finds nothing
// to expire — the overwhelmingly common case when the serving layer sweeps
// on every assignment — costs one heap peek instead of a scan over every
// outstanding lease. Consumed and extended leases leave lazily-deleted
// entries behind; each is discarded the first time its (now stale)
// deadline reaches the top of the heap.
func (p *Pool) ExpireLeases(now time.Time) []Lease {
	var out []Lease
	for len(p.leaseHeap) > 0 && !p.leaseHeap[0].deadline.After(now) {
		e := p.popLeaseEntry()
		// The entry is live only if the lease map still holds this exact
		// deadline: a submission or Close dropped it, or a re-lease moved
		// it, otherwise.
		if d, ok := p.leases[e.task][e.worker]; ok && d.Equal(e.deadline) {
			p.releaseLease(e.task, e.worker)
			out = append(out, Lease{Task: e.task, Worker: e.worker, Deadline: e.deadline})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Task != out[j].Task {
			return out[i].Task < out[j].Task
		}
		return out[i].Worker < out[j].Worker
	})
	return out
}

// Leases returns every outstanding lease sorted by (task, worker), for
// snapshots and diagnostics.
func (p *Pool) Leases() []Lease {
	out := make([]Lease, 0, p.ActiveLeases())
	for id, m := range p.leases {
		for w, d := range m {
			out = append(out, Lease{Task: id, Worker: w, Deadline: d})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Task != out[j].Task {
			return out[i].Task < out[j].Task
		}
		return out[i].Worker < out[j].Worker
	})
	return out
}

// ReleaseLease drops the (task, worker) lease if one exists, reporting
// whether it did. Exported for journal replay, which must re-apply
// recorded expiries exactly; live code paths release leases through
// Record, Close, and ExpireLeases.
func (p *Pool) ReleaseLease(id TaskID, worker string) bool {
	return p.releaseLease(id, worker)
}

// leaseEntry is one element of the expiry min-heap: the deadline a lease
// carried when it was (re-)issued. Entries are never removed eagerly; a
// popped entry whose deadline no longer matches the lease map is stale.
type leaseEntry struct {
	deadline time.Time
	task     TaskID
	worker   string
}

// pushLeaseEntry sifts a new entry up the deadline min-heap.
func (p *Pool) pushLeaseEntry(e leaseEntry) {
	h := append(p.leaseHeap, e)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h[i].deadline.Before(h[parent].deadline) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	p.leaseHeap = h
}

// popLeaseEntry removes and returns the earliest-deadline entry.
func (p *Pool) popLeaseEntry() leaseEntry {
	h := p.leaseHeap
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = leaseEntry{} // release the worker string
	h = h[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && h[l].deadline.Before(h[min].deadline) {
			min = l
		}
		if r < n && h[r].deadline.Before(h[min].deadline) {
			min = r
		}
		if min == i {
			break
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
	p.leaseHeap = h
	return top
}
