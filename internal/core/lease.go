package core

import (
	"fmt"
	"sort"
	"time"
)

// Lease records that a task has been handed to a worker who has not yet
// submitted an answer for it. Leases are the unit of fault tolerance on
// the serving path: an assignment without a lease is lost forever if the
// worker vanishes, while a leased assignment is reclaimed after Deadline
// and re-issued to somebody else.
//
// The lease state machine is:
//
//	issued ──(Record by the same worker)──▶ submitted (lease consumed)
//	issued ──(ExpireLeases past Deadline)─▶ expired   (slot re-issuable)
//
// A worker re-fetching a task it already holds simply extends the lease
// (same state, later deadline). Closing a task drops all of its leases.
type Lease struct {
	Task     TaskID
	Worker   string
	Deadline time.Time
}

// Lease records (or extends) a lease on the task for the worker until
// deadline. The task must exist and be open.
func (p *Pool) Lease(id TaskID, worker string, deadline time.Time) error {
	if worker == "" {
		return fmt.Errorf("core: lease needs a worker id")
	}
	if _, ok := p.tasks[id]; !ok {
		return fmt.Errorf("core: lease for unknown task %d", id)
	}
	if p.closed[id] {
		return fmt.Errorf("core: lease for closed task %d", id)
	}
	m := p.leases[id]
	if m == nil {
		m = make(map[string]time.Time)
		p.leases[id] = m
	}
	m[worker] = deadline
	return nil
}

// releaseLease drops the (task, worker) lease if one exists, reporting
// whether it did. Called when a submission consumes the lease, when a
// sweep expires it, and when the task closes.
func (p *Pool) releaseLease(id TaskID, worker string) bool {
	m := p.leases[id]
	if m == nil {
		return false
	}
	if _, ok := m[worker]; !ok {
		return false
	}
	delete(m, worker)
	if len(m) == 0 {
		delete(p.leases, id)
	}
	return true
}

// HasLease reports whether the worker currently holds a lease on the task
// (expired-but-not-yet-swept leases still count: only ExpireLeases
// transitions them out).
func (p *Pool) HasLease(worker string, id TaskID) bool {
	_, ok := p.leases[id][worker]
	return ok
}

// LeaseCount returns the number of outstanding leases on a task.
func (p *Pool) LeaseCount(id TaskID) int { return len(p.leases[id]) }

// ActiveLeases returns the total number of outstanding leases.
func (p *Pool) ActiveLeases() int {
	n := 0
	for _, m := range p.leases {
		n += len(m)
	}
	return n
}

// InFlight returns committed answers plus outstanding leases for a task —
// the count assigners balance on, so that a task already handed out is not
// handed out again while other tasks need answers. Redundancy targets must
// keep using AnswerCount: only committed answers satisfy them.
func (p *Pool) InFlight(id TaskID) int {
	return len(p.answers[id]) + len(p.leases[id])
}

// ExpireLeases removes every lease whose deadline is at or before now and
// returns them sorted by (task, worker) for deterministic processing. The
// freed slots immediately lower InFlight, so assigners re-issue the tasks.
func (p *Pool) ExpireLeases(now time.Time) []Lease {
	if len(p.leases) == 0 {
		return nil
	}
	var out []Lease
	for id, m := range p.leases {
		for w, d := range m {
			if !d.After(now) {
				out = append(out, Lease{Task: id, Worker: w, Deadline: d})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Task != out[j].Task {
			return out[i].Task < out[j].Task
		}
		return out[i].Worker < out[j].Worker
	})
	for _, l := range out {
		p.releaseLease(l.Task, l.Worker)
	}
	return out
}
