package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestLeaseLifecycle(t *testing.T) {
	p := NewPool()
	a := p.MustAdd(binaryTask(1, 1))
	b := p.MustAdd(binaryTask(2, 0))
	t0 := time.Unix(1000, 0)

	if err := p.Lease(a, "w1", t0.Add(time.Minute)); err != nil {
		t.Fatal(err)
	}
	if !p.HasLease("w1", a) || p.LeaseCount(a) != 1 || p.ActiveLeases() != 1 {
		t.Fatalf("lease not recorded: has=%v count=%d active=%d",
			p.HasLease("w1", a), p.LeaseCount(a), p.ActiveLeases())
	}
	// InFlight counts the lease; AnswerCount must not (redundancy targets
	// count only committed answers).
	if p.InFlight(a) != 1 || p.AnswerCount(a) != 0 {
		t.Fatalf("in-flight = %d answers = %d, want 1, 0", p.InFlight(a), p.AnswerCount(a))
	}
	if p.InFlight(b) != 0 {
		t.Fatalf("unleased task in-flight = %d", p.InFlight(b))
	}

	// The submission consumes the lease.
	if err := p.Record(Answer{Task: a, Worker: "w1", Option: 1}); err != nil {
		t.Fatal(err)
	}
	if p.HasLease("w1", a) || p.ActiveLeases() != 0 {
		t.Fatal("submission did not consume the lease")
	}
	if p.InFlight(a) != 1 || p.AnswerCount(a) != 1 {
		t.Fatalf("after submit: in-flight = %d answers = %d, want 1, 1", p.InFlight(a), p.AnswerCount(a))
	}
}

func TestLeaseExpirySweep(t *testing.T) {
	p := NewPool()
	a := p.MustAdd(binaryTask(1, 1))
	b := p.MustAdd(binaryTask(2, 0))
	t0 := time.Unix(1000, 0)

	if err := p.Lease(a, "w1", t0.Add(10*time.Second)); err != nil {
		t.Fatal(err)
	}
	if err := p.Lease(a, "w2", t0.Add(30*time.Second)); err != nil {
		t.Fatal(err)
	}
	if err := p.Lease(b, "w1", t0.Add(10*time.Second)); err != nil {
		t.Fatal(err)
	}

	// Nothing expired yet.
	if exp := p.ExpireLeases(t0.Add(5 * time.Second)); len(exp) != 0 {
		t.Fatalf("premature expiry: %v", exp)
	}
	// Two of the three leases are past deadline at +10s (inclusive).
	exp := p.ExpireLeases(t0.Add(10 * time.Second))
	if len(exp) != 2 {
		t.Fatalf("expired %d leases, want 2: %v", len(exp), exp)
	}
	// Deterministic (task, worker) order.
	if exp[0].Task != a || exp[0].Worker != "w1" || exp[1].Task != b || exp[1].Worker != "w1" {
		t.Fatalf("expiry order = %v", exp)
	}
	if p.ActiveLeases() != 1 || !p.HasLease("w2", a) {
		t.Fatalf("surviving leases wrong: active=%d", p.ActiveLeases())
	}
	// The reclaimed slot makes the task assignable again: InFlight dropped.
	if p.InFlight(a) != 1 || p.InFlight(b) != 0 {
		t.Fatalf("in-flight after sweep: a=%d b=%d", p.InFlight(a), p.InFlight(b))
	}
}

func TestLeaseReLeaseExtendsDeadline(t *testing.T) {
	p := NewPool()
	a := p.MustAdd(binaryTask(1, 1))
	t0 := time.Unix(1000, 0)

	if err := p.Lease(a, "w1", t0.Add(10*time.Second)); err != nil {
		t.Fatal(err)
	}
	// Re-fetching the same task extends the lease; the old deadline no
	// longer expires it.
	if err := p.Lease(a, "w1", t0.Add(60*time.Second)); err != nil {
		t.Fatal(err)
	}
	if p.LeaseCount(a) != 1 {
		t.Fatalf("re-lease duplicated: count = %d", p.LeaseCount(a))
	}
	if exp := p.ExpireLeases(t0.Add(30 * time.Second)); len(exp) != 0 {
		t.Fatalf("extended lease expired early: %v", exp)
	}
	if exp := p.ExpireLeases(t0.Add(61 * time.Second)); len(exp) != 1 {
		t.Fatalf("extended lease did not expire: %v", exp)
	}
}

func TestLeaseValidation(t *testing.T) {
	p := NewPool()
	a := p.MustAdd(binaryTask(1, 1))
	now := time.Unix(1000, 0)
	if err := p.Lease(999, "w1", now); err == nil {
		t.Fatal("lease on unknown task should fail")
	}
	if err := p.Lease(a, "", now); err == nil {
		t.Fatal("lease without worker should fail")
	}
	p.Close(a)
	if err := p.Lease(a, "w1", now); err == nil {
		t.Fatal("lease on closed task should fail")
	}
}

func TestCloseDropsLeases(t *testing.T) {
	p := NewPool()
	a := p.MustAdd(binaryTask(1, 1))
	if err := p.Lease(a, "w1", time.Unix(2000, 0)); err != nil {
		t.Fatal(err)
	}
	p.Close(a)
	if p.ActiveLeases() != 0 {
		t.Fatal("closing a task must drop its leases")
	}
}

func TestConcurrentPoolAssignLease(t *testing.T) {
	p := NewPool()
	for i := 0; i < 4; i++ {
		p.MustAdd(binaryTask(TaskID(i+1), 1))
	}
	cp := NewConcurrentPool(p)
	deadline := time.Now().Add(time.Hour)
	v0 := cp.Version()

	// fewestInFlight mirrors the serving assigner: balance on in-flight.
	fewestInFlight := AssignerFunc(func(p *Pool, worker string) (TaskID, bool) {
		el := p.EligibleFor(worker)
		if len(el) == 0 {
			return 0, false
		}
		best := el[0]
		for _, id := range el[1:] {
			if p.InFlight(id) < p.InFlight(best) {
				best = id
			}
		}
		return best, true
	})

	// One worker leasing repeatedly walks the whole pool: each lease
	// raises that task's in-flight count, steering the next assignment to
	// an unleased task.
	seen := map[TaskID]bool{}
	for i := 0; i < 4; i++ {
		id, ok := cp.AssignLease(fewestInFlight, "w1", deadline)
		if !ok {
			t.Fatalf("assignment %d failed", i)
		}
		if seen[id] {
			t.Fatalf("task %d leased twice before others were covered", id)
		}
		seen[id] = true
	}
	if cp.ActiveLeases() != 4 {
		t.Fatalf("active leases = %d, want 4", cp.ActiveLeases())
	}
	// Lease bookkeeping must not bump the version: the inference cache
	// keys on it and assignments never change the answer set.
	if cp.Version() != v0 {
		t.Fatalf("lease ops bumped version %d -> %d", v0, cp.Version())
	}
	if exp := cp.ExpireLeases(time.Now().Add(2 * time.Hour)); len(exp) != 4 {
		t.Fatalf("expired %d, want 4", len(exp))
	}
	if cp.Version() != v0 {
		t.Fatal("expiry bumped version")
	}
}

func TestConcurrentPoolLeaseRace(t *testing.T) {
	p := NewPool()
	for i := 0; i < 8; i++ {
		p.MustAdd(binaryTask(TaskID(i+1), 1))
	}
	cp := NewConcurrentPool(p)
	deadline := time.Now().Add(time.Hour)

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			w := fmt.Sprintf("w%d", g)
			for i := 0; i < 8; i++ {
				if id, ok := cp.AssignLease(firstOpen, w, deadline); ok {
					_ = cp.Record(Answer{Task: id, Worker: w, Option: 1})
				}
				cp.ExpireLeases(time.Now())
			}
		}(g)
	}
	wg.Wait()
	// Every lease was either consumed by its Record or still outstanding;
	// the sweep found none expired (deadline is an hour out).
	if got := cp.ActiveLeases(); got != 0 {
		t.Fatalf("unconsumed leases after all submissions: %d", got)
	}
}

// TestPlatformStepRefundsFailedRecord is the regression test for the
// charge-before-record leak in Platform.Step: an answer the pool rejects
// must refund its reserved budget unit.
func TestPlatformStepRefundsFailedRecord(t *testing.T) {
	pool := NewPool()
	id := pool.MustAdd(binaryTask(1, 1))
	// The worker has already answered; a broken assigner hands the task
	// out again, so Record fails after the budget unit was reserved.
	if err := pool.Record(Answer{Task: id, Worker: "w1", Option: 1}); err != nil {
		t.Fatal(err)
	}
	budget := NewBudget(10)
	spent0 := budget.Spent()
	pl := NewPlatform(pool, []Worker{&scriptedWorker{id: "w1", option: 0}}, budget)
	badAssigner := AssignerFunc(func(p *Pool, worker string) (TaskID, bool) { return id, true })

	if _, err := pl.Step(badAssigner); err == nil {
		t.Fatal("Step should surface the rejected record")
	}
	if got := budget.Spent(); got != spent0 {
		t.Fatalf("failed record burned budget: spent = %v, want %v", got, spent0)
	}
}

// TestPlatformStepAbandonRefunds: a worker that abandons its assignment
// produces no answer and costs nothing.
func TestPlatformStepAbandonRefunds(t *testing.T) {
	pool := NewPool()
	pool.MustAdd(binaryTask(1, 1))
	budget := NewBudget(10)
	pl := NewPlatform(pool, []Worker{&abandoningWorker{id: "gone"}}, budget)

	n, err := pl.Step(firstOpen)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("abandoned assignment counted as collected: %d", n)
	}
	if budget.Spent() != 0 {
		t.Fatalf("abandoned assignment burned budget: %v", budget.Spent())
	}
	if pool.TotalAnswers() != 0 {
		t.Fatal("abandoned assignment recorded an answer")
	}
}

// abandoningWorker claims assignments and never submits.
type abandoningWorker struct{ id string }

func (w *abandoningWorker) ID() string            { return w.id }
func (w *abandoningWorker) Work(t *Task) Response { return Response{Option: -1, Abandon: true} }

// TestCollectRedundantWithDropouts: a population where 30% of workers
// abandon every assignment still reaches redundancy-k on every task within
// budget — the honest majority carries the run and abandoned slots cost
// nothing.
func TestCollectRedundantWithDropouts(t *testing.T) {
	pool := NewPool()
	const tasks, k = 20, 3
	for i := 0; i < tasks; i++ {
		pool.MustAdd(binaryTask(TaskID(i+1), 1))
	}
	workers := []Worker{
		&truthfulWorker{id: "h1"}, &truthfulWorker{id: "h2"}, &truthfulWorker{id: "h3"},
		&truthfulWorker{id: "h4"}, &truthfulWorker{id: "h5"}, &truthfulWorker{id: "h6"},
		&truthfulWorker{id: "h7"},
		&abandoningWorker{id: "d1"}, &abandoningWorker{id: "d2"}, &abandoningWorker{id: "d3"},
	}
	// Balance assignments like the serving layer does, so overshoot past k
	// stays small.
	fewest := AssignerFunc(func(p *Pool, worker string) (TaskID, bool) {
		el := p.EligibleFor(worker)
		if len(el) == 0 {
			return 0, false
		}
		best := el[0]
		for _, id := range el[1:] {
			if p.InFlight(id) < p.InFlight(best) {
				best = id
			}
		}
		return best, true
	})
	const budgetTotal = tasks*k + 40 // headroom for same-round overshoot
	budget := NewBudget(budgetTotal)
	pl := NewPlatform(pool, workers, budget)

	res, err := pl.CollectRedundant(fewest, k)
	if err != nil && !errors.Is(err, ErrBudgetExhausted) {
		t.Fatal(err)
	}
	for _, id := range pool.TaskIDs() {
		if pool.AnswerCount(id) < k {
			t.Fatalf("task %d has %d answers, want >= %d", id, pool.AnswerCount(id), k)
		}
	}
	if res.Cost != float64(res.AnswersCollected) {
		t.Fatalf("cost %v != answers %d: dropouts were charged", res.Cost, res.AnswersCollected)
	}
	if res.Cost > budgetTotal {
		t.Fatalf("cost %v blew the budget", res.Cost)
	}
}
