package core

import (
	"sync"
	"sync/atomic"
	"time"
)

// ConcurrentPool makes a Pool safe for concurrent use by guarding it with
// an RWMutex: reads (task lookup, eligibility scans, statistics, assigner
// runs) proceed in parallel, while mutations (Add, Record, Close) take the
// write lock. The single-threaded Pool keeps its lock-free API for the
// simulator hot loops; the serving layer wraps it here.
//
// The wrapper also maintains a monotonically increasing version counter,
// bumped on every successful mutation. Consumers that derive expensive
// state from the pool (e.g. EM truth inference behind /api/results) key
// their caches on Version: an unchanged version proves the answer set is
// unchanged, so the cached result is still exact.
type ConcurrentPool struct {
	mu      sync.RWMutex
	pool    *Pool
	version atomic.Uint64
	// journal, when set, observes mutations under the write lock so a
	// durability layer sees them in application order. See Journal.
	journal Journal

	// Answer-append log for incremental readers (EnableAnswerLog). Each
	// accepted answer is recorded with the version it landed at, so a
	// reader holding a snapshot at version v can fetch exactly the answers
	// appended since v instead of re-copying the whole pool. alogTrim is
	// the oldest version a delta may start from: it advances when the log
	// is trimmed and jumps to the current version on any structural
	// mutation (task add, answer removal) that an append log cannot
	// express. All fields are guarded by mu; readers use the *Locked
	// accessors under an already-held read lock.
	alog     []answerLogEntry
	alogCap  int
	alogTrim uint64
}

// answerLogEntry records one accepted answer and the pool version after
// it was applied.
type answerLogEntry struct {
	ver uint64
	ans Answer
}

// EnableAnswerLog turns on the answer-append log with the given capacity
// (answers retained; half is discarded on overflow). Deltas become
// available from the current version onward. capacity <= 0 disables the
// log again.
func (cp *ConcurrentPool) EnableAnswerLog(capacity int) {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	cp.alogCap = capacity
	cp.alog = nil
	cp.alogTrim = cp.version.Load()
}

// logAnswerLocked appends an accepted answer at the given post-bump
// version, trimming the oldest half when the log is full. Callers hold
// the write lock.
func (cp *ConcurrentPool) logAnswerLocked(ver uint64, a Answer) {
	if cp.alogCap <= 0 {
		return
	}
	if len(cp.alog) >= cp.alogCap {
		half := len(cp.alog) / 2
		cp.alogTrim = cp.alog[half-1].ver
		cp.alog = append(cp.alog[:0], cp.alog[half:]...)
	}
	cp.alog = append(cp.alog, answerLogEntry{ver: ver, ans: a})
}

// invalidateLogLocked discards the log after a structural mutation: the
// answer set changed in a way appends cannot express (task added, answer
// removed), so no delta may span this version. Callers hold the write
// lock and have already bumped the version.
func (cp *ConcurrentPool) invalidateLogLocked() {
	if cp.alogCap <= 0 {
		return
	}
	cp.alog = cp.alog[:0]
	cp.alogTrim = cp.version.Load()
}

// canDeltaLocked reports whether the appended answers since version
// `since` are fully covered by the log. Callers hold at least the read
// lock.
func (cp *ConcurrentPool) canDeltaLocked(since uint64) bool {
	return cp.alogCap > 0 && since >= cp.alogTrim
}

// appendedSinceLocked appends to dst every answer recorded after version
// `since`, in application order, and reports whether the log covered the
// whole window. Callers hold at least the read lock.
func (cp *ConcurrentPool) appendedSinceLocked(since uint64, dst []Answer) ([]Answer, bool) {
	if !cp.canDeltaLocked(since) {
		return dst, false
	}
	// Entries are in ascending version order; skip those at or before the
	// snapshot.
	lo, hi := 0, len(cp.alog)
	for lo < hi {
		mid := (lo + hi) / 2
		if cp.alog[mid].ver <= since {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	for _, e := range cp.alog[lo:] {
		dst = append(dst, e.ans)
	}
	return dst, true
}

// NewConcurrentPool wraps p (a fresh empty pool when nil). The wrapped
// pool must not be mutated directly while the wrapper is in use; read-only
// access from other goroutines remains safe as long as no one bypasses the
// wrapper for writes.
func NewConcurrentPool(p *Pool) *ConcurrentPool {
	if p == nil {
		p = NewPool()
	}
	return &ConcurrentPool{pool: p}
}

// Version returns the current mutation counter. Two equal observations
// bracket a window in which the pool's tasks and answers did not change.
func (cp *ConcurrentPool) Version() uint64 { return cp.version.Load() }

// SetJournal attaches a mutation journal. It must be called before the
// pool is shared between goroutines (journal installation itself is not
// synchronized); pass nil to detach. Answer recording is not journaled
// here — see the Journal docs.
func (cp *ConcurrentPool) SetJournal(j Journal) { cp.journal = j }

// Add registers a task under the write lock.
func (cp *ConcurrentPool) Add(t *Task) (TaskID, error) {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	id, err := cp.pool.Add(t)
	if err == nil {
		cp.version.Add(1)
		cp.invalidateLogLocked()
		if cp.journal != nil {
			cp.journal.TaskAdded(t)
		}
	}
	return id, err
}

// Record stores an answer under the write lock; the version is bumped only
// when the platform rules accept the answer.
func (cp *ConcurrentPool) Record(a Answer) error {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	if err := cp.pool.Record(a); err != nil {
		return err
	}
	cp.logAnswerLocked(cp.version.Add(1), a)
	return nil
}

// RecordAll stores a batch of answers under one write-lock acquisition,
// applying the same platform rules as Record to each. The returned slice
// is index-aligned with as: nil for accepted answers, the rejection
// otherwise. The version is bumped once when at least one answer was
// accepted — the point of batching is to pay the lock and the cache
// invalidation once per batch instead of once per answer.
func (cp *ConcurrentPool) RecordAll(as []Answer) []error {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	errs := make([]error, len(as))
	accepted := 0
	for i := range as {
		if err := cp.pool.Record(as[i]); err != nil {
			errs[i] = err
		} else {
			accepted++
		}
	}
	if accepted > 0 {
		ver := cp.version.Add(1)
		for i := range as {
			if errs[i] == nil {
				cp.logAnswerLocked(ver, as[i])
			}
		}
	}
	return errs
}

// Unrecord removes the most recent answer equal to a under the write
// lock, reporting whether one was found. The version is bumped on
// success: consumers may have cached state derived from the answer set
// that included a, and that set just changed again.
func (cp *ConcurrentPool) Unrecord(a Answer) bool {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	ok := cp.pool.Unrecord(a)
	if ok {
		cp.version.Add(1)
		cp.invalidateLogLocked()
	}
	return ok
}

// Close marks a task as finished under the write lock. The answer log
// stays valid across a Close: the version moves (closing changes what
// assigners may hand out) but the answer set does not, so a delta
// spanning the close is correctly empty.
func (cp *ConcurrentPool) Close(id TaskID) {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	cp.pool.Close(id)
	cp.version.Add(1)
	if cp.journal != nil {
		cp.journal.TaskClosed(id)
	}
}

// Assign runs an assignment policy against the pool under the read lock.
// Assigners only read pool state, so concurrent assignments for different
// workers proceed in parallel.
func (cp *ConcurrentPool) Assign(a Assigner, worker string) (TaskID, bool) {
	cp.mu.RLock()
	defer cp.mu.RUnlock()
	return a.Assign(cp.pool, worker)
}

// AssignLease atomically runs the assignment policy and records a lease on
// the chosen task until deadline. It takes the write lock (the lease is a
// mutation, and choosing + leasing must be one atomic step so two workers
// cannot race past each other's in-flight counts).
//
// Lease bookkeeping deliberately does NOT bump the version counter: leases
// never change the answer set, and bumping on every assignment would
// invalidate the /api/results inference cache on each /api/task poll.
func (cp *ConcurrentPool) AssignLease(a Assigner, worker string, deadline time.Time) (TaskID, bool) {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	id, ok := a.Assign(cp.pool, worker)
	if !ok {
		return 0, false
	}
	if err := cp.pool.Lease(id, worker, deadline); err != nil {
		// The assigner returned an unknown or closed task; treat it as no
		// assignment rather than handing out an untracked slot.
		return 0, false
	}
	if cp.journal != nil {
		cp.journal.LeaseIssued(Lease{Task: id, Worker: worker, Deadline: deadline})
	}
	return id, true
}

// assignLeaseFresh is AssignLease that refuses an assignment merely
// extending a lease the worker already holds. The sharded facade uses it
// for its first scan: a shard whose only offer for this worker is a
// re-extension should not stop the scan while another shard still has
// fresh work.
func (cp *ConcurrentPool) assignLeaseFresh(a Assigner, worker string, deadline time.Time) (TaskID, bool) {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	id, ok := a.Assign(cp.pool, worker)
	if !ok || cp.pool.HasLease(worker, id) {
		return 0, false
	}
	if err := cp.pool.Lease(id, worker, deadline); err != nil {
		return 0, false
	}
	if cp.journal != nil {
		cp.journal.LeaseIssued(Lease{Task: id, Worker: worker, Deadline: deadline})
	}
	return id, true
}

// ExpireLeases sweeps leases past their deadline under the write lock and
// returns the reclaimed assignments. Like AssignLease, it does not bump
// the version counter.
func (cp *ConcurrentPool) ExpireLeases(now time.Time) []Lease {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	exp := cp.pool.ExpireLeases(now)
	if len(exp) > 0 && cp.journal != nil {
		cp.journal.LeasesExpired(exp)
	}
	return exp
}

// ActiveLeases returns the total number of outstanding leases.
func (cp *ConcurrentPool) ActiveLeases() int {
	cp.mu.RLock()
	defer cp.mu.RUnlock()
	return cp.pool.ActiveLeases()
}

// LeaseCount returns the number of outstanding leases on a task.
func (cp *ConcurrentPool) LeaseCount(id TaskID) int {
	cp.mu.RLock()
	defer cp.mu.RUnlock()
	return cp.pool.LeaseCount(id)
}

// HasLease reports whether the worker holds a lease on the task.
func (cp *ConcurrentPool) HasLease(worker string, id TaskID) bool {
	cp.mu.RLock()
	defer cp.mu.RUnlock()
	return cp.pool.HasLease(worker, id)
}

// InFlight returns committed answers plus outstanding leases for a task.
func (cp *ConcurrentPool) InFlight(id TaskID) int {
	cp.mu.RLock()
	defer cp.mu.RUnlock()
	return cp.pool.InFlight(id)
}

// View runs fn with the read lock held, giving it a consistent snapshot of
// the pool across multiple calls. fn must not mutate the pool and must not
// retain references to its internal slices past the call.
func (cp *ConcurrentPool) View(fn func(p *Pool)) {
	cp.mu.RLock()
	defer cp.mu.RUnlock()
	fn(cp.pool)
}

// Task returns the task with the given id, or nil. Tasks are immutable
// once added, so the returned pointer is safe to read without the lock.
func (cp *ConcurrentPool) Task(id TaskID) *Task {
	cp.mu.RLock()
	defer cp.mu.RUnlock()
	return cp.pool.Task(id)
}

// Len returns the number of tasks.
func (cp *ConcurrentPool) Len() int {
	cp.mu.RLock()
	defer cp.mu.RUnlock()
	return cp.pool.Len()
}

// TaskIDs returns a copy of the task ids in insertion order.
func (cp *ConcurrentPool) TaskIDs() []TaskID {
	cp.mu.RLock()
	defer cp.mu.RUnlock()
	out := make([]TaskID, len(cp.pool.TaskIDs()))
	copy(out, cp.pool.TaskIDs())
	return out
}

// Answers returns a copy of the answers recorded for a task.
func (cp *ConcurrentPool) Answers(id TaskID) []Answer {
	cp.mu.RLock()
	defer cp.mu.RUnlock()
	src := cp.pool.Answers(id)
	if src == nil {
		return nil
	}
	out := make([]Answer, len(src))
	copy(out, src)
	return out
}

// AnswerCount returns the number of answers for a task.
func (cp *ConcurrentPool) AnswerCount(id TaskID) int {
	cp.mu.RLock()
	defer cp.mu.RUnlock()
	return cp.pool.AnswerCount(id)
}

// TotalAnswers returns the number of answers across all tasks.
func (cp *ConcurrentPool) TotalAnswers() int {
	cp.mu.RLock()
	defer cp.mu.RUnlock()
	return cp.pool.TotalAnswers()
}

// HasAnswered reports whether the worker already answered the task.
func (cp *ConcurrentPool) HasAnswered(worker string, id TaskID) bool {
	cp.mu.RLock()
	defer cp.mu.RUnlock()
	return cp.pool.HasAnswered(worker, id)
}

// Closed reports whether the task has been closed.
func (cp *ConcurrentPool) Closed(id TaskID) bool {
	cp.mu.RLock()
	defer cp.mu.RUnlock()
	return cp.pool.Closed(id)
}

// OpenTasks returns the ids of tasks that are not closed.
func (cp *ConcurrentPool) OpenTasks() []TaskID {
	cp.mu.RLock()
	defer cp.mu.RUnlock()
	return cp.pool.OpenTasks()
}

// EligibleFor returns open tasks the worker has not answered yet.
func (cp *ConcurrentPool) EligibleFor(worker string) []TaskID {
	cp.mu.RLock()
	defer cp.mu.RUnlock()
	return cp.pool.EligibleFor(worker)
}

// Workers returns the sorted ids of all workers that answered.
func (cp *ConcurrentPool) Workers() []string {
	cp.mu.RLock()
	defer cp.mu.RUnlock()
	return cp.pool.Workers()
}

// OptionVotes tallies option votes for a choice-type task.
func (cp *ConcurrentPool) OptionVotes(id TaskID) []int {
	cp.mu.RLock()
	defer cp.mu.RUnlock()
	return cp.pool.OptionVotes(id)
}
