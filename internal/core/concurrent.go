package core

import (
	"sync"
	"sync/atomic"
	"time"
)

// ConcurrentPool makes a Pool safe for concurrent use by guarding it with
// an RWMutex: reads (task lookup, eligibility scans, statistics, assigner
// runs) proceed in parallel, while mutations (Add, Record, Close) take the
// write lock. The single-threaded Pool keeps its lock-free API for the
// simulator hot loops; the serving layer wraps it here.
//
// The wrapper also maintains a monotonically increasing version counter,
// bumped on every successful mutation. Consumers that derive expensive
// state from the pool (e.g. EM truth inference behind /api/results) key
// their caches on Version: an unchanged version proves the answer set is
// unchanged, so the cached result is still exact.
type ConcurrentPool struct {
	mu      sync.RWMutex
	pool    *Pool
	version atomic.Uint64
	// journal, when set, observes mutations under the write lock so a
	// durability layer sees them in application order. See Journal.
	journal Journal
}

// NewConcurrentPool wraps p (a fresh empty pool when nil). The wrapped
// pool must not be mutated directly while the wrapper is in use; read-only
// access from other goroutines remains safe as long as no one bypasses the
// wrapper for writes.
func NewConcurrentPool(p *Pool) *ConcurrentPool {
	if p == nil {
		p = NewPool()
	}
	return &ConcurrentPool{pool: p}
}

// Version returns the current mutation counter. Two equal observations
// bracket a window in which the pool's tasks and answers did not change.
func (cp *ConcurrentPool) Version() uint64 { return cp.version.Load() }

// SetJournal attaches a mutation journal. It must be called before the
// pool is shared between goroutines (journal installation itself is not
// synchronized); pass nil to detach. Answer recording is not journaled
// here — see the Journal docs.
func (cp *ConcurrentPool) SetJournal(j Journal) { cp.journal = j }

// Add registers a task under the write lock.
func (cp *ConcurrentPool) Add(t *Task) (TaskID, error) {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	id, err := cp.pool.Add(t)
	if err == nil {
		cp.version.Add(1)
		if cp.journal != nil {
			cp.journal.TaskAdded(t)
		}
	}
	return id, err
}

// Record stores an answer under the write lock; the version is bumped only
// when the platform rules accept the answer.
func (cp *ConcurrentPool) Record(a Answer) error {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	if err := cp.pool.Record(a); err != nil {
		return err
	}
	cp.version.Add(1)
	return nil
}

// RecordAll stores a batch of answers under one write-lock acquisition,
// applying the same platform rules as Record to each. The returned slice
// is index-aligned with as: nil for accepted answers, the rejection
// otherwise. The version is bumped once when at least one answer was
// accepted — the point of batching is to pay the lock and the cache
// invalidation once per batch instead of once per answer.
func (cp *ConcurrentPool) RecordAll(as []Answer) []error {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	errs := make([]error, len(as))
	accepted := 0
	for i := range as {
		if err := cp.pool.Record(as[i]); err != nil {
			errs[i] = err
		} else {
			accepted++
		}
	}
	if accepted > 0 {
		cp.version.Add(1)
	}
	return errs
}

// Unrecord removes the most recent answer equal to a under the write
// lock, reporting whether one was found. The version is bumped on
// success: consumers may have cached state derived from the answer set
// that included a, and that set just changed again.
func (cp *ConcurrentPool) Unrecord(a Answer) bool {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	ok := cp.pool.Unrecord(a)
	if ok {
		cp.version.Add(1)
	}
	return ok
}

// Close marks a task as finished under the write lock.
func (cp *ConcurrentPool) Close(id TaskID) {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	cp.pool.Close(id)
	cp.version.Add(1)
	if cp.journal != nil {
		cp.journal.TaskClosed(id)
	}
}

// Assign runs an assignment policy against the pool under the read lock.
// Assigners only read pool state, so concurrent assignments for different
// workers proceed in parallel.
func (cp *ConcurrentPool) Assign(a Assigner, worker string) (TaskID, bool) {
	cp.mu.RLock()
	defer cp.mu.RUnlock()
	return a.Assign(cp.pool, worker)
}

// AssignLease atomically runs the assignment policy and records a lease on
// the chosen task until deadline. It takes the write lock (the lease is a
// mutation, and choosing + leasing must be one atomic step so two workers
// cannot race past each other's in-flight counts).
//
// Lease bookkeeping deliberately does NOT bump the version counter: leases
// never change the answer set, and bumping on every assignment would
// invalidate the /api/results inference cache on each /api/task poll.
func (cp *ConcurrentPool) AssignLease(a Assigner, worker string, deadline time.Time) (TaskID, bool) {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	id, ok := a.Assign(cp.pool, worker)
	if !ok {
		return 0, false
	}
	if err := cp.pool.Lease(id, worker, deadline); err != nil {
		// The assigner returned an unknown or closed task; treat it as no
		// assignment rather than handing out an untracked slot.
		return 0, false
	}
	if cp.journal != nil {
		cp.journal.LeaseIssued(Lease{Task: id, Worker: worker, Deadline: deadline})
	}
	return id, true
}

// assignLeaseFresh is AssignLease that refuses an assignment merely
// extending a lease the worker already holds. The sharded facade uses it
// for its first scan: a shard whose only offer for this worker is a
// re-extension should not stop the scan while another shard still has
// fresh work.
func (cp *ConcurrentPool) assignLeaseFresh(a Assigner, worker string, deadline time.Time) (TaskID, bool) {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	id, ok := a.Assign(cp.pool, worker)
	if !ok || cp.pool.HasLease(worker, id) {
		return 0, false
	}
	if err := cp.pool.Lease(id, worker, deadline); err != nil {
		return 0, false
	}
	if cp.journal != nil {
		cp.journal.LeaseIssued(Lease{Task: id, Worker: worker, Deadline: deadline})
	}
	return id, true
}

// ExpireLeases sweeps leases past their deadline under the write lock and
// returns the reclaimed assignments. Like AssignLease, it does not bump
// the version counter.
func (cp *ConcurrentPool) ExpireLeases(now time.Time) []Lease {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	exp := cp.pool.ExpireLeases(now)
	if len(exp) > 0 && cp.journal != nil {
		cp.journal.LeasesExpired(exp)
	}
	return exp
}

// ActiveLeases returns the total number of outstanding leases.
func (cp *ConcurrentPool) ActiveLeases() int {
	cp.mu.RLock()
	defer cp.mu.RUnlock()
	return cp.pool.ActiveLeases()
}

// LeaseCount returns the number of outstanding leases on a task.
func (cp *ConcurrentPool) LeaseCount(id TaskID) int {
	cp.mu.RLock()
	defer cp.mu.RUnlock()
	return cp.pool.LeaseCount(id)
}

// HasLease reports whether the worker holds a lease on the task.
func (cp *ConcurrentPool) HasLease(worker string, id TaskID) bool {
	cp.mu.RLock()
	defer cp.mu.RUnlock()
	return cp.pool.HasLease(worker, id)
}

// InFlight returns committed answers plus outstanding leases for a task.
func (cp *ConcurrentPool) InFlight(id TaskID) int {
	cp.mu.RLock()
	defer cp.mu.RUnlock()
	return cp.pool.InFlight(id)
}

// View runs fn with the read lock held, giving it a consistent snapshot of
// the pool across multiple calls. fn must not mutate the pool and must not
// retain references to its internal slices past the call.
func (cp *ConcurrentPool) View(fn func(p *Pool)) {
	cp.mu.RLock()
	defer cp.mu.RUnlock()
	fn(cp.pool)
}

// Task returns the task with the given id, or nil. Tasks are immutable
// once added, so the returned pointer is safe to read without the lock.
func (cp *ConcurrentPool) Task(id TaskID) *Task {
	cp.mu.RLock()
	defer cp.mu.RUnlock()
	return cp.pool.Task(id)
}

// Len returns the number of tasks.
func (cp *ConcurrentPool) Len() int {
	cp.mu.RLock()
	defer cp.mu.RUnlock()
	return cp.pool.Len()
}

// TaskIDs returns a copy of the task ids in insertion order.
func (cp *ConcurrentPool) TaskIDs() []TaskID {
	cp.mu.RLock()
	defer cp.mu.RUnlock()
	out := make([]TaskID, len(cp.pool.TaskIDs()))
	copy(out, cp.pool.TaskIDs())
	return out
}

// Answers returns a copy of the answers recorded for a task.
func (cp *ConcurrentPool) Answers(id TaskID) []Answer {
	cp.mu.RLock()
	defer cp.mu.RUnlock()
	src := cp.pool.Answers(id)
	if src == nil {
		return nil
	}
	out := make([]Answer, len(src))
	copy(out, src)
	return out
}

// AnswerCount returns the number of answers for a task.
func (cp *ConcurrentPool) AnswerCount(id TaskID) int {
	cp.mu.RLock()
	defer cp.mu.RUnlock()
	return cp.pool.AnswerCount(id)
}

// TotalAnswers returns the number of answers across all tasks.
func (cp *ConcurrentPool) TotalAnswers() int {
	cp.mu.RLock()
	defer cp.mu.RUnlock()
	return cp.pool.TotalAnswers()
}

// HasAnswered reports whether the worker already answered the task.
func (cp *ConcurrentPool) HasAnswered(worker string, id TaskID) bool {
	cp.mu.RLock()
	defer cp.mu.RUnlock()
	return cp.pool.HasAnswered(worker, id)
}

// Closed reports whether the task has been closed.
func (cp *ConcurrentPool) Closed(id TaskID) bool {
	cp.mu.RLock()
	defer cp.mu.RUnlock()
	return cp.pool.Closed(id)
}

// OpenTasks returns the ids of tasks that are not closed.
func (cp *ConcurrentPool) OpenTasks() []TaskID {
	cp.mu.RLock()
	defer cp.mu.RUnlock()
	return cp.pool.OpenTasks()
}

// EligibleFor returns open tasks the worker has not answered yet.
func (cp *ConcurrentPool) EligibleFor(worker string) []TaskID {
	cp.mu.RLock()
	defer cp.mu.RUnlock()
	return cp.pool.EligibleFor(worker)
}

// Workers returns the sorted ids of all workers that answered.
func (cp *ConcurrentPool) Workers() []string {
	cp.mu.RLock()
	defer cp.mu.RUnlock()
	return cp.pool.Workers()
}

// OptionVotes tallies option votes for a choice-type task.
func (cp *ConcurrentPool) OptionVotes(id TaskID) []int {
	cp.mu.RLock()
	defer cp.mu.RUnlock()
	return cp.pool.OptionVotes(id)
}
