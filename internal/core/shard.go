package core

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// ShardIndex maps a task to one of n shards by hashing its ID (splitmix64
// finalizer, so dense sequential IDs spread evenly instead of clustering).
// Every layer that partitions by task — the sharded serving pool, the
// segmented WAL — must use this same function, so a task's answers, its
// lock, and its journal segment always agree.
func ShardIndex(id TaskID, n int) int {
	if n <= 1 {
		return 0
	}
	x := uint64(id)
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return int(x % uint64(n))
}

// SplitPool partitions p into n pools by ShardIndex of each task, deep-
// copying the bookkeeping (answers, per-worker counts, closed flags,
// leases) so the shards and the source never alias mutable state. Task
// pointers are shared — tasks are immutable once added. Relative insertion
// order is preserved within each shard.
func SplitPool(p *Pool, n int) []*Pool {
	out := make([]*Pool, n)
	for i := range out {
		out[i] = NewPool()
		out[i].nextID = p.nextID
	}
	for _, id := range p.order {
		sp := out[ShardIndex(id, n)]
		sp.tasks[id] = p.tasks[id]
		sp.order = append(sp.order, id)
		if as := p.answers[id]; len(as) > 0 {
			sp.answers[id] = append([]Answer(nil), as...)
		}
		if p.closed[id] {
			sp.closed[id] = true
		}
		if m := p.leases[id]; len(m) > 0 {
			cm := make(map[string]time.Time, len(m))
			for w, d := range m {
				cm[w] = d
				sp.pushLeaseEntry(leaseEntry{deadline: d, task: id, worker: w})
			}
			sp.leases[id] = cm
		}
	}
	for w, m := range p.perWorker {
		for id, c := range m {
			sp := out[ShardIndex(id, n)]
			wt := sp.perWorker[w]
			if wt == nil {
				wt = make(map[TaskID]int)
				sp.perWorker[w] = wt
			}
			wt[id] = c
		}
	}
	return out
}

// MergePools combines disjoint pools (e.g. the shards of a SplitPool, or
// the per-segment replicas of a segmented WAL) into one pool ordered by
// ascending task ID — the deterministic order a sharded deployment
// presents regardless of how adds interleaved across shards. A single
// input is deep-copied with its insertion order intact, so the unsharded
// path round-trips byte-identically.
func MergePools(pools []*Pool) *Pool {
	if len(pools) == 1 {
		return pools[0].Clone()
	}
	out := NewPool()
	owner := make(map[TaskID]*Pool)
	ids := make([]TaskID, 0)
	for _, p := range pools {
		for _, id := range p.order {
			owner[id] = p
			ids = append(ids, id)
		}
		if p.nextID > out.nextID {
			out.nextID = p.nextID
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		p := owner[id]
		out.tasks[id] = p.tasks[id]
		out.order = append(out.order, id)
		if as := p.answers[id]; len(as) > 0 {
			out.answers[id] = append([]Answer(nil), as...)
		}
		if p.closed[id] {
			out.closed[id] = true
		}
		if m := p.leases[id]; len(m) > 0 {
			cm := make(map[string]time.Time, len(m))
			for w, d := range m {
				cm[w] = d
				out.pushLeaseEntry(leaseEntry{deadline: d, task: id, worker: w})
			}
			out.leases[id] = cm
		}
	}
	for _, p := range pools {
		for w, m := range p.perWorker {
			wt := out.perWorker[w]
			if wt == nil {
				wt = make(map[TaskID]int, len(m))
				out.perWorker[w] = wt
			}
			for id, c := range m {
				wt[id] = c
			}
		}
	}
	return out
}

// ShardedPool partitions the serving pool into task-hash shards, each its
// own ConcurrentPool with its own RWMutex, version counter, lease heap,
// and journal hook — so writes to different shards never contend on one
// lock and throughput scales with cores. The facade preserves the
// ConcurrentPool API and its contracts: per-task calls route by
// ShardIndex, aggregate calls combine the shards, and Version is the sum
// of the shard versions (any mutation bumps exactly one shard, so an
// unchanged sum still proves an unchanged answer set — the /api/results
// cache invariant).
//
// A ShardedPool of one shard delegates every call unchanged, making
// -shards=1 behaviorally identical to the unsharded server.
type ShardedPool struct {
	shards []*ConcurrentPool

	// addMu serializes global task-ID allocation across shards (n > 1
	// only); count tracks total tasks for the ID-0 reassignment quirk.
	addMu  sync.Mutex
	nextID TaskID
	count  atomic.Int64
}

// NewShardedPool wraps p (a fresh empty pool when nil) into n shards.
// n <= 1 wraps p directly in a single shard; n > 1 splits the pool's
// current contents by task hash. As with NewConcurrentPool, the wrapped
// pool must not be mutated directly afterwards.
func NewShardedPool(p *Pool, n int) *ShardedPool {
	if p == nil {
		p = NewPool()
	}
	if n <= 1 {
		return &ShardedPool{shards: []*ConcurrentPool{NewConcurrentPool(p)}}
	}
	parts := SplitPool(p, n)
	sp := &ShardedPool{shards: make([]*ConcurrentPool, n), nextID: p.nextID}
	for i, part := range parts {
		sp.shards[i] = NewConcurrentPool(part)
	}
	sp.count.Store(int64(p.Len()))
	return sp
}

// NumShards returns the shard count.
func (sp *ShardedPool) NumShards() int { return len(sp.shards) }

// ShardFor returns the shard index owning the task. Pure function of the
// ID — callers may use it without any lock.
func (sp *ShardedPool) ShardFor(id TaskID) int { return ShardIndex(id, len(sp.shards)) }

// shardOf returns the ConcurrentPool owning the task.
func (sp *ShardedPool) shardOf(id TaskID) *ConcurrentPool {
	return sp.shards[ShardIndex(id, len(sp.shards))]
}

// workerShard picks the shard an assignment scan starts from: FNV-1a of
// the worker ID, so concurrent workers fan out across shards instead of
// convoying on shard 0.
func (sp *ShardedPool) workerShard(worker string) int {
	if len(sp.shards) == 1 {
		return 0
	}
	h := uint64(14695981039346656037)
	for i := 0; i < len(worker); i++ {
		h ^= uint64(worker[i])
		h *= 1099511628211
	}
	return int(h % uint64(len(sp.shards)))
}

// Version returns the sum of the shard mutation counters. Monotonically
// non-decreasing; two equal observations bracket a window with no task or
// answer mutations on any shard.
func (sp *ShardedPool) Version() uint64 {
	var v uint64
	for _, s := range sp.shards {
		v += s.Version()
	}
	return v
}

// SetJournal attaches the mutation journal to every shard. As with
// ConcurrentPool.SetJournal, call before the pool is shared between
// goroutines. The journal's hooks run under the mutating shard's write
// lock; a shard-aware journal (the segmented WAL) routes by task hash and
// therefore never serializes two shards on one journal lock.
func (sp *ShardedPool) SetJournal(j Journal) {
	for _, s := range sp.shards {
		s.SetJournal(j)
	}
}

// Add registers a task: the facade allocates a globally unique ID
// (mirroring Pool.Add's assignment rules), then routes the task to its
// shard.
func (sp *ShardedPool) Add(t *Task) (TaskID, error) {
	if len(sp.shards) == 1 {
		id, err := sp.shards[0].Add(t)
		if err == nil {
			sp.count.Add(1)
		}
		return id, err
	}
	sp.addMu.Lock()
	if sp.shardOf(t.ID).Task(t.ID) != nil || t.ID == 0 && sp.count.Load() > 0 {
		t.ID = sp.nextID
	}
	if t.ID >= sp.nextID {
		sp.nextID = t.ID + 1
	} else if t.ID == 0 {
		t.ID = sp.nextID
		sp.nextID++
	}
	sp.addMu.Unlock()
	id, err := sp.shardOf(t.ID).Add(t)
	if err == nil {
		sp.count.Add(1)
	}
	return id, err
}

// Record stores an answer on the owning shard.
func (sp *ShardedPool) Record(a Answer) error { return sp.shardOf(a.Task).Record(a) }

// RecordBatch stores a batch of answers that all belong to the given
// shard under one write-lock acquisition; see ConcurrentPool.RecordAll.
// Callers group answers with ShardFor first — that is what makes batch
// ingestion pay one lock and one journal append per touched shard.
func (sp *ShardedPool) RecordBatch(shard int, as []Answer) []error {
	return sp.shards[shard].RecordAll(as)
}

// Unrecord removes the most recent answer equal to a from its shard.
func (sp *ShardedPool) Unrecord(a Answer) bool { return sp.shardOf(a.Task).Unrecord(a) }

// Close marks a task as finished on its shard.
func (sp *ShardedPool) Close(id TaskID) { sp.shardOf(id).Close(id) }

// Assign runs the assignment policy shard by shard, starting from the
// worker's home shard, until one yields a task. Each attempt holds only
// that shard's read lock, so assignments for different workers proceed in
// parallel even across mutating shards.
func (sp *ShardedPool) Assign(a Assigner, worker string) (TaskID, bool) {
	start := sp.workerShard(worker)
	for i := 0; i < len(sp.shards); i++ {
		if id, ok := sp.shards[(start+i)%len(sp.shards)].Assign(a, worker); ok {
			return id, true
		}
	}
	return 0, false
}

// AssignLease atomically assigns and leases on the first shard that
// yields a task, holding only that shard's write lock. The scan runs in
// two passes: first it only accepts tasks the worker does not already
// hold a lease on — otherwise a worker's home shard would keep extending
// the same few leases and fresh tasks on later shards would never be
// reached — and only when every shard is out of fresh work does it fall
// back to a plain pass, so a worker polling past the pool size still
// extends its leases exactly as on the unsharded pool.
func (sp *ShardedPool) AssignLease(a Assigner, worker string, deadline time.Time) (TaskID, bool) {
	if len(sp.shards) == 1 {
		return sp.shards[0].AssignLease(a, worker, deadline)
	}
	start := sp.workerShard(worker)
	for i := 0; i < len(sp.shards); i++ {
		if id, ok := sp.shards[(start+i)%len(sp.shards)].assignLeaseFresh(a, worker, deadline); ok {
			return id, true
		}
	}
	for i := 0; i < len(sp.shards); i++ {
		if id, ok := sp.shards[(start+i)%len(sp.shards)].AssignLease(a, worker, deadline); ok {
			return id, true
		}
	}
	return 0, false
}

// ExpireLeases sweeps every shard and returns the reclaimed assignments
// in deterministic (task, worker) order across shards.
func (sp *ShardedPool) ExpireLeases(now time.Time) []Lease {
	if len(sp.shards) == 1 {
		return sp.shards[0].ExpireLeases(now)
	}
	var out []Lease
	for _, s := range sp.shards {
		out = append(out, s.ExpireLeases(now)...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Task != out[j].Task {
			return out[i].Task < out[j].Task
		}
		return out[i].Worker < out[j].Worker
	})
	return out
}

// ActiveLeases returns the total outstanding leases across shards.
func (sp *ShardedPool) ActiveLeases() int {
	n := 0
	for _, s := range sp.shards {
		n += s.ActiveLeases()
	}
	return n
}

// LeaseCount returns the number of outstanding leases on a task.
func (sp *ShardedPool) LeaseCount(id TaskID) int { return sp.shardOf(id).LeaseCount(id) }

// HasLease reports whether the worker holds a lease on the task.
func (sp *ShardedPool) HasLease(worker string, id TaskID) bool {
	return sp.shardOf(id).HasLease(worker, id)
}

// InFlight returns committed answers plus outstanding leases for a task.
func (sp *ShardedPool) InFlight(id TaskID) int { return sp.shardOf(id).InFlight(id) }

// ViewAll runs fn with every shard's read lock held (acquired in shard
// order), giving it a consistent cross-shard snapshot: no mutation can
// land on any shard while fn runs, so Version observed inside fn is exact
// for the whole view. fn receives the shard pools indexed by shard; it
// must not mutate them or retain references past the call. This is the
// sharded replacement for ConcurrentPool.View on paths (stats, results)
// that need global consistency.
func (sp *ShardedPool) ViewAll(fn func(pools []*Pool)) {
	for _, s := range sp.shards {
		s.mu.RLock()
	}
	defer func() {
		for i := len(sp.shards) - 1; i >= 0; i-- {
			sp.shards[i].mu.RUnlock()
		}
	}()
	pools := make([]*Pool, len(sp.shards))
	for i, s := range sp.shards {
		pools[i] = s.pool
	}
	fn(pools)
}

// EnableDeltaLog turns on the per-shard answer-append log with the given
// per-shard capacity, making ViewDelta's incremental accessors available
// from each shard's current version onward. See
// ConcurrentPool.EnableAnswerLog.
func (sp *ShardedPool) EnableDeltaLog(capacity int) {
	for _, s := range sp.shards {
		s.EnableAnswerLog(capacity)
	}
}

// DeltaView is the read surface ViewDelta hands to its callback: the
// shard pools and versions of a consistent cross-shard snapshot, plus
// incremental accessors over each shard's answer log. Valid only inside
// the callback.
type DeltaView struct {
	// Pools holds the shard pools indexed by shard, exactly as ViewAll
	// passes them; callers must not mutate them or retain references.
	Pools []*Pool
	// Versions holds each shard's version at the snapshot.
	Versions []uint64
	sp       *ShardedPool
}

// Version returns the aggregate pool version of the snapshot (the sum of
// the shard versions, matching ShardedPool.Version).
func (v *DeltaView) Version() uint64 {
	var sum uint64
	for _, sv := range v.Versions {
		sum += sv
	}
	return sum
}

// CanDelta reports whether the shard's answer log fully covers the window
// from version `since` to the snapshot: no trim ate the window's start
// and no structural mutation (task add, answer removal) landed inside it.
func (v *DeltaView) CanDelta(shard int, since uint64) bool {
	return v.sp.shards[shard].canDeltaLocked(since)
}

// AppendedSince appends to dst the answers the shard accepted after
// version `since`, in application order, reporting whether the log
// covered the window (false means the caller must fall back to a full
// snapshot).
func (v *DeltaView) AppendedSince(shard int, since uint64, dst []Answer) ([]Answer, bool) {
	return v.sp.shards[shard].appendedSinceLocked(since, dst)
}

// ViewDelta is ViewAll plus incremental access: fn runs with every
// shard's read lock held and receives a DeltaView exposing the shard
// pools, the exact per-shard versions of the snapshot, and the answers
// appended since a caller-remembered older snapshot. An incremental
// results pipeline snapshots {Versions, delta answers} here, then builds
// datasets and runs inference outside the locks.
func (sp *ShardedPool) ViewDelta(fn func(v *DeltaView)) {
	for _, s := range sp.shards {
		s.mu.RLock()
	}
	defer func() {
		for i := len(sp.shards) - 1; i >= 0; i-- {
			sp.shards[i].mu.RUnlock()
		}
	}()
	v := &DeltaView{
		Pools:    make([]*Pool, len(sp.shards)),
		Versions: make([]uint64, len(sp.shards)),
		sp:       sp,
	}
	for i, s := range sp.shards {
		v.Pools[i] = s.pool
		v.Versions[i] = s.version.Load()
	}
	fn(v)
}

// Task returns the task with the given id, or nil.
func (sp *ShardedPool) Task(id TaskID) *Task { return sp.shardOf(id).Task(id) }

// Len returns the number of tasks across shards.
func (sp *ShardedPool) Len() int {
	n := 0
	for _, s := range sp.shards {
		n += s.Len()
	}
	return n
}

// TaskIDs returns every task id: insertion order for a single shard
// (matching ConcurrentPool), ascending ID order across multiple shards.
func (sp *ShardedPool) TaskIDs() []TaskID {
	if len(sp.shards) == 1 {
		return sp.shards[0].TaskIDs()
	}
	var out []TaskID
	for _, s := range sp.shards {
		out = append(out, s.TaskIDs()...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Answers returns a copy of the answers recorded for a task.
func (sp *ShardedPool) Answers(id TaskID) []Answer { return sp.shardOf(id).Answers(id) }

// AnswerCount returns the number of answers for a task.
func (sp *ShardedPool) AnswerCount(id TaskID) int { return sp.shardOf(id).AnswerCount(id) }

// TotalAnswers returns the number of answers across all shards.
func (sp *ShardedPool) TotalAnswers() int {
	n := 0
	for _, s := range sp.shards {
		n += s.TotalAnswers()
	}
	return n
}

// HasAnswered reports whether the worker already answered the task.
func (sp *ShardedPool) HasAnswered(worker string, id TaskID) bool {
	return sp.shardOf(id).HasAnswered(worker, id)
}

// Closed reports whether the task has been closed.
func (sp *ShardedPool) Closed(id TaskID) bool { return sp.shardOf(id).Closed(id) }

// OpenTasks returns the ids of open tasks: insertion order for a single
// shard, ascending ID order across multiple shards.
func (sp *ShardedPool) OpenTasks() []TaskID {
	if len(sp.shards) == 1 {
		return sp.shards[0].OpenTasks()
	}
	var out []TaskID
	for _, s := range sp.shards {
		out = append(out, s.OpenTasks()...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// EligibleFor returns open tasks the worker has not answered yet, in the
// same order contract as OpenTasks.
func (sp *ShardedPool) EligibleFor(worker string) []TaskID {
	if len(sp.shards) == 1 {
		return sp.shards[0].EligibleFor(worker)
	}
	var out []TaskID
	for _, s := range sp.shards {
		out = append(out, s.EligibleFor(worker)...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Workers returns the sorted ids of all workers that answered on any
// shard.
func (sp *ShardedPool) Workers() []string {
	if len(sp.shards) == 1 {
		return sp.shards[0].Workers()
	}
	seen := make(map[string]bool)
	for _, s := range sp.shards {
		for _, w := range s.Workers() {
			seen[w] = true
		}
	}
	out := make([]string, 0, len(seen))
	for w := range seen {
		out = append(out, w)
	}
	sort.Strings(out)
	return out
}

// OptionVotes tallies option votes for a choice-type task.
func (sp *ShardedPool) OptionVotes(id TaskID) []int { return sp.shardOf(id).OptionVotes(id) }
