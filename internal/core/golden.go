package core

import (
	"sort"
	"sync"
)

// WorkerScreen implements golden-task (hidden test) worker elimination:
// the requester seeds the pool with tasks whose answers are known, tracks
// each worker's accuracy on them, and stops assigning work to workers
// whose golden accuracy falls below a threshold.
//
// This is the "worker elimination" arm of quality control in the survey
// taxonomy, complementary to truth inference (which reweights rather than
// removes workers).
//
// WorkerScreen is safe for concurrent use: Observe and the accuracy
// queries serialize on an internal mutex, so serving handlers may screen
// and score workers from many goroutines. The policy fields
// (MinObservations, MinAccuracy) must not be changed after the screen is
// shared between goroutines.
type WorkerScreen struct {
	// MinObservations is how many golden answers must be seen before a
	// worker can be eliminated (avoids firing good workers on one slip).
	MinObservations int
	// MinAccuracy is the golden-task accuracy below which a worker is
	// eliminated.
	MinAccuracy float64

	mu      sync.Mutex
	correct map[string]int
	total   map[string]int
}

// NewWorkerScreen returns a screen with the given elimination policy.
func NewWorkerScreen(minObs int, minAcc float64) *WorkerScreen {
	if minObs < 1 {
		minObs = 1
	}
	return &WorkerScreen{
		MinObservations: minObs,
		MinAccuracy:     minAcc,
		correct:         make(map[string]int),
		total:           make(map[string]int),
	}
}

// Observe records the outcome of one golden task for the worker. It
// reports whether this observation newly eliminated the worker (false when
// the worker was already eliminated or is still in good standing), so
// callers can journal or log the elimination transition.
func (s *WorkerScreen) Observe(worker string, correct bool) (newlyEliminated bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	before := s.eliminatedLocked(worker)
	s.total[worker]++
	if correct {
		s.correct[worker]++
	}
	return !before && s.eliminatedLocked(worker)
}

// Unobserve reverses one Observe call: the serving layer rolls back a
// golden observation whose answer failed to journal, so the screen's
// tallies (and any elimination they implied) match what recovery will
// rebuild from disk. Tallies never go negative.
func (s *WorkerScreen) Unobserve(worker string, correct bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.total[worker] > 0 {
		s.total[worker]--
	}
	if correct && s.correct[worker] > 0 {
		s.correct[worker]--
	}
}

// ScreenTally is one worker's golden-task record, exported for snapshots.
type ScreenTally struct {
	Correct int `json:"correct"`
	Total   int `json:"total"`
}

// Export returns a copy of every observed worker's tally, for durability
// snapshots. Eliminations are derived state and are not part of the
// export: restoring the tallies restores them exactly.
func (s *WorkerScreen) Export() map[string]ScreenTally {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]ScreenTally, len(s.total))
	for w, n := range s.total {
		out[w] = ScreenTally{Correct: s.correct[w], Total: n}
	}
	return out
}

// Restore overwrites the screen's tallies with a recovered export. The
// elimination policy (MinObservations, MinAccuracy) is configuration, not
// state, and is left untouched. Recovery only — call before the screen is
// shared between goroutines.
func (s *WorkerScreen) Restore(tallies map[string]ScreenTally) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.correct = make(map[string]int, len(tallies))
	s.total = make(map[string]int, len(tallies))
	for w, t := range tallies {
		s.correct[w] = t.Correct
		s.total[w] = t.Total
	}
}

// Accuracy returns the worker's observed golden accuracy and the number of
// observations. A worker never observed has accuracy 1 (benefit of the
// doubt) and count 0.
func (s *WorkerScreen) Accuracy(worker string) (float64, int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.accuracyLocked(worker)
}

func (s *WorkerScreen) accuracyLocked(worker string) (float64, int) {
	n := s.total[worker]
	if n == 0 {
		return 1, 0
	}
	return float64(s.correct[worker]) / float64(n), n
}

// Eliminated reports whether the worker has enough observations and too
// low an accuracy to keep working.
func (s *WorkerScreen) Eliminated(worker string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.eliminatedLocked(worker)
}

func (s *WorkerScreen) eliminatedLocked(worker string) bool {
	acc, n := s.accuracyLocked(worker)
	return n >= s.MinObservations && acc < s.MinAccuracy
}

// EliminatedWorkers returns the sorted ids of all eliminated workers.
func (s *WorkerScreen) EliminatedWorkers() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []string
	for w := range s.total {
		if s.eliminatedLocked(w) {
			out = append(out, w)
		}
	}
	sort.Strings(out)
	return out
}
