package core

import (
	"sort"
	"sync"
)

// WorkerScreen implements golden-task (hidden test) worker elimination:
// the requester seeds the pool with tasks whose answers are known, tracks
// each worker's accuracy on them, and stops assigning work to workers
// whose golden accuracy falls below a threshold.
//
// This is the "worker elimination" arm of quality control in the survey
// taxonomy, complementary to truth inference (which reweights rather than
// removes workers).
//
// WorkerScreen is safe for concurrent use: Observe and the accuracy
// queries serialize on an internal mutex, so serving handlers may screen
// and score workers from many goroutines. The policy fields
// (MinObservations, MinAccuracy) must not be changed after the screen is
// shared between goroutines.
type WorkerScreen struct {
	// MinObservations is how many golden answers must be seen before a
	// worker can be eliminated (avoids firing good workers on one slip).
	MinObservations int
	// MinAccuracy is the golden-task accuracy below which a worker is
	// eliminated.
	MinAccuracy float64

	mu      sync.Mutex
	correct map[string]int
	total   map[string]int
}

// NewWorkerScreen returns a screen with the given elimination policy.
func NewWorkerScreen(minObs int, minAcc float64) *WorkerScreen {
	if minObs < 1 {
		minObs = 1
	}
	return &WorkerScreen{
		MinObservations: minObs,
		MinAccuracy:     minAcc,
		correct:         make(map[string]int),
		total:           make(map[string]int),
	}
}

// Observe records the outcome of one golden task for the worker.
func (s *WorkerScreen) Observe(worker string, correct bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.total[worker]++
	if correct {
		s.correct[worker]++
	}
}

// Accuracy returns the worker's observed golden accuracy and the number of
// observations. A worker never observed has accuracy 1 (benefit of the
// doubt) and count 0.
func (s *WorkerScreen) Accuracy(worker string) (float64, int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.accuracyLocked(worker)
}

func (s *WorkerScreen) accuracyLocked(worker string) (float64, int) {
	n := s.total[worker]
	if n == 0 {
		return 1, 0
	}
	return float64(s.correct[worker]) / float64(n), n
}

// Eliminated reports whether the worker has enough observations and too
// low an accuracy to keep working.
func (s *WorkerScreen) Eliminated(worker string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.eliminatedLocked(worker)
}

func (s *WorkerScreen) eliminatedLocked(worker string) bool {
	acc, n := s.accuracyLocked(worker)
	return n >= s.MinObservations && acc < s.MinAccuracy
}

// EliminatedWorkers returns the sorted ids of all eliminated workers.
func (s *WorkerScreen) EliminatedWorkers() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []string
	for w := range s.total {
		if s.eliminatedLocked(w) {
			out = append(out, w)
		}
	}
	sort.Strings(out)
	return out
}
