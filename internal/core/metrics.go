package core

import (
	"strconv"

	"repro/internal/obs"
)

// RegisterMetrics publishes the budget's accounting as callback gauges:
//
//	crowdkit_budget_spent_units      units spent so far
//	crowdkit_budget_remaining_units  units left (-1 = unlimited)
//
// Callback gauges are evaluated at scrape time only, so registration adds
// zero cost to the charge/refund hot path. No-op on a nil registry.
func (b *Budget) RegisterMetrics(reg *obs.Registry) {
	reg.GaugeFunc("crowdkit_budget_spent_units", b.Spent)
	reg.GaugeFunc("crowdkit_budget_remaining_units", b.Remaining)
}

// RegisterMetrics publishes the pool's shape as callback gauges:
//
//	crowdkit_pool_tasks          registered tasks
//	crowdkit_pool_open_tasks     tasks still accepting answers
//	crowdkit_pool_answers        committed answers across all tasks
//	crowdkit_pool_active_leases  outstanding (issued, unconsumed) leases
//	crowdkit_pool_in_flight      answers + leases (what assigners balance on)
//	crowdkit_pool_version        mutation counter (cache-invalidation epoch)
//
// Each callback takes the pool read lock when scraped; nothing is added
// to the assignment or recording paths. No-op on a nil registry.
func (cp *ConcurrentPool) RegisterMetrics(reg *obs.Registry) {
	reg.GaugeFunc("crowdkit_pool_tasks", func() float64 { return float64(cp.Len()) })
	reg.GaugeFunc("crowdkit_pool_open_tasks", func() float64 { return float64(len(cp.OpenTasks())) })
	reg.GaugeFunc("crowdkit_pool_answers", func() float64 { return float64(cp.TotalAnswers()) })
	reg.GaugeFunc("crowdkit_pool_active_leases", func() float64 { return float64(cp.ActiveLeases()) })
	reg.GaugeFunc("crowdkit_pool_in_flight", func() float64 {
		var n int
		cp.View(func(p *Pool) { n = p.TotalAnswers() + p.ActiveLeases() })
		return float64(n)
	})
	reg.GaugeFunc("crowdkit_pool_version", func() float64 { return float64(cp.Version()) })
}

// RegisterMetrics publishes the sharded pool's shape under the same gauge
// names ConcurrentPool uses (aggregated across shards, so dashboards work
// unchanged), plus per-shard breakdowns labeled by shard index:
//
//	crowdkit_shard_tasks{shard="i"}          tasks owned by shard i
//	crowdkit_shard_answers{shard="i"}        committed answers on shard i
//	crowdkit_shard_active_leases{shard="i"}  outstanding leases on shard i
//	crowdkit_shard_version{shard="i"}        shard i's mutation counter
//
// The per-shard gauges make routing skew visible: a hot shard shows up as
// one label outrunning the others. No-op on a nil registry.
func (sp *ShardedPool) RegisterMetrics(reg *obs.Registry) {
	reg.GaugeFunc("crowdkit_pool_tasks", func() float64 { return float64(sp.Len()) })
	reg.GaugeFunc("crowdkit_pool_open_tasks", func() float64 { return float64(len(sp.OpenTasks())) })
	reg.GaugeFunc("crowdkit_pool_answers", func() float64 { return float64(sp.TotalAnswers()) })
	reg.GaugeFunc("crowdkit_pool_active_leases", func() float64 { return float64(sp.ActiveLeases()) })
	reg.GaugeFunc("crowdkit_pool_in_flight", func() float64 {
		var n int
		sp.ViewAll(func(pools []*Pool) {
			for _, p := range pools {
				n += p.TotalAnswers() + p.ActiveLeases()
			}
		})
		return float64(n)
	})
	reg.GaugeFunc("crowdkit_pool_version", func() float64 { return float64(sp.Version()) })
	reg.GaugeFunc("crowdkit_pool_shards", func() float64 { return float64(sp.NumShards()) })
	if sp.NumShards() == 1 {
		return
	}
	for i, s := range sp.shards {
		s := s
		label := obs.L("shard", strconv.Itoa(i))
		reg.GaugeFunc("crowdkit_shard_tasks", func() float64 { return float64(s.Len()) }, label)
		reg.GaugeFunc("crowdkit_shard_answers", func() float64 { return float64(s.TotalAnswers()) }, label)
		reg.GaugeFunc("crowdkit_shard_active_leases", func() float64 { return float64(s.ActiveLeases()) }, label)
		reg.GaugeFunc("crowdkit_shard_version", func() float64 { return float64(s.Version()) }, label)
	}
}
