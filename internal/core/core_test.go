package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// scriptedWorker answers every choice task with a fixed option and every
// text task with a fixed string.
type scriptedWorker struct {
	id      string
	option  int
	text    string
	latency float64
}

func (w *scriptedWorker) ID() string { return w.id }

func (w *scriptedWorker) Work(t *Task) Response {
	return Response{Option: w.option, Text: w.text, Latency: w.latency}
}

// truthfulWorker answers with the task's planted ground truth.
type truthfulWorker struct{ id string }

func (w *truthfulWorker) ID() string { return w.id }

func (w *truthfulWorker) Work(t *Task) Response {
	return Response{Option: t.GroundTruth, Text: t.GroundTruthText, Score: t.GroundTruthScore, Latency: 1}
}

func binaryTask(id TaskID, truth int) *Task {
	return &Task{ID: id, Kind: SingleChoice, Options: []string{"no", "yes"}, GroundTruth: truth}
}

// firstOpen assigns the first eligible open task.
var firstOpen = AssignerFunc(func(p *Pool, worker string) (TaskID, bool) {
	el := p.EligibleFor(worker)
	if len(el) == 0 {
		return 0, false
	}
	return el[0], true
})

func TestTaskValidate(t *testing.T) {
	cases := []struct {
		name string
		task Task
		ok   bool
	}{
		{"valid single", *binaryTask(1, 1), true},
		{"one option", Task{Kind: SingleChoice, Options: []string{"a"}, GroundTruth: 0}, false},
		{"truth out of range", Task{Kind: SingleChoice, Options: []string{"a", "b"}, GroundTruth: 5}, false},
		{"truth unset ok", Task{Kind: SingleChoice, Options: []string{"a", "b"}, GroundTruth: -1}, true},
		{"pairwise needs two", Task{Kind: PairwiseComparison, Options: []string{"a", "b", "c"}}, false},
		{"pairwise ok", Task{Kind: PairwiseComparison, Options: []string{"a", "b"}, GroundTruth: 0}, true},
		{"fillin ok", Task{Kind: FillIn, GroundTruthText: "x"}, true},
		{"difficulty range", Task{Kind: FillIn, Difficulty: 1.5}, false},
		{"negative difficulty", Task{Kind: FillIn, Difficulty: -0.1}, false},
	}
	for _, c := range cases {
		err := c.task.Validate()
		if (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestTaskKindString(t *testing.T) {
	kinds := []TaskKind{SingleChoice, MultiChoice, FillIn, Collection, PairwiseComparison, Rating}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Fatalf("kind %d has bad or duplicate name %q", int(k), s)
		}
		seen[s] = true
	}
}

func TestBudgetChargeAndExhaustion(t *testing.T) {
	b := NewBudget(3)
	if !b.Limited() {
		t.Fatal("budget should be limited")
	}
	for i := 0; i < 3; i++ {
		if err := b.Charge(1); err != nil {
			t.Fatalf("charge %d failed: %v", i, err)
		}
	}
	err := b.Charge(1)
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("expected ErrBudgetExhausted, got %v", err)
	}
	if b.Spent() != 3 {
		t.Fatalf("failed charge should not apply: spent = %v", b.Spent())
	}
	if b.Remaining() != 0 {
		t.Fatalf("Remaining = %v", b.Remaining())
	}
	if err := b.Charge(-1); err == nil {
		t.Fatal("negative charge should fail")
	}
}

func TestBudgetUnlimited(t *testing.T) {
	b := Unlimited()
	if b.Limited() {
		t.Fatal("unlimited budget reports limited")
	}
	for i := 0; i < 1000; i++ {
		if err := b.Charge(10); err != nil {
			t.Fatal(err)
		}
	}
	if !b.CanAfford(1e18) {
		t.Fatal("unlimited budget should afford anything")
	}
}

func TestPoolAddAssignsIDs(t *testing.T) {
	p := NewPool()
	id1 := p.MustAdd(&Task{Kind: FillIn})
	id2 := p.MustAdd(&Task{Kind: FillIn})
	if id1 == id2 {
		t.Fatalf("pool reused id %d", id1)
	}
	id5, _ := p.Add(&Task{ID: 50, Kind: FillIn})
	if id5 != 50 {
		t.Fatalf("explicit id not honored: %d", id5)
	}
	idNext := p.MustAdd(&Task{Kind: FillIn})
	if idNext != 51 {
		t.Fatalf("next id after explicit 50 should be 51, got %d", idNext)
	}
	if p.Len() != 4 {
		t.Fatalf("Len = %d", p.Len())
	}
}

func TestPoolAddValidates(t *testing.T) {
	p := NewPool()
	if _, err := p.Add(&Task{Kind: SingleChoice, Options: []string{"only"}}); err == nil {
		t.Fatal("invalid task should be rejected")
	}
}

func TestPoolRecordRules(t *testing.T) {
	p := NewPool()
	id := p.MustAdd(binaryTask(0, 1))
	if err := p.Record(Answer{Task: id, Worker: "w1", Option: 1}); err != nil {
		t.Fatal(err)
	}
	// Duplicate answer from same worker rejected for single-choice.
	if err := p.Record(Answer{Task: id, Worker: "w1", Option: 0}); err == nil {
		t.Fatal("duplicate answer should be rejected")
	}
	// Different worker fine.
	if err := p.Record(Answer{Task: id, Worker: "w2", Option: 0}); err != nil {
		t.Fatal(err)
	}
	// Unknown task rejected.
	if err := p.Record(Answer{Task: 999, Worker: "w1"}); err == nil {
		t.Fatal("unknown task should be rejected")
	}
	// Closed task rejected.
	p.Close(id)
	if err := p.Record(Answer{Task: id, Worker: "w3", Option: 1}); err == nil {
		t.Fatal("closed task should reject answers")
	}
	if p.AnswerCount(id) != 2 || p.TotalAnswers() != 2 {
		t.Fatalf("answer counts wrong: %d, %d", p.AnswerCount(id), p.TotalAnswers())
	}
}

func TestPoolCollectionAllowsRepeatAnswers(t *testing.T) {
	p := NewPool()
	id := p.MustAdd(&Task{Kind: Collection, Question: "name a US state"})
	for i := 0; i < 3; i++ {
		if err := p.Record(Answer{Task: id, Worker: "w1", Option: -1, Text: "state"}); err != nil {
			t.Fatalf("collection repeat answer %d rejected: %v", i, err)
		}
	}
	if p.AnswerCount(id) != 3 {
		t.Fatalf("collection answers = %d", p.AnswerCount(id))
	}
}

func TestPoolEligibleAndOpen(t *testing.T) {
	p := NewPool()
	a := p.MustAdd(binaryTask(0, 1))
	b := p.MustAdd(binaryTask(1, 0))
	if err := p.Record(Answer{Task: a, Worker: "w1", Option: 1}); err != nil {
		t.Fatal(err)
	}
	el := p.EligibleFor("w1")
	if len(el) != 1 || el[0] != b {
		t.Fatalf("EligibleFor(w1) = %v", el)
	}
	p.Close(b)
	if len(p.EligibleFor("w1")) != 0 {
		t.Fatal("closed task should not be eligible")
	}
	open := p.OpenTasks()
	if len(open) != 1 || open[0] != a {
		t.Fatalf("OpenTasks = %v", open)
	}
	if !p.HasAnswered("w1", a) || p.HasAnswered("w2", a) {
		t.Fatal("HasAnswered bookkeeping wrong")
	}
}

func TestPoolOptionVotes(t *testing.T) {
	p := NewPool()
	id := p.MustAdd(binaryTask(0, 1))
	p.Record(Answer{Task: id, Worker: "w1", Option: 1})
	p.Record(Answer{Task: id, Worker: "w2", Option: 1})
	p.Record(Answer{Task: id, Worker: "w3", Option: 0})
	votes := p.OptionVotes(id)
	if votes[0] != 1 || votes[1] != 2 {
		t.Fatalf("votes = %v", votes)
	}
	if p.OptionVotes(999) != nil {
		t.Fatal("votes for unknown task should be nil")
	}
}

func TestPoolWorkersSorted(t *testing.T) {
	p := NewPool()
	id := p.MustAdd(binaryTask(0, 1))
	p.Record(Answer{Task: id, Worker: "zed", Option: 1})
	p.Record(Answer{Task: id, Worker: "ann", Option: 1})
	ws := p.Workers()
	if len(ws) != 2 || ws[0] != "ann" || ws[1] != "zed" {
		t.Fatalf("Workers = %v", ws)
	}
}

func TestPlatformCollectRedundant(t *testing.T) {
	p := NewPool()
	for i := 0; i < 5; i++ {
		p.MustAdd(binaryTask(TaskID(i+1), 1))
	}
	workers := []Worker{
		&truthfulWorker{id: "w1"},
		&truthfulWorker{id: "w2"},
		&truthfulWorker{id: "w3"},
	}
	pl := NewPlatform(p, workers, Unlimited())
	res, err := pl.CollectRedundant(firstOpen, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.AnswersCollected != 15 {
		t.Fatalf("collected %d answers, want 15", res.AnswersCollected)
	}
	for _, id := range p.TaskIDs() {
		if p.AnswerCount(id) != 3 {
			t.Fatalf("task %d has %d answers", id, p.AnswerCount(id))
		}
		if !p.Closed(id) {
			t.Fatalf("task %d not closed after reaching redundancy", id)
		}
	}
	if res.Cost != 15 {
		t.Fatalf("cost = %v", res.Cost)
	}
	if res.Makespan <= 0 {
		t.Fatalf("makespan = %v, want > 0", res.Makespan)
	}
}

func TestPlatformBudgetStopsRun(t *testing.T) {
	p := NewPool()
	for i := 0; i < 10; i++ {
		p.MustAdd(binaryTask(TaskID(i+1), 1))
	}
	pl := NewPlatform(p, []Worker{&truthfulWorker{id: "w1"}}, NewBudget(4))
	_, err := pl.CollectRedundant(firstOpen, 2)
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("expected budget exhaustion, got %v", err)
	}
	if p.TotalAnswers() != 4 {
		t.Fatalf("collected %d answers under budget 4", p.TotalAnswers())
	}
}

func TestPlatformStopsWhenNoEligibleWork(t *testing.T) {
	p := NewPool()
	p.MustAdd(binaryTask(1, 1))
	// One worker cannot provide redundancy 3 alone (one answer per task).
	pl := NewPlatform(p, []Worker{&truthfulWorker{id: "solo"}}, Unlimited())
	res, err := pl.CollectRedundant(firstOpen, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.AnswersCollected != 1 {
		t.Fatalf("collected %d, want 1", res.AnswersCollected)
	}
}

func TestPlatformCollectBudget(t *testing.T) {
	p := NewPool()
	for i := 0; i < 3; i++ {
		p.MustAdd(binaryTask(TaskID(i+1), 1))
	}
	workers := []Worker{&truthfulWorker{id: "w1"}, &truthfulWorker{id: "w2"}}
	pl := NewPlatform(p, workers, NewBudget(5))
	res, err := pl.CollectBudget(firstOpen)
	if err != nil {
		t.Fatal(err)
	}
	if res.AnswersCollected != 5 || res.Cost != 5 {
		t.Fatalf("budget run: answers=%d cost=%v", res.AnswersCollected, res.Cost)
	}
}

func TestWorkerScreenElimination(t *testing.T) {
	s := NewWorkerScreen(3, 0.6)
	// Not enough observations yet.
	s.Observe("spam", false)
	s.Observe("spam", false)
	if s.Eliminated("spam") {
		t.Fatal("eliminated before MinObservations")
	}
	s.Observe("spam", false)
	if !s.Eliminated("spam") {
		t.Fatal("0/3 worker should be eliminated at threshold 0.6")
	}
	for i := 0; i < 5; i++ {
		s.Observe("good", true)
	}
	if s.Eliminated("good") {
		t.Fatal("perfect worker eliminated")
	}
	if acc, n := s.Accuracy("unknown"); acc != 1 || n != 0 {
		t.Fatalf("unknown worker accuracy = %v, %d", acc, n)
	}
	elim := s.EliminatedWorkers()
	if len(elim) != 1 || elim[0] != "spam" {
		t.Fatalf("EliminatedWorkers = %v", elim)
	}
}

func TestPlatformGoldenScreening(t *testing.T) {
	p := NewPool()
	// 5 golden tasks: a scripted worker always answering 0 fails goldens
	// whose truth is 1.
	for i := 0; i < 5; i++ {
		tk := binaryTask(TaskID(i+1), 1)
		tk.Golden = true
		p.MustAdd(tk)
	}
	for i := 5; i < 10; i++ {
		p.MustAdd(binaryTask(TaskID(i+1), 1))
	}
	spammer := &scriptedWorker{id: "spam", option: 0, latency: 1}
	pl := NewPlatform(p, []Worker{spammer}, Unlimited())
	pl.Screen = NewWorkerScreen(3, 0.5)
	res, err := pl.CollectRedundant(firstOpen, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !pl.Screen.Eliminated("spam") {
		t.Fatal("spammer survived golden screening")
	}
	// Once eliminated, the spammer stops receiving work, so not every task
	// gets an answer.
	if res.AnswersCollected >= 10 {
		t.Fatalf("eliminated worker kept working: %d answers", res.AnswersCollected)
	}
}

func TestAnswerMatchesGolden(t *testing.T) {
	choice := binaryTask(1, 1)
	choice.Golden = true
	if !answerMatchesGolden(choice, Answer{Option: 1}) || answerMatchesGolden(choice, Answer{Option: 0}) {
		t.Fatal("choice golden matching broken")
	}
	fill := &Task{Kind: FillIn, GroundTruthText: "paris"}
	if !answerMatchesGolden(fill, Answer{Text: "paris"}) || answerMatchesGolden(fill, Answer{Text: "rome"}) {
		t.Fatal("fill-in golden matching broken")
	}
	rate := &Task{Kind: Rating, GroundTruthScore: 3}
	if !answerMatchesGolden(rate, Answer{Score: 3.4}) || answerMatchesGolden(rate, Answer{Score: 4}) {
		t.Fatal("rating golden matching broken")
	}
}

func qualQuiz(n int) []*Task {
	quiz := make([]*Task, n)
	for i := range quiz {
		quiz[i] = binaryTask(TaskID(i+1), 1)
	}
	return quiz
}

func TestQualificationPartitionsWorkers(t *testing.T) {
	q := &Qualification{Quiz: qualQuiz(5), MinAccuracy: 0.8}
	good := &truthfulWorker{id: "good"}
	bad := &scriptedWorker{id: "bad", option: 0}
	res, err := q.Run([]Worker{good, bad})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Passed) != 1 || res.Passed[0].ID() != "good" {
		t.Fatalf("passed = %v", res.Passed)
	}
	if len(res.Failed) != 1 || res.Failed[0].ID() != "bad" {
		t.Fatalf("failed = %v", res.Failed)
	}
	if res.Scores["good"] != 1 || res.Scores["bad"] != 0 {
		t.Fatalf("scores = %v", res.Scores)
	}
	if res.AnswersUsed != 10 {
		t.Fatalf("quiz cost = %d, want 2 workers x 5 questions", res.AnswersUsed)
	}
}

func TestQualificationValidation(t *testing.T) {
	if _, err := (&Qualification{MinAccuracy: 0.5}).Run(nil); err == nil {
		t.Fatal("empty quiz should fail")
	}
	noTruth := &Task{ID: 1, Kind: SingleChoice, Options: []string{"a", "b"}, GroundTruth: -1}
	if _, err := (&Qualification{Quiz: []*Task{noTruth}}).Run(nil); err == nil {
		t.Fatal("quiz without planted truth should fail")
	}
	collection := &Task{ID: 1, Kind: Collection}
	if _, err := (&Qualification{Quiz: []*Task{collection}}).Run(nil); err == nil {
		t.Fatal("ungradeable quiz task should fail")
	}
}

func TestQualificationFillInQuiz(t *testing.T) {
	quiz := []*Task{{ID: 1, Kind: FillIn, GroundTruthText: "paris"}}
	q := &Qualification{Quiz: quiz, MinAccuracy: 1}
	knower := &scriptedWorker{id: "k", option: -1, text: "paris"}
	guesser := &scriptedWorker{id: "g", option: -1, text: "rome"}
	res, err := q.Run([]Worker{knower, guesser})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Passed) != 1 || res.Passed[0].ID() != "k" {
		t.Fatalf("fill-in quiz partition wrong: %v", res.Scores)
	}
}

func TestBudgetTryChargeAndRefund(t *testing.T) {
	b := NewBudget(2)
	if !b.TryCharge(1) || !b.TryCharge(1) {
		t.Fatal("charges within budget refused")
	}
	if b.TryCharge(1) {
		t.Fatal("charge beyond total accepted")
	}
	if b.TryCharge(-1) {
		t.Fatal("negative charge accepted")
	}
	b.Refund(1)
	if b.Spent() != 1 {
		t.Fatalf("spent after refund = %v", b.Spent())
	}
	if !b.TryCharge(1) {
		t.Fatal("refunded unit not rechargeable")
	}
	// Refunds never drive spent below zero, and non-positive refunds are
	// ignored.
	b.Refund(100)
	if b.Spent() != 0 {
		t.Fatalf("over-refund left spent = %v", b.Spent())
	}
	b.Refund(-5)
	if b.Spent() != 0 {
		t.Fatalf("negative refund changed spent: %v", b.Spent())
	}
}

func TestBudgetConcurrentTryCharge(t *testing.T) {
	const total, workers, attempts = 500, 8, 200
	b := NewBudget(total)
	var granted atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < attempts; i++ {
				if b.TryCharge(1) {
					granted.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	if granted.Load() != total {
		t.Fatalf("granted %d charges under budget %d", granted.Load(), total)
	}
	if b.Spent() != total {
		t.Fatalf("spent = %v, want %v", b.Spent(), float64(total))
	}
}

func TestConcurrentPoolDelegation(t *testing.T) {
	cp := NewConcurrentPool(nil)
	v0 := cp.Version()
	id, err := cp.Add(binaryTask(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if cp.Version() == v0 {
		t.Fatal("Add did not bump the version")
	}
	if cp.Task(id) == nil || cp.Len() != 1 {
		t.Fatal("task lookup through wrapper failed")
	}
	v1 := cp.Version()
	if err := cp.Record(Answer{Task: id, Worker: "w1", Option: 1}); err != nil {
		t.Fatal(err)
	}
	if cp.Version() == v1 {
		t.Fatal("Record did not bump the version")
	}
	v2 := cp.Version()
	// Rejected answers must not bump the version (caches stay valid).
	if err := cp.Record(Answer{Task: id, Worker: "w1", Option: 0}); err == nil {
		t.Fatal("duplicate answer accepted")
	}
	if cp.Version() != v2 {
		t.Fatal("rejected Record bumped the version")
	}
	if cp.AnswerCount(id) != 1 || cp.TotalAnswers() != 1 {
		t.Fatal("answer counts wrong through wrapper")
	}
	if !cp.HasAnswered("w1", id) || cp.HasAnswered("w2", id) {
		t.Fatal("HasAnswered wrong through wrapper")
	}
	if got := cp.Answers(id); len(got) != 1 || got[0].Worker != "w1" {
		t.Fatalf("Answers = %v", got)
	}
	if votes := cp.OptionVotes(id); votes[1] != 1 {
		t.Fatalf("OptionVotes = %v", votes)
	}
	if ws := cp.Workers(); len(ws) != 1 || ws[0] != "w1" {
		t.Fatalf("Workers = %v", ws)
	}
	cp.Close(id)
	if !cp.Closed(id) || len(cp.OpenTasks()) != 0 {
		t.Fatal("Close not visible through wrapper")
	}
	if len(cp.EligibleFor("w2")) != 0 {
		t.Fatal("closed task still eligible")
	}
}

func TestConcurrentPoolParallelAccess(t *testing.T) {
	cp := NewConcurrentPool(nil)
	const tasks = 40
	ids := make([]TaskID, tasks)
	for i := 0; i < tasks; i++ {
		id, err := cp.Add(binaryTask(TaskID(i+1), 1))
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	const workers = 8
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			worker := fmt.Sprintf("w%d", w)
			for {
				id, ok := cp.Assign(firstOpen, worker)
				if !ok {
					return
				}
				if err := cp.Record(Answer{Task: id, Worker: worker, Option: 1}); err != nil {
					errCh <- err
					return
				}
				// Interleave reads with the writes.
				_ = cp.TotalAnswers()
				_ = cp.TaskIDs()
				cp.View(func(p *Pool) { _ = p.OpenTasks() })
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if got := cp.TotalAnswers(); got != tasks*workers {
		t.Fatalf("answers = %d, want %d", got, tasks*workers)
	}
	for _, id := range ids {
		if cp.AnswerCount(id) != workers {
			t.Fatalf("task %d has %d answers", id, cp.AnswerCount(id))
		}
	}
}
