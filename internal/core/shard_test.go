package core

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"
)

func multiTask(id TaskID) *Task {
	return &Task{ID: id, Kind: MultiChoice, Options: []string{"a", "b", "c"}, GroundTruth: -1}
}

// TestRecordResubmissionCap is the regression test for the budget-drain
// bug: repeatable kinds used to accept unlimited resubmissions from one
// worker, so a retrying client could charge the budget forever on a
// single task. Now they stop at MaxRepeatAnswers.
func TestRecordResubmissionCap(t *testing.T) {
	for _, kind := range []TaskKind{MultiChoice, Collection} {
		p := NewPool()
		task := &Task{ID: 1, Kind: kind, GroundTruth: -1}
		if kind == MultiChoice {
			task.Options = []string{"a", "b", "c"}
		}
		id := p.MustAdd(task)
		for i := 0; i < MaxRepeatAnswers; i++ {
			if err := p.Record(Answer{Task: id, Worker: "w", Option: i % 3, Text: fmt.Sprintf("t%d", i)}); err != nil {
				t.Fatalf("%v: submission %d rejected: %v", kind, i+1, err)
			}
		}
		if err := p.Record(Answer{Task: id, Worker: "w", Option: 0}); err == nil {
			t.Fatalf("%v: submission %d accepted; want resubmission-cap rejection", kind, MaxRepeatAnswers+1)
		}
		if got := p.AnswerCount(id); got != MaxRepeatAnswers {
			t.Fatalf("%v: %d answers recorded, want %d", kind, got, MaxRepeatAnswers)
		}
		// A different worker is unaffected by w's cap.
		if err := p.Record(Answer{Task: id, Worker: "other", Option: 1}); err != nil {
			t.Fatalf("%v: fresh worker rejected: %v", kind, err)
		}
	}
}

func TestUnrecordReversesRecord(t *testing.T) {
	p := NewPool()
	id := p.MustAdd(binaryTask(1, 1))
	a := Answer{Task: id, Worker: "w", Option: 1}
	if err := p.Record(a); err != nil {
		t.Fatal(err)
	}
	if !p.Unrecord(a) {
		t.Fatal("Unrecord did not find the recorded answer")
	}
	if p.AnswerCount(id) != 0 {
		t.Fatalf("answer count = %d after Unrecord, want 0", p.AnswerCount(id))
	}
	if p.HasAnswered("w", id) {
		t.Fatal("worker still marked as having answered after Unrecord")
	}
	// The worker can resubmit (e.g. after the server rolled back a failed
	// journal append and the client retried).
	if err := p.Record(a); err != nil {
		t.Fatalf("resubmission after Unrecord rejected: %v", err)
	}
	// Unrecord of an answer that is not present reports false.
	if p.Unrecord(Answer{Task: id, Worker: "ghost", Option: 0}) {
		t.Fatal("Unrecord of a never-recorded answer reported true")
	}
}

func TestUnrecordRemovesMostRecentOnly(t *testing.T) {
	p := NewPool()
	id := p.MustAdd(multiTask(1))
	first := Answer{Task: id, Worker: "w", Option: 0}
	second := Answer{Task: id, Worker: "w", Option: 1}
	for _, a := range []Answer{first, second} {
		if err := p.Record(a); err != nil {
			t.Fatal(err)
		}
	}
	if !p.Unrecord(second) {
		t.Fatal("Unrecord(second) failed")
	}
	if got := p.Answers(id); len(got) != 1 || got[0] != first {
		t.Fatalf("answers after Unrecord = %v, want just %v", got, first)
	}
	if !p.HasAnswered("w", id) {
		t.Fatal("per-worker count dropped to zero with one answer remaining")
	}
}

func TestShardIndexDeterministicAndInRange(t *testing.T) {
	for n := 1; n <= 9; n++ {
		counts := make([]int, n)
		for id := TaskID(0); id < 1000; id++ {
			i := ShardIndex(id, n)
			if i != ShardIndex(id, n) {
				t.Fatalf("ShardIndex(%d,%d) not deterministic", id, n)
			}
			if i < 0 || i >= n {
				t.Fatalf("ShardIndex(%d,%d) = %d out of range", id, n, i)
			}
			counts[i]++
		}
		// Sequential IDs should spread roughly evenly, not cluster.
		for i, c := range counts {
			if n > 1 && (c < 1000/n/2 || c > 1000/n*2) {
				t.Fatalf("shard %d/%d got %d of 1000 sequential ids; want near %d", i, n, c, 1000/n)
			}
		}
	}
}

// populatedPool builds a pool exercising every bookkeeping dimension:
// answers (including repeats), closed tasks, and outstanding leases.
func populatedPool(t *testing.T) *Pool {
	t.Helper()
	p := NewPool()
	deadline := time.Now().Add(time.Hour)
	for i := 0; i < 20; i++ {
		id := p.MustAdd(binaryTask(TaskID(i+1), i%2))
		for w := 0; w <= i%3; w++ {
			if err := p.Record(Answer{Task: id, Worker: fmt.Sprintf("w%d", w), Option: i % 2}); err != nil {
				t.Fatal(err)
			}
		}
		if i%5 == 0 {
			p.Close(id)
		} else if i%4 == 0 {
			if err := p.Lease(id, "leaser", deadline); err != nil {
				t.Fatal(err)
			}
		}
	}
	mid := p.MustAdd(multiTask(100))
	for i := 0; i < 3; i++ {
		if err := p.Record(Answer{Task: mid, Worker: "rep", Option: i}); err != nil {
			t.Fatal(err)
		}
	}
	return p
}

func poolsEquivalent(t *testing.T, want, got *Pool) {
	t.Helper()
	wantIDs := append([]TaskID(nil), want.TaskIDs()...)
	gotIDs := append([]TaskID(nil), got.TaskIDs()...)
	if len(wantIDs) != len(gotIDs) {
		t.Fatalf("task count: got %d, want %d", len(gotIDs), len(wantIDs))
	}
	seen := make(map[TaskID]bool, len(gotIDs))
	for _, id := range gotIDs {
		seen[id] = true
	}
	for _, id := range wantIDs {
		if !seen[id] {
			t.Fatalf("task %d missing after roundtrip", id)
		}
		if !reflect.DeepEqual(want.Answers(id), got.Answers(id)) {
			t.Fatalf("task %d answers diverge: got %v, want %v", id, got.Answers(id), want.Answers(id))
		}
		if want.Closed(id) != got.Closed(id) {
			t.Fatalf("task %d closed flag diverges", id)
		}
		if want.LeaseCount(id) != got.LeaseCount(id) {
			t.Fatalf("task %d lease count diverges: got %d, want %d", id, got.LeaseCount(id), want.LeaseCount(id))
		}
	}
	if !reflect.DeepEqual(want.Workers(), got.Workers()) {
		t.Fatalf("workers diverge: got %v, want %v", got.Workers(), want.Workers())
	}
	for _, w := range want.Workers() {
		for _, id := range wantIDs {
			if want.HasAnswered(w, id) != got.HasAnswered(w, id) {
				t.Fatalf("HasAnswered(%s,%d) diverges", w, id)
			}
		}
	}
}

func TestSplitMergeRoundtrip(t *testing.T) {
	for _, n := range []int{1, 2, 4, 7} {
		src := populatedPool(t)
		parts := SplitPool(src, n)
		total := 0
		for _, part := range parts {
			total += part.Len()
		}
		if total != src.Len() {
			t.Fatalf("n=%d: shards hold %d tasks, source has %d", n, total, src.Len())
		}
		merged := MergePools(parts)
		poolsEquivalent(t, src, merged)
		// Lease expiry behaves identically on the merged pool.
		wantExp := src.ExpireLeases(time.Now().Add(2 * time.Hour))
		gotExp := merged.ExpireLeases(time.Now().Add(2 * time.Hour))
		if !reflect.DeepEqual(wantExp, gotExp) {
			t.Fatalf("n=%d: expiry after roundtrip diverges: got %v, want %v", n, gotExp, wantExp)
		}
	}
}

func TestMergeSinglePreservesInsertionOrder(t *testing.T) {
	src := populatedPool(t)
	merged := MergePools([]*Pool{src})
	if !reflect.DeepEqual(src.TaskIDs(), merged.TaskIDs()) {
		t.Fatalf("single-pool merge reordered tasks: got %v, want %v", merged.TaskIDs(), src.TaskIDs())
	}
}

// TestShardedPoolMatchesUnsharded drives the same operation sequence
// through 1-shard and N-shard pools and requires identical observable
// state — the core of the -shards=N ≡ -shards=1 contract.
func TestShardedPoolMatchesUnsharded(t *testing.T) {
	build := func(n int) *ShardedPool {
		sp := NewShardedPool(nil, n)
		for i := 0; i < 30; i++ {
			task := binaryTask(0, i%2)
			id, err := sp.Add(task)
			if err != nil {
				t.Fatal(err)
			}
			for w := 0; w <= i%3; w++ {
				if err := sp.Record(Answer{Task: id, Worker: fmt.Sprintf("w%d", w), Option: i % 2}); err != nil {
					t.Fatal(err)
				}
			}
			if i%5 == 0 {
				sp.Close(id)
			}
		}
		return sp
	}
	ref := build(1)
	for _, n := range []int{2, 4, 8} {
		sp := build(n)
		if sp.Len() != ref.Len() || sp.TotalAnswers() != ref.TotalAnswers() {
			t.Fatalf("n=%d: shape diverges: %d/%d tasks, %d/%d answers",
				n, sp.Len(), ref.Len(), sp.TotalAnswers(), ref.TotalAnswers())
		}
		if !reflect.DeepEqual(ref.Workers(), sp.Workers()) {
			t.Fatalf("n=%d: workers diverge", n)
		}
		refIDs := ref.TaskIDs()
		ids := sp.TaskIDs()
		if len(ids) != len(refIDs) {
			t.Fatalf("n=%d: id count diverges", n)
		}
		for _, id := range refIDs {
			if !reflect.DeepEqual(ref.Answers(id), sp.Answers(id)) {
				t.Fatalf("n=%d: task %d answers diverge", n, id)
			}
			if ref.Closed(id) != sp.Closed(id) {
				t.Fatalf("n=%d: task %d closed flag diverges", n, id)
			}
			if ref.OptionVotes(id) != nil && !reflect.DeepEqual(ref.OptionVotes(id), sp.OptionVotes(id)) {
				t.Fatalf("n=%d: task %d votes diverge", n, id)
			}
		}
	}
}

func TestShardedPoolAssignLease(t *testing.T) {
	sp := NewShardedPool(nil, 4)
	var ids []TaskID
	for i := 0; i < 12; i++ {
		id, err := sp.Add(binaryTask(0, 0))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	deadline := time.Now().Add(time.Minute)
	got := make(map[TaskID]bool)
	// One worker can be assigned every task exactly once across shards.
	for range ids {
		id, ok := sp.AssignLease(firstOpen, "w", deadline)
		if !ok {
			t.Fatalf("assignment dried up after %d tasks, want %d", len(got), len(ids))
		}
		if got[id] {
			t.Fatalf("task %d assigned twice", id)
		}
		got[id] = true
		if !sp.HasLease("w", id) {
			t.Fatalf("no lease recorded for assigned task %d", id)
		}
		if err := sp.Record(Answer{Task: id, Worker: "w", Option: 0}); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := sp.AssignLease(firstOpen, "w", deadline); ok {
		t.Fatal("worker assigned a task it already answered")
	}
	if sp.ActiveLeases() != 0 {
		t.Fatalf("%d leases outstanding after all answers consumed them", sp.ActiveLeases())
	}
}

func TestShardedPoolExpireLeasesDeterministic(t *testing.T) {
	sp := NewShardedPool(nil, 4)
	deadline := time.Now().Add(time.Millisecond)
	for i := 0; i < 10; i++ {
		id, err := sp.Add(binaryTask(0, 0))
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := sp.AssignLease(firstOpen, fmt.Sprintf("w%d", i), deadline); !ok {
			t.Fatalf("assignment %d failed", i)
		}
		_ = id
	}
	exp := sp.ExpireLeases(time.Now().Add(time.Hour))
	if len(exp) != 10 {
		t.Fatalf("expired %d leases, want 10", len(exp))
	}
	for i := 1; i < len(exp); i++ {
		if exp[i].Task < exp[i-1].Task {
			t.Fatalf("expired leases not in task order: %v", exp)
		}
	}
}

func TestShardedPoolVersionSumsShards(t *testing.T) {
	sp := NewShardedPool(nil, 4)
	v0 := sp.Version()
	id, err := sp.Add(binaryTask(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	v1 := sp.Version()
	if v1 <= v0 {
		t.Fatalf("Add did not advance version: %d -> %d", v0, v1)
	}
	if err := sp.Record(Answer{Task: id, Worker: "w", Option: 0}); err != nil {
		t.Fatal(err)
	}
	if sp.Version() <= v1 {
		t.Fatal("Record did not advance version")
	}
	v2 := sp.Version()
	if !sp.Unrecord(Answer{Task: id, Worker: "w", Option: 0}) {
		t.Fatal("Unrecord failed")
	}
	if sp.Version() <= v2 {
		t.Fatal("Unrecord did not advance version (cached derived state would go stale)")
	}
}

func TestShardedPoolRecordBatch(t *testing.T) {
	sp := NewShardedPool(nil, 4)
	id1, _ := sp.Add(binaryTask(0, 0))
	id2, _ := sp.Add(binaryTask(0, 0))
	shard := sp.ShardFor(id1)
	batch := []Answer{
		{Task: id1, Worker: "w", Option: 0},
		{Task: id1, Worker: "w", Option: 1}, // duplicate: rejected
		{Task: id1, Worker: "x", Option: 0},
	}
	errs := sp.RecordBatch(shard, batch)
	if errs[0] != nil || errs[2] != nil {
		t.Fatalf("valid batch items rejected: %v", errs)
	}
	if errs[1] == nil {
		t.Fatal("duplicate answer accepted in batch")
	}
	if sp.AnswerCount(id1) != 2 {
		t.Fatalf("answer count = %d, want 2", sp.AnswerCount(id1))
	}
	if sp.AnswerCount(id2) != 0 {
		t.Fatalf("unrelated task gained answers: %d", sp.AnswerCount(id2))
	}
}

func TestShardedPoolViewAllConsistent(t *testing.T) {
	sp := NewShardedPool(nil, 4)
	for i := 0; i < 8; i++ {
		if _, err := sp.Add(binaryTask(0, 0)); err != nil {
			t.Fatal(err)
		}
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			id := sp.TaskIDs()[i%8]
			_ = sp.Record(Answer{Task: id, Worker: fmt.Sprintf("bg%d", i), Option: 0})
			i++
		}
	}()
	for i := 0; i < 50; i++ {
		before := sp.Version()
		var total int
		var inView uint64
		sp.ViewAll(func(pools []*Pool) {
			for _, p := range pools {
				total += p.TotalAnswers()
			}
			inView = sp.Version()
		})
		_ = before
		// Version observed inside the view must correspond to a consistent
		// cut: re-reading it inside the same view yields the same value.
		var again uint64
		sp.ViewAll(func(pools []*Pool) { again = sp.Version() })
		if inView > again {
			t.Fatalf("version went backwards across views: %d then %d", inView, again)
		}
	}
	close(stop)
	wg.Wait()
}

func TestShardedPoolSingleShardDelegates(t *testing.T) {
	p := NewPool()
	for i := 0; i < 5; i++ {
		p.MustAdd(binaryTask(TaskID(i+1), 0))
	}
	sp := NewShardedPool(p, 1)
	// Single shard preserves insertion order exactly (the unsharded
	// contract), not sorted order.
	if !reflect.DeepEqual(sp.TaskIDs(), []TaskID{1, 2, 3, 4, 5}) {
		t.Fatalf("single-shard TaskIDs = %v", sp.TaskIDs())
	}
	if sp.NumShards() != 1 {
		t.Fatalf("NumShards = %d", sp.NumShards())
	}
}
