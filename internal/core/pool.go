package core

import (
	"fmt"
	"sort"
	"time"
)

// Pool holds the open tasks of a crowdsourcing run together with the
// answers collected so far. It is the shared blackboard between the
// platform loop, assignment policies, and truth inference.
//
// Pool is not safe for concurrent use; it stays lock-free so simulator
// hot loops pay no synchronization cost. Concurrent callers (the HTTP
// serving layer) wrap it in a ConcurrentPool instead.
type Pool struct {
	tasks   map[TaskID]*Task
	order   []TaskID // insertion order, for deterministic iteration
	answers map[TaskID][]Answer
	// perWorker counts how many answers each worker has submitted per
	// task, to enforce the one-answer-per-worker-per-task platform rule
	// (and, for the repeatable kinds, the MaxRepeatAnswers cap).
	perWorker map[string]map[TaskID]int
	closed    map[TaskID]bool
	// leases tracks outstanding assignments per task: worker -> deadline.
	// See lease.go for the lease state machine.
	leases map[TaskID]map[string]time.Time
	// leaseHeap orders outstanding lease deadlines so expiry sweeps pay
	// O(expired · log n) instead of scanning every lease. Entries for
	// consumed or extended leases are deleted lazily; see ExpireLeases.
	leaseHeap []leaseEntry
	nextID    TaskID
}

// NewPool returns an empty pool.
func NewPool() *Pool {
	return &Pool{
		tasks:     make(map[TaskID]*Task),
		answers:   make(map[TaskID][]Answer),
		perWorker: make(map[string]map[TaskID]int),
		closed:    make(map[TaskID]bool),
		leases:    make(map[TaskID]map[string]time.Time),
	}
}

// Clone returns a deep copy of the pool's bookkeeping. Task pointers are
// shared (tasks are immutable once added); answers, per-worker sets,
// closed flags, and leases are copied, so mutations of the clone and the
// original never interfere. Used by the durability layer, whose journal
// replica and the live serving pool start from the same recovered state.
func (p *Pool) Clone() *Pool {
	c := &Pool{
		tasks:     make(map[TaskID]*Task, len(p.tasks)),
		order:     append([]TaskID(nil), p.order...),
		answers:   make(map[TaskID][]Answer, len(p.answers)),
		perWorker: make(map[string]map[TaskID]int, len(p.perWorker)),
		closed:    make(map[TaskID]bool, len(p.closed)),
		leases:    make(map[TaskID]map[string]time.Time, len(p.leases)),
		leaseHeap: append([]leaseEntry(nil), p.leaseHeap...),
		nextID:    p.nextID,
	}
	for id, t := range p.tasks {
		c.tasks[id] = t
	}
	for id, as := range p.answers {
		c.answers[id] = append([]Answer(nil), as...)
	}
	for w, m := range p.perWorker {
		cm := make(map[TaskID]int, len(m))
		for id, v := range m {
			cm[id] = v
		}
		c.perWorker[w] = cm
	}
	for id, v := range p.closed {
		c.closed[id] = v
	}
	for id, m := range p.leases {
		cm := make(map[string]time.Time, len(m))
		for w, d := range m {
			cm[w] = d
		}
		c.leases[id] = cm
	}
	return c
}

// Add validates t, assigns it a fresh ID if it has none (ID 0 with an
// existing task 0 present counts as unset), and registers it. It returns
// the task's ID.
func (p *Pool) Add(t *Task) (TaskID, error) {
	if _, exists := p.tasks[t.ID]; exists || t.ID == 0 && len(p.tasks) > 0 {
		t.ID = p.nextID
	}
	if t.ID >= p.nextID {
		p.nextID = t.ID + 1
	} else if t.ID == 0 {
		t.ID = p.nextID
		p.nextID++
	}
	if err := t.Validate(); err != nil {
		return 0, err
	}
	p.tasks[t.ID] = t
	p.order = append(p.order, t.ID)
	return t.ID, nil
}

// MustAdd adds and panics on error; for tests and generators.
func (p *Pool) MustAdd(t *Task) TaskID {
	id, err := p.Add(t)
	if err != nil {
		panic(err)
	}
	return id
}

// Task returns the task with the given id, or nil.
func (p *Pool) Task(id TaskID) *Task { return p.tasks[id] }

// Len returns the number of tasks.
func (p *Pool) Len() int { return len(p.tasks) }

// TaskIDs returns all task ids in insertion order. The caller must not
// mutate the returned slice.
func (p *Pool) TaskIDs() []TaskID { return p.order }

// MaxRepeatAnswers caps how many answers one worker may submit for one
// repeatable (MultiChoice, Collection) task. Legitimate uses stay small —
// one answer per selected option, a handful of collected items — while an
// uncapped task lets a retrying or hostile client charge the budget
// arbitrarily many times for the same assignment.
const MaxRepeatAnswers = 8

// Record stores an answer after checking the platform rules: the task must
// exist, must be open, and the worker must not have answered it before
// (repeatable kinds allow up to MaxRepeatAnswers submissions).
func (p *Pool) Record(a Answer) error {
	if _, ok := p.tasks[a.Task]; !ok {
		return fmt.Errorf("core: answer for unknown task %d", a.Task)
	}
	if p.closed[a.Task] {
		return fmt.Errorf("core: answer for closed task %d", a.Task)
	}
	wt := p.perWorker[a.Worker]
	if wt == nil {
		wt = make(map[TaskID]int)
		p.perWorker[a.Worker] = wt
	}
	n := wt[a.Task]
	kind := p.tasks[a.Task].Kind
	if kind == MultiChoice || kind == Collection {
		if n >= MaxRepeatAnswers {
			return fmt.Errorf("core: worker %s hit the %d-answer resubmission cap on task %d",
				a.Worker, MaxRepeatAnswers, a.Task)
		}
	} else if n > 0 {
		return fmt.Errorf("core: worker %s already answered task %d", a.Worker, a.Task)
	}
	wt[a.Task] = n + 1
	p.answers[a.Task] = append(p.answers[a.Task], a)
	// The submission consumes any outstanding lease for this assignment.
	p.releaseLease(a.Task, a.Worker)
	return nil
}

// Unrecord removes the most recently recorded answer equal to a,
// reversing the bookkeeping Record applied (answer list, per-worker
// count). It exists for the serving layer's durability rollback: an
// answer whose journal append failed must leave memory again, or the live
// state diverges from what recovery will rebuild. The consumed lease (if
// any) is not resurrected — the worker resubmits or the slot is
// re-assigned. Reports whether a matching answer was found.
func (p *Pool) Unrecord(a Answer) bool {
	as := p.answers[a.Task]
	for i := len(as) - 1; i >= 0; i-- {
		if as[i] != a {
			continue
		}
		p.answers[a.Task] = append(as[:i], as[i+1:]...)
		if len(p.answers[a.Task]) == 0 {
			delete(p.answers, a.Task)
		}
		if wt := p.perWorker[a.Worker]; wt != nil {
			if wt[a.Task] > 1 {
				wt[a.Task]--
			} else {
				delete(wt, a.Task)
				if len(wt) == 0 {
					delete(p.perWorker, a.Worker)
				}
			}
		}
		return true
	}
	return false
}

// Answers returns the answers recorded for a task (possibly nil). The
// caller must not mutate the returned slice.
func (p *Pool) Answers(id TaskID) []Answer { return p.answers[id] }

// AllAnswers returns every recorded answer, ordered by task insertion
// order then arrival order.
func (p *Pool) AllAnswers() []Answer {
	var out []Answer
	for _, id := range p.order {
		out = append(out, p.answers[id]...)
	}
	return out
}

// AnswerCount returns the number of answers for a task.
func (p *Pool) AnswerCount(id TaskID) int { return len(p.answers[id]) }

// TotalAnswers returns the number of answers across all tasks.
func (p *Pool) TotalAnswers() int {
	n := 0
	for _, as := range p.answers {
		n += len(as)
	}
	return n
}

// HasAnswered reports whether the worker already answered the task.
func (p *Pool) HasAnswered(worker string, id TaskID) bool {
	return p.perWorker[worker][id] > 0
}

// Close marks a task as finished: no further answers are accepted and
// assigners skip it. Outstanding leases on the task are dropped — a late
// submission would be rejected anyway.
func (p *Pool) Close(id TaskID) {
	p.closed[id] = true
	delete(p.leases, id)
}

// Closed reports whether the task has been closed.
func (p *Pool) Closed(id TaskID) bool { return p.closed[id] }

// OpenTasks returns the ids of tasks that are not closed, in insertion
// order.
func (p *Pool) OpenTasks() []TaskID {
	out := make([]TaskID, 0, len(p.order))
	for _, id := range p.order {
		if !p.closed[id] {
			out = append(out, id)
		}
	}
	return out
}

// EligibleFor returns open tasks the given worker has not answered yet,
// in insertion order.
func (p *Pool) EligibleFor(worker string) []TaskID {
	out := make([]TaskID, 0, len(p.order))
	for _, id := range p.order {
		if !p.closed[id] && p.perWorker[worker][id] == 0 {
			out = append(out, id)
		}
	}
	return out
}

// Workers returns the ids of all workers that submitted at least one
// answer, sorted for determinism.
func (p *Pool) Workers() []string {
	out := make([]string, 0, len(p.perWorker))
	for w := range p.perWorker {
		out = append(out, w)
	}
	sort.Strings(out)
	return out
}

// OptionVotes tallies, for a choice-type task, how many answers selected
// each option. The slice is indexed by option.
func (p *Pool) OptionVotes(id TaskID) []int {
	t := p.tasks[id]
	if t == nil || len(t.Options) == 0 {
		return nil
	}
	votes := make([]int, len(t.Options))
	for _, a := range p.answers[id] {
		if a.Option >= 0 && a.Option < len(votes) {
			votes[a.Option]++
		}
	}
	return votes
}
