package core

import (
	"fmt"
	"reflect"
	"testing"
)

func choiceTask(id TaskID) *Task {
	return &Task{ID: id, Kind: SingleChoice, Options: []string{"a", "b"}}
}

func TestAnswerLogCoversAppends(t *testing.T) {
	cp := NewConcurrentPool(nil)
	for i := 1; i <= 4; i++ {
		if _, err := cp.Add(choiceTask(TaskID(i))); err != nil {
			t.Fatal(err)
		}
	}
	cp.EnableAnswerLog(64)
	v0 := cp.Version()

	// Before anything lands, the delta from v0 is empty but covered.
	cp.mu.RLock()
	got, ok := cp.appendedSinceLocked(v0, nil)
	cp.mu.RUnlock()
	if !ok || len(got) != 0 {
		t.Fatalf("empty window: got %v, covered=%v", got, ok)
	}

	a1 := Answer{Task: 1, Worker: "w1", Option: 0}
	a2 := Answer{Task: 2, Worker: "w1", Option: 1}
	if err := cp.Record(a1); err != nil {
		t.Fatal(err)
	}
	v1 := cp.Version()
	// A batch shares one post-bump version.
	batch := []Answer{a2, {Task: 2, Worker: "w1", Option: 1}} // duplicate rejected
	errs := cp.RecordAll(batch)
	if errs[0] != nil || errs[1] == nil {
		t.Fatalf("batch errors = %v", errs)
	}
	// Closing a task bumps the version but appends no answers; the log
	// stays valid across it.
	cp.Close(4)

	cp.mu.RLock()
	defer cp.mu.RUnlock()
	if got, ok := cp.appendedSinceLocked(v0, nil); !ok || !reflect.DeepEqual(got, []Answer{a1, a2}) {
		t.Fatalf("delta since v0 = (%v, %v), want both answers", got, ok)
	}
	if got, ok := cp.appendedSinceLocked(v1, nil); !ok || !reflect.DeepEqual(got, []Answer{a2}) {
		t.Fatalf("delta since v1 = (%v, %v), want the batch answer", got, ok)
	}
	if got, ok := cp.appendedSinceLocked(cp.Version(), nil); !ok || len(got) != 0 {
		t.Fatalf("delta since head = (%v, %v), want empty", got, ok)
	}
	// A window starting before the log was enabled is not covered.
	if _, ok := cp.appendedSinceLocked(v0-1, nil); ok {
		t.Fatal("window predating EnableAnswerLog reported as covered")
	}
}

func TestAnswerLogStructuralInvalidation(t *testing.T) {
	cp := NewConcurrentPool(nil)
	if _, err := cp.Add(choiceTask(1)); err != nil {
		t.Fatal(err)
	}
	cp.EnableAnswerLog(64)
	v0 := cp.Version()
	a := Answer{Task: 1, Worker: "w1", Option: 0}
	if err := cp.Record(a); err != nil {
		t.Fatal(err)
	}

	// Adding a task is structural: old windows die, new ones work.
	if _, err := cp.Add(choiceTask(2)); err != nil {
		t.Fatal(err)
	}
	vAdd := cp.Version()
	cp.mu.RLock()
	if cp.canDeltaLocked(v0) {
		t.Fatal("window across a task add reported as covered")
	}
	if !cp.canDeltaLocked(vAdd) {
		t.Fatal("fresh window after a task add not covered")
	}
	cp.mu.RUnlock()

	if err := cp.Record(Answer{Task: 2, Worker: "w1", Option: 1}); err != nil {
		t.Fatal(err)
	}
	vRec := cp.Version()
	// Removing an answer is structural too.
	if !cp.Unrecord(a) {
		t.Fatal("unrecord missed")
	}
	cp.mu.RLock()
	defer cp.mu.RUnlock()
	if cp.canDeltaLocked(vRec) {
		t.Fatal("window across an unrecord reported as covered")
	}
	if !cp.canDeltaLocked(cp.Version()) {
		t.Fatal("fresh window after an unrecord not covered")
	}
}

func TestAnswerLogTrim(t *testing.T) {
	cp := NewConcurrentPool(nil)
	if _, err := cp.Add(&Task{ID: 1, Kind: MultiChoice, Options: []string{"a", "b"}}); err != nil {
		t.Fatal(err)
	}
	cp.EnableAnswerLog(8)
	v0 := cp.Version()
	var vers []uint64
	for i := 0; i < 12; i++ {
		if err := cp.Record(Answer{Task: 1, Worker: fmt.Sprintf("w%d", i), Option: i % 2}); err != nil {
			t.Fatal(err)
		}
		vers = append(vers, cp.Version())
	}
	cp.mu.RLock()
	defer cp.mu.RUnlock()
	// The window from the start was trimmed away.
	if cp.canDeltaLocked(v0) {
		t.Fatal("trimmed window reported as covered")
	}
	// A window starting at the trim point is covered and returns exactly
	// the retained tail.
	if got, ok := cp.appendedSinceLocked(cp.alogTrim, nil); !ok || len(got) != len(cp.alog) {
		t.Fatalf("tail window = (%d answers, %v), want %d", len(got), ok, len(cp.alog))
	}
	// Recent windows survive the trim.
	if got, ok := cp.appendedSinceLocked(vers[10], nil); !ok || len(got) != 1 {
		t.Fatalf("recent window = (%d answers, %v), want 1", len(got), ok)
	}
}

func TestShardedViewDelta(t *testing.T) {
	sp := NewShardedPool(nil, 4)
	for i := 1; i <= 32; i++ {
		if _, err := sp.Add(choiceTask(TaskID(i))); err != nil {
			t.Fatal(err)
		}
	}
	sp.EnableDeltaLog(64)

	var snap []uint64
	sp.ViewDelta(func(v *DeltaView) {
		snap = append([]uint64(nil), v.Versions...)
		if v.Version() != sp.Version() {
			t.Errorf("snapshot version %d != pool version %d", v.Version(), sp.Version())
		}
		for i := range v.Versions {
			if !v.CanDelta(i, snap[i]) {
				t.Errorf("shard %d: fresh window not covered", i)
			}
		}
	})

	want := make(map[int][]Answer)
	for i := 1; i <= 32; i += 3 {
		a := Answer{Task: TaskID(i), Worker: "w1", Option: 1}
		if err := sp.Record(a); err != nil {
			t.Fatal(err)
		}
		sh := sp.ShardFor(TaskID(i))
		want[sh] = append(want[sh], a)
	}

	sp.ViewDelta(func(v *DeltaView) {
		for i := range v.Versions {
			got, ok := v.AppendedSince(i, snap[i], nil)
			if !ok {
				t.Errorf("shard %d: window not covered", i)
				continue
			}
			if !reflect.DeepEqual(got, want[i]) {
				t.Errorf("shard %d: delta = %v, want %v", i, got, want[i])
			}
		}
	})
}
