package cql

import (
	"fmt"
	"strings"

	"repro/internal/model"
)

// predAssignment records where the planner placed each top-level conjunct:
// pushed into a single table's pipeline, or left as a residual filter
// above the joins.
type predAssignment struct {
	// perTable maps a table binding (lower-case alias or name) to the
	// conjuncts pushed into its pipeline.
	perTableMachine map[string][]Expr
	perTableCrowd   map[string][]Expr
	residualMachine []Expr
	residualCrowd   []Expr
}

// Plan builds the plan tree for a SELECT. When optimize is true the
// crowd-aware rules apply:
//
//  1. Machine predicates are evaluated before any crowd work, so that
//     crowd fills and crowd predicates see as few tuples as possible
//     (single-table machine predicates are pushed below the fill).
//  2. Only CROWD columns actually referenced by the query are filled.
//  3. Crowd predicates run after fills and after machine filters.
//
// With optimize false (the ablation baseline), the naive plan fills every
// crowd column of the scanned tables up front and evaluates crowd
// predicates before machine predicates — the behavior of a crowd-unaware
// engine that resolves human input eagerly.
func (s *Session) Plan(sel *Select, optimize bool) (PlanNode, error) {
	if err := s.checkSelect(sel); err != nil {
		return nil, err
	}
	assign, err := s.assignPredicates(sel)
	if err != nil {
		return nil, err
	}

	base, err := s.tablePipeline(sel, sel.From, assign, optimize)
	if err != nil {
		return nil, err
	}
	var node PlanNode = base
	for i := range sel.Joins {
		jc := &sel.Joins[i]
		right, err := s.tablePipeline(sel, jc.Table, assign, optimize)
		if err != nil {
			return nil, err
		}
		if jc.Crowd {
			node = &CrowdJoinNode{Left: node, Right: right, LeftCol: jc.Left, RightCol: jc.Right}
		} else {
			node = &JoinNode{Left: node, Right: right, LeftCol: jc.Left, RightCol: jc.Right}
		}
	}

	if optimize {
		if len(assign.residualMachine) > 0 {
			node = &MachineFilterNode{Input: node, Preds: assign.residualMachine}
		}
		if len(assign.residualCrowd) > 0 {
			node = &CrowdFilterNode{Input: node, Preds: assign.residualCrowd}
		}
	} else {
		if len(assign.residualCrowd) > 0 {
			node = &CrowdFilterNode{Input: node, Preds: assign.residualCrowd}
		}
		if len(assign.residualMachine) > 0 {
			node = &MachineFilterNode{Input: node, Preds: assign.residualMachine}
		}
	}

	hasAgg := false
	for _, it := range sel.Projections {
		if it.Agg != "" {
			hasAgg = true
		}
	}
	addSorts := func(input PlanNode) PlanNode {
		out := input
		if len(sel.OrderBy) > 0 {
			out = &SortNode{Input: out, Keys: sel.OrderBy}
		}
		if sel.CrowdOrder != nil {
			out = &CrowdSortNode{
				Input:    out,
				Column:   sel.CrowdOrder.Column,
				Desc:     sel.CrowdOrder.Desc,
				Question: sel.CrowdOrder.Question,
			}
		}
		return out
	}
	if hasAgg || sel.GroupBy != "" {
		// Sort keys may reference aggregate aliases, so sorting happens
		// above the aggregate, as does HAVING.
		node = &AggregateNode{Input: node, GroupBy: sel.GroupBy, Items: sel.Projections}
		if sel.Having != nil {
			node = &MachineFilterNode{Input: node, Preds: Conjuncts(sel.Having)}
		}
		node = addSorts(node)
	} else {
		// Sort keys reference input columns (which the projection may
		// drop), so sorting happens below the projection.
		node = addSorts(node)
		node = &ProjectNode{Input: node, Items: sel.Projections}
	}
	if sel.Distinct {
		node = &DistinctNode{Input: node}
	}
	if sel.Limit >= 0 {
		node = &LimitNode{Input: node, N: sel.Limit}
	}
	return node, nil
}

// assignPredicates splits WHERE into conjuncts, classifies each as
// machine/crowd, and decides pushdown placement.
func (s *Session) assignPredicates(sel *Select) (*predAssignment, error) {
	assign := &predAssignment{
		perTableMachine: make(map[string][]Expr),
		perTableCrowd:   make(map[string][]Expr),
	}
	refs := append([]TableRef{sel.From}, joinTables(sel)...)
	rels := make([]*model.Relation, len(refs))
	for i, ref := range refs {
		rel, err := s.Catalog.Get(ref.Name)
		if err != nil {
			return nil, err
		}
		rels[i] = rel
	}
	for _, c := range Conjuncts(sel.Where) {
		isCrowd := IsCrowdExpr(c)
		if isCrowd {
			switch c.(type) {
			case *CrowdEqual, *CrowdFilter:
			default:
				return nil, fmt.Errorf("cql: crowd predicates cannot be nested in %s; use top-level AND", c)
			}
		}
		placed := ""
		for i, ref := range refs {
			if exprBoundTo(c, strings.ToLower(ref.Binding()), rels[i], sel, refs, rels) {
				placed = strings.ToLower(ref.Binding())
				break
			}
		}
		switch {
		case placed != "" && isCrowd:
			assign.perTableCrowd[placed] = append(assign.perTableCrowd[placed], c)
		case placed != "":
			assign.perTableMachine[placed] = append(assign.perTableMachine[placed], c)
		case isCrowd:
			assign.residualCrowd = append(assign.residualCrowd, c)
		default:
			assign.residualMachine = append(assign.residualMachine, c)
		}
	}
	return assign, nil
}

// tablePipeline builds scan → (pushdown machine filters) → (crowd fill) →
// (pushdown crowd filters) for one table.
func (s *Session) tablePipeline(sel *Select, ref TableRef, assign *predAssignment, optimize bool) (PlanNode, error) {
	rel, err := s.Catalog.Get(ref.Name)
	if err != nil {
		return nil, err
	}
	var node PlanNode = &ScanNode{Table: ref}
	binding := strings.ToLower(ref.Binding())

	if optimize {
		if pushed := assign.perTableMachine[binding]; len(pushed) > 0 {
			node = &MachineFilterNode{Input: node, Preds: pushed}
		}
		cols := s.crowdColumnsNeeded(sel, ref, rel)
		if len(cols) > 0 {
			node = &CrowdFillNode{Input: node, Columns: cols}
		}
		if pushedCrowd := assign.perTableCrowd[binding]; len(pushedCrowd) > 0 {
			node = &CrowdFilterNode{Input: node, Preds: pushedCrowd}
		}
	} else {
		// Naive: fill every crowd column up front, then run this table's
		// predicates crowd-first.
		var cols []string
		for _, c := range rel.Schema.Columns {
			if c.Crowd {
				cols = append(cols, c.Name)
			}
		}
		if len(cols) > 0 {
			node = &CrowdFillNode{Input: node, Columns: cols}
		}
		if pushedCrowd := assign.perTableCrowd[binding]; len(pushedCrowd) > 0 {
			node = &CrowdFilterNode{Input: node, Preds: pushedCrowd}
		}
		if pushed := assign.perTableMachine[binding]; len(pushed) > 0 {
			node = &MachineFilterNode{Input: node, Preds: pushed}
		}
	}
	return node, nil
}

// checkSelect validates projection/aggregate mixing and crowd feature
// availability.
func (s *Session) checkSelect(sel *Select) error {
	hasAgg, hasPlain := false, false
	for _, it := range sel.Projections {
		if it.Agg != "" {
			hasAgg = true
		} else {
			hasPlain = true
		}
	}
	if hasAgg && hasPlain && sel.GroupBy == "" {
		return fmt.Errorf("cql: cannot mix aggregates and plain columns without GROUP BY")
	}
	if sel.Having != nil && IsCrowdExpr(sel.Having) {
		return fmt.Errorf("cql: HAVING supports machine predicates only")
	}
	needsCrowd := sel.CrowdOrder != nil || IsCrowdExpr(orNilExpr(sel.Where))
	for _, it := range sel.Projections {
		if it.Agg == "CROWDCOUNT" {
			needsCrowd = true
		}
	}
	for _, j := range sel.Joins {
		if j.Crowd {
			needsCrowd = true
		}
	}
	// A query touching NULL-bearing crowd columns also needs the crowd,
	// but that is data-dependent; the executor reports it at fill time.
	if needsCrowd && s.Runner == nil {
		return fmt.Errorf("cql: query uses crowd features but the session has no crowd attached")
	}
	return nil
}

// exprBoundTo reports whether every column in e resolves to the given
// table binding (qualified references must match it; unqualified ones
// must exist in this table and be unambiguous across the query).
func exprBoundTo(e Expr, binding string, rel *model.Relation, sel *Select, refs []TableRef, rels []*model.Relation) bool {
	cols := ColumnsIn(e)
	if len(cols) == 0 {
		return false
	}
	for _, c := range cols {
		if c.Table != "" {
			if strings.ToLower(c.Table) != binding {
				return false
			}
			continue
		}
		if rel.Schema.ColumnIndex(c.Name) < 0 {
			return false
		}
		owners := 0
		for _, r := range rels {
			if r.Schema.ColumnIndex(c.Name) >= 0 {
				owners++
			}
		}
		if owners > 1 {
			return false
		}
	}
	return true
}

func joinTables(sel *Select) []TableRef {
	out := make([]TableRef, len(sel.Joins))
	for i, j := range sel.Joins {
		out[i] = j.Table
	}
	return out
}

// crowdColumnsNeeded lists the CROWD columns of rel referenced anywhere in
// the query (projections, predicates, ordering, grouping, join keys).
func (s *Session) crowdColumnsNeeded(sel *Select, ref TableRef, rel *model.Relation) []string {
	needed := map[string]bool{}
	binding := strings.ToLower(ref.Binding())
	mark := func(c *ColumnRef) {
		if c == nil {
			return
		}
		if c.Table != "" && strings.ToLower(c.Table) != binding {
			return
		}
		ci := rel.Schema.ColumnIndex(c.Name)
		if ci >= 0 && rel.Schema.Columns[ci].Crowd {
			needed[rel.Schema.Columns[ci].Name] = true
		}
	}
	for _, it := range sel.Projections {
		if it.Star {
			for _, c := range rel.Schema.Columns {
				if c.Crowd {
					needed[c.Name] = true
				}
			}
		}
		mark(it.Column)
	}
	for _, c := range ColumnsIn(orNilExpr(sel.Where)) {
		mark(c)
	}
	for _, k := range sel.OrderBy {
		mark(k.Column)
	}
	if sel.CrowdOrder != nil {
		mark(sel.CrowdOrder.Column)
	}
	if sel.GroupBy != "" {
		mark(&ColumnRef{Name: sel.GroupBy})
	}
	for _, j := range sel.Joins {
		mark(j.Left)
		mark(j.Right)
	}
	var out []string
	for _, c := range rel.Schema.Columns {
		if needed[c.Name] {
			out = append(out, c.Name)
		}
	}
	return out
}

// orNilExpr lets nil WHERE clauses flow through expression walkers.
func orNilExpr(e Expr) Expr { return e }
