// Package cql implements the declarative crowd-SQL layer of crowdkit — a
// CrowdDB-style dialect in which tables and columns can be marked CROWD,
// predicates can be crowd-evaluated (CROWDEQUAL, CROWDFILTER), ordering
// can be delegated to pairwise human comparison (CROWDORDER BY), and
// aggregation can be estimated by crowd-labeled sampling (CROWDCOUNT).
//
// The package contains a lexer, a recursive-descent parser, a catalog of
// in-memory relations, a rule-based crowd-aware optimizer, and an executor
// that routes crowd work through the operators package. The optimizer's
// core rule is the survey's cost-control principle: machine predicates run
// before crowd predicates so that human answers are spent on as few tuples
// as possible.
package cql

import (
	"fmt"
	"strings"
	"unicode"
)

// TokenKind classifies lexer output.
type TokenKind int

const (
	// TokEOF ends the stream.
	TokEOF TokenKind = iota
	// TokIdent is an identifier or unreserved word.
	TokIdent
	// TokKeyword is a reserved word (normalized upper-case in Text).
	TokKeyword
	// TokNumber is an integer or decimal literal.
	TokNumber
	// TokString is a single-quoted string literal (Text holds the value).
	TokString
	// TokSymbol is an operator or punctuation ( ( ) , * = != <= >= < > ~= ; . ).
	TokSymbol
)

// Token is one lexeme with its source position (1-based line/column).
type Token struct {
	Kind TokenKind
	Text string
	Line int
	Col  int
}

func (t Token) String() string {
	switch t.Kind {
	case TokEOF:
		return "<eof>"
	case TokString:
		return fmt.Sprintf("'%s'", t.Text)
	default:
		return t.Text
	}
}

// keywords are the reserved words of the dialect.
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "AND": true, "OR": true,
	"NOT": true, "INSERT": true, "INTO": true, "VALUES": true,
	"CREATE": true, "TABLE": true, "DROP": true, "CROWD": true,
	"CROWDEQUAL": true, "CROWDFILTER": true, "CROWDORDER": true,
	"CROWDCOUNT": true, "CROWDJOIN": true, "ORDER": true, "BY": true,
	"ASC": true, "DESC": true, "LIMIT": true, "GROUP": true,
	"JOIN": true, "ON": true, "AS": true, "NULL": true,
	"TRUE": true, "FALSE": true, "COUNT": true, "SUM": true, "AVG": true,
	"MIN": true, "MAX": true, "LIKE": true, "IS": true, "SHOW": true,
	"TABLES": true, "DESCRIBE": true, "EXPLAIN": true, "DELETE": true,
	"UPDATE": true, "SET": true, "HAVING": true,
	"INT": true, "INTEGER": true, "FLOAT": true, "DOUBLE": true,
	"STRING": true, "TEXT": true, "VARCHAR": true, "BOOL": true,
	"BOOLEAN": true, "DISTINCT": true,
}

// Lex tokenizes src, returning the token stream or a positioned error.
func Lex(src string) ([]Token, error) {
	var out []Token
	line, col := 1, 1
	i := 0
	n := len(src)
	advance := func(k int) {
		for j := 0; j < k; j++ {
			if src[i+j] == '\n' {
				line++
				col = 1
			} else {
				col++
			}
		}
		i += k
	}
	for i < n {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			advance(1)
		case c == '-' && i+1 < n && src[i+1] == '-':
			// Line comment.
			for i < n && src[i] != '\n' {
				advance(1)
			}
		case unicode.IsLetter(rune(c)) || c == '_':
			start, startCol := i, col
			for i < n && (unicode.IsLetter(rune(src[i])) || unicode.IsDigit(rune(src[i])) || src[i] == '_') {
				advance(1)
			}
			word := src[start:i]
			upper := strings.ToUpper(word)
			if keywords[upper] {
				out = append(out, Token{TokKeyword, upper, line, startCol})
			} else {
				out = append(out, Token{TokIdent, word, line, startCol})
			}
		case unicode.IsDigit(rune(c)):
			start, startCol := i, col
			seenDot := false
			for i < n && (unicode.IsDigit(rune(src[i])) || (!seenDot && src[i] == '.')) {
				if src[i] == '.' {
					// A dot must be followed by a digit to be part of the
					// number (else it is the qualifier symbol).
					if i+1 >= n || !unicode.IsDigit(rune(src[i+1])) {
						break
					}
					seenDot = true
				}
				advance(1)
			}
			out = append(out, Token{TokNumber, src[start:i], line, startCol})
		case c == '\'':
			startLine, startCol := line, col
			advance(1)
			var sb strings.Builder
			closed := false
			for i < n {
				if src[i] == '\'' {
					// '' escapes a quote.
					if i+1 < n && src[i+1] == '\'' {
						sb.WriteByte('\'')
						advance(2)
						continue
					}
					advance(1)
					closed = true
					break
				}
				sb.WriteByte(src[i])
				advance(1)
			}
			if !closed {
				return nil, fmt.Errorf("cql: %d:%d: unterminated string literal", startLine, startCol)
			}
			out = append(out, Token{TokString, sb.String(), startLine, startCol})
		default:
			startCol := col
			// Two-character symbols first.
			if i+1 < n {
				two := src[i : i+2]
				switch two {
				case "!=", "<=", ">=", "~=", "<>":
					if two == "<>" {
						two = "!="
					}
					out = append(out, Token{TokSymbol, two, line, startCol})
					advance(2)
					continue
				}
			}
			switch c {
			case '(', ')', ',', '*', '=', '<', '>', ';', '.', '+', '-', '/':
				out = append(out, Token{TokSymbol, string(c), line, startCol})
				advance(1)
			default:
				return nil, fmt.Errorf("cql: %d:%d: unexpected character %q", line, col, c)
			}
		}
	}
	out = append(out, Token{TokEOF, "", line, col})
	return out, nil
}
