package cql

import (
	"regexp"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

// referenceLike converts a LIKE pattern to a regexp and matches — the
// independent implementation the DP matcher is checked against.
func referenceLike(s, pattern string) bool {
	var re strings.Builder
	re.WriteString("(?is)^")
	for _, r := range pattern {
		switch r {
		case '%':
			re.WriteString(".*")
		case '_':
			re.WriteString(".")
		default:
			re.WriteString(regexp.QuoteMeta(string(r)))
		}
	}
	re.WriteString("$")
	return regexp.MustCompile(re.String()).MatchString(s)
}

func TestLikeMatchesReferenceImplementation(t *testing.T) {
	rng := stats.NewRNG(1)
	alphabet := []byte("ab%_c")
	gen := func(n int) string {
		b := make([]byte, n)
		for i := range b {
			b[i] = alphabet[rng.Intn(len(alphabet))]
		}
		return string(b)
	}
	for i := 0; i < 5000; i++ {
		s := strings.ReplaceAll(strings.ReplaceAll(gen(rng.Intn(8)), "%", "x"), "_", "y")
		p := gen(rng.Intn(6))
		got := matchLike(s, p)
		want := referenceLike(s, p)
		if got != want {
			t.Fatalf("matchLike(%q, %q) = %v, reference says %v", s, p, got, want)
		}
	}
}

func TestLikeKnownCases(t *testing.T) {
	cases := []struct {
		s, p string
		want bool
	}{
		{"hello", "hello", true},
		{"hello", "HELLO", true}, // case-insensitive
		{"hello", "h%", true},
		{"hello", "%o", true},
		{"hello", "%ell%", true},
		{"hello", "h_llo", true},
		{"hello", "h_lo", false}, // length mismatch: _ is exactly one char
		{"hello", "", false},
		{"", "", true},
		{"", "%", true},
		{"abc", "%%%", true},
		{"abc", "_%_", true},
		{"ab", "_%_%_", false},
	}
	for _, c := range cases {
		if got := matchLike(c.s, c.p); got != c.want {
			t.Errorf("matchLike(%q, %q) = %v, want %v", c.s, c.p, got, c.want)
		}
	}
}

func TestLexNeverPanics(t *testing.T) {
	// Lexing arbitrary bytes must return tokens or an error, never panic.
	err := quick.Check(func(src string) bool {
		_, _ = Lex(src)
		return true
	}, &quick.Config{MaxCount: 2000})
	if err != nil {
		t.Fatal(err)
	}
}

func TestParseNeverPanics(t *testing.T) {
	// Parsing arbitrary strings must never panic across the API boundary.
	err := quick.Check(func(src string) bool {
		_, _ = ParseAll(src)
		return true
	}, &quick.Config{MaxCount: 2000})
	if err != nil {
		t.Fatal(err)
	}
}

func TestParseFuzzKeywordSoup(t *testing.T) {
	// Random keyword soup exercises every parser error path.
	rng := stats.NewRNG(2)
	words := []string{
		"SELECT", "FROM", "WHERE", "AND", "OR", "NOT", "JOIN", "ON",
		"CROWDJOIN", "CROWDORDER", "BY", "LIMIT", "GROUP", "ORDER",
		"INSERT", "INTO", "VALUES", "CREATE", "TABLE", "CROWD", "DROP",
		"t", "x", "y", "*", ",", "(", ")", "=", "'lit'", "42", "~=",
		"CROWDEQUAL", "CROWDFILTER", "CROWDCOUNT", "IS", "NULL", ";",
	}
	for i := 0; i < 3000; i++ {
		n := 1 + rng.Intn(12)
		parts := make([]string, n)
		for j := range parts {
			parts[j] = words[rng.Intn(len(words))]
		}
		src := strings.Join(parts, " ")
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("ParseAll(%q) panicked: %v", src, r)
				}
			}()
			_, _ = ParseAll(src)
		}()
	}
}

func TestExprStringRoundTripsThroughParser(t *testing.T) {
	// The String() rendering of a parsed WHERE must re-parse to an
	// expression with the same rendering (idempotent pretty-print).
	queries := []string{
		`SELECT * FROM t WHERE a = 1 AND b != 'x' OR NOT c < 2.5`,
		`SELECT * FROM t WHERE a ~= 'y' AND CROWDFILTER('q?', b)`,
		`SELECT * FROM t WHERE a IS NULL AND b IS NOT NULL`,
		`SELECT * FROM t WHERE t.a >= 3 AND u.b LIKE '%z%'`,
	}
	for _, q := range queries {
		sel1 := mustSelect(t, q)
		rendered := sel1.Where.String()
		sel2 := mustSelect(t, "SELECT * FROM t WHERE "+rendered)
		if sel2.Where.String() != rendered {
			t.Fatalf("render not idempotent:\n  first:  %s\n  second: %s",
				rendered, sel2.Where.String())
		}
	}
}
