package cql

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/model"
	"repro/internal/obs"
)

// resultSet is a batch of rows flowing between plan nodes. While the
// pipeline is still linear over a single base table, rows alias the base
// relation's tuples and baseRows maps to their indices — this is what lets
// CrowdFill memoize acquired values back into the table (CrowdDB
// semantics). Joins and projections break the aliasing.
type resultSet struct {
	bs   *boundSchema
	rows []model.Tuple
	base *model.Relation
}

// run executes a plan and materializes the output relation.
func (s *Session) run(plan PlanNode) (*model.Relation, error) {
	rs, err := s.exec(plan)
	if err != nil {
		return nil, err
	}
	schema, err := rs.bs.toSchema()
	if err != nil {
		return nil, err
	}
	out := model.NewRelation("result", schema)
	for _, r := range rs.rows {
		out.Tuples = append(out.Tuples, r.Clone())
	}
	return out, nil
}

func (s *Session) exec(node PlanNode) (*resultSet, error) {
	// Cancellation gate: a canceled query stops before its next plan stage
	// (the per-question gate in askChoice/askFill handles cancellation
	// inside a stage).
	if err := s.queryCtx().Err(); err != nil {
		return nil, err
	}
	ctx, sp := obs.ChildSpan(s.queryCtx(), "cql.stage."+stageName(node))
	if sp == nil {
		// Tracing off: execNode directly, zero overhead.
		return s.execNode(node)
	}
	// Swap the statement context for the stage span's for the duration, so
	// input stages and crowd questions executed beneath this node nest
	// under its span (sessions are single-threaded; a plain swap is safe).
	prev := s.qctx
	s.qctx = ctx
	rs, err := s.execNode(node)
	s.qctx = prev
	if rs != nil {
		sp.SetAttr(obs.Int("rows", int64(len(rs.rows))))
	}
	sp.SetError(err)
	sp.End()
	return rs, err
}

// stageName labels a plan node's stage span.
func stageName(node PlanNode) string {
	switch node.(type) {
	case *ScanNode:
		return "scan"
	case *MachineFilterNode:
		return "machine_filter"
	case *CrowdFillNode:
		return "crowd_fill"
	case *CrowdFilterNode:
		return "crowd_filter"
	case *JoinNode:
		return "join"
	case *CrowdJoinNode:
		return "crowd_join"
	case *SortNode:
		return "sort"
	case *CrowdSortNode:
		return "crowd_sort"
	case *LimitNode:
		return "limit"
	case *DistinctNode:
		return "distinct"
	case *ProjectNode:
		return "project"
	case *AggregateNode:
		return "aggregate"
	default:
		return "unknown"
	}
}

// execNode dispatches one plan node (exec wraps it with the cancellation
// gate and, when tracing, the stage span).
func (s *Session) execNode(node PlanNode) (*resultSet, error) {
	switch n := node.(type) {
	case *ScanNode:
		return s.execScan(n)
	case *MachineFilterNode:
		return s.execMachineFilter(n)
	case *CrowdFillNode:
		return s.execCrowdFill(n)
	case *CrowdFilterNode:
		return s.execCrowdFilter(n)
	case *JoinNode:
		return s.execJoin(n)
	case *CrowdJoinNode:
		return s.execCrowdJoin(n)
	case *SortNode:
		return s.execSort(n)
	case *CrowdSortNode:
		return s.execCrowdSort(n)
	case *LimitNode:
		return s.execLimit(n)
	case *DistinctNode:
		return s.execDistinct(n)
	case *ProjectNode:
		return s.execProject(n)
	case *AggregateNode:
		return s.execAggregate(n)
	default:
		return nil, fmt.Errorf("cql: unknown plan node %T", node)
	}
}

func (s *Session) execScan(n *ScanNode) (*resultSet, error) {
	rel, err := s.Catalog.Get(n.Table.Name)
	if err != nil {
		return nil, err
	}
	rs := &resultSet{
		bs:   newBoundSchema(rel, n.Table.Binding()),
		base: rel,
	}
	rs.rows = append(rs.rows, rel.Tuples...) // tuples aliased, not copied
	return rs, nil
}

func (s *Session) execMachineFilter(n *MachineFilterNode) (*resultSet, error) {
	in, err := s.exec(n.Input)
	if err != nil {
		return nil, err
	}
	out := &resultSet{bs: in.bs, base: in.base}
	for _, row := range in.rows {
		keep := true
		for _, p := range n.Preds {
			ok, err := evalMachine(p, in.bs, row)
			if err != nil {
				return nil, err
			}
			if !ok {
				keep = false
				break
			}
		}
		if keep {
			out.rows = append(out.rows, row)
		}
	}
	return out, nil
}

func (s *Session) execCrowdFill(n *CrowdFillNode) (*resultSet, error) {
	in, err := s.exec(n.Input)
	if err != nil {
		return nil, err
	}
	if in.base == nil {
		return nil, fmt.Errorf("cql: internal: CrowdFill above a non-scan pipeline")
	}
	if s.Runner == nil {
		// Check lazily: only fail if there is actually something to fill.
		for _, col := range n.Columns {
			ci := in.base.Schema.ColumnIndex(col)
			for _, row := range in.rows {
				if row[ci].IsNull() {
					return nil, fmt.Errorf("cql: crowd column %s has NULLs but the session has no crowd attached", col)
				}
			}
		}
		return in, nil
	}
	for colIdx, col := range n.Columns {
		ci := in.base.Schema.ColumnIndex(col)
		if ci < 0 {
			return nil, fmt.Errorf("cql: internal: fill column %q missing", col)
		}
		colType := in.base.Schema.Columns[ci].Type
		// Columns iterate outer, rows inner (question order is pinned by
		// golden tests), so a row is complete once the last column's loop
		// has passed it — that is where partial rows stream out.
		emit := s.progressFn != nil && PlanNode(n) == s.progressNode && colIdx == len(n.Columns)-1
		for _, row := range in.rows {
			if row[ci].IsNull() {
				truth, known := s.Oracle.fill(in.base.Name, col, row, in.base.Schema)
				text, err := s.askFill(
					fmt.Sprintf("Provide %s for %s", col, rowPreview(row)),
					truth, known)
				if err != nil {
					return nil, err
				}
				if v, perr := model.ParseValue(text, colType); perr == nil {
					row[ci] = v // aliases the base tuple: memoized
					s.Stats.Fills++
				}
				// Unparseable crowd input stays NULL rather than failing
				// the query; the cell can be retried later.
			}
			if emit {
				s.progressFn(in.bs, row)
			}
		}
	}
	return in, nil
}

func (s *Session) execCrowdFilter(n *CrowdFilterNode) (*resultSet, error) {
	in, err := s.exec(n.Input)
	if err != nil {
		return nil, err
	}
	out := &resultSet{bs: in.bs, base: in.base}
	emit := s.progressFn != nil && PlanNode(n) == s.progressNode
	for _, row := range in.rows {
		keep := true
		for _, p := range n.Preds {
			ok, err := s.evalCrowdPred(p, in.bs, row)
			if err != nil {
				return nil, err
			}
			if !ok {
				keep = false
				break
			}
		}
		if keep {
			out.rows = append(out.rows, row)
			if emit {
				s.progressFn(in.bs, row)
			}
		}
	}
	return out, nil
}

// evalCrowdPred asks the crowd one predicate about one row.
func (s *Session) evalCrowdPred(p Expr, bs *boundSchema, row model.Tuple) (bool, error) {
	switch v := p.(type) {
	case *CrowdEqual:
		idx, err := bs.resolve(v.Column)
		if err != nil {
			return false, err
		}
		val := row[idx]
		if val.IsNull() {
			return false, nil
		}
		lit := v.Literal.Value.AsString()
		truth := s.Oracle.equal(val.String(), lit)
		// Pairs that look half-similar are genuinely hard for humans too.
		sim := cost.CombinedSimilarity(val.String(), lit)
		difficulty := clampF(1-2*absF(sim-0.5), 0.05, 0.95)
		opt, err := s.askChoice(
			fmt.Sprintf("Do %q and %q refer to the same thing?", val.String(), lit),
			[]string{"no", "yes"}, boolOpt(truth), difficulty)
		if err != nil {
			return false, err
		}
		s.Stats.CrowdFilterRows++
		return opt == 1, nil
	case *CrowdFilter:
		idx, err := bs.resolve(v.Column)
		if err != nil {
			return false, err
		}
		val := row[idx]
		if val.IsNull() {
			return false, nil
		}
		truth := s.Oracle.filterTruth(v.Question, val)
		opt, err := s.askChoice(
			fmt.Sprintf("%s — %s", v.Question, val.String()),
			[]string{"no", "yes"}, boolOpt(truth), 0.3)
		if err != nil {
			return false, err
		}
		s.Stats.CrowdFilterRows++
		return opt == 1, nil
	default:
		return false, fmt.Errorf("cql: %s is not a crowd predicate", p)
	}
}

func (s *Session) execJoin(n *JoinNode) (*resultSet, error) {
	left, err := s.exec(n.Left)
	if err != nil {
		return nil, err
	}
	right, err := s.exec(n.Right)
	if err != nil {
		return nil, err
	}
	li, err := left.bs.resolve(n.LeftCol)
	if err != nil {
		// The user may have written the condition in either order.
		li, err = right.bs.resolve(n.LeftCol)
		if err == nil {
			n.LeftCol, n.RightCol = n.RightCol, n.LeftCol
			li, err = left.bs.resolve(n.LeftCol)
		}
		if err != nil {
			return nil, err
		}
	}
	ri, err := right.bs.resolve(n.RightCol)
	if err != nil {
		return nil, err
	}
	// Hash the right side.
	ht := make(map[string][]model.Tuple)
	for _, r := range right.rows {
		k := r[ri]
		if k.IsNull() {
			continue
		}
		ht[joinKey(k)] = append(ht[joinKey(k)], r)
	}
	out := &resultSet{bs: left.bs.concat(right.bs)}
	for _, l := range left.rows {
		k := l[li]
		if k.IsNull() {
			continue
		}
		for _, r := range ht[joinKey(k)] {
			merged := make(model.Tuple, 0, len(l)+len(r))
			merged = append(append(merged, l...), r...)
			out.rows = append(out.rows, merged)
		}
	}
	return out, nil
}

func joinKey(v model.Value) string {
	// Normalizes INT/FLOAT cross-type equality the same way Value.Equal
	// does.
	if v.IsNumeric() {
		return fmt.Sprintf("n:%v", v.AsFloat())
	}
	return v.Type().String() + ":" + v.String()
}

func (s *Session) execCrowdJoin(n *CrowdJoinNode) (*resultSet, error) {
	left, err := s.exec(n.Left)
	if err != nil {
		return nil, err
	}
	right, err := s.exec(n.Right)
	if err != nil {
		return nil, err
	}
	li, err := left.bs.resolve(n.LeftCol)
	if err != nil {
		return nil, err
	}
	ri, err := right.bs.resolve(n.RightCol)
	if err != nil {
		return nil, err
	}
	// Distinct string values on both sides.
	lvals := distinctStrings(left.rows, li)
	rvals := distinctStrings(right.rows, ri)
	// Machine pass: prune dissimilar pairs; exact matches auto-accept.
	matched := make(map[[2]string]bool)
	for _, lv := range lvals {
		for _, rv := range rvals {
			if strings.EqualFold(lv, rv) {
				matched[[2]string{lv, rv}] = true
				continue
			}
			sim := cost.CombinedSimilarity(lv, rv)
			if sim < s.JoinPruneLow {
				continue
			}
			truth := s.Oracle.equal(lv, rv)
			difficulty := clampF(1-2*absF(sim-0.5), 0.05, 0.95)
			opt, err := s.askChoice(
				fmt.Sprintf("Do %q and %q refer to the same entity?", lv, rv),
				[]string{"different", "same"}, boolOpt(truth), difficulty)
			if err != nil {
				return nil, err
			}
			s.Stats.CrowdJoinPairs++
			if opt == 1 {
				matched[[2]string{lv, rv}] = true
			}
		}
	}
	out := &resultSet{bs: left.bs.concat(right.bs)}
	for _, l := range left.rows {
		lv := l[li]
		if lv.IsNull() {
			continue
		}
		for _, r := range right.rows {
			rv := r[ri]
			if rv.IsNull() {
				continue
			}
			if matched[[2]string{lv.String(), rv.String()}] {
				merged := make(model.Tuple, 0, len(l)+len(r))
				merged = append(append(merged, l...), r...)
				out.rows = append(out.rows, merged)
			}
		}
	}
	return out, nil
}

func distinctStrings(rows []model.Tuple, idx int) []string {
	seen := make(map[string]bool)
	var out []string
	for _, r := range rows {
		v := r[idx]
		if v.IsNull() {
			continue
		}
		sv := v.String()
		if !seen[sv] {
			seen[sv] = true
			out = append(out, sv)
		}
	}
	return out
}

func (s *Session) execSort(n *SortNode) (*resultSet, error) {
	in, err := s.exec(n.Input)
	if err != nil {
		return nil, err
	}
	idxs := make([]int, len(n.Keys))
	for i, k := range n.Keys {
		idx, err := in.bs.resolve(k.Column)
		if err != nil {
			return nil, err
		}
		idxs[i] = idx
	}
	rows := append([]model.Tuple(nil), in.rows...)
	sort.SliceStable(rows, func(a, b int) bool {
		for i, idx := range idxs {
			cmp := rows[a][idx].Compare(rows[b][idx])
			if n.Keys[i].Desc {
				cmp = -cmp
			}
			if cmp != 0 {
				return cmp < 0
			}
		}
		return false
	})
	return &resultSet{bs: in.bs, rows: rows}, nil
}

// CrowdSortLimit caps how many rows CROWDORDER BY will compare pairwise;
// beyond this the quadratic crowd cost is almost certainly a mistake.
const CrowdSortLimit = 64

func (s *Session) execCrowdSort(n *CrowdSortNode) (*resultSet, error) {
	in, err := s.exec(n.Input)
	if err != nil {
		return nil, err
	}
	if len(in.rows) > CrowdSortLimit {
		return nil, fmt.Errorf("cql: CROWDORDER over %d rows exceeds the limit of %d; add machine filters or LIMIT first",
			len(in.rows), CrowdSortLimit)
	}
	idx, err := in.bs.resolve(n.Column)
	if err != nil {
		return nil, err
	}
	m := len(in.rows)
	if m < 2 {
		return in, nil
	}
	// Value range for difficulty scaling of numeric columns.
	lo, hi := 0.0, 0.0
	numeric := true
	for i, r := range in.rows {
		if !r[idx].IsNumeric() {
			numeric = false
			break
		}
		f := r[idx].AsFloat()
		if i == 0 || f < lo {
			lo = f
		}
		if i == 0 || f > hi {
			hi = f
		}
	}
	wins := make([]int, m)
	for a := 0; a < m; a++ {
		for b := a + 1; b < m; b++ {
			va, vb := in.rows[a][idx], in.rows[b][idx]
			truthABetter := s.Oracle.compare(n.Question, va, vb)
			difficulty := 0.4
			if numeric && hi > lo {
				gap := absF(va.AsFloat()-vb.AsFloat()) / (hi - lo)
				difficulty = clampF(1-2*gap, 0.05, 0.95)
			}
			opt, err := s.askChoice(
				fmt.Sprintf("Which ranks higher: %s or %s?", va.String(), vb.String()),
				[]string{va.String() + " (A)", vb.String() + " (B)"},
				boolToFirst(truthABetter), difficulty)
			if err != nil {
				return nil, err
			}
			s.Stats.CrowdCompares++
			if opt == 0 {
				wins[a]++
			} else {
				wins[b]++
			}
		}
	}
	order := make([]int, m)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(x, y int) bool {
		if n.Desc {
			return wins[order[x]] > wins[order[y]]
		}
		return wins[order[x]] < wins[order[y]]
	})
	out := &resultSet{bs: in.bs}
	for _, i := range order {
		out.rows = append(out.rows, in.rows[i])
	}
	return out, nil
}

func (s *Session) execLimit(n *LimitNode) (*resultSet, error) {
	in, err := s.exec(n.Input)
	if err != nil {
		return nil, err
	}
	if len(in.rows) > n.N {
		in.rows = in.rows[:n.N]
	}
	return in, nil
}

func (s *Session) execDistinct(n *DistinctNode) (*resultSet, error) {
	in, err := s.exec(n.Input)
	if err != nil {
		return nil, err
	}
	seen := make(map[string]bool, len(in.rows))
	out := &resultSet{bs: in.bs, base: in.base}
	for _, r := range in.rows {
		k := tupleKey(r)
		if !seen[k] {
			seen[k] = true
			out.rows = append(out.rows, r)
		}
	}
	return out, nil
}

func tupleKey(t model.Tuple) string {
	parts := make([]string, len(t))
	for i, v := range t {
		parts[i] = joinKey(v)
	}
	return strings.Join(parts, "\x1f")
}

func (s *Session) execProject(n *ProjectNode) (*resultSet, error) {
	in, err := s.exec(n.Input)
	if err != nil {
		return nil, err
	}
	// Star expands to everything.
	if len(n.Items) == 1 && n.Items[0].Star {
		return in, nil
	}
	outBS := &boundSchema{}
	var idxs []int
	for _, it := range n.Items {
		if it.Star {
			for i, c := range in.bs.cols {
				outBS.cols = append(outBS.cols, c)
				outBS.binding = append(outBS.binding, in.bs.binding[i])
				idxs = append(idxs, i)
			}
			continue
		}
		idx, err := in.bs.resolve(it.Column)
		if err != nil {
			return nil, err
		}
		col := in.bs.cols[idx]
		binding := in.bs.binding[idx]
		if it.Alias != "" {
			col.Name = it.Alias
			binding = ""
		}
		outBS.cols = append(outBS.cols, col)
		outBS.binding = append(outBS.binding, binding)
		idxs = append(idxs, idx)
	}
	out := &resultSet{bs: outBS}
	for _, r := range in.rows {
		nr := make(model.Tuple, len(idxs))
		for i, idx := range idxs {
			nr[i] = r[idx]
		}
		out.rows = append(out.rows, nr)
	}
	return out, nil
}

func (s *Session) execAggregate(n *AggregateNode) (*resultSet, error) {
	in, err := s.exec(n.Input)
	if err != nil {
		return nil, err
	}
	groupIdx := -1
	if n.GroupBy != "" {
		groupIdx, err = in.bs.resolve(&ColumnRef{Name: n.GroupBy})
		if err != nil {
			return nil, err
		}
	}
	// Bucket rows.
	type bucket struct {
		key  model.Value
		rows []model.Tuple
	}
	var buckets []*bucket
	if groupIdx < 0 {
		buckets = []*bucket{{key: model.Null(), rows: in.rows}}
	} else {
		byKey := map[string]*bucket{}
		for _, r := range in.rows {
			k := joinKey(r[groupIdx])
			b, ok := byKey[k]
			if !ok {
				b = &bucket{key: r[groupIdx]}
				byKey[k] = b
				buckets = append(buckets, b)
			}
			b.rows = append(b.rows, r)
		}
	}

	outBS := &boundSchema{}
	for _, it := range n.Items {
		typ := model.TypeFloat
		switch {
		case it.Agg == "COUNT":
			typ = model.TypeInt
		case it.Agg == "CROWDCOUNT":
			typ = model.TypeFloat
		case it.Agg == "":
			// Plain column (must be the group key).
			if groupIdx < 0 {
				return nil, fmt.Errorf("cql: plain column %s in aggregate without GROUP BY", it.DisplayName())
			}
			if it.Column == nil || !strings.EqualFold(it.Column.Name, n.GroupBy) {
				return nil, fmt.Errorf("cql: non-grouped column %s in aggregate", it.DisplayName())
			}
			typ = in.bs.cols[groupIdx].Type
		case it.Column != nil:
			idx, err := in.bs.resolve(it.Column)
			if err != nil {
				return nil, err
			}
			if it.Agg == "MIN" || it.Agg == "MAX" {
				typ = in.bs.cols[idx].Type
			}
		}
		outBS.cols = append(outBS.cols, model.Column{Name: it.DisplayName(), Type: typ})
		outBS.binding = append(outBS.binding, "")
	}

	out := &resultSet{bs: outBS}
	for _, b := range buckets {
		row := make(model.Tuple, len(n.Items))
		for i, it := range n.Items {
			v, err := s.aggValue(it, in.bs, b.rows, b.key, groupIdx)
			if err != nil {
				return nil, err
			}
			row[i] = v
		}
		out.rows = append(out.rows, row)
	}
	return out, nil
}

func (s *Session) aggValue(it SelectItem, bs *boundSchema, rows []model.Tuple, key model.Value, groupIdx int) (model.Value, error) {
	if it.Agg == "" {
		return key, nil
	}
	if it.Agg == "CROWDCOUNT" {
		return s.crowdCount(it, bs, rows)
	}
	if it.Agg == "COUNT" && it.Column == nil {
		return model.Int(int64(len(rows))), nil
	}
	idx, err := bs.resolve(it.Column)
	if err != nil {
		return model.Null(), err
	}
	var vals []model.Value
	for _, r := range rows {
		if !r[idx].IsNull() {
			vals = append(vals, r[idx])
		}
	}
	switch it.Agg {
	case "COUNT":
		return model.Int(int64(len(vals))), nil
	case "SUM":
		sum := 0.0
		for _, v := range vals {
			if !v.IsNumeric() {
				return model.Null(), fmt.Errorf("cql: SUM over non-numeric column %s", it.Column)
			}
			sum += v.AsFloat()
		}
		return model.Float(sum), nil
	case "AVG":
		if len(vals) == 0 {
			return model.Null(), nil
		}
		sum := 0.0
		for _, v := range vals {
			if !v.IsNumeric() {
				return model.Null(), fmt.Errorf("cql: AVG over non-numeric column %s", it.Column)
			}
			sum += v.AsFloat()
		}
		return model.Float(sum / float64(len(vals))), nil
	case "MIN", "MAX":
		if len(vals) == 0 {
			return model.Null(), nil
		}
		best := vals[0]
		for _, v := range vals[1:] {
			cmp := v.Compare(best)
			if (it.Agg == "MIN" && cmp < 0) || (it.Agg == "MAX" && cmp > 0) {
				best = v
			}
		}
		return best, nil
	default:
		return model.Null(), fmt.Errorf("cql: unknown aggregate %s", it.Agg)
	}
}

// crowdCount estimates how many rows satisfy the question via crowd-
// labeled sampling (the crowd-powered COUNT of the survey).
func (s *Session) crowdCount(it SelectItem, bs *boundSchema, rows []model.Tuple) (model.Value, error) {
	if it.Column == nil {
		return model.Null(), fmt.Errorf("cql: CROWDCOUNT requires a column argument")
	}
	idx, err := bs.resolve(it.Column)
	if err != nil {
		return model.Null(), err
	}
	n := len(rows)
	if n == 0 {
		return model.Float(0), nil
	}
	sampleSize := s.SampleSize
	if sampleSize <= 0 {
		sampleSize = 100
	}
	if sampleSize > n {
		sampleSize = n
	}
	var sample []int
	if sampleSize == n {
		sample = make([]int, n)
		for i := range sample {
			sample[i] = i
		}
	} else {
		sample = s.rng.Sample(n, sampleSize)
	}
	labels := make([]bool, 0, sampleSize)
	for _, ri := range sample {
		v := rows[ri][idx]
		if v.IsNull() {
			labels = append(labels, false)
			continue
		}
		truth := s.Oracle.filterTruth(it.CrowdCountQuestion, v)
		opt, err := s.askChoice(
			fmt.Sprintf("%s — %s", it.CrowdCountQuestion, v.String()),
			[]string{"no", "yes"}, boolOpt(truth), 0.3)
		if err != nil {
			return model.Null(), err
		}
		s.Stats.CrowdCountSamples++
		labels = append(labels, opt == 1)
	}
	est, err := cost.EstimateSelectivity(labels, n)
	if err != nil {
		return model.Null(), err
	}
	return model.Float(est.Count), nil
}

// --- crowd question plumbing ---

// askChoice issues one choice question with the session's redundancy and
// returns the majority option. The statement's context gates the question:
// a canceled query issues no further crowd work.
func (s *Session) askChoice(question string, options []string, truthOpt int, difficulty float64) (int, error) {
	if s.Runner == nil {
		return 0, fmt.Errorf("cql: crowd question without a crowd attached")
	}
	ctx := s.queryCtx()
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	task, err := s.Runner.NewTask(&core.Task{
		Kind:        core.SingleChoice,
		Question:    question,
		Options:     options,
		GroundTruth: truthOpt,
		Difficulty:  difficulty,
	})
	if err != nil {
		return 0, err
	}
	k := s.Redundancy
	if k <= 0 {
		k = 3
	}
	// One span per crowd question; the span's context flows through the
	// runner into the serving gateway, which stamps publish / lease /
	// answer / close events on it (see cqlGateway.Ask).
	qctx, sp := obs.ChildSpan(ctx, "cql.question")
	if sp != nil {
		sp.SetAttr(obs.Str("kind", "choice"),
			obs.Str("question", questionPreview(question)),
			obs.Int("redundancy", int64(k)))
	}
	opt, err := s.Runner.MajorityOptionCtx(qctx, task, k)
	if sp != nil {
		sp.SetError(err)
		sp.End()
	}
	if err != nil {
		return 0, err
	}
	s.Stats.CrowdTasks++
	s.Stats.CrowdAnswers += k
	return opt, nil
}

// questionPreview bounds a question string for span attributes.
func questionPreview(q string) string {
	if len(q) > 80 {
		return q[:77] + "..."
	}
	return q
}

// askFill issues one fill-in question and returns the most common answer
// text. known=false means even the oracle cannot say (workers then
// produce junk and the mode of junk is returned; the caller treats
// unparseable values as still-NULL).
func (s *Session) askFill(question, truth string, known bool) (string, error) {
	if s.Runner == nil {
		return "", fmt.Errorf("cql: crowd fill without a crowd attached")
	}
	ctx := s.queryCtx()
	if err := ctx.Err(); err != nil {
		return "", err
	}
	gt := truth
	if !known {
		gt = ""
	}
	task, err := s.Runner.NewTask(&core.Task{
		Kind:            core.FillIn,
		Question:        question,
		GroundTruthText: gt,
		Difficulty:      0.2,
	})
	if err != nil {
		return "", err
	}
	k := s.Redundancy
	if k <= 0 {
		k = 3
	}
	qctx, sp := obs.ChildSpan(ctx, "cql.question")
	if sp != nil {
		sp.SetAttr(obs.Str("kind", "fill"),
			obs.Str("question", questionPreview(question)),
			obs.Int("redundancy", int64(k)))
	}
	answers, err := s.Runner.CollectCtx(qctx, task, k)
	if sp != nil {
		sp.SetError(err)
		sp.End()
	}
	if err != nil {
		return "", err
	}
	s.Stats.CrowdTasks++
	s.Stats.CrowdAnswers += len(answers)
	counts := map[string]int{}
	bestText, bestN := "", 0
	for _, a := range answers {
		counts[a.Text]++
		if counts[a.Text] > bestN {
			bestText, bestN = a.Text, counts[a.Text]
		}
	}
	return bestText, nil
}

func rowPreview(t model.Tuple) string {
	s := t.String()
	if len(s) > 60 {
		s = s[:57] + "..."
	}
	return s
}

func boolOpt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// boolToFirst maps "A is better" onto option index 0.
func boolToFirst(aBetter bool) int {
	if aBetter {
		return 0
	}
	return 1
}

func absF(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func clampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
