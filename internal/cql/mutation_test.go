package cql

import (
	"strings"
	"testing"

	"repro/internal/model"
)

// seedMutation builds a table whose rows step a mid-scan predicate error:
// with the predicate `name = 'del' OR name LIKE code`, row 1 matches on
// the first disjunct (so it would be deleted/updated), row 2 has a NULL
// name (both comparisons are NULL-false, kept, no error), and row 3
// reaches `name LIKE code` with a non-string right operand, which errors.
// The scan therefore fails after the mutation candidate but before the
// end of the table — exactly the window where the pre-fix single-pass
// DELETE/UPDATE had already mutated state.
func seedMutation(t *testing.T) *Session {
	t.Helper()
	s := machineSession()
	mustExec(t, s, `CREATE TABLE m (id INT, name STRING, code INT)`)
	mustExec(t, s, `INSERT INTO m VALUES (1, 'del', 10), (2, NULL, 20), (3, 'x', 30)`)
	return s
}

const mutationPred = `name = 'del' OR name LIKE code`

// snapshotRows deep-copies a relation's tuples for later comparison.
func snapshotRows(rel *model.Relation) []model.Tuple {
	out := make([]model.Tuple, len(rel.Tuples))
	for i, row := range rel.Tuples {
		out[i] = row.Clone()
	}
	return out
}

func assertRowsEqual(t *testing.T, rel *model.Relation, want []model.Tuple) {
	t.Helper()
	if len(rel.Tuples) != len(want) {
		t.Fatalf("row count changed: %d, want %d (%v)", len(rel.Tuples), len(want), rel.Tuples)
	}
	for i := range want {
		if !rel.Tuples[i].Equal(want[i]) {
			t.Fatalf("row %d mutated: %v, want %v", i, rel.Tuples[i], want[i])
		}
	}
}

// TestDeleteAtomicOnPredicateError pins DELETE's all-or-nothing contract:
// a predicate error mid-scan must leave the table byte-identical. The
// pre-fix execDelete compacted rel.Tuples[:0] in place while iterating,
// so the error path left row 1 clobbered by row 2.
func TestDeleteAtomicOnPredicateError(t *testing.T) {
	s := seedMutation(t)
	rel, _ := s.Catalog.Get("m")
	before := snapshotRows(rel)

	_, err := s.Execute(`DELETE FROM m WHERE ` + mutationPred)
	if err == nil || !strings.Contains(err.Error(), "LIKE requires strings") {
		t.Fatalf("expected mid-scan LIKE error, got %v", err)
	}
	assertRowsEqual(t, rel, before)

	// The same statement with a clean predicate still deletes.
	mustExec(t, s, `DELETE FROM m WHERE name = 'del'`)
	if rel.Len() != 2 {
		t.Fatalf("clean delete failed: %d rows", rel.Len())
	}
}

// TestUpdateAtomicOnPredicateError pins UPDATE's all-or-nothing contract:
// the pre-fix execUpdate applied SET ops row by row during the predicate
// scan, so an error mid-scan left earlier matches already updated.
func TestUpdateAtomicOnPredicateError(t *testing.T) {
	s := seedMutation(t)
	rel, _ := s.Catalog.Get("m")
	before := snapshotRows(rel)

	_, err := s.Execute(`UPDATE m SET name = 'renamed' WHERE ` + mutationPred)
	if err == nil || !strings.Contains(err.Error(), "LIKE requires strings") {
		t.Fatalf("expected mid-scan LIKE error, got %v", err)
	}
	assertRowsEqual(t, rel, before)

	// The same SET with a clean predicate still applies.
	mustExec(t, s, `UPDATE m SET name = 'renamed' WHERE id = 1`)
	if v, _ := rel.Get(0, "name"); v.AsString() != "renamed" {
		t.Fatalf("clean update failed: %v", v)
	}
}
