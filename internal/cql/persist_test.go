package cql

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestCatalogSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := machineSession()
	seedPeople(t, s)
	mustExec(t, s, `CREATE TABLE firms (id INT, phone STRING CROWD, score FLOAT, ok BOOL)`)
	mustExec(t, s, `INSERT INTO firms VALUES (1, NULL, 2.5, TRUE), (2, '555-1', NULL, FALSE)`)

	if err := SaveCatalog(s.Catalog, dir); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCatalog(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Names()) != 2 {
		t.Fatalf("loaded tables = %v", loaded.Names())
	}
	// Schema flags and NULLs survive.
	firms, err := loaded.Get("firms")
	if err != nil {
		t.Fatal(err)
	}
	if !firms.Schema.Columns[1].Crowd {
		t.Fatal("crowd flag lost")
	}
	if v, _ := firms.Get(0, "phone"); !v.IsNull() {
		t.Fatal("NULL lost in round trip")
	}
	if v, _ := firms.Get(1, "phone"); v.AsString() != "555-1" {
		t.Fatalf("phone = %v", v)
	}
	if v, _ := firms.Get(0, "ok"); !v.AsBool() {
		t.Fatal("bool lost")
	}
	// Data equal row by row for the larger table.
	orig, _ := s.Catalog.Get("people")
	people, err := loaded.Get("people")
	if err != nil {
		t.Fatal(err)
	}
	if people.Len() != orig.Len() {
		t.Fatalf("people rows = %d vs %d", people.Len(), orig.Len())
	}
	for i := range orig.Tuples {
		if !people.Tuples[i].Equal(orig.Tuples[i]) {
			t.Fatalf("row %d mismatch: %v vs %v", i, people.Tuples[i], orig.Tuples[i])
		}
	}
	// The loaded catalog is queryable.
	s2 := NewSession(loaded, nil, nil)
	rel := mustExec(t, s2, `SELECT COUNT(*) AS n FROM people WHERE age > 20`)
	if v, _ := rel.Get(0, "n"); v.AsInt() != 4 {
		t.Fatalf("query on loaded catalog = %v", v)
	}
}

func TestLoadCatalogErrors(t *testing.T) {
	if _, err := LoadCatalog("/nonexistent/dir"); err == nil {
		t.Fatal("missing dir should fail")
	}
	dir := t.TempDir()
	// Orphan schema without CSV.
	os.WriteFile(filepath.Join(dir, "x.schema.json"),
		[]byte(`{"columns":[{"name":"a","type":"INT"}]}`), 0o644)
	if _, err := LoadCatalog(dir); err == nil {
		t.Fatal("schema without CSV should fail")
	}
	// Corrupt schema JSON.
	dir2 := t.TempDir()
	os.WriteFile(filepath.Join(dir2, "y.schema.json"), []byte(`{not json`), 0o644)
	if _, err := LoadCatalog(dir2); err == nil {
		t.Fatal("corrupt schema should fail")
	}
	// Unknown type.
	dir3 := t.TempDir()
	os.WriteFile(filepath.Join(dir3, "z.schema.json"),
		[]byte(`{"columns":[{"name":"a","type":"BLOB"}]}`), 0o644)
	if _, err := LoadCatalog(dir3); err == nil {
		t.Fatal("unknown type should fail")
	}
}

func TestSaveCatalogOverwrites(t *testing.T) {
	dir := t.TempDir()
	s := machineSession()
	mustExec(t, s, `CREATE TABLE t (a INT)`)
	mustExec(t, s, `INSERT INTO t VALUES (1)`)
	if err := SaveCatalog(s.Catalog, dir); err != nil {
		t.Fatal(err)
	}
	mustExec(t, s, `INSERT INTO t VALUES (2)`)
	if err := SaveCatalog(s.Catalog, dir); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCatalog(dir)
	if err != nil {
		t.Fatal(err)
	}
	rel, _ := loaded.Get("t")
	if rel.Len() != 2 {
		t.Fatalf("overwrite lost rows: %d", rel.Len())
	}
}

// TestSaveCatalogCrashMidSaveKeepsOldCatalog kills a save between tables
// (via the staging hook) and checks that the previously saved catalog is
// still complete and loadable: the torn save must not have published
// anything. The pre-fix SaveCatalog wrote files in place, so the first
// table of the new save had already overwritten the old data.
func TestSaveCatalogCrashMidSaveKeepsOldCatalog(t *testing.T) {
	dir := t.TempDir()
	s := machineSession()
	mustExec(t, s, `CREATE TABLE alpha (id INT, v STRING)`)
	mustExec(t, s, `INSERT INTO alpha VALUES (1, 'old-a')`)
	mustExec(t, s, `CREATE TABLE beta (id INT, v STRING)`)
	mustExec(t, s, `INSERT INTO beta VALUES (1, 'old-b')`)
	if err := SaveCatalog(s.Catalog, dir); err != nil {
		t.Fatal(err)
	}

	// Mutate both tables, then crash the re-save after the first table
	// ("alpha" sorts first) has been staged.
	mustExec(t, s, `UPDATE alpha SET v = 'new-a'`)
	mustExec(t, s, `UPDATE beta SET v = 'new-b'`)
	boom := fmt.Errorf("injected crash")
	saveCatalogHook = func(table string) error {
		if table == "alpha" {
			return boom
		}
		return nil
	}
	defer func() { saveCatalogHook = nil }()
	if err := SaveCatalog(s.Catalog, dir); err == nil {
		t.Fatal("crashed save reported success")
	}

	// The directory must still hold the previous complete catalog; staged
	// temp files from the dead save are ignored.
	loaded, err := LoadCatalog(dir)
	if err != nil {
		t.Fatalf("reload after crashed save: %v", err)
	}
	for table, want := range map[string]string{"alpha": "old-a", "beta": "old-b"} {
		rel, err := loaded.Get(table)
		if err != nil {
			t.Fatalf("table %s lost: %v", table, err)
		}
		if v, _ := rel.Get(0, "v"); v.AsString() != want {
			t.Fatalf("table %s = %v, want %q (torn save published)", table, v, want)
		}
	}

	// A clean save afterwards publishes the new data and leaves no temp
	// droppings behind.
	saveCatalogHook = nil
	if err := SaveCatalog(s.Catalog, dir); err != nil {
		t.Fatal(err)
	}
	loaded, err = LoadCatalog(dir)
	if err != nil {
		t.Fatal(err)
	}
	rel, _ := loaded.Get("alpha")
	if v, _ := rel.Get(0, "v"); v.AsString() != "new-a" {
		t.Fatalf("clean save lost update: %v", v)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("stale temp file after clean save: %s", e.Name())
		}
	}
}

// TestCatalogMixedCaseNameRoundTrip pins the exact-name round trip: the
// on-disk filename is lowercased (the catalog is case-insensitive), so
// the display name must ride in the schema JSON. The pre-fix LoadCatalog
// adopted the filename, turning "Hotels" into "hotels".
func TestCatalogMixedCaseNameRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := machineSession()
	mustExec(t, s, `CREATE TABLE Hotels (id INT, City STRING)`)
	mustExec(t, s, `INSERT INTO Hotels VALUES (1, 'Paris')`)
	if err := SaveCatalog(s.Catalog, dir); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCatalog(dir)
	if err != nil {
		t.Fatal(err)
	}
	names := loaded.Names()
	if len(names) != 1 || names[0] != "Hotels" {
		t.Fatalf("table name mangled in round trip: %v", names)
	}
	rel, err := loaded.Get("hOTELS") // lookups stay case-insensitive
	if err != nil {
		t.Fatal(err)
	}
	if rel.Name != "Hotels" {
		t.Fatalf("relation display name = %q, want Hotels", rel.Name)
	}
	if rel.Schema.Columns[1].Name != "City" {
		t.Fatalf("column case lost: %v", rel.Schema.Columns)
	}
}

func TestEstimateCostOrdersPlans(t *testing.T) {
	s := crowdSession(600, 10)
	mustExec(t, s, `CREATE TABLE items (id INT, price INT, brand STRING, specs STRING CROWD)`)
	for i := 0; i < 30; i++ {
		mustExec(t, s, fmt.Sprintf(`INSERT INTO items VALUES (%d, %d, 'b%d', NULL)`, i, i, i%5))
	}
	sel := mustSelect(t, `SELECT id FROM items WHERE price < 5 AND brand ~= 'b3'`)
	opt, err := s.Plan(sel, true)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := s.Plan(sel, false)
	if err != nil {
		t.Fatal(err)
	}
	co, err := s.EstimateCost(opt)
	if err != nil {
		t.Fatal(err)
	}
	cn, err := s.EstimateCost(naive)
	if err != nil {
		t.Fatal(err)
	}
	if co.CrowdAnswers >= cn.CrowdAnswers {
		t.Fatalf("cost model does not prefer the optimized plan: %v vs %v",
			co.CrowdAnswers, cn.CrowdAnswers)
	}
	if co.Rows <= 0 || cn.Rows <= 0 {
		t.Fatalf("degenerate row estimates: %v %v", co.Rows, cn.Rows)
	}
}

func TestExplainIncludesCostEstimate(t *testing.T) {
	s := crowdSession(601, 10)
	mustExec(t, s, `CREATE TABLE t (id INT, tag STRING CROWD)`)
	mustExec(t, s, `INSERT INTO t VALUES (1, NULL)`)
	rel := mustExec(t, s, `EXPLAIN SELECT tag FROM t`)
	if v, _ := rel.Get(0, "plan"); !strings.HasPrefix(v.AsString(), "est:") {
		t.Fatalf("EXPLAIN missing cost header: %v", rel.Tuples)
	}
}

func TestEstimateCostCoversAllNodes(t *testing.T) {
	s := crowdSession(602, 10)
	mustExec(t, s, `CREATE TABLE a (x INT, name STRING)`)
	mustExec(t, s, `CREATE TABLE b (y INT, title STRING)`)
	mustExec(t, s, `INSERT INTO a VALUES (1, 'p')`)
	mustExec(t, s, `INSERT INTO b VALUES (1, 'q')`)
	queries := []string{
		`SELECT DISTINCT x FROM a JOIN b ON a.x = b.y ORDER BY x LIMIT 3`,
		`SELECT name, COUNT(*) FROM a GROUP BY name`,
		`SELECT CROWDCOUNT('q?', name) FROM a`,
		`SELECT x FROM a CROWDJOIN b ON a.name ~= b.title`,
		`SELECT x FROM a CROWDORDER BY x`,
		`SELECT x FROM a WHERE CROWDFILTER('q?', name)`,
	}
	for _, q := range queries {
		sel := mustSelect(t, q)
		plan, err := s.Plan(sel, true)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if _, err := s.EstimateCost(plan); err != nil {
			t.Fatalf("%s: %v", q, err)
		}
	}
}
