// Service layer: named CQL sessions behind a SessionManager, with
// prepared statements, asynchronous query handles, cursor-token
// pagination, partial-result streaming, and cancellation. The surface is
// modeled on the CQLSession API (connect / execute / executeMulti /
// fetchNextPage / cancelQuery / close): a Session is single-threaded, so
// the manager serializes each session's statements behind a per-session
// mutex and exposes query handles that can be polled while a crowd query
// is still gathering answers.
package cql

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/model"
	"repro/internal/obs"
)

// ErrSessionClosed is returned for operations on a closed session.
var ErrSessionClosed = errors.New("cql: session closed")

// SessionJournal observes session-lifecycle transitions for a durability
// layer: session create/close, statement prepare, and query start/finish.
// Methods are called synchronously on the mutating path, after the
// in-memory transition is registered; implementations journal and return
// (errors surface through the store's own sticky-error machinery, not
// here). A nil journal is off — the manager makes no calls at all, so the
// non-durable path is unchanged.
type SessionJournal interface {
	SessionCreated(name string)
	SessionClosed(name string)
	StatementPrepared(session, name, src string)
	QueryStarted(session, qid, src string)
	QueryFinished(session, qid string, status QueryStatus)
}

// ServiceConfig wires a SessionManager.
type ServiceConfig struct {
	// Factory builds the underlying Session for a newly created named
	// session (catalog, runner, oracle, redundancy). Required.
	Factory func(name string) (*Session, error)
	// IdleTTL closes sessions that have neither executed nor been polled
	// for this long (0 = sessions live until closed explicitly).
	IdleTTL time.Duration
	// SweepEvery is the idle-sweeper interval (default IdleTTL/4, at
	// least 100ms). Only meaningful with IdleTTL > 0.
	SweepEvery time.Duration
	// PageSize is the default rows-per-page for query handles (default
	// 100).
	PageSize int
	// OnClose, when set, runs as a session closes — explicitly, by idle
	// sweep, or by manager shutdown — with the session's statement lock
	// held (no query mid-flight). This is the persistence hook: the
	// server saves the session catalog here.
	OnClose func(name string, s *Session)
	// OnMutate, when set, runs after every successfully executed statement
	// that changed the session's catalog (DDL/DML, or a crowd SELECT that
	// memoized fills into base tuples), with the statement lock held. This
	// is the incremental persistence hook: the server saves the catalog
	// here so a crash loses no committed mutation, not just on close.
	OnMutate func(name string, s *Session)
	// OnQueryDone, when set, observes every finished query (status
	// done/error/canceled and wall-clock duration) for metrics.
	OnQueryDone func(status QueryStatus, d time.Duration)
	// Journal, when set, records session lifecycle transitions for crash
	// recovery (see SessionJournal). Nil = durability off, zero overhead.
	Journal SessionJournal
	// Tracer, when set, records each query's execution as a trace: every
	// query runs under a fresh trace ID (carried on the handle and every
	// page as trace_id) with a cql.query root span, per-statement and
	// per-plan-stage child spans, and one cql.question span per crowd
	// question. Nil = tracing off, zero overhead.
	Tracer *obs.Collector
}

// SessionManager owns the named sessions of a CQL service.
type SessionManager struct {
	cfg ServiceConfig

	mu       sync.Mutex
	sessions map[string]*ManagedSession
	closed   bool

	stopSweep chan struct{}
	closeOnce sync.Once
}

// NewSessionManager builds a manager and starts its idle sweeper when
// IdleTTL is set. Call Close to stop it and close every session.
func NewSessionManager(cfg ServiceConfig) (*SessionManager, error) {
	if cfg.Factory == nil {
		return nil, errors.New("cql: SessionManager requires a Factory")
	}
	if cfg.PageSize <= 0 {
		cfg.PageSize = 100
	}
	m := &SessionManager{
		cfg:      cfg,
		sessions: make(map[string]*ManagedSession),
	}
	if cfg.IdleTTL > 0 {
		every := cfg.SweepEvery
		if every <= 0 {
			every = cfg.IdleTTL / 4
		}
		if every < 100*time.Millisecond {
			every = 100 * time.Millisecond
		}
		m.stopSweep = make(chan struct{})
		go m.sweepLoop(every)
	}
	return m, nil
}

// validSessionName gates names because they become directory names in the
// persisted catalog layout.
func validSessionName(name string) bool {
	if name == "" || len(name) > 64 {
		return false
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_':
		default:
			return false
		}
	}
	return true
}

// Create builds and registers a new named session. Names are
// case-insensitive and restricted to [A-Za-z0-9_-]{1,64}.
func (m *SessionManager) Create(name string) (*ManagedSession, error) {
	if !validSessionName(name) {
		return nil, fmt.Errorf("cql: invalid session name %q (want [A-Za-z0-9_-]{1,64})", name)
	}
	key := strings.ToLower(name)
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, ErrSessionClosed
	}
	if _, exists := m.sessions[key]; exists {
		m.mu.Unlock()
		return nil, fmt.Errorf("cql: session %q already exists", name)
	}
	// Reserve the name before the (possibly slow: catalog load) factory
	// call so concurrent creates cannot race to the same key.
	m.sessions[key] = nil
	m.mu.Unlock()

	sess, err := m.cfg.Factory(name)
	if err != nil || sess == nil {
		m.mu.Lock()
		delete(m.sessions, key)
		m.mu.Unlock()
		if err == nil {
			err = fmt.Errorf("cql: session factory returned nil for %q", name)
		}
		return nil, err
	}
	ms := &ManagedSession{
		name:     name,
		mgr:      m,
		sess:     sess,
		lastUsed: time.Now(),
		prepared: make(map[string]preparedStmt),
		queries:  make(map[string]*Query),
	}
	m.mu.Lock()
	if m.closed {
		// The manager closed while the factory ran. Registering now would
		// strand the session in a closed manager's map — shutdown() and the
		// OnClose persistence hook would never run for it. Drop the
		// reservation and shut the fresh session down immediately instead.
		delete(m.sessions, key)
		m.mu.Unlock()
		ms.shutdown()
		return nil, ErrSessionClosed
	}
	m.sessions[key] = ms
	m.mu.Unlock()
	if j := m.cfg.Journal; j != nil {
		j.SessionCreated(name)
	}
	return ms, nil
}

// RestoredQuery describes a query handle to resurrect during recovery:
// the id it had and the source it was executing.
type RestoredQuery struct {
	ID  string
	Src string
}

// Restore rebuilds a session from journaled state during crash recovery.
// The factory loads the session's persisted catalog as usual, prepared
// statements re-parse from their journaled source, and the queries that
// were running at crash time come back as terminal handles with status
// "recovered" — clients polling them learn the results were lost instead
// of getting a 404. No journal hooks fire: the journal already holds
// every transition being replayed. Unlike Create, a prepared source that
// no longer parses is skipped rather than fatal — grammar drift across
// versions must not block recovery.
func (m *SessionManager) Restore(name string, prepared map[string]string, queries []RestoredQuery) (*ManagedSession, error) {
	if !validSessionName(name) {
		return nil, fmt.Errorf("cql: invalid session name %q (want [A-Za-z0-9_-]{1,64})", name)
	}
	key := strings.ToLower(name)
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, ErrSessionClosed
	}
	if _, exists := m.sessions[key]; exists {
		m.mu.Unlock()
		return nil, fmt.Errorf("cql: session %q already exists", name)
	}
	m.sessions[key] = nil
	m.mu.Unlock()

	sess, err := m.cfg.Factory(name)
	if err != nil || sess == nil {
		m.mu.Lock()
		delete(m.sessions, key)
		m.mu.Unlock()
		if err == nil {
			err = fmt.Errorf("cql: session factory returned nil for %q", name)
		}
		return nil, err
	}
	ms := &ManagedSession{
		name:     name,
		mgr:      m,
		sess:     sess,
		lastUsed: time.Now(),
		prepared: make(map[string]preparedStmt),
		queries:  make(map[string]*Query),
	}
	for pname, src := range prepared {
		stmts, perr := ParseAll(src)
		if perr != nil || len(stmts) == 0 {
			continue
		}
		ms.prepared[strings.ToLower(pname)] = preparedStmt{stmts: stmts, src: src}
	}
	for _, rq := range queries {
		q := recoveredQuery(rq.ID, m.cfg.PageSize)
		ms.queries[q.id] = q
		if n := q2n(rq.ID); n > ms.nextQ {
			// New queries must not reuse a resurrected handle's id.
			ms.nextQ = n
		}
	}
	m.mu.Lock()
	if m.closed {
		delete(m.sessions, key)
		m.mu.Unlock()
		ms.shutdown()
		return nil, ErrSessionClosed
	}
	m.sessions[key] = ms
	m.mu.Unlock()
	return ms, nil
}

// Get returns the named session, if present.
func (m *SessionManager) Get(name string) (*ManagedSession, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ms, ok := m.sessions[strings.ToLower(name)]
	return ms, ok && ms != nil
}

// CloseSession cancels the session's queries, runs the OnClose hook, and
// removes it from the manager.
func (m *SessionManager) CloseSession(name string) error {
	key := strings.ToLower(name)
	m.mu.Lock()
	ms, ok := m.sessions[key]
	if ok && ms != nil {
		delete(m.sessions, key)
	}
	m.mu.Unlock()
	if !ok || ms == nil {
		return fmt.Errorf("cql: unknown session %q", name)
	}
	ms.shutdown()
	return nil
}

// SessionCount returns the number of live sessions (a metrics gauge).
func (m *SessionManager) SessionCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, ms := range m.sessions {
		if ms != nil {
			n++
		}
	}
	return n
}

// SessionNames returns the live session names, sorted.
func (m *SessionManager) SessionNames() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.sessions))
	for _, ms := range m.sessions {
		if ms != nil {
			out = append(out, ms.name)
		}
	}
	sort.Strings(out)
	return out
}

// Close stops the idle sweeper and closes every session (running the
// OnClose hook for each, so persisted catalogs are saved). Safe to call
// more than once.
func (m *SessionManager) Close() {
	m.closeOnce.Do(func() {
		if m.stopSweep != nil {
			close(m.stopSweep)
		}
		m.mu.Lock()
		m.closed = true
		var all []*ManagedSession
		for key, ms := range m.sessions {
			if ms != nil {
				all = append(all, ms)
			}
			delete(m.sessions, key)
		}
		m.mu.Unlock()
		for _, ms := range all {
			ms.shutdown()
		}
	})
}

func (m *SessionManager) sweepLoop(every time.Duration) {
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-m.stopSweep:
			return
		case <-t.C:
			m.sweepIdle(time.Now())
		}
	}
}

// sweepIdle closes sessions idle longer than IdleTTL. A session with a
// running query is never idle: crowd queries legitimately take minutes.
// With a tracer configured, a sweep that closes sessions records under
// its own root span (endpoint bg.cql-idle-sweep in the trace index);
// idle sweeps discard theirs.
func (m *SessionManager) sweepIdle(now time.Time) {
	var sp *obs.Span
	if m.cfg.Tracer != nil {
		ctx := obs.WithCollector(context.Background(), m.cfg.Tracer)
		_, sp = obs.StartSpan(ctx, "bg.cql-idle-sweep")
	}
	m.mu.Lock()
	var expired []*ManagedSession
	for key, ms := range m.sessions {
		if ms == nil {
			continue
		}
		if ms.idleSince(now) >= m.cfg.IdleTTL {
			expired = append(expired, ms)
			delete(m.sessions, key)
		}
	}
	m.mu.Unlock()
	for _, ms := range expired {
		ms.shutdown()
	}
	if sp != nil {
		if len(expired) == 0 {
			sp.Discard()
		} else {
			sp.SetAttr(obs.Int("closed", int64(len(expired))))
		}
		sp.End()
	}
}

// retainedQueries caps how many finished query handles a session keeps;
// beyond it the oldest finished handles are dropped at the next launch.
const retainedQueries = 64

// ManagedSession wraps one single-threaded Session for concurrent HTTP
// access: mu serializes statement execution (held for a crowd query's
// whole runtime), meta guards the handle bookkeeping so polling a running
// query never touches the execution lock.
type ManagedSession struct {
	name string
	mgr  *SessionManager

	mu   sync.Mutex // statement execution: the Session itself
	sess *Session

	meta     sync.Mutex // everything below
	lastUsed time.Time
	closed   bool
	running  int
	prepared map[string]preparedStmt
	queries  map[string]*Query
	nextQ    int
}

// preparedStmt keeps a prepared statement's parse alongside its source
// text; the source is what the journal records, so recovery can re-prepare
// it on a fresh session.
type preparedStmt struct {
	stmts []Statement
	src   string
}

// Name returns the session's name.
func (ms *ManagedSession) Name() string { return ms.name }

// Session exposes the underlying Session. Callers must hold no query on
// the session (single-threaded); intended for setup and tests.
func (ms *ManagedSession) Session() *Session { return ms.sess }

func (ms *ManagedSession) idleSince(now time.Time) time.Duration {
	ms.meta.Lock()
	defer ms.meta.Unlock()
	if ms.running > 0 {
		return 0
	}
	return now.Sub(ms.lastUsed)
}

// Prepare parses src once and stores it under name; ExecutePrepared runs
// it later without re-parsing. Re-preparing a name replaces it.
func (ms *ManagedSession) Prepare(name, src string) error {
	if name == "" {
		return errors.New("cql: prepared statement needs a name")
	}
	stmts, err := ParseAll(src)
	if err != nil {
		return err
	}
	if len(stmts) == 0 {
		return errors.New("cql: empty statement")
	}
	ms.meta.Lock()
	if ms.closed {
		ms.meta.Unlock()
		return ErrSessionClosed
	}
	ms.lastUsed = time.Now()
	ms.prepared[strings.ToLower(name)] = preparedStmt{stmts: stmts, src: src}
	ms.meta.Unlock()
	if j := ms.mgr.cfg.Journal; j != nil {
		j.StatementPrepared(ms.name, strings.ToLower(name), src)
	}
	return nil
}

// PreparedNames lists the session's prepared statements, sorted.
func (ms *ManagedSession) PreparedNames() []string {
	ms.meta.Lock()
	defer ms.meta.Unlock()
	out := make([]string, 0, len(ms.prepared))
	for n := range ms.prepared {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Execute parses src (one statement or a semicolon-separated script — the
// executeMulti case) and launches it, returning the query handle. The
// statement runs on its own goroutine behind the session lock; use
// Query.Wait or pagination to observe progress.
func (ms *ManagedSession) Execute(src string) (*Query, error) {
	stmts, err := ParseAll(src)
	if err != nil {
		return nil, err
	}
	if len(stmts) == 0 {
		return nil, errors.New("cql: empty statement")
	}
	return ms.launch(stmts, src)
}

// ExecutePrepared launches a statement stored by Prepare.
func (ms *ManagedSession) ExecutePrepared(name string) (*Query, error) {
	ms.meta.Lock()
	ps, ok := ms.prepared[strings.ToLower(name)]
	ms.meta.Unlock()
	if !ok {
		return nil, fmt.Errorf("cql: no prepared statement %q", name)
	}
	return ms.launch(ps.stmts, ps.src)
}

func (ms *ManagedSession) launch(stmts []Statement, src string) (*Query, error) {
	ms.meta.Lock()
	if ms.closed {
		ms.meta.Unlock()
		return nil, ErrSessionClosed
	}
	ms.pruneLocked()
	ms.nextQ++
	q := newQuery(fmt.Sprintf("q%d", ms.nextQ), ms.mgr.cfg.PageSize, ms.mgr.cfg.Tracer)
	ms.queries[q.id] = q
	ms.running++
	ms.lastUsed = time.Now()
	ms.meta.Unlock()
	if j := ms.mgr.cfg.Journal; j != nil {
		// Journaled before the goroutine starts: a crash at any later point
		// finds a started event, so the handle is resurrected as
		// "recovered" rather than vanishing.
		j.QueryStarted(ms.name, q.id, src)
	}
	go ms.run(q, stmts)
	return q, nil
}

// pruneLocked drops the oldest finished query handles beyond the
// retention cap. Callers hold ms.meta.
func (ms *ManagedSession) pruneLocked() {
	if len(ms.queries) < retainedQueries {
		return
	}
	var finished []*Query
	for _, q := range ms.queries {
		if q.Status() != QueryRunning {
			finished = append(finished, q)
		}
	}
	sort.Slice(finished, func(i, j int) bool { return q2n(finished[i].id) < q2n(finished[j].id) })
	for len(ms.queries) >= retainedQueries && len(finished) > 0 {
		delete(ms.queries, finished[0].id)
		finished = finished[1:]
	}
}

func q2n(id string) int {
	n, _ := strconv.Atoi(strings.TrimPrefix(id, "q"))
	return n
}

// stmtName labels a statement for its trace span ("Select",
// "CreateTable", ...).
func stmtName(st Statement) string {
	return strings.TrimPrefix(strings.TrimPrefix(fmt.Sprintf("%T", st), "*"), "cql.")
}

// run executes the statements behind the session lock and resolves the
// handle. Partial rows stream into the handle as crowd answers arrive.
// With a tracer configured, the whole run records under a cql.query root
// span with one cql.statement child per statement; the statement span's
// context flows into the executor, so plan-stage and crowd-question
// spans nest beneath it.
func (ms *ManagedSession) run(q *Query, stmts []Statement) {
	ms.mu.Lock()
	qctx, root := obs.ChildSpan(q.ctx, "cql.query")
	if root != nil {
		root.SetAttr(obs.Str("session", ms.name), obs.Str("query", q.id),
			obs.Int("statements", int64(len(stmts))))
	}
	var last *model.Relation
	var err error
	for i, st := range stmts {
		if err = q.ctx.Err(); err != nil {
			break
		}
		sctx, ssp := obs.ChildSpan(qctx, "cql.statement")
		if ssp != nil {
			ssp.SetAttr(obs.Int("index", int64(i)), obs.Str("type", stmtName(st)))
		}
		fillsBefore := ms.sess.Stats.Fills
		last, err = ms.sess.ExecuteStmtStream(sctx, st, q.appendPartial)
		if ssp != nil {
			ssp.SetError(err)
			ssp.End()
		}
		if err != nil {
			break
		}
		if hook := ms.mgr.cfg.OnMutate; hook != nil &&
			(stmtMutatesCatalog(st) || ms.sess.Stats.Fills > fillsBefore) {
			// Still under ms.mu: the catalog is quiescent, exactly as in the
			// OnClose hook. Per-statement persistence is cheap next to crowd
			// latency, and it means a crash after this point replays onto a
			// catalog that already holds this statement's effects.
			hook(ms.name, ms.sess)
		}
	}
	if root != nil {
		root.SetError(err)
		root.End()
	}
	ms.mu.Unlock()
	if err != nil {
		q.fail(err)
	} else {
		q.finish(last)
	}
	ms.meta.Lock()
	ms.running--
	ms.lastUsed = time.Now()
	ms.meta.Unlock()
	if j := ms.mgr.cfg.Journal; j != nil {
		j.QueryFinished(ms.name, q.id, q.Status())
	}
	if hook := ms.mgr.cfg.OnQueryDone; hook != nil {
		hook(q.Status(), time.Since(q.started))
	}
}

// stmtMutatesCatalog reports whether a statement kind writes to the
// session catalog. Crowd SELECTs can also write back (CROWDFILL memoizes
// answers into base tuples); the caller detects those through the
// session's fill counter instead.
func stmtMutatesCatalog(st Statement) bool {
	switch st.(type) {
	case *CreateTable, *Insert, *DropTable, *Delete, *Update:
		return true
	}
	return false
}

// Query returns a handle by id. Looking a handle up counts as session
// activity: a client paginating a finished crowd query's results keeps
// the session out of the idle sweeper's reach.
func (ms *ManagedSession) Query(id string) (*Query, bool) {
	ms.meta.Lock()
	defer ms.meta.Unlock()
	ms.lastUsed = time.Now()
	q, ok := ms.queries[id]
	return q, ok
}

// CancelQuery cancels a running query: its context is canceled, so no
// further crowd questions are issued, the serving gateway releases the
// in-flight task's leases, and reserved budget is refunded. Canceling a
// finished query is a no-op. The handle is returned from the same lookup
// that resolved the cancel, so a caller never sees "canceled but the
// handle is gone" even if retention pruning races it. Canceling counts as
// session activity for the idle sweeper.
func (ms *ManagedSession) CancelQuery(id string) (*Query, bool) {
	ms.meta.Lock()
	ms.lastUsed = time.Now()
	q, ok := ms.queries[id]
	ms.meta.Unlock()
	if !ok {
		return nil, false
	}
	q.cancel()
	return q, true
}

// shutdown cancels every query, waits for them to unwind, and runs the
// OnClose hook with the session quiesced.
func (ms *ManagedSession) shutdown() {
	ms.meta.Lock()
	if ms.closed {
		ms.meta.Unlock()
		return
	}
	ms.closed = true
	qs := make([]*Query, 0, len(ms.queries))
	for _, q := range ms.queries {
		qs = append(qs, q)
	}
	ms.meta.Unlock()
	for _, q := range qs {
		q.cancel()
	}
	for _, q := range qs {
		<-q.done
	}
	ms.mu.Lock()
	if ms.mgr.cfg.OnClose != nil {
		ms.mgr.cfg.OnClose(ms.name, ms.sess)
	}
	ms.mu.Unlock()
	if j := ms.mgr.cfg.Journal; j != nil {
		// Journaled after the catalog is persisted: a crash between the two
		// re-restores the session on top of its saved catalog, which is
		// merely redundant; the reverse order could mark a session closed
		// whose catalog was never saved.
		j.SessionClosed(ms.name)
	}
}

// QueryStatus is a query handle's lifecycle state.
type QueryStatus string

// Query lifecycle: running -> done | error | canceled. Recovered is the
// terminal state of a query that was running when the server crashed: its
// handle survives recovery so clients polling it learn what happened, but
// its partial results are gone — re-execute to get them back.
const (
	QueryRunning   QueryStatus = "running"
	QueryDone      QueryStatus = "done"
	QueryError     QueryStatus = "error"
	QueryCanceled  QueryStatus = "canceled"
	QueryRecovered QueryStatus = "recovered"
)

// Query is an asynchronous statement handle. While the statement runs,
// Rows holds the partial rows that have cleared the pipeline's last crowd
// stage (in emission order); when it completes, the final result replaces
// them. Cursor tokens are plain row offsets, so a token obtained from a
// partial page stays valid after completion for pipeline-shaped queries
// (no reordering stage above the crowd stage — the partial rows are a
// prefix of the final ones).
type Query struct {
	id       string
	pageSize int
	traceID  string // "" when tracing is off
	started  time.Time
	ctx      context.Context
	cancel   context.CancelFunc
	done     chan struct{}

	mu      sync.Mutex
	status  QueryStatus
	partial bool // rows are stage previews, not the final result
	cols    []string
	rows    [][]string
	errMsg  string
}

func newQuery(id string, pageSize int, tracer *obs.Collector) *Query {
	base := context.Background()
	traceID := ""
	if tracer != nil {
		// A query gets its own fresh trace, not the executing HTTP
		// request's: that request's root span ends when execute returns a
		// handle — long before a crowd query resolves — which would fire
		// the trace's keep decision while the query is still running.
		traceID = obs.NewTraceID()
		base = obs.WithCollector(obs.WithTraceID(base, traceID), tracer)
	}
	ctx, cancel := context.WithCancel(base)
	return &Query{
		id:       id,
		pageSize: pageSize,
		traceID:  traceID,
		started:  time.Now(),
		ctx:      ctx,
		cancel:   cancel,
		done:     make(chan struct{}),
		status:   QueryRunning,
	}
}

// recoveredQuery builds the terminal handle of a query lost to a crash:
// status "recovered", no rows, done already resolved, so Wait returns
// immediately and cancel is a no-op.
func recoveredQuery(id string, pageSize int) *Query {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	q := &Query{
		id:       id,
		pageSize: pageSize,
		started:  time.Now(),
		ctx:      ctx,
		cancel:   cancel,
		done:     make(chan struct{}),
		status:   QueryRecovered,
		errMsg:   "query was running when the server went down; its task was closed and budget reconciled — re-execute for results",
	}
	close(q.done)
	return q
}

// ID returns the handle's identifier (unique within its session).
func (q *Query) ID() string { return q.id }

// TraceID returns the query's trace ID ("" when tracing is off). The
// trace is readable mid-run: a crowd query's spans accumulate while it
// gathers answers.
func (q *Query) TraceID() string { return q.traceID }

// Status returns the handle's lifecycle state.
func (q *Query) Status() QueryStatus {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.status
}

// Err returns the failure message ("" while running or on success).
func (q *Query) Err() string {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.errMsg
}

// Wait blocks until the query resolves or d elapses; reports whether it
// resolved.
func (q *Query) Wait(d time.Duration) bool {
	select {
	case <-q.done:
		return true
	case <-time.After(d):
		return false
	}
}

// RowCount returns how many rows the handle currently holds (partial
// while running).
func (q *Query) RowCount() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.rows)
}

// appendPartial receives one streamed row from the executor. Statement
// boundaries reset the buffer: in a script, each streaming SELECT starts
// its partial rows afresh (the handle resolves to the last statement's
// result, matching ExecuteScript).
func (q *Query) appendPartial(cols []string, row []string) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.status != QueryRunning {
		return
	}
	if !q.partial {
		q.partial = true
		q.rows = nil
	}
	q.cols = cols
	q.rows = append(q.rows, row)
}

func (q *Query) finish(rel *model.Relation) {
	q.mu.Lock()
	q.status = QueryDone
	q.partial = false
	q.cols = nil
	q.rows = nil
	if rel != nil {
		for _, c := range rel.Schema.Columns {
			q.cols = append(q.cols, c.Name)
		}
		for _, row := range rel.Tuples {
			q.rows = append(q.rows, renderTuple(row))
		}
	}
	q.mu.Unlock()
	q.cancel() // release the context's resources
	close(q.done)
}

func (q *Query) fail(err error) {
	q.mu.Lock()
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		q.status = QueryCanceled
	} else {
		q.status = QueryError
	}
	q.errMsg = err.Error()
	q.mu.Unlock()
	q.cancel()
	close(q.done)
}

// QueryPage is one fetchNextPage response.
type QueryPage struct {
	Query   string      `json:"query_id"`
	Status  QueryStatus `json:"status"`
	Partial bool        `json:"partial"`
	Cols    []string    `json:"cols,omitempty"`
	Rows    [][]string  `json:"rows"`
	// NextPageToken resumes after this page's rows. Non-empty while more
	// rows exist or may still arrive (the query is running); "" means the
	// result is exhausted.
	NextPageToken string `json:"next_page_token,omitempty"`
	Error         string `json:"error,omitempty"`
	// TraceID identifies the query's trace (omitted when tracing is off);
	// fetch it via GET .../query/{qid}/trace.
	TraceID string `json:"trace_id,omitempty"`
}

// Page serves one page of rows starting at the cursor token ("" = from
// the start). limit <= 0 uses the handle's default page size. A token
// past the current row count on a running query returns an empty page
// with the same token — the client polls until the server makes progress.
func (q *Query) Page(token string, limit int) (QueryPage, error) {
	offset := 0
	if token != "" {
		n, err := strconv.Atoi(strings.TrimPrefix(token, "r"))
		if err != nil || !strings.HasPrefix(token, "r") || n < 0 {
			return QueryPage{}, fmt.Errorf("cql: bad page token %q", token)
		}
		offset = n
	}
	if limit <= 0 {
		limit = q.pageSize
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	end := offset + limit
	if end > len(q.rows) {
		end = len(q.rows)
	}
	page := QueryPage{
		Query:   q.id,
		Status:  q.status,
		Partial: q.partial,
		Cols:    append([]string(nil), q.cols...),
		Error:   q.errMsg,
		Rows:    [][]string{},
		TraceID: q.traceID,
	}
	if offset < end {
		page.Rows = append(page.Rows, q.rows[offset:end]...)
	} else {
		end = offset
	}
	if q.status == QueryRunning || end < len(q.rows) {
		page.NextPageToken = "r" + strconv.Itoa(end)
	}
	return page, nil
}

// renderTuple stringifies a row for the wire: NULL renders as "".
func renderTuple(t model.Tuple) []string {
	out := make([]string, len(t))
	for i, v := range t {
		if v.IsNull() {
			out[i] = ""
		} else {
			out[i] = v.String()
		}
	}
	return out
}

// ExecuteStmtStream runs one statement under ctx; for SELECTs whose plan
// ends in a streamable crowd stage (see progressTarget), sink receives
// each row as it clears that stage — partial results while the crowd is
// still answering. Other statements behave exactly as ExecuteStmtCtx.
func (s *Session) ExecuteStmtStream(ctx context.Context, stmt Statement, sink func(cols, row []string)) (*model.Relation, error) {
	sel, ok := stmt.(*Select)
	if !ok || sink == nil || s.Runner == nil {
		return s.ExecuteStmtCtx(ctx, stmt)
	}
	plan, err := s.Plan(sel, s.Optimize)
	if err != nil {
		return nil, err
	}
	if target := progressTarget(plan); target != nil {
		s.progressNode = target
		s.progressFn = func(bs *boundSchema, row model.Tuple) {
			cols := make([]string, len(bs.cols))
			for i, c := range bs.cols {
				cols[i] = c.Name
			}
			sink(cols, renderTuple(row))
		}
		defer func() { s.progressNode, s.progressFn = nil, nil }()
	}
	if ctx == nil {
		ctx = context.Background()
	}
	prev := s.qctx
	s.qctx = ctx
	defer func() { s.qctx = prev }()
	return s.run(plan)
}

// progressTarget picks the plan node whose output streams to the
// partial-result sink: the last crowd stage of a linear pipeline, looking
// through star-only projections (which pass rows unchanged). Plans whose
// crowd work sits below a join, sort, aggregate, limit, or narrowing
// projection return nil — their stage output is not a prefix of the final
// result, so serving it as partial rows would lie.
func progressTarget(p PlanNode) PlanNode {
	for p != nil {
		switch n := p.(type) {
		case *ProjectNode:
			if len(n.Items) == 1 && n.Items[0].Star {
				p = n.Input
				continue
			}
			return nil
		case *CrowdFilterNode:
			return n
		case *CrowdFillNode:
			return n
		default:
			return nil
		}
	}
	return nil
}

// PlanHasCrowd reports whether any node of the plan consults the crowd.
func PlanHasCrowd(p PlanNode) bool {
	switch n := p.(type) {
	case *CrowdFillNode, *CrowdFilterNode, *CrowdJoinNode, *CrowdSortNode:
		return true
	case *AggregateNode:
		for _, it := range n.Items {
			if it.Agg == "CROWDCOUNT" {
				return true
			}
		}
	}
	for _, c := range p.Children() {
		if PlanHasCrowd(c) {
			return true
		}
	}
	return false
}
