package cql

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/crowd"
	"repro/internal/model"
	"repro/internal/operators"
	"repro/internal/stats"
)

// machineSession returns a crowd-less session.
func machineSession() *Session {
	return NewSession(NewCatalog(), nil, stats.NewRNG(1))
}

// crowdSession returns a session with a reliable simulated crowd.
func crowdSession(seed uint64, workers int) *Session {
	rng := stats.NewRNG(seed)
	ws := crowd.NewPopulation(rng, workers, crowd.RegimeReliable)
	runner := operators.NewRunner(crowd.AsCoreWorkers(ws), nil, rng)
	return NewSession(NewCatalog(), runner, rng.Split())
}

func mustExec(t *testing.T, s *Session, src string) *model.Relation {
	t.Helper()
	rel, err := s.Execute(src)
	if err != nil {
		t.Fatalf("Execute(%q): %v", src, err)
	}
	return rel
}

func seedPeople(t *testing.T, s *Session) {
	t.Helper()
	mustExec(t, s, `CREATE TABLE people (id INT, name STRING, age INT, city STRING)`)
	mustExec(t, s, `INSERT INTO people VALUES
		(1, 'ann', 34, 'london'),
		(2, 'bob', 28, 'paris'),
		(3, 'cid', 45, 'london'),
		(4, 'dee', 19, 'tokyo'),
		(5, 'eve', 28, 'paris')`)
}

func TestMachineSelectBasics(t *testing.T) {
	s := machineSession()
	seedPeople(t, s)

	rel := mustExec(t, s, `SELECT name FROM people WHERE age > 30 ORDER BY name`)
	if rel.Len() != 2 {
		t.Fatalf("rows = %d", rel.Len())
	}
	if v, _ := rel.Get(0, "name"); v.AsString() != "ann" {
		t.Fatalf("first row = %v", rel.Tuples[0])
	}

	rel = mustExec(t, s, `SELECT name AS who, age FROM people ORDER BY age DESC, name LIMIT 2`)
	if rel.Schema.Columns[0].Name != "who" {
		t.Fatalf("alias lost: %v", rel.Schema)
	}
	if v, _ := rel.Get(0, "who"); v.AsString() != "cid" {
		t.Fatalf("order wrong: %v", rel.Tuples)
	}

	rel = mustExec(t, s, `SELECT * FROM people WHERE name LIKE '%e%' ORDER BY id`)
	if rel.Len() != 2 { // dee, eve
		t.Fatalf("LIKE rows = %d", rel.Len())
	}

	rel = mustExec(t, s, `SELECT DISTINCT city FROM people ORDER BY city`)
	if rel.Len() != 3 {
		t.Fatalf("distinct cities = %d", rel.Len())
	}
}

func TestMachineAggregates(t *testing.T) {
	s := machineSession()
	seedPeople(t, s)

	rel := mustExec(t, s, `SELECT COUNT(*), AVG(age), MIN(age), MAX(age), SUM(age) FROM people`)
	if rel.Len() != 1 {
		t.Fatalf("agg rows = %d", rel.Len())
	}
	row := rel.Tuples[0]
	if row[0].AsInt() != 5 || row[1].AsFloat() != 30.8 ||
		row[2].AsInt() != 19 || row[3].AsInt() != 45 || row[4].AsFloat() != 154 {
		t.Fatalf("agg row = %v", row)
	}

	rel = mustExec(t, s, `SELECT city, COUNT(*) AS n FROM people GROUP BY city ORDER BY n DESC, city`)
	if rel.Len() != 3 {
		t.Fatalf("group rows = %d", rel.Len())
	}
	if v, _ := rel.Get(0, "n"); v.AsInt() != 2 {
		t.Fatalf("top group = %v", rel.Tuples[0])
	}
}

func TestMachineJoin(t *testing.T) {
	s := machineSession()
	seedPeople(t, s)
	mustExec(t, s, `CREATE TABLE cities (city STRING, country STRING)`)
	mustExec(t, s, `INSERT INTO cities VALUES ('london', 'uk'), ('paris', 'fr')`)

	rel := mustExec(t, s, `SELECT name, country FROM people JOIN cities ON people.city = cities.city ORDER BY name`)
	if rel.Len() != 4 {
		t.Fatalf("join rows = %d", rel.Len())
	}
	if v, _ := rel.Get(0, "country"); v.AsString() != "uk" {
		t.Fatalf("join row = %v", rel.Tuples[0])
	}
}

func TestDDLAndIntrospection(t *testing.T) {
	s := machineSession()
	seedPeople(t, s)
	rel := mustExec(t, s, `SHOW TABLES`)
	if rel.Len() != 1 {
		t.Fatalf("SHOW TABLES rows = %d", rel.Len())
	}
	rel = mustExec(t, s, `DESCRIBE people`)
	if rel.Len() != 4 {
		t.Fatalf("DESCRIBE rows = %d", rel.Len())
	}
	mustExec(t, s, `DROP TABLE people`)
	if _, err := s.Execute(`SELECT * FROM people`); err == nil {
		t.Fatal("dropped table still queryable")
	}
	if _, err := s.Execute(`INSERT INTO people VALUES (1)`); err == nil {
		t.Fatal("insert into dropped table should fail")
	}
}

func TestInsertValidation(t *testing.T) {
	s := machineSession()
	mustExec(t, s, `CREATE TABLE t (a INT, b STRING)`)
	if _, err := s.Execute(`INSERT INTO t VALUES (1)`); err == nil {
		t.Fatal("arity mismatch should fail")
	}
	if _, err := s.Execute(`INSERT INTO t VALUES ('x', 'y')`); err == nil {
		t.Fatal("type mismatch should fail")
	}
	if _, err := s.Execute(`CREATE TABLE t (a INT)`); err == nil {
		t.Fatal("duplicate table should fail")
	}
}

func TestCrowdFillResolvesAndMemoizes(t *testing.T) {
	s := crowdSession(10, 30)
	mustExec(t, s, `CREATE TABLE firms (id INT, name STRING, phone STRING CROWD)`)
	mustExec(t, s, `INSERT INTO firms VALUES (1, 'acme', NULL), (2, 'globex', '555-2'), (3, 'initech', NULL)`)
	phones := map[string]string{"acme": "555-1", "initech": "555-3"}
	s.Oracle = &SimOracle{
		Fill: func(table, column string, row model.Tuple, schema *model.Schema) (string, bool) {
			name, _ := row[schema.ColumnIndex("name")], true
			v, ok := phones[name.AsString()]
			return v, ok
		},
	}
	rel := mustExec(t, s, `SELECT name, phone FROM firms ORDER BY id`)
	if v, _ := rel.Get(0, "phone"); v.AsString() != "555-1" {
		t.Fatalf("fill failed: %v", rel.Tuples)
	}
	if v, _ := rel.Get(2, "phone"); v.AsString() != "555-3" {
		t.Fatalf("fill failed: %v", rel.Tuples)
	}
	if s.Stats.Fills != 2 {
		t.Fatalf("fills = %d, want 2", s.Stats.Fills)
	}
	answersAfterFirst := s.Runner.AnswersUsed
	// Second query: memoized, no new crowd work.
	mustExec(t, s, `SELECT name, phone FROM firms`)
	if s.Runner.AnswersUsed != answersAfterFirst {
		t.Fatalf("fill not memoized: %d -> %d answers",
			answersAfterFirst, s.Runner.AnswersUsed)
	}
}

func TestCrowdFillWithoutCrowdFailsOnlyWhenNeeded(t *testing.T) {
	s := machineSession()
	mustExec(t, s, `CREATE TABLE firms (id INT, phone STRING CROWD)`)
	mustExec(t, s, `INSERT INTO firms VALUES (1, '555-1')`)
	// No NULLs: query fine without a crowd.
	mustExec(t, s, `SELECT phone FROM firms`)
	mustExec(t, s, `INSERT INTO firms VALUES (2, NULL)`)
	if _, err := s.Execute(`SELECT phone FROM firms`); err == nil {
		t.Fatal("NULL crowd column without crowd should fail")
	}
}

func TestCrowdEqualFilter(t *testing.T) {
	s := crowdSession(11, 30)
	mustExec(t, s, `CREATE TABLE products (id INT, brand STRING)`)
	mustExec(t, s, `INSERT INTO products VALUES
		(1, 'apple inc'), (2, 'appl inc'), (3, 'samsung corp'), (4, 'apple incorporated')`)
	canonical := map[string]string{
		"apple inc": "apple", "appl inc": "apple", "apple incorporated": "apple",
		"samsung corp": "samsung",
	}
	s.Oracle = &SimOracle{
		Equal: func(value, literal string) bool { return canonical[value] == literal },
	}
	rel := mustExec(t, s, `SELECT id FROM products WHERE brand ~= 'apple' ORDER BY id`)
	if rel.Len() != 3 {
		t.Fatalf("crowd-equal rows = %d: %v", rel.Len(), rel.Tuples)
	}
	if s.Stats.CrowdFilterRows != 4 {
		t.Fatalf("crowd filter evaluations = %d", s.Stats.CrowdFilterRows)
	}
}

func TestCrowdFilterPredicate(t *testing.T) {
	s := crowdSession(12, 30)
	mustExec(t, s, `CREATE TABLE pets (id INT, species STRING)`)
	mustExec(t, s, `INSERT INTO pets VALUES (1, 'beagle'), (2, 'tabby'), (3, 'poodle')`)
	s.Oracle = &SimOracle{
		Filter: func(question string, v model.Value) bool {
			return strings.Contains(question, "dog") &&
				(v.AsString() == "beagle" || v.AsString() == "poodle")
		},
	}
	rel := mustExec(t, s, `SELECT id FROM pets WHERE CROWDFILTER('is it a dog?', species) ORDER BY id`)
	if rel.Len() != 2 {
		t.Fatalf("crowd filter rows = %d", rel.Len())
	}
}

func TestOptimizerPushesMachineFirst(t *testing.T) {
	// With a selective machine predicate, the optimized plan should ask
	// the crowd far fewer questions than the naive plan.
	run := func(optimize bool) (int, int) {
		s := crowdSession(13, 40)
		s.Optimize = optimize
		mustExec(t, s, `CREATE TABLE items (id INT, price INT, brand STRING)`)
		var sb strings.Builder
		sb.WriteString(`INSERT INTO items VALUES `)
		for i := 0; i < 60; i++ {
			if i > 0 {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "(%d, %d, 'brand %d')", i, i, i%7)
		}
		mustExec(t, s, sb.String())
		s.Oracle = &SimOracle{
			Equal: func(value, literal string) bool { return value == "brand 3" && literal == "brand 3" },
		}
		rel := mustExec(t, s, `SELECT id FROM items WHERE price < 10 AND brand ~= 'brand 3'`)
		return s.Stats.CrowdAnswers, rel.Len()
	}
	naiveCost, naiveRows := run(false)
	optCost, optRows := run(true)
	if optRows != naiveRows {
		t.Fatalf("optimizer changed results: %d vs %d rows", optRows, naiveRows)
	}
	if optCost >= naiveCost {
		t.Fatalf("optimized crowd cost %d >= naive %d", optCost, naiveCost)
	}
	// 60 rows, price<10 keeps 10: optimized asks 10 questions * 3 votes.
	if optCost != 30 {
		t.Fatalf("optimized cost = %d, want 30", optCost)
	}
	if naiveCost != 180 {
		t.Fatalf("naive cost = %d, want 180", naiveCost)
	}
}

func TestOptimizerFillsOnlyReferencedColumns(t *testing.T) {
	s := crowdSession(14, 30)
	mustExec(t, s, `CREATE TABLE t (id INT, a STRING CROWD, b STRING CROWD)`)
	mustExec(t, s, `INSERT INTO t VALUES (1, NULL, NULL), (2, NULL, NULL)`)
	s.Oracle = &SimOracle{
		Fill: func(table, column string, row model.Tuple, schema *model.Schema) (string, bool) {
			return "v-" + column, true
		},
	}
	mustExec(t, s, `SELECT a FROM t`)
	if s.Stats.Fills != 2 {
		t.Fatalf("fills = %d, want only column a's 2", s.Stats.Fills)
	}
	// Column b untouched.
	rel, _ := s.Catalog.Get("t")
	if v, _ := rel.Get(0, "b"); !v.IsNull() {
		t.Fatal("unreferenced crowd column was filled")
	}
}

func TestCrowdJoin(t *testing.T) {
	s := crowdSession(15, 30)
	mustExec(t, s, `CREATE TABLE a (id INT, name STRING)`)
	mustExec(t, s, `CREATE TABLE b (id INT, title STRING)`)
	mustExec(t, s, `INSERT INTO a VALUES (1, 'apple iphone 6'), (2, 'dell xps laptop')`)
	mustExec(t, s, `INSERT INTO b VALUES (10, 'iphone 6 by apple'), (20, 'xps 13 dell notebook'), (30, 'sony tv')`)
	same := map[string]string{
		"apple iphone 6": "iphone", "iphone 6 by apple": "iphone",
		"dell xps laptop": "xps", "xps 13 dell notebook": "xps",
		"sony tv": "tv",
	}
	s.Oracle = &SimOracle{
		Equal: func(v, l string) bool { return same[v] != "" && same[v] == same[l] },
	}
	rel := mustExec(t, s, `SELECT a.id, b.id FROM a CROWDJOIN b ON a.name ~= b.title ORDER BY a.id`)
	if rel.Len() != 2 {
		t.Fatalf("crowd join rows = %d: %v", rel.Len(), rel.Tuples)
	}
	if s.Stats.CrowdJoinPairs == 0 {
		t.Fatal("no crowd join questions recorded")
	}
	// Pruning: sony tv vs apple iphone should never be asked (6 possible
	// pairs, at least one pruned).
	if s.Stats.CrowdJoinPairs >= 6 {
		t.Fatalf("no pruning: asked %d pairs", s.Stats.CrowdJoinPairs)
	}
}

func TestCrowdOrder(t *testing.T) {
	s := crowdSession(16, 40)
	mustExec(t, s, `CREATE TABLE photos (id INT, quality INT)`)
	mustExec(t, s, `INSERT INTO photos VALUES (1, 10), (2, 90), (3, 50), (4, 70), (5, 30)`)
	rel := mustExec(t, s, `SELECT id FROM photos CROWDORDER BY quality DESC`)
	got := make([]int64, rel.Len())
	for i := range rel.Tuples {
		got[i] = rel.Tuples[i][0].AsInt()
	}
	want := []int64{2, 4, 3, 5, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("crowd order = %v, want %v", got, want)
		}
	}
	if s.Stats.CrowdCompares != 10 {
		t.Fatalf("compares = %d, want C(5,2)=10", s.Stats.CrowdCompares)
	}
}

func TestCrowdOrderLimitGuard(t *testing.T) {
	s := crowdSession(17, 30)
	mustExec(t, s, `CREATE TABLE big (id INT)`)
	var sb strings.Builder
	sb.WriteString(`INSERT INTO big VALUES `)
	for i := 0; i < 100; i++ {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "(%d)", i)
	}
	mustExec(t, s, sb.String())
	if _, err := s.Execute(`SELECT id FROM big CROWDORDER BY id`); err == nil {
		t.Fatal("oversized CROWDORDER should fail")
	}
}

func TestCrowdCount(t *testing.T) {
	s := crowdSession(18, 40)
	s.SampleSize = 80
	mustExec(t, s, `CREATE TABLE animals (id INT, img STRING)`)
	var sb strings.Builder
	sb.WriteString(`INSERT INTO animals VALUES `)
	for i := 0; i < 200; i++ {
		kind := "cat"
		if i%4 == 0 { // 25% dogs
			kind = "dog"
		}
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "(%d, 'img-%s-%d')", i, kind, i)
	}
	mustExec(t, s, sb.String())
	s.Oracle = &SimOracle{
		Filter: func(q string, v model.Value) bool {
			return strings.Contains(v.AsString(), "dog")
		},
	}
	rel := mustExec(t, s, `SELECT CROWDCOUNT('is it a dog?', img) AS dogs FROM animals`)
	v, _ := rel.Get(0, "dogs")
	if v.AsFloat() < 30 || v.AsFloat() > 70 {
		t.Fatalf("crowd count = %v, want ~50", v)
	}
	if s.Stats.CrowdCountSamples != 80 {
		t.Fatalf("samples = %d", s.Stats.CrowdCountSamples)
	}
}

func TestCrowdQueriesRequireCrowd(t *testing.T) {
	s := machineSession()
	seedPeople(t, s)
	for _, q := range []string{
		`SELECT * FROM people WHERE name ~= 'ann'`,
		`SELECT * FROM people CROWDORDER BY age`,
		`SELECT CROWDCOUNT('q', name) FROM people`,
	} {
		if _, err := s.Execute(q); err == nil {
			t.Errorf("%q should fail without a crowd", q)
		}
	}
}

func TestMixedCrowdPredicateRejected(t *testing.T) {
	s := crowdSession(19, 10)
	mustExec(t, s, `CREATE TABLE t (a STRING, b INT)`)
	if _, err := s.Execute(`SELECT * FROM t WHERE a ~= 'x' OR b = 1`); err == nil {
		t.Fatal("crowd predicate under OR should be rejected")
	}
}

func TestExplainShowsPlanShape(t *testing.T) {
	s := crowdSession(20, 10)
	mustExec(t, s, `CREATE TABLE t (id INT, name STRING, tag STRING CROWD)`)
	rel := mustExec(t, s, `EXPLAIN SELECT name FROM t WHERE id < 5 AND name ~= 'x' ORDER BY name LIMIT 3`)
	var lines []string
	for _, r := range rel.Tuples {
		lines = append(lines, r[0].AsString())
	}
	text := strings.Join(lines, "\n")
	for _, want := range []string{"Limit 3", "Sort", "Project", "CrowdFilter", "MachineFilter", "Scan t"} {
		if !strings.Contains(text, want) {
			t.Fatalf("EXPLAIN missing %q:\n%s", want, text)
		}
	}
	// Optimized: machine filter below crowd filter.
	if strings.Index(text, "CrowdFilter") > strings.Index(text, "MachineFilter") {
		t.Fatalf("optimizer did not order crowd above machine:\n%s", text)
	}
}

func TestExecuteScript(t *testing.T) {
	s := machineSession()
	rel, err := s.ExecuteScript(`
		CREATE TABLE t (a INT);
		INSERT INTO t VALUES (1), (2), (3);
		SELECT COUNT(*) AS n FROM t;
	`)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := rel.Get(0, "n"); v.AsInt() != 3 {
		t.Fatalf("script result = %v", rel.Tuples)
	}
}

func TestUnknownColumnsAndTables(t *testing.T) {
	s := machineSession()
	seedPeople(t, s)
	for _, q := range []string{
		`SELECT nope FROM people`,
		`SELECT * FROM ghosts`,
		`SELECT * FROM people WHERE ghost = 1`,
		`SELECT * FROM people ORDER BY ghost`,
		`SELECT name, COUNT(*) FROM people`,
	} {
		if _, err := s.Execute(q); err == nil {
			t.Errorf("%q should fail", q)
		}
	}
}

func TestAmbiguousColumnRejected(t *testing.T) {
	s := machineSession()
	mustExec(t, s, `CREATE TABLE a (id INT, v INT)`)
	mustExec(t, s, `CREATE TABLE b (id INT, w INT)`)
	mustExec(t, s, `INSERT INTO a VALUES (1, 10)`)
	mustExec(t, s, `INSERT INTO b VALUES (1, 20)`)
	if _, err := s.Execute(`SELECT id FROM a JOIN b ON a.id = b.id`); err == nil {
		t.Fatal("ambiguous column should fail")
	}
	// Qualified works, and duplicate output names get prefixed.
	rel := mustExec(t, s, `SELECT a.id, b.id FROM a JOIN b ON a.id = b.id`)
	if rel.Schema.Columns[0].Name == rel.Schema.Columns[1].Name {
		t.Fatalf("duplicate output names: %v", rel.Schema)
	}
}

func TestDelete(t *testing.T) {
	s := machineSession()
	seedPeople(t, s)
	rel := mustExec(t, s, `DELETE FROM people WHERE age < 30`)
	if v, _ := rel.Get(0, "status"); !strings.Contains(v.AsString(), "deleted 3") {
		t.Fatalf("delete status = %v", v)
	}
	left := mustExec(t, s, `SELECT COUNT(*) AS n FROM people`)
	if v, _ := left.Get(0, "n"); v.AsInt() != 2 {
		t.Fatalf("remaining rows = %v", v)
	}
	// DELETE without WHERE clears the table.
	mustExec(t, s, `DELETE FROM people`)
	empty := mustExec(t, s, `SELECT COUNT(*) AS n FROM people`)
	if v, _ := empty.Get(0, "n"); v.AsInt() != 0 {
		t.Fatalf("rows after full delete = %v", v)
	}
	// Crowd predicates rejected.
	mustExec(t, s, `INSERT INTO people VALUES (9, 'zed', 50, 'oslo')`)
	if _, err := s.Execute(`DELETE FROM people WHERE name ~= 'zed'`); err == nil {
		t.Fatal("crowd predicate in DELETE should fail")
	}
	if _, err := s.Execute(`DELETE FROM ghosts`); err == nil {
		t.Fatal("unknown table should fail")
	}
}

func TestUpdate(t *testing.T) {
	s := machineSession()
	seedPeople(t, s)
	rel := mustExec(t, s, `UPDATE people SET city = 'berlin', age = 30 WHERE city = 'paris'`)
	if v, _ := rel.Get(0, "status"); !strings.Contains(v.AsString(), "updated 2") {
		t.Fatalf("update status = %v", v)
	}
	check := mustExec(t, s, `SELECT COUNT(*) AS n FROM people WHERE city = 'berlin' AND age = 30`)
	if v, _ := check.Get(0, "n"); v.AsInt() != 2 {
		t.Fatalf("updated rows = %v", v)
	}
	// UPDATE without WHERE touches everything.
	mustExec(t, s, `UPDATE people SET age = 99`)
	all := mustExec(t, s, `SELECT COUNT(*) AS n FROM people WHERE age = 99`)
	if v, _ := all.Get(0, "n"); v.AsInt() != 5 {
		t.Fatalf("mass update rows = %v", v)
	}
	// Validation.
	if _, err := s.Execute(`UPDATE people SET ghost = 1`); err == nil {
		t.Fatal("unknown column should fail")
	}
	if _, err := s.Execute(`UPDATE people SET age = 'old'`); err == nil {
		t.Fatal("type mismatch should fail")
	}
	if _, err := s.Execute(`UPDATE people SET age = 1 WHERE name ~= 'ann'`); err == nil {
		t.Fatal("crowd predicate in UPDATE should fail")
	}
	// INT coerces into FLOAT columns.
	mustExec(t, s, `CREATE TABLE f (v FLOAT)`)
	mustExec(t, s, `INSERT INTO f VALUES (1.5)`)
	mustExec(t, s, `UPDATE f SET v = 2`)
	got := mustExec(t, s, `SELECT v FROM f`)
	if v, _ := got.Get(0, "v"); v.AsFloat() != 2 {
		t.Fatalf("coerced update = %v", v)
	}
}

func TestInsertSelect(t *testing.T) {
	s := machineSession()
	seedPeople(t, s)
	mustExec(t, s, `CREATE TABLE adults (id INT, name STRING)`)
	rel := mustExec(t, s, `INSERT INTO adults SELECT id, name FROM people WHERE age >= 28`)
	if v, _ := rel.Get(0, "status"); !strings.Contains(v.AsString(), "inserted 4") {
		t.Fatalf("insert-select status = %v", v)
	}
	check := mustExec(t, s, `SELECT COUNT(*) AS n FROM adults`)
	if v, _ := check.Get(0, "n"); v.AsInt() != 4 {
		t.Fatalf("adults rows = %v", v)
	}
	// Arity mismatch rejected.
	if _, err := s.Execute(`INSERT INTO adults SELECT id FROM people`); err == nil {
		t.Fatal("arity mismatch should fail")
	}
	// Type mismatch rejected.
	if _, err := s.Execute(`INSERT INTO adults SELECT name, name FROM people`); err == nil {
		t.Fatal("type mismatch should fail")
	}
	// Self-referential copy works (source materialized before insert).
	before := mustExec(t, s, `SELECT COUNT(*) AS n FROM adults`)
	mustExec(t, s, `INSERT INTO adults SELECT id, name FROM adults`)
	after := mustExec(t, s, `SELECT COUNT(*) AS n FROM adults`)
	b, _ := before.Get(0, "n")
	a, _ := after.Get(0, "n")
	if a.AsInt() != 2*b.AsInt() {
		t.Fatalf("self-insert: %v -> %v", b, a)
	}
}

func TestHaving(t *testing.T) {
	s := machineSession()
	seedPeople(t, s)
	rel := mustExec(t, s, `SELECT city, COUNT(*) AS n FROM people GROUP BY city HAVING n > 1 ORDER BY city`)
	if rel.Len() != 2 { // london and paris have 2 each
		t.Fatalf("HAVING rows = %d: %v", rel.Len(), rel.Tuples)
	}
	// HAVING on aggregate expression name form.
	rel = mustExec(t, s, `SELECT city, AVG(age) AS a FROM people GROUP BY city HAVING a >= 30`)
	for _, row := range rel.Tuples {
		if row[1].AsFloat() < 30 {
			t.Fatalf("HAVING leaked row %v", row)
		}
	}
	if _, err := s.Execute(`SELECT city FROM people HAVING city = 'x'`); err == nil {
		t.Fatal("HAVING without GROUP BY should fail")
	}
	if _, err := s.Execute(`SELECT city, COUNT(*) AS n FROM people GROUP BY city HAVING city ~= 'x'`); err == nil {
		t.Fatal("crowd predicate in HAVING should fail")
	}
}
