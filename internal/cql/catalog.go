package cql

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/model"
)

// Catalog holds the named relations of a CQL session. It is the (single
// node, in-memory) storage engine of the system; durable storage is out of
// scope for the reproduction, whose experiments are bounded by crowd cost,
// not I/O.
type Catalog struct {
	tables map[string]*model.Relation
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{tables: make(map[string]*model.Relation)}
}

// Create registers a new table. Table names are case-insensitive.
func (c *Catalog) Create(name string, schema *model.Schema) error {
	key := strings.ToLower(name)
	if _, exists := c.tables[key]; exists {
		return fmt.Errorf("cql: table %q already exists", name)
	}
	c.tables[key] = model.NewRelation(name, schema)
	return nil
}

// Get returns the named table.
func (c *Catalog) Get(name string) (*model.Relation, error) {
	rel, ok := c.tables[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("cql: unknown table %q", name)
	}
	return rel, nil
}

// Drop removes the named table.
func (c *Catalog) Drop(name string) error {
	key := strings.ToLower(name)
	if _, ok := c.tables[key]; !ok {
		return fmt.Errorf("cql: unknown table %q", name)
	}
	delete(c.tables, key)
	return nil
}

// Names returns the table names, sorted.
func (c *Catalog) Names() []string {
	out := make([]string, 0, len(c.tables))
	for _, rel := range c.tables {
		out = append(out, rel.Name)
	}
	sort.Strings(out)
	return out
}

// boundRow is a row in flight through the executor: values plus the
// binding metadata to resolve qualified column references after joins.
type boundSchema struct {
	// cols[i] describes output column i.
	cols []model.Column
	// binding[i] is the table binding (alias or name) column i came from.
	binding []string
}

func newBoundSchema(rel *model.Relation, binding string) *boundSchema {
	bs := &boundSchema{}
	for _, c := range rel.Schema.Columns {
		bs.cols = append(bs.cols, c)
		bs.binding = append(bs.binding, strings.ToLower(binding))
	}
	return bs
}

// resolve finds the index of a (possibly qualified) column reference.
func (bs *boundSchema) resolve(ref *ColumnRef) (int, error) {
	name := strings.ToLower(ref.Name)
	table := strings.ToLower(ref.Table)
	found := -1
	for i, c := range bs.cols {
		if strings.ToLower(c.Name) != name {
			continue
		}
		if table != "" && bs.binding[i] != table {
			continue
		}
		if found >= 0 {
			return 0, fmt.Errorf("cql: ambiguous column %q", ref)
		}
		found = i
	}
	if found < 0 {
		return 0, fmt.Errorf("cql: unknown column %q", ref)
	}
	return found, nil
}

// concat merges two bound schemas (for joins).
func (bs *boundSchema) concat(other *boundSchema) *boundSchema {
	out := &boundSchema{}
	out.cols = append(append([]model.Column{}, bs.cols...), other.cols...)
	out.binding = append(append([]string{}, bs.binding...), other.binding...)
	return out
}

// toSchema converts to a model.Schema, renaming duplicate column names
// with their binding prefix.
func (bs *boundSchema) toSchema() (*model.Schema, error) {
	seen := map[string]int{}
	for _, c := range bs.cols {
		seen[strings.ToLower(c.Name)]++
	}
	cols := make([]model.Column, len(bs.cols))
	for i, c := range bs.cols {
		name := c.Name
		if seen[strings.ToLower(c.Name)] > 1 {
			name = bs.binding[i] + "_" + c.Name
		}
		cols[i] = model.Column{Name: name, Type: c.Type, Crowd: c.Crowd}
	}
	return model.NewSchema(cols...)
}
