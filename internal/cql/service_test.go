package cql

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/operators"
	"repro/internal/stats"
)

// testManager builds a manager whose sessions are crowd-less.
func testManager(t *testing.T) *SessionManager {
	t.Helper()
	m, err := NewSessionManager(ServiceConfig{
		Factory: func(name string) (*Session, error) { return machineSession(), nil },
	})
	if err != nil {
		t.Fatalf("NewSessionManager: %v", err)
	}
	t.Cleanup(m.Close)
	return m
}

// mustRun executes src on the session and waits for the handle to finish.
func mustRun(t *testing.T, ms *ManagedSession, src string) *Query {
	t.Helper()
	q, err := ms.Execute(src)
	if err != nil {
		t.Fatalf("Execute(%q): %v", src, err)
	}
	if !q.Wait(5 * time.Second) {
		t.Fatalf("Execute(%q): query %s did not finish", src, q.ID())
	}
	if st := q.Status(); st != QueryDone {
		t.Fatalf("Execute(%q): status %s, err %q", src, st, q.Err())
	}
	return q
}

func TestSessionManagerLifecycle(t *testing.T) {
	var closedMu sync.Mutex
	var closed []string
	m, err := NewSessionManager(ServiceConfig{
		Factory: func(name string) (*Session, error) { return machineSession(), nil },
		OnClose: func(name string, s *Session) {
			closedMu.Lock()
			closed = append(closed, name)
			closedMu.Unlock()
		},
	})
	if err != nil {
		t.Fatalf("NewSessionManager: %v", err)
	}

	if _, err := m.Create("bad name!"); err == nil {
		t.Fatal("invalid session name accepted")
	}
	ms, err := m.Create("Alpha")
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if _, err := m.Create("alpha"); err == nil {
		t.Fatal("duplicate (case-insensitive) session name accepted")
	}
	if got, ok := m.Get("ALPHA"); !ok || got != ms {
		t.Fatal("Get is not case-insensitive")
	}
	if n := m.SessionCount(); n != 1 {
		t.Fatalf("SessionCount = %d", n)
	}
	if names := m.SessionNames(); len(names) != 1 || names[0] != "Alpha" {
		t.Fatalf("SessionNames = %v", names)
	}

	if err := m.CloseSession("nope"); err == nil {
		t.Fatal("closing unknown session did not error")
	}
	if err := m.CloseSession("alpha"); err != nil {
		t.Fatalf("CloseSession: %v", err)
	}
	if _, ok := m.Get("alpha"); ok {
		t.Fatal("closed session still visible")
	}
	if _, err := ms.Execute(`CREATE TABLE t (id INT)`); err != ErrSessionClosed {
		t.Fatalf("Execute on closed session: %v", err)
	}

	if _, err := m.Create("beta"); err != nil {
		t.Fatalf("Create after close: %v", err)
	}
	m.Close()
	m.Close() // idempotent
	if _, err := m.Create("gamma"); err != ErrSessionClosed {
		t.Fatalf("Create on closed manager: %v", err)
	}
	closedMu.Lock()
	defer closedMu.Unlock()
	if len(closed) != 2 || closed[0] != "Alpha" || closed[1] != "beta" {
		t.Fatalf("OnClose ran for %v, want [Alpha beta]", closed)
	}
}

func TestIdleSweepSkipsBusySessions(t *testing.T) {
	remote := newGatedRemote(1, 1)
	var closedMu sync.Mutex
	closed := map[string]bool{}
	m, err := NewSessionManager(ServiceConfig{
		Factory: func(name string) (*Session, error) {
			if name == "busy" {
				return remoteSession(remote), nil
			}
			return machineSession(), nil
		},
		IdleTTL: time.Hour,
		OnClose: func(name string, s *Session) {
			closedMu.Lock()
			closed[name] = true
			closedMu.Unlock()
		},
	})
	if err != nil {
		t.Fatalf("NewSessionManager: %v", err)
	}
	defer m.Close()

	idle, _ := m.Create("idle")
	mustRun(t, idle, `CREATE TABLE t (id INT)`)
	busy, _ := m.Create("busy")
	mustRun(t, busy, `CREATE TABLE pets (id INT, kind STRING)`)
	mustRun(t, busy, `INSERT INTO pets VALUES (1, 'beagle')`)
	q, err := busy.Execute(`SELECT * FROM pets WHERE CROWDFILTER('dog?', kind)`)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	remote.waitCalls(t, 1) // the crowd question is in flight, blocked

	// Two hours later the idle session expires; the busy one survives
	// because its query is still running.
	m.sweepIdle(time.Now().Add(2 * time.Hour))
	if _, ok := m.Get("idle"); ok {
		t.Fatal("idle session survived the sweep")
	}
	if _, ok := m.Get("busy"); !ok {
		t.Fatal("busy session was swept mid-query")
	}
	closedMu.Lock()
	if !closed["idle"] || closed["busy"] {
		t.Fatalf("OnClose state wrong: %v", closed)
	}
	closedMu.Unlock()

	remote.release()
	if !q.Wait(5 * time.Second) {
		t.Fatal("busy query did not finish after release")
	}
}

func TestPreparedStatements(t *testing.T) {
	m := testManager(t)
	ms, _ := m.Create("s1")
	mustRun(t, ms, `CREATE TABLE nums (id INT)`)
	mustRun(t, ms, `INSERT INTO nums VALUES (1), (2), (3)`)

	if err := ms.Prepare("", `SELECT id FROM nums`); err == nil {
		t.Fatal("unnamed prepared statement accepted")
	}
	if err := ms.Prepare("bad", `SELEC id FROM nums`); err == nil {
		t.Fatal("unparsable prepared statement accepted")
	}
	if err := ms.Prepare("evens", `SELECT id FROM nums WHERE id = 2`); err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	if names := ms.PreparedNames(); len(names) != 1 || names[0] != "evens" {
		t.Fatalf("PreparedNames = %v", names)
	}
	if _, err := ms.ExecutePrepared("odds"); err == nil {
		t.Fatal("unknown prepared statement executed")
	}

	q, err := ms.ExecutePrepared("Evens") // names are case-insensitive
	if err != nil {
		t.Fatalf("ExecutePrepared: %v", err)
	}
	if !q.Wait(5*time.Second) || q.Status() != QueryDone {
		t.Fatalf("prepared query: status %s err %q", q.Status(), q.Err())
	}
	page, err := q.Page("", 10)
	if err != nil {
		t.Fatalf("Page: %v", err)
	}
	if len(page.Rows) != 1 || page.Rows[0][0] != "2" {
		t.Fatalf("prepared result = %v", page.Rows)
	}

	// Re-preparing a name replaces the statement.
	if err := ms.Prepare("evens", `SELECT id FROM nums WHERE id <> 2 ORDER BY id`); err != nil {
		t.Fatalf("re-Prepare: %v", err)
	}
	q2, _ := ms.ExecutePrepared("evens")
	q2.Wait(5 * time.Second)
	if page, _ = q2.Page("", 10); len(page.Rows) != 2 {
		t.Fatalf("replaced prepared result = %v", page.Rows)
	}
}

func TestQueryPagination(t *testing.T) {
	m := testManager(t)
	ms, _ := m.Create("s1")
	mustRun(t, ms, `CREATE TABLE nums (id INT)`)
	var sb strings.Builder
	sb.WriteString(`INSERT INTO nums VALUES `)
	for i := 1; i <= 10; i++ {
		if i > 1 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "(%d)", i)
	}
	mustRun(t, ms, sb.String())
	q := mustRun(t, ms, `SELECT id FROM nums ORDER BY id`)

	got, _ := ms.Query(q.ID())
	if got != q {
		t.Fatal("Query lookup by id failed")
	}

	var rows [][]string
	token, pages := "", 0
	for {
		page, err := q.Page(token, 4)
		if err != nil {
			t.Fatalf("Page(%q): %v", token, err)
		}
		if page.Partial || page.Status != QueryDone {
			t.Fatalf("finished query page = %+v", page)
		}
		rows = append(rows, page.Rows...)
		pages++
		if page.NextPageToken == "" {
			break
		}
		token = page.NextPageToken
	}
	if pages != 3 || len(rows) != 10 {
		t.Fatalf("pages=%d rows=%d", pages, len(rows))
	}
	if rows[0][0] != "1" || rows[9][0] != "10" {
		t.Fatalf("row order wrong: %v", rows)
	}

	if _, err := q.Page("zzz", 4); err == nil {
		t.Fatal("bad page token accepted")
	}
	// Beyond-the-end token on a finished query: empty terminal page.
	page, err := q.Page("r10", 4)
	if err != nil || len(page.Rows) != 0 || page.NextPageToken != "" {
		t.Fatalf("past-end page = %+v err=%v", page, err)
	}
}

func TestExecuteMultiScript(t *testing.T) {
	m := testManager(t)
	ms, _ := m.Create("s1")
	q, err := ms.Execute(`
		CREATE TABLE t (id INT, name STRING);
		INSERT INTO t VALUES (1, 'a'), (2, 'b');
		SELECT name FROM t ORDER BY id DESC`)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if !q.Wait(5*time.Second) || q.Status() != QueryDone {
		t.Fatalf("script: status %s err %q", q.Status(), q.Err())
	}
	page, _ := q.Page("", 10)
	if len(page.Cols) != 1 || page.Cols[0] != "name" {
		t.Fatalf("script cols = %v", page.Cols)
	}
	if len(page.Rows) != 2 || page.Rows[0][0] != "b" {
		t.Fatalf("script rows = %v", page.Rows)
	}

	// A failing statement mid-script surfaces on the handle.
	q2, err := ms.Execute(`INSERT INTO t VALUES (3, 'c'); SELECT nope FROM t`)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	q2.Wait(5 * time.Second)
	if q2.Status() != QueryError || q2.Err() == "" {
		t.Fatalf("script error: status %s err %q", q2.Status(), q2.Err())
	}
}

// gatedRemote answers every crowd question with a fixed option, blocking
// from question number blockAfter (1-based) onward until released or the
// query context is canceled. It stands in for the serving-pool gateway.
type gatedRemote struct {
	option     int
	blockAfter int // 0 = never block
	releaseCh  chan struct{}

	mu    sync.Mutex
	calls int
}

func newGatedRemote(option, blockAfter int) *gatedRemote {
	return &gatedRemote{option: option, blockAfter: blockAfter, releaseCh: make(chan struct{})}
}

func (g *gatedRemote) release() { close(g.releaseCh) }

func (g *gatedRemote) callCount() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.calls
}

func (g *gatedRemote) waitCalls(t *testing.T, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for g.callCount() < n {
		if time.Now().After(deadline) {
			t.Fatalf("remote saw %d calls, want %d", g.callCount(), n)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func (g *gatedRemote) Ask(ctx context.Context, t *core.Task, k int) ([]core.Answer, error) {
	g.mu.Lock()
	g.calls++
	n := g.calls
	g.mu.Unlock()
	if g.blockAfter > 0 && n >= g.blockAfter {
		select {
		case <-g.releaseCh:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	out := make([]core.Answer, k)
	for i := range out {
		out[i] = core.Answer{Task: t.ID, Worker: fmt.Sprintf("w%d", i), Option: g.option}
	}
	return out, nil
}

// remoteSession builds a session whose crowd questions go to remote.
func remoteSession(remote operators.RemoteSource) *Session {
	rng := stats.NewRNG(7)
	runner := operators.NewRunner(nil, nil, rng)
	runner.Remote = remote
	return NewSession(NewCatalog(), runner, rng.Split())
}

func TestCrowdQueryStreamsPartialRows(t *testing.T) {
	remote := newGatedRemote(1, 3) // answer "yes", block on the 3rd question
	m, err := NewSessionManager(ServiceConfig{
		Factory: func(name string) (*Session, error) { return remoteSession(remote), nil },
	})
	if err != nil {
		t.Fatalf("NewSessionManager: %v", err)
	}
	defer m.Close()
	ms, _ := m.Create("s1")
	mustRun(t, ms, `CREATE TABLE pets (id INT, kind STRING)`)
	mustRun(t, ms, `INSERT INTO pets VALUES (1, 'beagle'), (2, 'poodle'), (3, 'husky')`)

	q, err := ms.Execute(`SELECT * FROM pets WHERE CROWDFILTER('dog?', kind)`)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}

	// The first two questions answer immediately; their rows must appear
	// on the handle while the third question is still blocked.
	deadline := time.Now().Add(5 * time.Second)
	for q.RowCount() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("partial rows = %d after 5s (status %s)", q.RowCount(), q.Status())
		}
		time.Sleep(2 * time.Millisecond)
	}
	page, err := q.Page("", 10)
	if err != nil {
		t.Fatalf("Page: %v", err)
	}
	if page.Status != QueryRunning || !page.Partial {
		t.Fatalf("mid-flight page status=%s partial=%v", page.Status, page.Partial)
	}
	if len(page.Rows) != 2 || page.Rows[0][1] != "beagle" || page.Rows[1][1] != "poodle" {
		t.Fatalf("partial rows = %v", page.Rows)
	}
	if page.NextPageToken != "r2" {
		t.Fatalf("mid-flight token = %q", page.NextPageToken)
	}

	// fetchNextPage with the mid-flight cursor stays valid after the
	// query completes: partial rows are a prefix of the final result.
	remote.release()
	if !q.Wait(5 * time.Second) {
		t.Fatal("query did not finish after release")
	}
	next, err := q.Page(page.NextPageToken, 10)
	if err != nil {
		t.Fatalf("Page(next): %v", err)
	}
	if next.Status != QueryDone || next.Partial {
		t.Fatalf("final page status=%s partial=%v", next.Status, next.Partial)
	}
	if len(next.Rows) != 1 || next.Rows[0][1] != "husky" || next.NextPageToken != "" {
		t.Fatalf("final page = %+v", next)
	}
}

func TestCancelQueryMidFlight(t *testing.T) {
	remote := newGatedRemote(1, 2) // first question answers, second blocks
	m, err := NewSessionManager(ServiceConfig{
		Factory: func(name string) (*Session, error) { return remoteSession(remote), nil },
	})
	if err != nil {
		t.Fatalf("NewSessionManager: %v", err)
	}
	defer m.Close()
	ms, _ := m.Create("s1")
	mustRun(t, ms, `CREATE TABLE pets (id INT, kind STRING)`)
	mustRun(t, ms, `INSERT INTO pets VALUES (1, 'beagle'), (2, 'poodle'), (3, 'husky')`)

	q, err := ms.Execute(`SELECT * FROM pets WHERE CROWDFILTER('dog?', kind)`)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	remote.waitCalls(t, 2)

	if _, ok := ms.CancelQuery("q999"); ok {
		t.Fatal("canceling unknown query reported success")
	}
	if h, ok := ms.CancelQuery(q.ID()); !ok || h != q {
		t.Fatal("CancelQuery did not return the handle it canceled")
	}
	if !q.Wait(5 * time.Second) {
		t.Fatal("canceled query did not unwind")
	}
	if q.Status() != QueryCanceled {
		t.Fatalf("status = %s, err %q", q.Status(), q.Err())
	}
	// No further crowd questions were issued after the cancel.
	if got := remote.callCount(); got != 2 {
		t.Fatalf("remote calls after cancel = %d, want 2", got)
	}
	// Canceling again is a harmless no-op and the session keeps working.
	ms.CancelQuery(q.ID())
	done := mustRun(t, ms, `SELECT id FROM pets ORDER BY id`)
	if page, _ := done.Page("", 10); len(page.Rows) != 3 {
		t.Fatalf("session unusable after cancel: %v", page.Rows)
	}
}

func TestProgressTargetShapes(t *testing.T) {
	s := crowdSession(21, 10)
	mustExec(t, s, `CREATE TABLE pets (id INT, kind STRING, fur STRING CROWD)`)
	mustExec(t, s, `CREATE TABLE plain (id INT, kind STRING)`)

	cases := []struct {
		src    string
		stream bool
	}{
		{`SELECT * FROM pets WHERE CROWDFILTER('dog?', kind)`, true},
		{`SELECT * FROM pets`, true},   // star select fills the crowd column
		{`SELECT * FROM plain`, false}, // no crowd stage anywhere
		{`SELECT id FROM pets WHERE CROWDFILTER('dog?', kind)`, false},   // narrowing projection
		{`SELECT * FROM pets WHERE CROWDFILTER('dog?', kind) LIMIT 1`, false}, // limit above
		{`SELECT * FROM pets WHERE CROWDFILTER('dog?', kind) ORDER BY id`, false},
	}
	for _, tc := range cases {
		stmts, err := ParseAll(tc.src)
		if err != nil {
			t.Fatalf("parse %q: %v", tc.src, err)
		}
		plan, err := s.Plan(stmts[0].(*Select), s.Optimize)
		if err != nil {
			t.Fatalf("plan %q: %v", tc.src, err)
		}
		if got := progressTarget(plan) != nil; got != tc.stream {
			t.Errorf("%q: streamable = %v, want %v (plan %s)",
				tc.src, got, tc.stream, plan.Describe())
		}
	}
}

// A Close racing a slow (catalog-loading) factory must not leave the new
// session registered in a closed manager's map: the recheck under the
// lock drops it and shuts it down immediately, so OnClose (catalog
// persistence) still runs.
func TestCreateRacingCloseShutsSessionDown(t *testing.T) {
	factoryEntered := make(chan struct{})
	factoryRelease := make(chan struct{})
	var closedMu sync.Mutex
	var closed []string
	m, err := NewSessionManager(ServiceConfig{
		Factory: func(name string) (*Session, error) {
			close(factoryEntered)
			<-factoryRelease
			return machineSession(), nil
		},
		OnClose: func(name string, s *Session) {
			closedMu.Lock()
			closed = append(closed, name)
			closedMu.Unlock()
		},
	})
	if err != nil {
		t.Fatalf("NewSessionManager: %v", err)
	}
	type res struct {
		ms  *ManagedSession
		err error
	}
	resCh := make(chan res, 1)
	go func() {
		ms, err := m.Create("raced")
		resCh <- res{ms, err}
	}()
	<-factoryEntered
	m.Close() // closes while the factory is mid-flight
	close(factoryRelease)
	r := <-resCh
	if r.err != ErrSessionClosed || r.ms != nil {
		t.Fatalf("Create racing Close = (%v, %v), want (nil, ErrSessionClosed)", r.ms, r.err)
	}
	if n := m.SessionCount(); n != 0 {
		t.Fatalf("closed manager still holds %d sessions", n)
	}
	closedMu.Lock()
	defer closedMu.Unlock()
	if len(closed) != 1 || closed[0] != "raced" {
		t.Fatalf("OnClose ran for %v, want [raced]", closed)
	}
}

// backdate simulates a session whose last activity was `ago` in the past,
// so sweeps can be driven deterministically without sleeping.
func backdate(ms *ManagedSession, ago time.Duration) {
	ms.meta.Lock()
	ms.lastUsed = time.Now().Add(-ago)
	ms.meta.Unlock()
}

// Polling, paging, and canceling a query are session activity: a client
// paginating a finished crowd query's results past IdleTTL must not have
// the session reaped out from under it (regression: touch was never
// wired, so only execute refreshed lastUsed).
func TestPollingKeepsSessionAlive(t *testing.T) {
	m, err := NewSessionManager(ServiceConfig{
		Factory: func(name string) (*Session, error) { return machineSession(), nil },
		IdleTTL: time.Hour,
	})
	if err != nil {
		t.Fatalf("NewSessionManager: %v", err)
	}
	defer m.Close()
	ms, _ := m.Create("pager")
	mustRun(t, ms, `CREATE TABLE t (id INT)`)
	mustRun(t, ms, `INSERT INTO t VALUES (1), (2), (3)`)
	q := mustRun(t, ms, `SELECT id FROM t ORDER BY id`)

	// Page past several idle TTLs: each round the session has been silent
	// for well over the TTL when the client fetches its next page, and the
	// fetch must reset the clock so the following sweep keeps the session.
	token := ""
	for round := 0; round < 3; round++ {
		backdate(ms, 2*time.Hour)
		h, ok := ms.Query(q.ID())
		if !ok {
			t.Fatalf("round %d: query handle gone", round)
		}
		page, err := h.Page(token, 1)
		if err != nil {
			t.Fatalf("round %d: Page: %v", round, err)
		}
		token = page.NextPageToken
		m.sweepIdle(time.Now().Add(30 * time.Minute))
		if _, ok := m.Get("pager"); !ok {
			t.Fatalf("round %d: session reaped under an actively paginating client", round)
		}
	}

	// Cancel is activity too.
	backdate(ms, 2*time.Hour)
	if _, ok := ms.CancelQuery(q.ID()); !ok {
		t.Fatal("CancelQuery lost the handle")
	}
	m.sweepIdle(time.Now().Add(30 * time.Minute))
	if _, ok := m.Get("pager"); !ok {
		t.Fatal("session reaped right after a cancel")
	}

	// With no activity the sweep still reaps.
	backdate(ms, 2*time.Hour)
	m.sweepIdle(time.Now())
	if _, ok := m.Get("pager"); ok {
		t.Fatal("idle session survived the sweep")
	}
}

// CancelQuery resolves existence and cancellation in one lookup, so at
// the retention boundary a pruned handle reports "unknown" and a live one
// always comes back with the handle that was canceled.
func TestCancelQueryAtRetentionBoundary(t *testing.T) {
	m := testManager(t)
	ms, _ := m.Create("s1")
	mustRun(t, ms, `CREATE TABLE t (id INT)`)
	mustRun(t, ms, `INSERT INTO t VALUES (1)`)
	for i := 0; i < retainedQueries+2; i++ {
		mustRun(t, ms, `SELECT id FROM t`)
	}
	// q1/q2 (the DDL and first insert) are long pruned.
	if _, ok := ms.Query("q1"); ok {
		t.Fatal("expected q1 to be pruned past the retention cap")
	}
	if h, ok := ms.CancelQuery("q1"); ok || h != nil {
		t.Fatal("cancel of a pruned handle reported success")
	}
	latest := fmt.Sprintf("q%d", retainedQueries+4)
	h, ok := ms.CancelQuery(latest)
	if !ok || h == nil || h.ID() != latest {
		t.Fatalf("CancelQuery(%s) = (%v, %v), want the live handle", latest, h, ok)
	}
	if h.Status() != QueryDone {
		t.Fatalf("canceling a finished query flipped its status to %s", h.Status())
	}
}
