package cql

import (
	"fmt"
	"strings"
	"testing"
)

const benchQuery = `SELECT name, COUNT(*) AS n FROM people ` +
	`JOIN cities ON people.city = cities.city ` +
	`WHERE age > 21 AND name LIKE 'a%' GROUP BY name ORDER BY n DESC LIMIT 10`

func BenchmarkParse(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Parse(benchQuery); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPlanOptimized(b *testing.B) {
	s := machineSession()
	if _, err := s.Execute(`CREATE TABLE people (id INT, name STRING, age INT, city STRING)`); err != nil {
		b.Fatal(err)
	}
	if _, err := s.Execute(`CREATE TABLE cities (city STRING, country STRING)`); err != nil {
		b.Fatal(err)
	}
	stmt, err := Parse(benchQuery)
	if err != nil {
		b.Fatal(err)
	}
	sel := stmt.(*Select)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Plan(sel, true); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExecuteMachineQuery(b *testing.B) {
	s := machineSession()
	if _, err := s.Execute(`CREATE TABLE t (id INT, grp STRING, v FLOAT)`); err != nil {
		b.Fatal(err)
	}
	var sb strings.Builder
	sb.WriteString(`INSERT INTO t VALUES `)
	for i := 0; i < 2000; i++ {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "(%d, 'g%d', %d.5)", i, i%20, i%100)
	}
	if _, err := s.Execute(sb.String()); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := s.Execute(`SELECT grp, AVG(v) FROM t WHERE id > 500 GROUP BY grp ORDER BY grp LIMIT 5`)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func FuzzLex(f *testing.F) {
	for _, seed := range []string{
		benchQuery, `SELECT * FROM t WHERE a ~= 'x''y'`, "'unterminated",
		"-- comment\nSELECT 1.5 <> != <=", "@#$",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		_, _ = Lex(src) // must not panic
	})
}

func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		benchQuery,
		`CREATE CROWD TABLE x (a INT CROWD)`,
		`INSERT INTO t VALUES (1, NULL, 'x')`,
		`SELECT CROWDCOUNT('q', c) FROM t CROWDORDER BY c DESC 'q' LIMIT 1`,
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		_, _ = ParseAll(src) // must not panic
	})
}
