package cql

import (
	"strings"
	"testing"

	"repro/internal/model"
)

func mustParse(t *testing.T, src string) Statement {
	t.Helper()
	stmt, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return stmt
}

func mustSelect(t *testing.T, src string) *Select {
	t.Helper()
	sel, ok := mustParse(t, src).(*Select)
	if !ok {
		t.Fatalf("Parse(%q) is not a SELECT", src)
	}
	return sel
}

func TestLexBasics(t *testing.T) {
	toks, err := Lex("SELECT name, age FROM people WHERE age >= 21 -- adults\n")
	if err != nil {
		t.Fatal(err)
	}
	kinds := []TokenKind{TokKeyword, TokIdent, TokSymbol, TokIdent, TokKeyword,
		TokIdent, TokKeyword, TokIdent, TokSymbol, TokNumber, TokEOF}
	if len(toks) != len(kinds) {
		t.Fatalf("token count %d, want %d: %v", len(toks), len(kinds), toks)
	}
	for i, k := range kinds {
		if toks[i].Kind != k {
			t.Fatalf("token %d = %v (kind %d), want kind %d", i, toks[i], toks[i].Kind, k)
		}
	}
}

func TestLexStrings(t *testing.T) {
	toks, err := Lex("'it''s fine'")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != TokString || toks[0].Text != "it's fine" {
		t.Fatalf("string token = %+v", toks[0])
	}
	if _, err := Lex("'unterminated"); err == nil {
		t.Fatal("unterminated string should fail")
	}
}

func TestLexNumbersAndSymbols(t *testing.T) {
	toks, err := Lex("3.14 42 <> != <= >= ~=")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Text != "3.14" || toks[1].Text != "42" {
		t.Fatalf("numbers = %v %v", toks[0], toks[1])
	}
	// <> normalizes to !=
	if toks[2].Text != "!=" || toks[3].Text != "!=" {
		t.Fatalf("inequality symbols = %v %v", toks[2], toks[3])
	}
	if toks[6].Text != "~=" {
		t.Fatalf("crowd-equal symbol = %v", toks[6])
	}
	if _, err := Lex("@"); err == nil {
		t.Fatal("bad character should fail")
	}
}

func TestParseCreateTable(t *testing.T) {
	st := mustParse(t, `CREATE TABLE people (id INT, name STRING, phone STRING CROWD)`).(*CreateTable)
	if st.Name != "people" || len(st.Columns) != 3 {
		t.Fatalf("create = %+v", st)
	}
	if st.Columns[2].Name != "phone" || !st.Columns[2].Crowd {
		t.Fatalf("crowd column = %+v", st.Columns[2])
	}
	if st.Columns[0].Type != model.TypeInt {
		t.Fatalf("id type = %v", st.Columns[0].Type)
	}
	crowd := mustParse(t, `CREATE CROWD TABLE depts (name STRING)`).(*CreateTable)
	if !crowd.CrowdTable {
		t.Fatal("CROWD TABLE flag lost")
	}
}

func TestParseInsert(t *testing.T) {
	st := mustParse(t, `INSERT INTO p VALUES (1, 'ann', NULL), (2, 'bob', 3.5)`).(*Insert)
	if st.Table != "p" || len(st.Rows) != 2 || len(st.Rows[0]) != 3 {
		t.Fatalf("insert = %+v", st)
	}
	lit := st.Rows[1][2].(*Literal)
	if lit.Value.Type() != model.TypeFloat || lit.Value.AsFloat() != 3.5 {
		t.Fatalf("float literal = %v", lit.Value)
	}
	if !st.Rows[0][2].(*Literal).Value.IsNull() {
		t.Fatal("NULL literal lost")
	}
	neg := mustParse(t, `INSERT INTO p VALUES (-5)`).(*Insert)
	if neg.Rows[0][0].(*Literal).Value.AsInt() != -5 {
		t.Fatal("negative literal broken")
	}
}

func TestParseSelectBasic(t *testing.T) {
	sel := mustSelect(t, `SELECT name, age AS years FROM people WHERE age > 21 AND name LIKE 'a%' ORDER BY age DESC LIMIT 10`)
	if len(sel.Projections) != 2 || sel.Projections[1].Alias != "years" {
		t.Fatalf("projections = %+v", sel.Projections)
	}
	if sel.From.Name != "people" {
		t.Fatalf("from = %+v", sel.From)
	}
	conj := Conjuncts(sel.Where)
	if len(conj) != 2 {
		t.Fatalf("conjuncts = %d", len(conj))
	}
	if len(sel.OrderBy) != 1 || !sel.OrderBy[0].Desc {
		t.Fatalf("order = %+v", sel.OrderBy)
	}
	if sel.Limit != 10 {
		t.Fatalf("limit = %d", sel.Limit)
	}
}

func TestParseSelectStar(t *testing.T) {
	sel := mustSelect(t, `SELECT * FROM t`)
	if len(sel.Projections) != 1 || !sel.Projections[0].Star {
		t.Fatalf("star projection = %+v", sel.Projections)
	}
}

func TestParseCrowdPredicates(t *testing.T) {
	sel := mustSelect(t, `SELECT * FROM t WHERE brand ~= 'apple' AND CROWDFILTER('is it red?', color)`)
	conj := Conjuncts(sel.Where)
	if len(conj) != 2 {
		t.Fatalf("conjuncts = %d", len(conj))
	}
	ce, ok := conj[0].(*CrowdEqual)
	if !ok || ce.Column.Name != "brand" || ce.Literal.Value.AsString() != "apple" {
		t.Fatalf("crowd equal = %+v", conj[0])
	}
	cf, ok := conj[1].(*CrowdFilter)
	if !ok || cf.Question != "is it red?" || cf.Column.Name != "color" {
		t.Fatalf("crowd filter = %+v", conj[1])
	}
	// Keyword spelling too.
	sel2 := mustSelect(t, `SELECT * FROM t WHERE brand CROWDEQUAL 'apple'`)
	if _, ok := sel2.Where.(*CrowdEqual); !ok {
		t.Fatalf("CROWDEQUAL keyword = %+v", sel2.Where)
	}
}

func TestParseJoins(t *testing.T) {
	sel := mustSelect(t, `SELECT * FROM a JOIN b ON a.x = b.y CROWDJOIN c ON a.name ~= c.title`)
	if len(sel.Joins) != 2 {
		t.Fatalf("joins = %d", len(sel.Joins))
	}
	if sel.Joins[0].Crowd || !sel.Joins[1].Crowd {
		t.Fatal("join crowd flags wrong")
	}
	if sel.Joins[0].Left.Table != "a" || sel.Joins[0].Right.Name != "y" {
		t.Fatalf("join cols = %+v", sel.Joins[0])
	}
}

func TestParseCrowdOrder(t *testing.T) {
	sel := mustSelect(t, `SELECT * FROM photos CROWDORDER BY quality DESC 'which photo is better?' LIMIT 5`)
	if sel.CrowdOrder == nil || !sel.CrowdOrder.Desc {
		t.Fatalf("crowd order = %+v", sel.CrowdOrder)
	}
	if sel.CrowdOrder.Question != "which photo is better?" {
		t.Fatalf("question = %q", sel.CrowdOrder.Question)
	}
	if _, err := Parse(`SELECT * FROM t ORDER BY a CROWDORDER BY b`); err == nil {
		t.Fatal("ORDER BY + CROWDORDER should fail")
	}
}

func TestParseAggregates(t *testing.T) {
	sel := mustSelect(t, `SELECT COUNT(*), AVG(price) AS p, CROWDCOUNT('is it a dog?', img) FROM animals`)
	if len(sel.Projections) != 3 {
		t.Fatalf("projections = %d", len(sel.Projections))
	}
	if sel.Projections[0].Agg != "COUNT" || sel.Projections[0].Column != nil {
		t.Fatalf("count(*) = %+v", sel.Projections[0])
	}
	if sel.Projections[1].Agg != "AVG" || sel.Projections[1].Alias != "p" {
		t.Fatalf("avg = %+v", sel.Projections[1])
	}
	cc := sel.Projections[2]
	if cc.Agg != "CROWDCOUNT" || cc.CrowdCountQuestion != "is it a dog?" || cc.Column.Name != "img" {
		t.Fatalf("crowdcount = %+v", cc)
	}
	grouped := mustSelect(t, `SELECT dept, COUNT(*) FROM emp GROUP BY dept`)
	if grouped.GroupBy != "dept" {
		t.Fatalf("group by = %q", grouped.GroupBy)
	}
}

func TestParseBooleanStructure(t *testing.T) {
	sel := mustSelect(t, `SELECT * FROM t WHERE a = 1 OR (b = 2 AND NOT c = 3)`)
	or, ok := sel.Where.(*Or)
	if !ok {
		t.Fatalf("where = %T", sel.Where)
	}
	and, ok := or.Right.(*And)
	if !ok {
		t.Fatalf("or.right = %T", or.Right)
	}
	if _, ok := and.Right.(*Not); !ok {
		t.Fatalf("and.right = %T", and.Right)
	}
}

func TestParseIsNull(t *testing.T) {
	sel := mustSelect(t, `SELECT * FROM t WHERE phone IS NULL AND name IS NOT NULL`)
	conj := Conjuncts(sel.Where)
	a := conj[0].(*IsNull)
	b := conj[1].(*IsNull)
	if a.Negate || !b.Negate {
		t.Fatal("IS NULL negation flags wrong")
	}
}

func TestParseMisc(t *testing.T) {
	if _, ok := mustParse(t, `SHOW TABLES`).(*ShowTables); !ok {
		t.Fatal("SHOW TABLES")
	}
	if d, ok := mustParse(t, `DESCRIBE people`).(*Describe); !ok || d.Name != "people" {
		t.Fatal("DESCRIBE")
	}
	if d, ok := mustParse(t, `DROP TABLE people`).(*DropTable); !ok || d.Name != "people" {
		t.Fatal("DROP")
	}
	if e, ok := mustParse(t, `EXPLAIN SELECT * FROM t`).(*Explain); !ok || e.Query == nil {
		t.Fatal("EXPLAIN")
	}
	if s := mustSelect(t, `SELECT DISTINCT a FROM t`); !s.Distinct {
		t.Fatal("DISTINCT flag lost")
	}
}

func TestParseAllScript(t *testing.T) {
	stmts, err := ParseAll(`
		CREATE TABLE t (a INT);
		INSERT INTO t VALUES (1);
		SELECT * FROM t;
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 3 {
		t.Fatalf("statements = %d", len(stmts))
	}
}

func TestParseErrorsArePositioned(t *testing.T) {
	cases := []string{
		`SELECT FROM t`,
		`SELECT * FROM`,
		`CREATE TABLE (a INT)`,
		`CREATE TABLE t (a BLOB)`,
		`INSERT INTO t VALUES 1`,
		`SELECT * FROM t WHERE`,
		`SELECT * FROM t WHERE a ~= 5`,
		`SELECT * FROM t LIMIT abc`,
		`SELECT * FROM t WHERE a`,
		`FOO BAR`,
	}
	for _, src := range cases {
		_, err := Parse(src)
		if err == nil {
			t.Errorf("Parse(%q) should fail", src)
			continue
		}
		if !strings.Contains(err.Error(), "cql:") {
			t.Errorf("error %q lacks package prefix", err)
		}
	}
}

func TestIsCrowdExprAndColumnsIn(t *testing.T) {
	sel := mustSelect(t, `SELECT * FROM t WHERE a = 1 AND b ~= 'x'`)
	conj := Conjuncts(sel.Where)
	if IsCrowdExpr(conj[0]) || !IsCrowdExpr(conj[1]) {
		t.Fatal("IsCrowdExpr misclassified")
	}
	cols := ColumnsIn(sel.Where)
	if len(cols) != 2 {
		t.Fatalf("ColumnsIn = %v", cols)
	}
}

func TestParseMultipleStatementsViaParseFails(t *testing.T) {
	if _, err := Parse(`SELECT * FROM t; SELECT * FROM u`); err == nil {
		t.Fatal("Parse should require exactly one statement")
	}
}
