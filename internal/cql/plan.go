package cql

import (
	"fmt"
	"strings"
)

// PlanNode is a node of the logical/physical plan tree (the interpreter
// executes the logical tree directly).
type PlanNode interface {
	// Describe returns a one-line description for EXPLAIN output.
	Describe() string
	// Children returns input nodes.
	Children() []PlanNode
}

// ScanNode reads a base table.
type ScanNode struct {
	Table TableRef
}

// Describe implements PlanNode.
func (n *ScanNode) Describe() string {
	if n.Table.Alias != "" {
		return fmt.Sprintf("Scan %s AS %s", n.Table.Name, n.Table.Alias)
	}
	return fmt.Sprintf("Scan %s", n.Table.Name)
}

// Children implements PlanNode.
func (n *ScanNode) Children() []PlanNode { return nil }

// MachineFilterNode applies machine-evaluable predicates.
type MachineFilterNode struct {
	Input PlanNode
	Preds []Expr
}

// Describe implements PlanNode.
func (n *MachineFilterNode) Describe() string {
	return "MachineFilter " + exprList(n.Preds)
}

// Children implements PlanNode.
func (n *MachineFilterNode) Children() []PlanNode { return []PlanNode{n.Input} }

// CrowdFillNode resolves NULL CROWD-column cells by asking the crowd,
// memoizing answers back into the base table (CrowdDB semantics).
type CrowdFillNode struct {
	Input   PlanNode
	Columns []string
}

// Describe implements PlanNode.
func (n *CrowdFillNode) Describe() string {
	return "CrowdFill [" + strings.Join(n.Columns, ", ") + "]"
}

// Children implements PlanNode.
func (n *CrowdFillNode) Children() []PlanNode { return []PlanNode{n.Input} }

// CrowdFilterNode applies crowd-evaluated predicates.
type CrowdFilterNode struct {
	Input PlanNode
	Preds []Expr
}

// Describe implements PlanNode.
func (n *CrowdFilterNode) Describe() string {
	return "CrowdFilter " + exprList(n.Preds)
}

// Children implements PlanNode.
func (n *CrowdFilterNode) Children() []PlanNode { return []PlanNode{n.Input} }

// JoinNode is a machine hash equi-join.
type JoinNode struct {
	Left, Right PlanNode
	LeftCol     *ColumnRef
	RightCol    *ColumnRef
}

// Describe implements PlanNode.
func (n *JoinNode) Describe() string {
	return fmt.Sprintf("HashJoin %s = %s", n.LeftCol, n.RightCol)
}

// Children implements PlanNode.
func (n *JoinNode) Children() []PlanNode { return []PlanNode{n.Left, n.Right} }

// CrowdJoinNode is a crowd-verified entity-matching join between two
// string columns (pruned by machine similarity first).
type CrowdJoinNode struct {
	Left, Right PlanNode
	LeftCol     *ColumnRef
	RightCol    *ColumnRef
}

// Describe implements PlanNode.
func (n *CrowdJoinNode) Describe() string {
	return fmt.Sprintf("CrowdJoin %s ~= %s", n.LeftCol, n.RightCol)
}

// Children implements PlanNode.
func (n *CrowdJoinNode) Children() []PlanNode { return []PlanNode{n.Left, n.Right} }

// SortNode is machine ORDER BY.
type SortNode struct {
	Input PlanNode
	Keys  []OrderKey
}

// Describe implements PlanNode.
func (n *SortNode) Describe() string {
	parts := make([]string, len(n.Keys))
	for i, k := range n.Keys {
		dir := "ASC"
		if k.Desc {
			dir = "DESC"
		}
		parts[i] = fmt.Sprintf("%s %s", k.Column, dir)
	}
	return "Sort " + strings.Join(parts, ", ")
}

// Children implements PlanNode.
func (n *SortNode) Children() []PlanNode { return []PlanNode{n.Input} }

// CrowdSortNode is CROWDORDER BY: ordering by crowd pairwise comparison.
type CrowdSortNode struct {
	Input    PlanNode
	Column   *ColumnRef
	Desc     bool
	Question string
}

// Describe implements PlanNode.
func (n *CrowdSortNode) Describe() string {
	dir := "ASC"
	if n.Desc {
		dir = "DESC"
	}
	return fmt.Sprintf("CrowdSort %s %s", n.Column, dir)
}

// Children implements PlanNode.
func (n *CrowdSortNode) Children() []PlanNode { return []PlanNode{n.Input} }

// LimitNode caps output rows.
type LimitNode struct {
	Input PlanNode
	N     int
}

// Describe implements PlanNode.
func (n *LimitNode) Describe() string { return fmt.Sprintf("Limit %d", n.N) }

// Children implements PlanNode.
func (n *LimitNode) Children() []PlanNode { return []PlanNode{n.Input} }

// DistinctNode deduplicates rows.
type DistinctNode struct{ Input PlanNode }

// Describe implements PlanNode.
func (n *DistinctNode) Describe() string { return "Distinct" }

// Children implements PlanNode.
func (n *DistinctNode) Children() []PlanNode { return []PlanNode{n.Input} }

// ProjectNode evaluates the projection list (non-aggregate).
type ProjectNode struct {
	Input PlanNode
	Items []SelectItem
}

// Describe implements PlanNode.
func (n *ProjectNode) Describe() string {
	parts := make([]string, len(n.Items))
	for i, it := range n.Items {
		parts[i] = it.DisplayName()
	}
	return "Project [" + strings.Join(parts, ", ") + "]"
}

// Children implements PlanNode.
func (n *ProjectNode) Children() []PlanNode { return []PlanNode{n.Input} }

// AggregateNode computes aggregates, optionally grouped.
type AggregateNode struct {
	Input   PlanNode
	GroupBy string
	Items   []SelectItem
}

// Describe implements PlanNode.
func (n *AggregateNode) Describe() string {
	parts := make([]string, len(n.Items))
	for i, it := range n.Items {
		parts[i] = it.DisplayName()
	}
	if n.GroupBy != "" {
		return fmt.Sprintf("Aggregate [%s] GROUP BY %s", strings.Join(parts, ", "), n.GroupBy)
	}
	return "Aggregate [" + strings.Join(parts, ", ") + "]"
}

// Children implements PlanNode.
func (n *AggregateNode) Children() []PlanNode { return []PlanNode{n.Input} }

func exprList(es []Expr) string {
	parts := make([]string, len(es))
	for i, e := range es {
		parts[i] = e.String()
	}
	return "[" + strings.Join(parts, " AND ") + "]"
}

// ExplainPlan renders the plan tree as an indented listing.
func ExplainPlan(root PlanNode) string {
	var b strings.Builder
	var walk func(n PlanNode, depth int)
	walk = func(n PlanNode, depth int) {
		b.WriteString(strings.Repeat("  ", depth))
		b.WriteString(n.Describe())
		b.WriteByte('\n')
		for _, c := range n.Children() {
			walk(c, depth+1)
		}
	}
	walk(root, 0)
	return b.String()
}
