package cql

import (
	"fmt"
	"strings"
)

// PlanCost is the optimizer's estimate of what executing a plan will
// consume. Machine work is counted in rows touched; crowd work in worker
// answers — the scarce resource. The estimates use the catalog's current
// cardinalities and simple default selectivities (the Deco/CDB-style cost
// model, scaled down to a rule-based engine).
type PlanCost struct {
	// Rows is the estimated output cardinality.
	Rows float64
	// CrowdAnswers is the estimated number of worker answers consumed.
	CrowdAnswers float64
	// MachineRows is the estimated number of row visits by machine
	// operators.
	MachineRows float64
}

// Default selectivities for estimation; deliberately coarse — the point
// is ordering plans, not predicting absolute numbers.
const (
	estFilterSelectivity      = 1.0 / 3
	estCrowdEqualSelectivity  = 0.25
	estCrowdFilterSelectivity = 0.5
	estJoinFanout             = 1.0
	estNullFraction           = 0.5 // of a CROWD column, when unknown
)

// EstimateCost walks the plan bottom-up and accumulates the cost model.
func (s *Session) EstimateCost(plan PlanNode) (*PlanCost, error) {
	k := float64(s.Redundancy)
	if k <= 0 {
		k = 3
	}
	var walk func(n PlanNode) (*PlanCost, error)
	walk = func(n PlanNode) (*PlanCost, error) {
		switch v := n.(type) {
		case *ScanNode:
			rel, err := s.Catalog.Get(v.Table.Name)
			if err != nil {
				return nil, err
			}
			return &PlanCost{Rows: float64(rel.Len())}, nil
		case *MachineFilterNode:
			in, err := walk(v.Input)
			if err != nil {
				return nil, err
			}
			sel := 1.0
			for range v.Preds {
				sel *= estFilterSelectivity
			}
			return &PlanCost{
				Rows:         in.Rows * sel,
				CrowdAnswers: in.CrowdAnswers,
				MachineRows:  in.MachineRows + in.Rows,
			}, nil
		case *CrowdFillNode:
			in, err := walk(v.Input)
			if err != nil {
				return nil, err
			}
			fills := in.Rows * estNullFraction * float64(len(v.Columns))
			return &PlanCost{
				Rows:         in.Rows,
				CrowdAnswers: in.CrowdAnswers + fills*k,
				MachineRows:  in.MachineRows,
			}, nil
		case *CrowdFilterNode:
			in, err := walk(v.Input)
			if err != nil {
				return nil, err
			}
			answers := in.CrowdAnswers
			rows := in.Rows
			for _, p := range v.Preds {
				answers += rows * k // every surviving row is asked
				if _, ok := p.(*CrowdEqual); ok {
					rows *= estCrowdEqualSelectivity
				} else {
					rows *= estCrowdFilterSelectivity
				}
			}
			return &PlanCost{Rows: rows, CrowdAnswers: answers, MachineRows: in.MachineRows}, nil
		case *JoinNode:
			l, err := walk(v.Left)
			if err != nil {
				return nil, err
			}
			r, err := walk(v.Right)
			if err != nil {
				return nil, err
			}
			return &PlanCost{
				Rows:         maxF(l.Rows, r.Rows) * estJoinFanout,
				CrowdAnswers: l.CrowdAnswers + r.CrowdAnswers,
				MachineRows:  l.MachineRows + r.MachineRows + l.Rows + r.Rows,
			}, nil
		case *CrowdJoinNode:
			l, err := walk(v.Left)
			if err != nil {
				return nil, err
			}
			r, err := walk(v.Right)
			if err != nil {
				return nil, err
			}
			// Distinct-value pair space, pruned by similarity; roughly a
			// quarter of pairs survive pruning at default thresholds.
			pairs := l.Rows * r.Rows * 0.25
			return &PlanCost{
				Rows:         maxF(l.Rows, r.Rows),
				CrowdAnswers: l.CrowdAnswers + r.CrowdAnswers + pairs*k,
				MachineRows:  l.MachineRows + r.MachineRows + l.Rows*r.Rows,
			}, nil
		case *SortNode:
			in, err := walk(v.Input)
			if err != nil {
				return nil, err
			}
			in.MachineRows += in.Rows
			return in, nil
		case *CrowdSortNode:
			in, err := walk(v.Input)
			if err != nil {
				return nil, err
			}
			in.CrowdAnswers += in.Rows * (in.Rows - 1) / 2 * k
			return in, nil
		case *LimitNode:
			in, err := walk(v.Input)
			if err != nil {
				return nil, err
			}
			if in.Rows > float64(v.N) {
				in.Rows = float64(v.N)
			}
			return in, nil
		case *DistinctNode:
			in, err := walk(v.Input)
			if err != nil {
				return nil, err
			}
			in.MachineRows += in.Rows
			return in, nil
		case *ProjectNode:
			in, err := walk(v.Input)
			if err != nil {
				return nil, err
			}
			return in, nil
		case *AggregateNode:
			in, err := walk(v.Input)
			if err != nil {
				return nil, err
			}
			for _, it := range v.Items {
				if it.Agg == "CROWDCOUNT" {
					samples := in.Rows
					if cap := float64(s.SampleSize); cap > 0 && samples > cap {
						samples = cap
					}
					in.CrowdAnswers += samples * k
				}
			}
			in.MachineRows += in.Rows
			if v.GroupBy == "" {
				in.Rows = 1
			} else {
				in.Rows = maxF(1, in.Rows/3)
			}
			return in, nil
		default:
			return nil, fmt.Errorf("cql: cost model: unknown node %T", n)
		}
	}
	return walk(plan)
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// ExplainWithCost renders the plan with the cost estimate header — what
// the EXPLAIN statement prints when a session is available.
func (s *Session) ExplainWithCost(plan PlanNode) (string, error) {
	c, err := s.EstimateCost(plan)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "est: %.0f rows, %.0f crowd answers, %.0f machine row visits\n",
		c.Rows, c.CrowdAnswers, c.MachineRows)
	b.WriteString(ExplainPlan(plan))
	return b.String(), nil
}
