package cql

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/cost"
	"repro/internal/model"
	"repro/internal/operators"
	"repro/internal/stats"
)

// SimOracle supplies the "state of the world" that human workers would
// know, for the simulated crowd answering CQL's crowd operations. Each
// field is optional; nil fields fall back to pragmatic defaults so a
// session is runnable out of the box.
//
// This is the explicit substitution point for real human knowledge: in
// production these answers come from people; in the reproduction they
// come from planted ground truth (experiments) or the defaults
// (similarity-based equality, natural ordering).
type SimOracle struct {
	// Fill returns the true value for a NULL crowd cell, identified by
	// table, column and the current row. ok=false means "unknowable".
	Fill func(table, column string, row model.Tuple, schema *model.Schema) (string, bool)
	// Equal decides whether a column value and a literal refer to the
	// same real-world entity (CROWDEQUAL ground truth).
	Equal func(value, literal string) bool
	// Filter decides the true answer of CROWDFILTER/CROWDCOUNT questions
	// about a value.
	Filter func(question string, value model.Value) bool
	// Compare decides whether a truly outranks b (CROWDORDER ground
	// truth).
	Compare func(question string, a, b model.Value) bool
}

func (o *SimOracle) fill(table, column string, row model.Tuple, schema *model.Schema) (string, bool) {
	if o != nil && o.Fill != nil {
		return o.Fill(table, column, row, schema)
	}
	return "", false
}

func (o *SimOracle) equal(value, literal string) bool {
	if o != nil && o.Equal != nil {
		return o.Equal(value, literal)
	}
	if strings.EqualFold(strings.TrimSpace(value), strings.TrimSpace(literal)) {
		return true
	}
	return cost.CombinedSimilarity(value, literal) >= 0.75
}

func (o *SimOracle) filterTruth(question string, v model.Value) bool {
	if o != nil && o.Filter != nil {
		return o.Filter(question, v)
	}
	return false
}

func (o *SimOracle) compare(question string, a, b model.Value) bool {
	if o != nil && o.Compare != nil {
		return o.Compare(question, a, b)
	}
	return a.Compare(b) > 0
}

// ExecStats accumulates crowd-cost accounting across a session's queries.
type ExecStats struct {
	// CrowdTasks counts distinct crowd questions issued.
	CrowdTasks int
	// CrowdAnswers counts worker answers consumed.
	CrowdAnswers int
	// Fills counts NULL crowd cells resolved.
	Fills int
	// CrowdFilterRows counts row×predicate crowd evaluations.
	CrowdFilterRows int
	// CrowdJoinPairs counts pair questions asked by crowd joins.
	CrowdJoinPairs int
	// CrowdCompares counts pairwise comparisons for CROWDORDER.
	CrowdCompares int
	// CrowdCountSamples counts items labeled for CROWDCOUNT.
	CrowdCountSamples int
}

// Session executes CQL statements against a catalog, with optional crowd
// support. Sessions are single-threaded.
type Session struct {
	Catalog *Catalog
	// Runner provides crowd answers; nil disables crowd features.
	Runner *operators.Runner
	// Redundancy is the votes per crowd question (default 3).
	Redundancy int
	// SampleSize bounds CROWDCOUNT sampling (default 100).
	SampleSize int
	// JoinPruneLow is the similarity threshold below which crowd-join
	// pairs are skipped without asking (default 0.3).
	JoinPruneLow float64
	// Optimize toggles the crowd-aware optimizer (default true via
	// NewSession).
	Optimize bool
	// Oracle supplies simulated ground truth (see SimOracle).
	Oracle *SimOracle
	// Stats accumulates crowd-cost accounting.
	Stats ExecStats

	rng *stats.RNG

	// qctx is the cancellation context of the statement currently
	// executing (set by ExecuteStmtCtx for its duration). Sessions are
	// single-threaded, so a plain field suffices.
	qctx context.Context

	// progressNode/progressFn stream partial rows out of a running crowd
	// query: when exec reaches progressNode (the last crowd stage of a
	// linear pipeline, see progressTarget), every row it emits is also
	// handed to progressFn. Set by ExecuteStmtStream; nil otherwise.
	progressNode PlanNode
	progressFn   func(bs *boundSchema, row model.Tuple)
}

// NewSession builds a session with sane defaults. runner may be nil for a
// machine-only session; rng may be nil when no crowd sampling is needed.
func NewSession(catalog *Catalog, runner *operators.Runner, rng *stats.RNG) *Session {
	if catalog == nil {
		catalog = NewCatalog()
	}
	if rng == nil {
		rng = stats.NewRNG(1)
	}
	return &Session{
		Catalog:      catalog,
		Runner:       runner,
		Redundancy:   3,
		SampleSize:   100,
		JoinPruneLow: 0.3,
		Optimize:     true,
		rng:          rng,
	}
}

// Execute parses and runs one statement, returning its result relation.
// DDL statements return a one-row status relation.
func (s *Session) Execute(src string) (*model.Relation, error) {
	return s.ExecuteCtx(context.Background(), src)
}

// ExecuteCtx is Execute with a cancellation context: canceling ctx stops
// the statement between crowd questions (no further questions are issued)
// and surfaces ctx.Err().
func (s *Session) ExecuteCtx(ctx context.Context, src string) (*model.Relation, error) {
	stmt, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return s.ExecuteStmtCtx(ctx, stmt)
}

// ExecuteScript runs a semicolon-separated script, returning the result of
// the last statement.
func (s *Session) ExecuteScript(src string) (*model.Relation, error) {
	return s.ExecuteScriptCtx(context.Background(), src)
}

// ExecuteScriptCtx is ExecuteScript with a cancellation context.
func (s *Session) ExecuteScriptCtx(ctx context.Context, src string) (*model.Relation, error) {
	stmts, err := ParseAll(src)
	if err != nil {
		return nil, err
	}
	var last *model.Relation
	for _, st := range stmts {
		last, err = s.ExecuteStmtCtx(ctx, st)
		if err != nil {
			return nil, err
		}
	}
	return last, nil
}

// ExecuteStmt runs one parsed statement.
func (s *Session) ExecuteStmt(stmt Statement) (*model.Relation, error) {
	return s.ExecuteStmtCtx(context.Background(), stmt)
}

// ExecuteStmtCtx runs one parsed statement under ctx. The context gates
// crowd work: every plan-node dispatch and every crowd question checks it
// first, so cancellation takes effect between answers without tearing the
// catalog (mutating statements are machine-only and atomic).
func (s *Session) ExecuteStmtCtx(ctx context.Context, stmt Statement) (*model.Relation, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	prev := s.qctx
	s.qctx = ctx
	defer func() { s.qctx = prev }()
	return s.executeStmt(stmt)
}

// queryCtx returns the context of the running statement.
func (s *Session) queryCtx() context.Context {
	if s.qctx == nil {
		return context.Background()
	}
	return s.qctx
}

func (s *Session) executeStmt(stmt Statement) (*model.Relation, error) {
	switch st := stmt.(type) {
	case *CreateTable:
		schema, err := model.NewSchema(st.Columns...)
		if err != nil {
			return nil, err
		}
		schema.CrowdTable = st.CrowdTable
		if err := s.Catalog.Create(st.Name, schema); err != nil {
			return nil, err
		}
		return statusRelation(fmt.Sprintf("created table %s", st.Name)), nil
	case *Insert:
		return s.execInsert(st)
	case *DropTable:
		if err := s.Catalog.Drop(st.Name); err != nil {
			return nil, err
		}
		return statusRelation(fmt.Sprintf("dropped table %s", st.Name)), nil
	case *Delete:
		return s.execDelete(st)
	case *Update:
		return s.execUpdate(st)
	case *ShowTables:
		rel := model.NewRelation("tables", model.MustSchema(
			model.Column{Name: "name", Type: model.TypeString},
			model.Column{Name: "rows", Type: model.TypeInt},
			model.Column{Name: "crowd", Type: model.TypeBool},
		))
		for _, name := range s.Catalog.Names() {
			t, err := s.Catalog.Get(name)
			if err != nil {
				return nil, err
			}
			rel.MustInsert(model.Tuple{
				model.String_(name),
				model.Int(int64(t.Len())),
				model.Bool(t.Schema.CrowdTable || t.Schema.HasCrowdColumns()),
			})
		}
		return rel, nil
	case *Describe:
		t, err := s.Catalog.Get(st.Name)
		if err != nil {
			return nil, err
		}
		rel := model.NewRelation("describe", model.MustSchema(
			model.Column{Name: "column", Type: model.TypeString},
			model.Column{Name: "type", Type: model.TypeString},
			model.Column{Name: "crowd", Type: model.TypeBool},
		))
		for _, c := range t.Schema.Columns {
			rel.MustInsert(model.Tuple{
				model.String_(c.Name),
				model.String_(c.Type.String()),
				model.Bool(c.Crowd),
			})
		}
		return rel, nil
	case *Explain:
		plan, err := s.Plan(st.Query, s.Optimize)
		if err != nil {
			return nil, err
		}
		text, err := s.ExplainWithCost(plan)
		if err != nil {
			return nil, err
		}
		rel := model.NewRelation("plan", model.MustSchema(
			model.Column{Name: "plan", Type: model.TypeString},
		))
		for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
			rel.MustInsert(model.Tuple{model.String_(line)})
		}
		return rel, nil
	case *Select:
		plan, err := s.Plan(st, s.Optimize)
		if err != nil {
			return nil, err
		}
		return s.run(plan)
	default:
		return nil, fmt.Errorf("cql: unsupported statement %T", stmt)
	}
}

func (s *Session) execInsert(st *Insert) (*model.Relation, error) {
	rel, err := s.Catalog.Get(st.Table)
	if err != nil {
		return nil, err
	}
	if st.Query != nil {
		return s.execInsertSelect(st, rel)
	}
	for _, row := range st.Rows {
		if len(row) != rel.Schema.Arity() {
			return nil, fmt.Errorf("cql: INSERT arity %d, table %s has %d columns",
				len(row), st.Table, rel.Schema.Arity())
		}
		t := make(model.Tuple, len(row))
		for i, e := range row {
			lit, ok := e.(*Literal)
			if !ok {
				return nil, fmt.Errorf("cql: INSERT values must be literals")
			}
			t[i] = lit.Value
		}
		if err := rel.Insert(t); err != nil {
			return nil, err
		}
	}
	return statusRelation(fmt.Sprintf("inserted %d rows into %s", len(st.Rows), st.Table)), nil
}

// execInsertSelect runs the source query and appends its rows.
func (s *Session) execInsertSelect(st *Insert, rel *model.Relation) (*model.Relation, error) {
	plan, err := s.Plan(st.Query, s.Optimize)
	if err != nil {
		return nil, err
	}
	src, err := s.run(plan)
	if err != nil {
		return nil, err
	}
	if src.Schema.Arity() != rel.Schema.Arity() {
		return nil, fmt.Errorf("cql: INSERT SELECT arity %d, table %s has %d columns",
			src.Schema.Arity(), st.Table, rel.Schema.Arity())
	}
	for _, row := range src.Tuples {
		if err := rel.Insert(row.Clone()); err != nil {
			return nil, err
		}
	}
	return statusRelation(fmt.Sprintf("inserted %d rows into %s", src.Len(), st.Table)), nil
}

// execUpdate assigns literal values to the tuples matching the
// (machine-only) predicate.
func (s *Session) execUpdate(st *Update) (*model.Relation, error) {
	rel, err := s.Catalog.Get(st.Table)
	if err != nil {
		return nil, err
	}
	if st.Where != nil && IsCrowdExpr(st.Where) {
		return nil, fmt.Errorf("cql: UPDATE supports machine predicates only")
	}
	type setOp struct {
		idx int
		val model.Value
	}
	ops := make([]setOp, 0, len(st.Set))
	for _, sc := range st.Set {
		ci := rel.Schema.ColumnIndex(sc.Column)
		if ci < 0 {
			return nil, fmt.Errorf("cql: table %s has no column %q", st.Table, sc.Column)
		}
		lit, ok := sc.Value.(*Literal)
		if !ok {
			return nil, fmt.Errorf("cql: UPDATE values must be literals")
		}
		v := lit.Value
		want := rel.Schema.Columns[ci].Type
		if !v.IsNull() && v.Type() != want {
			if want == model.TypeFloat && v.Type() == model.TypeInt {
				v = model.Float(v.AsFloat())
			} else {
				return nil, fmt.Errorf("cql: column %s expects %v, got %v",
					sc.Column, want, v.Type())
			}
		}
		ops = append(ops, setOp{idx: ci, val: v})
	}
	// Two-pass: evaluate the predicate over every row before mutating any,
	// so a predicate error mid-scan leaves the table untouched instead of
	// partially updated.
	bs := newBoundSchema(rel, st.Table)
	var matched []int
	for i, row := range rel.Tuples {
		match := true
		if st.Where != nil {
			match, err = evalMachine(st.Where, bs, row)
			if err != nil {
				return nil, err
			}
		}
		if match {
			matched = append(matched, i)
		}
	}
	for _, i := range matched {
		for _, op := range ops {
			rel.Tuples[i][op.idx] = op.val
		}
	}
	return statusRelation(fmt.Sprintf("updated %d rows in %s", len(matched), st.Table)), nil
}

// execDelete removes the tuples matching the (machine-only) predicate.
func (s *Session) execDelete(st *Delete) (*model.Relation, error) {
	rel, err := s.Catalog.Get(st.Table)
	if err != nil {
		return nil, err
	}
	if st.Where != nil && IsCrowdExpr(st.Where) {
		return nil, fmt.Errorf("cql: DELETE supports machine predicates only")
	}
	// Two-pass: decide every row's fate before compacting. The old
	// single-pass version compacted rel.Tuples[:0] in place while still
	// evaluating the predicate, so an error mid-scan left kept rows
	// clobbering unvisited ones — a corrupted table.
	bs := newBoundSchema(rel, st.Table)
	match := make([]bool, len(rel.Tuples))
	deleted := 0
	for i, row := range rel.Tuples {
		m := true
		if st.Where != nil {
			m, err = evalMachine(st.Where, bs, row)
			if err != nil {
				return nil, err
			}
		}
		match[i] = m
		if m {
			deleted++
		}
	}
	if deleted > 0 {
		kept := rel.Tuples[:0]
		for i, row := range rel.Tuples {
			if !match[i] {
				kept = append(kept, row)
			}
		}
		rel.Tuples = kept
	}
	return statusRelation(fmt.Sprintf("deleted %d rows from %s", deleted, st.Table)), nil
}

func statusRelation(msg string) *model.Relation {
	rel := model.NewRelation("status", model.MustSchema(
		model.Column{Name: "status", Type: model.TypeString},
	))
	rel.MustInsert(model.Tuple{model.String_(msg)})
	return rel
}
