package cql

import (
	"fmt"
	"strings"

	"repro/internal/model"
)

// Statement is any parsed CQL statement.
type Statement interface{ stmtNode() }

// CreateTable is CREATE [CROWD] TABLE name (col TYPE [CROWD], ...).
type CreateTable struct {
	Name       string
	Columns    []model.Column
	CrowdTable bool
}

// Insert is INSERT INTO name VALUES (...), (...) or INSERT INTO name
// SELECT ....
type Insert struct {
	Table string
	Rows  [][]Expr // literal expressions only (VALUES form)
	// Query, when non-nil, is the INSERT ... SELECT source.
	Query *Select
}

// DropTable is DROP TABLE name.
type DropTable struct{ Name string }

// Delete is DELETE FROM name [WHERE expr] (machine predicates only).
type Delete struct {
	Table string
	Where Expr
}

// Update is UPDATE name SET col = lit, ... [WHERE expr] (machine
// predicates and literal values only).
type Update struct {
	Table string
	// Set maps column names to literal expressions, in syntactic order.
	Set   []SetClause
	Where Expr
}

// SetClause is one col = literal assignment.
type SetClause struct {
	Column string
	Value  Expr
}

// ShowTables is SHOW TABLES.
type ShowTables struct{}

// Describe is DESCRIBE name.
type Describe struct{ Name string }

// Explain wraps a SELECT for plan display.
type Explain struct{ Query *Select }

// Select is the query statement.
type Select struct {
	// Projections lists select items; a single Star item means *.
	Projections []SelectItem
	// From is the base table.
	From TableRef
	// Joins holds machine equi-joins and crowd joins in syntactic order.
	Joins []JoinClause
	// Where is the conjunction root (nil when absent).
	Where Expr
	// OrderBy, when non-empty, sorts results.
	OrderBy []OrderKey
	// CrowdOrder, when set, uses crowd comparisons on the named column
	// (exclusive with OrderBy).
	CrowdOrder *CrowdOrderClause
	// Limit < 0 means no limit.
	Limit int
	// GroupBy, when set, aggregates per distinct value of this column.
	GroupBy string
	// Having filters aggregate output rows (machine predicates over the
	// aggregate's output columns, including aliases).
	Having Expr
	// Distinct deduplicates result rows.
	Distinct bool
}

func (*CreateTable) stmtNode() {}
func (*Insert) stmtNode()      {}
func (*DropTable) stmtNode()   {}
func (*Delete) stmtNode()      {}
func (*Update) stmtNode()      {}
func (*ShowTables) stmtNode()  {}
func (*Describe) stmtNode()    {}
func (*Select) stmtNode()      {}
func (*Explain) stmtNode()     {}

// SelectItem is one projection: a column, a star, or an aggregate.
type SelectItem struct {
	Star bool
	// Column is the column reference (possibly table-qualified) when not
	// a star or aggregate.
	Column *ColumnRef
	// Agg is the aggregate function name ("COUNT", "SUM", "AVG", "MIN",
	// "MAX", "CROWDCOUNT") when this item aggregates; the argument is
	// Column (nil for COUNT(*) and CROWDCOUNT).
	Agg string
	// CrowdCountQuestion holds the predicate question of
	// CROWDCOUNT('question', col).
	CrowdCountQuestion string
	// Alias renames the output column.
	Alias string
}

// DisplayName returns the output column name.
func (it SelectItem) DisplayName() string {
	if it.Alias != "" {
		return it.Alias
	}
	if it.Agg != "" {
		if it.Column == nil {
			return strings.ToLower(it.Agg)
		}
		return fmt.Sprintf("%s(%s)", strings.ToLower(it.Agg), it.Column.Name)
	}
	if it.Column != nil {
		return it.Column.Name
	}
	return "*"
}

// TableRef names a table with an optional alias.
type TableRef struct {
	Name  string
	Alias string
}

// Binding returns the name the table is referenced by in expressions.
func (t TableRef) Binding() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Name
}

// JoinClause is JOIN t ON a.x = b.y, or CROWDJOIN t ON a.x ~ b.y (crowd
// entity matching between two string columns).
type JoinClause struct {
	Table TableRef
	// Crowd selects a crowd join (entity resolution) instead of an
	// equi-join.
	Crowd bool
	// Left and Right are the join columns (Left from earlier tables,
	// Right from the joined table).
	Left, Right *ColumnRef
}

// OrderKey is one ORDER BY key.
type OrderKey struct {
	Column *ColumnRef
	Desc   bool
}

// CrowdOrderClause is CROWDORDER BY col [DESC] ['question'].
type CrowdOrderClause struct {
	Column   *ColumnRef
	Desc     bool
	Question string
}

// Expr is a boolean/value expression node.
type Expr interface {
	exprNode()
	// String renders the expression in CQL-ish syntax.
	String() string
}

// ColumnRef references a column, optionally table-qualified.
type ColumnRef struct {
	Table string // "" when unqualified
	Name  string
}

func (c *ColumnRef) exprNode() {}
func (c *ColumnRef) String() string {
	if c.Table != "" {
		return c.Table + "." + c.Name
	}
	return c.Name
}

// Literal is a constant value.
type Literal struct{ Value model.Value }

func (l *Literal) exprNode() {}
func (l *Literal) String() string {
	if l.Value.Type() == model.TypeString {
		return "'" + l.Value.AsString() + "'"
	}
	return l.Value.String()
}

// Compare is a binary comparison: =, !=, <, <=, >, >=, LIKE.
type Compare struct {
	Op          string
	Left, Right Expr
}

func (c *Compare) exprNode() {}
func (c *Compare) String() string {
	return fmt.Sprintf("%s %s %s", c.Left, c.Op, c.Right)
}

// IsNull is `expr IS [NOT] NULL`.
type IsNull struct {
	Expr   Expr
	Negate bool
}

func (c *IsNull) exprNode() {}
func (c *IsNull) String() string {
	if c.Negate {
		return fmt.Sprintf("%s IS NOT NULL", c.Expr)
	}
	return fmt.Sprintf("%s IS NULL", c.Expr)
}

// And is conjunction.
type And struct{ Left, Right Expr }

func (a *And) exprNode() {}
func (a *And) String() string {
	return fmt.Sprintf("(%s AND %s)", a.Left, a.Right)
}

// Or is disjunction.
type Or struct{ Left, Right Expr }

func (o *Or) exprNode() {}
func (o *Or) String() string {
	return fmt.Sprintf("(%s OR %s)", o.Left, o.Right)
}

// Not is negation.
type Not struct{ Expr Expr }

func (n *Not) exprNode()      {}
func (n *Not) String() string { return fmt.Sprintf("NOT %s", n.Expr) }

// CrowdEqual is `col CROWDEQUAL 'literal'` (also spelled col ~= 'x'): the
// crowd judges whether the column value and the literal refer to the same
// real-world thing.
type CrowdEqual struct {
	Column  *ColumnRef
	Literal *Literal
}

func (c *CrowdEqual) exprNode() {}
func (c *CrowdEqual) String() string {
	return fmt.Sprintf("%s CROWDEQUAL %s", c.Column, c.Literal)
}

// CrowdFilter is CROWDFILTER('question', col): the crowd answers the
// yes/no question about each tuple's column value.
type CrowdFilter struct {
	Question string
	Column   *ColumnRef
}

func (c *CrowdFilter) exprNode() {}
func (c *CrowdFilter) String() string {
	return fmt.Sprintf("CROWDFILTER('%s', %s)", c.Question, c.Column)
}

// IsCrowdExpr reports whether the expression (sub)tree contains any
// crowd-evaluated predicate.
func IsCrowdExpr(e Expr) bool {
	switch v := e.(type) {
	case *CrowdEqual, *CrowdFilter:
		return true
	case *And:
		return IsCrowdExpr(v.Left) || IsCrowdExpr(v.Right)
	case *Or:
		return IsCrowdExpr(v.Left) || IsCrowdExpr(v.Right)
	case *Not:
		return IsCrowdExpr(v.Expr)
	case *Compare:
		return IsCrowdExpr(v.Left) || IsCrowdExpr(v.Right)
	case *IsNull:
		return IsCrowdExpr(v.Expr)
	default:
		return false
	}
}

// Conjuncts flattens nested ANDs into a list of top-level conjuncts.
func Conjuncts(e Expr) []Expr {
	if e == nil {
		return nil
	}
	if a, ok := e.(*And); ok {
		return append(Conjuncts(a.Left), Conjuncts(a.Right)...)
	}
	return []Expr{e}
}

// ColumnsIn collects every column reference in the expression tree.
func ColumnsIn(e Expr) []*ColumnRef {
	var out []*ColumnRef
	var walk func(Expr)
	walk = func(e Expr) {
		switch v := e.(type) {
		case *ColumnRef:
			out = append(out, v)
		case *Compare:
			walk(v.Left)
			walk(v.Right)
		case *And:
			walk(v.Left)
			walk(v.Right)
		case *Or:
			walk(v.Left)
			walk(v.Right)
		case *Not:
			walk(v.Expr)
		case *IsNull:
			walk(v.Expr)
		case *CrowdEqual:
			out = append(out, v.Column)
		case *CrowdFilter:
			out = append(out, v.Column)
		}
	}
	walk(e)
	return out
}
