package cql

import (
	"fmt"
	"strings"

	"repro/internal/model"
)

// evalMachine evaluates a machine (non-crowd) boolean expression against a
// row. NULL comparisons follow a pragmatic two-valued logic: any
// comparison involving NULL is false (use IS NULL to test for it), which
// matches what users of small analytics engines expect and keeps the
// planner simple.
func evalMachine(e Expr, bs *boundSchema, row model.Tuple) (bool, error) {
	switch v := e.(type) {
	case *And:
		l, err := evalMachine(v.Left, bs, row)
		if err != nil || !l {
			return false, err
		}
		return evalMachine(v.Right, bs, row)
	case *Or:
		l, err := evalMachine(v.Left, bs, row)
		if err != nil {
			return false, err
		}
		if l {
			return true, nil
		}
		return evalMachine(v.Right, bs, row)
	case *Not:
		b, err := evalMachine(v.Expr, bs, row)
		return !b, err
	case *Compare:
		return evalCompare(v, bs, row)
	case *IsNull:
		val, err := evalValue(v.Expr, bs, row)
		if err != nil {
			return false, err
		}
		if v.Negate {
			return !val.IsNull(), nil
		}
		return val.IsNull(), nil
	case *CrowdEqual, *CrowdFilter:
		return false, fmt.Errorf("cql: crowd predicate %s reached machine evaluator", e)
	default:
		return false, fmt.Errorf("cql: expression %s is not a predicate", e)
	}
}

func evalCompare(c *Compare, bs *boundSchema, row model.Tuple) (bool, error) {
	l, err := evalValue(c.Left, bs, row)
	if err != nil {
		return false, err
	}
	r, err := evalValue(c.Right, bs, row)
	if err != nil {
		return false, err
	}
	if l.IsNull() || r.IsNull() {
		return false, nil
	}
	switch c.Op {
	case "=":
		return l.Equal(r), nil
	case "!=":
		return !l.Equal(r), nil
	case "<":
		return l.Compare(r) < 0, nil
	case "<=":
		return l.Compare(r) <= 0, nil
	case ">":
		return l.Compare(r) > 0, nil
	case ">=":
		return l.Compare(r) >= 0, nil
	case "LIKE":
		if l.Type() != model.TypeString || r.Type() != model.TypeString {
			return false, fmt.Errorf("cql: LIKE requires strings")
		}
		return matchLike(l.AsString(), r.AsString()), nil
	default:
		return false, fmt.Errorf("cql: unknown operator %q", c.Op)
	}
}

// evalValue resolves a value expression (column or literal) on a row.
func evalValue(e Expr, bs *boundSchema, row model.Tuple) (model.Value, error) {
	switch v := e.(type) {
	case *Literal:
		return v.Value, nil
	case *ColumnRef:
		idx, err := bs.resolve(v)
		if err != nil {
			return model.Null(), err
		}
		return row[idx], nil
	default:
		return model.Null(), fmt.Errorf("cql: %s is not a value expression", e)
	}
}

// matchLike implements SQL LIKE with % (any run) and _ (any single char),
// case-insensitive.
func matchLike(s, pattern string) bool {
	return likeMatch(strings.ToLower(s), strings.ToLower(pattern))
}

func likeMatch(s, p string) bool {
	// Dynamic programming over pattern positions (iterative, two rows).
	// dp[j] = does s[:i] match p[:j].
	prev := make([]bool, len(p)+1)
	cur := make([]bool, len(p)+1)
	prev[0] = true
	for j := 1; j <= len(p); j++ {
		prev[j] = prev[j-1] && p[j-1] == '%'
	}
	for i := 1; i <= len(s); i++ {
		cur[0] = false
		for j := 1; j <= len(p); j++ {
			switch p[j-1] {
			case '%':
				cur[j] = cur[j-1] || prev[j]
			case '_':
				cur[j] = prev[j-1]
			default:
				cur[j] = prev[j-1] && s[i-1] == p[j-1]
			}
		}
		prev, cur = cur, prev
	}
	return prev[len(p)]
}
