package cql

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/model"
)

// parseError carries a positioned syntax error through panic/recover
// inside the parser (never across the package boundary).
type parseError struct{ err error }

type parser struct {
	toks []Token
	pos  int
}

// Parse parses one CQL statement (a trailing semicolon is allowed).
func Parse(src string) (Statement, error) {
	stmts, err := ParseAll(src)
	if err != nil {
		return nil, err
	}
	if len(stmts) != 1 {
		return nil, fmt.Errorf("cql: expected exactly one statement, got %d", len(stmts))
	}
	return stmts[0], nil
}

// ParseAll parses a semicolon-separated script.
func ParseAll(src string) (stmts []Statement, err error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	defer func() {
		if r := recover(); r != nil {
			pe, ok := r.(parseError)
			if !ok {
				panic(r)
			}
			err = pe.err
			stmts = nil
		}
	}()
	for {
		for p.peek().Kind == TokSymbol && p.peek().Text == ";" {
			p.next()
		}
		if p.peek().Kind == TokEOF {
			break
		}
		stmts = append(stmts, p.statement())
	}
	return stmts, nil
}

func (p *parser) fail(format string, args ...any) {
	t := p.peek()
	msg := fmt.Sprintf(format, args...)
	panic(parseError{fmt.Errorf("cql: %d:%d: %s (near %q)", t.Line, t.Col, msg, t.String())})
}

func (p *parser) peek() Token { return p.toks[p.pos] }

func (p *parser) next() Token {
	t := p.toks[p.pos]
	if t.Kind != TokEOF {
		p.pos++
	}
	return t
}

// acceptKeyword consumes the keyword if it is next.
func (p *parser) acceptKeyword(kw string) bool {
	if p.peek().Kind == TokKeyword && p.peek().Text == kw {
		p.next()
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) {
	if !p.acceptKeyword(kw) {
		p.fail("expected %s", kw)
	}
}

func (p *parser) acceptSymbol(sym string) bool {
	if p.peek().Kind == TokSymbol && p.peek().Text == sym {
		p.next()
		return true
	}
	return false
}

func (p *parser) expectSymbol(sym string) {
	if !p.acceptSymbol(sym) {
		p.fail("expected %q", sym)
	}
}

func (p *parser) ident() string {
	t := p.peek()
	if t.Kind != TokIdent {
		p.fail("expected identifier")
	}
	p.next()
	return t.Text
}

func (p *parser) statement() Statement {
	t := p.peek()
	if t.Kind != TokKeyword {
		p.fail("expected statement keyword")
	}
	switch t.Text {
	case "CREATE":
		return p.createTable()
	case "INSERT":
		return p.insert()
	case "DROP":
		return p.dropTable()
	case "SHOW":
		p.next()
		p.expectKeyword("TABLES")
		return &ShowTables{}
	case "DESCRIBE":
		p.next()
		return &Describe{Name: p.ident()}
	case "EXPLAIN":
		p.next()
		sel := p.selectStmt()
		return &Explain{Query: sel}
	case "DELETE":
		return p.deleteStmt()
	case "UPDATE":
		return p.updateStmt()
	case "SELECT":
		return p.selectStmt()
	default:
		p.fail("unsupported statement %s", t.Text)
		return nil
	}
}

func (p *parser) createTable() Statement {
	p.expectKeyword("CREATE")
	crowdTable := p.acceptKeyword("CROWD")
	p.expectKeyword("TABLE")
	name := p.ident()
	p.expectSymbol("(")
	var cols []model.Column
	for {
		colName := p.ident()
		typTok := p.peek()
		if typTok.Kind != TokKeyword {
			p.fail("expected column type")
		}
		p.next()
		typ, err := model.ParseType(typTok.Text)
		if err != nil {
			p.fail("unknown type %s", typTok.Text)
		}
		crowdCol := p.acceptKeyword("CROWD")
		cols = append(cols, model.Column{Name: colName, Type: typ, Crowd: crowdCol})
		if p.acceptSymbol(",") {
			continue
		}
		break
	}
	p.expectSymbol(")")
	return &CreateTable{Name: name, Columns: cols, CrowdTable: crowdTable}
}

func (p *parser) insert() Statement {
	p.expectKeyword("INSERT")
	p.expectKeyword("INTO")
	name := p.ident()
	if p.peek().Kind == TokKeyword && p.peek().Text == "SELECT" {
		return &Insert{Table: name, Query: p.selectStmt()}
	}
	p.expectKeyword("VALUES")
	var rows [][]Expr
	for {
		p.expectSymbol("(")
		var row []Expr
		for {
			row = append(row, p.literal())
			if p.acceptSymbol(",") {
				continue
			}
			break
		}
		p.expectSymbol(")")
		rows = append(rows, row)
		if p.acceptSymbol(",") {
			continue
		}
		break
	}
	return &Insert{Table: name, Rows: rows}
}

func (p *parser) updateStmt() Statement {
	p.expectKeyword("UPDATE")
	u := &Update{Table: p.ident()}
	p.expectKeyword("SET")
	for {
		col := p.ident()
		p.expectSymbol("=")
		u.Set = append(u.Set, SetClause{Column: col, Value: p.literal()})
		if p.acceptSymbol(",") {
			continue
		}
		break
	}
	if p.acceptKeyword("WHERE") {
		u.Where = p.expr()
	}
	return u
}

func (p *parser) deleteStmt() Statement {
	p.expectKeyword("DELETE")
	p.expectKeyword("FROM")
	d := &Delete{Table: p.ident()}
	if p.acceptKeyword("WHERE") {
		d.Where = p.expr()
	}
	return d
}

func (p *parser) dropTable() Statement {
	p.expectKeyword("DROP")
	p.expectKeyword("TABLE")
	return &DropTable{Name: p.ident()}
}

func (p *parser) selectStmt() *Select {
	p.expectKeyword("SELECT")
	sel := &Select{Limit: -1}
	sel.Distinct = p.acceptKeyword("DISTINCT")
	for {
		sel.Projections = append(sel.Projections, p.selectItem())
		if p.acceptSymbol(",") {
			continue
		}
		break
	}
	p.expectKeyword("FROM")
	sel.From = p.tableRef()
	for {
		if p.acceptKeyword("JOIN") {
			sel.Joins = append(sel.Joins, p.joinClause(false))
			continue
		}
		if p.acceptKeyword("CROWDJOIN") {
			sel.Joins = append(sel.Joins, p.joinClause(true))
			continue
		}
		break
	}
	if p.acceptKeyword("WHERE") {
		sel.Where = p.expr()
	}
	if p.acceptKeyword("GROUP") {
		p.expectKeyword("BY")
		sel.GroupBy = p.columnRef().Name
	}
	if p.acceptKeyword("HAVING") {
		if sel.GroupBy == "" {
			p.fail("HAVING requires GROUP BY")
		}
		sel.Having = p.expr()
	}
	if p.acceptKeyword("ORDER") {
		p.expectKeyword("BY")
		for {
			key := OrderKey{Column: p.columnRef()}
			if p.acceptKeyword("DESC") {
				key.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			sel.OrderBy = append(sel.OrderBy, key)
			if p.acceptSymbol(",") {
				continue
			}
			break
		}
	}
	if p.acceptKeyword("CROWDORDER") {
		if sel.OrderBy != nil {
			p.fail("ORDER BY and CROWDORDER BY are mutually exclusive")
		}
		p.expectKeyword("BY")
		co := &CrowdOrderClause{Column: p.columnRef()}
		if p.acceptKeyword("DESC") {
			co.Desc = true
		} else {
			p.acceptKeyword("ASC")
		}
		if p.peek().Kind == TokString {
			co.Question = p.next().Text
		}
		sel.CrowdOrder = co
	}
	if p.acceptKeyword("LIMIT") {
		t := p.peek()
		if t.Kind != TokNumber {
			p.fail("expected LIMIT count")
		}
		p.next()
		n, err := strconv.Atoi(t.Text)
		if err != nil || n < 0 {
			p.fail("invalid LIMIT %s", t.Text)
		}
		sel.Limit = n
	}
	return sel
}

func (p *parser) selectItem() SelectItem {
	t := p.peek()
	if t.Kind == TokSymbol && t.Text == "*" {
		p.next()
		return SelectItem{Star: true}
	}
	if t.Kind == TokKeyword {
		switch t.Text {
		case "COUNT", "SUM", "AVG", "MIN", "MAX":
			p.next()
			p.expectSymbol("(")
			item := SelectItem{Agg: t.Text}
			if t.Text == "COUNT" && p.acceptSymbol("*") {
				// COUNT(*)
			} else {
				item.Column = p.columnRef()
			}
			p.expectSymbol(")")
			item.Alias = p.optionalAlias()
			return item
		case "CROWDCOUNT":
			p.next()
			p.expectSymbol("(")
			if p.peek().Kind != TokString {
				p.fail("CROWDCOUNT needs a question string")
			}
			q := p.next().Text
			item := SelectItem{Agg: "CROWDCOUNT", CrowdCountQuestion: q}
			if p.acceptSymbol(",") {
				item.Column = p.columnRef()
			}
			p.expectSymbol(")")
			item.Alias = p.optionalAlias()
			return item
		}
	}
	col := p.columnRef()
	return SelectItem{Column: col, Alias: p.optionalAlias()}
}

func (p *parser) optionalAlias() string {
	if p.acceptKeyword("AS") {
		return p.ident()
	}
	return ""
}

func (p *parser) tableRef() TableRef {
	ref := TableRef{Name: p.ident()}
	if p.acceptKeyword("AS") {
		ref.Alias = p.ident()
	} else if p.peek().Kind == TokIdent {
		ref.Alias = p.ident()
	}
	return ref
}

func (p *parser) joinClause(crowd bool) JoinClause {
	jc := JoinClause{Table: p.tableRef(), Crowd: crowd}
	p.expectKeyword("ON")
	jc.Left = p.columnRef()
	if !p.acceptSymbol("=") && !p.acceptSymbol("~=") {
		p.fail("expected = or ~= in join condition")
	}
	jc.Right = p.columnRef()
	return jc
}

func (p *parser) columnRef() *ColumnRef {
	first := p.ident()
	if p.acceptSymbol(".") {
		return &ColumnRef{Table: first, Name: p.ident()}
	}
	return &ColumnRef{Name: first}
}

func (p *parser) literal() Expr {
	t := p.peek()
	switch {
	case t.Kind == TokNumber:
		p.next()
		if strings.Contains(t.Text, ".") {
			f, err := strconv.ParseFloat(t.Text, 64)
			if err != nil {
				p.fail("invalid number %s", t.Text)
			}
			return &Literal{Value: model.Float(f)}
		}
		n, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			p.fail("invalid number %s", t.Text)
		}
		return &Literal{Value: model.Int(n)}
	case t.Kind == TokSymbol && t.Text == "-":
		p.next()
		inner := p.literal()
		lit := inner.(*Literal)
		switch lit.Value.Type() {
		case model.TypeInt:
			return &Literal{Value: model.Int(-lit.Value.AsInt())}
		case model.TypeFloat:
			return &Literal{Value: model.Float(-lit.Value.AsFloat())}
		default:
			p.fail("cannot negate %v", lit.Value.Type())
		}
	case t.Kind == TokString:
		p.next()
		return &Literal{Value: model.String_(t.Text)}
	case t.Kind == TokKeyword && t.Text == "NULL":
		p.next()
		return &Literal{Value: model.Null()}
	case t.Kind == TokKeyword && (t.Text == "TRUE" || t.Text == "FALSE"):
		p.next()
		return &Literal{Value: model.Bool(t.Text == "TRUE")}
	}
	p.fail("expected literal")
	return nil
}

// Expression grammar: expr := and (OR and)*; and := unary (AND unary)*.
func (p *parser) expr() Expr {
	left := p.andExpr()
	for p.acceptKeyword("OR") {
		right := p.andExpr()
		left = &Or{Left: left, Right: right}
	}
	return left
}

func (p *parser) andExpr() Expr {
	left := p.unaryExpr()
	for p.acceptKeyword("AND") {
		right := p.unaryExpr()
		left = &And{Left: left, Right: right}
	}
	return left
}

func (p *parser) unaryExpr() Expr {
	if p.acceptKeyword("NOT") {
		return &Not{Expr: p.unaryExpr()}
	}
	return p.primaryExpr()
}

func (p *parser) primaryExpr() Expr {
	t := p.peek()
	if t.Kind == TokSymbol && t.Text == "(" {
		p.next()
		e := p.expr()
		p.expectSymbol(")")
		return e
	}
	if t.Kind == TokKeyword && t.Text == "CROWDFILTER" {
		p.next()
		p.expectSymbol("(")
		if p.peek().Kind != TokString {
			p.fail("CROWDFILTER needs a question string")
		}
		q := p.next().Text
		p.expectSymbol(",")
		col := p.columnRef()
		p.expectSymbol(")")
		return &CrowdFilter{Question: q, Column: col}
	}
	// operand (comparison | CROWDEQUAL | IS NULL)
	left := p.operand()
	tk := p.peek()
	switch {
	case tk.Kind == TokSymbol && tk.Text == "~=":
		p.next()
		return p.crowdEqualRHS(left)
	case tk.Kind == TokKeyword && tk.Text == "CROWDEQUAL":
		p.next()
		return p.crowdEqualRHS(left)
	case tk.Kind == TokKeyword && tk.Text == "IS":
		p.next()
		neg := p.acceptKeyword("NOT")
		p.expectKeyword("NULL")
		return &IsNull{Expr: left, Negate: neg}
	case tk.Kind == TokKeyword && tk.Text == "LIKE":
		p.next()
		right := p.operand()
		return &Compare{Op: "LIKE", Left: left, Right: right}
	case tk.Kind == TokSymbol:
		switch tk.Text {
		case "=", "!=", "<", "<=", ">", ">=":
			p.next()
			right := p.operand()
			return &Compare{Op: tk.Text, Left: left, Right: right}
		}
	}
	p.fail("expected comparison operator")
	return nil
}

// crowdEqualRHS finishes `col ~= literal`.
func (p *parser) crowdEqualRHS(left Expr) Expr {
	col, ok := left.(*ColumnRef)
	if !ok {
		p.fail("CROWDEQUAL requires a column on the left")
	}
	lit, ok := p.literal().(*Literal)
	if !ok || lit.Value.Type() != model.TypeString {
		p.fail("CROWDEQUAL requires a string literal on the right")
	}
	return &CrowdEqual{Column: col, Literal: lit}
}

func (p *parser) operand() Expr {
	t := p.peek()
	if t.Kind == TokIdent {
		return p.columnRef()
	}
	return p.literal()
}
