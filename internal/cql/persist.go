package cql

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/model"
)

// The on-disk catalog layout is one pair of files per table:
//
//	<dir>/<table>.schema.json   column names/types/crowd flags
//	<dir>/<table>.csv           the tuples (header + rows)
//
// This is deliberately plain — the reproduction's workloads are bounded
// by crowd cost, not I/O — but it makes acquired crowd data durable
// across sessions, which matters because every filled cell was paid for.
// Because the files hold paid-for data, writes follow the same atomic
// discipline as the durable package's snapshots: stage to a temp file,
// fsync, rename over the old file, fsync the directory. A crash at any
// point leaves either the old complete file or the new complete file,
// never a torn one.

// schemaDTO is the JSON form of a schema. Name carries the exact
// (case-preserving) table name; the filename is lowercased because the
// catalog is case-insensitive, so the filename alone cannot round-trip
// a mixed-case name like "Hotels".
type schemaDTO struct {
	Name       string      `json:"name,omitempty"`
	CrowdTable bool        `json:"crowd_table"`
	Columns    []columnDTO `json:"columns"`
}

type columnDTO struct {
	Name  string `json:"name"`
	Type  string `json:"type"`
	Crowd bool   `json:"crowd,omitempty"`
}

// saveCatalogHook, when non-nil, runs after each table's files have been
// staged (written + synced, not yet published). Tests use it to simulate
// a crash mid-save; production code never sets it.
var saveCatalogHook func(table string) error

// SaveCatalog writes every table of the catalog into dir (created if
// missing). Existing files for the same tables are overwritten; unrelated
// files are left alone.
//
// The save is two-phase: every table's schema and CSV are first staged to
// temp files in dir (each written, fsynced, and closed), and only when
// all tables are staged are the temp files renamed over the live ones and
// the directory fsynced. An error — or a crash — before the publish phase
// leaves the previous catalog files untouched; each individual rename is
// atomic, so no reader ever sees a torn or truncated file.
func SaveCatalog(c *Catalog, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("cql: creating catalog dir: %w", err)
	}
	type stagedFile struct {
		tmp, final string
	}
	var staged []stagedFile
	cleanup := func() {
		for _, f := range staged {
			os.Remove(f.tmp)
		}
	}
	stage := func(final string, write func(io.Writer) error) error {
		tmp, err := os.CreateTemp(dir, filepath.Base(final)+".tmp-*")
		if err != nil {
			return err
		}
		staged = append(staged, stagedFile{tmp: tmp.Name(), final: final})
		if err := write(tmp); err != nil {
			tmp.Close()
			return err
		}
		if err := tmp.Sync(); err != nil {
			tmp.Close()
			return err
		}
		return tmp.Close()
	}
	for _, name := range c.Names() {
		rel, err := c.Get(name)
		if err != nil {
			cleanup()
			return err
		}
		dto := schemaDTO{Name: rel.Name, CrowdTable: rel.Schema.CrowdTable}
		for _, col := range rel.Schema.Columns {
			dto.Columns = append(dto.Columns, columnDTO{
				Name: col.Name, Type: col.Type.String(), Crowd: col.Crowd,
			})
		}
		sj, err := json.MarshalIndent(dto, "", "  ")
		if err != nil {
			cleanup()
			return fmt.Errorf("cql: encoding schema for %s: %w", name, err)
		}
		base := strings.ToLower(name)
		// CSV before schema, so the publish phase (which renames in staging
		// order) never leaves a schema file whose CSV is missing.
		if err := stage(filepath.Join(dir, base+".csv"), rel.WriteCSV); err != nil {
			cleanup()
			return fmt.Errorf("cql: staging CSV for %s: %w", name, err)
		}
		if err := stage(filepath.Join(dir, base+".schema.json"), func(w io.Writer) error {
			_, werr := w.Write(sj)
			return werr
		}); err != nil {
			cleanup()
			return fmt.Errorf("cql: staging schema for %s: %w", name, err)
		}
		if saveCatalogHook != nil {
			if err := saveCatalogHook(name); err != nil {
				cleanup()
				return err
			}
		}
	}
	// Publish phase: every table staged successfully; swap the temp files
	// in and make the renames durable with one directory fsync.
	for _, f := range staged {
		if err := os.Rename(f.tmp, f.final); err != nil {
			cleanup()
			return fmt.Errorf("cql: publishing %s: %w", f.final, err)
		}
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so renames into it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("cql: opening catalog dir for sync: %w", err)
	}
	if err := d.Sync(); err != nil {
		d.Close()
		return fmt.Errorf("cql: syncing catalog dir: %w", err)
	}
	return d.Close()
}

// LoadCatalog reads every *.schema.json/*.csv pair in dir into a fresh
// catalog. Temp files left behind by a crashed save are ignored: the
// staged data was never published, so the last complete catalog wins.
func LoadCatalog(dir string) (*Catalog, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("cql: reading catalog dir: %w", err)
	}
	c := NewCatalog()
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".schema.json") {
			continue
		}
		base := strings.TrimSuffix(e.Name(), ".schema.json")
		sj, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, fmt.Errorf("cql: reading schema %s: %w", e.Name(), err)
		}
		var dto schemaDTO
		if err := json.Unmarshal(sj, &dto); err != nil {
			return nil, fmt.Errorf("cql: decoding schema %s: %w", e.Name(), err)
		}
		// The schema JSON carries the exact table name; files written
		// before that field existed fall back to the (lowercased) filename.
		name := dto.Name
		if name == "" {
			name = base
		}
		cols := make([]model.Column, len(dto.Columns))
		for i, cd := range dto.Columns {
			typ, err := model.ParseType(cd.Type)
			if err != nil {
				return nil, fmt.Errorf("cql: schema %s column %s: %w", name, cd.Name, err)
			}
			cols[i] = model.Column{Name: cd.Name, Type: typ, Crowd: cd.Crowd}
		}
		schema, err := model.NewSchema(cols...)
		if err != nil {
			return nil, fmt.Errorf("cql: schema %s: %w", name, err)
		}
		schema.CrowdTable = dto.CrowdTable

		csvPath := filepath.Join(dir, base+".csv")
		f, err := os.Open(csvPath)
		if err != nil {
			return nil, fmt.Errorf("cql: opening %s: %w", csvPath, err)
		}
		rel, err := model.ReadCSV(name, schema, f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("cql: loading %s: %w", csvPath, err)
		}
		if err := c.Create(name, schema); err != nil {
			return nil, err
		}
		dst, err := c.Get(name)
		if err != nil {
			return nil, err
		}
		dst.Tuples = rel.Tuples
	}
	return c, nil
}
