package cql

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/model"
)

// The on-disk catalog layout is one pair of files per table:
//
//	<dir>/<table>.schema.json   column names/types/crowd flags
//	<dir>/<table>.csv           the tuples (header + rows)
//
// This is deliberately plain — the reproduction's workloads are bounded
// by crowd cost, not I/O — but it makes acquired crowd data durable
// across sessions, which matters because every filled cell was paid for.

// schemaDTO is the JSON form of a schema.
type schemaDTO struct {
	CrowdTable bool        `json:"crowd_table"`
	Columns    []columnDTO `json:"columns"`
}

type columnDTO struct {
	Name  string `json:"name"`
	Type  string `json:"type"`
	Crowd bool   `json:"crowd,omitempty"`
}

// SaveCatalog writes every table of the catalog into dir (created if
// missing). Existing files for the same tables are overwritten; unrelated
// files are left alone.
func SaveCatalog(c *Catalog, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("cql: creating catalog dir: %w", err)
	}
	for _, name := range c.Names() {
		rel, err := c.Get(name)
		if err != nil {
			return err
		}
		dto := schemaDTO{CrowdTable: rel.Schema.CrowdTable}
		for _, col := range rel.Schema.Columns {
			dto.Columns = append(dto.Columns, columnDTO{
				Name: col.Name, Type: col.Type.String(), Crowd: col.Crowd,
			})
		}
		sj, err := json.MarshalIndent(dto, "", "  ")
		if err != nil {
			return fmt.Errorf("cql: encoding schema for %s: %w", name, err)
		}
		base := strings.ToLower(name)
		if err := os.WriteFile(filepath.Join(dir, base+".schema.json"), sj, 0o644); err != nil {
			return fmt.Errorf("cql: writing schema for %s: %w", name, err)
		}
		f, err := os.Create(filepath.Join(dir, base+".csv"))
		if err != nil {
			return fmt.Errorf("cql: creating CSV for %s: %w", name, err)
		}
		if err := rel.WriteCSV(f); err != nil {
			f.Close()
			return fmt.Errorf("cql: writing CSV for %s: %w", name, err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("cql: closing CSV for %s: %w", name, err)
		}
	}
	return nil
}

// LoadCatalog reads every *.schema.json/*.csv pair in dir into a fresh
// catalog.
func LoadCatalog(dir string) (*Catalog, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("cql: reading catalog dir: %w", err)
	}
	c := NewCatalog()
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".schema.json") {
			continue
		}
		name := strings.TrimSuffix(e.Name(), ".schema.json")
		sj, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, fmt.Errorf("cql: reading schema %s: %w", e.Name(), err)
		}
		var dto schemaDTO
		if err := json.Unmarshal(sj, &dto); err != nil {
			return nil, fmt.Errorf("cql: decoding schema %s: %w", e.Name(), err)
		}
		cols := make([]model.Column, len(dto.Columns))
		for i, cd := range dto.Columns {
			typ, err := model.ParseType(cd.Type)
			if err != nil {
				return nil, fmt.Errorf("cql: schema %s column %s: %w", name, cd.Name, err)
			}
			cols[i] = model.Column{Name: cd.Name, Type: typ, Crowd: cd.Crowd}
		}
		schema, err := model.NewSchema(cols...)
		if err != nil {
			return nil, fmt.Errorf("cql: schema %s: %w", name, err)
		}
		schema.CrowdTable = dto.CrowdTable

		csvPath := filepath.Join(dir, name+".csv")
		f, err := os.Open(csvPath)
		if err != nil {
			return nil, fmt.Errorf("cql: opening %s: %w", csvPath, err)
		}
		rel, err := model.ReadCSV(name, schema, f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("cql: loading %s: %w", csvPath, err)
		}
		if err := c.Create(name, schema); err != nil {
			return nil, err
		}
		dst, err := c.Get(name)
		if err != nil {
			return nil, err
		}
		dst.Tuples = rel.Tuples
	}
	return c, nil
}
