package experiments

import (
	"fmt"

	"repro/internal/cost"
	"repro/internal/crowd"
	"repro/internal/datagen"
	"repro/internal/operators"
	"repro/internal/stats"
)

// joinWorkload plants an ER catalog and a reliable crowd runner.
func joinWorkload(seed uint64, entities int) (*datagen.ERDataset, *operators.Runner, error) {
	rng := stats.NewRNG(seed)
	d, err := datagen.NewERDataset(rng, datagen.ERConfig{
		Entities: entities, DupMean: 2.2, Noise: 0.3,
	})
	if err != nil {
		return nil, nil, err
	}
	ws := crowd.NewPopulation(rng, 60, crowd.RegimeReliable)
	runner := operators.NewRunner(crowd.AsCoreWorkers(ws), nil, rng.Split())
	return d, runner, nil
}

func truePairs(d *datagen.ERDataset) []cost.Pair {
	tp := d.TruePairs()
	out := make([]cost.Pair, len(tp))
	for i, p := range tp {
		out[i] = cost.Pair{I: p.I, J: p.J}
	}
	return out
}

// T4Join compares crowd-join strategies (CrowdER pipeline stages) on task
// count, votes and quality.
func T4Join(seed uint64) (*Table, error) {
	tbl := &Table{
		ID:     "T4",
		Title:  "Crowd join strategies: cost and quality",
		Header: []string{"strategy", "pairs-asked", "tasks", "votes", "precision", "recall", "F1"},
		Notes: []string{
			"ER catalog: 150 entities, ~2.2 records each, noise 0.3; redundancy 3; reliable crowd",
			fmt.Sprintf("seed %d", seed),
		},
	}
	type strat struct {
		name string
		cfg  operators.JoinConfig
	}
	strategies := []strat{
		{"all-pairs", operators.JoinConfig{PruneLow: 0, AutoHigh: 2, Redundancy: 3}},
		{"pruned", operators.JoinConfig{PruneLow: 0.3, AutoHigh: 2, Redundancy: 3}},
		{"pruned+trans", operators.JoinConfig{PruneLow: 0.3, AutoHigh: 2, Redundancy: 3, UseTransitivity: true}},
		{"pruned+trans+batch10", operators.JoinConfig{PruneLow: 0.3, AutoHigh: 2, Redundancy: 3, UseTransitivity: true, BatchSize: 10}},
	}
	for _, st := range strategies {
		d, runner, err := joinWorkload(seed, 150)
		if err != nil {
			return nil, err
		}
		res, err := operators.Join(runner, d.Records, st.cfg, func(i int) int { return d.Entity[i] })
		if err != nil {
			return nil, err
		}
		prf := cost.EvaluatePairs(res.Matches, truePairs(d), true)
		tbl.AddRow(st.name, res.AskedPairs, res.TaskCount, res.VotesUsed,
			prf.Precision, prf.Recall, prf.F1)
	}
	return tbl, nil
}

// F3JoinThreshold sweeps the pruning threshold: asked pairs shrink while
// recall eventually collapses — the cost/quality crossover.
func F3JoinThreshold(seed uint64) (*Table, error) {
	tbl := &Table{
		ID:     "F3",
		Title:  "Crowd join: pruning threshold sweep",
		Header: []string{"threshold", "candidates", "pruned", "asked", "F1", "recall"},
		Notes: []string{
			"ER catalog: 100 entities; transitivity on; redundancy 3",
			fmt.Sprintf("seed %d", seed),
		},
	}
	for _, th := range []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8} {
		d, runner, err := joinWorkload(seed, 100)
		if err != nil {
			return nil, err
		}
		res, err := operators.Join(runner, d.Records, operators.JoinConfig{
			PruneLow: th, AutoHigh: 2, Redundancy: 3, UseTransitivity: true,
		}, func(i int) int { return d.Entity[i] })
		if err != nil {
			return nil, err
		}
		prf := cost.EvaluatePairs(res.Matches, truePairs(d), true)
		tbl.AddRow(th, res.CandidatePairs, res.Pruned, res.AskedPairs, prf.F1, prf.Recall)
	}
	return tbl, nil
}

// F4Transitivity isolates answer deduction: fraction of candidate pairs
// deduced (not asked) as the planted cluster size grows.
func F4Transitivity(seed uint64) (*Table, error) {
	tbl := &Table{
		ID:     "F4",
		Title:  "Transitivity deduction vs entity cluster size",
		Header: []string{"cluster-size", "pairs", "asked", "deduced", "deduced-frac"},
		Notes: []string{
			"Perfect oracle; 40 entities per setting; match-first pair order (as similarity ordering yields)",
			fmt.Sprintf("seed %d (deterministic)", seed),
		},
	}
	for _, size := range []int{1, 2, 3, 4, 6, 8} {
		nRecords := 40 * size
		entityOf := func(i int) int { return i / size }
		var matchFirst, rest []cost.Pair
		for i := 0; i < nRecords; i++ {
			for j := i + 1; j < nRecords; j++ {
				p := cost.Pair{I: i, J: j}
				if entityOf(i) == entityOf(j) {
					matchFirst = append(matchFirst, p)
				} else {
					rest = append(rest, p)
				}
			}
		}
		// Bound the non-match pairs so the experiment stays fast while
		// still exercising negative deduction.
		if len(rest) > 20000 {
			rest = rest[:20000]
		}
		ordered := append(matchFirst, rest...)
		tr := cost.NewTransitivity(nRecords)
		st := tr.ResolveWithOracle(ordered, func(p cost.Pair) cost.Verdict {
			if entityOf(p.I) == entityOf(p.J) {
				return cost.Match
			}
			return cost.NonMatch
		})
		total := len(ordered)
		deduced := st.DeducedMatch + st.DeducedNon
		tbl.AddRow(size, total, st.Asked, deduced, float64(deduced)/float64(total))
	}
	return tbl, nil
}
