package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

func cellF(t *testing.T, tbl *Table, row int, header string) float64 {
	t.Helper()
	s := tbl.Cell(row, header)
	if s == "" || s == "-" {
		t.Fatalf("%s: empty cell (%d, %s)", tbl.ID, row, header)
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("%s: cell (%d,%s)=%q not numeric: %v", tbl.ID, row, header, s, err)
	}
	return v
}

func TestTableWriteAndCell(t *testing.T) {
	tbl := &Table{ID: "X", Title: "demo", Header: []string{"a", "b"}}
	tbl.AddRow(1, 2.5)
	tbl.Notes = append(tbl.Notes, "a note")
	var buf bytes.Buffer
	if err := tbl.Write(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"X", "demo", "2.500", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	if tbl.Cell(0, "b") != "2.500" || tbl.Cell(0, "zz") != "" || tbl.Cell(5, "a") != "" {
		t.Fatal("Cell lookup broken")
	}
}

func TestRegistry(t *testing.T) {
	ids := IDs()
	if len(ids) != 18 {
		t.Fatalf("registry has %d experiments, want 18: %v", len(ids), ids)
	}
	if _, err := Get("T2"); err != nil {
		t.Fatal(err)
	}
	if _, err := Get("nope"); err == nil {
		t.Fatal("unknown id should fail")
	}
}

func TestT1SystemsMatrix(t *testing.T) {
	tbl, err := T1Systems(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) < 10 {
		t.Fatalf("capability rows = %d", len(tbl.Rows))
	}
	// crowdkit column should claim every capability at least partially.
	for i, row := range tbl.Rows {
		v := tbl.Cell(i, "crowdkit")
		if v == "no" {
			t.Fatalf("crowdkit claims 'no' for %s", row[0])
		}
	}
}

func TestT2TruthInferenceShape(t *testing.T) {
	tbl, err := T2TruthInference(7)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 12 { // 3 regimes x 4 methods
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// Reliable-regime MV should be accurate; spammy-regime EM should beat
	// spammy-regime MV (the headline qualitative result).
	byKey := map[string]float64{}
	for i := range tbl.Rows {
		byKey[tbl.Cell(i, "regime")+"/"+tbl.Cell(i, "method")] = cellF(t, tbl, i, "accuracy")
	}
	if byKey["reliable/MV"] < 0.9 {
		t.Fatalf("reliable MV = %.3f", byKey["reliable/MV"])
	}
	if byKey["spammy/DS"] < byKey["spammy/MV"]-0.01 {
		t.Fatalf("spammy DS %.3f should not lose to MV %.3f",
			byKey["spammy/DS"], byKey["spammy/MV"])
	}
	if byKey["spammy/OneCoinEM"] < byKey["spammy/MV"]-0.01 {
		t.Fatalf("spammy OneCoinEM %.3f should not lose to MV %.3f",
			byKey["spammy/OneCoinEM"], byKey["spammy/MV"])
	}
}

func TestF1RedundancyMonotoneImprovement(t *testing.T) {
	tbl, err := F1Redundancy(8)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 5 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// k=9 should clearly beat k=1 for every method.
	for _, method := range []string{"MV", "OneCoinEM", "DS", "GLAD"} {
		lo := cellF(t, tbl, 0, method)
		hi := cellF(t, tbl, len(tbl.Rows)-1, method)
		if hi < lo+0.03 {
			t.Fatalf("%s: k=9 accuracy %.3f not above k=1 %.3f", method, hi, lo)
		}
	}
}

func TestF2AssignmentSmartNotWorse(t *testing.T) {
	tbl, err := F2Assignment(9)
	if err != nil {
		t.Fatal(err)
	}
	last := len(tbl.Rows) - 1
	rand0 := cellF(t, tbl, 0, "random")
	randN := cellF(t, tbl, last, "random")
	if randN < rand0 {
		t.Fatalf("more budget should not hurt random: %.3f -> %.3f", rand0, randN)
	}
	// At mid budgets, quality-aware policies should not lose badly.
	qasca := cellF(t, tbl, 2, "qasca")
	randm := cellF(t, tbl, 2, "random")
	if qasca < randm-0.05 {
		t.Fatalf("qasca %.3f far below random %.3f at 3x budget", qasca, randm)
	}
}

func TestT3EliminationHelps(t *testing.T) {
	tbl, err := T3Elimination(10)
	if err != nil {
		t.Fatal(err)
	}
	acc0 := cellF(t, tbl, 0, "accuracy")
	accLast := cellF(t, tbl, len(tbl.Rows)-1, "accuracy")
	if accLast < acc0-0.02 {
		t.Fatalf("screening hurt accuracy: %.3f -> %.3f", acc0, accLast)
	}
	if elim := cellF(t, tbl, len(tbl.Rows)-1, "eliminated"); elim == 0 {
		t.Fatal("20% goldens eliminated nobody in a spammy crowd")
	}
}

func TestT4JoinOrdering(t *testing.T) {
	tbl, err := T4Join(11)
	if err != nil {
		t.Fatal(err)
	}
	asked := map[string]float64{}
	f1 := map[string]float64{}
	for i := range tbl.Rows {
		name := tbl.Cell(i, "strategy")
		asked[name] = cellF(t, tbl, i, "pairs-asked")
		f1[name] = cellF(t, tbl, i, "F1")
	}
	if !(asked["all-pairs"] > asked["pruned"] && asked["pruned"] > asked["pruned+trans"]) {
		t.Fatalf("ask counts not ordered: %v", asked)
	}
	for name, v := range f1 {
		if v < 0.85 {
			t.Fatalf("%s F1 = %.3f", name, v)
		}
	}
	// Batching cuts task count below asked pairs.
	for i := range tbl.Rows {
		if tbl.Cell(i, "strategy") == "pruned+trans+batch10" {
			if cellF(t, tbl, i, "tasks") >= cellF(t, tbl, i, "pairs-asked") {
				t.Fatal("batching did not reduce task count")
			}
		}
	}
}

func TestF3ThresholdTradeoff(t *testing.T) {
	tbl, err := F3JoinThreshold(12)
	if err != nil {
		t.Fatal(err)
	}
	// Asked pairs shrink monotonically with the threshold.
	prev := cellF(t, tbl, 0, "asked")
	for i := 1; i < len(tbl.Rows); i++ {
		cur := cellF(t, tbl, i, "asked")
		if cur > prev {
			t.Fatalf("asked pairs rose with threshold at row %d", i)
		}
		prev = cur
	}
	// Recall at the loosest threshold beats recall at the tightest.
	if cellF(t, tbl, 0, "recall") <= cellF(t, tbl, len(tbl.Rows)-1, "recall") {
		t.Fatal("tight pruning should eventually cost recall")
	}
}

func TestF4TransitivityGrowsWithClusters(t *testing.T) {
	tbl, err := F4Transitivity(13)
	if err != nil {
		t.Fatal(err)
	}
	first := cellF(t, tbl, 0, "deduced-frac")
	last := cellF(t, tbl, len(tbl.Rows)-1, "deduced-frac")
	if first != 0 {
		t.Fatalf("singleton clusters deduced %.3f, want 0", first)
	}
	if last < 0.3 {
		t.Fatalf("size-8 clusters deduced only %.3f", last)
	}
}

func TestF5TopKShape(t *testing.T) {
	tbl, err := F5TopK(14)
	if err != nil {
		t.Fatal(err)
	}
	votes := map[string]float64{}
	tau := map[string]float64{}
	for i := range tbl.Rows {
		name := tbl.Cell(i, "strategy")
		votes[name] = cellF(t, tbl, i, "votes")
		if s := tbl.Cell(i, "tau"); s != "-" {
			tau[name] = cellF(t, tbl, i, "tau")
		}
	}
	if votes["tournament-max"] >= votes["all-pairs"] {
		t.Fatalf("tournament should be cheaper than all-pairs: %v", votes)
	}
	if votes["rating"] >= votes["all-pairs"] {
		t.Fatalf("rating should be cheaper than all-pairs: %v", votes)
	}
	if tau["all-pairs"] <= tau["rating"] {
		t.Fatalf("all-pairs tau %.3f should beat rating %.3f", tau["all-pairs"], tau["rating"])
	}
}

func TestF6CountErrorShrinks(t *testing.T) {
	tbl, err := F6Count(15)
	if err != nil {
		t.Fatal(err)
	}
	for _, col := range []string{"sel=0.1", "sel=0.3", "sel=0.5"} {
		small := cellF(t, tbl, 0, col)
		large := cellF(t, tbl, len(tbl.Rows)-1, col)
		if large >= small {
			t.Fatalf("%s: error did not shrink with samples (%.3f -> %.3f)", col, small, large)
		}
	}
}

func TestF7CollectSaturates(t *testing.T) {
	tbl, err := F7Collect(16)
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for i := range tbl.Rows {
		d := cellF(t, tbl, i, "distinct")
		if d < prev {
			t.Fatal("distinct counts not monotone")
		}
		prev = d
	}
	// Final Chao92 should be in the ballpark of the true domain.
	chao := cellF(t, tbl, len(tbl.Rows)-1, "chao92")
	if chao < prev || chao > 3*200 {
		t.Fatalf("final chao92 = %.1f (distinct %.0f, domain 200)", chao, prev)
	}
}

func TestF8FilterTradeoffs(t *testing.T) {
	tbl, err := F8Filter(17)
	if err != nil {
		t.Fatal(err)
	}
	cost := map[string]float64{}
	acc := map[string]float64{}
	for i := range tbl.Rows {
		name := tbl.Cell(i, "strategy")
		cost[name] = cellF(t, tbl, i, "votes/item")
		acc[name] = cellF(t, tbl, i, "accuracy")
	}
	if cost["early-m2-max7"] >= cost["fixed-7"] {
		t.Fatalf("early stop should undercut fixed-7: %v", cost)
	}
	if acc["fixed-7"] < acc["fixed-3"]-0.02 {
		t.Fatalf("more votes should not hurt: %v", acc)
	}
}

func TestF9LatencyShape(t *testing.T) {
	tbl, err := F9Latency(18)
	if err != nil {
		t.Fatal(err)
	}
	// Makespan grows with redundancy for plain rounds.
	var plain []float64
	byName := map[string][]int{}
	for i := range tbl.Rows {
		byName[tbl.Cell(i, "setting")] = append(byName[tbl.Cell(i, "setting")], i)
	}
	for _, i := range byName["rounds"] {
		plain = append(plain, cellF(t, tbl, i, "makespan(s)"))
	}
	if len(plain) != 3 || plain[2] <= plain[0] {
		t.Fatalf("round makespans not growing with k: %v", plain)
	}
	// Mitigation beats plain at the same redundancy.
	for idx := range byName["rounds"] {
		p := cellF(t, tbl, byName["rounds"][idx], "makespan(s)")
		m := cellF(t, tbl, byName["rounds+mitigation"][idx], "makespan(s)")
		if m >= p {
			t.Fatalf("mitigation %.1f >= plain %.1f at row %d", m, p, idx)
		}
	}
	// Async: higher arrival rate, lower makespan.
	lo := cellF(t, tbl, byName["async rate=0.05/s"][0], "makespan(s)")
	hi := cellF(t, tbl, byName["async rate=1.00/s"][0], "makespan(s)")
	if hi >= lo {
		t.Fatalf("async makespan did not drop with arrivals: %.1f vs %.1f", hi, lo)
	}
}

func TestT5OptimizerSavesCrowdWork(t *testing.T) {
	tbl, err := T5Optimizer(19)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	for i := range tbl.Rows {
		naive := cellF(t, tbl, i, "naive")
		opt := cellF(t, tbl, i, "optimized")
		if opt >= naive {
			t.Fatalf("query %s: optimized %v >= naive %v", tbl.Cell(i, "query"), opt, naive)
		}
	}
}

func TestRunAndRunAllSmoke(t *testing.T) {
	var buf bytes.Buffer
	tbl, err := Run("F4", 2, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.ID != "F4" || buf.Len() == 0 {
		t.Fatal("Run did not produce output")
	}
	if _, err := Run("nope", 2, nil); err == nil {
		t.Fatal("unknown experiment should fail")
	}
}

func TestA1MaxRedundancyMonotone(t *testing.T) {
	tbl, err := A1MaxRedundancy(20)
	if err != nil {
		t.Fatal(err)
	}
	// Cost grows linearly with k; winner rank should improve (shrink)
	// from k=1 to k=7.
	v1 := cellF(t, tbl, 0, "votes")
	v7 := cellF(t, tbl, len(tbl.Rows)-1, "votes")
	if v7 != 7*v1 {
		t.Fatalf("votes not linear in k: %v vs %v", v1, v7)
	}
	r1 := cellF(t, tbl, 0, "winner-rank")
	r7 := cellF(t, tbl, len(tbl.Rows)-1, "winner-rank")
	if r7 > r1 {
		t.Fatalf("winner rank worsened with redundancy: %v -> %v", r1, r7)
	}
}

func TestA2JoinBatchingShape(t *testing.T) {
	tbl, err := A2JoinBatching(21)
	if err != nil {
		t.Fatal(err)
	}
	// Tasks shrink ~1/batch; votes and F1 stay flat.
	t1 := cellF(t, tbl, 0, "tasks")
	tLast := cellF(t, tbl, len(tbl.Rows)-1, "tasks")
	if tLast >= t1/5 {
		t.Fatalf("batching did not shrink tasks: %v -> %v", t1, tLast)
	}
	v1 := cellF(t, tbl, 0, "votes")
	for i := 1; i < len(tbl.Rows); i++ {
		if cellF(t, tbl, i, "votes") != v1 {
			t.Fatal("votes should be independent of batch size")
		}
	}
}

func TestF10CategorizeShape(t *testing.T) {
	tbl, err := F10Categorize(22)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	get := func(taxPrefix, strategy, col string) float64 {
		for i := range tbl.Rows {
			if strings.HasPrefix(tbl.Cell(i, "taxonomy"), taxPrefix) &&
				tbl.Cell(i, "strategy") == strategy {
				return cellF(t, tbl, i, col)
			}
		}
		t.Fatalf("row %s/%s not found", taxPrefix, strategy)
		return 0
	}
	// Hierarchical asks more questions but wins accuracy on the wide-hard
	// taxonomy.
	if get("wide", "hierarchical", "accuracy") <= get("wide", "flat", "accuracy") {
		t.Fatalf("hierarchical should beat flat on wide-hard: %v vs %v",
			get("wide", "hierarchical", "accuracy"), get("wide", "flat", "accuracy"))
	}
	if get("wide", "hierarchical", "questions") <= get("wide", "flat", "questions") {
		t.Fatal("hierarchical should ask more questions per item")
	}
}

func TestA3PricingFrontier(t *testing.T) {
	tbl, err := A3Pricing(23)
	if err != nil {
		t.Fatal(err)
	}
	// Makespan monotone down, cost monotone up across the price sweep.
	for i := 1; i < len(tbl.Rows); i++ {
		if cellF(t, tbl, i, "makespan(s)") >= cellF(t, tbl, i-1, "makespan(s)") {
			t.Fatalf("makespan did not fall at row %d", i)
		}
		if cellF(t, tbl, i, "total-cost") <= cellF(t, tbl, i-1, "total-cost") {
			t.Fatalf("cost did not rise at row %d", i)
		}
	}
}
