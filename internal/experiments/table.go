// Package experiments implements the reproduction harness: one runnable
// experiment per table/figure in the DESIGN.md experiment index, each
// producing a printable Table of the same rows/series the survey
// literature reports. cmd/benchrunner runs them by id; bench_test.go wraps
// them as Go benchmarks.
package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Table is a printable experiment result: a title, a header row, data
// rows, and free-form notes (assumptions, parameters).
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a data row, formatting each cell with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Write renders the table as aligned ASCII.
func (t *Table) Write(w io.Writer) error {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	writeCells := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString(" | ")
			}
			b.WriteString(c)
			for p := len(c); p < widths[i]; p++ {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	writeCells(t.Header)
	total := 0
	for _, wd := range widths {
		total += wd + 3
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeCells(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

// Cell returns the table cell at (row, col header name), or "" when
// missing — a convenience for tests asserting on results.
func (t *Table) Cell(row int, header string) string {
	col := -1
	for i, h := range t.Header {
		if h == header {
			col = i
			break
		}
	}
	if col < 0 || row < 0 || row >= len(t.Rows) || col >= len(t.Rows[row]) {
		return ""
	}
	return t.Rows[row][col]
}
