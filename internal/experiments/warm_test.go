package experiments

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/crowd"
	"repro/internal/stats"
	"repro/internal/truth"
)

// TestWarmStartMatchesColdStart is the numerical contract behind the
// serving layer's warm-started inference: on the experiment suite's crowd
// regimes, EM seeded from a previous converged state must reach the same
// fixed point as a cold start over the grown answer set — identical hard
// labels, posteriors within 1e-9 L-infinity. Both runs use a tight
// tolerance so the comparison measures the fixed point, not the residual
// of an early stop.
func TestWarmStartMatchesColdStart(t *testing.T) {
	const tol = 1e-12
	regimes := []struct {
		name string
		mix  crowd.Mix
	}{
		{"reliable", crowd.RegimeReliable},
		{"mixed", crowd.RegimeMixed},
		{"spammy", crowd.RegimeSpammy},
	}
	type method struct {
		name string
		make func(warm *truth.WarmState) truth.Inferrer
	}
	methods := []method{
		{"onecoin", func(w *truth.WarmState) truth.Inferrer {
			return truth.OneCoinEM{MaxIter: 5000, Tol: tol, Warm: w}
		}},
		{"ds", func(w *truth.WarmState) truth.Inferrer {
			return truth.DawidSkene{MaxIter: 5000, Tol: tol, Warm: w}
		}},
		{"glad", func(w *truth.WarmState) truth.Inferrer {
			return truth.GLAD{MaxIter: 5000, Tol: tol, Warm: w}
		}},
	}

	for ri, rg := range regimes {
		rng := stats.NewRNG(100 + uint64(ri))
		pool := labelingPool(rng, 150)
		ws := crowd.NewPopulation(rng, 40, rg.mix)
		// Phase 1: redundancy 3, the snapshot a serving cache would hold.
		if err := collectRedundant(pool, ws, 3); err != nil {
			t.Fatal(err)
		}
		ds1, err := truth.FromPool(pool, pool.TaskIDs())
		if err != nil {
			t.Fatal(err)
		}
		// Phase 2: answers keep streaming in (redundancy 5).
		if err := collectRedundant(pool, ws, 5); err != nil {
			t.Fatal(err)
		}
		ds2, err := truth.FromPool(pool, pool.TaskIDs())
		if err != nil {
			t.Fatal(err)
		}

		for _, m := range methods {
			t.Run(fmt.Sprintf("%s/%s", rg.name, m.name), func(t *testing.T) {
				prev, err := m.make(nil).Infer(ds1)
				if err != nil {
					t.Fatal(err)
				}
				if prev.Warm == nil {
					t.Fatal("iterative Infer did not produce a warm state")
				}
				cold, err := m.make(nil).Infer(ds2)
				if err != nil {
					t.Fatal(err)
				}
				warm, err := m.make(prev.Warm).Infer(ds2)
				if err != nil {
					t.Fatal(err)
				}
				if warm.Iterations > cold.Iterations {
					t.Errorf("warm start took more iterations than cold (%d > %d)",
						warm.Iterations, cold.Iterations)
				}
				linf := 0.0
				for _, id := range ds2.TaskIDs {
					if warm.Labels[id] != cold.Labels[id] {
						t.Fatalf("task %d: warm label %d != cold label %d",
							id, warm.Labels[id], cold.Labels[id])
					}
					pw, pc := warm.Posterior[id], cold.Posterior[id]
					for c := range pw {
						if d := math.Abs(pw[c] - pc[c]); d > linf {
							linf = d
						}
					}
				}
				if linf > 1e-9 {
					t.Fatalf("posterior L-inf divergence %.3g > 1e-9", linf)
				}
			})
		}
	}
}
