package experiments

import (
	"fmt"

	"repro/internal/latency"
	"repro/internal/stats"
)

// F9Latency measures the round model: makespan vs redundancy, with and
// without straggler mitigation, plus the asynchronous arrival-rate sweep.
func F9Latency(seed uint64) (*Table, error) {
	tbl := &Table{
		ID:     "F9",
		Title:  "Latency: makespan vs redundancy; straggler mitigation; arrivals",
		Header: []string{"setting", "redundancy", "rounds", "makespan(s)", "extra-answers"},
		Notes: []string{
			"500 tasks, 100 workers/round, log-normal latency median 12s sigma 1.4; mean of 5 seeds",
			"async rows: Poisson arrivals, session length 20 tasks",
			fmt.Sprintf("seed %d", seed),
		},
	}
	heavy := latency.LogNormalLatency(12, 1.4)
	const reps = 5
	for _, k := range []int{1, 3, 5} {
		for _, mitigate := range []bool{false, true} {
			var rounds, makespan, extra float64
			for rep := uint64(0); rep < reps; rep++ {
				cfg := latency.RoundConfig{
					Tasks: 500, Workers: 100, Redundancy: k, Latency: heavy,
				}
				if mitigate {
					cfg.MitigateAfter = 0.85
				}
				res, err := latency.SimulateRounds(stats.NewRNG(seed+rep*7), cfg)
				if err != nil {
					return nil, err
				}
				rounds += float64(res.Rounds)
				makespan += res.Makespan
				extra += float64(res.TotalAnswers - 500*k)
			}
			name := "rounds"
			if mitigate {
				name = "rounds+mitigation"
			}
			tbl.AddRow(name, k, rounds/reps, makespan/reps, extra/reps)
		}
	}
	// Asynchronous completion vs worker arrival rate.
	for _, rate := range []float64{0.05, 0.2, 1.0} {
		var makespan float64
		for rep := uint64(0); rep < reps; rep++ {
			res, err := latency.SimulateAsync(stats.NewRNG(seed+rep*11), latency.AsyncConfig{
				Tasks: 500, Redundancy: 3, ArrivalRate: rate,
				SessionTasks: 20, Latency: heavy,
			})
			if err != nil {
				return nil, err
			}
			makespan += res.Makespan
		}
		tbl.AddRow(fmt.Sprintf("async rate=%.2f/s", rate), 3, "-", makespan/reps, 0)
	}
	return tbl, nil
}
