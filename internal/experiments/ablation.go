package experiments

import (
	"fmt"

	"repro/internal/cost"
	"repro/internal/crowd"
	"repro/internal/datagen"
	"repro/internal/latency"
	"repro/internal/operators"
	"repro/internal/stats"
)

// A1MaxRedundancy ablates the per-comparison redundancy of the
// tournament-max operator: more votes per match cost linearly more and
// push the winner's true rank toward 1.
func A1MaxRedundancy(seed uint64) (*Table, error) {
	tbl := &Table{
		ID:     "A1",
		Title:  "Ablation: tournament-max redundancy per match",
		Header: []string{"redundancy", "votes", "winner-rank"},
		Notes: []string{
			"60 items, mixed crowd; mean over 5 seeds",
			fmt.Sprintf("seed %d", seed),
		},
	}
	const n = 60
	const reps = 5
	for _, k := range []int{1, 3, 5, 7} {
		var votes, rank float64
		for rep := uint64(0); rep < reps; rep++ {
			rng := stats.NewRNG(seed + rep)
			d, err := datagen.NewRankingDataset(rng, n)
			if err != nil {
				return nil, err
			}
			actual := d.TrueRanking()
			crng := stats.NewRNG(seed*17 + rep)
			ws := crowd.NewPopulation(crng, 80, crowd.RegimeMixed)
			runner := operators.NewRunner(crowd.AsCoreWorkers(ws), nil, crng.Split())
			res, err := operators.MaxTournament(runner, n, rankingOracle{d}, k)
			if err != nil {
				return nil, err
			}
			votes += float64(res.VotesUsed)
			for r, item := range actual {
				if item == res.Winner {
					rank += float64(r + 1)
					break
				}
			}
		}
		tbl.AddRow(k, votes/reps, rank/reps)
	}
	return tbl, nil
}

// A2JoinBatching ablates the batching factor of the crowd join: HIT count
// falls as 1/batch while votes (and quality) stay constant — batching
// trades per-task overhead, not answers.
func A2JoinBatching(seed uint64) (*Table, error) {
	tbl := &Table{
		ID:     "A2",
		Title:  "Ablation: crowd-join batch size",
		Header: []string{"batch", "pairs-asked", "tasks", "votes", "F1"},
		Notes: []string{
			"ER catalog: 100 entities; pruning 0.3 + transitivity; redundancy 3",
			fmt.Sprintf("seed %d", seed),
		},
	}
	for _, batch := range []int{1, 5, 10, 20, 50} {
		d, runner, err := joinWorkload(seed, 100)
		if err != nil {
			return nil, err
		}
		res, err := operators.Join(runner, d.Records, operators.JoinConfig{
			PruneLow: 0.3, AutoHigh: 2, Redundancy: 3,
			UseTransitivity: true, BatchSize: batch,
		}, func(i int) int { return d.Entity[i] })
		if err != nil {
			return nil, err
		}
		prf := cost.EvaluatePairs(res.Matches, truePairs(d), true)
		tbl.AddRow(batch, res.AskedPairs, res.TaskCount, res.VotesUsed, prf.F1)
	}
	return tbl, nil
}

// F10Categorize compares flat wide-choice categorization against
// hierarchical taxonomy walks on cost and accuracy, for narrow-easy and
// wide-hard taxonomies.
func F10Categorize(seed uint64) (*Table, error) {
	tbl := &Table{
		ID:     "F10",
		Title:  "Crowd categorization: flat vs hierarchical",
		Header: []string{"taxonomy", "strategy", "questions", "votes", "accuracy"},
		Notes: []string{
			"120 items, mixed crowd, redundancy 3; mean over 3 seeds",
			fmt.Sprintf("seed %d", seed),
		},
	}
	taxonomies := []struct {
		name string
		tax  *operators.Taxonomy
		diff float64
	}{
		{"narrow-easy (3x3, d=0.15)", narrowTaxonomy(), 0.15},
		{"wide-hard (5x5, d=0.5)", wideTaxonomy(), 0.5},
	}
	const nItems = 120
	const reps = 3
	for _, tc := range taxonomies {
		leaves := tc.tax.Leaves()
		for _, strategy := range []string{"flat", "hierarchical"} {
			var questions, votes, acc float64
			for rep := uint64(0); rep < reps; rep++ {
				rng := stats.NewRNG(seed + rep*7)
				items := make([]operators.CategorizeItem, nItems)
				for i := range items {
					leaf := leaves[rng.Intn(len(leaves))]
					items[i] = operators.CategorizeItem{
						Question: "item of type " + leaf, TruthLeaf: leaf,
						Difficulty: tc.diff,
					}
				}
				crng := stats.NewRNG(seed*13 + rep)
				ws := crowd.NewPopulation(crng, 60, crowd.RegimeMixed)
				runner := operators.NewRunner(crowd.AsCoreWorkers(ws), nil, crng.Split())
				var res *operators.CategorizeResult
				var err error
				if strategy == "flat" {
					res, err = operators.CategorizeFlat(runner, items, tc.tax, 3)
				} else {
					res, err = operators.CategorizeHierarchical(runner, items, tc.tax, 3)
				}
				if err != nil {
					return nil, err
				}
				questions += float64(res.QuestionsAsked)
				votes += float64(res.VotesUsed)
				acc += res.Accuracy(items)
			}
			tbl.AddRow(tc.name, strategy, questions/reps, votes/reps, acc/reps)
		}
	}
	return tbl, nil
}

func narrowTaxonomy() *operators.Taxonomy {
	root := &operators.Taxonomy{Name: "root"}
	for g := 0; g < 3; g++ {
		group := &operators.Taxonomy{Name: fmt.Sprintf("g%d", g)}
		for l := 0; l < 3; l++ {
			group.Children = append(group.Children,
				&operators.Taxonomy{Name: fmt.Sprintf("g%d-l%d", g, l)})
		}
		root.Children = append(root.Children, group)
	}
	return root
}

func wideTaxonomy() *operators.Taxonomy {
	root := &operators.Taxonomy{Name: "root"}
	for g := 0; g < 5; g++ {
		group := &operators.Taxonomy{Name: fmt.Sprintf("w%d", g)}
		for l := 0; l < 5; l++ {
			group.Children = append(group.Children,
				&operators.Taxonomy{Name: fmt.Sprintf("w%d-l%d", g, l)})
		}
		root.Children = append(root.Children, group)
	}
	return root
}

// A3Pricing sweeps the per-task reward through the pricing–latency model:
// higher pay draws workers faster (superlinear supply response), cutting
// makespan while total spend rises — the "pay more, wait less" frontier
// of latency control.
func A3Pricing(seed uint64) (*Table, error) {
	tbl := &Table{
		ID:     "A3",
		Title:  "Pricing vs latency: the pay-more-wait-less frontier",
		Header: []string{"price", "arrival-rate", "makespan(s)", "total-cost"},
		Notes: []string{
			"300 tasks, redundancy 3; supply model rate = 0.1·(price/0.05)^1.5; mean of 3 seeds",
			fmt.Sprintf("seed %d", seed),
		},
	}
	model := latency.PricingModel{BaseRate: 0.1, ReferencePrice: 0.05, Elasticity: 1.5}
	cfg := latency.AsyncConfig{
		Tasks: 300, Redundancy: 3, SessionTasks: 15,
		Latency: latency.LogNormalLatency(12, 1.0),
	}
	prices := []float64{0.02, 0.05, 0.10, 0.20, 0.40}
	const reps = 3
	sums := make([]latency.PriceLatencyPoint, len(prices))
	for rep := uint64(0); rep < reps; rep++ {
		points, err := latency.PriceSweep(stats.NewRNG(seed+rep*3), model, cfg, prices)
		if err != nil {
			return nil, err
		}
		for i, p := range points {
			sums[i].Price = p.Price
			sums[i].ArrivalRate = p.ArrivalRate
			sums[i].Makespan += p.Makespan
			sums[i].TotalCost += p.TotalCost
		}
	}
	for _, p := range sums {
		tbl.AddRow(p.Price, p.ArrivalRate, p.Makespan/reps, p.TotalCost/reps)
	}
	return tbl, nil
}
