package experiments

import (
	"fmt"
	"io"
	"sort"
)

// Runner is one experiment entry point: given a seed, produce the result
// table.
type Runner func(seed uint64) (*Table, error)

// registry maps experiment ids (as used in DESIGN.md / EXPERIMENTS.md) to
// their runners.
var registry = map[string]Runner{
	"T1":  T1Systems,
	"T2":  T2TruthInference,
	"T3":  T3Elimination,
	"T4":  T4Join,
	"T5":  T5Optimizer,
	"F1":  F1Redundancy,
	"F2":  F2Assignment,
	"F3":  F3JoinThreshold,
	"F4":  F4Transitivity,
	"F5":  F5TopK,
	"F6":  F6Count,
	"F7":  F7Collect,
	"F8":  F8Filter,
	"F9":  F9Latency,
	"F10": F10Categorize,
	"A1":  A1MaxRedundancy,
	"A2":  A2JoinBatching,
	"A3":  A3Pricing,
}

// IDs returns all experiment ids, sorted.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Get returns the runner for an experiment id.
func Get(id string) (Runner, error) {
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", id, IDs())
	}
	return r, nil
}

// Run executes one experiment and writes its table to w.
func Run(id string, seed uint64, w io.Writer) (*Table, error) {
	r, err := Get(id)
	if err != nil {
		return nil, err
	}
	tbl, err := r(seed)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s: %w", id, err)
	}
	if w != nil {
		if err := tbl.Write(w); err != nil {
			return nil, err
		}
	}
	return tbl, nil
}

// RunAll executes every experiment in id order.
func RunAll(seed uint64, w io.Writer) error {
	for _, id := range IDs() {
		if _, err := Run(id, seed, w); err != nil {
			return err
		}
	}
	return nil
}
