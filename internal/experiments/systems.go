package experiments

import (
	"fmt"
	"strings"

	"repro/internal/cql"
	"repro/internal/crowd"
	"repro/internal/model"
	"repro/internal/operators"
	"repro/internal/stats"
)

// T1Systems reproduces the survey's qualitative comparison of declarative
// crowdsourcing systems, with crowdkit (this reproduction) appended. The
// capability rows mirror the dimensions the tutorial compares systems on;
// the crowdkit column is derived from the features this repository
// actually implements (and is exercised by the CQL test suite).
func T1Systems(seed uint64) (*Table, error) {
	tbl := &Table{
		ID:     "T1",
		Title:  "Declarative crowdsourcing systems: capability matrix",
		Header: []string{"capability", "CrowdDB", "Qurk", "Deco", "CDB", "crowdkit"},
		Notes: []string{
			"Literature columns follow the survey's systems comparison; crowdkit column reflects this implementation",
		},
	}
	rows := [][]string{
		{"SQL-like declarative language", "yes", "yes", "yes", "yes", "yes"},
		{"crowd columns (missing values)", "yes", "no", "yes", "yes", "yes"},
		{"crowd tables (open world)", "yes", "no", "yes", "no", "yes"},
		{"crowd-powered selection/filter", "yes", "yes", "yes", "yes", "yes"},
		{"crowd-powered join (ER)", "yes", "yes", "yes", "yes", "yes"},
		{"crowd-powered sort/top-k", "yes", "yes", "no", "yes", "yes"},
		{"crowd-powered aggregation", "limited", "limited", "no", "yes", "yes"},
		{"truth inference beyond voting", "no", "no", "no", "yes", "yes"},
		{"task assignment control", "no", "no", "no", "yes", "yes"},
		{"cost-based crowd optimizer", "rule", "rule", "cost", "cost", "rule"},
		{"answer deduction (transitivity)", "no", "no", "no", "yes", "yes"},
		{"latency modeling", "no", "no", "no", "yes", "yes"},
	}
	for _, r := range rows {
		cells := make([]any, len(r))
		for i, c := range r {
			cells[i] = c
		}
		tbl.AddRow(cells...)
	}
	return tbl, nil
}

// optimizerWorkload builds a crowd session with planted data and oracles.
func optimizerWorkload(seed uint64, optimize bool) (*cql.Session, error) {
	rng := stats.NewRNG(seed)
	ws := crowd.NewPopulation(rng, 60, crowd.RegimeReliable)
	runner := operators.NewRunner(crowd.AsCoreWorkers(ws), nil, rng)
	s := cql.NewSession(cql.NewCatalog(), runner, rng.Split())
	s.Optimize = optimize

	ddl := []string{
		`CREATE TABLE products (id INT, price INT, brand STRING, specs STRING CROWD, origin STRING CROWD)`,
		`CREATE TABLE suppliers (id INT, company STRING)`,
	}
	for _, q := range ddl {
		if _, err := s.Execute(q); err != nil {
			return nil, err
		}
	}
	var sb strings.Builder
	sb.WriteString(`INSERT INTO products VALUES `)
	for i := 0; i < 80; i++ {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "(%d, %d, 'brand %d', NULL, NULL)", i, i%40, i%8)
	}
	if _, err := s.Execute(sb.String()); err != nil {
		return nil, err
	}
	var sb2 strings.Builder
	sb2.WriteString(`INSERT INTO suppliers VALUES `)
	for i := 0; i < 8; i++ {
		if i > 0 {
			sb2.WriteString(", ")
		}
		fmt.Fprintf(&sb2, "(%d, 'company %d')", i, i)
	}
	if _, err := s.Execute(sb2.String()); err != nil {
		return nil, err
	}
	s.Oracle = &cql.SimOracle{
		Fill: func(table, column string, row model.Tuple, schema *model.Schema) (string, bool) {
			id, _ := row[schema.ColumnIndex("id")], true
			return fmt.Sprintf("%s-%d", column, id.AsInt()), true
		},
		Equal: func(value, literal string) bool { return value == literal },
		Filter: func(q string, v model.Value) bool {
			return strings.HasSuffix(v.AsString(), "0")
		},
	}
	return s, nil
}

// T5Optimizer ablates the crowd-aware optimizer: crowd answers consumed
// by three queries with the optimizer on vs off.
func T5Optimizer(seed uint64) (*Table, error) {
	tbl := &Table{
		ID:     "T5",
		Title:  "CQL optimizer ablation: crowd answers per query",
		Header: []string{"query", "naive", "optimized", "saving"},
		Notes: []string{
			"80-row products table with two CROWD columns (all NULL); redundancy 3; reliable crowd",
			fmt.Sprintf("seed %d", seed),
		},
	}
	queries := []struct {
		name string
		sql  string
	}{
		{
			"selective machine pred + crowd equal",
			`SELECT id FROM products WHERE price < 5 AND brand ~= 'brand 3'`,
		},
		{
			"machine pred + one crowd column fill",
			`SELECT specs FROM products WHERE price < 10`,
		},
		{
			"crowd filter on machine-filtered rows",
			`SELECT id FROM products WHERE price < 8 AND CROWDFILTER('ends in zero?', brand)`,
		},
	}
	tbl.Notes = append(tbl.Notes,
		"row counts may differ slightly between plans: the naive plan asks many more crowd questions and so accumulates more answer noise")
	for _, q := range queries {
		costs := map[bool]int{}
		for _, optimize := range []bool{false, true} {
			s, err := optimizerWorkload(seed, optimize)
			if err != nil {
				return nil, err
			}
			if _, err := s.Execute(q.sql); err != nil {
				return nil, err
			}
			costs[optimize] = s.Stats.CrowdAnswers
		}
		saving := 0.0
		if costs[false] > 0 {
			saving = 1 - float64(costs[true])/float64(costs[false])
		}
		tbl.AddRow(q.name, costs[false], costs[true], saving)
	}
	return tbl, nil
}
