package experiments

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/assign"
	"repro/internal/core"
	"repro/internal/crowd"
	"repro/internal/stats"
	"repro/internal/truth"
)

// balancedAssigner keeps redundancy even across open tasks.
var balancedAssigner core.Assigner = assign.FewestAnswers{}

// labelingPool plants nTasks binary labeling tasks with Beta(2,5)
// difficulties.
func labelingPool(rng *stats.RNG, nTasks int) *core.Pool {
	pool := core.NewPool()
	for i := 0; i < nTasks; i++ {
		pool.MustAdd(&core.Task{
			ID: core.TaskID(i + 1), Kind: core.SingleChoice,
			Options:     []string{"no", "yes"},
			GroundTruth: rng.Intn(2),
			Difficulty:  rng.Beta(2, 5),
		})
	}
	return pool
}

// collectRedundant gathers k answers per task from the population.
func collectRedundant(pool *core.Pool, ws []*crowd.Worker, k int) error {
	pl := core.NewPlatform(pool, crowd.AsCoreWorkers(ws), core.Unlimited())
	_, err := pl.CollectRedundant(balancedAssigner, k)
	return err
}

// inferrers is the method lineup used by the truth-inference experiments.
func inferrers() []truth.Inferrer {
	return []truth.Inferrer{
		truth.MajorityVote{},
		truth.OneCoinEM{},
		truth.DawidSkene{},
		truth.GLAD{},
	}
}

// trueWorkerAccuracy computes a worker's actual expected accuracy over
// the pool's tasks (the oracle against which estimated quality is scored).
func trueWorkerAccuracy(w *crowd.Worker, pool *core.Pool) float64 {
	total, sum := 0, 0.0
	for _, id := range pool.TaskIDs() {
		t := pool.Task(id)
		switch w.Behave {
		case crowd.Spammer:
			sum += 1 / float64(len(t.Options))
		case crowd.Adversary:
			sum += 0
		default:
			sum += w.CorrectProb(t.Difficulty)
		}
		total++
	}
	if total == 0 {
		return 0
	}
	return sum / float64(total)
}

// T2TruthInference compares inference methods across crowd-quality
// regimes: label accuracy and worker-quality estimation error.
func T2TruthInference(seed uint64) (*Table, error) {
	tbl := &Table{
		ID:     "T2",
		Title:  "Truth inference: accuracy and worker-quality error by regime",
		Header: []string{"regime", "method", "accuracy", "worker-MAE", "iterations"},
		Notes: []string{
			"1000 binary tasks, 50 workers, redundancy 5, difficulty ~ Beta(2,5)",
			fmt.Sprintf("seed %d", seed),
		},
	}
	for _, regime := range []string{"reliable", "mixed", "spammy"} {
		mix, err := crowd.RegimeByName(regime)
		if err != nil {
			return nil, err
		}
		rng := stats.NewRNG(seed)
		pool := labelingPool(rng, 1000)
		ws := crowd.NewPopulation(rng, 50, mix)
		if err := collectRedundant(pool, ws, 5); err != nil {
			return nil, err
		}
		ds, err := truth.FromPool(pool, pool.TaskIDs())
		if err != nil {
			return nil, err
		}
		trueAcc := make(map[string]float64, len(ws))
		for _, w := range ws {
			trueAcc[w.Name] = trueWorkerAccuracy(w, pool)
		}
		for _, inf := range inferrers() {
			res, err := inf.Infer(ds)
			if err != nil {
				return nil, err
			}
			acc := truth.Accuracy(res, pool, ds)
			mae, n := 0.0, 0
			for _, w := range ds.WorkerIDs {
				if ta, ok := trueAcc[w]; ok {
					mae += math.Abs(res.WorkerQuality[w] - ta)
					n++
				}
			}
			if n > 0 {
				mae /= float64(n)
			}
			tbl.AddRow(regime, inf.Name(), acc, mae, res.Iterations)
		}
	}
	return tbl, nil
}

// F1Redundancy sweeps the answers-per-task budget: accuracy vs k for each
// method on the mixed regime.
func F1Redundancy(seed uint64) (*Table, error) {
	tbl := &Table{
		ID:     "F1",
		Title:  "Accuracy vs redundancy k (mixed crowd)",
		Header: []string{"k", "MV", "OneCoinEM", "DS", "GLAD"},
		Notes: []string{
			"500 binary tasks, 40 workers, mixed regime",
			fmt.Sprintf("seed %d", seed),
		},
	}
	for _, k := range []int{1, 3, 5, 7, 9} {
		rng := stats.NewRNG(seed)
		pool := labelingPool(rng, 500)
		ws := crowd.NewPopulation(rng, 40, crowd.RegimeMixed)
		if err := collectRedundant(pool, ws, k); err != nil {
			return nil, err
		}
		ds, err := truth.FromPool(pool, pool.TaskIDs())
		if err != nil {
			return nil, err
		}
		row := []any{k}
		for _, inf := range inferrers() {
			res, err := inf.Infer(ds)
			if err != nil {
				return nil, err
			}
			row = append(row, truth.Accuracy(res, pool, ds))
		}
		tbl.AddRow(row...)
	}
	return tbl, nil
}

// F2Assignment sweeps the total answer budget and compares assignment
// policies by final inferred accuracy (OneCoinEM aggregation).
func F2Assignment(seed uint64) (*Table, error) {
	tbl := &Table{
		ID:     "F2",
		Title:  "Assignment policy: accuracy vs budget (answers per task)",
		Header: []string{"budget/task", "random", "fewest", "entropy", "qasca"},
		Notes: []string{
			"200 binary tasks (half hard), 30 workers, mixed regime; OneCoinEM aggregation; mean of 3 seeds",
			fmt.Sprintf("seed %d", seed),
		},
	}
	const nTasks = 200
	run := func(seed uint64, factory func(*stats.RNG) core.Assigner, budget float64) (float64, error) {
		rng := stats.NewRNG(seed)
		pool := core.NewPool()
		for i := 0; i < nTasks; i++ {
			d := 0.1
			if i%2 == 0 {
				d = 0.8
			}
			pool.MustAdd(&core.Task{
				ID: core.TaskID(i + 1), Kind: core.SingleChoice,
				Options: []string{"no", "yes"}, GroundTruth: rng.Intn(2),
				Difficulty: d,
			})
		}
		ws := crowd.NewPopulation(rng, 30, crowd.RegimeMixed)
		pl := core.NewPlatform(pool, crowd.AsCoreWorkers(ws), core.NewBudget(budget))
		if _, err := pl.CollectBudget(factory(rng)); err != nil && !errors.Is(err, core.ErrBudgetExhausted) {
			return 0, err
		}
		ds, err := truth.FromPool(pool, pool.TaskIDs())
		if err != nil {
			return 0, err
		}
		res, err := truth.OneCoinEM{}.Infer(ds)
		if err != nil {
			return 0, err
		}
		return truth.Accuracy(res, pool, ds), nil
	}
	policies := []struct {
		name    string
		factory func(*stats.RNG) core.Assigner
	}{
		{"random", func(rng *stats.RNG) core.Assigner { return &assign.Random{RNG: rng.Split()} }},
		{"fewest", func(*stats.RNG) core.Assigner { return assign.FewestAnswers{} }},
		{"entropy", func(*stats.RNG) core.Assigner { return assign.Uncertainty{} }},
		{"qasca", func(*stats.RNG) core.Assigner { return &assign.QASCA{Quality: assign.ConstantQuality(0.75)} }},
	}
	for _, mult := range []int{1, 2, 3, 4, 6} {
		row := []any{mult}
		for _, p := range policies {
			sum := 0.0
			const reps = 3
			for r := uint64(0); r < reps; r++ {
				acc, err := run(seed+r, p.factory, float64(mult*nTasks))
				if err != nil {
					return nil, err
				}
				sum += acc
			}
			row = append(row, sum/reps)
		}
		tbl.AddRow(row...)
	}
	return tbl, nil
}

// T3Elimination measures golden-task worker screening in a spam-heavy
// crowd: accuracy and the share of answers wasted on eliminated workers,
// as the golden-task fraction grows.
func T3Elimination(seed uint64) (*Table, error) {
	tbl := &Table{
		ID:     "T3",
		Title:  "Golden-task worker elimination (spammy crowd)",
		Header: []string{"golden%", "eliminated", "accuracy", "answers"},
		Notes: []string{
			"400 binary tasks, 40 workers, spammy regime, redundancy 5; screen: min 3 goldens, min accuracy 0.6",
			fmt.Sprintf("seed %d", seed),
		},
	}
	for _, goldenPct := range []int{0, 5, 10, 20} {
		// Independent streams so every golden level sees the *same* crowd
		// and the same non-golden tasks; only the golden budget varies.
		taskRng := stats.NewRNG(seed)
		crowdRng := stats.NewRNG(seed ^ 0x9e3779b97f4a7c15)
		pool := core.NewPool()
		const nTasks = 400
		nGolden := nTasks * goldenPct / 100
		// Golden tasks first (deliberately easy), then the real workload.
		for i := 0; i < nGolden; i++ {
			pool.MustAdd(&core.Task{
				ID: core.TaskID(i + 1), Kind: core.SingleChoice,
				Options:     []string{"no", "yes"},
				GroundTruth: i % 2,
				Difficulty:  0.05,
				Golden:      true,
			})
		}
		for i := 0; i < nTasks; i++ {
			pool.MustAdd(&core.Task{
				ID: core.TaskID(nGolden + i + 1), Kind: core.SingleChoice,
				Options:     []string{"no", "yes"},
				GroundTruth: taskRng.Intn(2),
				Difficulty:  taskRng.Beta(2, 5),
			})
		}
		ws := crowd.NewPopulation(crowdRng, 40, crowd.RegimeSpammy)
		pl := core.NewPlatform(pool, crowd.AsCoreWorkers(ws), core.Unlimited())
		if goldenPct > 0 {
			pl.Screen = core.NewWorkerScreen(3, 0.6)
		}
		res, err := pl.CollectRedundant(balancedAssigner, 5)
		if err != nil {
			return nil, err
		}
		// Score only the non-golden tasks.
		var ids []core.TaskID
		for _, id := range pool.TaskIDs() {
			if !pool.Task(id).Golden {
				ids = append(ids, id)
			}
		}
		ds, err := truth.FromPool(pool, ids)
		if err != nil {
			return nil, err
		}
		inf, err := truth.MajorityVote{}.Infer(ds)
		if err != nil {
			return nil, err
		}
		eliminated := 0
		if pl.Screen != nil {
			eliminated = len(pl.Screen.EliminatedWorkers())
		}
		tbl.AddRow(goldenPct, eliminated, truth.Accuracy(inf, pool, ds), res.AnswersCollected)
	}
	return tbl, nil
}
