package experiments

import (
	"fmt"
	"math"

	"repro/internal/crowd"
	"repro/internal/datagen"
	"repro/internal/operators"
	"repro/internal/stats"
)

type rankingOracle struct{ d *datagen.RankingDataset }

func (o rankingOracle) Truth(i, j int) (bool, float64) {
	return o.d.Better(i, j), o.d.PairDifficulty(i, j)
}

func (o rankingOracle) Label(i int) string { return o.d.Items[i] }

// F5TopK compares max/sort strategies on cost (votes) and quality: the
// mean true rank of the returned winner (1 = perfect; close latent scores
// make exact max identification near-impossible at low redundancy, so a
// graded metric is fairer than a hit rate), Kendall tau, and precision@10.
func F5TopK(seed uint64) (*Table, error) {
	tbl := &Table{
		ID:     "F5",
		Title:  "Max / sort / top-k strategies: cost vs quality",
		Header: []string{"strategy", "votes", "winner-rank", "tau", "P@10"},
		Notes: []string{
			"60 items, latent scores U[0,10); mixed crowd; redundancy 3 (ratings 5); mean of 3 seeds",
			fmt.Sprintf("seed %d", seed),
		},
	}
	const n = 60
	const reps = 3
	type acc struct {
		votes, winnerRank, tau, p10 float64
	}
	results := map[string]*acc{}
	order := []string{"tournament-max", "all-pairs", "binary-insertion", "rating", "hybrid"}
	for _, name := range order {
		results[name] = &acc{}
	}
	for rep := uint64(0); rep < reps; rep++ {
		rng := stats.NewRNG(seed + rep)
		d, err := datagen.NewRankingDataset(rng, n)
		if err != nil {
			return nil, err
		}
		oracle := rankingOracle{d}
		actual := d.TrueRanking()
		rankOf := func(item int) int {
			for r, it := range actual {
				if it == item {
					return r
				}
			}
			return len(actual)
		}
		newRunner := func() *operators.Runner {
			r2 := stats.NewRNG(seed*31 + rep)
			ws := crowd.NewPopulation(r2, 80, crowd.RegimeMixed)
			return operators.NewRunner(crowd.AsCoreWorkers(ws), nil, r2.Split())
		}

		// Tournament max.
		r := newRunner()
		mx, err := operators.MaxTournament(r, n, oracle, 3)
		if err != nil {
			return nil, err
		}
		results["tournament-max"].votes += float64(mx.VotesUsed)
		results["tournament-max"].winnerRank += float64(rankOf(mx.Winner) + 1)

		// All-pairs sort.
		r = newRunner()
		ap, err := operators.AllPairsSort(r, n, oracle, 3)
		if err != nil {
			return nil, err
		}
		tau, err := operators.KendallTau(ap.Ranking, actual)
		if err != nil {
			return nil, err
		}
		results["all-pairs"].votes += float64(ap.VotesUsed)
		results["all-pairs"].tau += tau
		results["all-pairs"].p10 += operators.PrecisionAtK(ap.Ranking, actual, 10)
		results["all-pairs"].winnerRank += float64(rankOf(ap.Ranking[0]) + 1)

		// Binary insertion sort (O(n log n) comparisons).
		r = newRunner()
		bi, err := operators.BinaryInsertionSort(r, n, oracle, 3)
		if err != nil {
			return nil, err
		}
		tau, err = operators.KendallTau(bi.Ranking, actual)
		if err != nil {
			return nil, err
		}
		results["binary-insertion"].votes += float64(bi.VotesUsed)
		results["binary-insertion"].tau += tau
		results["binary-insertion"].p10 += operators.PrecisionAtK(bi.Ranking, actual, 10)
		results["binary-insertion"].winnerRank += float64(rankOf(bi.Ranking[0]) + 1)

		// Rating sort.
		r = newRunner()
		rt, err := operators.RatingSort(r, n, oracle, func(i int) float64 { return d.Scores[i] }, 5)
		if err != nil {
			return nil, err
		}
		tau, err = operators.KendallTau(rt.Ranking, actual)
		if err != nil {
			return nil, err
		}
		results["rating"].votes += float64(rt.VotesUsed)
		results["rating"].tau += tau
		results["rating"].p10 += operators.PrecisionAtK(rt.Ranking, actual, 10)
		results["rating"].winnerRank += float64(rankOf(rt.Ranking[0]) + 1)

		// Hybrid.
		r = newRunner()
		hy, err := operators.HybridSort(r, n, oracle, func(i int) float64 { return d.Scores[i] }, 3, 3, 15)
		if err != nil {
			return nil, err
		}
		tau, err = operators.KendallTau(hy.Ranking, actual)
		if err != nil {
			return nil, err
		}
		results["hybrid"].votes += float64(hy.VotesUsed)
		results["hybrid"].tau += tau
		results["hybrid"].p10 += operators.PrecisionAtK(hy.Ranking, actual, 10)
		results["hybrid"].winnerRank += float64(rankOf(hy.Ranking[0]) + 1)
	}
	for _, name := range order {
		a := results[name]
		if name == "tournament-max" {
			tbl.AddRow(name, a.votes/reps, a.winnerRank/reps, "-", "-")
			continue
		}
		tbl.AddRow(name, a.votes/reps, a.winnerRank/reps, a.tau/reps, a.p10/reps)
	}
	return tbl, nil
}

// F6Count measures sampling-based count estimation error vs sample size
// across selectivities.
func F6Count(seed uint64) (*Table, error) {
	tbl := &Table{
		ID:     "F6",
		Title:  "Crowd count: relative error vs sample size",
		Header: []string{"samples", "sel=0.1", "sel=0.3", "sel=0.5"},
		Notes: []string{
			"population 10000; redundancy 3; reliable crowd; mean |err| over 3 seeds",
			fmt.Sprintf("seed %d", seed),
		},
	}
	const pop = 10000
	selectivities := []float64{0.1, 0.3, 0.5}
	for _, nSamples := range []int{25, 50, 100, 200, 400, 800} {
		row := []any{nSamples}
		for _, sel := range selectivities {
			sumErr := 0.0
			const reps = 3
			for rep := uint64(0); rep < reps; rep++ {
				rng := stats.NewRNG(seed + rep*97)
				d, err := datagen.NewFilterDataset(rng, pop, sel)
				if err != nil {
					return nil, err
				}
				items := make([]operators.CountItem, pop)
				trueCount := 0
				for i := range items {
					items[i] = operators.CountItem{
						Question: "pass?", Truth: d.Pass[i], Difficulty: d.Difficulties[i],
					}
					if d.Pass[i] {
						trueCount++
					}
				}
				ws := crowd.NewPopulation(rng, 60, crowd.RegimeReliable)
				runner := operators.NewRunner(crowd.AsCoreWorkers(ws), nil, rng.Split())
				res, err := operators.Count(runner, items, rng.Sample(pop, nSamples), 3)
				if err != nil {
					return nil, err
				}
				sumErr += math.Abs(res.Estimate.Count-float64(trueCount)) / float64(trueCount)
			}
			row = append(row, sumErr/reps)
		}
		tbl.AddRow(row...)
	}
	return tbl, nil
}

// F7Collect traces open-world collection: distinct items found and the
// Chao92 estimate as answers accumulate over a Zipf-skewed domain.
func F7Collect(seed uint64) (*Table, error) {
	tbl := &Table{
		ID:     "F7",
		Title:  "Crowd collection: coverage and Chao92 estimate vs answers",
		Header: []string{"answers", "distinct", "chao92", "true-domain"},
		Notes: []string{
			"domain 200 items, 80 workers with Zipf(1.1) knowledge of 25 items each",
			fmt.Sprintf("seed %d", seed),
		},
	}
	const domainSize = 200
	rng := stats.NewRNG(seed)
	ws := crowd.NewPopulation(rng, 80, crowd.RegimeReliable)
	crowd.AssignKnowledge(rng, ws, domainSize, 25, 1.1)
	items := datagen.CollectionDomain(domainSize)
	runner := operators.NewRunner(crowd.AsCoreWorkers(ws), nil, rng.Split())

	checkpoints := []int{50, 100, 200, 400, 800, 1600}
	res, err := operators.Collect(runner, "name an entry",
		&crowd.CollectionDomain{Items: items}, checkpoints[len(checkpoints)-1])
	if err != nil {
		return nil, err
	}
	// Recompute the Chao92 estimate at each checkpoint from the exact
	// contribution prefix.
	for _, cp := range checkpoints {
		prefix := make(map[string]int)
		for _, v := range res.Sequence[:cp] {
			if v != "" {
				prefix[v]++
			}
		}
		tbl.AddRow(cp, res.CoverageCurve[cp-1], operators.Chao92(prefix), domainSize)
	}
	return tbl, nil
}

// F8Filter compares filtering strategies: cost and accuracy on easy and
// hard item populations.
func F8Filter(seed uint64) (*Table, error) {
	tbl := &Table{
		ID:     "F8",
		Title:  "Crowd filter strategies: votes/item and accuracy",
		Header: []string{"strategy", "votes/item", "accuracy"},
		Notes: []string{
			"300 items, selectivity 0.3, Beta(2,5) difficulty; mixed crowd; mean of 3 seeds",
			fmt.Sprintf("seed %d", seed),
		},
	}
	crowdScreen, err := operators.NewOptimalFilter(0.78, 0.3, 15, 60)
	if err != nil {
		return nil, err
	}
	strategies := []operators.FilterStrategy{
		operators.FixedK{K: 3},
		operators.FixedK{K: 7},
		operators.EarlyStop{Margin: 2, MaxVotes: 7},
		operators.EarlyStop{Margin: 3, MaxVotes: 9},
		operators.SPRT{Accuracy: 0.75, Alpha: 0.05, Beta: 0.05, MaxVotes: 15},
		crowdScreen,
	}
	const nItems = 300
	const reps = 3
	for _, strat := range strategies {
		var votes, acc float64
		for rep := uint64(0); rep < reps; rep++ {
			rng := stats.NewRNG(seed + rep*13)
			d, err := datagen.NewFilterDataset(rng, nItems, 0.3)
			if err != nil {
				return nil, err
			}
			items := make([]operators.FilterItem, nItems)
			for i := range items {
				items[i] = operators.FilterItem{
					Question: "pass?", Truth: d.Pass[i], Difficulty: d.Difficulties[i],
				}
			}
			ws := crowd.NewPopulation(rng, 50, crowd.RegimeMixed)
			runner := operators.NewRunner(crowd.AsCoreWorkers(ws), nil, rng.Split())
			res, err := operators.Filter(runner, items, strat)
			if err != nil {
				return nil, err
			}
			votes += float64(res.TotalVotes) / float64(nItems)
			acc += res.Accuracy(items)
		}
		tbl.AddRow(strat.Name(), votes/reps, acc/reps)
	}
	return tbl, nil
}
