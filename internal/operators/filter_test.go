package operators

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/crowd"
	"repro/internal/datagen"
	"repro/internal/stats"
)

func filterItems(t *testing.T, seed uint64, n int, selectivity float64) []FilterItem {
	t.Helper()
	rng := stats.NewRNG(seed)
	d, err := datagen.NewFilterDataset(rng, n, selectivity)
	if err != nil {
		t.Fatal(err)
	}
	items := make([]FilterItem, n)
	for i := range items {
		items[i] = FilterItem{
			Question:   "does it pass?",
			Truth:      d.Pass[i],
			Difficulty: d.Difficulties[i],
		}
	}
	return items
}

func TestFixedKStrategy(t *testing.T) {
	s := FixedK{K: 5}
	if _, done := s.Decide(2, 2); done {
		t.Fatal("should not stop before K votes")
	}
	pass, done := s.Decide(3, 2)
	if !done || !pass {
		t.Fatalf("3-2 should pass: %v %v", pass, done)
	}
	pass, done = s.Decide(2, 3)
	if !done || pass {
		t.Fatal("2-3 should fail")
	}
}

func TestEarlyStopStrategy(t *testing.T) {
	s := EarlyStop{Margin: 2, MaxVotes: 7}
	if _, done := s.Decide(1, 0); done {
		t.Fatal("margin 1 should not stop")
	}
	if pass, done := s.Decide(2, 0); !done || !pass {
		t.Fatal("margin 2 yes should stop pass")
	}
	if pass, done := s.Decide(0, 2); !done || pass {
		t.Fatal("margin 2 no should stop fail")
	}
	// Cap: 4-3 at 7 votes => majority pass.
	if pass, done := s.Decide(4, 3); !done || !pass {
		t.Fatal("cap majority broken")
	}
}

func TestSPRTStrategy(t *testing.T) {
	s := SPRT{Accuracy: 0.8, Alpha: 0.05, Beta: 0.05, MaxVotes: 20}
	// Needs a few net-agreeing answers to clear the bound.
	if _, done := s.Decide(1, 0); done {
		t.Fatal("one answer should not clear a 5% SPRT bound at p=0.8")
	}
	pass, done := s.Decide(3, 0)
	if !done || !pass {
		t.Fatalf("3-0 at p=0.8 should accept: %v %v", pass, done)
	}
	pass, done = s.Decide(0, 3)
	if !done || pass {
		t.Fatal("0-3 should reject")
	}
	// Degenerate parameters fall back to sane defaults rather than loop.
	d := SPRT{Accuracy: 1.5, MaxVotes: 5}
	if _, done := d.Decide(3, 2); !done {
		t.Fatal("MaxVotes cap must terminate")
	}
}

func TestFilterAccuracyReliableCrowd(t *testing.T) {
	items := filterItems(t, 10, 150, 0.3)
	r := reliableRunner(11, 40)
	res, err := Filter(r, items, FixedK{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	if acc := res.Accuracy(items); acc < 0.9 {
		t.Fatalf("fixed-5 accuracy %.3f", acc)
	}
	if res.TotalVotes != 150*5 {
		t.Fatalf("fixed-5 votes = %d", res.TotalVotes)
	}
	for _, v := range res.VotesPerItem {
		if v != 5 {
			t.Fatalf("fixed-K spent %d votes on an item", v)
		}
	}
}

func TestEarlyStopCheaperThanFixed(t *testing.T) {
	items := filterItems(t, 12, 200, 0.4)
	fixed, err := Filter(reliableRunner(13, 60), items, FixedK{K: 7})
	if err != nil {
		t.Fatal(err)
	}
	early, err := Filter(reliableRunner(13, 60), items, EarlyStop{Margin: 2, MaxVotes: 7})
	if err != nil {
		t.Fatal(err)
	}
	if early.TotalVotes >= fixed.TotalVotes {
		t.Fatalf("early-stop votes %d should undercut fixed %d",
			early.TotalVotes, fixed.TotalVotes)
	}
	accF, accE := fixed.Accuracy(items), early.Accuracy(items)
	if accE < accF-0.07 {
		t.Fatalf("early-stop accuracy %.3f too far below fixed %.3f", accE, accF)
	}
}

func TestSPRTAdaptsToContention(t *testing.T) {
	// SPRT should spend more votes on hard items than easy ones.
	easy := []FilterItem{{Question: "easy", Truth: true, Difficulty: 0.02}}
	hard := []FilterItem{{Question: "hard", Truth: true, Difficulty: 0.98}}
	strategy := SPRT{Accuracy: 0.75, Alpha: 0.02, Beta: 0.02, MaxVotes: 25}
	var easyVotes, hardVotes int
	for seed := uint64(20); seed < 30; seed++ {
		re, err := Filter(mixedRunner(seed, 40), easy, strategy)
		if err != nil {
			t.Fatal(err)
		}
		rh, err := Filter(mixedRunner(seed+100, 40), hard, strategy)
		if err != nil {
			t.Fatal(err)
		}
		easyVotes += re.TotalVotes
		hardVotes += rh.TotalVotes
	}
	if hardVotes <= easyVotes {
		t.Fatalf("SPRT spent %d on hard vs %d on easy", hardVotes, easyVotes)
	}
}

func TestFilterWorkerExhaustionFallsBackToMajority(t *testing.T) {
	items := []FilterItem{{Question: "q", Truth: true, Difficulty: 0}}
	r := reliableRunner(31, 3) // only 3 workers but margin needs 4 agreeing...
	res, err := Filter(r, items, EarlyStop{Margin: 10, MaxVotes: 50})
	if err != nil {
		t.Fatal(err)
	}
	if res.VotesPerItem[0] != 3 {
		t.Fatalf("should have consumed all 3 workers, used %d", res.VotesPerItem[0])
	}
	if !res.Decisions[0] {
		t.Fatal("3 reliable yes votes should pass on fallback majority")
	}
}

func TestFilterBudgetAborts(t *testing.T) {
	items := filterItems(t, 32, 50, 0.5)
	rng := stats.NewRNG(33)
	ws := crowd.NewPopulation(rng, 30, crowd.RegimeReliable)
	r := NewRunner(crowd.AsCoreWorkers(ws), core.NewBudget(20), rng)
	_, err := Filter(r, items, FixedK{K: 5})
	if !errors.Is(err, core.ErrBudgetExhausted) {
		t.Fatalf("expected budget exhaustion, got %v", err)
	}
}

func TestFilterNilStrategy(t *testing.T) {
	if _, err := Filter(reliableRunner(34, 5), nil, nil); err == nil {
		t.Fatal("nil strategy should fail")
	}
}

func TestFilterResultAccuracyShapeMismatch(t *testing.T) {
	fr := &FilterResult{Decisions: []bool{true}}
	if fr.Accuracy(nil) != 0 {
		t.Fatal("mismatched lengths should yield 0")
	}
}
