package operators

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cost"
)

// JoinConfig parameterizes the crowdsourced entity-resolution join
// (CrowdER-style pipeline: machine pruning → crowd verification of the
// candidate pairs, most-similar first → transitivity deduction).
type JoinConfig struct {
	// PruneLow is the similarity below which pairs are discarded without
	// the crowd.
	PruneLow float64
	// AutoHigh is the similarity at or above which pairs are matched
	// without the crowd; set > 1 to always ask.
	AutoHigh float64
	// Sim overrides the similarity function (default CombinedSimilarity).
	Sim cost.Similarity
	// Redundancy is the number of votes per pair question (majority).
	Redundancy int
	// UseTransitivity enables answer deduction between crowd questions.
	UseTransitivity bool
	// BatchSize groups candidate pairs into batched tasks for cost
	// accounting (0 = no batching). Batching affects TaskCount, not the
	// per-pair vote flow.
	BatchSize int
}

// JoinResult reports a crowd-join run.
type JoinResult struct {
	// Matches holds the final matched pairs (record indices, I < J).
	Matches []cost.Pair
	// CandidatePairs is how many pairs survived pruning.
	CandidatePairs int
	// AutoMatched is how many pairs were accepted by similarity alone.
	AutoMatched int
	// Pruned is how many pairs were discarded by similarity alone.
	Pruned int
	// AskedPairs is how many pairs were sent to the crowd.
	AskedPairs int
	// DeducedPairs is how many candidate pairs were skipped thanks to
	// transitivity.
	DeducedPairs int
	// VotesUsed is the total crowd answers consumed.
	VotesUsed int
	// TaskCount is the number of crowd tasks after batching.
	TaskCount int
	// Inconsistencies counts crowd verdicts contradicting the closure.
	Inconsistencies int
}

// Join resolves duplicates within records: it prunes the pair space by
// machine similarity, asks the crowd about the surviving pairs in
// descending-similarity order, optionally deduces answers transitively,
// and returns the matched pairs implied by the final clustering.
//
// entityOf, when non-nil, supplies the planted entity of each record so
// simulated workers can answer; pass nil in production settings where
// tasks would reach real workers (the simulated crowd then cannot answer
// meaningfully, so tests always provide it).
func Join(r *Runner, records []string, cfg JoinConfig, entityOf func(int) int) (*JoinResult, error) {
	if cfg.Redundancy <= 0 {
		cfg.Redundancy = 3
	}
	pruner := &cost.Pruner{Sim: cfg.Sim, Low: cfg.PruneLow, High: cfg.AutoHigh}
	pr, err := pruner.SelfPairs(records)
	if err != nil {
		return nil, fmt.Errorf("operators: join pruning: %w", err)
	}
	res := &JoinResult{
		CandidatePairs: len(pr.Candidates),
		AutoMatched:    len(pr.AutoMatch),
		Pruned:         pr.PrunedCount,
	}

	tr := cost.NewTransitivity(len(records))
	for _, sp := range pr.AutoMatch {
		// An auto-match contradicting earlier evidence is counted by the
		// closure itself; ignore the per-call error here.
		_ = tr.RecordMatch(sp.I, sp.J)
	}

	askPair := func(p cost.Pair) (cost.Verdict, error) {
		truthOpt := -1
		difficulty := 0.4
		if entityOf != nil {
			if entityOf(p.I) == entityOf(p.J) {
				truthOpt = 1
			} else {
				truthOpt = 0
			}
		}
		task, err := r.NewTask(&core.Task{
			Kind:     core.SingleChoice,
			Question: fmt.Sprintf("Do these refer to the same entity?\nA: %s\nB: %s", records[p.I], records[p.J]),
			Options:  []string{"different", "same"},
			// The pair is behind a similarity threshold, so it is
			// genuinely ambiguous to machines; difficulty reflects that.
			Difficulty:  difficulty,
			GroundTruth: truthOpt,
			Payload:     p,
		})
		if err != nil {
			return cost.Unknown, err
		}
		opt, err := r.MajorityOption(task, cfg.Redundancy)
		if err != nil {
			return cost.Unknown, err
		}
		res.VotesUsed += cfg.Redundancy
		if opt == 1 {
			return cost.Match, nil
		}
		return cost.NonMatch, nil
	}

	for _, sp := range pr.Candidates {
		if cfg.UseTransitivity {
			switch tr.Deduce(sp.I, sp.J) {
			case cost.Match, cost.NonMatch:
				res.DeducedPairs++
				continue
			}
		}
		v, err := askPair(sp.Pair)
		if err != nil {
			return res, err
		}
		res.AskedPairs++
		switch v {
		case cost.Match:
			_ = tr.RecordMatch(sp.I, sp.J) // closure counts inconsistencies
		case cost.NonMatch:
			_ = tr.RecordNonMatch(sp.I, sp.J)
		}
	}

	res.Matches = tr.MatchedPairs()
	res.TaskCount = cost.BatchedTaskCount(res.AskedPairs, cfg.BatchSize)
	res.Inconsistencies = tr.Inconsistencies()
	return res, nil
}
