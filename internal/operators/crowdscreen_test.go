package operators

import (
	"math"
	"testing"

	"repro/internal/datagen"
	"repro/internal/stats"
)

func TestOptimalFilterValidation(t *testing.T) {
	cases := []struct {
		p, prior float64
		max      int
		pen      float64
	}{
		{0.5, 0.5, 10, 50}, // accuracy at boundary
		{1.0, 0.5, 10, 50}, // accuracy at boundary
		{0.8, 0, 10, 50},   // prior at boundary
		{0.8, 1, 10, 50},   // prior at boundary
		{0.8, 0.5, 0, 50},  // no votes
		{0.8, 0.5, 10, 0},  // no penalty
	}
	for _, c := range cases {
		if _, err := NewOptimalFilter(c.p, c.prior, c.max, c.pen); err == nil {
			t.Errorf("NewOptimalFilter(%v, %v, %d, %v) should fail", c.p, c.prior, c.max, c.pen)
		}
	}
	if _, err := NewOptimalFilter(0.8, 0.3, 15, 50); err != nil {
		t.Fatal(err)
	}
}

func TestOptimalFilterPosterior(t *testing.T) {
	f, err := NewOptimalFilter(0.8, 0.5, 10, 50)
	if err != nil {
		t.Fatal(err)
	}
	if p := f.posterior(0, 0); math.Abs(p-0.5) > 1e-12 {
		t.Fatalf("prior posterior = %v", p)
	}
	// One yes at p=0.8, uniform prior: posterior = 0.8.
	if p := f.posterior(1, 0); math.Abs(p-0.8) > 1e-12 {
		t.Fatalf("posterior(1,0) = %v", p)
	}
	// Symmetric counts cancel.
	if p := f.posterior(3, 3); math.Abs(p-0.5) > 1e-12 {
		t.Fatalf("posterior(3,3) = %v", p)
	}
	if f.posterior(5, 0) <= f.posterior(4, 0) {
		t.Fatal("posterior not monotone in yes votes")
	}
}

func TestOptimalFilterGridStructure(t *testing.T) {
	f, err := NewOptimalFilter(0.75, 0.5, 20, 100)
	if err != nil {
		t.Fatal(err)
	}
	// The root must continue (one answer is cheap vs penalty 100).
	if _, done := f.Decide(0, 0); done {
		t.Fatal("root state should ask at least one question")
	}
	// Lopsided states decide; ties deep in the grid keep asking until
	// the cap.
	if pass, done := f.Decide(8, 0); !done || !pass {
		t.Fatal("8-0 should stop and pass")
	}
	if pass, done := f.Decide(0, 8); !done || pass {
		t.Fatal("0-8 should stop and fail")
	}
	// Frontier states always stop.
	for y := 0; y <= 20; y++ {
		if _, done := f.Decide(y, 20-y); !done {
			t.Fatalf("frontier state (%d,%d) did not stop", y, 20-y)
		}
	}
	// Higher penalty buys more questioning: the continue region grows.
	low, _ := NewOptimalFilter(0.75, 0.5, 20, 5)
	high, _ := NewOptimalFilter(0.75, 0.5, 20, 500)
	contLow, contHigh := 0, 0
	for y := 0; y <= 20; y++ {
		for n := 0; y+n <= 20; n++ {
			if _, done := low.Decide(y, n); !done {
				contLow++
			}
			if _, done := high.Decide(y, n); !done {
				contHigh++
			}
		}
	}
	if contHigh <= contLow {
		t.Fatalf("higher penalty should widen the continue region: %d vs %d", contHigh, contLow)
	}
}

func TestOptimalFilterExpectedVotes(t *testing.T) {
	f, err := NewOptimalFilter(0.8, 0.5, 15, 50)
	if err != nil {
		t.Fatal(err)
	}
	ev := f.ExpectedVotes()
	if ev <= 1 || ev > 15 {
		t.Fatalf("expected votes = %v", ev)
	}
	// Asymmetric prior should cut expected cost (most items decided by
	// the prior direction quickly).
	skew, _ := NewOptimalFilter(0.8, 0.05, 15, 50)
	if skew.ExpectedVotes() >= ev {
		t.Fatalf("skewed prior should reduce expected votes: %v vs %v",
			skew.ExpectedVotes(), ev)
	}
}

func TestOptimalFilterDominatesHeuristicsOnFrontier(t *testing.T) {
	// Run planted filter workloads; the DP strategy should achieve
	// accuracy comparable to fixed-7 at clearly lower cost (i.e. sit on
	// or inside the heuristic frontier).
	const nItems = 400
	const trials = 3
	var optVotes, optAcc, fixedVotes, fixedAcc float64
	for seed := uint64(700); seed < 700+trials; seed++ {
		rng := stats.NewRNG(seed)
		d, err := datagen.NewFilterDataset(rng, nItems, 0.3)
		if err != nil {
			t.Fatal(err)
		}
		items := make([]FilterItem, nItems)
		for i := range items {
			items[i] = FilterItem{Question: "q", Truth: d.Pass[i], Difficulty: d.Difficulties[i]}
		}
		opt, err := NewOptimalFilter(0.8, 0.3, 15, 60)
		if err != nil {
			t.Fatal(err)
		}
		ro := mixedRunner(seed*3, 50)
		resO, err := Filter(ro, items, opt)
		if err != nil {
			t.Fatal(err)
		}
		optVotes += float64(resO.TotalVotes)
		optAcc += resO.Accuracy(items)

		rf := mixedRunner(seed*3, 50)
		resF, err := Filter(rf, items, FixedK{K: 7})
		if err != nil {
			t.Fatal(err)
		}
		fixedVotes += float64(resF.TotalVotes)
		fixedAcc += resF.Accuracy(items)
	}
	if optVotes >= fixedVotes {
		t.Fatalf("DP strategy cost %v >= fixed-7 %v", optVotes/trials, fixedVotes/trials)
	}
	if optAcc < fixedAcc-0.06*trials {
		t.Fatalf("DP accuracy %.3f collapsed vs fixed-7 %.3f",
			optAcc/trials, fixedAcc/trials)
	}
}
