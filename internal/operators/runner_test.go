package operators

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/crowd"
	"repro/internal/stats"
	"repro/internal/truth"
)

func reliableRunner(seed uint64, n int) *Runner {
	rng := stats.NewRNG(seed)
	ws := crowd.NewPopulation(rng, n, crowd.RegimeReliable)
	return NewRunner(crowd.AsCoreWorkers(ws), nil, rng)
}

func mixedRunner(seed uint64, n int) *Runner {
	rng := stats.NewRNG(seed)
	ws := crowd.NewPopulation(rng, n, crowd.RegimeMixed)
	return NewRunner(crowd.AsCoreWorkers(ws), nil, rng)
}

func binTask(t *testing.T, r *Runner, truth int, difficulty float64) *core.Task {
	t.Helper()
	task, err := r.NewTask(&core.Task{
		Kind: core.SingleChoice, Options: []string{"no", "yes"},
		GroundTruth: truth, Difficulty: difficulty,
	})
	if err != nil {
		t.Fatal(err)
	}
	return task
}

func TestRunnerOneDistinctWorkers(t *testing.T) {
	r := reliableRunner(1, 5)
	task := binTask(t, r, 1, 0.1)
	seen := map[string]bool{}
	for i := 0; i < 5; i++ {
		a, err := r.One(task)
		if err != nil {
			t.Fatal(err)
		}
		if seen[a.Worker] {
			t.Fatalf("worker %s answered twice", a.Worker)
		}
		seen[a.Worker] = true
	}
	if _, err := r.One(task); !errors.Is(err, ErrNoWorkers) {
		t.Fatalf("expected ErrNoWorkers, got %v", err)
	}
	if r.AnswersUsed != 5 || r.TasksAsked != 1 {
		t.Fatalf("accounting: answers=%d tasks=%d", r.AnswersUsed, r.TasksAsked)
	}
}

func TestRunnerBudgetEnforced(t *testing.T) {
	rng := stats.NewRNG(2)
	ws := crowd.NewPopulation(rng, 10, crowd.RegimeReliable)
	r := NewRunner(crowd.AsCoreWorkers(ws), core.NewBudget(3), rng)
	task := binTask(t, r, 1, 0.1)
	if _, err := r.Collect(task, 3); err != nil {
		t.Fatal(err)
	}
	task2 := binTask(t, r, 1, 0.1)
	if _, err := r.One(task2); !errors.Is(err, core.ErrBudgetExhausted) {
		t.Fatalf("expected budget exhaustion, got %v", err)
	}
}

func TestRunnerCollectValidation(t *testing.T) {
	r := reliableRunner(3, 5)
	task := binTask(t, r, 1, 0.1)
	if _, err := r.Collect(task, 0); err == nil {
		t.Fatal("k=0 should fail")
	}
}

func TestMajorityOptionRecoversTruth(t *testing.T) {
	r := reliableRunner(4, 30)
	correct := 0
	for i := 0; i < 50; i++ {
		task := binTask(t, r, i%2, 0.2)
		opt, err := r.MajorityOption(task, 5)
		if err != nil {
			t.Fatal(err)
		}
		if opt == i%2 {
			correct++
		}
	}
	if correct < 47 {
		t.Fatalf("majority of 5 reliable workers right only %d/50", correct)
	}
}

func TestNewTaskAssignsUniqueIDsAndValidates(t *testing.T) {
	r := reliableRunner(5, 3)
	a := binTask(t, r, 0, 0)
	b := binTask(t, r, 1, 0)
	if a.ID == b.ID {
		t.Fatal("duplicate task ids")
	}
	if _, err := r.NewTask(&core.Task{Kind: core.SingleChoice, Options: []string{"only"}}); err == nil {
		t.Fatal("invalid task should be rejected")
	}
}

func TestInferBatch(t *testing.T) {
	r := mixedRunner(6, 25)
	rng := stats.NewRNG(7)
	var tasks []*core.Task
	truthMap := map[core.TaskID]int{}
	for i := 0; i < 60; i++ {
		gt := rng.Intn(2)
		task, err := r.NewTask(&core.Task{
			Kind: core.SingleChoice, Options: []string{"no", "yes"},
			GroundTruth: gt, Difficulty: 0.2,
		})
		if err != nil {
			t.Fatal(err)
		}
		tasks = append(tasks, task)
		truthMap[task.ID] = gt
	}
	res, err := r.InferBatch(tasks, 5, truth.OneCoinEM{})
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for id, gt := range truthMap {
		if res.Labels[id] == gt {
			correct++
		}
	}
	if correct < 55 {
		t.Fatalf("InferBatch accuracy %d/60", correct)
	}
	if r.AnswersUsed != 300 {
		t.Fatalf("answers used = %d, want 300", r.AnswersUsed)
	}
}
