// Package operators implements the crowd-powered query operators surveyed
// in crowdsourced data management: selection/filtering with sequential
// stopping strategies, entity-resolution join (machine pruning + batching
// + transitivity), sort / top-k / max via pairwise comparisons,
// tournaments, ratings and hybrids, sampling-based count/aggregation, and
// open-domain collection with species estimation.
//
// Operators talk to the crowd through a Runner, which hands tasks to
// simulated (or scripted) workers one answer at a time, enforces the
// one-answer-per-worker-per-task rule, and accounts cost against a budget.
package operators

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/truth"
)

// ErrNoWorkers is returned when every worker has already answered a task
// that needs more answers.
var ErrNoWorkers = errors.New("operators: no remaining worker for task")

// RemoteSource routes crowd questions to an external answering service —
// typically a serving pool reached over HTTP — instead of the runner's
// in-process worker loop. Ask publishes t, blocks until k answers have
// arrived or ctx is canceled, and returns the answers it gathered (possibly
// fewer than k alongside a non-nil error). Budget accounting for remote
// questions belongs to the remote side: the runner's own budget is not
// charged for them.
type RemoteSource interface {
	Ask(ctx context.Context, t *core.Task, k int) ([]core.Answer, error)
}

// Runner feeds operator questions to a worker pool sequentially. It is the
// cost/quality-facing counterpart of core.Platform (which models rounds
// and latency): operators care about how many answers they consume and
// what the aggregated results are.
type Runner struct {
	workers []core.Worker
	budget  *core.Budget
	rng     *stats.RNG

	// answered[taskKey] tracks which worker indices have answered.
	answered map[core.TaskID]map[int]bool
	nextID   core.TaskID

	// AnswersUsed counts every answer collected through this runner.
	AnswersUsed int
	// TasksAsked counts distinct tasks that received at least one answer.
	TasksAsked int

	// Remote, when set, redirects CollectCtx (and everything built on it)
	// to an external answer source; the in-process workers and the
	// runner's budget are bypassed. The runner's accounting counters still
	// track remote answers.
	Remote RemoteSource
}

// NewRunner wires a runner. A nil budget means unlimited.
func NewRunner(workers []core.Worker, budget *core.Budget, rng *stats.RNG) *Runner {
	if budget == nil {
		budget = core.Unlimited()
	}
	return &Runner{
		workers:  workers,
		budget:   budget,
		rng:      rng,
		answered: make(map[core.TaskID]map[int]bool),
		nextID:   1,
	}
}

// Budget exposes the runner's budget for callers that share it.
func (r *Runner) Budget() *core.Budget { return r.budget }

// NewTask stamps a fresh task id onto t and validates it.
func (r *Runner) NewTask(t *core.Task) (*core.Task, error) {
	t.ID = r.nextID
	r.nextID++
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// One collects a single answer for t from a uniformly random worker that
// has not answered it yet. It charges one budget unit.
func (r *Runner) One(t *core.Task) (core.Answer, error) {
	used := r.answered[t.ID]
	if used == nil {
		used = make(map[int]bool)
		r.answered[t.ID] = used
	}
	remaining := len(r.workers) - len(used)
	if remaining <= 0 {
		return core.Answer{}, fmt.Errorf("task %d: %w", t.ID, ErrNoWorkers)
	}
	if err := r.budget.Charge(1); err != nil {
		return core.Answer{}, err
	}
	// Pick the nth unused worker uniformly.
	n := r.rng.Intn(remaining)
	wi := -1
	for i := range r.workers {
		if used[i] {
			continue
		}
		if n == 0 {
			wi = i
			break
		}
		n--
	}
	used[wi] = true
	if len(used) == 1 {
		r.TasksAsked++
	}
	w := r.workers[wi]
	resp := w.Work(t)
	r.AnswersUsed++
	return core.Answer{
		Task: t.ID, Worker: w.ID(),
		Option: resp.Option, Text: resp.Text, Score: resp.Score,
		Latency: resp.Latency,
	}, nil
}

// Collect gathers k answers for t (distinct workers).
func (r *Runner) Collect(t *core.Task, k int) ([]core.Answer, error) {
	return r.CollectCtx(context.Background(), t, k)
}

// CollectCtx gathers k answers for t, stopping early when ctx is canceled
// (the partial answers gathered so far are returned with ctx's error). With
// a Remote source attached the whole collection is delegated to it —
// publish, wait, cancel semantics included.
func (r *Runner) CollectCtx(ctx context.Context, t *core.Task, k int) ([]core.Answer, error) {
	if k <= 0 {
		return nil, fmt.Errorf("operators: redundancy must be positive (got %d)", k)
	}
	if r.Remote != nil {
		answers, err := r.Remote.Ask(ctx, t, k)
		r.AnswersUsed += len(answers)
		if len(answers) > 0 {
			r.TasksAsked++
		}
		return answers, err
	}
	out := make([]core.Answer, 0, k)
	for i := 0; i < k; i++ {
		if err := ctx.Err(); err != nil {
			return out, err
		}
		a, err := r.One(t)
		if err != nil {
			return out, err
		}
		out = append(out, a)
	}
	return out, nil
}

// MajorityOption asks k workers and returns the plurality option (ties to
// the lowest index).
func (r *Runner) MajorityOption(t *core.Task, k int) (int, error) {
	return r.MajorityOptionCtx(context.Background(), t, k)
}

// MajorityOptionCtx is MajorityOption with cancellation (see CollectCtx).
func (r *Runner) MajorityOptionCtx(ctx context.Context, t *core.Task, k int) (int, error) {
	answers, err := r.CollectCtx(ctx, t, k)
	if err != nil {
		return 0, err
	}
	votes := make([]float64, len(t.Options))
	for _, a := range answers {
		if a.Option >= 0 && a.Option < len(votes) {
			votes[a.Option]++
		}
	}
	best := stats.ArgMax(votes)
	if best < 0 {
		return 0, fmt.Errorf("operators: task %d got no usable votes", t.ID)
	}
	return best, nil
}

// InferBatch publishes all tasks, collects redundancy-k answers for each,
// and aggregates with the given inference method (MajorityVote when nil).
// It is the batch-mode counterpart of MajorityOption used by operators
// that generate many homogeneous tasks (joins, filters in batch mode).
func (r *Runner) InferBatch(tasks []*core.Task, k int, inf truth.Inferrer) (*truth.Result, error) {
	if inf == nil {
		inf = truth.MajorityVote{}
	}
	pool := core.NewPool()
	ids := make([]core.TaskID, 0, len(tasks))
	for _, t := range tasks {
		id, err := pool.Add(t)
		if err != nil {
			return nil, err
		}
		ids = append(ids, id)
	}
	for _, t := range tasks {
		answers, err := r.Collect(t, k)
		if err != nil {
			return nil, err
		}
		for _, a := range answers {
			if recErr := pool.Record(a); recErr != nil {
				return nil, recErr
			}
		}
	}
	ds, err := truth.FromPool(pool, ids)
	if err != nil {
		return nil, err
	}
	return inf.Infer(ds)
}
