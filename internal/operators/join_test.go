package operators

import (
	"testing"

	"repro/internal/cost"
	"repro/internal/datagen"
	"repro/internal/stats"
)

func erData(t *testing.T, seed uint64, entities int) *datagen.ERDataset {
	t.Helper()
	d, err := datagen.NewERDataset(stats.NewRNG(seed), datagen.ERConfig{
		Entities: entities, DupMean: 2.2, Noise: 0.3,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func truePairsOf(d *datagen.ERDataset) []cost.Pair {
	tp := d.TruePairs()
	out := make([]cost.Pair, len(tp))
	for i, p := range tp {
		out[i] = cost.Pair{I: p.I, J: p.J}
	}
	return out
}

func TestJoinRecoversClusters(t *testing.T) {
	d := erData(t, 40, 40)
	r := reliableRunner(41, 50)
	res, err := Join(r, d.Records, JoinConfig{
		PruneLow: 0.3, AutoHigh: 2, Redundancy: 3, UseTransitivity: true,
	}, func(i int) int { return d.Entity[i] })
	if err != nil {
		t.Fatal(err)
	}
	prf := cost.EvaluatePairs(res.Matches, truePairsOf(d), true)
	if prf.F1 < 0.9 {
		t.Fatalf("join F1 = %.3f (P=%.3f R=%.3f)", prf.F1, prf.Precision, prf.Recall)
	}
}

func TestJoinPruningCutsPairSpace(t *testing.T) {
	d := erData(t, 42, 40)
	r := reliableRunner(43, 50)
	res, err := Join(r, d.Records, JoinConfig{
		PruneLow: 0.3, AutoHigh: 2, Redundancy: 3,
	}, func(i int) int { return d.Entity[i] })
	if err != nil {
		t.Fatal(err)
	}
	n := len(d.Records)
	allPairs := n * (n - 1) / 2
	if res.Pruned == 0 {
		t.Fatal("pruning removed nothing")
	}
	if res.AskedPairs >= allPairs/2 {
		t.Fatalf("asked %d of %d pairs; pruning ineffective", res.AskedPairs, allPairs)
	}
	if res.Pruned+res.CandidatePairs+res.AutoMatched != allPairs {
		t.Fatalf("partition mismatch: %d + %d + %d != %d",
			res.Pruned, res.CandidatePairs, res.AutoMatched, allPairs)
	}
}

func TestJoinTransitivitySavesQuestions(t *testing.T) {
	d := erData(t, 44, 30)
	base, err := Join(reliableRunner(45, 50), d.Records, JoinConfig{
		PruneLow: 0.2, AutoHigh: 2, Redundancy: 3, UseTransitivity: false,
	}, func(i int) int { return d.Entity[i] })
	if err != nil {
		t.Fatal(err)
	}
	trans, err := Join(reliableRunner(45, 50), d.Records, JoinConfig{
		PruneLow: 0.2, AutoHigh: 2, Redundancy: 3, UseTransitivity: true,
	}, func(i int) int { return d.Entity[i] })
	if err != nil {
		t.Fatal(err)
	}
	if trans.AskedPairs >= base.AskedPairs {
		t.Fatalf("transitivity asked %d >= baseline %d", trans.AskedPairs, base.AskedPairs)
	}
	if trans.DeducedPairs == 0 {
		t.Fatal("no pairs deduced")
	}
	// Quality should not collapse.
	basePRF := cost.EvaluatePairs(base.Matches, truePairsOf(d), true)
	transPRF := cost.EvaluatePairs(trans.Matches, truePairsOf(d), true)
	if transPRF.F1 < basePRF.F1-0.1 {
		t.Fatalf("transitivity F1 %.3f collapsed vs %.3f", transPRF.F1, basePRF.F1)
	}
}

func TestJoinAutoAcceptReducesAsks(t *testing.T) {
	d := erData(t, 46, 30)
	strict, err := Join(reliableRunner(47, 50), d.Records, JoinConfig{
		PruneLow: 0.3, AutoHigh: 2, Redundancy: 3,
	}, func(i int) int { return d.Entity[i] })
	if err != nil {
		t.Fatal(err)
	}
	auto, err := Join(reliableRunner(47, 50), d.Records, JoinConfig{
		PruneLow: 0.3, AutoHigh: 0.95, Redundancy: 3,
	}, func(i int) int { return d.Entity[i] })
	if err != nil {
		t.Fatal(err)
	}
	if auto.AutoMatched == 0 {
		t.Fatal("auto-accept matched nothing at 0.95")
	}
	if auto.AskedPairs >= strict.AskedPairs {
		t.Fatalf("auto-accept should reduce asks: %d vs %d",
			auto.AskedPairs, strict.AskedPairs)
	}
}

func TestJoinBatchingAccounting(t *testing.T) {
	d := erData(t, 48, 20)
	res, err := Join(reliableRunner(49, 40), d.Records, JoinConfig{
		PruneLow: 0.3, AutoHigh: 2, Redundancy: 3, BatchSize: 10,
	}, func(i int) int { return d.Entity[i] })
	if err != nil {
		t.Fatal(err)
	}
	want := (res.AskedPairs + 9) / 10
	if res.TaskCount != want {
		t.Fatalf("TaskCount = %d, want %d", res.TaskCount, want)
	}
}

func TestJoinBadThresholds(t *testing.T) {
	if _, err := Join(reliableRunner(50, 5), []string{"a", "b"}, JoinConfig{
		PruneLow: 0.9, AutoHigh: 0.1,
	}, nil); err == nil {
		t.Fatal("High < Low should fail")
	}
}
