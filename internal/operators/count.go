package operators

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cost"
)

// CountItem is one population member for crowd-powered count/selectivity
// estimation.
type CountItem struct {
	Question   string
	Truth      bool
	Difficulty float64
}

// CountResult reports a sampling-based crowd count.
type CountResult struct {
	// Estimate extrapolates the sampled selectivity to the population.
	Estimate *cost.SelectivityEstimate
	// SampledItems is how many population members were labeled.
	SampledItems int
	// VotesUsed is the total crowd answers consumed.
	VotesUsed int
}

// Count estimates how many of the population items satisfy the predicate
// by labeling a random sample of sampleSize items with redundancy-k
// majority votes and extrapolating — the crowd-powered COUNT/selectivity
// estimator from the survey. Sampling uses the runner's RNG stream via
// the provided index sample.
func Count(r *Runner, population []CountItem, sampleIdx []int, k int) (*CountResult, error) {
	if len(population) == 0 {
		return nil, fmt.Errorf("operators: empty population")
	}
	if len(sampleIdx) == 0 {
		return nil, fmt.Errorf("operators: empty sample")
	}
	if k <= 0 {
		k = 3
	}
	labels := make([]bool, 0, len(sampleIdx))
	votes := 0
	for _, idx := range sampleIdx {
		if idx < 0 || idx >= len(population) {
			return nil, fmt.Errorf("operators: sample index %d out of range", idx)
		}
		it := population[idx]
		truthOpt := 0
		if it.Truth {
			truthOpt = 1
		}
		task, err := r.NewTask(&core.Task{
			Kind:        core.SingleChoice,
			Question:    it.Question,
			Options:     []string{"no", "yes"},
			GroundTruth: truthOpt,
			Difficulty:  it.Difficulty,
		})
		if err != nil {
			return nil, err
		}
		opt, err := r.MajorityOption(task, k)
		if err != nil {
			return nil, err
		}
		votes += k
		labels = append(labels, opt == 1)
	}
	est, err := cost.EstimateSelectivity(labels, len(population))
	if err != nil {
		return nil, err
	}
	return &CountResult{
		Estimate:     est,
		SampledItems: len(sampleIdx),
		VotesUsed:    votes,
	}, nil
}
