package operators

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/truth"
)

// BinaryInsertionSort builds a full ranking with O(n log n) crowd
// comparisons: items are inserted one by one into the sorted prefix via
// binary search, each probe being a redundancy-k majority comparison.
// It sits between RatingSort (linear, coarse) and AllPairsSort
// (quadratic, robust) on the cost/quality frontier — a noisy comparison
// during the binary search misplaces the item locally but cannot corrupt
// the rest of the order.
func BinaryInsertionSort(r *Runner, n int, oracle CompareOracle, k int) (*SortResult, error) {
	if n <= 0 {
		return nil, fmt.Errorf("operators: sort over %d items", n)
	}
	if k <= 0 {
		k = 1
	}
	res := &SortResult{Method: "binary-insertion"}
	ranking := make([]int, 0, n) // best first
	for item := 0; item < n; item++ {
		lo, hi := 0, len(ranking)
		for lo < hi {
			mid := (lo + hi) / 2
			better, err := comparePair(r, oracle, item, ranking[mid], k)
			if err != nil {
				return res, err
			}
			res.Comparisons++
			res.VotesUsed += k
			if better {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		ranking = append(ranking, 0)
		copy(ranking[lo+1:], ranking[lo:])
		ranking[lo] = item
	}
	res.Ranking = ranking
	return res, nil
}

// BTSort asks k individual answers per unordered pair and aggregates all
// of them jointly with the Bradley–Terry model instead of per-pair
// majority. Same vote budget as AllPairsSort, but each answer informs the
// whole ranking (CrowdBT-style aggregation).
func BTSort(r *Runner, n int, oracle CompareOracle, k int) (*SortResult, error) {
	if n <= 0 {
		return nil, fmt.Errorf("operators: sort over %d items", n)
	}
	if k <= 0 {
		k = 1
	}
	res := &SortResult{Method: "bt"}
	var comparisons []truth.Comparison
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			better, difficulty := oracle.Truth(i, j)
			truthOpt := 1
			if better {
				truthOpt = 0
			}
			task, err := r.NewTask(&core.Task{
				Kind:        core.PairwiseComparison,
				Question:    fmt.Sprintf("Which is better: %s or %s?", oracle.Label(i), oracle.Label(j)),
				Options:     []string{oracle.Label(i), oracle.Label(j)},
				GroundTruth: truthOpt,
				Difficulty:  difficulty,
			})
			if err != nil {
				return res, err
			}
			answers, err := r.Collect(task, k)
			if err != nil {
				return res, err
			}
			res.Comparisons++
			res.VotesUsed += len(answers)
			for _, a := range answers {
				comparisons = append(comparisons, truth.Comparison{I: i, J: j, IWon: a.Option == 0})
			}
		}
	}
	bt, err := truth.BradleyTerry(n, comparisons)
	if err != nil {
		return res, err
	}
	res.Ranking = bt.Ranking
	return res, nil
}
