package operators

import (
	"fmt"

	"repro/internal/core"
)

// Taxonomy is a category tree for crowd-powered categorization. Leaf
// names must be unique across the tree.
type Taxonomy struct {
	Name     string
	Children []*Taxonomy
}

// IsLeaf reports whether the node has no children.
func (t *Taxonomy) IsLeaf() bool { return len(t.Children) == 0 }

// Leaves returns the leaf names in depth-first order.
func (t *Taxonomy) Leaves() []string {
	if t.IsLeaf() {
		return []string{t.Name}
	}
	var out []string
	for _, c := range t.Children {
		out = append(out, c.Leaves()...)
	}
	return out
}

// Depth returns the maximum root-to-leaf edge count.
func (t *Taxonomy) Depth() int {
	if t.IsLeaf() {
		return 0
	}
	max := 0
	for _, c := range t.Children {
		if d := c.Depth(); d > max {
			max = d
		}
	}
	return max + 1
}

// contains reports whether the subtree holds the named leaf.
func (t *Taxonomy) contains(leaf string) bool {
	if t.IsLeaf() {
		return t.Name == leaf
	}
	for _, c := range t.Children {
		if c.contains(leaf) {
			return true
		}
	}
	return false
}

// Validate checks leaf-name uniqueness and non-empty names.
func (t *Taxonomy) Validate() error {
	seen := map[string]bool{}
	var walk func(n *Taxonomy) error
	walk = func(n *Taxonomy) error {
		if n.Name == "" {
			return fmt.Errorf("operators: taxonomy node with empty name")
		}
		if n.IsLeaf() {
			if seen[n.Name] {
				return fmt.Errorf("operators: duplicate leaf %q", n.Name)
			}
			seen[n.Name] = true
			return nil
		}
		for _, c := range n.Children {
			if err := walk(c); err != nil {
				return err
			}
		}
		return nil
	}
	return walk(t)
}

// CategorizeItem is one item to place into the taxonomy.
type CategorizeItem struct {
	// Question describes the item to workers.
	Question string
	// TruthLeaf is the planted correct leaf (for simulated workers and
	// evaluation).
	TruthLeaf string
	// Difficulty in [0,1] is the base confusability of the item.
	Difficulty float64
}

// CategorizeResult reports a categorization run.
type CategorizeResult struct {
	// Assigned holds the chosen leaf per item.
	Assigned []string
	// QuestionsAsked counts the choice questions issued.
	QuestionsAsked int
	// VotesUsed counts worker answers consumed.
	VotesUsed int
	// Strategy is "flat" or "hierarchical".
	Strategy string
}

// Accuracy scores assignments against the planted leaves.
func (cr *CategorizeResult) Accuracy(items []CategorizeItem) float64 {
	if len(items) == 0 || len(items) != len(cr.Assigned) {
		return 0
	}
	ok := 0
	for i, it := range items {
		if cr.Assigned[i] == it.TruthLeaf {
			ok++
		}
	}
	return float64(ok) / float64(len(items))
}

// choiceDifficulty scales a base item difficulty by the number of options
// shown: wide flat choices are more confusable than small per-level ones.
func choiceDifficulty(base float64, options int) float64 {
	d := base + 0.04*float64(options-2)
	if d < 0 {
		d = 0
	}
	if d > 0.95 {
		d = 0.95
	}
	return d
}

// CategorizeFlat places each item with one wide multiple-choice question
// over all leaves (majority of k votes).
func CategorizeFlat(r *Runner, items []CategorizeItem, tax *Taxonomy, k int) (*CategorizeResult, error) {
	if err := tax.Validate(); err != nil {
		return nil, err
	}
	leaves := tax.Leaves()
	if len(leaves) < 2 {
		return nil, fmt.Errorf("operators: taxonomy needs >= 2 leaves")
	}
	if k <= 0 {
		k = 3
	}
	leafIdx := make(map[string]int, len(leaves))
	for i, l := range leaves {
		leafIdx[l] = i
	}
	res := &CategorizeResult{Strategy: "flat"}
	for _, it := range items {
		truth, ok := leafIdx[it.TruthLeaf]
		if !ok {
			truth = -1
		}
		task, err := r.NewTask(&core.Task{
			Kind:        core.SingleChoice,
			Question:    fmt.Sprintf("Which category fits? %s", it.Question),
			Options:     leaves,
			GroundTruth: truth,
			Difficulty:  choiceDifficulty(it.Difficulty, len(leaves)),
		})
		if err != nil {
			return res, err
		}
		opt, err := r.MajorityOption(task, k)
		if err != nil {
			return res, err
		}
		res.QuestionsAsked++
		res.VotesUsed += k
		res.Assigned = append(res.Assigned, leaves[opt])
	}
	return res, nil
}

// CategorizeHierarchical walks each item down the taxonomy: one small
// choice question per level (majority of k votes). An early wrong turn
// propagates — subsequent questions have no correct option and workers
// guess — which is exactly the failure mode the taxonomy literature
// describes.
func CategorizeHierarchical(r *Runner, items []CategorizeItem, tax *Taxonomy, k int) (*CategorizeResult, error) {
	if err := tax.Validate(); err != nil {
		return nil, err
	}
	if tax.IsLeaf() {
		return nil, fmt.Errorf("operators: taxonomy root has no children")
	}
	if k <= 0 {
		k = 3
	}
	res := &CategorizeResult{Strategy: "hierarchical"}
	for _, it := range items {
		node := tax
		for !node.IsLeaf() {
			options := make([]string, len(node.Children))
			truth := -1
			for ci, c := range node.Children {
				options[ci] = c.Name
				if c.contains(it.TruthLeaf) {
					truth = ci
				}
			}
			task, err := r.NewTask(&core.Task{
				Kind:        core.SingleChoice,
				Question:    fmt.Sprintf("Under %q, which branch fits? %s", node.Name, it.Question),
				Options:     options,
				GroundTruth: truth,
				Difficulty:  choiceDifficulty(it.Difficulty, len(options)),
			})
			if err != nil {
				return res, err
			}
			opt := 0
			if len(options) == 1 {
				// Degenerate single-child level: no question needed.
			} else {
				opt, err = r.MajorityOption(task, k)
				if err != nil {
					return res, err
				}
				res.QuestionsAsked++
				res.VotesUsed += k
			}
			node = node.Children[opt]
		}
		res.Assigned = append(res.Assigned, node.Name)
	}
	return res, nil
}
