package operators

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/stats"
)

// CompareOracle answers "is item i better than item j?" for the sort/max
// operators. Experiments provide planted comparators; production code
// routes to the crowd via Runner-backed implementations.
type CompareOracle interface {
	// Better reports whether item i outranks item j, plus the pairwise
	// task difficulty in [0,1] for the simulated workers.
	Truth(i, j int) (better bool, difficulty float64)
	// Label returns the display string of item i.
	Label(i int) string
}

// comparePair asks the crowd (with redundancy k) which of items i and j is
// better and returns true if i wins the majority.
func comparePair(r *Runner, oracle CompareOracle, i, j, k int) (bool, error) {
	better, difficulty := oracle.Truth(i, j)
	truthOpt := 1
	if better {
		truthOpt = 0
	}
	task, err := r.NewTask(&core.Task{
		Kind:        core.PairwiseComparison,
		Question:    fmt.Sprintf("Which is better: %s or %s?", oracle.Label(i), oracle.Label(j)),
		Options:     []string{oracle.Label(i), oracle.Label(j)},
		GroundTruth: truthOpt,
		Difficulty:  difficulty,
	})
	if err != nil {
		return false, err
	}
	opt, err := r.MajorityOption(task, k)
	if err != nil {
		return false, err
	}
	return opt == 0, nil
}

// MaxResult reports a crowd-max run.
type MaxResult struct {
	// Winner is the index of the item judged best.
	Winner int
	// Comparisons is the number of pair questions asked.
	Comparisons int
	// VotesUsed is the total answers consumed.
	VotesUsed int
}

// MaxTournament finds the best of items[0..n) by single-elimination
// tournament with redundancy-k majority per match — the O(n) crowd-max
// strategy from the survey (versus the O(n²) all-pairs approach).
func MaxTournament(r *Runner, n int, oracle CompareOracle, k int) (*MaxResult, error) {
	if n <= 0 {
		return nil, fmt.Errorf("operators: max over %d items", n)
	}
	if k <= 0 {
		k = 1
	}
	alive := make([]int, n)
	for i := range alive {
		alive[i] = i
	}
	res := &MaxResult{}
	for len(alive) > 1 {
		var next []int
		for i := 0; i+1 < len(alive); i += 2 {
			win, err := comparePair(r, oracle, alive[i], alive[i+1], k)
			if err != nil {
				return res, err
			}
			res.Comparisons++
			res.VotesUsed += k
			if win {
				next = append(next, alive[i])
			} else {
				next = append(next, alive[i+1])
			}
		}
		if len(alive)%2 == 1 {
			next = append(next, alive[len(alive)-1]) // bye
		}
		alive = next
	}
	res.Winner = alive[0]
	return res, nil
}

// SortResult reports a crowd-sort / top-k run.
type SortResult struct {
	// Ranking is the inferred order, best first.
	Ranking []int
	// Comparisons / Ratings count the questions asked by kind.
	Comparisons int
	Ratings     int
	// VotesUsed is the total answers consumed.
	VotesUsed int
	Method    string
}

// AllPairsSort asks every unordered pair (redundancy k) and ranks items by
// Copeland score (number of pairwise wins) — the quality ceiling at
// quadratic cost.
func AllPairsSort(r *Runner, n int, oracle CompareOracle, k int) (*SortResult, error) {
	if n <= 0 {
		return nil, fmt.Errorf("operators: sort over %d items", n)
	}
	if k <= 0 {
		k = 1
	}
	wins := make([]int, n)
	res := &SortResult{Method: "all-pairs"}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			iw, err := comparePair(r, oracle, i, j, k)
			if err != nil {
				return res, err
			}
			res.Comparisons++
			res.VotesUsed += k
			if iw {
				wins[i]++
			} else {
				wins[j]++
			}
		}
	}
	res.Ranking = rankByScore(wins)
	return res, nil
}

// RatingSort asks k workers to rate each item and ranks by aggregated
// score (median for robustness) — linear cost, coarser than comparisons.
func RatingSort(r *Runner, n int, oracle CompareOracle, trueScore func(int) float64, k int) (*SortResult, error) {
	if n <= 0 {
		return nil, fmt.Errorf("operators: sort over %d items", n)
	}
	if k <= 0 {
		k = 1
	}
	res := &SortResult{Method: "rating"}
	scores := make([]float64, n)
	for i := 0; i < n; i++ {
		task, err := r.NewTask(&core.Task{
			Kind:             core.Rating,
			Question:         fmt.Sprintf("Rate %s", oracle.Label(i)),
			GroundTruthScore: trueScore(i),
		})
		if err != nil {
			return res, err
		}
		answers, err := r.Collect(task, k)
		if err != nil {
			return res, err
		}
		res.Ratings += k
		res.VotesUsed += k
		xs := make([]float64, len(answers))
		for ai, a := range answers {
			xs[ai] = a.Score
		}
		scores[i] = stats.Median(xs)
	}
	res.Ranking = rankByFloat(scores)
	return res, nil
}

// HybridSort is the rating-then-compare strategy: cheap ratings order all
// items, then the top refine window is re-sorted with all-pairs
// comparisons. It approaches comparison quality near the top of the list
// at a fraction of quadratic cost.
func HybridSort(r *Runner, n int, oracle CompareOracle, trueScore func(int) float64, ratingK, compareK, refineTop int) (*SortResult, error) {
	base, err := RatingSort(r, n, oracle, trueScore, ratingK)
	if err != nil {
		return base, err
	}
	res := &SortResult{
		Method:    "hybrid",
		Ratings:   base.Ratings,
		VotesUsed: base.VotesUsed,
		Ranking:   base.Ranking,
	}
	if refineTop > n {
		refineTop = n
	}
	if refineTop < 2 {
		return res, nil
	}
	head := append([]int(nil), base.Ranking[:refineTop]...)
	// All-pairs comparisons within the head, Copeland-ranked.
	wins := make(map[int]int, refineTop)
	for a := 0; a < len(head); a++ {
		for b := a + 1; b < len(head); b++ {
			iw, err := comparePair(r, oracle, head[a], head[b], compareK)
			if err != nil {
				return res, err
			}
			res.Comparisons++
			res.VotesUsed += compareK
			if iw {
				wins[head[a]]++
			} else {
				wins[head[b]]++
			}
		}
	}
	sort.SliceStable(head, func(a, b int) bool { return wins[head[a]] > wins[head[b]] })
	copy(res.Ranking[:refineTop], head)
	return res, nil
}

// TopK returns the best k items using a tournament for max followed by
// re-running on the remainder (selection sort over tournaments); cost is
// O(k·n) comparisons with early rounds shared.
func TopK(r *Runner, n, k int, oracle CompareOracle, redundancy int) (*SortResult, error) {
	if k <= 0 || k > n {
		return nil, fmt.Errorf("operators: top-%d of %d items", k, n)
	}
	res := &SortResult{Method: "topk-tournament"}
	remaining := make([]int, n)
	for i := range remaining {
		remaining[i] = i
	}
	for len(res.Ranking) < k {
		// Tournament over remaining items.
		alive := append([]int(nil), remaining...)
		for len(alive) > 1 {
			var next []int
			for i := 0; i+1 < len(alive); i += 2 {
				win, err := comparePair(r, oracle, alive[i], alive[i+1], redundancy)
				if err != nil {
					return res, err
				}
				res.Comparisons++
				res.VotesUsed += redundancy
				if win {
					next = append(next, alive[i])
				} else {
					next = append(next, alive[i+1])
				}
			}
			if len(alive)%2 == 1 {
				next = append(next, alive[len(alive)-1])
			}
			alive = next
		}
		winner := alive[0]
		res.Ranking = append(res.Ranking, winner)
		out := remaining[:0]
		for _, v := range remaining {
			if v != winner {
				out = append(out, v)
			}
		}
		remaining = out
	}
	return res, nil
}

// rankByScore returns indices sorted by descending integer score (stable).
func rankByScore(scores []int) []int {
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })
	return idx
}

// rankByFloat returns indices sorted by descending float score (stable).
func rankByFloat(scores []float64) []int {
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })
	return idx
}

// KendallTau computes the Kendall rank correlation between an inferred
// ranking and a true ranking (both as item-index slices, best first).
// 1 means identical order, -1 reversed.
func KendallTau(inferred, actual []int) (float64, error) {
	n := len(inferred)
	if n != len(actual) {
		return 0, fmt.Errorf("operators: ranking lengths differ (%d vs %d)", n, len(actual))
	}
	if n < 2 {
		return 1, nil
	}
	posA := make(map[int]int, n)
	for r, item := range actual {
		posA[item] = r
	}
	posI := make(map[int]int, n)
	for r, item := range inferred {
		if _, ok := posA[item]; !ok {
			return 0, fmt.Errorf("operators: item %d missing from actual ranking", item)
		}
		posI[item] = r
	}
	if len(posI) != n {
		return 0, fmt.Errorf("operators: inferred ranking has duplicates")
	}
	concordant, discordant := 0, 0
	items := make([]int, 0, n)
	for item := range posA {
		items = append(items, item)
	}
	sort.Ints(items)
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			ia, ib := items[a], items[b]
			dA := posA[ia] - posA[ib]
			dI := posI[ia] - posI[ib]
			if dA*dI > 0 {
				concordant++
			} else if dA*dI < 0 {
				discordant++
			}
		}
	}
	total := n * (n - 1) / 2
	return float64(concordant-discordant) / float64(total), nil
}

// PrecisionAtK measures how many of the inferred top-k items are in the
// true top-k.
func PrecisionAtK(inferred, actual []int, k int) float64 {
	if k <= 0 || k > len(inferred) || k > len(actual) {
		return 0
	}
	truth := make(map[int]bool, k)
	for _, it := range actual[:k] {
		truth[it] = true
	}
	hit := 0
	for _, it := range inferred[:k] {
		if truth[it] {
			hit++
		}
	}
	return float64(hit) / float64(k)
}
