package operators

import (
	"fmt"

	"repro/internal/core"
)

// SkylineOracle supplies the planted per-dimension preferences for the
// crowd skyline operator: DimBetter(d, i, j) reports whether item i truly
// beats item j on dimension d, with a difficulty for the comparison.
type SkylineOracle interface {
	Dimensions() int
	DimBetter(d, i, j int) (better bool, difficulty float64)
	Label(i int) string
	DimName(d int) string
}

// SkylineResult reports a crowd skyline computation.
type SkylineResult struct {
	// Skyline lists the indices of non-dominated items, ascending.
	Skyline []int
	// Comparisons counts dimension-level crowd questions.
	Comparisons int
	// VotesUsed counts answers consumed.
	VotesUsed int
}

// Skyline computes the crowd-powered skyline (Pareto set) of n items over
// the oracle's subjective dimensions: item j dominates item i if j is
// judged at least as good on every dimension and strictly better on one.
// Since "at least as good" needs both directions, each (pair, dimension)
// is resolved with a redundancy-k majority question; a dominance check
// short-circuits on the first dimension where the candidate dominator
// loses.
//
// The implementation follows the block-nested-loop style skyline with
// crowd comparators: candidates are compared against the current skyline
// set only, which keeps question counts far below the full n²·d worst
// case on realistic inputs.
func Skyline(r *Runner, n int, oracle SkylineOracle, k int) (*SkylineResult, error) {
	if n <= 0 {
		return nil, fmt.Errorf("operators: skyline over %d items", n)
	}
	d := oracle.Dimensions()
	if d <= 0 {
		return nil, fmt.Errorf("operators: skyline needs >= 1 dimension")
	}
	if k <= 0 {
		k = 3
	}
	res := &SkylineResult{}

	// betterCache memoizes majority outcomes of (dim, i, j) questions.
	type key struct{ d, i, j int }
	cache := make(map[key]bool)
	better := func(dim, i, j int) (bool, error) {
		if v, ok := cache[key{dim, i, j}]; ok {
			return v, nil
		}
		truthBetter, difficulty := oracle.DimBetter(dim, i, j)
		truthOpt := 1
		if truthBetter {
			truthOpt = 0
		}
		task, err := r.NewTask(&core.Task{
			Kind: core.PairwiseComparison,
			Question: fmt.Sprintf("On %s, which is better: %s or %s?",
				oracle.DimName(dim), oracle.Label(i), oracle.Label(j)),
			Options:     []string{oracle.Label(i), oracle.Label(j)},
			GroundTruth: truthOpt,
			Difficulty:  difficulty,
		})
		if err != nil {
			return false, err
		}
		opt, err := r.MajorityOption(task, k)
		if err != nil {
			return false, err
		}
		res.Comparisons++
		res.VotesUsed += k
		win := opt == 0
		cache[key{dim, i, j}] = win
		cache[key{dim, j, i}] = !win
		return win, nil
	}

	// dominates reports whether a dominates b: a wins or ties every
	// dimension and wins at least one. With binary majority comparisons a
	// tie is unobservable, so we use the strict form: a beats b on every
	// dimension (the standard simplification for subjective skylines).
	dominates := func(a, b int) (bool, error) {
		for dim := 0; dim < d; dim++ {
			win, err := better(dim, a, b)
			if err != nil {
				return false, err
			}
			if !win {
				return false, nil
			}
		}
		return true, nil
	}

	var skyline []int
	for cand := 0; cand < n; cand++ {
		dominated := false
		keep := skyline[:0]
		for _, s := range skyline {
			if dominated {
				keep = append(keep, s)
				continue
			}
			sDominatesCand, err := dominates(s, cand)
			if err != nil {
				return res, err
			}
			if sDominatesCand {
				dominated = true
				keep = append(keep, s)
				continue
			}
			candDominatesS, err := dominates(cand, s)
			if err != nil {
				return res, err
			}
			if !candDominatesS {
				keep = append(keep, s)
			}
		}
		skyline = keep
		if !dominated {
			skyline = append(skyline, cand)
		}
	}
	// Ascending order for determinism.
	for i := 1; i < len(skyline); i++ {
		for j := i; j > 0 && skyline[j] < skyline[j-1]; j-- {
			skyline[j], skyline[j-1] = skyline[j-1], skyline[j]
		}
	}
	res.Skyline = skyline
	return res, nil
}
