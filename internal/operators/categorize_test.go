package operators

import (
	"testing"

	"repro/internal/stats"
)

func animalTaxonomy() *Taxonomy {
	return &Taxonomy{Name: "animal", Children: []*Taxonomy{
		{Name: "mammal", Children: []*Taxonomy{
			{Name: "dog"}, {Name: "cat"}, {Name: "horse"},
		}},
		{Name: "bird", Children: []*Taxonomy{
			{Name: "eagle"}, {Name: "sparrow"},
		}},
		{Name: "reptile", Children: []*Taxonomy{
			{Name: "snake"}, {Name: "lizard"}, {Name: "turtle"},
		}},
	}}
}

func categorizeItems(seed uint64, n int, tax *Taxonomy, difficulty float64) []CategorizeItem {
	rng := stats.NewRNG(seed)
	leaves := tax.Leaves()
	items := make([]CategorizeItem, n)
	for i := range items {
		leaf := leaves[rng.Intn(len(leaves))]
		items[i] = CategorizeItem{
			Question:   "photo of a " + leaf,
			TruthLeaf:  leaf,
			Difficulty: difficulty,
		}
	}
	return items
}

func TestTaxonomyBasics(t *testing.T) {
	tax := animalTaxonomy()
	if err := tax.Validate(); err != nil {
		t.Fatal(err)
	}
	leaves := tax.Leaves()
	if len(leaves) != 8 {
		t.Fatalf("leaves = %v", leaves)
	}
	if tax.Depth() != 2 {
		t.Fatalf("depth = %d", tax.Depth())
	}
	if !tax.contains("turtle") || tax.contains("whale") {
		t.Fatal("contains broken")
	}
	dup := &Taxonomy{Name: "r", Children: []*Taxonomy{{Name: "x"}, {Name: "x"}}}
	if err := dup.Validate(); err == nil {
		t.Fatal("duplicate leaves should fail validation")
	}
	empty := &Taxonomy{Name: "r", Children: []*Taxonomy{{Name: ""}}}
	if err := empty.Validate(); err == nil {
		t.Fatal("empty name should fail validation")
	}
}

func TestCategorizeFlatAndHierarchicalAccuracy(t *testing.T) {
	tax := animalTaxonomy()
	items := categorizeItems(200, 80, tax, 0.1)

	flat, err := CategorizeFlat(reliableRunner(201, 40), items, tax, 3)
	if err != nil {
		t.Fatal(err)
	}
	if flat.Accuracy(items) < 0.85 {
		t.Fatalf("flat accuracy %.3f", flat.Accuracy(items))
	}
	if flat.QuestionsAsked != 80 || flat.VotesUsed != 240 {
		t.Fatalf("flat accounting: %d questions, %d votes", flat.QuestionsAsked, flat.VotesUsed)
	}

	hier, err := CategorizeHierarchical(reliableRunner(201, 40), items, tax, 3)
	if err != nil {
		t.Fatal(err)
	}
	if hier.Accuracy(items) < 0.85 {
		t.Fatalf("hierarchical accuracy %.3f", hier.Accuracy(items))
	}
	// Two levels => exactly 2 questions per item for this taxonomy.
	if hier.QuestionsAsked != 160 {
		t.Fatalf("hierarchical questions = %d, want 160", hier.QuestionsAsked)
	}
}

func TestHierarchicalBeatsFlatOnWideHardTaxonomies(t *testing.T) {
	// A wide taxonomy with confusable items: flat asks one 16-way
	// question (very hard); hierarchical asks two small ones.
	wide := &Taxonomy{Name: "root"}
	for g := 0; g < 4; g++ {
		group := &Taxonomy{Name: string(rune('A' + g))}
		for l := 0; l < 4; l++ {
			group.Children = append(group.Children,
				&Taxonomy{Name: string(rune('A'+g)) + string(rune('0'+l))})
		}
		wide.Children = append(wide.Children, group)
	}
	items := categorizeItems(202, 100, wide, 0.5)
	var flatAcc, hierAcc float64
	for seed := uint64(210); seed < 214; seed++ {
		flat, err := CategorizeFlat(mixedRunner(seed, 50), items, wide, 3)
		if err != nil {
			t.Fatal(err)
		}
		flatAcc += flat.Accuracy(items)
		hier, err := CategorizeHierarchical(mixedRunner(seed, 50), items, wide, 3)
		if err != nil {
			t.Fatal(err)
		}
		hierAcc += hier.Accuracy(items)
	}
	if hierAcc <= flatAcc {
		t.Fatalf("hierarchical %.3f should beat flat %.3f on wide hard taxonomy",
			hierAcc/4, flatAcc/4)
	}
}

func TestCategorizeErrorPropagation(t *testing.T) {
	// With an adversarial first level, hierarchical walks into the wrong
	// subtree and cannot recover — assigned leaf differs from truth.
	tax := animalTaxonomy()
	items := []CategorizeItem{{Question: "a dog", TruthLeaf: "dog", Difficulty: 0.99}}
	res, err := CategorizeHierarchical(mixedRunner(220, 10), items, tax, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Assigned) != 1 {
		t.Fatal("no assignment")
	}
	// Whatever leaf came out must be a real leaf of the taxonomy.
	found := false
	for _, l := range tax.Leaves() {
		if res.Assigned[0] == l {
			found = true
		}
	}
	if !found {
		t.Fatalf("assigned %q is not a leaf", res.Assigned[0])
	}
}

func TestCategorizeValidation(t *testing.T) {
	r := reliableRunner(230, 5)
	leafOnly := &Taxonomy{Name: "x"}
	if _, err := CategorizeFlat(r, nil, leafOnly, 3); err == nil {
		t.Fatal("single-leaf taxonomy should fail flat")
	}
	if _, err := CategorizeHierarchical(r, nil, leafOnly, 3); err == nil {
		t.Fatal("leaf root should fail hierarchical")
	}
}

func TestBinaryInsertionSortCostAndQuality(t *testing.T) {
	d, oracle := rankingData(t, 240, 30)
	r := reliableRunner(241, 100)
	res, err := BinaryInsertionSort(r, 30, oracle, 3)
	if err != nil {
		t.Fatal(err)
	}
	// O(n log n): far fewer than C(30,2)=435 comparisons.
	if res.Comparisons >= 435 {
		t.Fatalf("binary insertion used %d comparisons", res.Comparisons)
	}
	if res.Comparisons < 30 {
		t.Fatalf("implausibly few comparisons: %d", res.Comparisons)
	}
	tau, err := KendallTau(res.Ranking, d.TrueRanking())
	if err != nil {
		t.Fatal(err)
	}
	if tau < 0.75 {
		t.Fatalf("binary insertion tau %.3f", tau)
	}
	if _, err := BinaryInsertionSort(r, 0, oracle, 3); err == nil {
		t.Fatal("n=0 should fail")
	}
}

func TestBinaryInsertionPerfectOracle(t *testing.T) {
	// With trivial difficulty (all gaps large) and reliable workers, the
	// ranking should be exact.
	d, _ := rankingData(t, 242, 8)
	// Spread the scores far apart so comparisons are easy.
	for i := range d.Scores {
		d.Scores[i] = float64(i * 10)
	}
	oracle := rankOracle{d}
	r := reliableRunner(243, 50)
	res, err := BinaryInsertionSort(r, 8, oracle, 3)
	if err != nil {
		t.Fatal(err)
	}
	tau, _ := KendallTau(res.Ranking, d.TrueRanking())
	if tau != 1 {
		t.Fatalf("easy-instance tau = %v", tau)
	}
}
