package operators

import (
	"math"
	"testing"

	"repro/internal/crowd"
	"repro/internal/datagen"
	"repro/internal/stats"
)

func TestCountEstimatesSelectivity(t *testing.T) {
	rng := stats.NewRNG(100)
	d, err := datagen.NewFilterDataset(rng, 5000, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	pop := make([]CountItem, 5000)
	for i := range pop {
		pop[i] = CountItem{Question: "pass?", Truth: d.Pass[i], Difficulty: d.Difficulties[i]}
	}
	r := reliableRunner(101, 80)
	sample := rng.Sample(5000, 300)
	res, err := Count(r, pop, sample, 3)
	if err != nil {
		t.Fatal(err)
	}
	trueCount := 0
	for _, p := range d.Pass {
		if p {
			trueCount++
		}
	}
	if math.Abs(res.Estimate.Count-float64(trueCount)) > 0.15*float64(trueCount) {
		t.Fatalf("count estimate %.0f vs true %d", res.Estimate.Count, trueCount)
	}
	if res.VotesUsed != 900 || res.SampledItems != 300 {
		t.Fatalf("accounting: votes=%d sampled=%d", res.VotesUsed, res.SampledItems)
	}
	// CI should usually bracket the truth.
	if res.Estimate.CountLo > float64(trueCount) || res.Estimate.CountHi < float64(trueCount) {
		t.Logf("CI [%.0f, %.0f] missed truth %d (allowed ~5%% of the time)",
			res.Estimate.CountLo, res.Estimate.CountHi, trueCount)
	}
}

func TestCountValidation(t *testing.T) {
	r := reliableRunner(102, 5)
	if _, err := Count(r, nil, []int{0}, 3); err == nil {
		t.Fatal("empty population should fail")
	}
	pop := []CountItem{{Question: "q"}}
	if _, err := Count(r, pop, nil, 3); err == nil {
		t.Fatal("empty sample should fail")
	}
	if _, err := Count(r, pop, []int{5}, 3); err == nil {
		t.Fatal("out-of-range sample index should fail")
	}
}

func TestMoreSamplesTightenEstimate(t *testing.T) {
	rng := stats.NewRNG(103)
	d, _ := datagen.NewFilterDataset(rng, 4000, 0.5)
	pop := make([]CountItem, 4000)
	for i := range pop {
		pop[i] = CountItem{Question: "pass?", Truth: d.Pass[i], Difficulty: 0.1}
	}
	small, err := Count(reliableRunner(104, 60), pop, rng.Sample(4000, 50), 3)
	if err != nil {
		t.Fatal(err)
	}
	large, err := Count(reliableRunner(104, 60), pop, rng.Sample(4000, 800), 3)
	if err != nil {
		t.Fatal(err)
	}
	if large.Estimate.StdErr >= small.Estimate.StdErr {
		t.Fatalf("stderr did not shrink: %.4f -> %.4f",
			small.Estimate.StdErr, large.Estimate.StdErr)
	}
}

func collectRunner(seed uint64, n, domain, perWorker int) (*Runner, []string) {
	rng := stats.NewRNG(seed)
	ws := crowd.NewPopulation(rng, n, crowd.RegimeReliable)
	items := datagen.CollectionDomain(domain)
	crowd.AssignKnowledge(rng, ws, domain, perWorker, 1.05)
	return NewRunner(crowd.AsCoreWorkers(ws), nil, rng), items
}

func TestCollectCoverageGrows(t *testing.T) {
	r, items := collectRunner(110, 60, 80, 15)
	res, err := Collect(r, "name an entry", &crowd.CollectionDomain{Items: items}, 400)
	if err != nil {
		t.Fatal(err)
	}
	if res.AnswersUsed != 400 {
		t.Fatalf("answers = %d", res.AnswersUsed)
	}
	if len(res.Distinct) < 30 {
		t.Fatalf("found only %d distinct of 80", len(res.Distinct))
	}
	// Coverage curve is monotone non-decreasing.
	for i := 1; i < len(res.CoverageCurve); i++ {
		if res.CoverageCurve[i] < res.CoverageCurve[i-1] {
			t.Fatal("coverage curve decreased")
		}
	}
	if res.CoverageCurve[len(res.CoverageCurve)-1] != len(res.Distinct) {
		t.Fatal("curve endpoint != distinct count")
	}
	// All contributions are real domain entries (reliable crowd).
	valid := map[string]bool{}
	for _, it := range items {
		valid[it] = true
	}
	for _, d := range res.Distinct {
		if !valid[d] {
			t.Fatalf("contributed %q outside domain", d)
		}
	}
}

func TestChao92OnUniformAbundance(t *testing.T) {
	// 50 species each seen 4 times: coverage ~1, estimate ~50.
	freqs := map[string]int{}
	for i := 0; i < 50; i++ {
		freqs[datagen.CollectionDomain(50)[i]] = 4
	}
	est := Chao92(freqs)
	if math.Abs(est-50) > 1 {
		t.Fatalf("Chao92 on saturated sample = %v, want ~50", est)
	}
}

func TestChao92ExtrapolatesBeyondObserved(t *testing.T) {
	// Many singletons imply unseen species: estimate must exceed D.
	freqs := map[string]int{}
	dom := datagen.CollectionDomain(40)
	for i := 0; i < 30; i++ {
		freqs[dom[i]] = 1
	}
	for i := 30; i < 40; i++ {
		freqs[dom[i]] = 3
	}
	est := Chao92(freqs)
	if est <= 40 {
		t.Fatalf("Chao92 = %v, should exceed observed 40 given 30 singletons", est)
	}
}

func TestChao92Degenerate(t *testing.T) {
	if Chao92(nil) != 0 {
		t.Fatal("empty frequencies should give 0")
	}
	// All singletons: degenerate, returns observed count.
	freqs := map[string]int{"a": 1, "b": 1}
	if Chao92(freqs) != 2 {
		t.Fatalf("all-singletons = %v", Chao92(freqs))
	}
	if Chao92(map[string]int{"a": 0}) != 0 {
		t.Fatal("zero counts ignored")
	}
}

func TestChao92TracksTrueDomain(t *testing.T) {
	// Simulated collection over an 80-item domain: once coverage is
	// substantial, the estimate should be in the right ballpark.
	r, items := collectRunner(111, 80, 80, 20)
	res, err := Collect(r, "name an entry", &crowd.CollectionDomain{Items: items}, 600)
	if err != nil {
		t.Fatal(err)
	}
	if res.ChaoEstimate < float64(len(res.Distinct)) {
		t.Fatalf("estimate %v below observed %d", res.ChaoEstimate, len(res.Distinct))
	}
	if res.ChaoEstimate > 3*80 {
		t.Fatalf("estimate %v wildly above true 80", res.ChaoEstimate)
	}
}

func TestCollectValidation(t *testing.T) {
	r, _ := collectRunner(112, 5, 10, 3)
	if _, err := Collect(r, "q", nil, 0); err == nil {
		t.Fatal("asks=0 should fail")
	}
}
