package operators

import (
	"testing"

	"repro/internal/datagen"
	"repro/internal/stats"
)

// rankOracle adapts a datagen.RankingDataset to CompareOracle.
type rankOracle struct{ d *datagen.RankingDataset }

func (o rankOracle) Truth(i, j int) (bool, float64) {
	return o.d.Better(i, j), o.d.PairDifficulty(i, j)
}

func (o rankOracle) Label(i int) string { return o.d.Items[i] }

func rankingData(t *testing.T, seed uint64, n int) (*datagen.RankingDataset, rankOracle) {
	t.Helper()
	d, err := datagen.NewRankingDataset(stats.NewRNG(seed), n)
	if err != nil {
		t.Fatal(err)
	}
	return d, rankOracle{d}
}

func TestKendallTau(t *testing.T) {
	tau, err := KendallTau([]int{0, 1, 2, 3}, []int{0, 1, 2, 3})
	if err != nil || tau != 1 {
		t.Fatalf("identical ranking tau = %v, %v", tau, err)
	}
	tau, err = KendallTau([]int{3, 2, 1, 0}, []int{0, 1, 2, 3})
	if err != nil || tau != -1 {
		t.Fatalf("reversed ranking tau = %v, %v", tau, err)
	}
	if _, err := KendallTau([]int{0, 1}, []int{0, 1, 2}); err == nil {
		t.Fatal("length mismatch should fail")
	}
	if _, err := KendallTau([]int{0, 0}, []int{0, 1}); err == nil {
		t.Fatal("duplicates should fail")
	}
	if _, err := KendallTau([]int{5, 1}, []int{0, 1}); err == nil {
		t.Fatal("unknown item should fail")
	}
	tau, err = KendallTau([]int{7}, []int{7})
	if err != nil || tau != 1 {
		t.Fatalf("singleton tau = %v, %v", tau, err)
	}
}

func TestPrecisionAtK(t *testing.T) {
	inf := []int{1, 2, 3, 4}
	act := []int{2, 1, 9, 9}
	if p := PrecisionAtK(inf, act, 2); p != 1 {
		t.Fatalf("P@2 = %v", p)
	}
	if p := PrecisionAtK(inf, act, 4); p != 0.5 {
		t.Fatalf("P@4 = %v", p)
	}
	if p := PrecisionAtK(inf, act, 0); p != 0 {
		t.Fatalf("P@0 = %v", p)
	}
}

func TestMaxTournamentFindsTrueMax(t *testing.T) {
	d, oracle := rankingData(t, 60, 64)
	trueBest := d.TrueRanking()[0]
	hits := 0
	for seed := uint64(61); seed < 66; seed++ {
		r := reliableRunner(seed, 60)
		res, err := MaxTournament(r, 64, oracle, 3)
		if err != nil {
			t.Fatal(err)
		}
		if res.Comparisons != 63 {
			t.Fatalf("tournament over 64 items used %d comparisons, want 63", res.Comparisons)
		}
		if res.VotesUsed != 63*3 {
			t.Fatalf("votes = %d", res.VotesUsed)
		}
		if res.Winner == trueBest {
			hits++
		}
	}
	if hits < 3 {
		t.Fatalf("tournament found the true max only %d/5 times", hits)
	}
}

func TestMaxTournamentSingleItem(t *testing.T) {
	_, oracle := rankingData(t, 62, 1)
	res, err := MaxTournament(reliableRunner(63, 5), 1, oracle, 3)
	if err != nil || res.Winner != 0 || res.Comparisons != 0 {
		t.Fatalf("singleton tournament: %+v, %v", res, err)
	}
	if _, err := MaxTournament(reliableRunner(63, 5), 0, oracle, 3); err == nil {
		t.Fatal("zero items should fail")
	}
}

func TestAllPairsSortHighTau(t *testing.T) {
	d, oracle := rankingData(t, 64, 20)
	r := reliableRunner(65, 80)
	res, err := AllPairsSort(r, 20, oracle, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Comparisons != 190 {
		t.Fatalf("comparisons = %d, want C(20,2)=190", res.Comparisons)
	}
	tau, err := KendallTau(res.Ranking, d.TrueRanking())
	if err != nil {
		t.Fatal(err)
	}
	if tau < 0.85 {
		t.Fatalf("all-pairs tau = %.3f", tau)
	}
}

func TestRatingSortReasonableTau(t *testing.T) {
	d, oracle := rankingData(t, 66, 20)
	r := reliableRunner(67, 80)
	res, err := RatingSort(r, 20, oracle, func(i int) float64 { return d.Scores[i] }, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ratings != 100 {
		t.Fatalf("ratings = %d, want 100", res.Ratings)
	}
	tau, err := KendallTau(res.Ranking, d.TrueRanking())
	if err != nil {
		t.Fatal(err)
	}
	if tau < 0.6 {
		t.Fatalf("rating tau = %.3f", tau)
	}
}

func TestComparisonsBeatRatings(t *testing.T) {
	// The survey's qualitative result: comparisons give finer rankings
	// than ratings at higher cost. Average tau over seeds.
	var tauAll, tauRate float64
	const trials = 5
	for seed := uint64(70); seed < 70+trials; seed++ {
		d, oracle := rankingData(t, seed, 15)
		ra := reliableRunner(seed*2, 60)
		resA, err := AllPairsSort(ra, 15, oracle, 3)
		if err != nil {
			t.Fatal(err)
		}
		ta, _ := KendallTau(resA.Ranking, d.TrueRanking())
		tauAll += ta

		rr := reliableRunner(seed*2+1, 60)
		resR, err := RatingSort(rr, 15, oracle, func(i int) float64 { return d.Scores[i] }, 3)
		if err != nil {
			t.Fatal(err)
		}
		tr, _ := KendallTau(resR.Ranking, d.TrueRanking())
		tauRate += tr
	}
	if tauAll <= tauRate {
		t.Fatalf("all-pairs mean tau %.3f should beat ratings %.3f",
			tauAll/trials, tauRate/trials)
	}
}

func TestHybridSortImprovesTopOverRating(t *testing.T) {
	// Single noisy ratings leave the head poorly ordered; the comparison
	// refinement should recover ordering quality at the top. Measure the
	// tau of the top-10 prefix against its true relative order.
	headTau := func(ranking []int, d *datagen.RankingDataset) float64 {
		head := append([]int(nil), ranking[:10]...)
		trueHead := append([]int(nil), head...)
		// Sort trueHead by descending true score.
		for i := 1; i < len(trueHead); i++ {
			for j := i; j > 0 && d.Scores[trueHead[j]] > d.Scores[trueHead[j-1]]; j-- {
				trueHead[j], trueHead[j-1] = trueHead[j-1], trueHead[j]
			}
		}
		tau, err := KendallTau(head, trueHead)
		if err != nil {
			t.Fatal(err)
		}
		return tau
	}
	var hybridTau, rateTau float64
	const trials = 6
	for seed := uint64(80); seed < 80+trials; seed++ {
		d, oracle := rankingData(t, seed, 30)

		rr := mixedRunner(seed*3, 80)
		resR, err := RatingSort(rr, 30, oracle, func(i int) float64 { return d.Scores[i] }, 1)
		if err != nil {
			t.Fatal(err)
		}
		rateTau += headTau(resR.Ranking, d)

		rh := mixedRunner(seed*3, 80)
		resH, err := HybridSort(rh, 30, oracle, func(i int) float64 { return d.Scores[i] }, 1, 3, 10)
		if err != nil {
			t.Fatal(err)
		}
		hybridTau += headTau(resH.Ranking, d)
		if resH.Comparisons != 45 {
			t.Fatalf("hybrid refine comparisons = %d, want C(10,2)=45", resH.Comparisons)
		}
	}
	if hybridTau <= rateTau {
		t.Fatalf("hybrid head tau %.3f should beat rating %.3f",
			hybridTau/trials, rateTau/trials)
	}
}

func TestTopKPrecision(t *testing.T) {
	d, oracle := rankingData(t, 90, 24)
	r := reliableRunner(91, 80)
	res, err := TopK(r, 24, 3, oracle, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Ranking) != 3 {
		t.Fatalf("topk returned %d items", len(res.Ranking))
	}
	if p := PrecisionAtK(res.Ranking, d.TrueRanking(), 3); p < 2.0/3.0 {
		t.Fatalf("top-3 precision %.3f", p)
	}
	if _, err := TopK(r, 5, 0, oracle, 3); err == nil {
		t.Fatal("k=0 should fail")
	}
	if _, err := TopK(r, 5, 6, oracle, 3); err == nil {
		t.Fatal("k>n should fail")
	}
}
