package operators

import (
	"fmt"
	"testing"

	"repro/internal/stats"
	"repro/internal/truth"
)

func TestBTSortBeatsMajorityAtSameBudget(t *testing.T) {
	// Same vote budget (k per pair); BT aggregation should at least match
	// Copeland majority, typically beating it on hard instances.
	var btTau, mjTau float64
	const trials = 4
	for seed := uint64(400); seed < 400+trials; seed++ {
		d, oracle := rankingData(t, seed, 18)
		actual := d.TrueRanking()

		rb := mixedRunner(seed*7, 60)
		bt, err := BTSort(rb, 18, oracle, 3)
		if err != nil {
			t.Fatal(err)
		}
		tau, err := KendallTau(bt.Ranking, actual)
		if err != nil {
			t.Fatal(err)
		}
		btTau += tau

		rm := mixedRunner(seed*7, 60)
		mj, err := AllPairsSort(rm, 18, oracle, 3)
		if err != nil {
			t.Fatal(err)
		}
		tau, err = KendallTau(mj.Ranking, actual)
		if err != nil {
			t.Fatal(err)
		}
		mjTau += tau

		if bt.VotesUsed != mj.VotesUsed {
			t.Fatalf("budgets differ: BT %d vs majority %d", bt.VotesUsed, mj.VotesUsed)
		}
	}
	if btTau < mjTau-0.05 {
		t.Fatalf("BT tau %.3f clearly below majority %.3f", btTau/trials, mjTau/trials)
	}
}

func TestBradleyTerryRecoversOrder(t *testing.T) {
	// Noiseless comparisons over 5 items with total order 4>3>2>1>0.
	var comps []truth.Comparison
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			if i == j {
				continue
			}
			for rep := 0; rep < 3; rep++ {
				comps = append(comps, truth.Comparison{I: i, J: j, IWon: i > j})
			}
		}
	}
	res, err := truth.BradleyTerry(5, comps)
	if err != nil {
		t.Fatal(err)
	}
	for r, item := range res.Ranking {
		if item != 4-r {
			t.Fatalf("ranking = %v", res.Ranking)
		}
	}
	// Scores strictly decreasing down the ranking.
	for r := 1; r < 5; r++ {
		if res.Scores[res.Ranking[r]] >= res.Scores[res.Ranking[r-1]] {
			t.Fatalf("scores not ordered: %v", res.Scores)
		}
	}
}

func TestBradleyTerryValidation(t *testing.T) {
	if _, err := truth.BradleyTerry(0, nil); err == nil {
		t.Fatal("n=0 should fail")
	}
	if _, err := truth.BradleyTerry(2, []truth.Comparison{{I: 0, J: 5, IWon: true}}); err == nil {
		t.Fatal("out-of-range comparison should fail")
	}
	if _, err := truth.BradleyTerry(2, []truth.Comparison{{I: 1, J: 1, IWon: true}}); err == nil {
		t.Fatal("self-comparison should fail")
	}
	// No comparisons: uniform scores, identity-ish ranking; no panic.
	res, err := truth.BradleyTerry(3, nil)
	if err != nil || len(res.Ranking) != 3 {
		t.Fatalf("empty comparisons: %v, %v", res, err)
	}
}

func TestBradleyTerryAllWinsRegularized(t *testing.T) {
	// Item 0 wins every game: score must stay finite and top-ranked.
	comps := []truth.Comparison{
		{I: 0, J: 1, IWon: true}, {I: 0, J: 2, IWon: true},
		{I: 1, J: 2, IWon: true},
	}
	res, err := truth.BradleyTerry(3, comps)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ranking[0] != 0 {
		t.Fatalf("ranking = %v", res.Ranking)
	}
	for _, s := range res.Scores {
		if s <= 0 || s > 1e6 {
			t.Fatalf("degenerate score: %v", res.Scores)
		}
	}
}

func schemaFixture() (left, right []Attribute, matchOf map[int]int) {
	left = []Attribute{
		{Name: "phone_number", Example: "555-0101"},
		{Name: "full_name", Example: "Ann Smith"},
		{Name: "dob", Example: "1990-01-02"},
		{Name: "zipcode", Example: "94110"},
	}
	right = []Attribute{
		{Name: "birth_date", Example: "02/01/1990"},
		{Name: "name", Example: "Bob Jones"},
		{Name: "postal_code", Example: "10001"},
		{Name: "telephone", Example: "555-0202"},
		{Name: "loyalty_tier", Example: "gold"},
	}
	matchOf = map[int]int{0: 3, 1: 1, 2: 0, 3: 2}
	return
}

func TestSchemaMatchRecoversMapping(t *testing.T) {
	left, right, want := schemaFixture()
	r := reliableRunner(500, 40)
	res, err := SchemaMatch(r, left, right, SchemaMatchConfig{}, func(l, rr int) bool {
		return want[l] == rr
	})
	if err != nil {
		t.Fatal(err)
	}
	for l, wantR := range want {
		if got, ok := res.Mapping[l]; !ok || got != wantR {
			t.Fatalf("mapping[%d] = %d (ok=%v), want %d; full %v", l, got, ok, wantR, res.Mapping)
		}
	}
	// loyalty_tier stays unmatched.
	for _, rr := range res.Mapping {
		if rr == 4 {
			t.Fatal("unmatched right attribute was mapped")
		}
	}
	if res.VotesUsed == 0 || res.PairsAsked == 0 {
		t.Fatal("no crowd work recorded")
	}
}

func TestSchemaMatchOneToOneConstraint(t *testing.T) {
	left, right, want := schemaFixture()
	r := mixedRunner(501, 40)
	res, err := SchemaMatch(r, left, right, SchemaMatchConfig{Redundancy: 5}, func(l, rr int) bool {
		return want[l] == rr
	})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, rr := range res.Mapping {
		if seen[rr] {
			t.Fatalf("right attribute %d mapped twice: %v", rr, res.Mapping)
		}
		seen[rr] = true
	}
}

func TestSchemaMatchValidation(t *testing.T) {
	r := reliableRunner(502, 5)
	if _, err := SchemaMatch(r, nil, []Attribute{{Name: "x"}}, SchemaMatchConfig{}, nil); err == nil {
		t.Fatal("empty left schema should fail")
	}
}

// gridSkylineOracle plants items on a 2D grid; higher is better on both
// dimensions, gaps scale difficulty.
type gridSkylineOracle struct {
	xs, ys []float64
}

func (o gridSkylineOracle) Dimensions() int { return 2 }

func (o gridSkylineOracle) DimBetter(d, i, j int) (bool, float64) {
	var vi, vj float64
	if d == 0 {
		vi, vj = o.xs[i], o.xs[j]
	} else {
		vi, vj = o.ys[i], o.ys[j]
	}
	gap := vi - vj
	if gap < 0 {
		gap = -gap
	}
	diff := 1 - gap/5
	if diff < 0 {
		diff = 0
	}
	return vi > vj, diff
}

func (o gridSkylineOracle) Label(i int) string { return fmt.Sprintf("item-%d", i) }

func (o gridSkylineOracle) DimName(d int) string { return []string{"price", "quality"}[d] }

func TestSkylineFindsParetoSet(t *testing.T) {
	// Planted grid: items 0..4 form a clean Pareto frontier; 5..9 are
	// strictly dominated.
	oracle := gridSkylineOracle{
		xs: []float64{0, 2.5, 5, 7.5, 10, 0.5, 2, 4, 6, 1},
		ys: []float64{10, 7.5, 5, 2.5, 0, 4, 3, 2, 1, 0.5},
	}
	r := reliableRunner(510, 60)
	res, err := Skyline(r, 10, oracle, 5)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 2, 3, 4}
	if len(res.Skyline) != len(want) {
		t.Fatalf("skyline = %v, want %v", res.Skyline, want)
	}
	for i, v := range want {
		if res.Skyline[i] != v {
			t.Fatalf("skyline = %v, want %v", res.Skyline, want)
		}
	}
	if res.VotesUsed == 0 {
		t.Fatal("no crowd work recorded")
	}
}

func TestSkylineSingleItem(t *testing.T) {
	oracle := gridSkylineOracle{xs: []float64{1}, ys: []float64{1}}
	res, err := Skyline(reliableRunner(511, 5), 1, oracle, 3)
	if err != nil || len(res.Skyline) != 1 || res.Comparisons != 0 {
		t.Fatalf("singleton skyline: %+v, %v", res, err)
	}
	if _, err := Skyline(reliableRunner(511, 5), 0, oracle, 3); err == nil {
		t.Fatal("n=0 should fail")
	}
}

func TestSkylineCacheBoundsQuestions(t *testing.T) {
	oracle := gridSkylineOracle{
		xs: []float64{0, 5, 10, 3, 7},
		ys: []float64{10, 5, 0, 4, 2},
	}
	r := reliableRunner(512, 40)
	res, err := Skyline(r, 5, oracle, 3)
	if err != nil {
		t.Fatal(err)
	}
	// With memoization, at most d * C(n,2) distinct questions.
	if res.Comparisons > 2*10 {
		t.Fatalf("comparisons = %d exceeds distinct question bound", res.Comparisons)
	}
}

var _ = stats.NewRNG // keep the stats import when fixtures change
