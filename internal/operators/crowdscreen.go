package operators

import "fmt"

// OptimalFilter is a CrowdScreen-style dynamically-programmed sequential
// filtering strategy: given the per-answer worker accuracy, the prior
// probability that an item passes, a per-question cost of 1, and a
// penalty for a wrong final decision, it precomputes — for every
// reachable (yes, no) vote state — whether to stop (and how to decide)
// or to buy one more answer.
//
// This is the survey's "strategy grid" view of crowd filtering: fixed-k
// and early-stop heuristics are points in the space of grids; the DP
// finds the cost-optimal grid for the assumed worker model.
type OptimalFilter struct {
	// Accuracy is the assumed per-answer accuracy (must be in (0.5, 1)).
	Accuracy float64
	// Prior is the assumed probability an item truly passes.
	Prior float64
	// MaxVotes bounds the grid depth.
	MaxVotes int
	// ErrorPenalty is the cost of a wrong decision, in units of one
	// answer. Larger penalties buy more votes.
	ErrorPenalty float64

	// decision[y][n]: 0 = continue, 1 = stop-pass, 2 = stop-fail.
	decision [][]int8
}

// NewOptimalFilter validates parameters and solves the DP.
func NewOptimalFilter(accuracy, prior float64, maxVotes int, errorPenalty float64) (*OptimalFilter, error) {
	if accuracy <= 0.5 || accuracy >= 1 {
		return nil, fmt.Errorf("operators: worker accuracy %v outside (0.5, 1)", accuracy)
	}
	if prior <= 0 || prior >= 1 {
		return nil, fmt.Errorf("operators: prior %v outside (0, 1)", prior)
	}
	if maxVotes < 1 {
		return nil, fmt.Errorf("operators: max votes %d < 1", maxVotes)
	}
	if errorPenalty <= 0 {
		return nil, fmt.Errorf("operators: error penalty %v must be positive", errorPenalty)
	}
	f := &OptimalFilter{
		Accuracy: accuracy, Prior: prior,
		MaxVotes: maxVotes, ErrorPenalty: errorPenalty,
	}
	f.solve()
	return f, nil
}

// posterior returns P(item passes | y yes votes, n no votes).
func (f *OptimalFilter) posterior(y, n int) float64 {
	p, pi := f.Accuracy, f.Prior
	// Likelihood ratios stay in log space to avoid under/overflow at deep
	// grids.
	num := pi
	den := 1 - pi
	// Multiply iteratively; y+n <= MaxVotes is small (tens), so direct
	// products are fine numerically for p in (0.5, 1).
	for i := 0; i < y; i++ {
		num *= p
		den *= 1 - p
	}
	for i := 0; i < n; i++ {
		num *= 1 - p
		den *= p
	}
	if num+den == 0 {
		return 0.5
	}
	return num / (num + den)
}

// solve fills the decision grid by backward induction over y+n.
func (f *OptimalFilter) solve() {
	m := f.MaxVotes
	value := make([][]float64, m+1)
	f.decision = make([][]int8, m+1)
	for y := 0; y <= m; y++ {
		value[y] = make([]float64, m+1-y)
		f.decision[y] = make([]int8, m+1-y)
	}
	for total := m; total >= 0; total-- {
		for y := 0; y <= total; y++ {
			n := total - y
			post := f.posterior(y, n)
			// Expected penalty of stopping now.
			passCost := f.ErrorPenalty * (1 - post) // accept: wrong if item fails
			failCost := f.ErrorPenalty * post       // reject: wrong if item passes
			best := passCost
			dec := int8(1)
			if failCost < best {
				best = failCost
				dec = 2
			}
			if total < m {
				// P(next answer is yes | state).
				pYes := post*f.Accuracy + (1-post)*(1-f.Accuracy)
				cont := 1 + pYes*value[y+1][n] + (1-pYes)*value[y][n+1]
				if cont < best {
					best = cont
					dec = 0
				}
			}
			value[y][n] = best
			f.decision[y][n] = dec
		}
	}
}

// Name implements FilterStrategy.
func (f *OptimalFilter) Name() string {
	return fmt.Sprintf("crowdscreen-p%.2f-e%.0f", f.Accuracy, f.ErrorPenalty)
}

// Decide implements FilterStrategy by looking up the precomputed grid.
func (f *OptimalFilter) Decide(yes, no int) (bool, bool) {
	if yes < 0 || no < 0 || yes+no > f.MaxVotes {
		// Off-grid (shouldn't happen): decide by posterior.
		return f.posterior(yes, no) >= 0.5, true
	}
	switch f.decision[yes][no] {
	case 1:
		return true, true
	case 2:
		return false, true
	default:
		return false, false
	}
}

// ExpectedVotes returns the DP's expected number of answers per item
// under the assumed model — the a-priori cost of the strategy.
func (f *OptimalFilter) ExpectedVotes() float64 {
	var walk func(y, n int, prob float64) float64
	walk = func(y, n int, prob float64) float64 {
		if prob < 1e-12 {
			return 0
		}
		if _, done := f.Decide(y, n); done {
			return 0
		}
		post := f.posterior(y, n)
		pYes := post*f.Accuracy + (1-post)*(1-f.Accuracy)
		return prob + walk(y+1, n, prob*pYes) + walk(y, n+1, prob*(1-pYes))
	}
	return walk(0, 0, 1)
}
