package operators

import (
	"fmt"

	"repro/internal/core"
)

// CollectResult reports a crowdsourced enumeration run.
type CollectResult struct {
	// Distinct holds the unique contributed values in first-seen order.
	Distinct []string
	// AnswersUsed is the number of contributions collected (including
	// duplicates and empties).
	AnswersUsed int
	// CoverageCurve[i] is the number of distinct values after i+1 answers
	// — the saturation curve of open-world collection.
	CoverageCurve []int
	// Sequence records each contribution in arrival order ("" for empty
	// answers), enabling exact prefix re-analysis.
	Sequence []string
	// Frequencies counts how often each distinct value was contributed.
	Frequencies map[string]int
	// ChaoEstimate is the Chao92 species-richness estimate of the true
	// domain size implied by the sample, 0 when undefined.
	ChaoEstimate float64
}

// Collect runs the crowd collection (enumeration) operator: it issues
// `asks` open collection tasks carrying the given payload (the domain
// handle interpreted by the worker implementation) and deduplicates the
// contributed values. Unlike choice tasks, each ask is a fresh task, so
// the same worker may contribute repeatedly — the open-world model of
// CROWD tables.
func Collect(r *Runner, question string, payload any, asks int) (*CollectResult, error) {
	if asks <= 0 {
		return nil, fmt.Errorf("operators: asks must be positive (got %d)", asks)
	}
	res := &CollectResult{Frequencies: make(map[string]int)}
	for i := 0; i < asks; i++ {
		task, err := r.NewTask(&core.Task{
			Kind:     core.Collection,
			Question: question,
			Payload:  payload,
		})
		if err != nil {
			return res, err
		}
		a, err := r.One(task)
		if err != nil {
			return res, err
		}
		res.AnswersUsed++
		v := a.Text
		res.Sequence = append(res.Sequence, v)
		if v != "" {
			if res.Frequencies[v] == 0 {
				res.Distinct = append(res.Distinct, v)
			}
			res.Frequencies[v]++
		}
		res.CoverageCurve = append(res.CoverageCurve, len(res.Distinct))
	}
	res.ChaoEstimate = Chao92(res.Frequencies)
	return res, nil
}

// Chao92 estimates the true number of distinct values ("species") in an
// open domain from contribution frequencies, using the coverage-based
// Chao92 estimator:
//
//	C_hat = 1 - f1/n                                (sample coverage)
//	gamma² = max(D/C_hat · Σ i(i-1)f_i / (n(n-1)) - 1, 0)
//	N_hat = D/C_hat + n(1-C_hat)/C_hat · gamma²
//
// where n is the number of contributions, D the distinct count, f1 the
// number of singletons and f_i the number of values seen exactly i times.
// This is the estimator the crowdsourced-enumeration literature uses to
// decide when a collection query is "complete enough". It returns 0 when
// the estimate is undefined (no data), and D when coverage is zero
// (every value a singleton — the estimator degenerates; callers should
// keep collecting).
func Chao92(freqs map[string]int) float64 {
	n := 0
	d := 0
	f1 := 0
	sumII := 0 // Σ i(i-1) f_i
	for _, c := range freqs {
		if c <= 0 {
			continue
		}
		n += c
		d++
		if c == 1 {
			f1++
		}
		sumII += c * (c - 1)
	}
	if n == 0 || d == 0 {
		return 0
	}
	cHat := 1 - float64(f1)/float64(n)
	if cHat <= 0 {
		// All singletons: no abundance information.
		return float64(d)
	}
	dHat := float64(d) / cHat
	gamma2 := 0.0
	if n > 1 {
		gamma2 = dHat*float64(sumII)/(float64(n)*float64(n-1)) - 1
		if gamma2 < 0 {
			gamma2 = 0
		}
	}
	return dHat + float64(n)*(1-cHat)/cHat*gamma2
}
