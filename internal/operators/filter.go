package operators

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/core"
)

// FilterStrategy decides, after each answer to a boolean predicate task,
// whether to stop and with what decision. It sees the running yes/no vote
// counts — the state space of the CrowdScreen strategy grid.
type FilterStrategy interface {
	// Decide returns done=true when the strategy terminates at this state,
	// along with the pass/fail decision at that point.
	Decide(yes, no int) (pass, done bool)
	// Name identifies the strategy in experiment output.
	Name() string
}

// FixedK asks exactly K workers and takes the majority (ties fail).
type FixedK struct{ K int }

// Name implements FilterStrategy.
func (s FixedK) Name() string { return fmt.Sprintf("fixed-%d", s.K) }

// Decide implements FilterStrategy.
func (s FixedK) Decide(yes, no int) (bool, bool) {
	if yes+no < s.K {
		return false, false
	}
	return yes > no, true
}

// EarlyStop stops as soon as one side leads by Margin, with a MaxVotes
// cap (majority at the cap). This is the classic "gambler's ruin" shaped
// strategy from the filtering literature: easy items stop after Margin
// agreeing answers, contentious ones run to the cap.
type EarlyStop struct {
	Margin   int
	MaxVotes int
}

// Name implements FilterStrategy.
func (s EarlyStop) Name() string { return fmt.Sprintf("early-m%d-max%d", s.Margin, s.MaxVotes) }

// Decide implements FilterStrategy.
func (s EarlyStop) Decide(yes, no int) (bool, bool) {
	diff := yes - no
	if diff >= s.Margin {
		return true, true
	}
	if -diff >= s.Margin {
		return false, true
	}
	if yes+no >= s.MaxVotes {
		return yes > no, true
	}
	return false, false
}

// SPRT is Wald's sequential probability ratio test assuming workers answer
// correctly with probability Accuracy: it stops when the posterior
// likelihood ratio clears the error bounds derived from target false
// positive/negative rates Alpha and Beta.
type SPRT struct {
	// Accuracy is the assumed per-answer worker accuracy (> 0.5).
	Accuracy float64
	// Alpha and Beta are the target false-positive and false-negative
	// rates (e.g. 0.05 each).
	Alpha, Beta float64
	// MaxVotes caps the walk (majority at the cap).
	MaxVotes int
}

// Name implements FilterStrategy.
func (s SPRT) Name() string { return fmt.Sprintf("sprt-p%.2f", s.Accuracy) }

// Decide implements FilterStrategy.
func (s SPRT) Decide(yes, no int) (bool, bool) {
	p := s.Accuracy
	if p <= 0.5 || p >= 1 {
		p = 0.8
	}
	alpha, beta := s.Alpha, s.Beta
	if alpha <= 0 || alpha >= 1 {
		alpha = 0.05
	}
	if beta <= 0 || beta >= 1 {
		beta = 0.05
	}
	// Log-likelihood ratio of "item passes" vs "item fails": each yes
	// contributes log(p/(1-p)), each no the negative.
	step := math.Log(p / (1 - p))
	llr := float64(yes-no) * step
	upper := math.Log((1 - beta) / alpha)
	lower := math.Log(beta / (1 - alpha))
	if llr >= upper {
		return true, true
	}
	if llr <= lower {
		return false, true
	}
	if s.MaxVotes > 0 && yes+no >= s.MaxVotes {
		return yes > no, true
	}
	return false, false
}

// FilterItem describes one item of a crowd-filter run.
type FilterItem struct {
	// Question is shown to workers.
	Question string
	// Truth is the planted predicate value (for simulated workers and
	// evaluation); use false when unknown.
	Truth bool
	// Difficulty in [0,1].
	Difficulty float64
}

// FilterResult reports a crowd-filter run.
type FilterResult struct {
	// Decisions holds the per-item pass/fail outcomes.
	Decisions []bool
	// VotesPerItem records how many answers each item consumed.
	VotesPerItem []int
	// TotalVotes is the summed cost.
	TotalVotes int
	// Strategy echoes the strategy name.
	Strategy string
}

// Accuracy compares decisions to the planted truth.
func (fr *FilterResult) Accuracy(items []FilterItem) float64 {
	if len(items) == 0 || len(items) != len(fr.Decisions) {
		return 0
	}
	correct := 0
	for i, it := range items {
		if fr.Decisions[i] == it.Truth {
			correct++
		}
	}
	return float64(correct) / float64(len(items))
}

// Filter runs the crowd-filter operator: for each item it asks workers a
// yes/no predicate task one answer at a time until the strategy stops.
// When the worker pool is exhausted for an item the current majority is
// taken; budget exhaustion aborts with the partial result and the error.
func Filter(r *Runner, items []FilterItem, strategy FilterStrategy) (*FilterResult, error) {
	if strategy == nil {
		return nil, fmt.Errorf("operators: nil filter strategy")
	}
	res := &FilterResult{
		Decisions:    make([]bool, len(items)),
		VotesPerItem: make([]int, len(items)),
		Strategy:     strategy.Name(),
	}
	for i, it := range items {
		truthOpt := 0
		if it.Truth {
			truthOpt = 1
		}
		task, err := r.NewTask(&core.Task{
			Kind:        core.SingleChoice,
			Question:    it.Question,
			Options:     []string{"no", "yes"},
			GroundTruth: truthOpt,
			Difficulty:  it.Difficulty,
		})
		if err != nil {
			return res, err
		}
		yes, no := 0, 0
		for {
			pass, done := strategy.Decide(yes, no)
			if done {
				res.Decisions[i] = pass
				break
			}
			a, err := r.One(task)
			if err != nil {
				if errors.Is(err, ErrNoWorkers) {
					res.Decisions[i] = yes > no
					break
				}
				res.TotalVotes += yes + no
				res.VotesPerItem[i] = yes + no
				return res, err
			}
			if a.Option == 1 {
				yes++
			} else {
				no++
			}
		}
		res.VotesPerItem[i] = yes + no
		res.TotalVotes += yes + no
	}
	return res, nil
}
