package operators

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/cost"
)

// SchemaMatchConfig parameterizes crowd-powered schema matching: given the
// attribute names (optionally with example values) of two source schemas,
// find the 1:1 correspondence between them. The machine prunes clearly
// unrelated attribute pairs by name/value similarity; the crowd verifies
// the rest; a greedy weighted matching enforces the 1:1 constraint.
type SchemaMatchConfig struct {
	// PruneLow is the similarity below which attribute pairs are never
	// asked. Zero means the default (0.02 — schema pair spaces are tiny,
	// so pruning only needs to cut the obviously unrelated pairs);
	// negative disables pruning entirely (every pair is asked), which is
	// right when attributes carry numeric examples with no shared text.
	PruneLow float64
	// Redundancy is votes per pair question (default 3).
	Redundancy int
	// Sim overrides the similarity used for pruning and difficulty.
	Sim cost.Similarity
}

// Attribute describes one schema attribute presented to workers.
type Attribute struct {
	Name string
	// Example is a sample value shown alongside the name (workers match
	// far better with instances than with bare names).
	Example string
}

// describe renders the attribute for a question.
func (a Attribute) describe() string {
	if a.Example == "" {
		return a.Name
	}
	return fmt.Sprintf("%s (e.g. %q)", a.Name, a.Example)
}

// SchemaMatchResult reports a schema-matching run.
type SchemaMatchResult struct {
	// Mapping maps left attribute index -> right attribute index; absent
	// keys are unmatched.
	Mapping map[int]int
	// PairsAsked counts crowd questions.
	PairsAsked int
	// Pruned counts pairs skipped by similarity.
	Pruned int
	// VotesUsed counts answers consumed.
	VotesUsed int
}

// SchemaMatch matches the attributes of two schemas. truthMatch, when
// non-nil, supplies the planted correspondence for simulated workers:
// truthMatch(l, r) reports whether left attribute l truly corresponds to
// right attribute r.
func SchemaMatch(r *Runner, left, right []Attribute, cfg SchemaMatchConfig, truthMatch func(l, rIdx int) bool) (*SchemaMatchResult, error) {
	if len(left) == 0 || len(right) == 0 {
		return nil, fmt.Errorf("operators: schema match needs non-empty schemas")
	}
	if cfg.Redundancy <= 0 {
		cfg.Redundancy = 3
	}
	if cfg.PruneLow == 0 {
		cfg.PruneLow = 0.02
	}
	sim := cfg.Sim
	if sim == nil {
		sim = cost.CombinedSimilarity
	}
	res := &SchemaMatchResult{Mapping: make(map[int]int)}

	type scored struct {
		l, r  int
		sim   float64
		votes int // yes votes
	}
	var candidates []scored
	for li, la := range left {
		for ri, ra := range right {
			s := 0.5*sim(la.Name, ra.Name) + 0.5*sim(la.Example, ra.Example)
			if s < cfg.PruneLow {
				res.Pruned++
				continue
			}
			candidates = append(candidates, scored{l: li, r: ri, sim: s})
		}
	}
	// Ask the crowd about each surviving pair.
	type verdict struct {
		l, r int
		conf float64 // fraction of yes votes
	}
	var matches []verdict
	for _, c := range candidates {
		truthOpt := -1
		if truthMatch != nil {
			if truthMatch(c.l, c.r) {
				truthOpt = 1
			} else {
				truthOpt = 0
			}
		}
		difficulty := clampDiff(1 - 2*absDiff(c.sim-0.5))
		task, err := r.NewTask(&core.Task{
			Kind: core.SingleChoice,
			Question: fmt.Sprintf("Do these attributes mean the same thing?\nA: %s\nB: %s",
				left[c.l].describe(), right[c.r].describe()),
			Options:     []string{"different", "same"},
			GroundTruth: truthOpt,
			Difficulty:  difficulty,
		})
		if err != nil {
			return res, err
		}
		answers, err := r.Collect(task, cfg.Redundancy)
		if err != nil {
			return res, err
		}
		res.PairsAsked++
		res.VotesUsed += len(answers)
		yes := 0
		for _, a := range answers {
			if a.Option == 1 {
				yes++
			}
		}
		if yes*2 > len(answers) {
			matches = append(matches, verdict{c.l, c.r, float64(yes) / float64(len(answers))})
		}
	}
	// Greedy 1:1 matching by confidence (stable order for determinism).
	sort.SliceStable(matches, func(a, b int) bool {
		if matches[a].conf != matches[b].conf {
			return matches[a].conf > matches[b].conf
		}
		if matches[a].l != matches[b].l {
			return matches[a].l < matches[b].l
		}
		return matches[a].r < matches[b].r
	})
	usedRight := make(map[int]bool)
	for _, m := range matches {
		if _, taken := res.Mapping[m.l]; taken || usedRight[m.r] {
			continue
		}
		res.Mapping[m.l] = m.r
		usedRight[m.r] = true
	}
	return res, nil
}

func clampDiff(v float64) float64 {
	if v < 0.05 {
		return 0.05
	}
	if v > 0.95 {
		return 0.95
	}
	return v
}

func absDiff(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
