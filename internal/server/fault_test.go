package server

import (
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/assign"
	"repro/internal/core"
	"repro/internal/crowd"
	"repro/internal/stats"
)

// newLeaseTestServer wires a lease-enabled server; unlike newTestServer it
// registers srv.Close so the reaper goroutine dies with the test.
func newLeaseTestServer(t *testing.T, pool *core.Pool, budget *core.Budget, opts ...Option) (*httptest.Server, *Client, *Server) {
	t.Helper()
	srv, err := New(pool, assign.FewestAnswers{}, budget, nil,
		append([]Option{WithShards(testShards())}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts, NewClient(ts.URL), srv
}

// TestLeaseReissueAfterDropout is the acceptance scenario for the lease
// machinery: dropout workers claim every slot and vanish without
// submitting; after the TTL the slots are reclaimed and honest workers
// collect full redundancy within the exact budget.
func TestLeaseReissueAfterDropout(t *testing.T) {
	const (
		tasks = 10
		k     = 3 // one answer from each honest worker
		ttl   = 250 * time.Millisecond
	)
	rng := stats.NewRNG(50)
	pool := testPool(rng, tasks)
	budget := core.NewBudget(tasks * k)
	_, client, srv := newLeaseTestServer(t, pool, budget, WithLeaseTTL(ttl))

	// Phase 1: three dropout workers lease every task and never submit.
	for _, w := range []string{"d1", "d2", "d3"} {
		for i := 0; i < tasks; i++ {
			if _, ok, err := client.FetchTask(w); err != nil || !ok {
				t.Fatalf("dropout %s fetch %d: ok=%v err=%v", w, i, ok, err)
			}
		}
	}
	st, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.ActiveLeases != tasks*k {
		t.Fatalf("active leases = %d, want %d (every slot claimed)", st.ActiveLeases, tasks*k)
	}
	if st.TotalAnswers != 0 || st.BudgetSpent != 0 {
		t.Fatalf("dropouts spent budget without answering: %+v", st)
	}

	// Phase 2: let every lease expire, then drive honest workers.
	time.Sleep(2 * ttl)
	for i := 0; i < k; i++ {
		w := crowd.NewWorker(fmt.Sprintf("h%d", i), 4, crowd.Honest, rng)
		// Cap at tasks: an uncapped drive's final fetch would see the
		// exactly-spent budget as a 409 instead of a 204.
		n, err := client.DriveWorker(w, pool.Task, tasks)
		if err != nil {
			t.Fatalf("honest worker %s: %v", w.ID(), err)
		}
		if n != tasks {
			t.Fatalf("honest worker %s answered %d tasks, want %d", w.ID(), n, tasks)
		}
	}

	st, err = client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.ActiveLeases != 0 {
		t.Fatalf("leases outstanding after all submissions: %d", st.ActiveLeases)
	}
	if st.ExpiredLeases != tasks*k {
		t.Fatalf("expired leases = %d, want %d", st.ExpiredLeases, tasks*k)
	}
	if st.BudgetSpent != tasks*k {
		t.Fatalf("budget spent = %v, want %d (only committed answers pay)", st.BudgetSpent, tasks*k)
	}
	srv.Close() // stop the reaper before touching the pool directly
	for _, id := range srv.cpool.TaskIDs() {
		if got := srv.cpool.AnswerCount(id); got != k {
			t.Fatalf("task %d has %d answers, want redundancy %d", id, got, k)
		}
	}
}

// TestLeaseConsumedOnSubmit: the issued -> submitted transition releases
// the lease without the expiry path firing.
func TestLeaseConsumedOnSubmit(t *testing.T) {
	rng := stats.NewRNG(51)
	pool := testPool(rng, 2)
	_, client, srv := newLeaseTestServer(t, pool, nil, WithLeaseTTL(time.Minute))

	dto, ok, err := client.FetchTask("w1")
	if err != nil || !ok {
		t.Fatalf("fetch: ok=%v err=%v", ok, err)
	}
	st, _ := client.Stats()
	if st.ActiveLeases != 1 {
		t.Fatalf("active leases = %d, want 1", st.ActiveLeases)
	}
	if err := client.SubmitAnswer(AnswerDTO{Task: dto.ID, Worker: "w1", Option: 1}); err != nil {
		t.Fatal(err)
	}
	st, _ = client.Stats()
	if st.ActiveLeases != 0 || st.ExpiredLeases != 0 {
		t.Fatalf("submission should consume the lease, not expire it: %+v", st)
	}
	if srv.ExpiredLeases() != 0 {
		t.Fatal("reaper reclaimed a consumed lease")
	}
}

// TestReaperExpiresLeases: reclamation must not depend on /api/task
// traffic — the background reaper alone returns abandoned slots.
func TestReaperExpiresLeases(t *testing.T) {
	rng := stats.NewRNG(52)
	pool := testPool(rng, 1)
	_, client, _ := newLeaseTestServer(t, pool, nil,
		WithLeaseTTL(25*time.Millisecond), WithReaperInterval(10*time.Millisecond))

	if _, ok, err := client.FetchTask("ghost"); err != nil || !ok {
		t.Fatalf("fetch: ok=%v err=%v", ok, err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		// Only /api/stats polls from here on: stats never sweeps leases, so
		// reaching zero proves the reaper did it.
		st, err := client.Stats()
		if err != nil {
			t.Fatal(err)
		}
		if st.ActiveLeases == 0 && st.ExpiredLeases == 1 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("reaper never reclaimed the lease: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestConcurrentChurnReachesRedundancy races honest workers against
// dropout workers that keep claiming leases and walking away. Run under
// -race; the pool must still reach one answer per honest worker per task.
func TestConcurrentChurnReachesRedundancy(t *testing.T) {
	const (
		tasks  = 12
		honest = 4
		churn  = 3 // ~30% more workers, all dropouts
	)
	rng := stats.NewRNG(53)
	pool := testPool(rng, tasks)
	_, client, srv := newLeaseTestServer(t, pool, nil,
		WithLeaseTTL(20*time.Millisecond), WithReaperInterval(10*time.Millisecond))

	var wg sync.WaitGroup
	for i := 0; i < churn; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := fmt.Sprintf("churn%d", i)
			// Claim slots without ever submitting; each claim strands a lease
			// until the reaper reclaims it.
			for j := 0; j < 40; j++ {
				if _, _, err := client.FetchTask(w); err != nil {
					t.Errorf("churn %s: %v", w, err)
					return
				}
				time.Sleep(time.Millisecond)
			}
		}(i)
	}
	errs := make(chan error, honest)
	// Workers are built before the goroutines launch: rng.Split is not safe
	// for concurrent use on one parent stream.
	hws := make([]*crowd.Worker, honest)
	for i := range hws {
		hws[i] = crowd.NewWorker(fmt.Sprintf("h%d", i), 4, crowd.Honest, rng)
	}
	for i := 0; i < honest; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := hws[i]
			did := 0
			deadline := time.Now().Add(10 * time.Second)
			// DriveWorker exits when every open slot is momentarily leased by
			// a churner; keep driving until this worker has covered the pool.
			for did < tasks {
				n, err := client.DriveWorker(w, pool.Task, 0)
				if err != nil {
					errs <- fmt.Errorf("worker %s: %w", w.ID(), err)
					return
				}
				did += n
				if time.Now().After(deadline) {
					errs <- fmt.Errorf("worker %s stuck at %d/%d tasks", w.ID(), did, tasks)
					return
				}
				if n == 0 {
					time.Sleep(2 * time.Millisecond)
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	srv.Close() // stop the reaper before direct pool reads
	for _, id := range srv.cpool.TaskIDs() {
		if got := srv.cpool.AnswerCount(id); got != honest {
			t.Fatalf("task %d has %d answers, want %d", id, got, honest)
		}
	}
	if srv.ExpiredLeases() == 0 {
		t.Fatal("no leases expired; the churners never stranded a slot")
	}
}

// TestClientTimeoutOnStalledServer: a client pointed at a server that
// accepts connections but never responds must give up within its
// configured timeout, not hang.
func TestClientTimeoutOnStalledServer(t *testing.T) {
	stall := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-stall
	}))
	t.Cleanup(func() { close(stall); ts.Close() })

	client := NewClient(ts.URL,
		WithTimeout(100*time.Millisecond),
		WithRetry(1, 10*time.Millisecond, 20*time.Millisecond))
	start := time.Now()
	_, _, err := client.FetchTask("w1")
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("stalled server produced no error")
	}
	// 2 attempts x 100ms + one backoff sleep, with generous slack.
	if elapsed > 2*time.Second {
		t.Fatalf("client took %v against a stalled server", elapsed)
	}
}

// TestClientRetriesOn5xx: transient server failures are retried with
// backoff until an attempt succeeds.
func TestClientRetriesOn5xx(t *testing.T) {
	var attempts atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if attempts.Add(1) <= 2 {
			http.Error(w, `{"error":"transient"}`, http.StatusInternalServerError)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	}))
	t.Cleanup(ts.Close)

	client := NewClient(ts.URL, WithRetry(3, time.Millisecond, 2*time.Millisecond))
	_, ok, err := client.FetchTask("w1")
	if err != nil || ok {
		t.Fatalf("after retries: ok=%v err=%v", ok, err)
	}
	if got := attempts.Load(); got != 3 {
		t.Fatalf("server saw %d attempts, want 3 (2 failures + success)", got)
	}
}

// TestClientDoesNotRetry4xx: rejections are the client's fault and must
// surface immediately — retrying a duplicate answer cannot help.
func TestClientDoesNotRetry4xx(t *testing.T) {
	var attempts atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts.Add(1)
		http.Error(w, `{"error":"no such task"}`, http.StatusNotFound)
	}))
	t.Cleanup(ts.Close)

	client := NewClient(ts.URL, WithRetry(5, time.Millisecond, 2*time.Millisecond))
	_, _, err := client.FetchTask("w1")
	if err == nil {
		t.Fatal("404 should be an error")
	}
	var ae *APIError
	if !errors.As(err, &ae) || ae.StatusCode != http.StatusNotFound || ae.Retryable() {
		t.Fatalf("want non-retryable 404 APIError, got %v", err)
	}
	if got := attempts.Load(); got != 1 {
		t.Fatalf("server saw %d attempts, want exactly 1", got)
	}
}

// TestDriveWorkerConflictCap: a platform that rejects every submission
// must fail the drive loop instead of spinning on fetch/reject forever.
func TestDriveWorkerConflictCap(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /api/task", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, TaskDTO{ID: 1, Kind: "single-choice", Question: "?", Options: []string{"no", "yes"}})
	})
	mux.HandleFunc("POST /api/answer", func(w http.ResponseWriter, r *http.Request) {
		httpError(w, http.StatusConflict, "always conflicted")
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)

	rng := stats.NewRNG(54)
	w := crowd.NewWorker("w1", 3, crowd.Honest, rng)
	client := NewClient(ts.URL, WithRetry(-1, 0, 0))
	done, err := client.DriveWorker(w, nil, 0)
	if err == nil {
		t.Fatal("endless conflicts should surface as an error")
	}
	if done != 0 {
		t.Fatalf("done = %d, want 0", done)
	}
	if !strings.Contains(err.Error(), "consecutive rejected submissions") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// TestDriveWorkerStopsOnAbandon: a dropout worker ends its drive cleanly;
// the claimed lease is left for the server to reclaim.
func TestDriveWorkerStopsOnAbandon(t *testing.T) {
	rng := stats.NewRNG(55)
	pool := testPool(rng, 3)
	_, client, _ := newLeaseTestServer(t, pool, nil, WithLeaseTTL(time.Minute))

	w := crowd.NewDropoutWorker(crowd.NewWorker("w1", 3, crowd.Honest, rng), 1, rng)
	done, err := client.DriveWorker(w, pool.Task, 0)
	if err != nil || done != 0 {
		t.Fatalf("abandoning drive: done=%d err=%v", done, err)
	}
	st, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.ActiveLeases != 1 {
		t.Fatalf("active leases = %d, want the 1 stranded claim", st.ActiveLeases)
	}
}

// TestHealthz: the liveness probe responds on a plain and a lease-enabled
// server.
func TestHealthz(t *testing.T) {
	rng := stats.NewRNG(56)
	_, client := newTestServer(t, testPool(rng, 2), nil, nil)
	if err := client.Health(); err != nil {
		t.Fatalf("healthz on plain server: %v", err)
	}
	_, lclient, _ := newLeaseTestServer(t, testPool(rng, 2), nil, WithLeaseTTL(time.Minute))
	if err := lclient.Health(); err != nil {
		t.Fatalf("healthz on lease server: %v", err)
	}
}

// TestServerCloseIdempotent: Close is safe to call repeatedly and without
// leases enabled.
func TestServerCloseIdempotent(t *testing.T) {
	rng := stats.NewRNG(57)
	srv, err := New(testPool(rng, 1), assign.FewestAnswers{}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	srv.Close()
	srv.Close()
	lsrv, err := New(testPool(rng, 1), assign.FewestAnswers{}, nil, nil, WithLeaseTTL(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	lsrv.Close()
	lsrv.Close()
}
