package server

import (
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/obs"
)

// Trace query surface: the span flight recorder's read side.
//
//	GET /api/trace/{id}                              -> span tree for one trace
//	GET /api/traces?endpoint=&min_ms=&limit=         -> recent/slow trace index
//	GET /api/cql/session/{name}/query/{qid}/trace    -> a CQL query's trace
//
// The endpoints are mounted bare (uninstrumented, like /metrics): reading
// a trace must not mint spans of its own, or debugging inflates the very
// buffer being debugged.

// WithTracing enables the span flight recorder: requests, pool-shard
// operations, WAL appends, EM runs, and CQL plan stages record spans into
// c, retrievable by the echoed X-Trace-Id via /api/trace/{id}. A nil
// collector leaves tracing off; a server built without this option runs
// the nil-collector fast path everywhere (spans are just start times).
func WithTracing(c *obs.Collector) Option {
	return func(s *Server) { s.traceCol = c }
}

// TraceCollector exposes the server's collector (nil when tracing is
// off); tests and embedders read traces directly through it.
func (s *Server) TraceCollector() *obs.Collector { return s.traceCol }

// mountTrace adds the trace read endpoints (called from New when
// WithTracing was given).
func (s *Server) mountTrace() {
	s.mux.HandleFunc("GET /api/trace/{id}", s.handleTrace)
	s.mux.HandleFunc("GET /api/traces", s.handleTraces)
	if s.cqlMgr != nil {
		s.mux.HandleFunc("GET /api/cql/session/{name}/query/{qid}/trace", s.handleCQLQueryTrace)
	}
}

// TraceDTO is the wire form of one trace: its spans in start order, each
// carrying its parent link, so clients can rebuild the tree.
type TraceDTO struct {
	TraceID string `json:"trace_id"`
	// Complete is false while the root span has not ended (e.g. a crowd
	// query still running) — the span list may still grow.
	Complete bool `json:"complete"`
	Error    bool `json:"error,omitempty"`
	// DurationMS is the root span's duration (0 until complete).
	DurationMS float64   `json:"duration_ms"`
	Spans      []SpanDTO `json:"spans"`
}

// SpanDTO is the wire form of one span. IDs are hex strings; ParentID ""
// marks a root span. StartMS offsets the span from the trace's earliest
// span start.
type SpanDTO struct {
	SpanID     string         `json:"span_id"`
	ParentID   string         `json:"parent_id,omitempty"`
	Name       string         `json:"name"`
	StartMS    float64        `json:"start_ms"`
	DurationMS float64        `json:"duration_ms"`
	Error      string         `json:"error,omitempty"`
	Attrs      map[string]any `json:"attrs,omitempty"`
	Events     []SpanEventDTO `json:"events,omitempty"`
}

// SpanEventDTO is one in-span point event, offset from the span's start.
type SpanEventDTO struct {
	Name  string         `json:"name"`
	AtMS  float64        `json:"at_ms"`
	Attrs map[string]any `json:"attrs,omitempty"`
}

// TraceSummaryDTO is one row of the /api/traces index.
type TraceSummaryDTO struct {
	TraceID    string  `json:"trace_id"`
	Endpoint   string  `json:"endpoint"`
	Start      string  `json:"start"`
	DurationMS float64 `json:"duration_ms"`
	Spans      int     `json:"spans"`
	Error      bool    `json:"error,omitempty"`
}

func durMS(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func attrMap(attrs []obs.Attr) map[string]any {
	if len(attrs) == 0 {
		return nil
	}
	m := make(map[string]any, len(attrs))
	for _, a := range attrs {
		m[a.Key] = a.Value()
	}
	return m
}

// traceDTO renders a collector snapshot. Spans come back in completion
// order; re-sort by start time so the tree reads top-down.
func traceDTO(td obs.TraceData) TraceDTO {
	out := TraceDTO{TraceID: td.TraceID, Complete: td.Complete, Error: td.Err}
	if len(td.Spans) == 0 {
		out.Spans = []SpanDTO{}
		return out
	}
	spans := td.Spans
	base := spans[0].Start
	for _, sd := range spans[1:] {
		if sd.Start.Before(base) {
			base = sd.Start
		}
	}
	out.Spans = make([]SpanDTO, 0, len(spans))
	for _, sd := range spans {
		dto := SpanDTO{
			SpanID:     fmt.Sprintf("%016x", sd.SpanID),
			Name:       sd.Name,
			StartMS:    durMS(sd.Start.Sub(base)),
			DurationMS: durMS(sd.Duration),
			Error:      sd.Err,
			Attrs:      attrMap(sd.Attrs),
		}
		if sd.ParentID != 0 {
			dto.ParentID = fmt.Sprintf("%016x", sd.ParentID)
		}
		for _, ev := range sd.Events {
			dto.Events = append(dto.Events, SpanEventDTO{
				Name:  ev.Name,
				AtMS:  durMS(ev.Time.Sub(sd.Start)),
				Attrs: attrMap(ev.Attrs),
			})
		}
		if sd.ParentID == 0 && sd.Duration > 0 {
			out.DurationMS = durMS(sd.Duration)
		}
		out.Spans = append(out.Spans, dto)
	}
	sortSpansByStart(out.Spans)
	return out
}

func sortSpansByStart(spans []SpanDTO) {
	// Insertion sort: span counts are small (bounded by MaxSpans) and the
	// completion order is already nearly sorted by start.
	for i := 1; i < len(spans); i++ {
		for j := i; j > 0 && less(spans[j], spans[j-1]); j-- {
			spans[j], spans[j-1] = spans[j-1], spans[j]
		}
	}
}

func less(a, b SpanDTO) bool {
	if a.StartMS != b.StartMS {
		return a.StartMS < b.StartMS
	}
	return a.SpanID < b.SpanID
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	td, ok := s.traceCol.Trace(id)
	if !ok {
		httpError(w, http.StatusNotFound,
			fmt.Sprintf("trace %q not found (expired, sampled out, or never recorded)", id))
		return
	}
	writeJSON(w, traceDTO(td))
}

func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	f := obs.TraceFilter{Endpoint: q.Get("endpoint")}
	if v := q.Get("min_ms"); v != "" {
		n, err := strconv.ParseFloat(v, 64)
		if err != nil || n < 0 {
			httpError(w, http.StatusBadRequest, "bad min_ms")
			return
		}
		f.MinDuration = time.Duration(n * float64(time.Millisecond))
	}
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			httpError(w, http.StatusBadRequest, "bad limit")
			return
		}
		f.Limit = n
	}
	sums := s.traceCol.Traces(f)
	out := make([]TraceSummaryDTO, 0, len(sums))
	for _, t := range sums {
		out = append(out, TraceSummaryDTO{
			TraceID:    t.TraceID,
			Endpoint:   t.Endpoint,
			Start:      t.Start.UTC().Format(time.RFC3339Nano),
			DurationMS: durMS(t.Duration),
			Spans:      t.Spans,
			Error:      t.Err,
		})
	}
	writeJSON(w, out)
}

// handleCQLQueryTrace surfaces a query handle's trace: each CQL query
// runs under a fresh trace ID (the executing HTTP request's span ends
// long before a crowd query does), carried on the handle and in every
// page response as trace_id.
func (s *Server) handleCQLQueryTrace(w http.ResponseWriter, r *http.Request) {
	ms := s.cqlSession(w, r)
	if ms == nil {
		return
	}
	qid := r.PathValue("qid")
	q, ok := ms.Query(qid)
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Sprintf("unknown query %q", qid))
		return
	}
	tid := q.TraceID()
	if tid == "" {
		httpError(w, http.StatusNotFound, fmt.Sprintf("query %q has no trace (tracing off)", qid))
		return
	}
	td, ok := s.traceCol.Trace(tid)
	if !ok {
		httpError(w, http.StatusNotFound,
			fmt.Sprintf("trace %q for query %q not found (expired or sampled out)", tid, qid))
		return
	}
	writeJSON(w, traceDTO(td))
}
