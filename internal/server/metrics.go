package server

import (
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"

	"repro/internal/obs"
)

// TraceHeader is the HTTP header carrying the request trace ID. A client
// may supply its own (any non-empty value is adopted verbatim); otherwise
// the server mints one. The response always echoes the header, and every
// request log line carries the same ID, so one grep joins a worker-side
// failure to the server's view of the request.
const TraceHeader = "X-Trace-Id"

// WithMetrics enables the observability layer on a registry owned by the
// caller: per-endpoint request counters, status-class counters, and
// latency histograms; budget / pool / lease gauges; EM convergence
// telemetry from /api/results inference runs; and the /metrics exposition
// endpoint. A server built without this option carries zero
// instrumentation on the request path (the handlers are mounted bare).
func WithMetrics(reg *obs.Registry) Option {
	return func(s *Server) { s.metricsReg = reg }
}

// WithPprof mounts net/http/pprof under /debug/pprof/ on the server mux.
// Profiling endpoints are opt-in: they expose stacks and heap contents,
// so they stay off unless explicitly requested.
func WithPprof() Option {
	return func(s *Server) { s.pprofOn = true }
}

// WithRequestLog enables structured per-request logging to logger: one
// Info record per request with the trace ID, method, path, status, and
// duration. Works with or without WithMetrics.
func WithRequestLog(logger *slog.Logger) Option {
	return func(s *Server) { s.reqLog = logger }
}

// serverObs bundles the per-endpoint instruments and the request logger.
// It exists only when WithMetrics, WithRequestLog, or WithTracing was
// given; a nil *serverObs means the handler chain is completely bare.
type serverObs struct {
	reg       *obs.Registry // nil when only request logging is on
	logger    *slog.Logger  // nil when only metrics are on
	em        *obs.EMMetrics
	endpoints map[string]*endpointMetrics
}

// endpointMetrics holds one route's instruments. All fields are nil when
// metrics are off (log-only mode); obs metrics no-op through nil.
type endpointMetrics struct {
	latency *obs.Histogram
	classes [6]*obs.Counter // index code/100: classes[2] = 2xx, ...
}

func newServerObs(reg *obs.Registry, logger *slog.Logger) *serverObs {
	return &serverObs{
		reg:       reg,
		logger:    logger,
		em:        obs.NewEMMetrics(reg),
		endpoints: make(map[string]*endpointMetrics),
	}
}

// endpoint builds (at wiring time, not per request) the instruments for
// one route.
func (o *serverObs) endpoint(route string) *endpointMetrics {
	if m, ok := o.endpoints[route]; ok {
		return m
	}
	m := &endpointMetrics{}
	if o.reg != nil {
		el := obs.L("endpoint", route)
		m.latency = o.reg.Histogram("crowdkit_http_request_seconds", obs.DefLatencyBuckets, el)
		for c := 1; c <= 5; c++ {
			m.classes[c] = o.reg.Counter("crowdkit_http_requests_total",
				el, obs.L("code", classLabel(c)))
		}
	}
	o.endpoints[route] = m
	return m
}

func classLabel(c int) string {
	return string([]byte{byte('0' + c), 'x', 'x'})
}

// statusWriter captures the response status for metrics and logs.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// instrument wraps one route's handler with tracing, metrics, and request
// logging. With observability off it returns the handler untouched, so
// the uninstrumented server is bit-for-bit the old handler chain.
func (s *Server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	if s.obsv == nil {
		return h
	}
	m := s.obsv.endpoint(route)
	logger := s.obsv.logger
	col := s.traceCol // nil = tracing off: WithCollector and the span no-op
	return func(w http.ResponseWriter, r *http.Request) {
		ctx := obs.WithCollector(r.Context(), col)
		if id := r.Header.Get(TraceHeader); id != "" {
			ctx = obs.WithTraceID(ctx, id)
		}
		ctx, span := obs.StartSpan(ctx, route)
		w.Header().Set(TraceHeader, span.TraceID)
		if span.Recording() {
			span.SetAttr(obs.Str("method", r.Method), obs.Str("path", r.URL.Path))
		}
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h(sw, r.WithContext(ctx))
		if span.Recording() {
			span.SetAttr(obs.Int("status", int64(sw.code)))
			if sw.code >= 500 {
				span.SetError(fmt.Errorf("HTTP %d", sw.code))
			}
		}
		d := span.EndTo(m.latency)
		if c := sw.code / 100; c >= 1 && c <= 5 {
			m.classes[c].Inc()
		}
		if logger != nil {
			logger.LogAttrs(ctx, slog.LevelInfo, "request",
				slog.String("trace", span.TraceID),
				slog.String("method", r.Method),
				slog.String("path", r.URL.Path),
				slog.Int("status", sw.code),
				slog.Duration("duration", d),
			)
		}
	}
}

// resultsMetrics instruments the incremental results pipeline. The zero
// value (metrics off) is all nil counters, which no-op — the serving path
// increments unconditionally.
type resultsMetrics struct {
	warmHits     *obs.Counter // EM runs seeded from a previous result
	warmMisses   *obs.Counter // EM runs that fell back to cold start
	deltaBuilds  *obs.Counter // datasets extended via AppendDelta
	fullBuilds   *obs.Counter // datasets rebuilt via FromPool
	groupSkips   *obs.Counter // groups re-served unchanged (no build, no inference)
	flightShared *obs.Counter // pollers that piggybacked on another's run
	staleServes  *obs.Counter // responses served from the last complete result
}

// wireObservability mounts the exposition and profiling endpoints and
// registers the pull-style gauges. Called by New after the options are
// applied and the core state exists.
func (s *Server) wireObservability() {
	if s.metricsReg != nil || s.reqLog != nil || s.traceCol != nil {
		s.obsv = newServerObs(s.metricsReg, s.reqLog)
	}
	if s.traceCol != nil && s.metricsReg != nil {
		s.traceCol.RegisterMetrics(s.metricsReg)
	}
	if s.metricsReg != nil {
		s.budget.RegisterMetrics(s.metricsReg)
		s.cpool.RegisterMetrics(s.metricsReg)
		s.metricsReg.RegisterCounter("crowdkit_leases_expired_total", &s.expired)
		reg := s.metricsReg
		s.resM = resultsMetrics{
			warmHits:     reg.Counter("crowdkit_results_warm_hits_total"),
			warmMisses:   reg.Counter("crowdkit_results_warm_misses_total"),
			deltaBuilds:  reg.Counter("crowdkit_results_delta_builds_total"),
			fullBuilds:   reg.Counter("crowdkit_results_full_builds_total"),
			groupSkips:   reg.Counter("crowdkit_results_group_skips_total"),
			flightShared: reg.Counter("crowdkit_results_flight_shared_total"),
			staleServes:  reg.Counter("crowdkit_results_stale_serves_total"),
		}
		if s.store != nil {
			s.store.RegisterMetrics(s.metricsReg)
		}
		if s.cqlMgr != nil {
			s.wireCQLObservability()
		}
	}
}

// mountDebug adds /metrics and (opt-in) /debug/pprof to the mux. The
// exposition endpoint is served straight from the registry and is not
// self-instrumented — scrapes should not inflate the request metrics
// they read.
func (s *Server) mountDebug() {
	if s.metricsReg != nil {
		s.mux.Handle("GET /metrics", s.metricsReg.Handler())
	}
	if s.pprofOn {
		// pprof.Index dispatches /debug/pprof/<profile> (heap, goroutine,
		// block, ...) itself; the named handlers cover the non-lookup
		// endpoints.
		s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
}

// emObserver returns the observer handed to /api/results inference runs,
// or nil (free) when metrics are off.
func (s *Server) emObserver() obs.EMObserver {
	if s.obsv == nil || s.obsv.reg == nil {
		return nil
	}
	return s.obsv.em
}
