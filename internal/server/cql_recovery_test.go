package server

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/assign"
	"repro/internal/core"
	"repro/internal/cql"
	"repro/internal/durable"
)

// durableCQLServer boots a server with both the durable store (dataDir)
// and the query service with catalog persistence (cqlDir) mounted — the
// in-process equivalent of `crowdserve -data-dir ... -cql-dir ...`.
func durableCQLServer(t *testing.T, dataDir, cqlDir string, units float64) (*httptest.Server, *Server, *durable.Store, *durable.RecoveryInfo, *core.Budget) {
	t.Helper()
	store, info, err := durable.Open(dataDir, durable.Options{Fsync: durable.FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	budget := core.NewBudget(units)
	pool := AdoptRecovered(store, budget, nil)
	srv, err := New(pool, assign.FewestAnswers{}, budget, nil,
		WithShards(testShards()),
		WithDurability(store),
		WithCQL(CQLConfig{Dir: cqlDir, Redundancy: 3, ExecuteGrace: 5 * time.Millisecond}),
		WithLeaseTTL(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(func() { ts.Close(); srv.Close() })
	return ts, srv, store, info, budget
}

// cqlPrepare registers a named prepared statement over HTTP.
func cqlPrepare(t *testing.T, base, session, name, src string) {
	t.Helper()
	if code := doJSON(t, "POST", base+"/api/cql/session/"+session+"/prepare",
		CQLExecuteDTO{Name: name, Src: src}, nil); code != http.StatusOK {
		t.Fatalf("prepare %q: status %d", name, code)
	}
}

const cqlSeedSQL = `
	CREATE TABLE pets (id INT, kind STRING);
	INSERT INTO pets VALUES (1,'beagle'),(2,'poodle'),(3,'husky')`

// TestCQLSessionsSurviveCrash pins the session-durability tentpole: after
// kill -9, reopening the same -data-dir + -cql-dir brings back every
// session that was open at crash time with its catalog and prepared
// statements intact — while a session that was closed gracefully before
// the crash stays closed.
func TestCQLSessionsSurviveCrash(t *testing.T) {
	dataDir, cqlDir := t.TempDir(), t.TempDir()
	ts, _, store, info, _ := durableCQLServer(t, dataDir, cqlDir, 50)
	if !info.Empty() {
		t.Fatalf("expected empty data dir, recovered %+v", info)
	}
	cqlCreate(t, ts.URL, "etl")
	cqlPrepare(t, ts.URL, "etl", "kinds", `SELECT kind FROM pets ORDER BY id`)
	cqlExecuteDone(t, ts.URL, "etl", cqlSeedSQL)
	cqlCreate(t, ts.URL, "scratch")
	if code := doJSON(t, "DELETE", ts.URL+"/api/cql/session/scratch", nil, nil); code != http.StatusOK {
		t.Fatalf("close scratch: status %d", code)
	}
	store.Crash()

	ts2, _, _, info2, _ := durableCQLServer(t, dataDir, cqlDir, 50)
	if info2.CQLSessions != 1 || info2.CQLRunningQueries != 0 || info2.CQLOpenQuestions != 0 {
		t.Fatalf("recovery info %+v, want exactly one idle session", info2)
	}
	var list CQLSessionListDTO
	if code := doJSON(t, "GET", ts2.URL+"/api/cql/sessions", nil, &list); code != http.StatusOK {
		t.Fatalf("list sessions: status %d", code)
	}
	if len(list.Sessions) != 1 || list.Sessions[0] != "etl" {
		t.Fatalf("recovered sessions %v, want [etl] (scratch closed gracefully)", list.Sessions)
	}
	// The prepared statement and the catalog it reads both came back:
	// executing by name against the restored session sees the seeded rows.
	var page cql.QueryPage
	if code := doJSON(t, "POST", ts2.URL+"/api/cql/session/etl/execute",
		CQLExecuteDTO{Prepared: "kinds"}, &page); code != http.StatusOK {
		t.Fatalf("execute prepared after restart: status %d", code)
	}
	if page.Status != cql.QueryDone || len(page.Rows) != 3 {
		t.Fatalf("prepared query after restart: %+v, want 3 rows done", page)
	}
}

// TestCQLCrashMidCrowdQueryReconcilesBudget is the budget-reconciliation
// golden test from the issue: crash with a crowd question at seen=1 of
// k=3, restart, and require /api/stats to match — stat for stat — a
// never-crashed control that received one answer and then canceled. The
// recovered server must also report the mid-flight query as "recovered"
// rather than 404ing its pollers.
func TestCQLCrashMidCrowdQueryReconcilesBudget(t *testing.T) {
	crowdSQL := `SELECT * FROM pets WHERE CROWDFILTER('is it a dog?', kind)`

	// askOneAnswer drives a server to the shared checkpoint: crowd query
	// running, exactly one answer acked.
	askOneAnswer := func(base string) (*Client, cql.QueryPage) {
		cqlCreate(t, base, "s")
		cqlExecuteDone(t, base, "s", cqlSeedSQL)
		client := NewClient(base)
		page := cqlExecute(t, base, "s", crowdSQL)
		if page.Status != cql.QueryRunning {
			t.Fatalf("crowd query resolved with no workers: %+v", page)
		}
		waitStats(t, client, "question published", func(st *StatsDTO) bool { return st.OpenTasks == 1 })
		dto, ok, err := client.FetchTask("w1")
		if err != nil || !ok {
			t.Fatalf("FetchTask: %v", err)
		}
		if err := client.SubmitAnswer(AnswerDTO{Task: dto.ID, Worker: "w1", Option: 1}); err != nil {
			t.Fatal(err)
		}
		waitStats(t, client, "answer recorded", func(st *StatsDTO) bool { return st.TotalAnswers == 1 })
		return client, page
	}

	// Control: same checkpoint, then a clean cancel.
	ctl, _ := newCQLTestServer(t, core.NewBudget(50), CQLConfig{Redundancy: 3},
		WithLeaseTTL(time.Minute))
	control, cpage := askOneAnswer(ctl.URL)
	if st := cqlCancel(t, ctl.URL, "s", cpage.Query); st != cql.QueryCanceled {
		t.Fatalf("control cancel status = %s", st)
	}
	want := waitStats(t, control, "control quiesced", func(st *StatsDTO) bool {
		return st.BudgetSpent == 1 && st.OpenTasks == 0
	})

	// Crash target: same checkpoint, then the store dies mid-query.
	dataDir, cqlDir := t.TempDir(), t.TempDir()
	ts, _, store, _, _ := durableCQLServer(t, dataDir, cqlDir, 50)
	_, page := askOneAnswer(ts.URL)
	store.Crash()

	ts2, _, _, info, budget := durableCQLServer(t, dataDir, cqlDir, 50)
	if info.CQLSessions != 1 || info.CQLRunningQueries != 1 || info.CQLOpenQuestions != 1 {
		t.Fatalf("recovery info %+v, want 1 session / 1 running query / 1 open question", info)
	}
	// The orphaned handle is pollable and terminal, not a 404.
	rp := cqlPoll(t, ts2.URL, "s", page.Query, "", 0)
	if rp.Status != cql.QueryRecovered || rp.Error == "" {
		t.Fatalf("orphaned query polls as %+v, want status %q with an explanation", rp, cql.QueryRecovered)
	}
	// The golden comparison: reconciliation refunded reserved − refunded,
	// so the crashed server's stats equal the canceled control's exactly.
	got, err := NewClient(ts2.URL).Stats()
	if err != nil {
		t.Fatal(err)
	}
	if *got != *want {
		t.Fatalf("recovered stats %+v diverge from never-crashed control %+v", got, want)
	}
	if got.BudgetSpent != 1 || budget.Spent() != 1 {
		t.Fatalf("spent %v (stats) / %v (budget), want exactly the one acked answer", got.BudgetSpent, budget.Spent())
	}
}
