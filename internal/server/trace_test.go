package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/assign"
	"repro/internal/cql"
	"repro/internal/durable"
	"repro/internal/obs"
	"repro/internal/stats"
)

// getTrace fetches one trace DTO; ok is false on 404.
func getTrace(t *testing.T, base, id string) (TraceDTO, bool) {
	t.Helper()
	var dto TraceDTO
	code := doJSON(t, "GET", base+"/api/trace/"+id, nil, &dto)
	if code == http.StatusNotFound {
		return dto, false
	}
	if code != http.StatusOK {
		t.Fatalf("GET /api/trace/%s: status %d", id, code)
	}
	return dto, true
}

// spanNames indexes a trace's spans by name (span names in one request
// trace are unique in these tests).
func spanNames(dto TraceDTO) map[string]SpanDTO {
	m := make(map[string]SpanDTO, len(dto.Spans))
	for _, sp := range dto.Spans {
		m[sp.Name] = sp
	}
	return m
}

// TestAnswerTraceLinksLayers pins the tentpole acceptance path: submit
// an answer against a durable (fsync-always) tracing server, read back
// the trace by the echoed X-Trace-Id, and find linked spans from the
// HTTP, pool-shard, and WAL layers in one tree.
func TestAnswerTraceLinksLayers(t *testing.T) {
	store, _, err := durable.Open(t.TempDir(), durable.Options{Fsync: durable.FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(3)
	pool := testPool(rng, 4)
	col := obs.NewCollector(obs.CollectorOptions{})
	srv, err := New(pool, assign.FewestAnswers{}, nil, nil,
		WithShards(testShards()), WithDurability(store), WithTracing(col))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(func() { ts.Close(); srv.Close() })

	// Fetch a task, then submit the answer with a raw request so the
	// echoed X-Trace-Id is observable.
	client := NewClient(ts.URL)
	dto, ok, err := client.FetchTask("w1")
	if err != nil || !ok {
		t.Fatalf("FetchTask: %v %v", ok, err)
	}
	body, _ := json.Marshal(AnswerDTO{Task: dto.ID, Worker: "w1", Option: 1})
	resp, err := http.Post(ts.URL+"/api/answer", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("answer rejected: %d", resp.StatusCode)
	}
	tid := resp.Header.Get(TraceHeader)
	if tid == "" {
		t.Fatal("no X-Trace-Id echoed")
	}

	trace, ok := getTrace(t, ts.URL, tid)
	if !ok {
		t.Fatalf("trace %s not retrievable", tid)
	}
	if !trace.Complete || trace.Error {
		t.Fatalf("trace = %+v, want complete and error-free", trace)
	}
	spans := spanNames(trace)
	root, ok := spans["/api/answer"]
	if !ok || root.ParentID != "" {
		t.Fatalf("missing HTTP root span: %+v", trace.Spans)
	}
	for _, name := range []string{"core.record", "wal.append", "wal.fsync"} {
		sp, ok := spans[name]
		if !ok {
			t.Fatalf("span %s missing from answer trace: %+v", name, trace.Spans)
		}
		if sp.ParentID != root.SpanID {
			t.Errorf("span %s parent = %s, want HTTP root %s", name, sp.ParentID, root.SpanID)
		}
	}
	if got := spans["core.record"].Attrs["task"]; got != float64(dto.ID) {
		t.Errorf("core.record task attr = %v, want %v", got, dto.ID)
	}
	if got := root.Attrs["status"]; got != float64(200) {
		t.Errorf("root status attr = %v, want 200", got)
	}

	// The assignment request traced too, with the policy span under it.
	sums := tracesIndex(t, ts.URL, "endpoint=/api/task")
	if len(sums) != 1 {
		t.Fatalf("task traces = %+v, want 1", sums)
	}
	taskTrace, ok := getTrace(t, ts.URL, sums[0].TraceID)
	if !ok {
		t.Fatal("task trace not retrievable")
	}
	if _, ok := spanNames(taskTrace)["core.assign"]; !ok {
		t.Fatalf("core.assign span missing: %+v", taskTrace.Spans)
	}
}

// tracesIndex fetches /api/traces with a raw query string.
func tracesIndex(t *testing.T, base, query string) []TraceSummaryDTO {
	t.Helper()
	url := base + "/api/traces"
	if query != "" {
		url += "?" + query
	}
	var out []TraceSummaryDTO
	if code := doJSON(t, "GET", url, nil, &out); code != http.StatusOK {
		t.Fatalf("GET /api/traces?%s: status %d", query, code)
	}
	return out
}

func TestTraceEndpointsValidation(t *testing.T) {
	col := obs.NewCollector(obs.CollectorOptions{})
	srv, err := New(testPool(stats.NewRNG(1), 2), assign.FewestAnswers{}, nil, nil,
		WithShards(testShards()), WithTracing(col))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(func() { ts.Close(); srv.Close() })

	if _, ok := getTrace(t, ts.URL, "deadbeefdeadbeef"); ok {
		t.Fatal("unknown trace id should 404")
	}
	for _, q := range []string{"min_ms=nope", "min_ms=-1", "limit=x", "limit=-2"} {
		if code := doJSON(t, "GET", ts.URL+"/api/traces?"+q, nil, nil); code != http.StatusBadRequest {
			t.Errorf("query %q: status %d, want 400", q, code)
		}
	}
	// A couple of requests, then the index filters by endpoint.
	client := NewClient(ts.URL)
	if _, _, err := client.FetchTask("w1"); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Stats(); err != nil {
		t.Fatal(err)
	}
	if got := tracesIndex(t, ts.URL, "endpoint=/api/stats"); len(got) != 1 || got[0].Endpoint != "/api/stats" {
		t.Fatalf("endpoint filter = %+v", got)
	}
	if got := tracesIndex(t, ts.URL, "min_ms=60000"); len(got) != 0 {
		t.Fatalf("min_ms filter = %+v, want none", got)
	}
}

// TestCQLQueryTraceSpans pins the CrowdQL acceptance path: a crowd
// query's trace — fetched through the query-handle trace route — shows
// the statement and plan-stage spans and one child span per crowd
// question whose events record publish, each answer arrival, and close.
func TestCQLQueryTraceSpans(t *testing.T) {
	col := obs.NewCollector(obs.CollectorOptions{})
	ts, _ := newCQLTestServer(t, nil, CQLConfig{Redundancy: 2}, WithTracing(col))
	base := ts.URL
	client := NewClient(base)
	workers := []string{"w1", "w2"}

	cqlCreate(t, base, "crowd")
	cqlExecuteDone(t, base, "crowd", `
		CREATE TABLE pets (id INT, kind STRING);
		INSERT INTO pets VALUES (1,'beagle'),(2,'poodle')`)

	page := cqlExecute(t, base, "crowd",
		`SELECT * FROM pets WHERE CROWDFILTER('is it a dog?', kind)`)
	if page.TraceID == "" {
		t.Fatal("running crowd query page carries no trace_id")
	}
	qid := page.Query
	traceURL := fmt.Sprintf("%s/api/cql/session/crowd/query/%s/trace", base, qid)

	// Mid-flight: the pending trace is already readable through the
	// handle route (crowd queries run for a long time).
	var mid TraceDTO
	if code := doJSON(t, "GET", traceURL, nil, &mid); code != http.StatusOK {
		t.Fatalf("mid-flight trace: status %d", code)
	}
	if mid.Complete {
		t.Fatal("trace complete while the query is still running")
	}
	if mid.TraceID != page.TraceID {
		t.Fatalf("trace route id %s != page trace_id %s", mid.TraceID, page.TraceID)
	}

	deadline := time.Now().Add(10 * time.Second)
	for page.Status == cql.QueryRunning {
		if time.Now().After(deadline) {
			t.Fatalf("crowd query never finished: %+v", page)
		}
		answerRound(t, client, workers, 1)
		time.Sleep(time.Millisecond)
		page = cqlPoll(t, base, "crowd", qid, "", 0)
	}
	if page.Status != cql.QueryDone {
		t.Fatalf("query status %s error %q", page.Status, page.Error)
	}

	var trace TraceDTO
	if code := doJSON(t, "GET", traceURL, nil, &trace); code != http.StatusOK {
		t.Fatalf("final trace: status %d", code)
	}
	if !trace.Complete {
		t.Fatal("trace not complete after query done")
	}

	var (
		rootID    string
		questions []SpanDTO
		stages    int
	)
	byID := map[string]SpanDTO{}
	for _, sp := range trace.Spans {
		byID[sp.SpanID] = sp
		switch {
		case sp.Name == "cql.query":
			rootID = sp.SpanID
		case sp.Name == "cql.question":
			questions = append(questions, sp)
		case len(sp.Name) > 10 && sp.Name[:10] == "cql.stage.":
			stages++
		}
	}
	if rootID == "" {
		t.Fatalf("no cql.query root span: %+v", trace.Spans)
	}
	if stages == 0 {
		t.Fatalf("no cql.stage.* spans: %+v", trace.Spans)
	}
	// One child span per crowd question (two rows at the filter).
	if len(questions) != 2 {
		t.Fatalf("got %d cql.question spans, want 2", len(questions))
	}
	for _, q := range questions {
		if q.Attrs["redundancy"] != float64(2) {
			t.Errorf("question span attrs = %v, want redundancy 2", q.Attrs)
		}
		// Ancestry: question -> ... -> cql.query root.
		seen := 0
		for cur := q; cur.ParentID != ""; {
			p, ok := byID[cur.ParentID]
			if !ok {
				t.Fatalf("question span %s has dangling parent %s", q.SpanID, cur.ParentID)
			}
			cur = p
			if seen++; seen > len(trace.Spans) {
				t.Fatal("parent cycle")
			}
		}
		// The lifecycle events, in order: publish, two answers, close.
		var names []string
		answers := 0
		for _, ev := range q.Events {
			names = append(names, ev.Name)
			if ev.Name == "answer" {
				answers++
			}
		}
		if len(names) < 4 || names[0] != "publish" || names[len(names)-1] != "close" {
			t.Errorf("question events = %v, want publish ... close", names)
		}
		if answers != 2 {
			t.Errorf("question recorded %d answer events, want 2", answers)
		}
	}

	// The execute request's own HTTP trace is separate from the query's.
	if sums := tracesIndex(t, ts.URL, "endpoint=/api/cql/execute"); len(sums) == 0 {
		t.Error("execute request left no HTTP trace")
	} else if sums[0].TraceID == page.TraceID {
		t.Error("query trace must not reuse the execute request's trace ID")
	}
}

// TestTracingOffIdentity pins the free-when-off contract at the API
// surface: without WithTracing the trace endpoints do not exist, CQL
// pages carry no trace_id, and the serving behavior is unchanged.
func TestTracingOffIdentity(t *testing.T) {
	ts, srv := newCQLTestServer(t, nil, CQLConfig{})
	if srv.TraceCollector() != nil {
		t.Fatal("collector present without WithTracing")
	}
	if code := doJSON(t, "GET", ts.URL+"/api/trace/abc", nil, nil); code != http.StatusNotFound {
		t.Fatalf("GET /api/trace/{id} without tracing: status %d, want 404", code)
	}
	if code := doJSON(t, "GET", ts.URL+"/api/traces", nil, nil); code != http.StatusNotFound {
		t.Fatalf("GET /api/traces without tracing: status %d, want 404", code)
	}
	cqlCreate(t, ts.URL, "plain")
	page := cqlExecuteDone(t, ts.URL, "plain", `
		CREATE TABLE t (id INT);
		INSERT INTO t VALUES (1);
		SELECT id FROM t`)
	if page.TraceID != "" {
		t.Fatalf("page trace_id = %q without tracing, want empty", page.TraceID)
	}
	if code := doJSON(t, "GET",
		ts.URL+"/api/cql/session/plain/query/"+page.Query+"/trace", nil, nil); code != http.StatusNotFound {
		t.Fatalf("query trace route without tracing: status %d, want 404", code)
	}
}

// TestClientTraceIDStableAcrossRetries pins satellite 1: one trace ID
// per logical operation, reused verbatim on every retry attempt, and
// surfaced on the APIError a failing operation returns.
func TestClientTraceIDStableAcrossRetries(t *testing.T) {
	var mu struct {
		ids   []string
		calls atomic.Int32
	}
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.ids = append(mu.ids, r.Header.Get(TraceHeader))
		if mu.calls.Add(1) <= 2 {
			w.WriteHeader(http.StatusBadGateway)
			return
		}
		w.WriteHeader(http.StatusOK)
		fmt.Fprint(w, `{"total_answers":0}`)
	}))
	t.Cleanup(backend.Close)

	c := NewClient(backend.URL, WithRetry(3, time.Millisecond, 2*time.Millisecond))
	if _, err := c.Stats(); err != nil {
		t.Fatalf("stats after retries: %v", err)
	}
	if len(mu.ids) != 3 {
		t.Fatalf("saw %d attempts, want 3", len(mu.ids))
	}
	if mu.ids[0] == "" {
		t.Fatal("client sent no X-Trace-Id")
	}
	if mu.ids[0] != mu.ids[1] || mu.ids[1] != mu.ids[2] {
		t.Fatalf("trace ID changed across retries: %v", mu.ids)
	}

	// A distinct operation mints a distinct ID.
	_, _ = c.Stats()
	if last := mu.ids[len(mu.ids)-1]; last == mu.ids[0] {
		t.Fatal("second operation reused the first operation's trace ID")
	}
}

func TestAPIErrorCarriesTraceID(t *testing.T) {
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Echo the trace header the way the real middleware does.
		w.Header().Set(TraceHeader, r.Header.Get(TraceHeader))
		w.WriteHeader(http.StatusConflict)
		fmt.Fprint(w, `{"error":"duplicate answer"}`)
	}))
	t.Cleanup(backend.Close)

	c := NewClient(backend.URL)
	err := c.SubmitAnswer(AnswerDTO{Task: 1, Worker: "w1", Option: 0})
	if err == nil {
		t.Fatal("want an APIError")
	}
	var ae *APIError
	if !errors.As(err, &ae) {
		t.Fatalf("error %T is not an APIError: %v", err, err)
	}
	if ae.TraceID == "" {
		t.Fatalf("APIError carries no trace ID: %+v", ae)
	}
	want := fmt.Sprintf("server: duplicate answer (HTTP 409) [trace %s]", ae.TraceID)
	if ae.Error() != want {
		t.Fatalf("Error() = %q, want %q", ae.Error(), want)
	}
}

// TestEMRunSpanInResultsTrace pins the inference layer: a traced
// /api/results poll records an em.run span carrying per-iteration
// convergence events from the EM observer.
func TestEMRunSpanInResultsTrace(t *testing.T) {
	rng := stats.NewRNG(7)
	pool := testPool(rng, 10)
	col := obs.NewCollector(obs.CollectorOptions{})
	srv, err := New(pool, assign.FewestAnswers{}, nil, nil,
		WithShards(testShards()), WithTracing(col))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(func() { ts.Close(); srv.Close() })
	client := NewClient(ts.URL)

	for w := 0; w < 3; w++ {
		for _, id := range pool.TaskIDs() {
			err := client.SubmitAnswer(AnswerDTO{Task: id, Worker: fmt.Sprintf("w%d", w), Option: rng.Intn(2)})
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := client.Results("onecoin"); err != nil {
		t.Fatal(err)
	}
	sums := tracesIndex(t, ts.URL, "endpoint=/api/results")
	if len(sums) == 0 {
		t.Fatal("no /api/results trace kept")
	}
	trace, ok := getTrace(t, ts.URL, sums[0].TraceID)
	if !ok {
		t.Fatal("results trace not retrievable")
	}
	em, ok := spanNames(trace)["em.run"]
	if !ok {
		t.Fatalf("no em.run span: %+v", trace.Spans)
	}
	if em.Attrs["em.method"] != "onecoin" || em.Attrs["converged"] != true {
		t.Errorf("em.run attrs = %v, want method onecoin converged", em.Attrs)
	}
	iters := 0
	for _, ev := range em.Events {
		if ev.Name == "em.iteration" {
			iters++
		}
	}
	if iters == 0 {
		t.Fatal("em.run span has no em.iteration events")
	}
}

// TestLeaseReaperSweepTraced pins satellite 2 for the reaper: an
// expiring sweep records a bg.lease-reaper root trace; idle sweeps leave
// nothing behind.
func TestLeaseReaperSweepTraced(t *testing.T) {
	rng := stats.NewRNG(5)
	pool := testPool(rng, 2)
	col := obs.NewCollector(obs.CollectorOptions{})
	srv, err := New(pool, assign.FewestAnswers{}, nil, nil,
		WithShards(testShards()), WithTracing(col), WithLeaseTTL(5*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(func() { ts.Close(); srv.Close() })
	client := NewClient(ts.URL)

	// Take a lease and abandon it; the reaper must sweep it.
	if _, ok, err := client.FetchTask("ghost"); err != nil || !ok {
		t.Fatalf("FetchTask: %v %v", ok, err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for srv.ExpiredLeases() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("lease never expired")
		}
		time.Sleep(time.Millisecond)
	}
	sums := col.Traces(obs.TraceFilter{Endpoint: "bg.lease-reaper"})
	if len(sums) != 1 {
		t.Fatalf("reaper traces = %+v, want exactly one (idle ticks must discard)", sums)
	}
	trace, ok := col.Trace(sums[0].TraceID)
	if !ok || len(trace.Spans) != 1 {
		t.Fatalf("reaper trace = %+v", trace)
	}
	var expired any
	for _, a := range trace.Spans[0].Attrs {
		if a.Key == "expired" {
			expired = a.Value()
		}
	}
	if expired != int64(1) {
		t.Fatalf("sweep expired attr = %v, want 1", expired)
	}
}

// TestTracingOffOverhead compares serving throughput with tracing off
// (the shipped default) against the same server with the collector
// attached and sampling everything. The tracing-off path must not be
// slower than tracing-on beyond noise — it does strictly less work — and
// tracing-on must stay within a small multiple, bounding what the
// instrumentation added to the hot path. Tolerances are generous: this
// guards against an accidental always-on slow path, not a perf budget.
func TestTracingOffOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark comparison; skipped in -short")
	}
	run := func(opts ...Option) float64 {
		res := testing.Benchmark(func(b *testing.B) {
			benchServer(b, false, 4, opts...)
		})
		return float64(res.NsPerOp())
	}
	// Interleave and keep the faster of two runs per mode to damp
	// scheduler noise.
	min := func(a, b float64) float64 {
		if a < b {
			return a
		}
		return b
	}
	off := run()
	on := run(WithTracing(obs.NewCollector(obs.CollectorOptions{})))
	off = min(off, run())
	on = min(on, run(WithTracing(obs.NewCollector(obs.CollectorOptions{}))))
	t.Logf("tracing off: %.0f ns/op, tracing on: %.0f ns/op (%.2fx)", off, on, on/off)
	if off > on*1.5 {
		t.Fatalf("tracing-off path slower than tracing-on beyond noise: off=%.0f on=%.0f ns/op", off, on)
	}
	if on > off*3 {
		t.Fatalf("tracing-on overhead above bound: off=%.0f on=%.0f ns/op", off, on)
	}
}
