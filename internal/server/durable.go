package server

import (
	"repro/internal/core"
	"repro/internal/durable"
)

// WithDurability attaches a durable.Store: every pool mutation is
// journaled to its write-ahead log, and /api/answer acknowledges a
// submission only after the answer record is journaled (ack-implies-
// durable; under FsyncAlways, only after it is fsynced). The server takes
// ownership of the store — Close flushes, snapshots, and closes it.
//
// The store only journals what flows through the server. The boot
// sequence is therefore: open the store, and either adopt its recovered
// state (see AdoptRecovered) or, on an empty data directory, seed the
// pool and journal the seeds with SeedJournal before calling New.
//
// A server built without this option runs the exact in-memory handler
// chain: the only durability cost on that path is one nil check.
func WithDurability(store *durable.Store) Option {
	return func(s *Server) { s.store = store }
}

// AdoptRecovered applies a store's recovered state to the serving
// collaborators: the returned pool becomes the live pool (hand it to New),
// budget gets the durable spend, and screen gets the golden tallies.
// budget and screen may be nil when the deployment does not use them.
func AdoptRecovered(store *durable.Store, budget *core.Budget, screen *core.WorkerScreen) *core.Pool {
	pool, spent, tallies := store.State()
	if budget != nil {
		budget.RestoreSpent(spent)
	}
	if screen != nil {
		screen.Restore(tallies)
	}
	return pool
}

// SeedJournal journals every task already present in pool — the bootstrap
// for a fresh data directory, where tasks were seeded directly into the
// pool before the journal existed. Tasks added after New flow through the
// pool's journal hook automatically. Returns the store's sticky error, if
// journaling failed.
func SeedJournal(store *durable.Store, pool *core.Pool) error {
	for _, id := range pool.TaskIDs() {
		store.TaskAdded(pool.Task(id))
	}
	return store.Err()
}
