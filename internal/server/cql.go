package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/cql"
	"repro/internal/durable"
	"repro/internal/obs"
	"repro/internal/operators"
	"repro/internal/stats"
)

// CrowdQL query service: named sessions over the serving pool.
//
//	POST   /api/cql/session                          -> create a session
//	GET    /api/cql/sessions                         -> list sessions
//	DELETE /api/cql/session/{name}                   -> close (and persist) it
//	POST   /api/cql/session/{name}/prepare           -> store a named statement
//	POST   /api/cql/session/{name}/execute           -> run SQL/CQL, returns a query handle
//	GET    /api/cql/session/{name}/query/{qid}       -> poll a handle / fetch the next page
//	POST   /api/cql/session/{name}/query/{qid}/cancel-> cancel a running query
//
// Crowd questions issued by a session's queries do not run against
// simulated workers: the session's runner carries a RemoteSource that
// publishes each question as a task in the serving pool, where real
// workers pick it up through GET /api/task and answer through POST
// /api/answer — the same endpoints, budget, screening, leases, and
// durability as every other task. A crowd query is therefore
// asynchronous by nature; execute returns a handle immediately (after a
// short grace wait so machine statements look synchronous), and clients
// poll the handle for partial rows while answers arrive.
//
// Budget accounting uses the reservation protocol of the answer path:
// the gateway reserves redundancy-k units when it publishes a question
// and refunds one unit per arriving answer (which the answer path
// charges), so a completed question costs exactly k and a canceled one
// costs exactly the answers it received. Canceling a query closes its
// in-flight task, which releases the task's outstanding leases.

// CQLConfig configures the CrowdQL query service.
type CQLConfig struct {
	// Dir, when non-empty, persists each session's catalog under
	// Dir/<session-name>/ as the session closes (explicitly, by idle
	// sweep, or at server shutdown) and reloads it when a session of the
	// same name is created again.
	Dir string
	// IdleTTL closes sessions with no activity and no running query
	// (0 = only explicit close).
	IdleTTL time.Duration
	// PageSize is the default page size for query handles (default 100).
	PageSize int
	// Redundancy is votes per crowd question (default: the session
	// default, 3).
	Redundancy int
	// Seed seeds each session's RNG (plan sampling; crowd answers come
	// from the pool, not a simulation).
	Seed uint64
	// Oracle, when set, supplies the simulated ground truth planted on
	// published tasks for a given session (golden grading, experiments).
	Oracle func(session string) *cql.SimOracle
	// ExecuteGrace bounds how long POST execute waits for the query to
	// finish before returning a running handle (default 300ms). Machine
	// statements resolve well within it, so they look synchronous.
	ExecuteGrace time.Duration
}

// WithCQL mounts the CrowdQL query service on the server.
func WithCQL(cfg CQLConfig) Option {
	return func(s *Server) { s.cqlCfg = &cfg }
}

// CQLSessions exposes the session manager (nil unless WithCQL); tests
// and embedders reach the service layer directly through it.
func (s *Server) CQLSessions() *cql.SessionManager { return s.cqlMgr }

// cqlMetrics instruments the query service. Nil fields (metrics off)
// no-op.
type cqlMetrics struct {
	queriesDone     *obs.Counter
	queriesError    *obs.Counter
	queriesCanceled *obs.Counter
	querySeconds    *obs.Histogram
	pagesServed     *obs.Counter
	cancels         *obs.Counter
}

func (m *cqlMetrics) queryDone(status cql.QueryStatus, d time.Duration) {
	switch status {
	case cql.QueryError:
		m.queriesError.Inc()
	case cql.QueryCanceled:
		m.queriesCanceled.Inc()
	default:
		m.queriesDone.Inc()
	}
	m.querySeconds.Observe(d.Seconds())
}

// cqlJournal adapts the durable store to cql.SessionJournal: every
// session-lifecycle transition becomes a WAL event. Append errors are
// swallowed here — the store goes sticky-failed and the answer path (the
// ack-gated one) surfaces it.
type cqlJournal struct{ store *durable.Store }

func (j cqlJournal) SessionCreated(name string) { _ = j.store.CQLSessionCreated(name) }
func (j cqlJournal) SessionClosed(name string)  { _ = j.store.CQLSessionClosed(name) }
func (j cqlJournal) StatementPrepared(session, name, src string) {
	_ = j.store.CQLPrepared(session, name, src)
}
func (j cqlJournal) QueryStarted(session, qid, src string) {
	_ = j.store.CQLQueryStarted(session, qid, src)
}
func (j cqlJournal) QueryFinished(session, qid string, status cql.QueryStatus) {
	_ = j.store.CQLQueryFinished(session, qid, string(status))
}

// initCQL builds the gateway and session manager. Called by New once the
// pool wrapper exists, before observability wiring (which registers the
// service's gauges).
func (s *Server) initCQL() error {
	if s.cqlCfg == nil {
		return nil
	}
	cfg := s.cqlCfg
	if cfg.ExecuteGrace <= 0 {
		cfg.ExecuteGrace = 300 * time.Millisecond
	}
	s.cqlGw = &cqlGateway{srv: s, waiters: make(map[core.TaskID]chan struct{})}
	scfg := cql.ServiceConfig{
		Factory:     s.newCQLSession,
		IdleTTL:     cfg.IdleTTL,
		PageSize:    cfg.PageSize,
		OnClose:     s.saveCQLCatalog,
		OnQueryDone: func(st cql.QueryStatus, d time.Duration) { s.cqlM.queryDone(st, d) },
		Tracer:      s.traceCol,
	}
	if s.store != nil {
		// Durability on: journal session lifecycle into the WAL, and save
		// the catalog after every mutating statement (not just on close) so
		// the catalog a crash recovers onto already holds every executed
		// statement's effects. Without a store, neither hook is set and the
		// service runs the exact PR 9 close-time persistence path.
		scfg.Journal = cqlJournal{store: s.store}
		scfg.OnMutate = s.saveCQLCatalog
	}
	mgr, err := cql.NewSessionManager(scfg)
	if err != nil {
		return err
	}
	s.cqlMgr = mgr
	return nil
}

// newCQLSession is the session factory: a fresh catalog (reloaded from
// disk when this session name was persisted before) and a runner whose
// crowd questions route to the serving pool through the gateway.
func (s *Server) newCQLSession(name string) (*cql.Session, error) {
	cat := cql.NewCatalog()
	if s.cqlCfg.Dir != "" {
		dir := filepath.Join(s.cqlCfg.Dir, name)
		if _, err := os.Stat(dir); err == nil {
			loaded, err := cql.LoadCatalog(dir)
			if err != nil {
				return nil, fmt.Errorf("cql session %q: %w", name, err)
			}
			cat = loaded
		}
	}
	rng := stats.NewRNG(s.cqlCfg.Seed + 1)
	runner := operators.NewRunner(nil, nil, rng)
	runner.Remote = s.cqlGw
	sess := cql.NewSession(cat, runner, rng.Split())
	if s.cqlCfg.Redundancy > 0 {
		sess.Redundancy = s.cqlCfg.Redundancy
	}
	if s.cqlCfg.Oracle != nil {
		sess.Oracle = s.cqlCfg.Oracle(name)
	}
	return sess, nil
}

// saveCQLCatalog is the session OnClose hook: persist the catalog so the
// session's tables survive a server restart.
func (s *Server) saveCQLCatalog(name string, sess *cql.Session) {
	if s.cqlCfg.Dir == "" {
		return
	}
	dir := filepath.Join(s.cqlCfg.Dir, name)
	err := os.MkdirAll(dir, 0o755)
	if err == nil {
		err = cql.SaveCatalog(sess.Catalog, dir)
	}
	if err != nil && s.reqLog != nil {
		s.reqLog.Error("cql catalog save failed", "session", name, "error", err)
	}
}

// wireCQLObservability registers the query-service metrics (called from
// wireObservability when metrics are on and the service is mounted).
func (s *Server) wireCQLObservability() {
	reg := s.metricsReg
	st := func(v string) obs.Label { return obs.L("status", v) }
	s.cqlM = cqlMetrics{
		queriesDone:     reg.Counter("crowdkit_cql_queries_total", st("done")),
		queriesError:    reg.Counter("crowdkit_cql_queries_total", st("error")),
		queriesCanceled: reg.Counter("crowdkit_cql_queries_total", st("canceled")),
		querySeconds:    reg.Histogram("crowdkit_cql_query_seconds", obs.DefLatencyBuckets),
		pagesServed:     reg.Counter("crowdkit_cql_pages_served_total"),
		cancels:         reg.Counter("crowdkit_cql_cancels_total"),
	}
	reg.GaugeFunc("crowdkit_cql_sessions_active", func() float64 {
		return float64(s.cqlMgr.SessionCount())
	})
	// Recovery counters are plain value counters incremented by the boot
	// recovery pass (which runs before metrics wiring): registering them
	// here just exposes whatever that pass already counted.
	reg.RegisterCounter("crowdkit_cql_recovered_sessions_total", &s.cqlRecSessions)
	reg.RegisterCounter("crowdkit_cql_recovered_queries_total", &s.cqlRecQueries)
	reg.RegisterCounter("crowdkit_cql_recovered_questions_total", &s.cqlRecQuestions)
	reg.RegisterCounter("crowdkit_cql_recovered_refund_units_total", &s.cqlRecRefund)
}

// mountCQL adds the query-service routes (called from New when WithCQL
// was given).
func (s *Server) mountCQL() {
	s.mux.HandleFunc("POST /api/cql/session",
		s.instrument("/api/cql/session", s.handleCQLCreate))
	s.mux.HandleFunc("GET /api/cql/sessions",
		s.instrument("/api/cql/sessions", s.handleCQLList))
	s.mux.HandleFunc("DELETE /api/cql/session/{name}",
		s.instrument("/api/cql/session.close", s.handleCQLClose))
	s.mux.HandleFunc("POST /api/cql/session/{name}/prepare",
		s.instrument("/api/cql/prepare", s.handleCQLPrepare))
	s.mux.HandleFunc("POST /api/cql/session/{name}/execute",
		s.instrument("/api/cql/execute", s.handleCQLExecute))
	s.mux.HandleFunc("GET /api/cql/session/{name}/query/{qid}",
		s.instrument("/api/cql/query", s.handleCQLQuery))
	s.mux.HandleFunc("POST /api/cql/session/{name}/query/{qid}/cancel",
		s.instrument("/api/cql/cancel", s.handleCQLCancel))
}

// cqlGateway publishes a session's crowd questions as serving-pool tasks
// and waits for the pool's workers to answer them. It implements
// operators.RemoteSource.
type cqlGateway struct {
	srv *Server

	mu      sync.Mutex
	waiters map[core.TaskID]chan struct{}
}

// notify wakes the gateway waiter for a task, if any. Called by the
// answer paths after recording; spurious wakes are harmless (the waiter
// re-reads the pool), so no rollback ever needs to retract one.
func (g *cqlGateway) notify(id core.TaskID) {
	g.mu.Lock()
	ch := g.waiters[id]
	g.mu.Unlock()
	if ch != nil {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
}

// notifyCQL wakes the gateway waiter for a task after an answer was
// recorded (no-op when the query service is not mounted). Called from
// the single and batch answer paths.
func (s *Server) notifyCQL(id core.TaskID) {
	if s.cqlGw != nil {
		s.cqlGw.notify(id)
	}
}

// cqlAnswerPoll is the fallback poll interval for gateway waiters; the
// notify hook makes the common case event-driven.
const cqlAnswerPoll = 50 * time.Millisecond

// Ask implements operators.RemoteSource: reserve k budget units, publish
// the question, wait for k answers (refunding one reserved unit per
// arriving answer, since the answer path charges it), close the task,
// and return the answers. On cancellation the task is closed — dropping
// its outstanding leases — and the unconsumed remainder of the
// reservation is refunded, so a canceled question's net spend is exactly
// the answers it received.
func (g *cqlGateway) Ask(ctx context.Context, t *core.Task, k int) ([]core.Answer, error) {
	s := g.srv
	sp := obs.CurrentSpan(ctx)
	if !s.budget.TryCharge(float64(k)) {
		return nil, errors.New("cql: budget exhausted")
	}
	id, err := s.cpool.Add(t)
	if err != nil {
		s.budget.Refund(float64(k))
		return nil, err
	}
	if s.store != nil {
		// Journal the reservation right after the task-added record, on the
		// task's own WAL segment. From here on the durable spend tracks the
		// live budget through every refund; a crash before the question
		// closes leaves a published-without-closed pair, which recovery
		// reconciles by closing the task and refunding the remainder.
		_ = s.store.CQLQuestionPublished(id, float64(k))
	}
	if sp.Recording() {
		sp.SetAttr(obs.Int("task", int64(id)), obs.Int("shard", int64(s.cpool.ShardFor(id))))
		sp.AddEvent("publish", obs.Int("task", int64(id)), obs.Int("redundancy", int64(k)))
	}
	ch := make(chan struct{}, 1)
	g.mu.Lock()
	g.waiters[id] = ch
	g.mu.Unlock()
	defer func() {
		g.mu.Lock()
		delete(g.waiters, id)
		g.mu.Unlock()
	}()

	ticker := time.NewTicker(cqlAnswerPoll)
	defer ticker.Stop()
	seen, lastLeases := 0, 0
	for {
		if sp.Recording() {
			if l := s.cpool.LeaseCount(id); l != lastLeases {
				sp.AddEvent("lease", obs.Int("active", int64(l)))
				lastLeases = l
			}
		}
		if n := s.cpool.AnswerCount(id); n > seen {
			// Each arriving answer was charged by the answer path; release
			// the matching part of our reservation so in-flight spend stays
			// exactly k. Answers beyond k (racing workers) keep their own
			// charge.
			if n > k {
				n = k
			}
			s.budget.Refund(float64(n - seen))
			if s.store != nil {
				_ = s.store.CQLQuestionRefunded(id, float64(n-seen))
			}
			if sp.Recording() {
				for i := seen + 1; i <= n; i++ {
					sp.AddEvent("answer", obs.Int("n", int64(i)))
				}
			}
			seen = n
		}
		if seen >= k {
			s.cpool.Close(id)
			if s.store != nil {
				// Fully consumed reservation: the closed event retires the
				// question's durable ledger with a zero remainder.
				_ = s.store.CQLQuestionClosed(id, 0)
			}
			sp.AddEvent("close", obs.Int("answers", int64(seen)))
			answers := s.cpool.Answers(id)
			return append([]core.Answer(nil), answers[:k]...), nil
		}
		select {
		case <-ctx.Done():
			// Stop the question: close the task (rejecting further answers
			// and dropping its leases) and hand back the reservation we
			// never consumed.
			s.cpool.Close(id)
			s.budget.Refund(float64(k - seen))
			if s.store != nil {
				_ = s.store.CQLQuestionClosed(id, float64(k-seen))
			}
			sp.AddEvent("close", obs.Int("answers", int64(seen)), obs.Str("reason", "canceled"))
			return nil, ctx.Err()
		case <-ch:
		case <-ticker.C:
		}
	}
}

// --- HTTP handlers ---

// CQLSessionDTO names a session on the wire.
type CQLSessionDTO struct {
	Session string `json:"session"`
	Status  string `json:"status,omitempty"`
}

// CQLSessionListDTO is the GET /api/cql/sessions response.
type CQLSessionListDTO struct {
	Sessions []string `json:"sessions"`
}

// CQLExecuteDTO is the execute/prepare request body. Execute takes
// either Src (SQL/CQL text, possibly a multi-statement script) or
// Prepared (the name of a prepared statement); prepare takes Name + Src.
type CQLExecuteDTO struct {
	Name     string `json:"name,omitempty"`
	Src      string `json:"src,omitempty"`
	Prepared string `json:"prepared,omitempty"`
}

// maxCQLBody bounds CQL request bodies; statements are small.
const maxCQLBody = 1 << 20

func decodeCQLBody(w http.ResponseWriter, r *http.Request, dto any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, maxCQLBody)
	if err := json.NewDecoder(r.Body).Decode(dto); err != nil {
		httpError(w, http.StatusBadRequest, "invalid JSON: "+err.Error())
		return false
	}
	return true
}

// cqlSession resolves the {name} path segment to a live session.
func (s *Server) cqlSession(w http.ResponseWriter, r *http.Request) *cql.ManagedSession {
	name := r.PathValue("name")
	ms, ok := s.cqlMgr.Get(name)
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Sprintf("unknown session %q", name))
		return nil
	}
	return ms
}

func (s *Server) handleCQLCreate(w http.ResponseWriter, r *http.Request) {
	var dto CQLSessionDTO
	if !decodeCQLBody(w, r, &dto) {
		return
	}
	ms, err := s.cqlMgr.Create(dto.Session)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, CQLSessionDTO{Session: ms.Name(), Status: "created"})
}

func (s *Server) handleCQLList(w http.ResponseWriter, r *http.Request) {
	names := s.cqlMgr.SessionNames()
	if names == nil {
		names = []string{}
	}
	writeJSON(w, CQLSessionListDTO{Sessions: names})
}

func (s *Server) handleCQLClose(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if err := s.cqlMgr.CloseSession(name); err != nil {
		httpError(w, http.StatusNotFound, err.Error())
		return
	}
	writeJSON(w, CQLSessionDTO{Session: name, Status: "closed"})
}

func (s *Server) handleCQLPrepare(w http.ResponseWriter, r *http.Request) {
	ms := s.cqlSession(w, r)
	if ms == nil {
		return
	}
	var dto CQLExecuteDTO
	if !decodeCQLBody(w, r, &dto) {
		return
	}
	if err := ms.Prepare(dto.Name, dto.Src); err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, CQLSessionDTO{Session: ms.Name(), Status: "prepared"})
}

func (s *Server) handleCQLExecute(w http.ResponseWriter, r *http.Request) {
	ms := s.cqlSession(w, r)
	if ms == nil {
		return
	}
	var dto CQLExecuteDTO
	if !decodeCQLBody(w, r, &dto) {
		return
	}
	var (
		q   *cql.Query
		err error
	)
	switch {
	case dto.Prepared != "":
		q, err = ms.ExecutePrepared(dto.Prepared)
	case dto.Src != "":
		q, err = ms.Execute(dto.Src)
	default:
		httpError(w, http.StatusBadRequest, "need src or prepared")
		return
	}
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	// Grace wait: machine statements finish in microseconds, so clients
	// of non-crowd queries see a completed first page; crowd queries
	// return a running handle to poll.
	q.Wait(s.cqlCfg.ExecuteGrace)
	s.writeCQLPage(w, q, "", 0)
}

func (s *Server) handleCQLQuery(w http.ResponseWriter, r *http.Request) {
	ms := s.cqlSession(w, r)
	if ms == nil {
		return
	}
	qid := r.PathValue("qid")
	q, ok := ms.Query(qid)
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Sprintf("unknown query %q", qid))
		return
	}
	limit := 0
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			httpError(w, http.StatusBadRequest, "bad limit")
			return
		}
		limit = n
	}
	s.writeCQLPage(w, q, r.URL.Query().Get("page_token"), limit)
}

func (s *Server) writeCQLPage(w http.ResponseWriter, q *cql.Query, token string, limit int) {
	page, err := q.Page(token, limit)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.cqlM.pagesServed.Inc()
	writeJSON(w, page)
}

// cqlCancelWait bounds how long the cancel endpoint waits for the
// canceled query to unwind. Unwinding is what releases the question's
// leases and refunds its budget, so the ack should normally mean "the
// pool is clean again"; a handler stuck past the bound acks with status
// still running and the unwind completes asynchronously.
const cqlCancelWait = 5 * time.Second

func (s *Server) handleCQLCancel(w http.ResponseWriter, r *http.Request) {
	ms := s.cqlSession(w, r)
	if ms == nil {
		return
	}
	qid := r.PathValue("qid")
	// One lookup resolves existence and cancels: a handle pruned by the
	// retention cap between two separate calls could otherwise 404 after
	// its cancel already took effect.
	q, ok := ms.CancelQuery(qid)
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Sprintf("unknown query %q", qid))
		return
	}
	s.cqlM.cancels.Inc()
	q.Wait(cqlCancelWait)
	writeJSON(w, struct {
		Query  string          `json:"query_id"`
		Status cql.QueryStatus `json:"status"`
	}{Query: qid, Status: q.Status()})
}
