package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/assign"
	"repro/internal/core"
	"repro/internal/crowd"
	"repro/internal/stats"
)

func testPool(rng *stats.RNG, n int) *core.Pool {
	pool := core.NewPool()
	for i := 0; i < n; i++ {
		pool.MustAdd(&core.Task{
			ID: core.TaskID(i + 1), Kind: core.SingleChoice,
			Question: "yes or no?", Options: []string{"no", "yes"},
			GroundTruth: rng.Intn(2), Difficulty: 0.2,
		})
	}
	return pool
}

// testShards resolves the shard count test servers run with: 1 by
// default, overridden by the CROWDKIT_TEST_SHARDS environment variable so
// the CI matrix re-runs the whole suite against a sharded pool.
func testShards() int {
	if v := os.Getenv("CROWDKIT_TEST_SHARDS"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return 1
}

func newTestServer(t *testing.T, pool *core.Pool, budget *core.Budget, screen *core.WorkerScreen) (*httptest.Server, *Client) {
	t.Helper()
	srv, err := New(pool, assign.FewestAnswers{}, budget, screen, WithShards(testShards()))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts, NewClient(ts.URL)
}

func TestServerRequiresPoolAndAssigner(t *testing.T) {
	if _, err := New(nil, assign.FewestAnswers{}, nil, nil); err == nil {
		t.Fatal("nil pool should fail")
	}
	if _, err := New(core.NewPool(), nil, nil, nil); err == nil {
		t.Fatal("nil assigner should fail")
	}
}

func TestTaskAssignmentFlow(t *testing.T) {
	rng := stats.NewRNG(1)
	pool := testPool(rng, 3)
	_, client := newTestServer(t, pool, nil, nil)

	dto, ok, err := client.FetchTask("w1")
	if err != nil || !ok {
		t.Fatalf("FetchTask: %v %v", ok, err)
	}
	if dto.Kind != "single-choice" || len(dto.Options) != 2 {
		t.Fatalf("task DTO = %+v", dto)
	}
	if err := client.SubmitAnswer(AnswerDTO{Task: dto.ID, Worker: "w1", Option: 1}); err != nil {
		t.Fatal(err)
	}
	// Read back through the API: with WithShards > 1 the server splits the
	// seed pool, so the caller's pool object is no longer the live state.
	if st, err := client.Stats(); err != nil || st.TotalAnswers != 1 {
		t.Fatalf("stats after submit: %+v, %v; want 1 answer", st, err)
	}
	// Duplicate submission rejected (one answer per worker per task).
	if err := client.SubmitAnswer(AnswerDTO{Task: dto.ID, Worker: "w1", Option: 0}); err == nil {
		t.Fatal("duplicate answer should be rejected")
	}
	// Worker exhausts the pool and then gets 204.
	for i := 0; i < 2; i++ {
		d, ok, err := client.FetchTask("w1")
		if err != nil || !ok {
			t.Fatalf("fetch %d: %v %v", i, ok, err)
		}
		if err := client.SubmitAnswer(AnswerDTO{Task: d.ID, Worker: "w1", Option: 0}); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok, err := client.FetchTask("w1"); err != nil || ok {
		t.Fatalf("exhausted worker should get no task: %v %v", ok, err)
	}
}

func TestTaskEndpointValidation(t *testing.T) {
	rng := stats.NewRNG(2)
	ts, client := newTestServer(t, testPool(rng, 1), nil, nil)

	resp, err := http.Get(ts.URL + "/api/task") // missing worker
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing worker -> %d", resp.StatusCode)
	}
	// Unknown task answer.
	if err := client.SubmitAnswer(AnswerDTO{Task: 999, Worker: "w"}); err == nil {
		t.Fatal("unknown task should be rejected")
	}
	// Malformed JSON.
	resp, err = http.Post(ts.URL+"/api/answer", "application/json",
		bytes.NewReader([]byte("{not json")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed JSON -> %d", resp.StatusCode)
	}
	// Missing worker field.
	if err := client.SubmitAnswer(AnswerDTO{Task: 1}); err == nil {
		t.Fatal("missing worker should be rejected")
	}
}

func TestGroundTruthNeverLeaves(t *testing.T) {
	rng := stats.NewRNG(3)
	ts, _ := newTestServer(t, testPool(rng, 1), nil, nil)
	resp, err := http.Get(ts.URL + "/api/task?worker=w1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var raw map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	for key := range raw {
		if strings.Contains(strings.ToLower(key), "truth") {
			t.Fatalf("ground truth leaked over the wire: %v", raw)
		}
	}
}

func TestBudgetEnforcedOverHTTP(t *testing.T) {
	rng := stats.NewRNG(4)
	pool := testPool(rng, 10)
	_, client := newTestServer(t, pool, core.NewBudget(2), nil)
	for i := 0; i < 2; i++ {
		d, ok, err := client.FetchTask("w1")
		if err != nil || !ok {
			t.Fatal(err)
		}
		if err := client.SubmitAnswer(AnswerDTO{Task: d.ID, Worker: "w1", Option: 0}); err != nil {
			t.Fatal(err)
		}
	}
	// Budget gone: task fetch refuses.
	if _, _, err := client.FetchTask("w1"); err == nil {
		t.Fatal("budget-exhausted fetch should error")
	}
	st, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.BudgetSpent != 2 {
		t.Fatalf("stats budget = %v", st.BudgetSpent)
	}
}

func TestGoldenScreeningOverHTTP(t *testing.T) {
	rng := stats.NewRNG(5)
	pool := core.NewPool()
	for i := 0; i < 5; i++ {
		pool.MustAdd(&core.Task{
			ID: core.TaskID(i + 1), Kind: core.SingleChoice,
			Options: []string{"no", "yes"}, GroundTruth: 1,
			Golden: true, Difficulty: 0.05,
		})
	}
	_ = rng
	screen := core.NewWorkerScreen(3, 0.5)
	_, client := newTestServer(t, pool, nil, screen)
	// A worker that always answers 0 fails every golden.
	for i := 0; i < 3; i++ {
		d, ok, err := client.FetchTask("spammer")
		if err != nil || !ok {
			t.Fatal(err)
		}
		if err := client.SubmitAnswer(AnswerDTO{Task: d.ID, Worker: "spammer", Option: 0}); err != nil {
			t.Fatal(err)
		}
	}
	if !screen.Eliminated("spammer") {
		t.Fatal("spammer not eliminated")
	}
	if _, _, err := client.FetchTask("spammer"); err == nil {
		t.Fatal("eliminated worker should be refused")
	}
	st, _ := client.Stats()
	if st.Eliminated != 1 {
		t.Fatalf("stats eliminated = %d", st.Eliminated)
	}
}

// TestEndToEndCrowdOverHTTP drives workers sequentially (deterministic
// pairing) and checks the full fetch → answer → aggregate loop, including
// inferred accuracy against the planted truth.
func TestEndToEndCrowdOverHTTP(t *testing.T) {
	rng := stats.NewRNG(6)
	pool := testPool(rng, 60)
	_, client := newTestServer(t, pool, nil, nil)
	workers := crowd.NewPopulation(rng, 15, crowd.RegimeMixed)

	// Interleave workers round-robin, one task per turn, until nothing is
	// assignable — deterministic given the seed.
	for progress := true; progress; {
		progress = false
		for _, w := range workers {
			n, err := client.DriveWorker(w, pool.Task, 1)
			if err != nil {
				t.Fatal(err)
			}
			if n > 0 {
				progress = true
			}
		}
	}

	st, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.TotalAnswers != 60*15 || st.Workers != 15 {
		t.Fatalf("stats = %+v", st)
	}

	// Aggregate via the API and score against the planted truth.
	for _, method := range []string{"mv", "onecoin", "ds", "glad"} {
		results, err := client.Results(method)
		if err != nil {
			t.Fatalf("%s: %v", method, err)
		}
		if len(results) != 60 {
			t.Fatalf("%s: %d results", method, len(results))
		}
		correct := 0
		for _, r := range results {
			if r.Label == pool.Task(r.Task).GroundTruth {
				correct++
			}
			if r.Confidence < 0 || r.Confidence > 1 {
				t.Fatalf("confidence %v", r.Confidence)
			}
		}
		if correct < 54 { // 90% with 15 answers/task
			t.Fatalf("%s accuracy %d/60 over HTTP", method, correct)
		}
	}
	if _, err := client.Results("nope"); err == nil {
		t.Fatal("unknown method should fail")
	}
}

// TestConcurrentDriveTransport hammers the server with concurrent workers
// and checks transport-level invariants only (no lost/duplicated answers,
// no races); accuracy assertions live in the deterministic test above.
func TestConcurrentDriveTransport(t *testing.T) {
	rng := stats.NewRNG(7)
	pool := testPool(rng, 80)
	_, client := newTestServer(t, pool, nil, nil)
	workers := crowd.NewPopulation(rng, 20, crowd.RegimeMixed)

	var wg sync.WaitGroup
	errCh := make(chan error, len(workers))
	for _, w := range workers {
		wg.Add(1)
		go func(w core.Worker) {
			defer wg.Done()
			if _, err := client.DriveWorker(w, pool.Task, 30); err != nil {
				errCh <- err
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	st, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	// 20 workers x 30 tasks = 600 possible; pool holds 80 tasks so every
	// worker can do 30; all submissions must be recorded exactly once.
	if st.TotalAnswers != 600 {
		t.Fatalf("answers = %d, want 600", st.TotalAnswers)
	}
	// No task may exceed one answer per worker.
	for _, id := range pool.TaskIDs() {
		seen := map[string]bool{}
		for _, a := range pool.Answers(id) {
			if seen[a.Worker] {
				t.Fatalf("task %d has duplicate answers from %s", id, a.Worker)
			}
			seen[a.Worker] = true
		}
	}
}

// TestDuplicateAnswerDoesNotSpendBudget is the regression test for the
// charge-before-record leak: a submission the pool rejects (duplicate
// worker, unknown task) must not consume budget.
func TestDuplicateAnswerDoesNotSpendBudget(t *testing.T) {
	rng := stats.NewRNG(10)
	pool := testPool(rng, 3)
	budget := core.NewBudget(10)
	_, client := newTestServer(t, pool, budget, nil)

	d, ok, err := client.FetchTask("w1")
	if err != nil || !ok {
		t.Fatalf("FetchTask: %v %v", ok, err)
	}
	if err := client.SubmitAnswer(AnswerDTO{Task: d.ID, Worker: "w1", Option: 1}); err != nil {
		t.Fatal(err)
	}
	if got := budget.Spent(); got != 1 {
		t.Fatalf("accepted answer spent %v, want 1", got)
	}
	// Duplicate submission: rejected, and the reserved unit is refunded.
	if err := client.SubmitAnswer(AnswerDTO{Task: d.ID, Worker: "w1", Option: 0}); err == nil {
		t.Fatal("duplicate answer should be rejected")
	}
	if got := budget.Spent(); got != 1 {
		t.Fatalf("rejected duplicate leaked budget: spent = %v, want 1", got)
	}
	// Unknown task: rejected before any charge.
	if err := client.SubmitAnswer(AnswerDTO{Task: 999, Worker: "w1", Option: 0}); err == nil {
		t.Fatal("unknown task should be rejected")
	}
	if got := budget.Spent(); got != 1 {
		t.Fatalf("unknown-task answer leaked budget: spent = %v, want 1", got)
	}
	st, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.BudgetSpent != 1 {
		t.Fatalf("stats budget = %v, want 1", st.BudgetSpent)
	}
}

// TestResultsEmptyIsArray pins the wire format: with no choice-type tasks
// the results endpoint returns the JSON array [], never null.
func TestResultsEmptyIsArray(t *testing.T) {
	pool := core.NewPool()
	pool.MustAdd(&core.Task{Kind: core.FillIn, Question: "free text only"})
	ts, _ := newTestServer(t, pool, nil, nil)

	resp, err := http.Get(ts.URL + "/api/results")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(string(body)); got != "[]" {
		t.Fatalf("empty results body = %q, want []", got)
	}
}

// TestResultsCacheInvalidation checks both halves of the caching
// contract: identical polls reuse the memoized inference, and a new
// answer invalidates it so results never go stale.
func TestResultsCacheInvalidation(t *testing.T) {
	pool := core.NewPool()
	id := pool.MustAdd(&core.Task{
		ID: 1, Kind: core.SingleChoice,
		Question: "?", Options: []string{"no", "yes"}, GroundTruth: 1,
	})
	srv, err := New(pool, assign.FewestAnswers{}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	client := NewClient(ts.URL)

	if err := client.SubmitAnswer(AnswerDTO{Task: id, Worker: "w1", Option: 1}); err != nil {
		t.Fatal(err)
	}
	r1, err := client.Results("mv")
	if err != nil {
		t.Fatal(err)
	}
	if len(r1) != 1 || r1[0].Label != 1 {
		t.Fatalf("results = %+v", r1)
	}
	if srv.cache.Len() != 1 {
		t.Fatalf("cache entries = %d, want 1", srv.cache.Len())
	}
	// Second poll without new answers: served from cache, same payload.
	r2, err := client.Results("mv")
	if err != nil {
		t.Fatal(err)
	}
	if len(r2) != 1 || r2[0].Label != r1[0].Label || r2[0].Confidence != r1[0].Confidence {
		t.Fatalf("cached poll diverged: %+v vs %+v", r1, r2)
	}
	// Two fresh dissenters flip the majority; the poll after them must
	// reflect the new answers, not the cached inference.
	for _, w := range []string{"w2", "w3"} {
		if err := client.SubmitAnswer(AnswerDTO{Task: id, Worker: w, Option: 0}); err != nil {
			t.Fatal(err)
		}
	}
	r3, err := client.Results("mv")
	if err != nil {
		t.Fatal(err)
	}
	if len(r3) != 1 || r3[0].Label != 0 {
		t.Fatalf("stale results after invalidation: %+v", r3)
	}
}
