package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/assign"
	"repro/internal/core"
	"repro/internal/durable"
	"repro/internal/stats"
)

// --- serving-path bugfix regressions ---------------------------------------

func goldenPool(n int, truth int) *core.Pool {
	pool := core.NewPool()
	for i := 0; i < n; i++ {
		pool.MustAdd(&core.Task{
			ID: core.TaskID(i + 1), Kind: core.SingleChoice,
			Question: "golden?", Options: []string{"no", "yes"},
			Golden: true, GroundTruth: truth,
		})
	}
	return pool
}

// An eliminated worker must be refused on the answer path, not only on the
// assignment path: before the fix, a worker could keep POSTing answers
// (and spending budget) after failing the golden screen.
func TestEliminatedWorkerCannotSubmitAnswers(t *testing.T) {
	pool := goldenPool(3, 1)
	budget := core.NewBudget(100)
	screen := core.NewWorkerScreen(2, 0.9)
	_, client := newTestServer(t, pool, budget, screen)

	// Two golden misses eliminate the worker.
	for id := core.TaskID(1); id <= 2; id++ {
		if err := client.SubmitAnswer(AnswerDTO{Task: id, Worker: "bad", Option: 0}); err != nil {
			t.Fatal(err)
		}
	}
	if !screen.Eliminated("bad") {
		t.Fatal("worker should be eliminated after two golden misses")
	}
	spent := budget.Spent()

	err := client.SubmitAnswer(AnswerDTO{Task: 3, Worker: "bad", Option: 1})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusForbidden {
		t.Fatalf("eliminated worker's answer: err = %v, want HTTP 403", err)
	}
	if n := pool.AnswerCount(3); n != 0 {
		t.Fatalf("eliminated worker's answer was recorded (%d answers)", n)
	}
	if budget.Spent() != spent {
		t.Fatalf("rejected answer moved budget: %v -> %v", spent, budget.Spent())
	}
	// A clean worker is still fine.
	if err := client.SubmitAnswer(AnswerDTO{Task: 3, Worker: "good", Option: 1}); err != nil {
		t.Fatal(err)
	}
}

// The answer body is bounded: a payload over the limit gets 413 instead of
// being buffered wholesale by the JSON decoder.
func TestAnswerBodyBounded(t *testing.T) {
	rng := stats.NewRNG(3)
	ts, _ := newTestServer(t, testPool(rng, 1), nil, nil)

	huge := fmt.Sprintf(`{"task":1,"worker":"w","text":%q}`, strings.Repeat("A", maxAnswerBody+1024))
	resp, err := http.Post(ts.URL+"/api/answer", "application/json", strings.NewReader(huge))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: HTTP %d, want 413", resp.StatusCode)
	}

	// Garbage under the limit is still a plain 400.
	resp, err = http.Post(ts.URL+"/api/answer", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body: HTTP %d, want 400", resp.StatusCode)
	}

	// A maximal legitimate submission still works.
	if resp, err = http.Post(ts.URL+"/api/answer", "application/json",
		strings.NewReader(`{"task":1,"worker":"w","option":1}`)); err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("normal body: HTTP %d, want 200", resp.StatusCode)
	}
}

// --- crash-recovery acceptance ---------------------------------------------

// ackTracker is a RoundTripper that remembers every answer the server
// acknowledged with 200, and fires crashFn while request number crashAt is
// in flight — so the crash lands mid-load with other submissions racing.
type ackTracker struct {
	base    http.RoundTripper
	crashAt int
	crashFn func()

	mu    sync.Mutex
	acked []AnswerDTO
}

func (a *ackTracker) RoundTrip(req *http.Request) (*http.Response, error) {
	if req.Method != http.MethodPost || !strings.HasSuffix(req.URL.Path, "/api/answer") {
		return a.base.RoundTrip(req)
	}
	body, err := io.ReadAll(req.Body)
	if err != nil {
		return nil, err
	}
	req.Body = io.NopCloser(bytes.NewReader(body))
	resp, err := a.base.RoundTrip(req)
	if err != nil || resp.StatusCode != http.StatusOK {
		return resp, err
	}
	var dto AnswerDTO
	if jErr := json.Unmarshal(body, &dto); jErr != nil {
		return resp, err
	}
	a.mu.Lock()
	a.acked = append(a.acked, dto)
	n := len(a.acked)
	a.mu.Unlock()
	if n == a.crashAt && a.crashFn != nil {
		a.crashFn()
	}
	return resp, err
}

func (a *ackTracker) ackedAnswers() []AnswerDTO {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]AnswerDTO(nil), a.acked...)
}

// driveUntilFailure runs workers concurrently against the server until the
// pool is drained or the server starts failing (post-crash 500s).
func driveUntilFailure(t *testing.T, client *Client, workers int) {
	t.Helper()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			name := fmt.Sprintf("w%d", w)
			for {
				dto, ok, err := client.FetchTask(name)
				if err != nil || !ok {
					return
				}
				if err := client.SubmitAnswer(AnswerDTO{Task: dto.ID, Worker: name, Option: 1}); err != nil {
					var apiErr *APIError
					if errors.As(err, &apiErr) && apiErr.StatusCode == http.StatusConflict {
						continue // lost a race; keep working
					}
					return // durability failure or transport error: this worker stops
				}
			}
		}(w)
	}
	wg.Wait()
}

// seededServer opens a durable store in dir, seeds nTasks, and wires a
// server with durability (and leases) on. rngSeed fixes the task set so a
// control pool can be rebuilt identically.
func seededServer(t *testing.T, dir string, rngSeed uint64, nTasks int) (*Server, *durable.Store, *core.Budget) {
	t.Helper()
	store, info, err := durable.Open(dir, durable.Options{Fsync: durable.FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	if !info.Empty() {
		t.Fatalf("expected empty data dir, recovered %+v", info)
	}
	pool := testPool(stats.NewRNG(rngSeed), nTasks)
	if err := SeedJournal(store, pool); err != nil {
		t.Fatal(err)
	}
	budget := core.Unlimited()
	srv, err := New(pool, assign.FewestAnswers{}, budget, nil,
		WithDurability(store), WithLeaseTTL(30*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	return srv, store, budget
}

// recoveredServer reopens dir and builds a server over the recovered
// state, returning the adopted pool for direct inspection.
func recoveredServer(t *testing.T, dir string) (*Client, *core.Pool, *core.Budget, *durable.RecoveryInfo) {
	t.Helper()
	store, info, err := durable.Open(dir, durable.Options{Fsync: durable.FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	budget := core.Unlimited()
	pool := AdoptRecovered(store, budget, nil)
	srv, err := New(pool, assign.FewestAnswers{}, budget, nil, WithDurability(store))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(func() { ts.Close(); srv.Close() })
	return NewClient(ts.URL), pool, budget, info
}

// The acceptance test for the durability tentpole: kill the store mid-load
// (the in-process equivalent of kill -9 at the durability boundary),
// restart from the same directory, and require that every acknowledged
// answer — and nothing else — survived, with the budget agreeing.
func TestCrashRecoveryLosesNoAckedAnswers(t *testing.T) {
	const (
		rngSeed = 7
		nTasks  = 40
		workers = 8
		crashAt = 100
	)
	dir := t.TempDir()
	srv, store, _ := seededServer(t, dir, rngSeed, nTasks)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Close()

	tracker := &ackTracker{
		base:    http.DefaultTransport,
		crashAt: crashAt,
		crashFn: store.Crash,
	}
	client := NewClient(ts.URL, WithRetry(-1, 0, 0))
	client.HTTP = &http.Client{Transport: tracker, Timeout: 10 * time.Second}

	driveUntilFailure(t, client, workers)
	acked := tracker.ackedAnswers()
	if len(acked) < crashAt {
		t.Fatalf("only %d answers acked; crash at %d never happened", len(acked), crashAt)
	}
	// The drive must have been cut short: with 8 workers x 40 tasks the
	// uncrashed run collects 320 answers.
	if len(acked) >= workers*nTasks {
		t.Fatalf("all %d answers acked; the crash did not interrupt the load", len(acked))
	}

	client2, recovered, budget2, info := recoveredServer(t, dir)
	if info.Empty() {
		t.Fatal("recovery found nothing")
	}

	// Every acked answer is present exactly once, and nothing beyond the
	// acked set was resurrected.
	st, err := client2.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.TotalAnswers != len(acked) {
		t.Fatalf("recovered %d answers, %d were acked", st.TotalAnswers, len(acked))
	}
	type key struct {
		task   core.TaskID
		worker string
	}
	seen := map[key]int{}
	for _, a := range acked {
		seen[key{a.Task, a.Worker}]++
	}
	for k, n := range seen {
		if n != 1 {
			t.Fatalf("answer %+v acked %d times", k, n)
		}
		found := 0
		for _, a := range recovered.Answers(k.task) {
			if a.Worker == k.worker {
				found++
			}
		}
		if found != 1 {
			t.Fatalf("acked answer %+v recovered %d times, want exactly once", k, found)
		}
	}

	// budget_spent equals the acked answer count.
	if budget2.Spent() != float64(len(acked)) {
		t.Fatalf("recovered budget spent = %v, want %d", budget2.Spent(), len(acked))
	}
	if st.BudgetSpent != float64(len(acked)) {
		t.Fatalf("/api/stats budget_spent = %v, want %d", st.BudgetSpent, len(acked))
	}

	// /api/results over the recovered pool agrees with a control server
	// that never crashed: same tasks, same acked answers, no journal.
	ctrlPool := testPool(stats.NewRNG(rngSeed), nTasks)
	for _, a := range acked {
		if err := ctrlPool.Record(core.Answer{Task: a.Task, Worker: a.Worker, Option: a.Option}); err != nil {
			t.Fatalf("control record %+v: %v", a, err)
		}
	}
	_, ctrlClient := newTestServer(t, ctrlPool, nil, nil)
	got, err := client2.Results("mv")
	if err != nil {
		t.Fatal(err)
	}
	want, err := ctrlClient.Results("mv")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("recovered results have %d entries, control %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("result %d diverged after recovery: got %+v, want %+v", i, got[i], want[i])
		}
	}

	// The recovered server keeps serving: a fresh worker can still work.
	dto, ok, err := client2.FetchTask("fresh")
	if err != nil || !ok {
		t.Fatalf("recovered server refused an assignment: %v %v", ok, err)
	}
	if err := client2.SubmitAnswer(AnswerDTO{Task: dto.ID, Worker: "fresh", Option: 0}); err != nil {
		t.Fatal(err)
	}
}

// A torn WAL tail — the half-written record of the dying process — must
// not block the next boot: the server recovers everything before the tear
// and keeps serving.
func TestServerRecoversPastTornTail(t *testing.T) {
	dir := t.TempDir()
	srv, store, _ := seededServer(t, dir, 11, 5)
	ts := httptest.NewServer(srv)
	defer srv.Close()
	client := NewClient(ts.URL)
	for i := 0; i < 3; i++ {
		if err := client.SubmitAnswer(AnswerDTO{Task: core.TaskID(i + 1), Worker: "w", Option: 1}); err != nil {
			t.Fatal(err)
		}
	}
	store.Crash()
	ts.Close()

	// Simulate the torn final append of the dying process.
	f, err := os.OpenFile(filepath.Join(dir, "wal.log"), os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xde, 0xad, 0xbe}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	client2, _, _, info := recoveredServer(t, dir)
	if info.TornBytes != 3 {
		t.Fatalf("recovery reported %d torn bytes, want 3", info.TornBytes)
	}
	st, err := client2.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.TotalAnswers != 3 {
		t.Fatalf("recovered %d answers past torn tail, want 3", st.TotalAnswers)
	}
	if err := client2.SubmitAnswer(AnswerDTO{Task: 4, Worker: "w", Option: 0}); err != nil {
		t.Fatal(err)
	}
}

// Golden-screen tallies ride the journal: a worker eliminated before the
// crash stays eliminated after recovery.
func TestEliminationSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	store, _, err := durable.Open(dir, durable.Options{Fsync: durable.FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	pool := goldenPool(3, 1)
	if err := SeedJournal(store, pool); err != nil {
		t.Fatal(err)
	}
	screen := core.NewWorkerScreen(2, 0.9)
	srv, err := New(pool, assign.FewestAnswers{}, nil, screen, WithDurability(store))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	client := NewClient(ts.URL)
	for id := core.TaskID(1); id <= 2; id++ {
		if err := client.SubmitAnswer(AnswerDTO{Task: id, Worker: "bad", Option: 0}); err != nil {
			t.Fatal(err)
		}
	}
	store.Crash()
	ts.Close()

	store2, _, err := durable.Open(dir, durable.Options{Fsync: durable.FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	screen2 := core.NewWorkerScreen(2, 0.9)
	pool2 := AdoptRecovered(store2, nil, screen2)
	if !screen2.Eliminated("bad") {
		t.Fatal("elimination did not survive the restart")
	}
	srv2, err := New(pool2, assign.FewestAnswers{}, nil, screen2, WithDurability(store2))
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv2)
	t.Cleanup(func() { ts2.Close(); srv2.Close() })
	err = NewClient(ts2.URL).SubmitAnswer(AnswerDTO{Task: 3, Worker: "bad", Option: 1})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusForbidden {
		t.Fatalf("recovered server accepted the eliminated worker: %v", err)
	}
}
