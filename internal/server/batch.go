package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"repro/internal/core"
)

// Batch ingestion: POST /api/answers accepts many submissions in one
// request. The cost model is what justifies the endpoint — the request is
// validated in one pass, answers are grouped by pool shard so each shard's
// write lock is taken once (RecordBatch), and durability is one journal
// append (one group-commit fsync under FsyncAlways) per touched WAL
// segment instead of one per answer. Items succeed or fail independently:
// the response carries a status per item in request order, so one
// duplicate does not reject the rest of a crowd upload.

const (
	// maxBatchBody bounds the /api/answers request body. Large enough for
	// a few thousand collection-task answers, small enough that a hostile
	// client cannot make the decoder buffer unbounded memory per request.
	maxBatchBody = 8 << 20
	// maxBatchItems caps how many answers one batch may carry; bigger
	// uploads split into multiple requests.
	maxBatchItems = 4096
)

// BatchItemDTO reports the outcome of one batch item, in request order.
// Status is "recorded" (accepted and durable), "rejected" (this item was
// refused — duplicate, unknown task, budget, elimination — others were
// unaffected), or "failed" (accepted but the journal refused the batch;
// the item was rolled back and may be resubmitted).
type BatchItemDTO struct {
	Status string `json:"status"`
	Error  string `json:"error,omitempty"`
}

// BatchResultDTO is the /api/answers response.
type BatchResultDTO struct {
	Recorded int            `json:"recorded"`
	Rejected int            `json:"rejected"`
	Results  []BatchItemDTO `json:"results"`
}

const (
	batchRecorded = "recorded"
	batchRejected = "rejected"
	batchFailed   = "failed"
)

// batchItem tracks one accepted submission through the durability step so
// it can be rolled back if the journal refuses the batch.
type batchItem struct {
	idx    int // position in the request
	answer core.Answer
	golden *bool
}

func (s *Server) handleAnswerBatch(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, maxBatchBody)
	var dtos []AnswerDTO
	if err := json.NewDecoder(r.Body).Decode(&dtos); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			httpError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit))
			return
		}
		httpError(w, http.StatusBadRequest, "invalid JSON: "+err.Error())
		return
	}
	if len(dtos) > maxBatchItems {
		httpError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("batch of %d answers exceeds the %d-item limit", len(dtos), maxBatchItems))
		return
	}

	out := BatchResultDTO{Results: make([]BatchItemDTO, len(dtos))}
	reject := func(i int, msg string) {
		out.Results[i] = BatchItemDTO{Status: batchRejected, Error: msg}
	}

	// Validation pass, then group the survivors by pool shard so the
	// recording pass takes each shard's write lock exactly once.
	byShard := make([][]int, s.cpool.NumShards())
	for i, dto := range dtos {
		if dto.Worker == "" {
			reject(i, "missing worker")
			continue
		}
		if s.screen != nil && s.screen.Eliminated(dto.Worker) {
			reject(i, "worker eliminated by quality screening")
			continue
		}
		if s.cpool.Task(dto.Task) == nil {
			reject(i, fmt.Sprintf("unknown task %d", dto.Task))
			continue
		}
		sh := s.cpool.ShardFor(dto.Task)
		byShard[sh] = append(byShard[sh], i)
	}

	// Recording pass, shard by shard in ascending order (deterministic for
	// a given request). Each item reserves budget individually, exactly as
	// on the single-answer path, so a rejected item never spends.
	var accepted []batchItem
	for sh, idxs := range byShard {
		if len(idxs) == 0 {
			continue
		}
		charged := idxs[:0]
		answers := make([]core.Answer, 0, len(idxs))
		for _, i := range idxs {
			// Re-check elimination: an earlier item in this batch may have
			// tipped the worker over the golden threshold.
			if s.screen != nil && s.screen.Eliminated(dtos[i].Worker) {
				reject(i, "worker eliminated by quality screening")
				continue
			}
			if !s.budget.TryCharge(1) {
				reject(i, "budget exhausted")
				continue
			}
			charged = append(charged, i)
			answers = append(answers, core.Answer{
				Task: dtos[i].Task, Worker: dtos[i].Worker,
				Option: dtos[i].Option, Text: dtos[i].Text, Score: dtos[i].Score,
			})
		}
		errs := s.cpool.RecordBatch(sh, answers)
		for j, i := range charged {
			if err := errs[j]; err != nil {
				s.budget.Refund(1)
				reject(i, err.Error())
				continue
			}
			t := s.cpool.Task(answers[j].Task)
			golden := s.observeGolden(t, answers[j].Worker, answers[j].Option, answers[j].Text)
			accepted = append(accepted, batchItem{idx: i, answer: answers[j], golden: golden})
			s.notifyCQL(answers[j].Task)
			out.Results[i] = BatchItemDTO{Status: batchRecorded}
		}
	}

	// Durability pass: one journal event per touched WAL segment. The
	// store refusing the batch leaves nothing durable, so every accepted
	// item is rolled back (reverse acceptance order) and reported failed —
	// the ack-implies-durable contract of /api/answer, batch-wide.
	code := http.StatusOK
	if s.store != nil && len(accepted) > 0 {
		answers := make([]core.Answer, len(accepted))
		costs := make([]float64, len(accepted))
		goldens := make([]*bool, len(accepted))
		for j, it := range accepted {
			answers[j], costs[j], goldens[j] = it.answer, 1, it.golden
		}
		if err := s.store.AnswerBatchDurable(answers, costs, goldens); err != nil {
			for j := len(accepted) - 1; j >= 0; j-- {
				it := accepted[j]
				s.rollbackAnswer(it.answer, it.golden)
				out.Results[it.idx] = BatchItemDTO{
					Status: batchFailed, Error: "answer not persisted: " + err.Error(),
				}
			}
			code = http.StatusInternalServerError
		}
	}

	for _, item := range out.Results {
		if item.Status == batchRecorded {
			out.Recorded++
		} else {
			out.Rejected++
		}
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(out)
}
