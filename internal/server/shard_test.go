package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/assign"
	"repro/internal/core"
	"repro/internal/durable"
	"repro/internal/stats"
)

// newShardServer wires a server with an explicit shard count (ignoring the
// CROWDKIT_TEST_SHARDS override, which newTestServer honors).
func newShardServer(t *testing.T, pool *core.Pool, budget *core.Budget, screen *core.WorkerScreen, shards int) (*httptest.Server, *Client) {
	t.Helper()
	srv, err := New(pool, assign.FewestAnswers{}, budget, screen, WithShards(shards))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts, NewClient(ts.URL)
}

// getBody fetches a URL and returns the raw response bytes, for the
// byte-identical equivalence checks.
func getBody(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: HTTP %d: %s", url, resp.StatusCode, body)
	}
	return body
}

// The sharding acceptance test: the same task set and the same submission
// script must produce byte-identical /api/stats and /api/results responses
// whether the pool runs unsharded or split across several shards.
func TestShardEquivalence(t *testing.T) {
	const (
		tasks   = 40
		workers = 5
		seed    = 77
	)
	submit := func(t *testing.T, client *Client) {
		rng := stats.NewRNG(seed + 1)
		for id := core.TaskID(1); id <= tasks; id++ {
			for w := 0; w < workers; w++ {
				err := client.SubmitAnswer(AnswerDTO{
					Task: id, Worker: fmt.Sprintf("w%d", w), Option: rng.Intn(2),
				})
				if err != nil {
					t.Fatalf("task %d worker %d: %v", id, w, err)
				}
			}
		}
	}

	ts1, client1 := newShardServer(t, testPool(stats.NewRNG(seed), tasks), nil, nil, 1)
	submit(t, client1)
	for _, n := range []int{2, 4, 8} {
		tsN, clientN := newShardServer(t, testPool(stats.NewRNG(seed), tasks), nil, nil, n)
		submit(t, clientN)
		for _, path := range []string{
			"/api/stats", "/api/results?method=mv", "/api/results?method=ds",
		} {
			got := getBody(t, tsN.URL+path)
			want := getBody(t, ts1.URL+path)
			if !bytes.Equal(got, want) {
				t.Errorf("shards=%d: %s diverged from shards=1:\n got: %s\nwant: %s",
					n, path, got, want)
			}
		}
	}
}

// Batch ingestion: items succeed and fail independently, statuses come
// back in request order, and only recorded items spend budget.
func TestBatchAnswers(t *testing.T) {
	rng := stats.NewRNG(21)
	pool := testPool(rng, 8)
	budget := core.NewBudget(100)
	_, client := newTestServer(t, pool, budget, nil)

	res, err := client.SubmitAnswers([]AnswerDTO{
		{Task: 1, Worker: "a", Option: 1},
		{Task: 2, Worker: "a", Option: 0},
		{Task: 1, Worker: "b", Option: 1},
		{Task: 1, Worker: "a", Option: 0},   // duplicate of item 0
		{Task: 999, Worker: "a", Option: 1}, // unknown task
		{Task: 3, Worker: "", Option: 1},    // missing worker
		{Task: 3, Worker: "b", Option: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	wantStatus := []string{
		batchRecorded, batchRecorded, batchRecorded,
		batchRejected, batchRejected, batchRejected,
		batchRecorded,
	}
	if len(res.Results) != len(wantStatus) {
		t.Fatalf("got %d results, want %d", len(res.Results), len(wantStatus))
	}
	for i, want := range wantStatus {
		if res.Results[i].Status != want {
			t.Errorf("item %d: status %q (%s), want %q",
				i, res.Results[i].Status, res.Results[i].Error, want)
		}
	}
	if res.Recorded != 4 || res.Rejected != 3 {
		t.Fatalf("recorded/rejected = %d/%d, want 4/3", res.Recorded, res.Rejected)
	}
	if budget.Spent() != 4 {
		t.Fatalf("budget spent %v, want 4 (only recorded items pay)", budget.Spent())
	}
	st, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.TotalAnswers != 4 {
		t.Fatalf("total answers %d, want 4", st.TotalAnswers)
	}

	// A batch that outruns the budget records only what it can pay for.
	budget2 := core.NewBudget(2)
	_, client2 := newTestServer(t, testPool(stats.NewRNG(22), 8), budget2, nil)
	res, err = client2.SubmitAnswers([]AnswerDTO{
		{Task: 1, Worker: "a", Option: 1},
		{Task: 2, Worker: "a", Option: 1},
		{Task: 3, Worker: "a", Option: 1},
		{Task: 4, Worker: "a", Option: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Recorded != 2 || res.Rejected != 2 {
		t.Fatalf("over-budget batch: recorded/rejected = %d/%d, want 2/2", res.Recorded, res.Rejected)
	}
	if budget2.Spent() != 2 {
		t.Fatalf("over-budget batch spent %v, want 2", budget2.Spent())
	}
}

// Batch request bounds: too many items is a 413, not a truncated accept.
func TestBatchItemCap(t *testing.T) {
	ts, _ := newTestServer(t, testPool(stats.NewRNG(23), 1), nil, nil)
	batch := make([]AnswerDTO, maxBatchItems+1)
	for i := range batch {
		batch[i] = AnswerDTO{Task: 1, Worker: fmt.Sprintf("w%d", i), Option: 1}
	}
	body, _ := json.Marshal(batch)
	resp, err := http.Post(ts.URL+"/api/answers", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized batch: HTTP %d, want 413", resp.StatusCode)
	}
}

// Regression for the resubmission-cap bugfix: before it, a worker could
// resubmit the same MultiChoice task without limit, each accepted answer
// draining one budget unit. Now submissions beyond core.MaxRepeatAnswers
// are rejected with 409 and spend nothing.
func TestResubmissionBudgetDrain(t *testing.T) {
	pool := core.NewPool()
	pool.MustAdd(&core.Task{
		ID: 1, Kind: core.MultiChoice,
		Question: "pick any", Options: []string{"a", "b", "c"},
		GroundTruth: -1,
	})
	budget := core.NewBudget(1000)
	_, client := newTestServer(t, pool, budget, nil)

	for i := 0; i < core.MaxRepeatAnswers; i++ {
		if err := client.SubmitAnswer(AnswerDTO{Task: 1, Worker: "grinder", Option: i % 3}); err != nil {
			t.Fatalf("submission %d under the cap rejected: %v", i, err)
		}
	}
	for i := 0; i < 5; i++ {
		err := client.SubmitAnswer(AnswerDTO{Task: 1, Worker: "grinder", Option: 0})
		var apiErr *APIError
		if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusConflict {
			t.Fatalf("submission beyond the cap: err = %v, want HTTP 409", err)
		}
	}
	if spent := budget.Spent(); spent != core.MaxRepeatAnswers {
		t.Fatalf("budget spent %v, want %d: rejected resubmissions drained budget",
			spent, core.MaxRepeatAnswers)
	}
	// Another worker still has the full cap available.
	if err := client.SubmitAnswer(AnswerDTO{Task: 1, Worker: "other", Option: 1}); err != nil {
		t.Fatalf("other worker blocked by grinder's cap: %v", err)
	}
}

// Regression for the journal-failure divergence bugfix: when the store
// refuses an answer, the 500 used to leave the answer recorded in memory
// with its budget charge and golden observation — memory ran ahead of disk
// until the next restart silently dropped the answer. The fix rolls the
// submission back, so a 500 means "as if never submitted".
func TestJournalFailureRollsBack(t *testing.T) {
	dir := t.TempDir()
	store, info, err := durable.Open(dir, durable.Options{Fsync: durable.FsyncNever, Segments: testShards()})
	if err != nil {
		t.Fatal(err)
	}
	if !info.Empty() {
		t.Fatalf("expected empty data dir, got %+v", info)
	}
	pool := goldenPool(6, 1)
	if err := SeedJournal(store, pool); err != nil {
		t.Fatal(err)
	}
	budget := core.NewBudget(100)
	screen := core.NewWorkerScreen(2, 0.9)
	srv, err := New(pool, assign.FewestAnswers{}, budget, screen,
		WithShards(testShards()), WithDurability(store))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	client := NewClient(ts.URL, WithRetry(-1, 0, 0))

	// One healthy submission, then kill the store underneath the server.
	if err := client.SubmitAnswer(AnswerDTO{Task: 1, Worker: "w", Option: 1}); err != nil {
		t.Fatal(err)
	}
	before, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	store.Crash()

	// Two wrong golden answers after the crash: both must come back 500,
	// and neither may stick — not the answer, not the budget charge, and
	// not the golden observation (two misses would eliminate the worker).
	for _, task := range []core.TaskID{2, 3} {
		err := client.SubmitAnswer(AnswerDTO{Task: task, Worker: "w", Option: 0})
		var apiErr *APIError
		if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusInternalServerError {
			t.Fatalf("submission after store crash: err = %v, want HTTP 500", err)
		}
	}
	// A failed batch rolls back the same way.
	if _, err := client.SubmitAnswers([]AnswerDTO{
		{Task: 4, Worker: "w", Option: 0},
		{Task: 5, Worker: "w", Option: 0},
	}); err == nil {
		t.Fatal("batch after store crash should fail")
	}

	after, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if *after != *before {
		t.Fatalf("failed submissions mutated serving state:\nbefore %+v\nafter  %+v", before, after)
	}
	if budget.Spent() != 1 {
		t.Fatalf("budget spent %v, want 1 (only the acknowledged answer pays)", budget.Spent())
	}
	if screen.Eliminated("w") {
		t.Fatal("rolled-back golden observations eliminated the worker")
	}
}

// Regression for the handleTask nil-dereference: an assigner handing out a
// task id the pool does not hold must produce a 503, not a panic in the
// handler goroutine.
func TestTaskVanishNilGuard(t *testing.T) {
	pool := testPool(stats.NewRNG(31), 1)
	vanish := core.AssignerFunc(func(p *core.Pool, worker string) (core.TaskID, bool) {
		return 999, true // a task the pool has never heard of
	})
	srv, err := New(pool, vanish, nil, nil, WithShards(testShards()))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	resp, err := http.Get(ts.URL + "/api/task?worker=w")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("vanished task: HTTP %d, want 503", resp.StatusCode)
	}
}

// A sharded durable server survives a restart: answers land on several
// WAL segments and recovery merges them back into the same serving state.
func TestShardedDurableRestart(t *testing.T) {
	const shards = 4
	dir := t.TempDir()
	store, info, err := durable.Open(dir, durable.Options{Fsync: durable.FsyncNever, Segments: shards})
	if err != nil {
		t.Fatal(err)
	}
	if !info.Empty() {
		t.Fatalf("expected empty dir, got %+v", info)
	}
	pool := testPool(stats.NewRNG(41), 16)
	if err := SeedJournal(store, pool); err != nil {
		t.Fatal(err)
	}
	budget := core.Unlimited()
	srv, err := New(pool, assign.FewestAnswers{}, budget, nil,
		WithShards(shards), WithDurability(store), WithLeaseTTL(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	client := NewClient(ts.URL)

	var batch []AnswerDTO
	for id := core.TaskID(1); id <= 16; id++ {
		for w := 0; w < 3; w++ {
			batch = append(batch, AnswerDTO{Task: id, Worker: fmt.Sprintf("w%d", w), Option: 1})
		}
	}
	res, err := client.SubmitAnswers(batch)
	if err != nil {
		t.Fatal(err)
	}
	if res.Recorded != len(batch) {
		t.Fatalf("recorded %d of %d batch answers", res.Recorded, len(batch))
	}
	ts.Close()
	srv.Close()

	store2, info2, err := durable.Open(dir, durable.Options{Fsync: durable.FsyncNever, Segments: shards})
	if err != nil {
		t.Fatal(err)
	}
	if info2.Empty() {
		t.Fatal("recovery found nothing")
	}
	budget2 := core.Unlimited()
	pool2 := AdoptRecovered(store2, budget2, nil)
	srv2, err := New(pool2, assign.FewestAnswers{}, budget2, nil,
		WithShards(shards), WithDurability(store2))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv2.Close)
	ts2 := httptest.NewServer(srv2)
	t.Cleanup(ts2.Close)

	st, err := NewClient(ts2.URL).Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.TotalAnswers != len(batch) {
		t.Fatalf("recovered %d answers, want %d", st.TotalAnswers, len(batch))
	}
	if st.BudgetSpent != float64(len(batch)) {
		t.Fatalf("recovered budget %v, want %d", st.BudgetSpent, len(batch))
	}
}
