package server

import (
	"context"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/truth"
)

// ResultsVersionHeader stamps every /api/results response with the pool
// version the served result was computed at, so staleness-aware clients
// (and the background-refresh mode, which serves the last complete result
// immediately) can tell exactly how fresh their labels are: compare
// against a version observed after your last submission, or just watch it
// move.
const ResultsVersionHeader = "X-Results-Version"

// defaultDeltaLogCap is the per-shard answer-log capacity backing the
// delta path. At the default 8 shards this retains the last ~64k answers;
// a results poll cadence that falls further behind than that simply falls
// back to a full rebuild.
const defaultDeltaLogCap = 8192

// groupSnap caches the option-count grouping of the choice tasks: which
// tasks belong to each inference group, with their *Task pointers hoisted
// so the DTO-rendering loop never goes back to the pool (tasks are
// immutable once added, so the pointers stay valid outside the locks).
//
// The grouping only changes when the task set changes. vers remembers the
// per-shard versions the grouping was last validated at; as long as every
// shard's answer log covers the window since then (only answer appends
// and closes happened), the grouping is still exact and the full
// task-table scan is skipped.
type groupSnap struct {
	vers  []uint64
	ks    []int // sorted option counts
	ids   map[int][]core.TaskID
	tasks map[int][]*core.Task // index-aligned with ids
	kOf   map[core.TaskID]int  // option count per choice task
}

// resultGroup carries one (option count) inference unit from the snapshot
// phase to the compute phase.
type resultGroup struct {
	k     int
	ids   []core.TaskID
	tasks []*core.Task

	res *truth.Result // set on cache hit; else filled by compute

	// Compute-phase inputs: exactly one of ds (full rebuild) or base
	// (incremental: extend base with delta) is set when res is nil.
	ds    *truth.Dataset
	base  *truth.Dataset
	delta []core.Answer
	warm  *truth.WarmState

	// refreshOnly marks a group whose answers did not change across the
	// version bump (e.g. only other groups grew, or a task was closed):
	// the cached result is still exact and is re-registered at the new
	// version without touching the dataset or running inference.
	refreshOnly bool
	refreshDS   *truth.Dataset
}

// newInferrer builds the inference kernel for a validated method name,
// seeded with warm (nil = cold start) and observed by emObs (nil = the
// metrics observer, or nothing). Returns nil for unknown methods.
func (s *Server) newInferrer(method string, warm *truth.WarmState, emObs obs.EMObserver) truth.Inferrer {
	if emObs == nil {
		emObs = s.emObserver()
	}
	switch method {
	case "mv":
		return truth.MajorityVote{}
	case "onecoin":
		return truth.OneCoinEM{Obs: emObs, Warm: warm}
	case "ds":
		return truth.DawidSkene{Obs: emObs, Warm: warm}
	case "glad":
		return truth.GLAD{Obs: emObs, Warm: warm}
	}
	return nil
}

// emMethod reports whether the method is iterative (warm-startable).
func emMethod(method string) bool {
	return method == "onecoin" || method == "ds" || method == "glad"
}

func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	method := strings.ToLower(r.URL.Query().Get("method"))
	if method == "" {
		method = "mv"
	}
	if s.newInferrer(method, nil, nil) == nil {
		httpError(w, http.StatusBadRequest, "unknown method "+method)
		return
	}

	if s.refreshEvery > 0 {
		// Background-refresh mode: register the method with the refresher
		// and serve the last complete result immediately — pollers never
		// wait on inference. Until the first refresh completes there is
		// nothing to serve, so fall through to the inline path once.
		s.noteRefreshMethod(method)
		if s.serveStale(w, method) {
			return
		}
	}

	groups, version, err := s.computeResults(r.Context(), method)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeResults(w, groups, version)
}

// writeResults renders the DTO list from the hoisted task pointers — no
// pool lookups, no locks — and stamps the version header.
func writeResults(w http.ResponseWriter, groups []*resultGroup, version uint64) {
	nTasks := 0
	for _, g := range groups {
		nTasks += len(g.ids)
	}
	out := make([]ResultDTO, 0, nTasks)
	for _, g := range groups {
		for i, id := range g.ids {
			t := g.tasks[i]
			lbl := g.res.Labels[id]
			opt := ""
			if lbl >= 0 && lbl < len(t.Options) {
				opt = t.Options[lbl]
			}
			out = append(out, ResultDTO{
				Task: id, Label: lbl, Option: opt,
				Confidence: g.res.Confidence(id),
			})
		}
	}
	w.Header().Set(ResultsVersionHeader, strconv.FormatUint(version, 10))
	writeJSON(w, out)
}

// computeResults produces up-to-date results for every option-count group
// at a consistent pool version. The snapshot phase runs under every
// shard's read lock and copies as little as it can get away with: nothing
// for cache-hit groups, only the appended answers for delta-covered
// groups, the full answer set otherwise. Dataset building and inference
// run outside the locks, deduplicated per (method, k, version) so a
// thundering herd of pollers triggers at most one EM run.
func (s *Server) computeResults(ctx context.Context, method string) ([]*resultGroup, uint64, error) {
	var (
		groups   []*resultGroup
		version  uint64
		versSnap []uint64
		snapErr  error
	)
	s.cpool.ViewDelta(func(v *core.DeltaView) {
		version = v.Version()
		versSnap = append([]uint64(nil), v.Versions...)
		gs := s.groupsFor(v)
		view := shardView(v.Pools)
		for _, k := range gs.ks {
			g := &resultGroup{k: k, ids: gs.ids[k], tasks: gs.tasks[k]}
			groups = append(groups, g)
			key := truth.ResultKey{Method: method, K: k}
			e, ok := s.cache.Latest(key)
			if ok && e.Version == version {
				g.res = e.Res // exact hit: nothing to copy, nothing to run
				continue
			}
			if ok && s.resultsWarm {
				g.warm = e.Res.Warm // nil for non-iterative methods
			}
			if ok && e.DS != nil && len(e.Shards) == len(v.Versions) {
				if delta, covered := collectDelta(v, e.Shards, gs, k); covered {
					if len(delta) == 0 {
						// The version moved but this group's answers did
						// not: re-register the cached result, skip
						// FromPool and inference entirely.
						g.res, g.refreshOnly, g.refreshDS = e.Res, true, e.DS
					} else {
						g.base, g.delta = e.DS, delta
					}
					continue
				}
			}
			ds, err := truth.FromPool(view, g.ids)
			if err != nil {
				snapErr = err
				return
			}
			g.ds = ds
		}
	})
	if snapErr != nil {
		return nil, 0, snapErr
	}

	for _, g := range groups {
		if g.res != nil && !g.refreshOnly {
			continue
		}
		key := truth.ResultKey{Method: method, K: g.k}
		if g.refreshOnly {
			s.cache.Put(key, truth.CacheEntry{Version: version, Shards: versSnap, Res: g.res, DS: g.refreshDS})
			s.resM.groupSkips.Inc()
			continue
		}
		g := g
		res, err, shared := s.flight.do(flightKey{method: method, k: g.k, version: version}, func() (*truth.Result, error) {
			ds := g.ds
			if ds == nil {
				nd, err := g.base.AppendDelta(g.delta)
				if err != nil {
					return nil, err
				}
				ds = nd
				s.resM.deltaBuilds.Inc()
			} else {
				s.resM.fullBuilds.Inc()
			}
			if emMethod(method) {
				if g.warm != nil {
					s.resM.warmHits.Inc()
				} else {
					s.resM.warmMisses.Inc()
				}
			}
			_, esp := obs.ChildSpan(ctx, "em.run")
			if esp.Recording() {
				esp.SetAttr(obs.Str("em.method", method), obs.Int("k", int64(g.k)),
					obs.Int("tasks", int64(len(g.ids))), obs.Bool("warm", g.warm != nil))
			}
			res, err := s.newInferrer(method, g.warm, obs.EMObserverWithSpan(s.emObserver(), esp)).Infer(ds)
			esp.SetError(err)
			esp.End()
			if err != nil {
				return nil, err
			}
			s.cache.Put(key, truth.CacheEntry{Version: version, Shards: versSnap, Res: res, DS: ds})
			return res, nil
		})
		if err != nil {
			return nil, 0, err
		}
		if shared {
			s.resM.flightShared.Inc()
		}
		g.res = res
	}
	return groups, version, nil
}

// collectDelta gathers the answers appended to group k since the cached
// per-shard versions. covered is false when any shard's log no longer
// reaches back to the snapshot (the caller falls back to a full build).
func collectDelta(v *core.DeltaView, since []uint64, gs *groupSnap, k int) (delta []core.Answer, covered bool) {
	for i := range v.Versions {
		var ok bool
		delta, ok = v.AppendedSince(i, since[i], delta)
		if !ok {
			return nil, false
		}
	}
	// Keep only this group's usable answers (same filter FromPool
	// applies); answers for other groups or non-choice tasks drop out.
	n := 0
	for _, a := range delta {
		if gk, ok := gs.kOf[a.Task]; ok && gk == k && a.Option >= 0 && a.Option < k {
			delta[n] = a
			n++
		}
	}
	return delta[:n], true
}

// groupsFor returns the option-count grouping valid for the snapshot in
// v, revalidating the cached grouping via the answer logs (appends and
// closes cannot change group membership) and rebuilding it with a full
// task-table scan only when a structural change forces it. Callers hold
// the shard read locks (via ViewDelta); groupMu orders concurrent
// revalidations.
func (s *Server) groupsFor(v *core.DeltaView) *groupSnap {
	s.groupMu.Lock()
	defer s.groupMu.Unlock()
	if gs := s.groups; gs != nil && len(gs.vers) == len(v.Versions) {
		ok := true
		for i := range v.Versions {
			if v.Versions[i] != gs.vers[i] && !v.CanDelta(i, gs.vers[i]) {
				ok = false
				break
			}
		}
		if ok {
			// Advance the validation point so a later log trim between two
			// unchanged-membership polls does not force a spurious rebuild.
			copy(gs.vers, v.Versions)
			return gs
		}
	}
	view := shardView(v.Pools)
	gs := &groupSnap{
		vers:  append([]uint64(nil), v.Versions...),
		ids:   map[int][]core.TaskID{},
		tasks: map[int][]*core.Task{},
		kOf:   map[core.TaskID]int{},
	}
	for _, id := range view.taskIDs() {
		t := view.Task(id)
		switch t.Kind {
		case core.SingleChoice, core.MultiChoice, core.PairwiseComparison:
			k := len(t.Options)
			gs.ids[k] = append(gs.ids[k], id)
			gs.tasks[k] = append(gs.tasks[k], t)
			gs.kOf[id] = k
		}
	}
	gs.ks = make([]int, 0, len(gs.ids))
	for k := range gs.ids {
		gs.ks = append(gs.ks, k)
	}
	sort.Ints(gs.ks)
	s.groups = gs
	return gs
}

// --- background refresh -------------------------------------------------

// noteRefreshMethod registers a method with the background refresher the
// first time a client asks for it, so the refresher only burns cycles on
// methods somebody actually polls.
func (s *Server) noteRefreshMethod(method string) {
	s.refreshMu.Lock()
	if s.refreshMethods == nil {
		s.refreshMethods = make(map[string]bool)
	}
	s.refreshMethods[method] = true
	s.refreshMu.Unlock()
}

// serveStale renders the last complete result for method from the cache,
// whatever version it is at, and reports whether it could. The version
// header carries the oldest version across the groups — the conservative
// bound on how stale the payload is.
func (s *Server) serveStale(w http.ResponseWriter, method string) bool {
	s.groupMu.Lock()
	gs := s.groups
	s.groupMu.Unlock()
	if gs == nil || len(gs.ks) == 0 {
		return false
	}
	groups := make([]*resultGroup, 0, len(gs.ks))
	minVer := ^uint64(0)
	for _, k := range gs.ks {
		e, ok := s.cache.Latest(truth.ResultKey{Method: method, K: k})
		if !ok {
			return false
		}
		if e.Version < minVer {
			minVer = e.Version
		}
		groups = append(groups, &resultGroup{k: k, ids: gs.ids[k], tasks: gs.tasks[k], res: e.Res})
	}
	s.resM.staleServes.Inc()
	writeResults(w, groups, minVer)
	return true
}

// refreshLoop keeps the result cache fresh so pollers in refresh mode
// always hit serveStale. One recompute per tick per polled method, and
// only when the pool actually moved.
func (s *Server) refreshLoop() {
	t := time.NewTicker(s.refreshEvery)
	defer t.Stop()
	for {
		select {
		case <-s.stopRefresher:
			return
		case <-t.C:
			s.refreshAll()
		}
	}
}

func (s *Server) refreshAll() {
	s.refreshMu.Lock()
	methods := make([]string, 0, len(s.refreshMethods))
	for m := range s.refreshMethods {
		methods = append(methods, m)
	}
	s.refreshMu.Unlock()
	sort.Strings(methods)

	// Each sweep that does work is its own trace; idle ticks discard the
	// span so they never occupy the kept ring.
	ctx := context.Background()
	var sweep *obs.Span
	if s.traceCol != nil {
		ctx, sweep = obs.StartSpan(obs.WithCollector(ctx, s.traceCol), "bg.results-refresh")
	}
	refreshed := 0
	for _, m := range methods {
		s.refreshMu.Lock()
		last := s.refreshVer[m]
		s.refreshMu.Unlock()
		if s.cpool.Version() == last {
			continue
		}
		_, version, err := s.computeResults(ctx, m)
		if err != nil {
			continue // transient (e.g. heterogeneous group mid-add); retry next tick
		}
		refreshed++
		s.refreshMu.Lock()
		if s.refreshVer == nil {
			s.refreshVer = make(map[string]uint64)
		}
		s.refreshVer[m] = version
		s.refreshMu.Unlock()
	}
	if sweep != nil {
		if refreshed == 0 {
			sweep.Discard()
		} else {
			sweep.SetAttr(obs.Int("methods", int64(refreshed)))
		}
		sweep.End()
	}
}
