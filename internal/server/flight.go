package server

import (
	"sync"

	"repro/internal/truth"
)

// flightKey identifies one inference computation: a thundering herd of
// /api/results pollers at the same (method, option count, pool version)
// all want the same deterministic result, so exactly one of them should
// run EM.
type flightKey struct {
	method  string
	k       int
	version uint64
}

// flightCall is one in-progress computation; waiters block on done.
type flightCall struct {
	done chan struct{}
	res  *truth.Result
	err  error
}

// resultFlight deduplicates concurrent result computations per flightKey
// (a hand-rolled single-flight: the first caller for a key runs fn, every
// concurrent duplicate blocks and shares the outcome). The zero value is
// ready to use.
type resultFlight struct {
	mu    sync.Mutex
	calls map[flightKey]*flightCall
}

// do returns fn's result for key, running fn at most once across
// concurrent callers. shared reports whether this caller piggybacked on
// another's run. Results are not cached here — once a call completes, the
// key is forgotten (the ResultCache is the durable memo; the flight only
// collapses the in-progress window).
func (f *resultFlight) do(key flightKey, fn func() (*truth.Result, error)) (res *truth.Result, err error, shared bool) {
	f.mu.Lock()
	if f.calls == nil {
		f.calls = make(map[flightKey]*flightCall)
	}
	if c, ok := f.calls[key]; ok {
		f.mu.Unlock()
		<-c.done
		return c.res, c.err, true
	}
	c := &flightCall{done: make(chan struct{})}
	f.calls[key] = c
	f.mu.Unlock()

	c.res, c.err = fn()

	f.mu.Lock()
	delete(f.calls, key)
	f.mu.Unlock()
	close(c.done)
	return c.res, c.err, false
}
