package server

import (
	"bytes"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/assign"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/stats"
)

// newObsServer builds a server with the full observability layer on and
// returns it with its registry and client.
func newObsServer(t *testing.T, pool *core.Pool, extra ...Option) (*Server, *obs.Registry, *Client) {
	t.Helper()
	reg := obs.NewRegistry()
	opts := append([]Option{WithMetrics(reg)}, extra...)
	srv, err := New(pool, assign.FewestAnswers{}, nil, nil, opts...)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	t.Cleanup(srv.Close)
	return srv, reg, NewClient(ts.URL)
}

func scrape(t *testing.T, c *Client) string {
	t.Helper()
	resp, err := http.Get(c.BaseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics returned %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics Content-Type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// metricValue extracts one series value from an exposition body.
func metricValue(t *testing.T, body, series string) float64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if rest, ok := strings.CutPrefix(line, series+" "); ok {
			v, err := strconv.ParseFloat(rest, 64)
			if err != nil {
				t.Fatalf("parsing %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("series %q not found in exposition:\n%s", series, body)
	return 0
}

// TestMetricsExposition drives a loaded server end to end — assignments,
// answers, stats, EM inference — and checks that the scrape shows
// per-endpoint request counters and latency histograms, pool/budget
// gauges, and EM convergence telemetry, exactly as the acceptance
// criteria demand.
func TestMetricsExposition(t *testing.T) {
	rng := stats.NewRNG(21)
	pool := testPool(rng, 12)
	_, _, client := newObsServer(t, pool)

	for w := 0; w < 3; w++ {
		worker := fmt.Sprintf("mw-%d", w)
		for {
			dto, ok, err := client.FetchTask(worker)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			if err := client.SubmitAnswer(AnswerDTO{Task: dto.ID, Worker: worker, Option: int(dto.ID) % 2}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := client.Stats(); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Results("onecoin"); err != nil {
		t.Fatal(err)
	}

	body := scrape(t, client)
	for _, want := range []string{
		`# TYPE crowdkit_http_requests_total counter`,
		`# TYPE crowdkit_http_request_seconds histogram`,
		`crowdkit_http_requests_total{code="2xx",endpoint="/api/task"}`,
		`crowdkit_http_requests_total{code="2xx",endpoint="/api/answer"}`,
		`crowdkit_http_request_seconds_bucket{endpoint="/api/results",le="+Inf"}`,
		`crowdkit_http_request_seconds_count{endpoint="/api/answer"}`,
		`crowdkit_pool_tasks 12`,
		`crowdkit_pool_answers 36`,
		`crowdkit_budget_spent_units 36`,
		`crowdkit_budget_remaining_units`,
		`crowdkit_pool_active_leases 0`,
		`crowdkit_leases_expired_total 0`,
		`crowdkit_em_runs_total{method="OneCoinEM"} 1`,
		`crowdkit_em_converged_total{method="OneCoinEM"} 1`,
		`crowdkit_em_last_iterations{method="OneCoinEM"}`,
		`crowdkit_em_run_seconds_count{method="OneCoinEM"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("exposition:\n%s", body)
	}
	// 36 answers went through /api/answer, each as one 2xx.
	if v := metricValue(t, body, `crowdkit_http_requests_total{code="2xx",endpoint="/api/answer"}`); v != 36 {
		t.Fatalf("answer 2xx count = %v, want 36", v)
	}
	// EM iterations observed must match what the run gauge reports.
	iters := metricValue(t, body, `crowdkit_em_last_iterations{method="OneCoinEM"}`)
	total := metricValue(t, body, `crowdkit_em_iterations_total{method="OneCoinEM"}`)
	if iters <= 0 || total != iters {
		t.Fatalf("EM iteration accounting: last=%v total=%v", iters, total)
	}
}

// TestTraceIDHeader checks both directions of trace propagation: the
// server mints a well-formed ID when the client sends none, and adopts
// and echoes a caller-supplied ID verbatim.
func TestTraceIDHeader(t *testing.T) {
	rng := stats.NewRNG(22)
	_, _, client := newObsServer(t, testPool(rng, 3))

	resp, err := http.Get(client.BaseURL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	minted := resp.Header.Get(TraceHeader)
	if !regexp.MustCompile(`^[0-9a-f]{16}$`).MatchString(minted) {
		t.Fatalf("minted trace ID %q is not 16 hex chars", minted)
	}

	req, _ := http.NewRequest("GET", client.BaseURL+"/healthz", nil)
	req.Header.Set(TraceHeader, "cafebabe00000001")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get(TraceHeader); got != "cafebabe00000001" {
		t.Fatalf("supplied trace ID not echoed: got %q", got)
	}
}

// TestObservabilityOffByDefault pins the opt-in contract: without
// WithMetrics there is no /metrics endpoint, no trace header, and no
// pprof mount.
func TestObservabilityOffByDefault(t *testing.T) {
	rng := stats.NewRNG(23)
	_, client := newTestServer(t, testPool(rng, 3), nil, nil)
	for _, path := range []string{"/metrics", "/debug/pprof/"} {
		resp, err := http.Get(client.BaseURL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s on bare server = %d, want 404", path, resp.StatusCode)
		}
	}
	resp, err := http.Get(client.BaseURL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if h := resp.Header.Get(TraceHeader); h != "" {
		t.Fatalf("bare server set %s: %q", TraceHeader, h)
	}
}

// TestPprofOptIn: WithPprof mounts the profile index; the index responds.
func TestPprofOptIn(t *testing.T) {
	rng := stats.NewRNG(24)
	_, _, client := newObsServer(t, testPool(rng, 3), WithPprof())
	resp, err := http.Get(client.BaseURL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index = %d", resp.StatusCode)
	}
	if !bytes.Contains(body, []byte("goroutine")) {
		t.Fatalf("pprof index does not list profiles:\n%s", body)
	}
}

// TestExpiredLeaseAccountingConsistent drops a lease, lets it expire, and
// checks that /api/stats and /metrics report the same reclaim count from
// the single shared counter.
func TestExpiredLeaseAccountingConsistent(t *testing.T) {
	rng := stats.NewRNG(25)
	_, _, client := newObsServer(t, testPool(rng, 4),
		WithLeaseTTL(20*time.Millisecond), WithReaperInterval(10*time.Millisecond))

	if _, ok, err := client.FetchTask("ghost"); err != nil || !ok {
		t.Fatalf("fetch: ok=%v err=%v", ok, err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		st, err := client.Stats()
		if err != nil {
			t.Fatal(err)
		}
		if st.ExpiredLeases > 0 {
			body := scrape(t, client)
			if v := metricValue(t, body, "crowdkit_leases_expired_total"); int64(v) != st.ExpiredLeases {
				t.Fatalf("stats says %d expired, metrics says %v", st.ExpiredLeases, v)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("lease never expired")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestRequestLogCarriesTraceID: with WithRequestLog, each request emits
// one structured record whose trace field matches the echoed header.
func TestRequestLogCarriesTraceID(t *testing.T) {
	rng := stats.NewRNG(26)
	var buf bytes.Buffer
	var mu syncWriter
	mu.w = &buf
	logger := slog.New(slog.NewTextHandler(&mu, nil))
	_, _, client := newObsServer(t, testPool(rng, 3), WithRequestLog(logger))

	req, _ := http.NewRequest("GET", client.BaseURL+"/api/stats", nil)
	req.Header.Set(TraceHeader, "feedface00000002")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	mu.mu.Lock()
	out := buf.String()
	mu.mu.Unlock()
	if !strings.Contains(out, "trace=feedface00000002") {
		t.Fatalf("request log missing trace ID:\n%s", out)
	}
	if !strings.Contains(out, "path=/api/stats") || !strings.Contains(out, "status=200") {
		t.Fatalf("request log missing fields:\n%s", out)
	}
}

// abandonWorker claims one task and walks away.
type abandonWorker struct{ id string }

func (w abandonWorker) ID() string { return w.id }
func (w abandonWorker) Work(*core.Task) core.Response {
	return core.Response{Abandon: true}
}

// TestClientTerminationCounters distinguishes the three DriveWorker exit
// modes by their counters: clean abandon, consecutive-conflict failure,
// and retry exhaustion.
func TestClientTerminationCounters(t *testing.T) {
	t.Run("abandon", func(t *testing.T) {
		rng := stats.NewRNG(27)
		_, client := newTestServer(t, testPool(rng, 3), nil, nil)
		done, err := client.DriveWorker(abandonWorker{id: "quitter"}, nil, 0)
		if err != nil || done != 0 {
			t.Fatalf("abandon drive: done=%d err=%v", done, err)
		}
		if v := client.Metrics.Abandons.Value(); v != 1 {
			t.Fatalf("Abandons = %d, want 1", v)
		}
		if v := client.Metrics.ConflictExhausted.Value(); v != 0 {
			t.Fatalf("ConflictExhausted = %d, want 0", v)
		}
	})

	t.Run("conflict-exhausted", func(t *testing.T) {
		// A platform that hands out tasks but rejects every submission:
		// DriveWorker must give up after maxConsecutiveConflicts and count
		// the failure mode.
		mux := http.NewServeMux()
		mux.HandleFunc("GET /api/task", func(w http.ResponseWriter, r *http.Request) {
			writeJSON(w, TaskDTO{ID: 1, Kind: "single_choice", Question: "q", Options: []string{"a", "b"}})
		})
		mux.HandleFunc("POST /api/answer", func(w http.ResponseWriter, r *http.Request) {
			io.Copy(io.Discard, r.Body)
			httpError(w, http.StatusConflict, "rejected")
		})
		ts := httptest.NewServer(mux)
		defer ts.Close()
		client := NewClient(ts.URL)
		_, err := client.DriveWorker(abandonlessWorker{id: "victim"}, nil, 0)
		if err == nil {
			t.Fatal("drive against always-409 platform should fail")
		}
		if v := client.Metrics.ConflictExhausted.Value(); v != 1 {
			t.Fatalf("ConflictExhausted = %d, want 1", v)
		}
		if v := client.Metrics.Conflicts.Value(); v != maxConsecutiveConflicts {
			t.Fatalf("Conflicts = %d, want %d", v, maxConsecutiveConflicts)
		}
		if v := client.Metrics.Abandons.Value(); v != 0 {
			t.Fatalf("Abandons = %d, want 0", v)
		}
	})

	t.Run("retry-exhausted", func(t *testing.T) {
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			httpError(w, http.StatusInternalServerError, "down")
		}))
		defer ts.Close()
		client := NewClient(ts.URL, WithRetry(2, time.Millisecond, 2*time.Millisecond))
		_, err := client.DriveWorker(abandonlessWorker{id: "victim"}, nil, 0)
		if err == nil {
			t.Fatal("drive against always-500 platform should fail")
		}
		if v := client.Metrics.RetryExhausted.Value(); v != 1 {
			t.Fatalf("RetryExhausted = %d, want 1", v)
		}
		if v := client.Metrics.Retries.Value(); v != 2 {
			t.Fatalf("Retries = %d, want 2", v)
		}
	})
}

// abandonlessWorker always answers option 0.
type abandonlessWorker struct{ id string }

func (w abandonlessWorker) ID() string { return w.id }
func (w abandonlessWorker) Work(*core.Task) core.Response {
	return core.Response{Option: 0}
}

// syncWriter serializes writes from handler goroutines to the buffer.
type syncWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func (s *syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}
