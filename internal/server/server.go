// Package server exposes a crowdkit task pool as an HTTP microtask
// platform — the AMT-like service layer of the system: workers poll for
// assignments, submit answers, and the requester reads aggregated
// results. The API is deliberately small and JSON-only:
//
//	GET  /api/task?worker=ID   -> 200 {task} | 204 (nothing eligible)
//	POST /api/answer           -> 200 {recorded} | 4xx
//	GET  /api/stats            -> pool statistics
//	GET  /api/results?method=mv|onecoin|ds|glad -> inferred labels
//	GET  /healthz              -> 200 {"status":"ok"} liveness probe
//
// Concurrency model: there is no global server lock. The pool is wrapped
// in a core.ConcurrentPool (RWMutex: parallel reads/assignments, exclusive
// writes), the budget is atomic, and the worker screen locks internally,
// so handlers run in parallel across as many goroutines as net/http
// spawns. Answer accounting uses a reservation protocol: the handler
// reserves one budget unit with TryCharge, records the answer, and refunds
// the unit if the pool rejects the submission — rejected answers never
// consume budget. /api/results memoizes inference per (method, option
// count) keyed by the pool's mutation version, so repeated polls between
// new answers skip EM entirely.
//
// Fault tolerance: with WithLeaseTTL set, every assignment from /api/task
// carries a lease. A submission consumes the lease; a worker that vanishes
// forfeits it after the TTL, and the slot is reclaimed (lazily on the next
// assignment, and by a background reaper goroutine) so assigners re-issue
// the task. Without leases an abandoned assignment is simply never counted
// — the legacy behavior — so lease-free servers behave exactly as before.
//
// Results serving is incremental under continuous ingest (see results.go):
// cache misses seed EM from the previous converged state (WithResultsWarm),
// grow the cached dense dataset from the shards' answer-append logs instead
// of re-extracting the pool (WithResultsDelta; groups with no new answers
// skip inference), and concurrent misses for the same (method, k, version)
// collapse onto a single computation. WithResultsRefresh moves recomputes
// to a background loop so polls serve the last complete result immediately;
// every response carries X-Results-Version, the pool version it was
// computed at. Warm starts converge to the same labels/posteriors as cold
// starts; with warm and delta off the handler reproduces the plain
// memoizing cache byte-for-byte.
//
// Observability (all opt-in, see metrics.go): WithMetrics installs
// per-endpoint request/latency instrumentation, budget/pool/lease gauges,
// EM convergence telemetry, and a /metrics exposition endpoint;
// WithRequestLog adds structured per-request logging with trace IDs;
// WithPprof mounts net/http/pprof; WithTracing installs the span flight
// recorder (see trace.go) — request, shard, WAL, EM, and CQL spans
// retrievable by the echoed X-Trace-Id via /api/trace/{id}. A server
// built without these options runs the exact pre-observability handler
// chain.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/cql"
	"repro/internal/durable"
	"repro/internal/obs"
	"repro/internal/truth"
)

// Server is an http.Handler exposing one crowdsourcing pool.
type Server struct {
	cpool    *core.ShardedPool
	shards   int
	assigner core.Assigner
	budget   *core.Budget
	screen   *core.WorkerScreen
	cache    *truth.ResultCache
	mux      *http.ServeMux

	// leaseTTL > 0 enables assignment leases; reaperEvery is the sweep
	// interval of the background reaper (defaults to leaseTTL/4).
	leaseTTL    time.Duration
	reaperEvery time.Duration
	expired     obs.Counter // leases reclaimed so far; the single source for /api/stats and /metrics
	stopReaper  chan struct{}
	closeOnce   sync.Once

	// Incremental results serving (see results.go). resultsWarm seeds EM
	// from the previous converged state; resultsDelta maintains per-shard
	// answer logs so unchanged groups skip dataset rebuilds; refreshEvery
	// > 0 recomputes in the background and serves the last complete
	// result immediately.
	resultsWarm    bool
	resultsDelta   bool
	refreshEvery   time.Duration
	flight         resultFlight
	groupMu        sync.Mutex
	groups         *groupSnap
	refreshMu      sync.Mutex
	refreshMethods map[string]bool
	refreshVer     map[string]uint64
	stopRefresher  chan struct{}
	resM           resultsMetrics

	// Observability (nil/false = off; see metrics.go). traceCol is the
	// span flight recorder (nil = tracing off; see trace.go).
	metricsReg *obs.Registry
	pprofOn    bool
	reqLog     *slog.Logger
	obsv       *serverObs
	traceCol   *obs.Collector

	// store, when set, journals every pool mutation and gates answer acks
	// on durability (nil = the pure in-memory server; see durable.go).
	store *durable.Store

	// CrowdQL query service (nil unless WithCQL; see cql.go).
	cqlCfg *CQLConfig
	cqlMgr *cql.SessionManager
	cqlGw  *cqlGateway
	cqlM   cqlMetrics

	// CQL crash-recovery accounting (see cql_recovery.go): sessions and
	// query handles restored from the journal, orphaned crowd questions
	// reconciled, and budget units refunded doing so.
	cqlRecSessions  obs.Counter
	cqlRecQueries   obs.Counter
	cqlRecQuestions obs.Counter
	cqlRecRefund    obs.Counter
}

// Option configures optional server behavior.
type Option func(*Server)

// WithLeaseTTL enables assignment leases: every task handed out by
// /api/task must be answered within ttl or the slot is reclaimed and
// re-issued. ttl <= 0 leaves leases disabled.
func WithLeaseTTL(ttl time.Duration) Option {
	return func(s *Server) { s.leaseTTL = ttl }
}

// WithReaperInterval overrides how often the background reaper sweeps
// expired leases (default: leaseTTL/4, at least 10ms). Only meaningful
// together with WithLeaseTTL.
func WithReaperInterval(d time.Duration) Option {
	return func(s *Server) { s.reaperEvery = d }
}

// WithShards partitions the serving pool into n task-hash shards, each
// with its own lock, version counter, and lease heap, so answer recording
// and assignment scale across cores instead of serializing on one RWMutex.
// n <= 1 (the default) runs the single-shard pool, which is behaviorally
// identical to the unsharded server. With durability enabled, configure
// the store with the same number of WAL segments (durable.Options.Segments)
// so a shard's group commit never contends with another shard's log.
func WithShards(n int) Option {
	return func(s *Server) { s.shards = n }
}

// Shards returns the number of pool shards the server runs.
func (s *Server) Shards() int { return s.cpool.NumShards() }

// WithResultsWarm toggles warm-started inference on /api/results: when
// on (the default), iterative methods seed from the previous converged
// estimates whenever the pool version moves, cutting iterations to
// convergence; off pins the historical cold-start behavior (every
// recompute starts from the uniform/vote-fraction init).
func WithResultsWarm(on bool) Option {
	return func(s *Server) { s.resultsWarm = on }
}

// WithResultsDelta toggles incremental dataset maintenance on
// /api/results: when on (the default), each shard keeps an answer-append
// log and a recompute copies only the answers recorded since the cached
// snapshot — unchanged groups skip the rebuild entirely. Off pins the
// historical full-rebuild-per-version behavior, kept for benchmarking
// the delta path's contribution.
func WithResultsDelta(on bool) Option {
	return func(s *Server) { s.resultsDelta = on }
}

// WithResultsRefresh enables the background result refresher: every d,
// the server recomputes results for each method clients have polled, and
// /api/results serves the last complete result immediately instead of
// computing inline — pollers trade staleness (bounded by d plus one
// inference run, observable via the X-Results-Version header) for
// constant-time responses. d <= 0 (the default) disables the refresher.
func WithResultsRefresh(d time.Duration) Option {
	return func(s *Server) { s.refreshEvery = d }
}

// New wires a server around pool. assigner must not be nil; budget nil
// means unlimited; screen nil disables golden-task elimination. The
// server takes ownership of pool for writes: after New, other goroutines
// must not mutate pool directly (read-only access stays safe — tasks are
// immutable once added).
//
// When leases are enabled (WithLeaseTTL) a background reaper goroutine is
// started; call Close to stop it.
func New(pool *core.Pool, assigner core.Assigner, budget *core.Budget, screen *core.WorkerScreen, opts ...Option) (*Server, error) {
	if pool == nil || assigner == nil {
		return nil, fmt.Errorf("server: pool and assigner are required")
	}
	if budget == nil {
		budget = core.Unlimited()
	}
	s := &Server{
		assigner:     assigner,
		budget:       budget,
		screen:       screen,
		cache:        truth.NewResultCache(),
		resultsWarm:  true,
		resultsDelta: true,
	}
	for _, opt := range opts {
		opt(s)
	}
	// The pool wrapper is built after the options so WithShards is known;
	// one shard wraps pool directly (the exact unsharded behavior).
	s.cpool = core.NewShardedPool(pool, s.shards)
	if s.resultsDelta {
		s.cpool.EnableDeltaLog(defaultDeltaLogCap)
	}
	if s.store != nil {
		// Attach before any handler runs: task adds, closes, and lease
		// traffic flow into the journal under the pool's write lock, in
		// application order. Answers are journaled by handleAnswer itself,
		// where the charge and golden outcome are known.
		s.cpool.SetJournal(s.store)
	}
	if err := s.initCQL(); err != nil {
		return nil, err
	}
	// With durability on, reconcile CQL state the journal recovered before
	// any traffic lands: close orphaned crowd questions (refunding their
	// unconsumed reservations) and reopen the sessions that were live at
	// crash time. No-op without a store or recovered CQL events.
	s.recoverCQL()
	s.wireObservability()
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /api/task", s.instrument("/api/task", s.handleTask))
	s.mux.HandleFunc("POST /api/answer", s.instrument("/api/answer", s.handleAnswer))
	s.mux.HandleFunc("POST /api/answers", s.instrument("/api/answers", s.handleAnswerBatch))
	s.mux.HandleFunc("GET /api/stats", s.instrument("/api/stats", s.handleStats))
	s.mux.HandleFunc("GET /api/results", s.instrument("/api/results", s.handleResults))
	s.mux.HandleFunc("GET /healthz", s.instrument("/healthz", s.handleHealthz))
	if s.cqlMgr != nil {
		s.mountCQL()
	}
	if s.traceCol != nil {
		s.mountTrace()
	}
	s.mountDebug()
	if s.leaseTTL > 0 {
		if s.reaperEvery <= 0 {
			s.reaperEvery = s.leaseTTL / 4
		}
		if s.reaperEvery < 10*time.Millisecond {
			s.reaperEvery = 10 * time.Millisecond
		}
		s.stopReaper = make(chan struct{})
		go s.reap()
	}
	if s.refreshEvery > 0 {
		s.stopRefresher = make(chan struct{})
		go s.refreshLoop()
	}
	return s, nil
}

// Close shuts down the CrowdQL session manager (if mounted — canceling
// running queries and persisting session catalogs), stops the background
// reaper (if any) and, when durability is on, flushes and snapshots the
// store (see durable.Store.Close). It is safe to call more than once and
// on servers without leases or durability.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		if s.cqlMgr != nil {
			// First: closing sessions cancels their queries (releasing pool
			// leases and budget) and persists their catalogs while the rest
			// of the server is still up.
			s.cqlMgr.Close()
		}
		if s.stopReaper != nil {
			close(s.stopReaper)
		}
		if s.stopRefresher != nil {
			close(s.stopRefresher)
		}
		if s.store != nil {
			_ = s.store.Close()
		}
	})
}

// reap periodically sweeps expired leases so reclamation does not depend
// on traffic: even with no /api/task polls in flight, abandoned slots
// return to the pool within one reaper interval of their deadline.
func (s *Server) reap() {
	t := time.NewTicker(s.reaperEvery)
	defer t.Stop()
	for {
		select {
		case <-s.stopReaper:
			return
		case <-t.C:
			s.reapSweep()
		}
	}
}

// reapSweep is one attributable reaper tick: with tracing on, the sweep
// runs under its own root span and trace ID, so a slow or busy sweep
// shows up in /api/traces (endpoint bg.lease-reaper) and its log line
// can be joined by trace ID. Idle ticks discard the span — a reaper
// firing every few milliseconds must not flood the kept ring.
func (s *Server) reapSweep() {
	if s.traceCol == nil {
		s.expireLeases()
		return
	}
	ctx := obs.WithCollector(context.Background(), s.traceCol)
	ctx, sp := obs.StartSpan(ctx, "bg.lease-reaper")
	exp := s.cpool.ExpireLeases(time.Now())
	if len(exp) == 0 {
		sp.Discard()
		sp.End()
		return
	}
	s.expired.Add(int64(len(exp)))
	sp.SetAttr(obs.Int("expired", int64(len(exp))))
	sp.End()
	if s.reqLog != nil {
		s.reqLog.LogAttrs(ctx, slog.LevelInfo, "lease sweep",
			slog.String("trace", sp.TraceID),
			slog.Int("expired", len(exp)))
	}
}

// expireLeases sweeps expired leases now and accounts them.
func (s *Server) expireLeases() {
	if exp := s.cpool.ExpireLeases(time.Now()); len(exp) > 0 {
		s.expired.Add(int64(len(exp)))
	}
}

// ExpiredLeases returns how many leases the server has reclaimed.
func (s *Server) ExpiredLeases() int64 { return s.expired.Value() }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// HTTPServer wraps handler in an *http.Server with read/write/idle
// deadlines derived from timeout (default 30s when non-positive), so a
// stalled or malicious client cannot pin a handler goroutine forever.
// Callers run it with ListenAndServe or Serve as usual.
func HTTPServer(addr string, handler http.Handler, timeout time.Duration) *http.Server {
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	return &http.Server{
		Addr:              addr,
		Handler:           handler,
		ReadHeaderTimeout: timeout,
		ReadTimeout:       timeout,
		WriteTimeout:      timeout,
		IdleTimeout:       4 * timeout,
	}
}

// TaskDTO is the wire form of an assignment. Ground truth never leaves
// the server.
type TaskDTO struct {
	ID       core.TaskID `json:"id"`
	Kind     string      `json:"kind"`
	Question string      `json:"question"`
	Options  []string    `json:"options,omitempty"`
}

// AnswerDTO is the wire form of a submission.
type AnswerDTO struct {
	Task   core.TaskID `json:"task"`
	Worker string      `json:"worker"`
	Option int         `json:"option"`
	Text   string      `json:"text,omitempty"`
	Score  float64     `json:"score,omitempty"`
}

// StatsDTO summarizes pool progress.
type StatsDTO struct {
	Tasks        int     `json:"tasks"`
	OpenTasks    int     `json:"open_tasks"`
	TotalAnswers int     `json:"total_answers"`
	Workers      int     `json:"workers"`
	BudgetSpent  float64 `json:"budget_spent"`
	Eliminated   int     `json:"eliminated_workers"`
	// ActiveLeases is the number of outstanding (issued, not yet
	// submitted or expired) assignment leases; ExpiredLeases counts the
	// slots reclaimed from vanished workers so far. Both are zero on a
	// server without leases.
	ActiveLeases  int   `json:"active_leases"`
	ExpiredLeases int64 `json:"expired_leases"`
}

// AnswerAckDTO acknowledges an accepted submission.
type AnswerAckDTO struct {
	Status string `json:"status"`
}

// HealthDTO is the liveness-probe response. Struct (not map) so the JSON
// key order is stable — probes and golden tests can compare bytes.
type HealthDTO struct {
	Status string `json:"status"`
	Tasks  int    `json:"tasks"`
}

// ResultDTO is one inferred label.
type ResultDTO struct {
	Task       core.TaskID `json:"task"`
	Label      int         `json:"label"`
	Option     string      `json:"option"`
	Confidence float64     `json:"confidence"`
}

func (s *Server) handleTask(w http.ResponseWriter, r *http.Request) {
	worker := r.URL.Query().Get("worker")
	if worker == "" {
		httpError(w, http.StatusBadRequest, "missing worker parameter")
		return
	}
	if s.screen != nil && s.screen.Eliminated(worker) {
		httpError(w, http.StatusForbidden, "worker eliminated by quality screening")
		return
	}
	// Advisory check: the authoritative reservation happens on the answer
	// path, but refusing assignments once the budget is gone keeps workers
	// from doing work that can no longer be paid for.
	if !s.budget.CanAfford(1) {
		httpError(w, http.StatusConflict, "budget exhausted")
		return
	}
	var (
		id core.TaskID
		ok bool
	)
	_, asp := obs.ChildSpan(r.Context(), "core.assign")
	if s.leaseTTL > 0 {
		// Lazy expiry first, so an assignment never waits a reaper tick to
		// see reclaimed slots; then assign + lease atomically.
		s.expireLeases()
		id, ok = s.cpool.AssignLease(s.assigner, worker, time.Now().Add(s.leaseTTL))
	} else {
		id, ok = s.cpool.Assign(s.assigner, worker)
	}
	if asp != nil {
		asp.SetAttr(obs.Str("worker", worker),
			obs.Bool("leased", s.leaseTTL > 0), obs.Bool("assigned", ok))
		if ok {
			asp.SetAttr(obs.Int("task", int64(id)),
				obs.Int("shard", int64(s.cpool.ShardFor(id))))
		}
		asp.End()
	}
	if !ok {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	t := s.cpool.Task(id)
	if t == nil {
		// The task vanished between assignment and lookup (reconfiguration
		// or a racing mutation). Nothing is wrong with the request; tell
		// the worker to retry rather than panicking the handler goroutine.
		httpError(w, http.StatusServiceUnavailable, "assigned task vanished, retry")
		return
	}
	writeJSON(w, TaskDTO{
		ID:       t.ID,
		Kind:     t.Kind.String(),
		Question: t.Question,
		Options:  t.Options,
	})
}

// maxAnswerBody bounds the /api/answer request body. A legitimate
// submission is a few hundred bytes; 1 MiB leaves generous headroom for
// collection-task text while keeping a hostile client from making the
// decoder buffer arbitrarily much per in-flight request.
const maxAnswerBody = 1 << 20

func (s *Server) handleAnswer(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, maxAnswerBody)
	var dto AnswerDTO
	if err := json.NewDecoder(r.Body).Decode(&dto); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			httpError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit))
			return
		}
		httpError(w, http.StatusBadRequest, "invalid JSON: "+err.Error())
		return
	}
	if dto.Worker == "" {
		httpError(w, http.StatusBadRequest, "missing worker")
		return
	}
	// Same gate as /api/task: elimination must also stop workers that skip
	// the assignment endpoint and POST answers directly, or screening only
	// screens the polite ones.
	if s.screen != nil && s.screen.Eliminated(dto.Worker) {
		httpError(w, http.StatusForbidden, "worker eliminated by quality screening")
		return
	}
	t := s.cpool.Task(dto.Task)
	if t == nil {
		httpError(w, http.StatusNotFound, fmt.Sprintf("unknown task %d", dto.Task))
		return
	}
	// Reserve one budget unit, then record; a rejected submission
	// (duplicate worker, task closed or removed in a race) refunds the
	// reservation so only accepted answers spend budget.
	if !s.budget.TryCharge(1) {
		httpError(w, http.StatusConflict, "budget exhausted")
		return
	}
	a := core.Answer{
		Task: dto.Task, Worker: dto.Worker,
		Option: dto.Option, Text: dto.Text, Score: dto.Score,
	}
	_, rsp := obs.ChildSpan(r.Context(), "core.record")
	err := s.cpool.Record(a)
	if rsp != nil {
		rsp.SetAttr(obs.Int("task", int64(a.Task)), obs.Str("worker", a.Worker),
			obs.Int("shard", int64(s.cpool.ShardFor(a.Task))))
		rsp.SetError(err)
		rsp.End()
	}
	if err != nil {
		s.budget.Refund(1)
		httpError(w, http.StatusConflict, err.Error())
		return
	}
	s.notifyCQL(a.Task)
	golden := s.observeGolden(t, dto.Worker, dto.Option, dto.Text)
	// Ack-implies-durable: the answer (with its budget charge and golden
	// outcome) must be journaled before the client hears "recorded". A
	// journal failure must not leave the in-memory state ahead of the log
	// (an answer the requester would see but a restart would lose), so the
	// whole submission is rolled back — un-observe, un-record, refund — and
	// the client's 500 means "as if it never happened, resubmit". The store
	// is sticky-failed at that point, so no later answer can be
	// acknowledged against a log that stopped accepting.
	if s.store != nil {
		if err := s.store.AnswerDurableCtx(r.Context(), a, 1, golden); err != nil {
			s.rollbackAnswer(a, golden)
			httpError(w, http.StatusInternalServerError, "answer not persisted: "+err.Error())
			return
		}
	}
	writeJSON(w, AnswerAckDTO{Status: "recorded"})
}

// observeGolden grades a submission against a golden task's planted truth
// and feeds the worker screen. It returns the graded outcome (nil for
// non-golden tasks or when screening is off) for the answer's journal
// record.
func (s *Server) observeGolden(t *core.Task, worker string, option int, text string) *bool {
	if s.screen == nil || !t.Golden {
		return nil
	}
	correct := false
	switch t.Kind {
	case core.SingleChoice, core.MultiChoice, core.PairwiseComparison:
		correct = option == t.GroundTruth
	case core.FillIn:
		correct = text == t.GroundTruthText
	}
	if s.screen.Observe(worker, correct) && s.store != nil {
		s.store.WorkerEliminated(worker)
	}
	return &correct
}

// rollbackAnswer undoes an accepted-but-not-durable submission, in reverse
// acceptance order: the golden observation, the pool record, the budget
// reservation. After it returns, the in-memory state is as if the answer
// had never been submitted, matching what recovery will reconstruct from
// the log that rejected it.
func (s *Server) rollbackAnswer(a core.Answer, golden *bool) {
	if golden != nil && s.screen != nil {
		s.screen.Unobserve(a.Worker, *golden)
	}
	s.cpool.Unrecord(a)
	s.budget.Refund(1)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	var st StatsDTO
	s.cpool.ViewAll(func(pools []*core.Pool) {
		workers := make(map[string]bool)
		for _, p := range pools {
			st.Tasks += p.Len()
			st.OpenTasks += len(p.OpenTasks())
			st.TotalAnswers += p.TotalAnswers()
			st.ActiveLeases += p.ActiveLeases()
			for _, w := range p.Workers() {
				workers[w] = true
			}
		}
		st.Workers = len(workers)
	})
	st.BudgetSpent = s.budget.Spent()
	st.ExpiredLeases = s.expired.Value()
	if s.screen != nil {
		st.Eliminated = len(s.screen.EliminatedWorkers())
	}
	writeJSON(w, st)
}

// handleHealthz is the liveness probe: a cheap 200 proving the handler
// goroutines and the pool lock are responsive (it takes the read lock via
// Len, so a deadlocked pool fails the probe by hanging into the server's
// write deadline instead of lying).
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, HealthDTO{Status: "ok", Tasks: s.cpool.Len()})
}

// shardView is a truth.Source over the per-shard pools exposed by
// ShardedPool.ViewAll: lookups route by the same task hash the pool
// shards by. Valid only inside the ViewAll callback that produced it.
type shardView []*core.Pool

func (v shardView) Task(id core.TaskID) *core.Task {
	return v[core.ShardIndex(id, len(v))].Task(id)
}

func (v shardView) Answers(id core.TaskID) []core.Answer {
	return v[core.ShardIndex(id, len(v))].Answers(id)
}

// taskIDs lists every task in the view: insertion order for a single
// shard (the unsharded server's historical order), ascending ID order
// across multiple shards.
func (v shardView) taskIDs() []core.TaskID {
	if len(v) == 1 {
		return v[0].TaskIDs()
	}
	var out []core.TaskID
	for _, p := range v {
		out = append(out, p.TaskIDs()...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are already written; nothing more we can do.
		return
	}
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
