// Package server exposes a crowdkit task pool as an HTTP microtask
// platform — the AMT-like service layer of the system: workers poll for
// assignments, submit answers, and the requester reads aggregated
// results. The API is deliberately small and JSON-only:
//
//	GET  /api/task?worker=ID   -> 200 {task} | 204 (nothing eligible)
//	POST /api/answer           -> 200 {recorded} | 4xx
//	GET  /api/stats            -> pool statistics
//	GET  /api/results?method=mv|onecoin|ds|glad -> inferred labels
//
// The server serializes access to the pool (core.Pool is not safe for
// concurrent use); handlers are safe to call from many workers at once.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/truth"
)

// Server is an http.Handler exposing one crowdsourcing pool.
type Server struct {
	mu       sync.Mutex
	pool     *core.Pool
	assigner core.Assigner
	budget   *core.Budget
	screen   *core.WorkerScreen
	mux      *http.ServeMux
}

// New wires a server. assigner must not be nil; budget nil means
// unlimited; screen nil disables golden-task elimination.
func New(pool *core.Pool, assigner core.Assigner, budget *core.Budget, screen *core.WorkerScreen) (*Server, error) {
	if pool == nil || assigner == nil {
		return nil, fmt.Errorf("server: pool and assigner are required")
	}
	if budget == nil {
		budget = core.Unlimited()
	}
	s := &Server{pool: pool, assigner: assigner, budget: budget, screen: screen}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /api/task", s.handleTask)
	s.mux.HandleFunc("POST /api/answer", s.handleAnswer)
	s.mux.HandleFunc("GET /api/stats", s.handleStats)
	s.mux.HandleFunc("GET /api/results", s.handleResults)
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// TaskDTO is the wire form of an assignment. Ground truth never leaves
// the server.
type TaskDTO struct {
	ID       core.TaskID `json:"id"`
	Kind     string      `json:"kind"`
	Question string      `json:"question"`
	Options  []string    `json:"options,omitempty"`
}

// AnswerDTO is the wire form of a submission.
type AnswerDTO struct {
	Task   core.TaskID `json:"task"`
	Worker string      `json:"worker"`
	Option int         `json:"option"`
	Text   string      `json:"text,omitempty"`
	Score  float64     `json:"score,omitempty"`
}

// StatsDTO summarizes pool progress.
type StatsDTO struct {
	Tasks        int     `json:"tasks"`
	OpenTasks    int     `json:"open_tasks"`
	TotalAnswers int     `json:"total_answers"`
	Workers      int     `json:"workers"`
	BudgetSpent  float64 `json:"budget_spent"`
	Eliminated   int     `json:"eliminated_workers"`
}

// ResultDTO is one inferred label.
type ResultDTO struct {
	Task       core.TaskID `json:"task"`
	Label      int         `json:"label"`
	Option     string      `json:"option"`
	Confidence float64     `json:"confidence"`
}

func (s *Server) handleTask(w http.ResponseWriter, r *http.Request) {
	worker := r.URL.Query().Get("worker")
	if worker == "" {
		httpError(w, http.StatusBadRequest, "missing worker parameter")
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.screen != nil && s.screen.Eliminated(worker) {
		httpError(w, http.StatusForbidden, "worker eliminated by quality screening")
		return
	}
	if !s.budget.CanAfford(1) {
		httpError(w, http.StatusConflict, "budget exhausted")
		return
	}
	id, ok := s.assigner.Assign(s.pool, worker)
	if !ok {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	t := s.pool.Task(id)
	writeJSON(w, TaskDTO{
		ID:       t.ID,
		Kind:     t.Kind.String(),
		Question: t.Question,
		Options:  t.Options,
	})
}

func (s *Server) handleAnswer(w http.ResponseWriter, r *http.Request) {
	var dto AnswerDTO
	if err := json.NewDecoder(r.Body).Decode(&dto); err != nil {
		httpError(w, http.StatusBadRequest, "invalid JSON: "+err.Error())
		return
	}
	if dto.Worker == "" {
		httpError(w, http.StatusBadRequest, "missing worker")
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	t := s.pool.Task(dto.Task)
	if t == nil {
		httpError(w, http.StatusNotFound, fmt.Sprintf("unknown task %d", dto.Task))
		return
	}
	if err := s.budget.Charge(1); err != nil {
		if errors.Is(err, core.ErrBudgetExhausted) {
			httpError(w, http.StatusConflict, "budget exhausted")
			return
		}
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	a := core.Answer{
		Task: dto.Task, Worker: dto.Worker,
		Option: dto.Option, Text: dto.Text, Score: dto.Score,
	}
	if err := s.pool.Record(a); err != nil {
		httpError(w, http.StatusConflict, err.Error())
		return
	}
	if s.screen != nil && t.Golden {
		correct := false
		switch t.Kind {
		case core.SingleChoice, core.MultiChoice, core.PairwiseComparison:
			correct = dto.Option == t.GroundTruth
		case core.FillIn:
			correct = dto.Text == t.GroundTruthText
		}
		s.screen.Observe(dto.Worker, correct)
	}
	writeJSON(w, map[string]string{"status": "recorded"})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	eliminated := 0
	if s.screen != nil {
		eliminated = len(s.screen.EliminatedWorkers())
	}
	writeJSON(w, StatsDTO{
		Tasks:        s.pool.Len(),
		OpenTasks:    len(s.pool.OpenTasks()),
		TotalAnswers: s.pool.TotalAnswers(),
		Workers:      len(s.pool.Workers()),
		BudgetSpent:  s.budget.Spent(),
		Eliminated:   eliminated,
	})
}

func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	method := strings.ToLower(r.URL.Query().Get("method"))
	var inf truth.Inferrer
	switch method {
	case "", "mv":
		inf = truth.MajorityVote{}
	case "onecoin":
		inf = truth.OneCoinEM{}
	case "ds":
		inf = truth.DawidSkene{}
	case "glad":
		inf = truth.GLAD{}
	default:
		httpError(w, http.StatusBadRequest, "unknown method "+method)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	// Infer over the choice-type tasks (grouped by option count).
	byK := map[int][]core.TaskID{}
	for _, id := range s.pool.TaskIDs() {
		t := s.pool.Task(id)
		switch t.Kind {
		case core.SingleChoice, core.MultiChoice, core.PairwiseComparison:
			byK[len(t.Options)] = append(byK[len(t.Options)], id)
		}
	}
	var out []ResultDTO
	for _, ids := range byK {
		ds, err := truth.FromPool(s.pool, ids)
		if err != nil {
			httpError(w, http.StatusInternalServerError, err.Error())
			return
		}
		res, err := inf.Infer(ds)
		if err != nil {
			httpError(w, http.StatusInternalServerError, err.Error())
			return
		}
		for _, id := range ids {
			t := s.pool.Task(id)
			lbl := res.Labels[id]
			opt := ""
			if lbl >= 0 && lbl < len(t.Options) {
				opt = t.Options[lbl]
			}
			out = append(out, ResultDTO{
				Task: id, Label: lbl, Option: opt,
				Confidence: res.Confidence(id),
			})
		}
	}
	writeJSON(w, out)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are already written; nothing more we can do.
		return
	}
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
