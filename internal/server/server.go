// Package server exposes a crowdkit task pool as an HTTP microtask
// platform — the AMT-like service layer of the system: workers poll for
// assignments, submit answers, and the requester reads aggregated
// results. The API is deliberately small and JSON-only:
//
//	GET  /api/task?worker=ID   -> 200 {task} | 204 (nothing eligible)
//	POST /api/answer           -> 200 {recorded} | 4xx
//	GET  /api/stats            -> pool statistics
//	GET  /api/results?method=mv|onecoin|ds|glad -> inferred labels
//
// Concurrency model: there is no global server lock. The pool is wrapped
// in a core.ConcurrentPool (RWMutex: parallel reads/assignments, exclusive
// writes), the budget is atomic, and the worker screen locks internally,
// so handlers run in parallel across as many goroutines as net/http
// spawns. Answer accounting uses a reservation protocol: the handler
// reserves one budget unit with TryCharge, records the answer, and refunds
// the unit if the pool rejects the submission — rejected answers never
// consume budget. /api/results memoizes inference per (method, option
// count) keyed by the pool's mutation version, so repeated polls between
// new answers skip EM entirely.
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/truth"
)

// Server is an http.Handler exposing one crowdsourcing pool.
type Server struct {
	cpool    *core.ConcurrentPool
	assigner core.Assigner
	budget   *core.Budget
	screen   *core.WorkerScreen
	cache    *truth.ResultCache
	mux      *http.ServeMux
}

// New wires a server around pool. assigner must not be nil; budget nil
// means unlimited; screen nil disables golden-task elimination. The
// server takes ownership of pool for writes: after New, other goroutines
// must not mutate pool directly (read-only access stays safe — tasks are
// immutable once added).
func New(pool *core.Pool, assigner core.Assigner, budget *core.Budget, screen *core.WorkerScreen) (*Server, error) {
	if pool == nil || assigner == nil {
		return nil, fmt.Errorf("server: pool and assigner are required")
	}
	if budget == nil {
		budget = core.Unlimited()
	}
	s := &Server{
		cpool:    core.NewConcurrentPool(pool),
		assigner: assigner,
		budget:   budget,
		screen:   screen,
		cache:    truth.NewResultCache(),
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /api/task", s.handleTask)
	s.mux.HandleFunc("POST /api/answer", s.handleAnswer)
	s.mux.HandleFunc("GET /api/stats", s.handleStats)
	s.mux.HandleFunc("GET /api/results", s.handleResults)
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// TaskDTO is the wire form of an assignment. Ground truth never leaves
// the server.
type TaskDTO struct {
	ID       core.TaskID `json:"id"`
	Kind     string      `json:"kind"`
	Question string      `json:"question"`
	Options  []string    `json:"options,omitempty"`
}

// AnswerDTO is the wire form of a submission.
type AnswerDTO struct {
	Task   core.TaskID `json:"task"`
	Worker string      `json:"worker"`
	Option int         `json:"option"`
	Text   string      `json:"text,omitempty"`
	Score  float64     `json:"score,omitempty"`
}

// StatsDTO summarizes pool progress.
type StatsDTO struct {
	Tasks        int     `json:"tasks"`
	OpenTasks    int     `json:"open_tasks"`
	TotalAnswers int     `json:"total_answers"`
	Workers      int     `json:"workers"`
	BudgetSpent  float64 `json:"budget_spent"`
	Eliminated   int     `json:"eliminated_workers"`
}

// ResultDTO is one inferred label.
type ResultDTO struct {
	Task       core.TaskID `json:"task"`
	Label      int         `json:"label"`
	Option     string      `json:"option"`
	Confidence float64     `json:"confidence"`
}

func (s *Server) handleTask(w http.ResponseWriter, r *http.Request) {
	worker := r.URL.Query().Get("worker")
	if worker == "" {
		httpError(w, http.StatusBadRequest, "missing worker parameter")
		return
	}
	if s.screen != nil && s.screen.Eliminated(worker) {
		httpError(w, http.StatusForbidden, "worker eliminated by quality screening")
		return
	}
	// Advisory check: the authoritative reservation happens on the answer
	// path, but refusing assignments once the budget is gone keeps workers
	// from doing work that can no longer be paid for.
	if !s.budget.CanAfford(1) {
		httpError(w, http.StatusConflict, "budget exhausted")
		return
	}
	id, ok := s.cpool.Assign(s.assigner, worker)
	if !ok {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	t := s.cpool.Task(id)
	writeJSON(w, TaskDTO{
		ID:       t.ID,
		Kind:     t.Kind.String(),
		Question: t.Question,
		Options:  t.Options,
	})
}

func (s *Server) handleAnswer(w http.ResponseWriter, r *http.Request) {
	var dto AnswerDTO
	if err := json.NewDecoder(r.Body).Decode(&dto); err != nil {
		httpError(w, http.StatusBadRequest, "invalid JSON: "+err.Error())
		return
	}
	if dto.Worker == "" {
		httpError(w, http.StatusBadRequest, "missing worker")
		return
	}
	t := s.cpool.Task(dto.Task)
	if t == nil {
		httpError(w, http.StatusNotFound, fmt.Sprintf("unknown task %d", dto.Task))
		return
	}
	// Reserve one budget unit, then record; a rejected submission
	// (duplicate worker, task closed or removed in a race) refunds the
	// reservation so only accepted answers spend budget.
	if !s.budget.TryCharge(1) {
		httpError(w, http.StatusConflict, "budget exhausted")
		return
	}
	a := core.Answer{
		Task: dto.Task, Worker: dto.Worker,
		Option: dto.Option, Text: dto.Text, Score: dto.Score,
	}
	if err := s.cpool.Record(a); err != nil {
		s.budget.Refund(1)
		httpError(w, http.StatusConflict, err.Error())
		return
	}
	if s.screen != nil && t.Golden {
		correct := false
		switch t.Kind {
		case core.SingleChoice, core.MultiChoice, core.PairwiseComparison:
			correct = dto.Option == t.GroundTruth
		case core.FillIn:
			correct = dto.Text == t.GroundTruthText
		}
		s.screen.Observe(dto.Worker, correct)
	}
	writeJSON(w, map[string]string{"status": "recorded"})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	var st StatsDTO
	s.cpool.View(func(p *core.Pool) {
		st.Tasks = p.Len()
		st.OpenTasks = len(p.OpenTasks())
		st.TotalAnswers = p.TotalAnswers()
		st.Workers = len(p.Workers())
	})
	st.BudgetSpent = s.budget.Spent()
	if s.screen != nil {
		st.Eliminated = len(s.screen.EliminatedWorkers())
	}
	writeJSON(w, st)
}

// resultGroup is one homogeneous (same option count) inference unit of the
// results endpoint.
type resultGroup struct {
	k   int
	ids []core.TaskID
	res *truth.Result
	ds  *truth.Dataset // nil when res came from the cache
}

func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	method := strings.ToLower(r.URL.Query().Get("method"))
	var inf truth.Inferrer
	switch method {
	case "", "mv":
		method = "mv"
		inf = truth.MajorityVote{}
	case "onecoin":
		inf = truth.OneCoinEM{}
	case "ds":
		inf = truth.DawidSkene{}
	case "glad":
		inf = truth.GLAD{}
	default:
		httpError(w, http.StatusBadRequest, "unknown method "+method)
		return
	}

	// Snapshot phase, under the read lock: group choice tasks by option
	// count, and for every group whose inference is not cached at the
	// current pool version, copy its answers into a Dataset. The version
	// cannot advance while the lock is held, so version and datasets are
	// mutually consistent.
	var (
		groups  []*resultGroup
		version uint64
		snapErr error
	)
	s.cpool.View(func(p *core.Pool) {
		version = s.cpool.Version()
		byK := map[int][]core.TaskID{}
		for _, id := range p.TaskIDs() {
			t := p.Task(id)
			switch t.Kind {
			case core.SingleChoice, core.MultiChoice, core.PairwiseComparison:
				byK[len(t.Options)] = append(byK[len(t.Options)], id)
			}
		}
		ks := make([]int, 0, len(byK))
		for k := range byK {
			ks = append(ks, k)
		}
		sort.Ints(ks)
		for _, k := range ks {
			g := &resultGroup{k: k, ids: byK[k]}
			// A nil cache disables memoization (legacy recompute-per-poll
			// behavior, kept for benchmarking the cache's contribution).
			if res, ok := s.cache.Get(resultsCacheKey(method, k), version); ok {
				g.res = res
			} else {
				ds, err := truth.FromPool(p, g.ids)
				if err != nil {
					snapErr = err
					return
				}
				g.ds = ds
			}
			groups = append(groups, g)
		}
	})
	if snapErr != nil {
		httpError(w, http.StatusInternalServerError, snapErr.Error())
		return
	}

	// Inference phase, outside any pool lock: EM runs do not block
	// answer recording or task assignment.
	for _, g := range groups {
		if g.res != nil {
			continue
		}
		res, err := inf.Infer(g.ds)
		if err != nil {
			httpError(w, http.StatusInternalServerError, err.Error())
			return
		}
		g.res = res
		s.cache.Put(resultsCacheKey(method, g.k), version, res)
	}

	nTasks := 0
	for _, g := range groups {
		nTasks += len(g.ids)
	}
	out := make([]ResultDTO, 0, nTasks)
	for _, g := range groups {
		for _, id := range g.ids {
			t := s.cpool.Task(id)
			lbl := g.res.Labels[id]
			opt := ""
			if lbl >= 0 && lbl < len(t.Options) {
				opt = t.Options[lbl]
			}
			out = append(out, ResultDTO{
				Task: id, Label: lbl, Option: opt,
				Confidence: g.res.Confidence(id),
			})
		}
	}
	writeJSON(w, out)
}

func resultsCacheKey(method string, k int) string {
	return fmt.Sprintf("%s/k=%d", method, k)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are already written; nothing more we can do.
		return
	}
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
