package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/assign"
	"repro/internal/core"
	"repro/internal/cql"
)

// newCQLTestServer builds a server with the CrowdQL service mounted.
func newCQLTestServer(t *testing.T, budget *core.Budget, cfg CQLConfig, opts ...Option) (*httptest.Server, *Server) {
	t.Helper()
	if cfg.ExecuteGrace == 0 {
		// Machine statements still look synchronous at 5ms and crowd tests
		// do not sit out the full default grace.
		cfg.ExecuteGrace = 5 * time.Millisecond
	}
	opts = append([]Option{WithShards(testShards()), WithCQL(cfg)}, opts...)
	srv, err := New(core.NewPool(), assign.FewestAnswers{}, budget, nil, opts...)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(func() { ts.Close(); srv.Close() })
	return ts, srv
}

// doJSON performs one request with a JSON body and decodes the response.
func doJSON(t *testing.T, method, url string, body, out any) int {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("%s %s: bad response %q: %v", method, url, raw, err)
		}
	}
	return resp.StatusCode
}

// cqlCreate creates a session over HTTP.
func cqlCreate(t *testing.T, base, name string) {
	t.Helper()
	if code := doJSON(t, "POST", base+"/api/cql/session",
		CQLSessionDTO{Session: name}, nil); code != http.StatusOK {
		t.Fatalf("create session %q: status %d", name, code)
	}
}

// cqlExecute runs src and returns the first page of the handle.
func cqlExecute(t *testing.T, base, session, src string) cql.QueryPage {
	t.Helper()
	var page cql.QueryPage
	code := doJSON(t, "POST", base+"/api/cql/session/"+session+"/execute",
		CQLExecuteDTO{Src: src}, &page)
	if code != http.StatusOK {
		t.Fatalf("execute %q: status %d", src, code)
	}
	return page
}

// cqlPoll fetches one page of a query handle.
func cqlPoll(t *testing.T, base, session, qid, token string, limit int) cql.QueryPage {
	t.Helper()
	url := fmt.Sprintf("%s/api/cql/session/%s/query/%s?page_token=%s&limit=%d",
		base, session, qid, token, limit)
	var page cql.QueryPage
	if code := doJSON(t, "GET", url, nil, &page); code != http.StatusOK {
		t.Fatalf("poll %s: status %d", qid, code)
	}
	return page
}

// cqlExecuteDone runs src and polls until the handle resolves.
func cqlExecuteDone(t *testing.T, base, session, src string) cql.QueryPage {
	t.Helper()
	page := cqlExecute(t, base, session, src)
	deadline := time.Now().Add(5 * time.Second)
	for page.Status == cql.QueryRunning {
		if time.Now().After(deadline) {
			t.Fatalf("query %s stuck running", page.Query)
		}
		time.Sleep(time.Millisecond)
		page = cqlPoll(t, base, session, page.Query, "", 0)
	}
	if page.Status != cql.QueryDone {
		t.Fatalf("execute %q: status %s error %q", src, page.Status, page.Error)
	}
	return page
}

func TestCQLHTTPMachineWalkthrough(t *testing.T) {
	ts, _ := newCQLTestServer(t, nil, CQLConfig{})
	base := ts.URL

	if code := doJSON(t, "POST", base+"/api/cql/session",
		CQLSessionDTO{Session: "bad name!"}, nil); code != http.StatusBadRequest {
		t.Fatalf("invalid session name: status %d", code)
	}
	cqlCreate(t, base, "demo")
	if code := doJSON(t, "POST", base+"/api/cql/session",
		CQLSessionDTO{Session: "demo"}, nil); code != http.StatusBadRequest {
		t.Fatalf("duplicate session: status %d", code)
	}
	var list CQLSessionListDTO
	if code := doJSON(t, "GET", base+"/api/cql/sessions", nil, &list); code != http.StatusOK {
		t.Fatalf("list sessions: status %d", code)
	}
	if len(list.Sessions) != 1 || list.Sessions[0] != "demo" {
		t.Fatalf("sessions = %v", list.Sessions)
	}

	// executeMulti: one script, handle resolves to the last statement.
	page := cqlExecuteDone(t, base, "demo", `
		CREATE TABLE people (id INT, name STRING, age INT);
		INSERT INTO people VALUES (1,'ann',34),(2,'bob',28),(3,'cid',45),(4,'dee',19);
		SELECT name FROM people WHERE age > 20 ORDER BY age`)
	if len(page.Rows) != 3 || page.Rows[0][0] != "bob" {
		t.Fatalf("script rows = %v", page.Rows)
	}

	// Prepared statements round trip.
	if code := doJSON(t, "POST", base+"/api/cql/session/demo/prepare",
		CQLExecuteDTO{Name: "adults", Src: `SELECT name FROM people WHERE age >= 28 ORDER BY name`},
		nil); code != http.StatusOK {
		t.Fatalf("prepare: status %d", code)
	}
	var prep cql.QueryPage
	if code := doJSON(t, "POST", base+"/api/cql/session/demo/execute",
		CQLExecuteDTO{Prepared: "adults"}, &prep); code != http.StatusOK {
		t.Fatalf("execute prepared: status %d", code)
	}
	deadline := time.Now().Add(5 * time.Second)
	for prep.Status == cql.QueryRunning && time.Now().Before(deadline) {
		prep = cqlPoll(t, base, "demo", prep.Query, "", 0)
	}
	if prep.Status != cql.QueryDone || len(prep.Rows) != 3 {
		t.Fatalf("prepared result = %+v", prep)
	}

	// Cursor pagination through the handle.
	q := cqlExecuteDone(t, base, "demo", `SELECT id FROM people ORDER BY id`)
	first := cqlPoll(t, base, "demo", q.Query, "", 3)
	if len(first.Rows) != 3 || first.NextPageToken == "" {
		t.Fatalf("first page = %+v", first)
	}
	rest := cqlPoll(t, base, "demo", q.Query, first.NextPageToken, 3)
	if len(rest.Rows) != 1 || rest.Rows[0][0] != "4" || rest.NextPageToken != "" {
		t.Fatalf("last page = %+v", rest)
	}

	// Errors surface on the handle, not as transport failures.
	bad := cqlExecute(t, base, "demo", `SELECT nope FROM people`)
	for bad.Status == cql.QueryRunning {
		bad = cqlPoll(t, base, "demo", bad.Query, "", 0)
	}
	if bad.Status != cql.QueryError || bad.Error == "" {
		t.Fatalf("bad query page = %+v", bad)
	}

	// Unknowns are 404s.
	if code := doJSON(t, "GET", base+"/api/cql/session/demo/query/q999", nil, nil); code != http.StatusNotFound {
		t.Fatalf("unknown query: status %d", code)
	}
	if code := doJSON(t, "POST", base+"/api/cql/session/ghost/execute",
		CQLExecuteDTO{Src: "SELECT 1"}, nil); code != http.StatusNotFound {
		t.Fatalf("unknown session: status %d", code)
	}

	if code := doJSON(t, "DELETE", base+"/api/cql/session/demo", nil, nil); code != http.StatusOK {
		t.Fatalf("close session: status %d", code)
	}
	if code := doJSON(t, "DELETE", base+"/api/cql/session/demo", nil, nil); code != http.StatusNotFound {
		t.Fatalf("double close: status %d", code)
	}
}

// answerRound lets each worker answer at most one open pool task with
// option. Returns how many answers were recorded.
func answerRound(t *testing.T, client *Client, workers []string, option int) int {
	t.Helper()
	n := 0
	for _, w := range workers {
		dto, ok, err := client.FetchTask(w)
		if err != nil || !ok {
			continue
		}
		if err := client.SubmitAnswer(AnswerDTO{Task: dto.ID, Worker: w, Option: option}); err == nil {
			n++
		}
	}
	return n
}

// TestCQLCrowdQueryPartialPagesAndCursor pins the tentpole behavior: a
// crowd query's questions are served by pool workers through the normal
// /api/task + /api/answer endpoints, the handle exposes partial rows
// while later questions are still unanswered, and a cursor obtained from
// a partial page stays valid after the query completes.
func TestCQLCrowdQueryPartialPagesAndCursor(t *testing.T) {
	ts, _ := newCQLTestServer(t, nil, CQLConfig{Redundancy: 2})
	base := ts.URL
	client := NewClient(ts.URL)
	workers := []string{"w1", "w2"}

	cqlCreate(t, base, "crowd")
	cqlExecuteDone(t, base, "crowd", `
		CREATE TABLE pets (id INT, kind STRING);
		INSERT INTO pets VALUES (1,'beagle'),(2,'poodle'),(3,'husky')`)

	page := cqlExecute(t, base, "crowd",
		`SELECT * FROM pets WHERE CROWDFILTER('is it a dog?', kind)`)
	if page.Status != cql.QueryRunning {
		t.Fatalf("crowd query resolved with no workers: %+v", page)
	}
	qid := page.Query

	// Answer the crowd questions one round at a time; each question needs
	// both workers' votes, and questions are asked sequentially, so rows
	// stream onto the handle one by one.
	var midToken string
	var midRows int
	deadline := time.Now().Add(10 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatalf("crowd query never finished (page %+v)", page)
		}
		page = cqlPoll(t, base, "crowd", qid, "", 0)
		if page.Status != cql.QueryRunning {
			break
		}
		if midToken == "" && page.Partial && len(page.Rows) > 0 {
			midToken, midRows = page.NextPageToken, len(page.Rows)
			if midToken == "" {
				t.Fatalf("partial page with no cursor: %+v", page)
			}
		}
		answerRound(t, client, workers, 1) // both vote "yes"
		time.Sleep(time.Millisecond)
	}
	if page.Status != cql.QueryDone {
		t.Fatalf("crowd query: status %s error %q", page.Status, page.Error)
	}
	if midToken == "" {
		t.Fatal("never observed a partial page with rows")
	}

	final := cqlPoll(t, base, "crowd", qid, "", 0)
	if len(final.Rows) != 3 || final.Partial {
		t.Fatalf("final page = %+v", final)
	}
	// The mid-flight cursor resumes exactly after the rows already seen.
	rest := cqlPoll(t, base, "crowd", qid, midToken, 0)
	if len(rest.Rows) != 3-midRows || rest.NextPageToken != "" {
		t.Fatalf("cursor after completion: had %d rows, got %+v", midRows, rest)
	}

	// All three questions were paid for at redundancy 2.
	stats, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.TotalAnswers != 6 || stats.BudgetSpent != 6 {
		t.Fatalf("answers=%d spent=%v, want 6/6", stats.TotalAnswers, stats.BudgetSpent)
	}
	if stats.OpenTasks != 0 || stats.ActiveLeases != 0 {
		t.Fatalf("pool not drained: %+v", stats)
	}
}

// waitStats polls /api/stats until check passes.
func waitStats(t *testing.T, client *Client, what string, check func(*StatsDTO) bool) *StatsDTO {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		st, err := client.Stats()
		if err != nil {
			t.Fatal(err)
		}
		if check(st) {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s (stats %+v)", what, st)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// cqlCancel cancels a query over HTTP and returns its final status.
func cqlCancel(t *testing.T, base, session, qid string) cql.QueryStatus {
	t.Helper()
	var out struct {
		Status cql.QueryStatus `json:"status"`
	}
	if code := doJSON(t, "POST",
		base+"/api/cql/session/"+session+"/query/"+qid+"/cancel", nil, &out); code != http.StatusOK {
		t.Fatalf("cancel %s: status %d", qid, code)
	}
	return out.Status
}

// TestCQLCancelReleasesLeasesAndRefundsBudget pins the cancellation
// contract of the query service:
//
//   - scenario A: cancel while workers hold leases and no answer has
//     arrived — the in-flight task's leases are released, the whole
//     budget reservation is refunded, and the pool's stats match a
//     control server that never started the query;
//   - scenario B: cancel after exactly one answer — the net spend is
//     exactly that one answer.
func TestCQLCancelReleasesLeasesAndRefundsBudget(t *testing.T) {
	const seedSQL = `
		CREATE TABLE pets (id INT, kind STRING);
		INSERT INTO pets VALUES (1,'beagle'),(2,'poodle'),(3,'husky')`
	crowdSQL := `SELECT * FROM pets WHERE CROWDFILTER('is it a dog?', kind)`

	mk := func() (string, *Client) {
		ts, _ := newCQLTestServer(t, core.NewBudget(50), CQLConfig{Redundancy: 3},
			WithLeaseTTL(time.Minute))
		cqlCreate(t, ts.URL, "s")
		cqlExecuteDone(t, ts.URL, "s", seedSQL)
		return ts.URL, NewClient(ts.URL)
	}
	base, client := mk()
	controlBase, control := mk()

	// --- scenario A: leases held, zero answers ---
	page := cqlExecute(t, base, "s", crowdSQL)
	if page.Status != cql.QueryRunning {
		t.Fatalf("crowd query resolved with no workers: %+v", page)
	}
	waitStats(t, client, "question published", func(st *StatsDTO) bool { return st.OpenTasks == 1 })
	for _, w := range []string{"w1", "w2"} {
		if _, ok, err := client.FetchTask(w); err != nil || !ok {
			t.Fatalf("worker %s got no assignment: %v", w, err)
		}
	}
	waitStats(t, client, "leases issued", func(st *StatsDTO) bool { return st.ActiveLeases == 2 })

	if st := cqlCancel(t, base, "s", page.Query); st != cql.QueryCanceled {
		t.Fatalf("cancel status = %s", st)
	}
	got, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	want, err := control.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if got.ActiveLeases != 0 {
		t.Fatalf("leases not released: %d", got.ActiveLeases)
	}
	if got.BudgetSpent != 0 {
		t.Fatalf("budget not refunded: spent %v", got.BudgetSpent)
	}
	if got.OpenTasks != want.OpenTasks || got.TotalAnswers != want.TotalAnswers ||
		got.ActiveLeases != want.ActiveLeases || got.BudgetSpent != want.BudgetSpent {
		t.Fatalf("canceled stats %+v diverge from never-started control %+v", got, want)
	}

	// --- scenario B: one answer arrives, then cancel ---
	base2, client2 := controlBase, control // reuse the control server as the target
	page2 := cqlExecute(t, base2, "s", crowdSQL)
	if page2.Status != cql.QueryRunning {
		t.Fatalf("crowd query resolved with no workers: %+v", page2)
	}
	waitStats(t, client2, "question published", func(st *StatsDTO) bool { return st.OpenTasks == 1 })
	dto, ok, err := client2.FetchTask("w1")
	if err != nil || !ok {
		t.Fatalf("FetchTask: %v", err)
	}
	if err := client2.SubmitAnswer(AnswerDTO{Task: dto.ID, Worker: "w1", Option: 1}); err != nil {
		t.Fatal(err)
	}
	if st := cqlCancel(t, base2, "s", page2.Query); st != cql.QueryCanceled {
		t.Fatalf("cancel status = %s", st)
	}
	st, err := client2.Stats()
	if err != nil {
		t.Fatal(err)
	}
	// The reservation protocol charges k up front and refunds as answers
	// arrive plus the unconsumed remainder at cancel: net spend is exactly
	// the one recorded answer, regardless of how the refunds interleaved.
	if st.BudgetSpent != 1 || st.TotalAnswers != 1 {
		t.Fatalf("spent=%v answers=%d, want exactly 1/1", st.BudgetSpent, st.TotalAnswers)
	}
	if st.ActiveLeases != 0 || st.OpenTasks != 0 {
		t.Fatalf("pool not quiesced after cancel: %+v", st)
	}

	// The session survives cancellation: machine queries still run.
	after := cqlExecuteDone(t, base2, "s", `SELECT id FROM pets ORDER BY id`)
	if len(after.Rows) != 3 {
		t.Fatalf("session dead after cancel: %+v", after)
	}
}

// TestCQLCatalogPersistsAcrossSessionsAndRestart pins -cql-dir behavior:
// closing a session (explicitly or via server shutdown) saves its
// catalog, and recreating the session — on this server or a new one over
// the same directory — reloads it.
func TestCQLCatalogPersistsAcrossSessionsAndRestart(t *testing.T) {
	dir := t.TempDir()
	ts, srv := newCQLTestServer(t, nil, CQLConfig{Dir: dir})
	base := ts.URL

	cqlCreate(t, base, "keep")
	cqlExecuteDone(t, base, "keep", `
		CREATE TABLE Hotels (id INT, City STRING);
		INSERT INTO Hotels VALUES (1,'Paris'),(2,'Tokyo')`)
	if code := doJSON(t, "DELETE", base+"/api/cql/session/keep", nil, nil); code != http.StatusOK {
		t.Fatalf("close session: status %d", code)
	}

	// Same server, recreated session: catalog reloaded, exact table name
	// preserved.
	cqlCreate(t, base, "keep")
	page := cqlExecuteDone(t, base, "keep", `SHOW TABLES`)
	if len(page.Rows) != 1 || page.Rows[0][0] != "Hotels" {
		t.Fatalf("reloaded tables = %v", page.Rows)
	}
	page = cqlExecuteDone(t, base, "keep", `SELECT City FROM hotels ORDER BY id`)
	if len(page.Rows) != 2 || page.Rows[0][0] != "Paris" {
		t.Fatalf("reloaded rows = %v", page.Rows)
	}

	// Server shutdown persists every open session; a fresh server over
	// the same directory sees the data.
	ts.Close()
	srv.Close()
	ts2, _ := newCQLTestServer(t, nil, CQLConfig{Dir: dir})
	cqlCreate(t, ts2.URL, "keep")
	page = cqlExecuteDone(t, ts2.URL, "keep", `SELECT COUNT(*) FROM hotels`)
	if len(page.Rows) != 1 || page.Rows[0][0] != "2" {
		t.Fatalf("post-restart rows = %v", page.Rows)
	}
}
