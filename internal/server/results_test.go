package server

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/assign"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/stats"
)

// getResults fetches /api/results raw, returning status, body bytes, and
// the results-version header.
func getResults(t *testing.T, base, method string) (int, []byte, string) {
	t.Helper()
	resp, err := http.Get(base + "/api/results?method=" + method)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body, resp.Header.Get(ResultsVersionHeader)
}

// ingestRound submits one deterministic batch of answers (round r, nw
// workers over the first nt tasks) through the batch endpoint.
func ingestRound(t *testing.T, client *Client, r, nw, nt int) {
	t.Helper()
	var batch []AnswerDTO
	for w := 0; w < nw; w++ {
		for i := 1; i <= nt; i++ {
			// Mostly-correct answers with deterministic ~20% noise: a
			// consistent majority signal, so EM has a unique stable fixed
			// point (an exactly balanced vote would park cold starts on
			// the symmetric saddle instead).
			opt := i % 2
			h := uint32(r*2654435761) ^ uint32(w*40503) ^ uint32(i*2246822519)
			h ^= h >> 13
			h *= 2654435761
			h ^= h >> 16
			if h%5 == 0 {
				opt = 1 - opt
			}
			batch = append(batch, AnswerDTO{
				Task:   core.TaskID(i),
				Worker: fmt.Sprintf("r%d-w%d", r, w),
				Option: opt,
			})
		}
	}
	ack, err := client.SubmitAnswers(batch)
	if err != nil {
		t.Fatal(err)
	}
	if ack.Rejected != 0 {
		t.Fatalf("round %d: %d answers rejected", r, ack.Rejected)
	}
}

// TestResultsThunderingHerd is the single-flight contract: M concurrent
// pollers racing a version bump trigger at most one EM run per (method,
// k, version), and all of them see the same complete result.
func TestResultsThunderingHerd(t *testing.T) {
	rng := stats.NewRNG(7)
	reg := obs.NewRegistry()
	srv, err := New(testPool(rng, 20), assign.FewestAnswers{}, nil, nil,
		WithShards(testShards()), WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	client := NewClient(ts.URL)

	ingestRound(t, client, 0, 6, 20)
	// First poll: populates the cache (one cold EM run).
	if code, _, _ := getResults(t, ts.URL, "onecoin"); code != http.StatusOK {
		t.Fatalf("priming poll: status %d", code)
	}
	// Version bump, then the herd.
	ingestRound(t, client, 1, 2, 20)

	const herd = 16
	bodies := make([][]byte, herd)
	var wg sync.WaitGroup
	for i := 0; i < herd; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			code, body, _ := getResults(t, ts.URL, "onecoin")
			if code != http.StatusOK {
				t.Errorf("poller %d: status %d", i, code)
			}
			bodies[i] = body
		}(i)
	}
	wg.Wait()
	for i := 1; i < herd; i++ {
		if string(bodies[i]) != string(bodies[0]) {
			t.Fatalf("poller %d saw a different body than poller 0", i)
		}
	}
	snap := reg.Snapshot()
	if runs := snap[`crowdkit_em_runs_total{method="OneCoinEM"}`]; runs > 2 {
		t.Fatalf("em runs = %v, want <= 2 (priming + at most one for the herd)", runs)
	}
	if built := snap["crowdkit_results_delta_builds_total"] + snap["crowdkit_results_full_builds_total"]; built > 2 {
		t.Fatalf("dataset builds = %v, want <= 2", built)
	}
}

// TestResultsWarmOffMatchesBaseline is the regression contract for the
// escape hatches: a warm-off server (delta path still on) must serve
// byte-identical response bodies to a server with both incremental paths
// disabled — the exact code path of the previous release — across an
// interleaved ingest/poll workload and every method.
func TestResultsWarmOffMatchesBaseline(t *testing.T) {
	newSrv := func(opts ...Option) (*httptest.Server, *Client) {
		pool := testPool(stats.NewRNG(9), 24)
		srv, err := New(pool, assign.FewestAnswers{}, nil, nil,
			append([]Option{WithShards(testShards())}, opts...)...)
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv)
		t.Cleanup(ts.Close)
		return ts, NewClient(ts.URL)
	}
	tsA, clA := newSrv(WithResultsWarm(false))
	tsB, clB := newSrv(WithResultsWarm(false), WithResultsDelta(false))

	for round := 0; round < 4; round++ {
		ingestRound(t, clA, round, 3, 24)
		ingestRound(t, clB, round, 3, 24)
		for _, method := range []string{"mv", "onecoin", "ds", "glad"} {
			codeA, bodyA, _ := getResults(t, tsA.URL, method)
			codeB, bodyB, _ := getResults(t, tsB.URL, method)
			if codeA != codeB || string(bodyA) != string(bodyB) {
				t.Fatalf("round %d method %s: incremental (%d) and baseline (%d) bodies differ:\n%s\n%s",
					round, method, codeA, codeB, bodyA, bodyB)
			}
		}
	}
}

// TestResultsWarmMatchesColdLabels checks the serving-layer half of the
// warm-vs-cold equivalence: across an interleaved workload, a
// warm-started server infers the same labels (and option strings) as a
// cold-started one for every EM method. Posterior-level equivalence is
// asserted in the experiments suite.
func TestResultsWarmMatchesColdLabels(t *testing.T) {
	newSrv := func(opts ...Option) (*httptest.Server, *Client) {
		pool := testPool(stats.NewRNG(11), 24)
		srv, err := New(pool, assign.FewestAnswers{}, nil, nil,
			append([]Option{WithShards(testShards())}, opts...)...)
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv)
		t.Cleanup(ts.Close)
		return ts, NewClient(ts.URL)
	}
	_, clWarm := newSrv()
	_, clCold := newSrv(WithResultsWarm(false))

	for round := 0; round < 4; round++ {
		ingestRound(t, clWarm, round, 3, 24)
		ingestRound(t, clCold, round, 3, 24)
		for _, method := range []string{"onecoin", "ds", "glad"} {
			warm, err := clWarm.Results(method)
			if err != nil {
				t.Fatal(err)
			}
			cold, err := clCold.Results(method)
			if err != nil {
				t.Fatal(err)
			}
			if len(warm) != len(cold) {
				t.Fatalf("round %d method %s: %d vs %d results", round, method, len(warm), len(cold))
			}
			for i := range warm {
				if warm[i].Task != cold[i].Task || warm[i].Label != cold[i].Label || warm[i].Option != cold[i].Option {
					t.Fatalf("round %d method %s: warm %+v != cold %+v", round, method, warm[i], cold[i])
				}
			}
		}
	}
}

// TestResultsVersionHeader: every response carries X-Results-Version, and
// it advances when the pool does.
func TestResultsVersionHeader(t *testing.T) {
	rng := stats.NewRNG(13)
	srv, err := New(testPool(rng, 8), assign.FewestAnswers{}, nil, nil, WithShards(testShards()))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	client := NewClient(ts.URL)

	_, _, v1s := getResults(t, ts.URL, "mv")
	v1, err := strconv.ParseUint(v1s, 10, 64)
	if err != nil {
		t.Fatalf("version header %q: %v", v1s, err)
	}
	ingestRound(t, client, 0, 2, 8)
	_, _, v2s := getResults(t, ts.URL, "mv")
	v2, err := strconv.ParseUint(v2s, 10, 64)
	if err != nil {
		t.Fatalf("version header %q: %v", v2s, err)
	}
	if v2 <= v1 {
		t.Fatalf("version did not advance: %d -> %d", v1, v2)
	}
}

// TestResultsBackgroundRefresh: with -results-refresh on, polls serve the
// last complete result without computing inline, and the background
// refresher catches the cache up to new answers.
func TestResultsBackgroundRefresh(t *testing.T) {
	rng := stats.NewRNG(17)
	reg := obs.NewRegistry()
	srv, err := New(testPool(rng, 12), assign.FewestAnswers{}, nil, nil,
		WithShards(testShards()), WithMetrics(reg), WithResultsRefresh(2*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	client := NewClient(ts.URL)

	ingestRound(t, client, 0, 3, 12)
	// First poll falls through to the inline path (nothing cached yet) and
	// registers the method with the refresher.
	code, _, v1s := getResults(t, ts.URL, "onecoin")
	if code != http.StatusOK {
		t.Fatalf("first poll: status %d", code)
	}
	ingestRound(t, client, 1, 1, 12)

	// The refresher must eventually serve a newer version from cache.
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, _, vs := getResults(t, ts.URL, "onecoin")
		if vs != v1s && vs != "" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("refresher never caught up to the new answers")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if stale := reg.Snapshot()["crowdkit_results_stale_serves_total"]; stale == 0 {
		t.Fatal("no polls were served from the last complete result")
	}
}
