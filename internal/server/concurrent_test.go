package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/assign"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/stats"
)

// TestConcurrentLoadMixed hammers every endpoint at once — many answering
// workers, a budget, golden screening, plus stats and results pollers —
// and checks the accounting invariants afterwards. Run under -race it
// locks in the thread-safety guarantees of the serving layer.
func TestConcurrentLoadMixed(t *testing.T) {
	rng := stats.NewRNG(11)
	const tasks, workers, perWorker = 60, 12, 25
	pool := testPool(rng, tasks)
	budget := core.NewBudget(tasks * workers) // ample, but finite
	screen := core.NewWorkerScreen(1000, 0.1) // active code path, never fires
	srv, err := New(pool, assign.FewestAnswers{}, budget, screen, WithShards(testShards()))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	client := NewClient(ts.URL)

	var wg sync.WaitGroup
	errCh := make(chan error, workers+2)

	// Answering workers: fetch a task, submit, repeat. Each also throws in
	// a duplicate submission to exercise the refund path under load.
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			worker := fmt.Sprintf("load-%d", w)
			for i := 0; i < perWorker; i++ {
				d, ok, err := client.FetchTask(worker)
				if err != nil {
					errCh <- err
					return
				}
				if !ok {
					return
				}
				if err := client.SubmitAnswer(AnswerDTO{Task: d.ID, Worker: worker, Option: i % 2}); err != nil {
					errCh <- err
					return
				}
				// Duplicate: must be rejected and must refund its unit.
				if err := client.SubmitAnswer(AnswerDTO{Task: d.ID, Worker: worker, Option: 0}); err == nil {
					errCh <- fmt.Errorf("duplicate answer accepted for task %d", d.ID)
					return
				}
			}
		}(w)
	}

	// Readers: poll stats and results while the writes are in flight.
	done := make(chan struct{})
	for _, poll := range []func() error{
		func() error { _, err := client.Stats(); return err },
		func() error { _, err := client.Results("mv"); return err },
	} {
		wg.Add(1)
		go func(poll func() error) {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
					if err := poll(); err != nil {
						errCh <- err
						return
					}
				}
			}
		}(poll)
	}

	// Wait for the writers, then stop the pollers.
	writersDone := make(chan struct{})
	go func() {
		defer close(writersDone)
		wg.Wait()
	}()
	// Closing done only after writers finish requires splitting the wait;
	// simplest is a second WaitGroup pass: signal once all answers landed.
	<-awaitAnswers(client, workers*perWorker, errCh)
	close(done)
	<-writersDone
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	st, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	want := workers * perWorker
	if st.TotalAnswers != want {
		t.Fatalf("answers = %d, want %d", st.TotalAnswers, want)
	}
	// Every accepted answer cost exactly one unit; every rejected
	// duplicate was refunded.
	if st.BudgetSpent != float64(want) {
		t.Fatalf("budget spent = %v, want %v (refund leak under load)", st.BudgetSpent, want)
	}
	// One answer per worker per task survived the concurrency. Read via
	// the server's pool: the seed pool is split (and thus stale) when the
	// suite runs sharded.
	for _, id := range srv.cpool.TaskIDs() {
		seen := map[string]bool{}
		for _, a := range srv.cpool.Answers(id) {
			if seen[a.Worker] {
				t.Fatalf("task %d has duplicate answers from %s", id, a.Worker)
			}
			seen[a.Worker] = true
		}
	}
}

// awaitAnswers closes the returned channel once the server reports the
// target answer count (or reports an error).
func awaitAnswers(client *Client, target int, errCh chan<- error) <-chan struct{} {
	ch := make(chan struct{})
	go func() {
		defer close(ch)
		for {
			st, err := client.Stats()
			if err != nil {
				errCh <- err
				return
			}
			if st.TotalAnswers >= target {
				return
			}
		}
	}()
	return ch
}

// serialHandler reproduces the pre-concurrency design for benchmarking:
// one global mutex around the whole request, the way the server behaved
// when core.Pool and core.Budget were single-threaded.
type serialHandler struct {
	mu sync.Mutex
	h  http.Handler
}

func (sh *serialHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.h.ServeHTTP(w, r)
}

// benchIteration is one simulated platform interaction: a fresh worker
// fetches its assignment and submits an answer; every 16th interaction
// polls stats, and every 8th runs a short requester-dashboard burst of
// result polls (auto-refresh reads between answer arrivals).
func benchIteration(tb testing.TB, h http.Handler, seq int64) {
	worker := fmt.Sprintf("bw-%d", seq)
	req := httptest.NewRequest("GET", "/api/task?worker="+worker, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code == http.StatusOK {
		var dto TaskDTO
		if err := json.NewDecoder(rec.Body).Decode(&dto); err != nil {
			tb.Fatal(err)
		}
		body, _ := json.Marshal(AnswerDTO{Task: dto.ID, Worker: worker, Option: int(seq % 2)})
		req = httptest.NewRequest("POST", "/api/answer", bytes.NewReader(body))
		rec = httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			tb.Fatalf("answer rejected: %d %s", rec.Code, rec.Body.String())
		}
	}
	if seq%16 == 0 {
		rec = httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/api/stats", nil))
		if rec.Code != http.StatusOK {
			tb.Fatalf("stats failed: %d", rec.Code)
		}
	}
	if seq%8 == 0 {
		for i := 0; i < 3; i++ {
			rec = httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest("GET", "/api/results?method=onecoin", nil))
			if rec.Code != http.StatusOK {
				tb.Fatalf("results failed: %d %s", rec.Code, rec.Body.String())
			}
		}
	}
}

// benchServer drives the mixed load from `workers` goroutines. legacy
// selects the pre-concurrency server behavior: every request behind one
// global mutex and no results memoization (EM re-runs on every poll).
// Extra options (e.g. WithMetrics) are applied to the server under test.
func benchServer(b *testing.B, legacy bool, workers int, opts ...Option) {
	rng := stats.NewRNG(12)
	pool := testPool(rng, 256)
	srv, err := New(pool, assign.FewestAnswers{}, nil, nil, opts...)
	if err != nil {
		b.Fatal(err)
	}
	var h http.Handler = srv
	if legacy {
		srv.cache = nil
		h = &serialHandler{h: srv}
	}
	var seq atomic.Int64
	per := b.N/workers + 1
	b.ResetTimer()
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				benchIteration(b, h, seq.Add(1))
			}
		}()
	}
	wg.Wait()
}

// BenchmarkServerConcurrent quantifies the serving-layer rework at
// increasing worker parallelism. The "globalmutex" runs reproduce the old
// design (requests serialized by one mutex, results recomputed per poll);
// the "finegrained" runs are the shipped server (RWMutex pool, atomic
// budget, version-keyed results cache). The cache win shows at any core
// count; the lock-granularity win additionally scales with GOMAXPROCS.
func BenchmarkServerConcurrent(b *testing.B) {
	for _, workers := range []int{1, 8, 32} {
		b.Run(fmt.Sprintf("globalmutex/workers=%d", workers), func(b *testing.B) {
			benchServer(b, true, workers)
		})
		b.Run(fmt.Sprintf("finegrained/workers=%d", workers), func(b *testing.B) {
			benchServer(b, false, workers)
		})
		// Same server with the full observability layer on: per-request
		// tracing, status counters, and latency histograms. The acceptance
		// bar for the instrumentation is staying within a few percent of
		// the uninstrumented finegrained runs.
		b.Run(fmt.Sprintf("metrics/workers=%d", workers), func(b *testing.B) {
			benchServer(b, false, workers, WithMetrics(obs.NewRegistry()))
		})
		// The sharded pool: one shard per core. At 1 worker it should sit
		// within noise of finegrained (routing is a hash and a slice
		// index); under parallel load it removes the single-RWMutex
		// bottleneck from the answer path.
		b.Run(fmt.Sprintf("sharded/workers=%d", workers), func(b *testing.B) {
			benchServer(b, false, workers, WithShards(runtime.GOMAXPROCS(0)))
		})
		// The span flight recorder sampling every request. finegrained is
		// the tracing-off baseline; the gap between these two runs is the
		// full recording cost, and finegrained itself must stay where it
		// was before tracing existed (nil-collector fast path).
		b.Run(fmt.Sprintf("tracing/workers=%d", workers), func(b *testing.B) {
			benchServer(b, false, workers, WithTracing(obs.NewCollector(obs.CollectorOptions{})))
		})
	}
}

// BenchmarkResultsPoll measures the /api/results fast path: "cached"
// polls an unchanged pool (version-keyed memoization, no EM), while
// "invalidated" records a fresh answer before every poll, forcing a full
// re-inference each time.
func BenchmarkResultsPoll(b *testing.B) {
	setup := func(b *testing.B) *Server {
		rng := stats.NewRNG(13)
		pool := testPool(rng, 100)
		srv, err := New(pool, assign.FewestAnswers{}, nil, nil)
		if err != nil {
			b.Fatal(err)
		}
		for w := 0; w < 7; w++ {
			for _, id := range pool.TaskIDs() {
				a := core.Answer{Task: id, Worker: fmt.Sprintf("w%d", w), Option: rng.Intn(2)}
				body, _ := json.Marshal(AnswerDTO{Task: a.Task, Worker: a.Worker, Option: a.Option})
				rec := httptest.NewRecorder()
				srv.ServeHTTP(rec, httptest.NewRequest("POST", "/api/answer", bytes.NewReader(body)))
				if rec.Code != http.StatusOK {
					b.Fatalf("seed answer rejected: %d", rec.Code)
				}
			}
		}
		return srv
	}
	poll := func(b *testing.B, srv *Server) {
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, httptest.NewRequest("GET", "/api/results?method=ds", nil))
		if rec.Code != http.StatusOK {
			b.Fatalf("results failed: %d %s", rec.Code, rec.Body.String())
		}
	}
	b.Run("cached", func(b *testing.B) {
		srv := setup(b)
		poll(b, srv) // warm the cache
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			poll(b, srv)
		}
	})
	b.Run("invalidated", func(b *testing.B) {
		srv := setup(b)
		ids := srv.cpool.TaskIDs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			w := fmt.Sprintf("inv-%d", i)
			body, _ := json.Marshal(AnswerDTO{Task: ids[i%len(ids)], Worker: w, Option: i % 2})
			rec := httptest.NewRecorder()
			srv.ServeHTTP(rec, httptest.NewRequest("POST", "/api/answer", bytes.NewReader(body)))
			if rec.Code != http.StatusOK {
				b.Fatalf("answer rejected: %d", rec.Code)
			}
			poll(b, srv)
		}
	})
}
