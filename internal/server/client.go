package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// maxBodyBytes bounds how much of any response body the client reads: API
// payloads are small, and an unbounded read would let a misbehaving server
// pin client memory. Decoders read through io.LimitReader and the
// remainder is drained so keep-alive connections are reused.
const maxBodyBytes = 4 << 20

// defaultTimeout bounds one HTTP attempt end to end. A client pointed at
// a stalled server returns within this deadline instead of hanging.
const defaultTimeout = 30 * time.Second

// APIError is a non-2xx platform response. Status codes in the 5xx range
// are retryable (the server had a transient problem); 4xx codes are the
// client's fault and are never retried. TraceID, when non-empty, is the
// trace ID the failing request carried — quote it when filing a report
// and the server's /api/trace/{id} view (if tracing is on) shows exactly
// what the request did.
type APIError struct {
	StatusCode int
	Msg        string
	TraceID    string
}

// Error implements error.
func (e *APIError) Error() string {
	s := fmt.Sprintf("server: HTTP %d", e.StatusCode)
	if e.Msg != "" {
		s = fmt.Sprintf("server: %s (HTTP %d)", e.Msg, e.StatusCode)
	}
	if e.TraceID != "" {
		s += " [trace " + e.TraceID + "]"
	}
	return s
}

// Retryable reports whether the request may be retried (server-side
// failure, not a rejection of the request itself).
func (e *APIError) Retryable() bool { return e.StatusCode >= 500 }

// Client is the worker-side API wrapper: it polls for assignments and
// submits answers over HTTP. The simulated crowd drives it in tests and
// demos; real deployments would put a task UI behind the same calls.
//
// The client survives a flaky platform: every request has a hard timeout,
// and connection errors and 5xx responses are retried with capped
// exponential backoff plus jitter. 4xx responses (duplicate answer,
// budget exhausted, eliminated worker) are returned immediately — they
// will not succeed on retry. The zero configuration retries 3 times from
// a 50ms base; set MaxRetries to -1 to disable retries entirely.
type Client struct {
	BaseURL string
	HTTP    *http.Client
	// MaxRetries is how many times a failed attempt is retried (so up to
	// 1+MaxRetries requests go out). 0 means the default of 3; negative
	// disables retries.
	MaxRetries int
	// BackoffBase is the first retry delay (default 50ms); each retry
	// doubles it up to BackoffMax (default 2s). Actual sleeps are jittered
	// uniformly over [d/2, d) to avoid retry stampedes.
	BackoffBase time.Duration
	BackoffMax  time.Duration

	// Metrics counts this client's retry and termination events. The
	// counters are always on (atomic increments, no registry needed), so a
	// DriveWorker exit is always classifiable after the fact: a clean
	// abandon bumps Abandons, retry exhaustion bumps RetryExhausted, and a
	// consecutive-rejection failure bumps ConflictExhausted. Register them
	// on a registry with RegisterMetrics for /metrics exposure.
	Metrics ClientMetrics

	// jitterMu guards jitterState: one client is shared by many worker
	// goroutines.
	jitterMu    sync.Mutex
	jitterState uint64
}

// ClientMetrics holds the client-side counters. The zero value is ready;
// all counters are safe for concurrent use by the worker goroutines
// sharing the client.
type ClientMetrics struct {
	// Retries counts individual retry attempts (sleep + resend) in do.
	Retries obs.Counter
	// RetryExhausted counts requests that failed even after the full retry
	// budget — the error DriveWorker surfaces as fatal.
	RetryExhausted obs.Counter
	// Conflicts counts 4xx submission rejections DriveWorker absorbed
	// (lost races: duplicate answer, task closed, budget race).
	Conflicts obs.Counter
	// ConflictExhausted counts DriveWorker terminations caused by
	// maxConsecutiveConflicts rejections in a row.
	ConflictExhausted obs.Counter
	// Abandons counts clean worker-walked-away drive terminations.
	Abandons obs.Counter
}

// RegisterMetrics exposes the client counters on reg under
// crowdkit_client_*. No-op on a nil registry.
func (c *Client) RegisterMetrics(reg *obs.Registry) {
	reg.RegisterCounter("crowdkit_client_retries_total", &c.Metrics.Retries)
	reg.RegisterCounter("crowdkit_client_retry_exhausted_total", &c.Metrics.RetryExhausted)
	reg.RegisterCounter("crowdkit_client_submit_conflicts_total", &c.Metrics.Conflicts)
	reg.RegisterCounter("crowdkit_client_conflict_exhausted_total", &c.Metrics.ConflictExhausted)
	reg.RegisterCounter("crowdkit_client_abandons_total", &c.Metrics.Abandons)
}

// ClientOption configures a Client.
type ClientOption func(*Client)

// WithTimeout sets the per-attempt HTTP timeout (connection + request +
// response body).
func WithTimeout(d time.Duration) ClientOption {
	return func(c *Client) { c.HTTP.Timeout = d }
}

// WithRetry sets the retry policy: maxRetries retries (negative disables)
// with exponential backoff from base capped at max.
func WithRetry(maxRetries int, base, max time.Duration) ClientOption {
	return func(c *Client) {
		if maxRetries < 0 {
			c.MaxRetries = -1
		} else {
			c.MaxRetries = maxRetries
		}
		c.BackoffBase = base
		c.BackoffMax = max
	}
}

// NewClient wires a client for the given base URL (no trailing slash)
// with the default timeout and retry policy.
func NewClient(baseURL string, opts ...ClientOption) *Client {
	c := &Client{
		BaseURL:     baseURL,
		HTTP:        &http.Client{Timeout: defaultTimeout},
		jitterState: uint64(time.Now().UnixNano()) | 1,
	}
	for _, opt := range opts {
		opt(c)
	}
	return c
}

// retries resolves the configured retry count.
func (c *Client) retries() int {
	switch {
	case c.MaxRetries < 0:
		return 0
	case c.MaxRetries == 0:
		return 3
	default:
		return c.MaxRetries
	}
}

// backoff returns the jittered sleep before retry attempt i (0-based):
// uniform over [d/2, d) where d = min(BackoffMax, BackoffBase<<i).
func (c *Client) backoff(i int) time.Duration {
	base := c.BackoffBase
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	max := c.BackoffMax
	if max <= 0 {
		max = 2 * time.Second
	}
	d := base << uint(i)
	if d <= 0 || d > max {
		d = max
	}
	// xorshift64* for cheap lock-guarded jitter; crypto quality is not
	// needed, decorrelation across clients is.
	c.jitterMu.Lock()
	x := c.jitterState
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	c.jitterState = x
	c.jitterMu.Unlock()
	frac := float64(x>>11) / float64(1<<53)
	return d/2 + time.Duration(frac*float64(d/2))
}

// do issues one request with the retry policy: transport errors and 5xx
// responses are retried with backoff, anything else is returned as-is.
// A non-nil body is replayed on every attempt.
//
// One trace ID is minted per logical operation and sent as X-Trace-Id on
// every attempt, so all retries of the same operation land in the same
// trace on a tracing-enabled server and a client-side error can be
// joined to the server's view of each attempt.
func (c *Client) do(method, url string, body []byte) (*http.Response, error) {
	tid := obs.NewTraceID()
	var lastErr error
	for attempt := 0; ; attempt++ {
		var rdr io.Reader
		if body != nil {
			rdr = bytes.NewReader(body)
		}
		req, err := http.NewRequest(method, url, rdr)
		if err != nil {
			return nil, fmt.Errorf("server: building request: %w", err)
		}
		req.Header.Set(TraceHeader, tid)
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := c.HTTP.Do(req)
		if err == nil && resp.StatusCode < 500 {
			return resp, nil
		}
		if err != nil {
			lastErr = fmt.Errorf("server: %s %s: %w", method, url, err)
		} else {
			// 5xx: capture the platform error, drain and close so the
			// connection is reusable, then retry.
			lastErr = apiError(resp)
			drainClose(resp)
		}
		if attempt >= c.retries() {
			c.Metrics.RetryExhausted.Inc()
			return nil, lastErr
		}
		c.Metrics.Retries.Inc()
		time.Sleep(c.backoff(attempt))
	}
}

// drainClose reads the remaining (bounded) body and closes it, so the
// underlying keep-alive connection goes back into the pool instead of
// being torn down.
func drainClose(resp *http.Response) {
	io.Copy(io.Discard, io.LimitReader(resp.Body, maxBodyBytes))
	resp.Body.Close()
}

// decodeJSON decodes a bounded response body into v and drains the rest.
func decodeJSON(resp *http.Response, v any) error {
	err := json.NewDecoder(io.LimitReader(resp.Body, maxBodyBytes)).Decode(v)
	drainClose(resp)
	return err
}

// FetchTask asks for an assignment for the worker. ok=false means no
// eligible task right now.
func (c *Client) FetchTask(worker string) (*TaskDTO, bool, error) {
	resp, err := c.do(http.MethodGet, fmt.Sprintf("%s/api/task?worker=%s", c.BaseURL, worker), nil)
	if err != nil {
		return nil, false, fmt.Errorf("server: fetching task: %w", err)
	}
	switch resp.StatusCode {
	case http.StatusNoContent:
		drainClose(resp)
		return nil, false, nil
	case http.StatusOK:
		var t TaskDTO
		if err := decodeJSON(resp, &t); err != nil {
			return nil, false, fmt.Errorf("server: decoding task: %w", err)
		}
		return &t, true, nil
	default:
		err := apiError(resp)
		drainClose(resp)
		return nil, false, err
	}
}

// SubmitAnswer posts an answer.
func (c *Client) SubmitAnswer(a AnswerDTO) error {
	body, err := json.Marshal(a)
	if err != nil {
		return fmt.Errorf("server: encoding answer: %w", err)
	}
	resp, err := c.do(http.MethodPost, c.BaseURL+"/api/answer", body)
	if err != nil {
		return fmt.Errorf("server: submitting answer: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		err := apiError(resp)
		drainClose(resp)
		return err
	}
	drainClose(resp)
	return nil
}

// SubmitAnswers posts a batch of answers to /api/answers in one request
// and returns the per-item outcomes (in the same order as as). Items are
// accepted independently: inspect the result's Results for rejected items
// rather than treating a partial batch as an error.
func (c *Client) SubmitAnswers(as []AnswerDTO) (*BatchResultDTO, error) {
	body, err := json.Marshal(as)
	if err != nil {
		return nil, fmt.Errorf("server: encoding answer batch: %w", err)
	}
	resp, err := c.do(http.MethodPost, c.BaseURL+"/api/answers", body)
	if err != nil {
		return nil, fmt.Errorf("server: submitting answer batch: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		err := apiError(resp)
		drainClose(resp)
		return nil, err
	}
	var out BatchResultDTO
	if err := decodeJSON(resp, &out); err != nil {
		return nil, fmt.Errorf("server: decoding batch result: %w", err)
	}
	return &out, nil
}

// Stats fetches pool statistics.
func (c *Client) Stats() (*StatsDTO, error) {
	resp, err := c.do(http.MethodGet, c.BaseURL+"/api/stats", nil)
	if err != nil {
		return nil, fmt.Errorf("server: fetching stats: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		err := apiError(resp)
		drainClose(resp)
		return nil, err
	}
	var s StatsDTO
	if err := decodeJSON(resp, &s); err != nil {
		return nil, fmt.Errorf("server: decoding stats: %w", err)
	}
	return &s, nil
}

// Health checks the /healthz endpoint; nil means the server is serving.
func (c *Client) Health() error {
	resp, err := c.do(http.MethodGet, c.BaseURL+"/healthz", nil)
	if err != nil {
		return fmt.Errorf("server: health check: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		err := apiError(resp)
		drainClose(resp)
		return err
	}
	drainClose(resp)
	return nil
}

// Results fetches inferred labels aggregated with the given method
// ("mv", "onecoin", "ds", "glad"; "" = mv).
func (c *Client) Results(method string) ([]ResultDTO, error) {
	url := c.BaseURL + "/api/results"
	if method != "" {
		url += "?method=" + method
	}
	resp, err := c.do(http.MethodGet, url, nil)
	if err != nil {
		return nil, fmt.Errorf("server: fetching results: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		err := apiError(resp)
		drainClose(resp)
		return nil, err
	}
	var out []ResultDTO
	if err := decodeJSON(resp, &out); err != nil {
		return nil, fmt.Errorf("server: decoding results: %w", err)
	}
	return out, nil
}

// maxConsecutiveConflicts bounds how many times in a row DriveWorker will
// shrug off a 4xx submission rejection before treating the conflict as
// fatal: lost races (duplicate, task closed meanwhile) resolve within a
// couple of fetches, while an endless conflict stream means the platform
// and the driver disagree about state.
const maxConsecutiveConflicts = 16

// DriveWorker runs one simulated worker against the platform until no
// more assignments are available (or maxTasks is reached). The worker's
// behavior comes from its core.Worker implementation; the HTTP task DTO
// is reconstituted into a core.Task sans ground truth, so the caller must
// provide a truthful task source via lookup for simulation (nil lookup
// makes workers answer from the DTO alone — random for honest workers,
// since they cannot know the planted truth over the wire).
//
// Error handling distinguishes retryable from fatal conditions: transport
// errors and 5xx responses are retried inside each call per the client's
// retry policy and only surface after retries are exhausted (fatal); a
// 4xx rejection of a submission (lost race: somebody closed the task, a
// duplicate slipped in) skips that task and keeps driving; a worker whose
// Work response has Abandon set has dropped out, and the drive ends
// cleanly — the platform's lease machinery reclaims whatever they held.
func (c *Client) DriveWorker(w core.Worker, lookup func(core.TaskID) *core.Task, maxTasks int) (int, error) {
	done := 0
	conflicts := 0
	for maxTasks <= 0 || done < maxTasks {
		dto, ok, err := c.FetchTask(w.ID())
		if err != nil {
			return done, err
		}
		if !ok {
			return done, nil
		}
		var task *core.Task
		if lookup != nil {
			task = lookup(dto.ID)
		}
		if task == nil {
			task = &core.Task{
				ID: dto.ID, Kind: core.SingleChoice,
				Question: dto.Question, Options: dto.Options,
				GroundTruth: -1,
			}
		}
		resp := w.Work(task)
		if resp.Abandon {
			// The worker walked away mid-task without submitting; their
			// lease (if the server issues leases) expires and is re-issued.
			c.Metrics.Abandons.Inc()
			return done, nil
		}
		err = c.SubmitAnswer(AnswerDTO{
			Task: dto.ID, Worker: w.ID(),
			Option: resp.Option, Text: resp.Text, Score: resp.Score,
		})
		if err != nil {
			var ae *APIError
			if errors.As(err, &ae) && !ae.Retryable() && ae.StatusCode != http.StatusForbidden {
				// Rejected submission (duplicate, closed task, budget race):
				// this assignment is lost, but the worker can keep going.
				c.Metrics.Conflicts.Inc()
				conflicts++
				if conflicts >= maxConsecutiveConflicts {
					c.Metrics.ConflictExhausted.Inc()
					return done, fmt.Errorf("server: %d consecutive rejected submissions: %w", conflicts, err)
				}
				continue
			}
			return done, err
		}
		conflicts = 0
		done++
	}
	return done, nil
}

// apiError turns a non-2xx response into an *APIError, reading at most
// maxBodyBytes of the error payload. It does not close the body; callers
// drain and close via drainClose. The trace ID is taken from the
// response echo when present (the authoritative server-side value), else
// from the request header the client sent.
func apiError(resp *http.Response) error {
	var e struct {
		Error string `json:"error"`
	}
	msg := ""
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxBodyBytes)).Decode(&e); err == nil {
		msg = e.Error
	}
	tid := resp.Header.Get(TraceHeader)
	if tid == "" && resp.Request != nil {
		tid = resp.Request.Header.Get(TraceHeader)
	}
	return &APIError{StatusCode: resp.StatusCode, Msg: msg, TraceID: tid}
}
