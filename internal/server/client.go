package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"repro/internal/core"
)

// Client is the worker-side API wrapper: it polls for assignments and
// submits answers over HTTP. The simulated crowd drives it in tests and
// demos; real deployments would put a task UI behind the same calls.
type Client struct {
	BaseURL string
	HTTP    *http.Client
}

// NewClient wires a client for the given base URL (no trailing slash).
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: baseURL, HTTP: http.DefaultClient}
}

// FetchTask asks for an assignment for the worker. ok=false means no
// eligible task right now.
func (c *Client) FetchTask(worker string) (*TaskDTO, bool, error) {
	resp, err := c.HTTP.Get(fmt.Sprintf("%s/api/task?worker=%s", c.BaseURL, worker))
	if err != nil {
		return nil, false, fmt.Errorf("server: fetching task: %w", err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusNoContent:
		return nil, false, nil
	case http.StatusOK:
		var t TaskDTO
		if err := json.NewDecoder(resp.Body).Decode(&t); err != nil {
			return nil, false, fmt.Errorf("server: decoding task: %w", err)
		}
		return &t, true, nil
	default:
		return nil, false, apiError(resp)
	}
}

// SubmitAnswer posts an answer.
func (c *Client) SubmitAnswer(a AnswerDTO) error {
	body, err := json.Marshal(a)
	if err != nil {
		return fmt.Errorf("server: encoding answer: %w", err)
	}
	resp, err := c.HTTP.Post(c.BaseURL+"/api/answer", "application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("server: submitting answer: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return apiError(resp)
	}
	io.Copy(io.Discard, resp.Body)
	return nil
}

// Stats fetches pool statistics.
func (c *Client) Stats() (*StatsDTO, error) {
	resp, err := c.HTTP.Get(c.BaseURL + "/api/stats")
	if err != nil {
		return nil, fmt.Errorf("server: fetching stats: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, apiError(resp)
	}
	var s StatsDTO
	if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
		return nil, fmt.Errorf("server: decoding stats: %w", err)
	}
	return &s, nil
}

// Results fetches inferred labels aggregated with the given method
// ("mv", "onecoin", "ds", "glad"; "" = mv).
func (c *Client) Results(method string) ([]ResultDTO, error) {
	url := c.BaseURL + "/api/results"
	if method != "" {
		url += "?method=" + method
	}
	resp, err := c.HTTP.Get(url)
	if err != nil {
		return nil, fmt.Errorf("server: fetching results: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, apiError(resp)
	}
	var out []ResultDTO
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("server: decoding results: %w", err)
	}
	return out, nil
}

// DriveWorker runs one simulated worker against the platform until no
// more assignments are available (or maxTasks is reached). The worker's
// behavior comes from its core.Worker implementation; the HTTP task DTO
// is reconstituted into a core.Task sans ground truth, so the caller must
// provide a truthful task source via lookup for simulation (nil lookup
// makes workers answer from the DTO alone — random for honest workers,
// since they cannot know the planted truth over the wire).
func (c *Client) DriveWorker(w core.Worker, lookup func(core.TaskID) *core.Task, maxTasks int) (int, error) {
	done := 0
	for maxTasks <= 0 || done < maxTasks {
		dto, ok, err := c.FetchTask(w.ID())
		if err != nil {
			return done, err
		}
		if !ok {
			return done, nil
		}
		var task *core.Task
		if lookup != nil {
			task = lookup(dto.ID)
		}
		if task == nil {
			task = &core.Task{
				ID: dto.ID, Kind: core.SingleChoice,
				Question: dto.Question, Options: dto.Options,
				GroundTruth: -1,
			}
		}
		resp := w.Work(task)
		err = c.SubmitAnswer(AnswerDTO{
			Task: dto.ID, Worker: w.ID(),
			Option: resp.Option, Text: resp.Text, Score: resp.Score,
		})
		if err != nil {
			return done, err
		}
		done++
	}
	return done, nil
}

func apiError(resp *http.Response) error {
	var e struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&e); err == nil && e.Error != "" {
		return fmt.Errorf("server: %s (HTTP %d)", e.Error, resp.StatusCode)
	}
	return fmt.Errorf("server: HTTP %d", resp.StatusCode)
}
