package server

import (
	"sort"

	"repro/internal/cql"
)

// CQL crash recovery. The durable store replays EvCql* events into a
// replica of the query service's state (open sessions with prepared
// statements and running queries; open crowd questions with their budget
// reservations). recoverCQL turns that replica back into live state at
// boot, in two phases:
//
//  1. Budget reconciliation. Every open question is an orphan: its query
//     goroutine died with the process, so nothing will ever close its
//     task or release the rest of its reservation. The pass closes the
//     task (dropping outstanding leases, journaled through the pool
//     journal) and refunds reserved − refunded — after which the live
//     budget's spent equals exactly the answers that were acked, the
//     same spend a never-crashed control that canceled the question
//     would report. This runs even when the query service is not mounted
//     this boot: the orphaned tasks live in this server's pool.
//
//  2. Session restore (only with WithCQL). Each journaled open session
//     is rebuilt through SessionManager.Restore: the factory reloads its
//     persisted catalog, prepared statements re-parse from their
//     journaled source, and the queries that were running at crash time
//     come back as terminal handles with status "recovered" — pollers
//     learn the results were lost instead of getting a 404. The restored
//     handles' running markers are then retired in the journal so a
//     second restart does not re-recover them.
//
// The pass runs from New after the pool journal is attached and initCQL
// built the manager, before any traffic. Without a store it is one nil
// check.
func (s *Server) recoverCQL() {
	if s.store == nil {
		return
	}
	sessions, questions := s.store.CQLState()
	for _, q := range questions {
		s.cpool.Close(q.Task)
		remainder := q.Reserved - q.Refunded
		if remainder < 0 {
			remainder = 0
		}
		if remainder > 0 {
			s.budget.Refund(remainder)
		}
		// Retire the question's durable ledger with the same remainder, so
		// the replica's spend tracks the refund we just issued.
		_ = s.store.CQLQuestionClosed(q.Task, remainder)
		s.cqlRecQuestions.Inc()
		s.cqlRecRefund.Add(int64(remainder))
	}
	if s.cqlMgr == nil {
		// Durability without the query service: the session records stay in
		// the journal untouched, and a later boot that mounts CQL restores
		// them then.
		return
	}
	for _, sess := range sessions {
		queries := make([]cql.RestoredQuery, 0, len(sess.Running))
		for qid, src := range sess.Running {
			queries = append(queries, cql.RestoredQuery{ID: qid, Src: src})
		}
		sort.Slice(queries, func(i, j int) bool { return queries[i].ID < queries[j].ID })
		if _, err := s.cqlMgr.Restore(sess.Name, sess.Prepared, queries); err != nil {
			if s.reqLog != nil {
				s.reqLog.Error("cql session restore failed", "session", sess.Name, "error", err)
			}
			continue
		}
		s.cqlRecSessions.Inc()
		s.cqlRecQueries.Add(int64(len(queries)))
		for _, rq := range queries {
			// The resurrected handle is terminal; the journal must stop
			// calling it running, or the next restart would recover it again
			// (and shadow genuinely new mid-flight queries in the counts).
			_ = s.store.CQLQueryFinished(sess.Name, rq.ID, string(cql.QueryRecovered))
		}
	}
}
