package truth

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/crowd"
)

// forceWorkers pins the EM kernels to exactly w goroutines regardless of
// dataset size (w == 1 with a huge threshold is the pure serial path) and
// returns a restore func.
func forceWorkers(w int) func() {
	oldPar, oldThr := inferParallelism, serialAnswerThreshold
	inferParallelism = w
	if w == 1 {
		serialAnswerThreshold = math.MaxInt
	} else {
		serialAnswerThreshold = 0
	}
	return func() {
		inferParallelism, serialAnswerThreshold = oldPar, oldThr
	}
}

func sameResult(t *testing.T, method string, workers int, ref, got *Result, ds *Dataset) {
	t.Helper()
	if ref.Iterations != got.Iterations {
		t.Fatalf("%s workers=%d: iterations %d != serial %d",
			method, workers, got.Iterations, ref.Iterations)
	}
	for _, id := range ds.TaskIDs {
		if ref.Labels[id] != got.Labels[id] {
			t.Fatalf("%s workers=%d: task %d label %d != serial %d",
				method, workers, id, got.Labels[id], ref.Labels[id])
		}
		rp, gp := ref.Posterior[id], got.Posterior[id]
		for c := range rp {
			if math.Float64bits(rp[c]) != math.Float64bits(gp[c]) {
				t.Fatalf("%s workers=%d: task %d posterior[%d] %v != serial %v (not bit-identical)",
					method, workers, id, c, gp[c], rp[c])
			}
		}
	}
	for _, w := range ds.WorkerIDs {
		if math.Float64bits(ref.WorkerQuality[w]) != math.Float64bits(got.WorkerQuality[w]) {
			t.Fatalf("%s workers=%d: worker %s quality %v != serial %v",
				method, workers, w, got.WorkerQuality[w], ref.WorkerQuality[w])
		}
	}
}

// TestParallelInferenceMatchesSerial is the determinism matrix: on a
// seeded 2k-task dataset, every EM kernel must produce bit-identical
// posteriors, labels, qualities, and iteration counts at 1, 2, 4, and 8
// goroutines. Shard boundaries never cross a floating-point accumulator
// (see parallel.go), so this holds exactly, not approximately. CI runs it
// under -race.
func TestParallelInferenceMatchesSerial(t *testing.T) {
	_, ds := buildWorkload(7001, 2000, 50, 5, crowd.RegimeMixed, 0.3)
	methods := []Inferrer{
		OneCoinEM{MaxIter: 12},
		DawidSkene{MaxIter: 12},
		GLAD{MaxIter: 6},
	}
	for _, inf := range methods {
		restore := forceWorkers(1)
		ref, err := inf.Infer(ds)
		restore()
		if err != nil {
			t.Fatalf("%s serial: %v", inf.Name(), err)
		}
		for _, w := range []int{2, 4, 8} {
			restore := forceWorkers(w)
			got, err := inf.Infer(ds)
			restore()
			if err != nil {
				t.Fatalf("%s workers=%d: %v", inf.Name(), w, err)
			}
			sameResult(t, inf.Name(), w, ref, got, ds)
		}
	}
}

// TestUnansweredTaskStartsUniform is the regression test for
// initPosteriors: a task with no answers must seed EM with an exactly
// uniform posterior, and every method must still return a valid
// distribution for it (GLAD, whose class prior is fixed uniform, must
// return exactly uniform).
func TestUnansweredTaskStartsUniform(t *testing.T) {
	pool := core.NewPool()
	a := pool.MustAdd(&core.Task{ID: 1, Kind: core.SingleChoice, Options: []string{"x", "y", "z"}, GroundTruth: 0})
	b := pool.MustAdd(&core.Task{ID: 2, Kind: core.SingleChoice, Options: []string{"x", "y", "z"}, GroundTruth: 1})
	unanswered := pool.MustAdd(&core.Task{ID: 3, Kind: core.SingleChoice, Options: []string{"x", "y", "z"}, GroundTruth: 2})
	for _, w := range []string{"w1", "w2", "w3"} {
		pool.Record(core.Answer{Task: a, Worker: w, Option: 0})
		pool.Record(core.Answer{Task: b, Worker: w, Option: 1})
	}
	ds, err := FromPool(pool, pool.TaskIDs())
	if err != nil {
		t.Fatal(err)
	}

	// The EM seed itself must be exactly uniform for the unanswered task.
	post := make([]float64, len(ds.TaskIDs)*ds.K)
	initPosteriorsInto(ds, post)
	ti := ds.TaskIndex(unanswered)
	for c := 0; c < ds.K; c++ {
		if got := post[ti*ds.K+c]; got != 1.0/3.0 {
			t.Fatalf("seed posterior[%d] = %v, want exactly 1/3", c, got)
		}
	}

	for _, inf := range []Inferrer{OneCoinEM{}, DawidSkene{}, GLAD{}} {
		res, err := inf.Infer(ds)
		if err != nil {
			t.Fatalf("%s: %v", inf.Name(), err)
		}
		p := res.Posterior[unanswered]
		sum := 0.0
		for _, v := range p {
			if math.IsNaN(v) || v < 0 || v > 1 {
				t.Fatalf("%s: degenerate posterior %v for unanswered task", inf.Name(), p)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("%s: unanswered posterior sums to %v", inf.Name(), sum)
		}
		if lbl := res.Labels[unanswered]; lbl < 0 || lbl >= ds.K {
			t.Fatalf("%s: label %d out of range", inf.Name(), lbl)
		}
	}

	// GLAD keeps a fixed uniform class prior, so with no evidence the
	// final posterior is uniform too.
	res, err := GLAD{}.Infer(ds)
	if err != nil {
		t.Fatal(err)
	}
	p := res.Posterior[unanswered]
	for c := 1; c < len(p); c++ {
		if p[c] != p[0] {
			t.Fatalf("GLAD unanswered posterior not uniform: %v", p)
		}
	}
}

// TestGLADReportsEMIterations pins the Iterations contract: like the
// other EM methods, GLAD reports EM rounds (not internal gradient steps).
func TestGLADReportsEMIterations(t *testing.T) {
	_, ds := buildWorkload(7003, 60, 10, 3, crowd.RegimeMixed, 0.3)
	res, err := GLAD{MaxIter: 4, GradSteps: 7}.Infer(ds)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations < 1 || res.Iterations > 4 {
		t.Fatalf("GLAD iterations = %d, want within [1, MaxIter]", res.Iterations)
	}
}
