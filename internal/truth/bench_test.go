package truth

import (
	"testing"

	"repro/internal/crowd"
)

// benchDataset builds a 1000-task, 50-worker, redundancy-5 dataset once
// per benchmark.
func benchDataset(b *testing.B) (ds *Dataset) {
	b.Helper()
	_, ds = buildWorkload(999, 1000, 50, 5, crowd.RegimeMixed, 0.3)
	b.ResetTimer()
	return ds
}

func BenchmarkMajorityVote1000(b *testing.B) {
	ds := benchDataset(b)
	for i := 0; i < b.N; i++ {
		if _, err := (MajorityVote{}).Infer(ds); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOneCoinEM1000(b *testing.B) {
	ds := benchDataset(b)
	for i := 0; i < b.N; i++ {
		if _, err := (OneCoinEM{}).Infer(ds); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDawidSkene1000(b *testing.B) {
	ds := benchDataset(b)
	for i := 0; i < b.N; i++ {
		if _, err := (DawidSkene{}).Infer(ds); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGLAD1000(b *testing.B) {
	ds := benchDataset(b)
	for i := 0; i < b.N; i++ {
		if _, err := (GLAD{}).Infer(ds); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBradleyTerry200Items(b *testing.B) {
	// Dense comparison set over 200 items.
	var comps []Comparison
	for i := 0; i < 200; i++ {
		for j := i + 1; j < 200; j += 7 {
			comps = append(comps, Comparison{I: i, J: j, IWon: i > j})
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BradleyTerry(200, comps); err != nil {
			b.Fatal(err)
		}
	}
}
